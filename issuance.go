package trustroots

import (
	"time"

	"repro/internal/certgen"
	"repro/internal/synth"
)

// SyntheticCA is one certification authority from the generated universe.
type SyntheticCA = synth.CA

// LeafSpec describes an end-entity certificate to issue under a synthetic
// CA — the client-side workload for verification experiments.
type LeafSpec = certgen.LeafSpec

// defaultLeafPool supplies leaf keys for IssueLeaf.
var defaultLeafPool = certgen.NewKeyPool("trustroots/leaf-issuance")

// IssueLeaf mints a TLS server certificate signed by the synthetic CA's
// root, returning its DER encoding.
func IssueLeaf(ca *SyntheticCA, cn string, notBefore, notAfter time.Time) ([]byte, error) {
	der, _, err := ca.Root.IssueLeaf(defaultLeafPool, certgen.LeafSpec{
		CommonName: cn,
		DNSNames:   []string{cn},
		NotBefore:  notBefore,
		NotAfter:   notAfter,
	})
	return der, err
}

// IssueLeafWithKey mints a TLS server certificate and also returns the leaf
// private key, for standing up live TLS servers in examples and tests.
func IssueLeafWithKey(ca *SyntheticCA, cn string, notBefore, notAfter time.Time) (der []byte, key any, err error) {
	d, signer, err := ca.Root.IssueLeaf(defaultLeafPool, certgen.LeafSpec{
		CommonName: cn,
		DNSNames:   []string{cn},
		NotBefore:  notBefore,
		NotAfter:   notAfter,
	})
	if err != nil {
		return nil, nil, err
	}
	return d, signer, nil
}
