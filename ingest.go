package trustroots

import (
	"time"

	"repro/internal/catalog"
)

// IngestFormat is a detected on-disk root-store format.
type IngestFormat = catalog.Format

// IngestOptions tunes disk ingestion.
type IngestOptions = catalog.Options

// DetectStoreFormat inspects a snapshot directory and reports its format
// (certdata, authroot bundle, JKS, node header, PEM bundle, purpose-split,
// Apple directory).
func DetectStoreFormat(dir string) (IngestFormat, error) { return catalog.DetectFormat(dir) }

// LoadSnapshotDir ingests one snapshot directory, auto-detecting its
// format.
func LoadSnapshotDir(dir, provider, version string, date time.Time, opts IngestOptions) (*Snapshot, IngestFormat, error) {
	return catalog.LoadSnapshot(dir, provider, version, date, opts)
}

// LoadStoreTree ingests a <root>/<provider>/<version>/ directory tree —
// e.g. cmd/synthgen output or a real scraped archive — into a database
// ready for NewPipeline.
func LoadStoreTree(root string, opts IngestOptions) (*Database, error) {
	return catalog.LoadTree(root, opts)
}
