package main

// The -smoke self-test: a hermetic rolling-reload-under-load scenario.
// An in-process trustd serves generation A on a loopback listener; the
// open-loop mixed workload runs against it at a fixed offered rate; at
// the halfway point the server hot-swaps to generation B and a live SSE
// event fires. The run must come out clean — zero 5xx, zero transport
// errors, zero shed arrivals, zero mixed-generation verdicts — with
// every workload class exercised, the client's HDR bucket layout
// byte-identical to the server's le= labels, and at least one slow-
// bucket exemplar that resolves to a live trace in /debug/traces. The
// report lands wherever -json points (CI publishes it as BENCH_10.json).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/tracker"
)

const (
	smokeRPS      = 300
	smokeDuration = 3 * time.Second
	smokeSeed     = 42
	smokeStreams  = 2
	// smokeP99Budget bounds every class's p99 (measured from scheduled
	// arrival). Loopback round-trips run well under a millisecond; the
	// budget absorbs CI-grade noise, not real regressions.
	smokeP99Budget = 500 * time.Millisecond
)

func runSmoke(logger *slog.Logger, jsonPath string) int {
	if err := smoke(logger, jsonPath); err != nil {
		logger.Error("loadgen smoke: FAIL", "err", err)
		return 1
	}
	fmt.Println("loadgen smoke: OK")
	return 0
}

func smoke(logger *slog.Logger, jsonPath string) error {
	f, err := load.NewFixture()
	if err != nil {
		return err
	}
	tracer := obs.NewTracer(obs.Options{SlowThreshold: -1, Logger: logger})
	srv := service.New(f.GenA, service.Config{Logger: logger, Tracer: tracer})
	feed := load.NewStubFeed()
	srv.AttachEvents(feed)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	runner, err := load.NewRunner(load.Options{
		BaseURL:      base,
		RPS:          smokeRPS,
		Duration:     smokeDuration,
		Seed:         smokeSeed,
		WatchStreams: smokeStreams,
		MidRun: func() {
			srv.Swap(f.GenB)
			feed.Emit(tracker.Event{Type: tracker.RootAdded, Provider: "Debian", Version: "v2", Date: time.Now()})
		},
	}, f.Target)
	if err != nil {
		return err
	}
	rep, err := runner.Run(context.Background())
	if err != nil {
		return err
	}
	if jsonPath != "" {
		if err := writeReport(rep, jsonPath); err != nil {
			return err
		}
	}
	printSummary(os.Stderr, rep)

	// 1. Clean run across the swap.
	if n := rep.Total5xx(); n != 0 {
		return fmt.Errorf("%d server errors (5xx) under load", n)
	}
	if n := rep.TotalTransportErrors(); n != 0 {
		return fmt.Errorf("%d transport errors under load", n)
	}
	if n := rep.TotalShed(); n != 0 {
		return fmt.Errorf("%d arrivals shed at the in-flight cap", n)
	}
	if rep.MixedGenerationVerdicts != 0 {
		return fmt.Errorf("%d mixed-generation verdicts across the swap", rep.MixedGenerationVerdicts)
	}
	if rep.Generations[f.HashA] == 0 || rep.Generations[f.HashB] == 0 {
		return fmt.Errorf("both generations must serve traffic, saw %v", rep.Generations)
	}

	// 2. Every class exercised, within the latency budget.
	for _, class := range []load.Class{load.ClassRead, load.ClassVerify, load.ClassBatch, load.ClassWatch, load.ClassSimulate} {
		cr := rep.Classes[string(class)]
		if cr == nil || cr.Status["2xx"] == 0 {
			return fmt.Errorf("class %s saw no successful responses: %+v", class, cr)
		}
		if p99 := time.Duration(cr.P99 * float64(time.Second)); p99 > smokeP99Budget {
			return fmt.Errorf("class %s p99 %v exceeds budget %v", class, p99, smokeP99Budget)
		}
	}
	if rep.WatchEventsReceived < smokeStreams {
		return fmt.Errorf("watch subscribers received %d events, want ≥ %d", rep.WatchEventsReceived, smokeStreams)
	}

	// 3. The server's histogram layout is byte-identical to the client's.
	client := &http.Client{Timeout: 10 * time.Second}
	pres, err := client.Get(base + "/metrics/prometheus")
	if err != nil {
		return fmt.Errorf("prometheus scrape: %w", err)
	}
	ptext, _ := io.ReadAll(pres.Body)
	pres.Body.Close()
	if pres.StatusCode != http.StatusOK {
		return fmt.Errorf("prometheus scrape status %d", pres.StatusCode)
	}
	text := string(ptext)
	if problems := obs.LintExposition(strings.NewReader(text)); len(problems) != 0 {
		return fmt.Errorf("malformed exposition:\n%s", strings.Join(problems, "\n"))
	}
	if err := checkBucketLayout(text); err != nil {
		return err
	}

	// 4. A slow-bucket exemplar resolves to a live trace.
	traceID, err := firstExemplarTraceID(text)
	if err != nil {
		return err
	}
	var dump struct {
		Recent  []json.RawMessage `json:"recent"`
		Slowest []json.RawMessage `json:"slowest"`
	}
	dres, err := client.Get(base + "/debug/traces?trace_id=" + traceID)
	if err != nil {
		return fmt.Errorf("trace lookup: %w", err)
	}
	derr := json.NewDecoder(dres.Body).Decode(&dump)
	dres.Body.Close()
	if derr != nil {
		return fmt.Errorf("decode /debug/traces: %w", derr)
	}
	if len(dump.Recent)+len(dump.Slowest) == 0 {
		return fmt.Errorf("exemplar trace %s does not resolve in /debug/traces", traceID)
	}
	return nil
}

// checkBucketLayout extracts the verify route's le= labels from the
// exposition and compares them, in order, to the shared HDR layout the
// client histograms use — the identical-bounds guarantee the report's
// bucket_bounds_seconds field advertises.
func checkBucketLayout(text string) error {
	const family = `trustd_request_duration_seconds_bucket{route="POST /v1/verify",le="`
	var got []string
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		end := strings.IndexByte(rest, '"')
		if end < 0 {
			return fmt.Errorf("unparseable bucket line %q", line)
		}
		got = append(got, rest[:end])
	}
	want := obs.HDRNumBuckets()
	if len(got) != want {
		return fmt.Errorf("server exposes %d buckets for the verify route, client uses %d", len(got), want)
	}
	for i, le := range got {
		if le != obs.HDRBucketLabel(i) {
			return fmt.Errorf("bucket %d: server le=%q, client bound %q — histogram layouts diverged", i, le, obs.HDRBucketLabel(i))
		}
	}
	return nil
}

// firstExemplarTraceID pulls the first bucket exemplar's trace ID out of
// the exposition.
func firstExemplarTraceID(text string) (string, error) {
	const marker = `# {trace_id="`
	i := strings.Index(text, marker)
	if i < 0 {
		return "", fmt.Errorf("exposition carries no bucket exemplars")
	}
	rest := text[i+len(marker):]
	end := strings.IndexByte(rest, '"')
	if end != 32 {
		return "", fmt.Errorf("exemplar trace id malformed near %q", rest[:min(end+1, len(rest))])
	}
	return rest[:end], nil
}
