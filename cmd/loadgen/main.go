// Command loadgen is trustd's open-loop load generator. It schedules
// arrivals up front at the target RPS (never waiting for completions —
// the coordinated-omission-free discipline), drives a mixed workload of
// reads, UA-weighted verifies, batch verifies, SSE watch connects and
// what-if simulations, and reports latency quantiles from the same HDR
// log-linear buckets trustd itself exports on /metrics/prometheus.
//
//	loadgen -url http://host:8080 -rps 500 -duration 30s \
//	        -mix read=45,verify=35,batch=5,watch=5,simulate=10 \
//	        -chain leaf.pem -stores NSS,Debian -json out.json
//
//	loadgen -smoke -json BENCH_10.json
//
// -smoke needs no server: it boots an in-process trustd on a loopback
// listener, runs the mixed workload across a mid-run generation swap,
// and fails on any 5xx, transport error, shed arrival, mixed-generation
// verdict, histogram-layout drift, or unresolvable exemplar.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/load"
)

func main() {
	var (
		smokeMode   = flag.Bool("smoke", false, "hermetic self-test against an in-process trustd")
		url         = flag.String("url", "", "trustd base URL (e.g. http://127.0.0.1:8080)")
		rps         = flag.Float64("rps", 100, "target offered request rate")
		duration    = flag.Duration("duration", 10*time.Second, "run length")
		mixSpec     = flag.String("mix", "", "workload mix, e.g. read=45,verify=35,batch=5,watch=5,simulate=10")
		seed        = flag.Uint64("seed", 1, "seed for the class and user-agent draws")
		jsonPath    = flag.String("json", "", "write the run report as JSON to this path (\"-\" for stdout)")
		watch       = flag.Int("watch-streams", 0, "long-lived SSE subscribers alongside the scheduled load")
		maxInFlight = flag.Int("max-inflight", 0, "in-flight cap; arrivals beyond it are shed, not queued")
		chainPath   = flag.String("chain", "", "PEM chain file for verify/batch classes")
		stores      = flag.String("stores", "", "comma-separated snapshot refs for verify/batch")
		readPaths   = flag.String("read", "", "comma-separated GET paths for the read class")
		simBody     = flag.String("simulate-body", "", "JSON body file for the simulate class")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	if *smokeMode {
		os.Exit(runSmoke(logger, *jsonPath))
	}
	if *url == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url required (or -smoke)")
		os.Exit(2)
	}

	opts := load.Options{
		BaseURL:      *url,
		RPS:          *rps,
		Duration:     *duration,
		Seed:         *seed,
		WatchStreams: *watch,
		MaxInFlight:  *maxInFlight,
	}
	if *mixSpec != "" {
		mix, err := load.ParseMix(*mixSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(2)
		}
		opts.Mix = mix
	}

	var target load.Target
	if *readPaths != "" {
		target.ReadPaths = splitList(*readPaths)
	}
	if *stores != "" {
		target.Stores = splitList(*stores)
	}
	if *chainPath != "" {
		pemBytes, err := os.ReadFile(*chainPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: read chain: %v\n", err)
			os.Exit(2)
		}
		target.ChainPEM = string(pemBytes)
	}
	if *simBody != "" {
		raw, err := os.ReadFile(*simBody)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: read simulate body: %v\n", err)
			os.Exit(2)
		}
		target.SimulateBody = raw
	}
	if opts.Mix == nil {
		// Default mix restricted to the classes this invocation actually
		// configured — verify/batch need a chain, simulate needs a body.
		mix := load.Mix{load.ClassRead: 0.5, load.ClassWatch: 0.05}
		if target.ChainPEM != "" {
			mix[load.ClassVerify] = 0.35
			mix[load.ClassBatch] = 0.05
		}
		if len(target.SimulateBody) > 0 {
			mix[load.ClassSimulate] = 0.10
		}
		opts.Mix = mix
	}

	runner, err := load.NewRunner(opts, target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	logger.Info("loadgen start", "url", *url, "rps", *rps, "duration", *duration)
	rep, err := runner.Run(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	if err := writeReport(rep, *jsonPath); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	printSummary(os.Stderr, rep)
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// writeReport emits the report JSON to path ("-" or "" meaning stdout
// when explicitly requested; "" writes nothing).
func writeReport(rep *load.Report, path string) error {
	if path == "" {
		return nil
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

func printSummary(w *os.File, rep *load.Report) {
	fmt.Fprintf(w, "offered %.1f req/s (target %.1f), completed %.1f req/s, 5xx=%d transport=%d shed=%d mixed=%d\n",
		rep.OfferedRPS, rep.TargetRPS, rep.AchievedRPS, rep.Total5xx(), rep.TotalTransportErrors(), rep.TotalShed(), rep.MixedGenerationVerdicts)
	for _, name := range rep.ClassNames() {
		cr := rep.Classes[name]
		fmt.Fprintf(w, "  %-9s issued=%-6d p50=%6.1fms p90=%6.1fms p99=%6.1fms p999=%6.1fms\n",
			name, cr.Issued, cr.P50*1e3, cr.P90*1e3, cr.P99*1e3, cr.P999*1e3)
	}
}
