// Command rootpack compiles, inspects and audits rootpack archives — the
// content-addressed binary snapshot format internal/archive implements and
// trustd/rootwatch reload from.
//
// Usage:
//
//	rootpack build -tree DIR [-o FILE]     compile a snapshot tree
//	rootpack inspect FILE [-json]          sections, dedup ratio, providers
//	rootpack verify FILE                   checksums + lossless round-trip
//	rootpack -smoke                        hermetic self-test (CI)
//
// build ingests the tree with the shared catalog parsers and writes the
// archive atomically (default <tree>/.rootpack — the sidecar location the
// loaders look for). inspect decodes only the footer and section
// inventories. verify is the paranoid path: it recomputes the whole-file
// content hash, checks every section checksum, decodes the database,
// re-encodes it and demands the bytes round-trip to the identical content
// hash — proving the file is undamaged AND canonical.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/pemstore"
	"repro/internal/store"
	"repro/internal/testcerts"
)

func main() {
	smoke := flag.Bool("smoke", false, "run a hermetic self-test and exit (0 = archive pipeline works)")
	flag.Usage = usage
	flag.Parse()
	if *smoke {
		os.Exit(runSmoke())
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "build":
		err = runBuild(args[1:])
	case "inspect":
		err = runInspect(args[1:])
	case "verify":
		err = runVerify(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "rootpack: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootpack: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  rootpack build -tree DIR [-o FILE]   compile a snapshot tree to an archive
  rootpack inspect FILE [-json]        print sections, dedup ratio, providers
  rootpack verify FILE                 full checksum + round-trip audit
  rootpack -smoke                      hermetic self-test

The tree layout is the module's shared snapshot layout:
%s
`, catalog.TreeLayout)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	tree := fs.String("tree", "", "snapshot tree to compile (required)")
	out := fs.String("o", "", "output archive path (default <tree>/.rootpack)")
	jksPassword := fs.String("jks-password", "", "JKS keystore password (default changeit)")
	fs.Parse(args)
	if *tree == "" {
		return fmt.Errorf("build: -tree is required")
	}
	path := *out
	if path == "" {
		path = filepath.Join(*tree, catalog.DefaultArchiveName)
	}

	start := time.Now()
	// Parse natively even if a sidecar exists: build is the tool that
	// refreshes sidecars, so it must not trust one.
	db, err := catalog.LoadTree(*tree, catalog.Options{
		JKSPassword: *jksPassword,
		Archive:     catalog.ArchiveOff,
	})
	if err != nil {
		return err
	}
	parsed := time.Since(start)

	th, err := catalog.TreeHash(*tree)
	if err != nil {
		return err
	}
	contentHash, err := archive.WriteFile(path, db, th)
	if err != nil {
		return err
	}
	fmt.Printf("built %s\n", path)
	fmt.Printf("  snapshots    %d across %d providers (parsed in %s)\n",
		db.TotalSnapshots(), len(db.Providers()), parsed.Round(time.Millisecond))
	fmt.Printf("  content hash %x\n", contentHash)
	return printStatsFor(path, false)
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the stats as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect: want exactly one archive path")
	}
	return printStatsFor(fs.Arg(0), *asJSON)
}

func printStatsFor(path string, asJSON bool) error {
	r, err := archive.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	st, err := r.Stats()
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}

	fmt.Printf("rootpack v%d, %d bytes\n", st.FormatVersion, st.FileSize)
	fmt.Printf("  source hash  %s\n", st.SourceHash)
	fmt.Printf("  content hash %s\n", st.ContentHash)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  SECTION\tOFFSET\tBYTES\tSHA-256")
	for _, sec := range st.Sections {
		fmt.Fprintf(w, "  %s\t%d\t%d\t%s…\n", sec.Name, sec.Offset, sec.Length, sec.SHA256[:16])
	}
	w.Flush()
	fmt.Printf("  %d unique certs (%d pool bytes) referenced by %d entries — dedup ratio %.2fx\n",
		st.UniqueCerts, st.PoolBytes, st.TotalEntries, st.DedupRatio())
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  PROVIDER\tSNAPSHOTS\tENTRIES")
	for _, p := range st.Providers {
		fmt.Fprintf(w, "  %s\t%d\t%d\n", p.Name, p.Snapshots, p.Entries)
	}
	w.Flush()
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify: want exactly one archive path")
	}
	path := fs.Arg(0)
	r, err := archive.Open(path)
	if err != nil {
		return err
	}
	defer r.Close()
	start := time.Now()
	if err := r.Verify(); err != nil {
		return err
	}
	fmt.Printf("%s: OK (content hash, section checksums and round-trip verified in %s)\n",
		path, time.Since(start).Round(time.Millisecond))
	return nil
}

// runSmoke exercises the whole archive pipeline hermetically: synthesize a
// tree from generated certificates, build an archive, prove the sidecar
// fast path kicks in, corrupt the file and prove verify catches it.
func runSmoke() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "rootpack: smoke: FAIL: "+format+"\n", args...)
		return 1
	}
	root, err := os.MkdirTemp("", "rootpack-smoke-*")
	if err != nil {
		return fail("%v", err)
	}
	defer os.RemoveAll(root)

	entries := testcerts.Entries(4, store.ServerAuth)
	for _, v := range []struct {
		version string
		es      []*store.TrustEntry
	}{
		{"2020-01-01", entries[:3]},
		{"2020-06-01", entries[1:]},
	} {
		dir := filepath.Join(root, "NSS", v.version)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fail("%v", err)
		}
		f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
		if err != nil {
			return fail("%v", err)
		}
		werr := pemstore.WriteBundle(f, v.es)
		f.Close()
		if werr != nil {
			return fail("%v", werr)
		}
	}

	// First load parses and compiles the sidecar; second load must come
	// from it.
	db, info, err := catalog.LoadTreeInfo(root, catalog.Options{})
	if err != nil {
		return fail("initial load: %v", err)
	}
	if info.FromArchive {
		return fail("first load claims to come from a sidecar that could not exist yet")
	}
	db2, info2, err := catalog.LoadTreeInfo(root, catalog.Options{})
	if err != nil {
		return fail("archive load: %v", err)
	}
	if !info2.FromArchive {
		return fail("second load did not use the compiled sidecar")
	}
	if err := archive.Equal(db, db2); err != nil {
		return fail("sidecar database differs from parsed database: %v", err)
	}

	r, err := archive.Open(info2.ArchivePath)
	if err != nil {
		return fail("open sidecar: %v", err)
	}
	if err := r.Verify(); err != nil {
		r.Close()
		return fail("verify: %v", err)
	}
	r.Close()

	// Flip one byte in the middle of the file: verify must refuse.
	data, err := os.ReadFile(info2.ArchivePath)
	if err != nil {
		return fail("%v", err)
	}
	data[len(data)/2] ^= 0x01
	mutPath := filepath.Join(root, "corrupt.rootpack")
	if err := os.WriteFile(mutPath, data, 0o644); err != nil {
		return fail("%v", err)
	}
	if mr, err := archive.Open(mutPath); err == nil {
		verr := mr.Verify()
		mr.Close()
		if verr == nil {
			return fail("verify accepted a corrupted archive")
		}
		if !archive.IsCorrupt(verr) {
			return fail("corruption not flagged as corrupt: %v", verr)
		}
	} else if !archive.IsCorrupt(err) {
		return fail("corrupted open failed with non-corrupt error: %v", err)
	}

	fmt.Printf("rootpack smoke: OK (%d snapshots, sidecar fast path + corruption detection)\n",
		db.TotalSnapshots())
	return 0
}
