// Command trustd serves the trust-anchor query & chain-verification API
// over a root-store database: the paper's cross-store comparisons as an
// online service.
//
// Usage:
//
//	trustd [-addr :8080] [-seed tracing-your-roots | -tree DIR] [flags]
//
// The database comes from the deterministic synthetic ecosystem (-seed) or
// from an on-disk <provider>/<version>/ release tree (-tree), the same
// layouts cmd/synthgen writes and internal/catalog ingests.
//
// Endpoints:
//
//	GET  /v1/providers                      providers + snapshot counts
//	GET  /v1/providers/{p}/snapshots        one provider's release history
//	GET  /v1/roots/{fingerprint}            who trusts this root (per purpose)
//	GET  /v1/diff?a=REF&b=REF               added/removed/trust-changed roots
//	POST /v1/verify                         per-store verdicts for a PEM chain
//	GET  /healthz                           liveness + corpus size
//	GET  /metrics                           expvar counters (JSON)
//
// Snapshot REFs are "Provider" (latest, or in force at ?at=) or
// "Provider@Version". The server drains connections on SIGINT/SIGTERM.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.String("seed", "tracing-your-roots", "synthetic ecosystem seed (ignored with -tree)")
	tree := flag.String("tree", "", "load snapshots from a <provider>/<version>/ directory tree instead of generating")
	timeout := flag.Duration("timeout", service.DefaultRequestTimeout, "per-request timeout")
	drain := flag.Duration("drain", 15*time.Second, "connection-drain budget on shutdown")
	maxBody := flag.Int64("max-body", service.DefaultMaxBodyBytes, "request body size limit in bytes")
	workers := flag.Int("workers", 0, "concurrent verification workers (0 = 2×CPU)")
	cacheSize := flag.Int("verdict-cache", service.DefaultVerdictCacheSize, "verdict LRU capacity")
	logJSON := flag.Bool("log-json", false, "emit JSON logs instead of text")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	db, err := loadDatabase(*seed, *tree, logger)
	if err != nil {
		logger.Error("load database", "err", err)
		os.Exit(1)
	}

	srv := service.New(db, service.Config{
		MaxBodyBytes:     *maxBody,
		RequestTimeout:   *timeout,
		VerifyWorkers:    *workers,
		VerdictCacheSize: *cacheSize,
		Logger:           logger,
	})
	expvar.Publish("trustd", srv.Metrics().Map())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, *addr, *drain); err != nil && err != http.ErrServerClosed {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}

func loadDatabase(seed, tree string, logger *slog.Logger) (*store.Database, error) {
	start := time.Now()
	if tree != "" {
		db, err := catalog.LoadTree(tree, catalog.Options{})
		if err != nil {
			return nil, fmt.Errorf("ingest %s: %w", tree, err)
		}
		logger.Info("tree ingested", "dir", tree,
			"snapshots", db.TotalSnapshots(), "elapsed", time.Since(start).Round(time.Millisecond))
		return db, nil
	}
	eco, err := synth.Cached(seed)
	if err != nil {
		return nil, fmt.Errorf("generate ecosystem: %w", err)
	}
	logger.Info("ecosystem generated", "seed", seed,
		"snapshots", eco.DB.TotalSnapshots(), "elapsed", time.Since(start).Round(time.Millisecond))
	return eco.DB, nil
}
