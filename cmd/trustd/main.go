// Command trustd serves the trust-anchor query & chain-verification API
// over a root-store database: the paper's cross-store comparisons as an
// online service.
//
// Usage:
//
//	trustd [-addr :8080] [-seed tracing-your-roots | -tree DIR | -archive FILE] [flags]
//
// The database comes from the deterministic synthetic ecosystem (-seed),
// from an on-disk <provider>/<version>/ release tree (-tree), the same
// layouts cmd/synthgen writes and internal/catalog ingests, or from a
// compiled rootpack archive (-archive FILE, see cmd/rootpack) for
// millisecond cold starts. With -tree, -archive instead overrides where the
// sidecar cache lives (default <tree>/.rootpack).
//
// Endpoints:
//
//	GET  /v1/providers                      providers + snapshot counts
//	GET  /v1/providers/{p}/snapshots        one provider's release history
//	GET  /v1/roots/{fingerprint}            who trusts this root (per purpose)
//	GET  /v1/diff?a=REF&b=REF               added/removed/trust-changed roots
//	POST /v1/verify                         per-store verdicts for a PEM chain
//	GET  /v1/events                         change-event replay (with -watch)
//	GET  /v1/events/watch                   live change stream, SSE (with -watch)
//	GET  /healthz                           liveness + corpus size
//	GET  /metrics                           expvar counters (JSON)
//	GET  /metrics/prometheus                Prometheus text exposition
//	GET  /debug/traces                      recent + slowest request traces
//
// Snapshot REFs are "Provider" (latest, or in force at ?at=) or
// "Provider@Version". The server drains connections on SIGINT/SIGTERM.
//
// With -watch (requires -tree), trustd keeps polling the tree and
// hot-swaps the serving database whenever a snapshot directory appears or
// changes — in-flight requests finish on the old database, new ones see
// the new one, and every change becomes a classified event on /v1/events.
//
// -debug-addr starts a second, private listener with net/http/pprof, the
// process expvar tree and /debug/traces — diagnostics that do not belong
// on the public API address. -smoke runs a hermetic end-to-end self-test
// (verify fan-out, trace propagation, Prometheus exposition) and exits.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/tracker"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.String("seed", "tracing-your-roots", "synthetic ecosystem seed (ignored with -tree)")
	tree := flag.String("tree", "", "load snapshots from a <provider>/<version>/ directory tree instead of generating")
	archivePath := flag.String("archive", "", "rootpack archive: with -tree, the sidecar cache location (default <tree>/.rootpack); alone, a compiled archive to serve directly")
	timeout := flag.Duration("timeout", service.DefaultRequestTimeout, "per-request timeout")
	drain := flag.Duration("drain", 15*time.Second, "connection-drain budget on shutdown")
	maxBody := flag.Int64("max-body", service.DefaultMaxBodyBytes, "request body size limit in bytes")
	workers := flag.Int("workers", 0, "concurrent verification workers (0 = 2×CPU)")
	cacheSize := flag.Int("verdict-cache", service.DefaultVerdictCacheSize, "verdict LRU capacity")
	logJSON := flag.Bool("log-json", false, "emit JSON logs instead of text")
	watch := flag.Bool("watch", false, "keep polling -tree and hot-reload on snapshot changes")
	pollInterval := flag.Duration("poll-interval", tracker.DefaultInterval, "tree poll cadence with -watch")
	settle := flag.Duration("settle", 2*time.Second, "how long a new snapshot dir must be quiescent before ingest")
	eventsJSONL := flag.String("events-jsonl", "", "append change events to this JSONL file (with -watch)")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar and /debug/traces on this private address (off when empty)")
	smoke := flag.Bool("smoke", false, "run a hermetic self-test of the serving + observability stack and exit")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	if *smoke {
		os.Exit(runSmoke(logger))
	}
	if *watch && *tree == "" {
		logger.Error("-watch requires -tree (a directory to poll)")
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One tracer for the whole process: request traces from the server and
	// rescan traces from the tracker land in the same /debug/traces ring.
	tracer := obs.NewTracer(obs.Options{Logger: logger})

	var db *store.Database
	var trk *tracker.Tracker
	if *watch {
		var err error
		trk, db, err = startTracker(*tree, *archivePath, *pollInterval, *settle, *eventsJSONL, tracer, logger)
		if err != nil {
			logger.Error("start tracker", "err", err)
			os.Exit(1)
		}
	} else {
		var err error
		db, err = loadDatabase(*seed, *tree, *archivePath, logger)
		if err != nil {
			logger.Error("load database", "err", err)
			os.Exit(1)
		}
	}

	srv := service.New(db, service.Config{
		MaxBodyBytes:     *maxBody,
		RequestTimeout:   *timeout,
		VerifyWorkers:    *workers,
		VerdictCacheSize: *cacheSize,
		Logger:           logger,
		Tracer:           tracer,
	})
	expvar.Publish("trustd", srv.Metrics().Map())

	if trk != nil {
		srv.AttachEvents(trk)
		watchSrv.Store(srv)
		go trk.Run(ctx)
		logger.Info("watching", "tree", *tree, "interval", *pollInterval)
	}
	if *debugAddr != "" {
		go runDebugServer(ctx, *debugAddr, tracer, logger)
	}

	if err := srv.Run(ctx, *addr, *drain); err != nil && err != http.ErrServerClosed {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}

// runDebugServer serves the private diagnostics mux — pprof, expvar,
// /debug/traces — until ctx is cancelled. Failures are logged, never
// fatal: losing pprof must not take the API down.
func runDebugServer(ctx context.Context, addr string, tracer *obs.Tracer, logger *slog.Logger) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           obs.DebugMux(tracer),
		ReadHeaderTimeout: 5 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	logger.Info("debug listener", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Warn("debug listener failed", "err", err)
	}
}

// watchSrv breaks the construction cycle between tracker and server: the
// tracker's OnReload needs the server, but the server needs the tracker's
// first ingested database. Reloads before the server exists are dropped
// (the server is then built from the same database anyway).
var watchSrv atomic.Pointer[service.Server]

// startTracker builds the tracker over the tree, performs the initial
// ingest (replaying history into the event log) and returns the first
// database to serve.
func startTracker(tree, archivePath string, interval, settle time.Duration, eventsPath string, tracer *obs.Tracer, logger *slog.Logger) (*tracker.Tracker, *store.Database, error) {
	var log *tracker.Log
	if eventsPath != "" {
		var err error
		log, err = tracker.NewLog(tracker.LogOptions{Path: eventsPath})
		if err != nil {
			return nil, nil, fmt.Errorf("open event log: %w", err)
		}
	}
	trk, err := tracker.New(tracker.Config{
		Source:   tracker.NewDirSource(tree, settle),
		Catalog:  catalog.Options{ArchivePath: archivePath},
		Interval: interval,
		Log:      log,
		Logger:   logger,
		Tracer:   tracer,
		OnReload: func(db *store.Database) {
			if s := watchSrv.Load(); s != nil {
				s.Swap(db)
			}
		},
	})
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	n, err := trk.Rescan()
	if err != nil {
		return nil, nil, fmt.Errorf("initial ingest of %s: %w", tree, err)
	}
	logger.Info("tree ingested", "dir", tree, "snapshots", n,
		"events", trk.LastSeq(), "elapsed", time.Since(start).Round(time.Millisecond))
	return trk, trk.Database(), nil
}

func loadDatabase(seed, tree, archivePath string, logger *slog.Logger) (*store.Database, error) {
	start := time.Now()
	if tree != "" {
		db, info, err := catalog.LoadTreeInfo(tree, catalog.Options{ArchivePath: archivePath})
		if err != nil {
			return nil, fmt.Errorf("ingest %s: %w", tree, err)
		}
		logger.Info("tree ingested", "dir", tree, "from_archive", info.FromArchive,
			"snapshots", db.TotalSnapshots(), "elapsed", time.Since(start).Round(time.Millisecond))
		return db, nil
	}
	if archivePath != "" {
		db, err := archive.ReadFile(archivePath)
		if err != nil {
			return nil, fmt.Errorf("read archive %s: %w", archivePath, err)
		}
		logger.Info("archive loaded", "path", archivePath,
			"snapshots", db.TotalSnapshots(), "elapsed", time.Since(start).Round(time.Millisecond))
		return db, nil
	}
	eco, err := synth.Cached(seed)
	if err != nil {
		return nil, fmt.Errorf("generate ecosystem: %w", err)
	}
	logger.Info("ecosystem generated", "seed", seed,
		"snapshots", eco.DB.TotalSnapshots(), "elapsed", time.Since(start).Round(time.Millisecond))
	return eco.DB, nil
}
