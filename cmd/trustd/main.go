// Command trustd serves the trust-anchor query & chain-verification API
// over a root-store database: the paper's cross-store comparisons as an
// online service.
//
// Usage:
//
//	trustd [-addr :8080] [-seed tracing-your-roots | -tree DIR | -archive FILE] [flags]
//
// The database comes from the deterministic synthetic ecosystem (-seed),
// from an on-disk <provider>/<version>/ release tree (-tree), the same
// layouts cmd/synthgen writes and internal/catalog ingests, or from a
// compiled rootpack archive (-archive FILE, see cmd/rootpack) for
// millisecond cold starts. With -tree, -archive instead overrides where the
// sidecar cache lives (default <tree>/.rootpack).
//
// Endpoints:
//
//	GET  /v1/providers                      providers + snapshot counts
//	GET  /v1/providers/{p}/snapshots        one provider's release history
//	GET  /v1/roots/{fingerprint}            who trusts this root (per purpose)
//	GET  /v1/diff?a=REF&b=REF               added/removed/trust-changed roots
//	POST /v1/verify                         per-store verdicts for a PEM chain
//	POST /v1/verify/batch                   NDJSON chain stream in, verdict stream out
//	GET  /v1/events                         change-event replay (with -watch)
//	GET  /v1/events/watch                   live change stream, SSE (with -watch)
//	GET  /healthz                           liveness + corpus size
//	GET  /metrics                           expvar counters (JSON)
//	GET  /metrics/prometheus                Prometheus text exposition
//	GET  /debug/traces                      recent + slowest request traces
//
// Snapshot REFs are "Provider" (latest, or in force at ?at=) or
// "Provider@Version". The server drains connections on SIGINT/SIGTERM.
//
// With -watch (requires -tree), trustd keeps polling the tree and
// hot-swaps the serving database whenever a snapshot directory appears or
// changes — in-flight requests finish on the old database, new ones see
// the new one, and every change becomes a classified event on /v1/events.
//
// -debug-addr starts a second, private listener with net/http/pprof, the
// process expvar tree and /debug/traces — diagnostics that do not belong
// on the public API address. -smoke runs a hermetic end-to-end self-test
// (verify fan-out, trace propagation, Prometheus exposition) and exits.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/tracker"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.String("seed", "tracing-your-roots", "synthetic ecosystem seed (ignored with -tree)")
	tree := flag.String("tree", "", "load snapshots from a <provider>/<version>/ directory tree instead of generating")
	archivePath := flag.String("archive", "", "rootpack archive: with -tree, the sidecar cache location (default <tree>/.rootpack); alone, a compiled archive to serve directly")
	timeout := flag.Duration("timeout", service.DefaultRequestTimeout, "per-request timeout")
	drain := flag.Duration("drain", 15*time.Second, "connection-drain budget on shutdown")
	maxBody := flag.Int64("max-body", service.DefaultMaxBodyBytes, "request body size limit in bytes")
	workers := flag.Int("workers", 0, "concurrent verification workers (0 = 2×CPU)")
	batchWorkers := flag.Int("batch-workers", 0, "per-batch pipeline workers for /v1/verify/batch (0 = same as -workers)")
	cacheSize := flag.Int("verdict-cache", service.DefaultVerdictCacheSize, "verdict LRU capacity")
	logJSON := flag.Bool("log-json", false, "emit JSON logs instead of text")
	watch := flag.Bool("watch", false, "keep polling -tree and hot-reload on snapshot changes")
	pollInterval := flag.Duration("poll-interval", tracker.DefaultInterval, "tree poll cadence with -watch")
	settle := flag.Duration("settle", 2*time.Second, "how long a new snapshot dir must be quiescent before ingest")
	eventsJSONL := flag.String("events-jsonl", "", "append change events to this JSONL file (with -watch)")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar and /debug/traces on this private address (off when empty)")
	smoke := flag.Bool("smoke", false, "run a hermetic self-test of the serving + observability stack and exit")
	origin := flag.Bool("origin", false, "serve /cluster/v1/* archive-distribution endpoints and publish every generation to the fleet")
	originURL := flag.String("origin-url", "", "run as a replica of this origin's base URL (replaces -seed/-tree/-watch as the database source)")
	clusterCache := flag.String("cluster-cache", "", "replica archive cache directory (temp dir when empty; persistent dirs survive origin outages across restarts)")
	syncInterval := flag.Duration("sync-interval", 15*time.Second, "replica manifest poll spacing")
	syncWait := flag.Duration("sync-wait", 30*time.Second, "replica long-poll duration (0 = plain polling)")
	smokeCluster := flag.Bool("smoke-cluster", false, "run a hermetic origin + 2-replica cluster self-test and exit")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	if *smoke {
		os.Exit(runSmoke(logger))
	}
	if *smokeCluster {
		os.Exit(runSmokeCluster(logger))
	}
	if *watch && *tree == "" {
		logger.Error("-watch requires -tree (a directory to poll)")
		os.Exit(1)
	}
	if *originURL != "" && (*watch || *tree != "" || *origin) {
		logger.Error("-origin-url (replica mode) is exclusive with -tree, -watch and -origin: the database comes from the origin")
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One tracer for the whole process: request traces from the server and
	// rescan traces from the tracker land in the same /debug/traces ring.
	tracer := obs.NewTracer(obs.Options{Logger: logger})

	var db *store.Database
	var trk *tracker.Tracker
	var rep *cluster.Replica
	var repManifest cluster.Manifest
	switch {
	case *originURL != "":
		var err error
		rep, db, repManifest, err = startReplica(ctx, *originURL, *clusterCache, *syncInterval, *syncWait, tracer, logger)
		if err != nil {
			logger.Error("bootstrap replica", "err", err)
			os.Exit(1)
		}
	case *watch:
		var err error
		trk, db, err = startTracker(*tree, *archivePath, *pollInterval, *settle, *eventsJSONL, tracer, logger)
		if err != nil {
			logger.Error("start tracker", "err", err)
			os.Exit(1)
		}
	default:
		var err error
		db, err = loadDatabase(*seed, *tree, *archivePath, logger)
		if err != nil {
			logger.Error("load database", "err", err)
			os.Exit(1)
		}
	}

	srv := service.New(db, service.Config{
		MaxBodyBytes:     *maxBody,
		RequestTimeout:   *timeout,
		VerifyWorkers:    *workers,
		BatchWorkers:     *batchWorkers,
		VerdictCacheSize: *cacheSize,
		Logger:           logger,
		Tracer:           tracer,
	})
	expvar.Publish("trustd", srv.Metrics().Map())

	if *origin {
		org := cluster.NewOrigin(cluster.OriginOptions{Logger: logger, Tracer: tracer})
		m, err := org.Publish(ctx, db, [archive.HashLen]byte{})
		if err != nil {
			logger.Error("publish initial archive", "err", err)
			os.Exit(1)
		}
		clusterOrigin.Store(org)
		srv.Mount("/cluster/", org.Handler())
		srv.AddStatsSource(org)
		// The origin serves the exact generation it advertises: adopt the
		// manifest's hash and epoch rather than re-deriving them.
		if hb, err := m.HashBytes(); err == nil {
			srv.SwapArchive(db, hb, m.Epoch)
		}
		logger.Info("cluster origin enabled", "hash", m.Hash[:12], "epoch", m.Epoch, "size", m.Size)
	}
	if rep != nil {
		if hb, err := repManifest.HashBytes(); err == nil {
			srv.SwapArchive(db, hb, repManifest.Epoch)
		}
		srv.AddStatsSource(rep)
		watchSrv.Store(srv)
		go func() {
			if err := rep.Run(ctx); err != nil && ctx.Err() == nil {
				logger.Error("replica sync loop exited", "err", err)
			}
		}()
		logger.Info("replica syncing", "origin", *originURL,
			"hash", repManifest.Hash[:12], "epoch", repManifest.Epoch)
	}
	if trk != nil {
		srv.AttachEvents(trk)
		watchSrv.Store(srv)
		go trk.Run(ctx)
		logger.Info("watching", "tree", *tree, "interval", *pollInterval)
	}
	if *debugAddr != "" {
		go runDebugServer(ctx, *debugAddr, tracer, logger)
	}

	if err := srv.Run(ctx, *addr, *drain); err != nil && err != http.ErrServerClosed {
		logger.Error("serve", "err", err)
		os.Exit(1)
	}
	logger.Info("bye")
}

// runDebugServer serves the private diagnostics mux — pprof, expvar,
// /debug/traces — until ctx is cancelled. Failures are logged, never
// fatal: losing pprof must not take the API down.
func runDebugServer(ctx context.Context, addr string, tracer *obs.Tracer, logger *slog.Logger) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           obs.DebugMux(tracer),
		ReadHeaderTimeout: 5 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	logger.Info("debug listener", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Warn("debug listener failed", "err", err)
	}
}

// watchSrv breaks the construction cycle between tracker and server: the
// tracker's OnReload needs the server, but the server needs the tracker's
// first ingested database. Reloads before the server exists are dropped
// (the server is then built from the same database anyway). The replica's
// OnSwap goes through the same pointer for the same reason.
var watchSrv atomic.Pointer[service.Server]

// clusterOrigin, when set, receives every reloaded database as a new
// published archive before the local server swaps to it.
var clusterOrigin atomic.Pointer[cluster.Origin]

// reloadFleet installs a freshly ingested database: with -origin it is
// first compiled and published so the manifest, the fleet, and the local
// server all advance to the identical generation; otherwise it is a plain
// local hot swap. Publish failures fall back to the local swap — the
// origin node must keep serving fresh data even if encoding breaks.
func reloadFleet(db *store.Database, logger *slog.Logger) {
	if o := clusterOrigin.Load(); o != nil {
		m, err := o.Publish(context.Background(), db, [archive.HashLen]byte{})
		if err == nil {
			s := watchSrv.Load()
			if s == nil {
				return
			}
			if hb, herr := m.HashBytes(); herr == nil {
				s.SwapArchive(db, hb, m.Epoch)
				return
			}
		}
		logger.Warn("publish reloaded archive", "err", err)
	}
	if s := watchSrv.Load(); s != nil {
		s.Swap(db)
	}
}

// startReplica joins an origin's fleet: bootstrap the first generation
// (fresh sync, or the cache's last-known-good when the origin is down) and
// hand later generations to the server through watchSrv.
func startReplica(ctx context.Context, originURL, cacheDir string, interval, wait time.Duration, tracer *obs.Tracer, logger *slog.Logger) (*cluster.Replica, *store.Database, cluster.Manifest, error) {
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		OriginURL: originURL,
		CacheDir:  cacheDir,
		Interval:  interval,
		WaitFor:   wait,
		Logger:    logger,
		Tracer:    tracer,
		OnSwap: func(db *store.Database, m cluster.Manifest) {
			s := watchSrv.Load()
			if s == nil {
				return
			}
			if hb, err := m.HashBytes(); err == nil {
				s.SwapArchive(db, hb, m.Epoch)
			}
		},
	})
	if err != nil {
		return nil, nil, cluster.Manifest{}, err
	}
	start := time.Now()
	db, m, err := rep.Bootstrap(ctx)
	if err != nil {
		return nil, nil, cluster.Manifest{}, err
	}
	logger.Info("replica bootstrapped", "origin", originURL, "hash", m.Hash[:12],
		"epoch", m.Epoch, "elapsed", time.Since(start).Round(time.Millisecond))
	return rep, db, m, nil
}

// startTracker builds the tracker over the tree, performs the initial
// ingest (replaying history into the event log) and returns the first
// database to serve.
func startTracker(tree, archivePath string, interval, settle time.Duration, eventsPath string, tracer *obs.Tracer, logger *slog.Logger) (*tracker.Tracker, *store.Database, error) {
	var log *tracker.Log
	if eventsPath != "" {
		var err error
		log, err = tracker.NewLog(tracker.LogOptions{Path: eventsPath})
		if err != nil {
			return nil, nil, fmt.Errorf("open event log: %w", err)
		}
	}
	trk, err := tracker.New(tracker.Config{
		Source:   tracker.NewDirSource(tree, settle),
		Catalog:  catalog.Options{ArchivePath: archivePath},
		Interval: interval,
		Log:      log,
		Logger:   logger,
		Tracer:   tracer,
		OnReload: func(db *store.Database) { reloadFleet(db, logger) },
	})
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	n, err := trk.Rescan()
	if err != nil {
		return nil, nil, fmt.Errorf("initial ingest of %s: %w", tree, err)
	}
	logger.Info("tree ingested", "dir", tree, "snapshots", n,
		"events", trk.LastSeq(), "elapsed", time.Since(start).Round(time.Millisecond))
	return trk, trk.Database(), nil
}

func loadDatabase(seed, tree, archivePath string, logger *slog.Logger) (*store.Database, error) {
	start := time.Now()
	if tree != "" {
		db, info, err := catalog.LoadTreeInfo(tree, catalog.Options{ArchivePath: archivePath})
		if err != nil {
			return nil, fmt.Errorf("ingest %s: %w", tree, err)
		}
		logger.Info("tree ingested", "dir", tree, "from_archive", info.FromArchive,
			"snapshots", db.TotalSnapshots(), "elapsed", time.Since(start).Round(time.Millisecond))
		return db, nil
	}
	if archivePath != "" {
		db, err := archive.ReadFile(archivePath)
		if err != nil {
			return nil, fmt.Errorf("read archive %s: %w", archivePath, err)
		}
		logger.Info("archive loaded", "path", archivePath,
			"snapshots", db.TotalSnapshots(), "elapsed", time.Since(start).Round(time.Millisecond))
		return db, nil
	}
	eco, err := synth.Cached(seed)
	if err != nil {
		return nil, fmt.Errorf("generate ecosystem: %w", err)
	}
	logger.Info("ecosystem generated", "seed", seed,
		"snapshots", eco.DB.TotalSnapshots(), "elapsed", time.Since(start).Round(time.Millisecond))
	return eco.DB, nil
}
