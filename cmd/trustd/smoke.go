package main

// The -smoke self-test: a hermetic end-to-end drive of the serving and
// observability stack against generated certificates. It builds a tiny
// two-store database where the stores disagree, serves it on a loopback
// listener, and makes real HTTP requests — the same wire path CI's curl
// would take — asserting on verdict divergence, W3C trace propagation,
// the /debug/traces span anatomy, and a lint-clean Prometheus exposition.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/certgen"
	"repro/internal/certutil"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/testcerts"
)

const smokeTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func runSmoke(logger *slog.Logger) int {
	if err := smoke(logger); err != nil {
		logger.Error("trustd smoke: FAIL", "err", err)
		return 1
	}
	fmt.Println("trustd smoke: OK")
	return 0
}

func smoke(logger *slog.Logger) error {
	db, chainPEM, err := smokeFixture()
	if err != nil {
		return err
	}

	tracer := obs.NewTracer(obs.Options{SlowThreshold: -1, Logger: logger})
	srv := service.New(db, service.Config{Logger: logger, Tracer: tracer})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}

	// 1. Verify fan-out with a remote trace parent: the TLS stores disagree,
	// the CT log (a non-TLS provider on the same pipeline) anchors the
	// chain, and the response joins the caller's trace.
	body, _ := json.Marshal(map[string]any{
		"chain_pem": chainPEM,
		"stores":    []string{"NSS", "Debian", "CT-Smoke"},
	})
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/verify", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", smokeTraceparent)
	res, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("verify request: %w", err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("verify status %d: %s", res.StatusCode, raw)
	}
	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	tp, err := obs.ParseTraceparent(res.Header.Get("Traceparent"))
	if err != nil {
		return fmt.Errorf("response Traceparent %q: %w", res.Header.Get("Traceparent"), err)
	}
	if tp.TraceID.String() != wantTrace {
		return fmt.Errorf("response trace id %s, want %s (caller's trace lost)", tp.TraceID, wantTrace)
	}
	var vr struct {
		Verdicts []struct {
			Provider string `json:"provider"`
			Outcome  string `json:"outcome"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(raw, &vr); err != nil {
		return fmt.Errorf("decode verify response: %w", err)
	}
	outcomes := map[string]string{}
	for _, v := range vr.Verdicts {
		outcomes[v.Provider] = v.Outcome
	}
	if outcomes["NSS"] != "ok" {
		return fmt.Errorf("NSS outcome %q, want ok (%s)", outcomes["NSS"], raw)
	}
	if outcomes["Debian"] == "ok" || outcomes["Debian"] == "" {
		return fmt.Errorf("Debian outcome %q, want a failure (its store lacks the anchor)", outcomes["Debian"])
	}
	if outcomes["CT-Smoke"] != "ok" {
		return fmt.Errorf("CT-Smoke outcome %q, want ok (the CT store accepts the anchor)", outcomes["CT-Smoke"])
	}

	// 1b. /v1/providers tags each provider with its ecosystem kind.
	var provs struct {
		Providers []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"providers"`
	}
	if err := smokeGetJSON(client, base+"/v1/providers", &provs); err != nil {
		return err
	}
	kinds := map[string]string{}
	for _, p := range provs.Providers {
		kinds[p.Name] = p.Kind
	}
	if kinds["CT-Smoke"] != "ct" {
		return fmt.Errorf("CT-Smoke kind %q, want ct (%v)", kinds["CT-Smoke"], kinds)
	}
	if kinds["NSS"] != "tls" || kinds["Debian"] != "tls" {
		return fmt.Errorf("TLS providers mis-tagged: %v", kinds)
	}

	// 2. The trace is queryable with per-store fan-out spans.
	var traces struct {
		Recent []struct {
			TraceID string `json:"trace_id"`
			Spans   []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"recent"`
	}
	if err := smokeGetJSON(client, base+"/debug/traces", &traces); err != nil {
		return err
	}
	found := false
	for _, tr := range traces.Recent {
		if tr.TraceID != wantTrace {
			continue
		}
		stores := 0
		for _, sp := range tr.Spans {
			if sp.Name == "verify.store" {
				stores++
			}
		}
		if stores < 2 {
			return fmt.Errorf("trace %s has %d verify.store spans, want 2", wantTrace, stores)
		}
		found = true
	}
	if !found {
		return fmt.Errorf("trace %s missing from /debug/traces", wantTrace)
	}

	// 3. Batch verification: NDJSON in, NDJSON out, in order, with per-line
	// error isolation — a PEM line, the same chain as chain_der, and one
	// garbage line that must cost itself and nothing else.
	block, _ := pem.Decode([]byte(chainPEM))
	if block == nil {
		return fmt.Errorf("smoke chain is not PEM")
	}
	var nd bytes.Buffer
	line1, _ := json.Marshal(map[string]any{"chain_pem": chainPEM, "stores": []string{"NSS", "Debian"}})
	line2, _ := json.Marshal(map[string]any{
		"chain_der": []string{base64.StdEncoding.EncodeToString(block.Bytes)},
		"stores":    []string{"NSS", "Debian"},
	})
	nd.Write(line1)
	nd.WriteByte('\n')
	nd.WriteString("{not json}\n")
	nd.Write(line2)
	nd.WriteByte('\n')
	bres, err := client.Post(base+"/v1/verify/batch", "application/x-ndjson", &nd)
	if err != nil {
		return fmt.Errorf("batch request: %w", err)
	}
	braw, _ := io.ReadAll(bres.Body)
	bres.Body.Close()
	if bres.StatusCode != http.StatusOK {
		return fmt.Errorf("batch status %d: %s", bres.StatusCode, braw)
	}
	var blines []struct {
		Seq      int    `json:"seq"`
		Error    string `json:"error"`
		Verdicts []struct {
			Provider string `json:"provider"`
			Outcome  string `json:"outcome"`
		} `json:"verdicts"`
	}
	for i, ln := range bytes.Split(bytes.TrimSpace(braw), []byte{'\n'}) {
		var bl struct {
			Seq      int    `json:"seq"`
			Error    string `json:"error"`
			Verdicts []struct {
				Provider string `json:"provider"`
				Outcome  string `json:"outcome"`
			} `json:"verdicts"`
		}
		if err := json.Unmarshal(ln, &bl); err != nil {
			return fmt.Errorf("batch line %d is not JSON: %w (%s)", i, err, ln)
		}
		blines = append(blines, bl)
	}
	if len(blines) != 3 {
		return fmt.Errorf("batch answered %d lines, want 3:\n%s", len(blines), braw)
	}
	for i, bl := range blines {
		if bl.Seq != i {
			return fmt.Errorf("batch line %d has seq %d (order lost)", i, bl.Seq)
		}
	}
	if blines[1].Error == "" {
		return fmt.Errorf("garbage batch line produced no error: %s", braw)
	}
	for _, i := range []int{0, 2} {
		if blines[i].Error != "" {
			return fmt.Errorf("batch line %d errored: %s", i, blines[i].Error)
		}
		got := map[string]string{}
		for _, v := range blines[i].Verdicts {
			got[v.Provider] = v.Outcome
		}
		if got["NSS"] != "ok" || got["Debian"] == "ok" || got["Debian"] == "" {
			return fmt.Errorf("batch line %d verdicts %v, want NSS ok and Debian failing (same as /v1/verify)", i, got)
		}
	}

	// 4. What-if simulation: removing root 1 (trusted by both stores) from
	// NSS must impact the NSS-routed UA share and open a divergence window
	// on Debian, the derivative left still trusting it; the sweep ranking
	// is cached per generation behind the rootpack ETag.
	target := certutil.SHA256Fingerprint(testcerts.Roots(3)[1].DER).String()
	sbody, _ := json.Marshal(map[string]any{"kind": "removal", "fingerprints": []string{target}})
	sres, err := client.Post(base+"/v1/simulate", "application/json", bytes.NewReader(sbody))
	if err != nil {
		return fmt.Errorf("simulate request: %w", err)
	}
	sraw, _ := io.ReadAll(sres.Body)
	sres.Body.Close()
	if sres.StatusCode != http.StatusOK {
		return fmt.Errorf("simulate status %d: %s", sres.StatusCode, sraw)
	}
	var sim struct {
		ImpactFraction float64 `json:"impact_fraction"`
		Divergence     []struct {
			Store      string `json:"store"`
			Derivative bool   `json:"derivative"`
		} `json:"divergence"`
	}
	if err := json.Unmarshal(sraw, &sim); err != nil {
		return fmt.Errorf("decode simulate response: %w", err)
	}
	if sim.ImpactFraction <= 0 {
		return fmt.Errorf("simulated NSS removal has zero impact: %s", sraw)
	}
	if len(sim.Divergence) != 1 || sim.Divergence[0].Store != "Debian" || !sim.Divergence[0].Derivative {
		return fmt.Errorf("divergence %v, want Debian as a still-trusting derivative", sim.Divergence)
	}
	swres, err := client.Get(base + "/v1/simulate/sweep")
	if err != nil {
		return fmt.Errorf("sweep request: %w", err)
	}
	io.Copy(io.Discard, swres.Body)
	swres.Body.Close()
	etag := swres.Header.Get("ETag")
	if swres.StatusCode != http.StatusOK || etag == "" {
		return fmt.Errorf("sweep status %d, etag %q", swres.StatusCode, etag)
	}
	condReq, _ := http.NewRequest(http.MethodGet, base+"/v1/simulate/sweep", nil)
	condReq.Header.Set("If-None-Match", etag)
	condRes, err := client.Do(condReq)
	if err != nil {
		return fmt.Errorf("conditional sweep request: %w", err)
	}
	io.Copy(io.Discard, condRes.Body)
	condRes.Body.Close()
	if condRes.StatusCode != http.StatusNotModified {
		return fmt.Errorf("conditional sweep status %d, want 304", condRes.StatusCode)
	}

	// 5. The Prometheus exposition is well-formed and carries the headline
	// families.
	pres, err := client.Get(base + "/metrics/prometheus")
	if err != nil {
		return fmt.Errorf("prometheus scrape: %w", err)
	}
	ptext, _ := io.ReadAll(pres.Body)
	pres.Body.Close()
	if pres.StatusCode != http.StatusOK {
		return fmt.Errorf("prometheus scrape status %d", pres.StatusCode)
	}
	if problems := obs.LintExposition(bytes.NewReader(ptext)); len(problems) != 0 {
		return fmt.Errorf("malformed exposition:\n%s", strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		`trustd_requests_total{route="POST /v1/verify"}`,
		`trustd_request_duration_seconds_bucket{route="POST /v1/verify",le="+Inf"}`,
		`trustd_provider_lag_seconds{provider="NSS"}`,
		`trustd_provider_kinds{kind="ct"} 1`,
		`trustd_provider_kinds{kind="tls"} 2`,
		"trustd_verify_outcomes_total",
		"trustd_traces_started_total",
		"trustd_batches_total 1",
		"trustd_batch_lines_total 3",
		"trustd_batch_verdicts_total 4",
		"trustd_batch_rejected_lines_total 1",
		"trustd_batch_queue_depth 0",
		`trustd_simulate_events_total{kind="removal"} 1`,
		"trustd_simulate_sweeps_total 1",
		"trustd_simulate_sweep_builds_total 1",
		"trustd_simulate_sweep_pairs",
		"go_goroutines",
	} {
		if !bytes.Contains(ptext, []byte(want)) {
			return fmt.Errorf("exposition missing %q", want)
		}
	}
	return nil
}

// smokeFixture builds the disagreement database — NSS trusts roots 0–2,
// Debian only 1–2, and a CT-kind provider accepts 0 and 2 — plus a leaf
// chaining to root 0, so the same chain verifies in one TLS store and the
// CT log but fails in the derivative (the paper's §6 observable in
// miniature, with a non-TLS ecosystem riding along). The CT store skips
// root 1 so the simulate leg's removal still opens exactly one divergence
// window.
func smokeFixture() (*store.Database, string, error) {
	roots := testcerts.Roots(3)
	snapDate := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

	db := store.NewDatabase()
	add := func(provider string, kind store.Kind, idx ...int) error {
		snap := store.NewSnapshot(provider, snapDate.Format("2006-01-02"), snapDate)
		snap.Kind = kind
		for _, i := range idx {
			e, err := store.NewTrustedEntry(roots[i].DER, store.ServerAuth)
			if err != nil {
				return err
			}
			snap.Add(e)
		}
		return db.AddSnapshot(snap)
	}
	if err := add("NSS", store.KindTLS, 0, 1, 2); err != nil {
		return nil, "", err
	}
	if err := add("Debian", store.KindTLS, 1, 2); err != nil {
		return nil, "", err
	}
	if err := add("CT-Smoke", store.KindCT, 0, 2); err != nil {
		return nil, "", err
	}

	leafDER, _, err := roots[0].IssueLeaf(testcerts.Pool(), certgen.LeafSpec{
		CommonName: "smoke.example.test",
		DNSNames:   []string{"smoke.example.test"},
		NotBefore:  time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		return nil, "", fmt.Errorf("issue smoke leaf: %w", err)
	}
	var buf bytes.Buffer
	if err := pem.Encode(&buf, &pem.Block{Type: "CERTIFICATE", Bytes: leafDER}); err != nil {
		return nil, "", err
	}
	return db, buf.String(), nil
}

func smokeGetJSON(client *http.Client, url string, out any) error {
	res, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %w", url, err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, res.StatusCode)
	}
	if err := json.NewDecoder(res.Body).Decode(out); err != nil {
		return fmt.Errorf("GET %s: decode: %w", url, err)
	}
	return nil
}
