package main

// The -smoke-cluster self-test: a hermetic origin + two-replica fleet on
// loopback listeners, exercising the exact wiring a real deployment uses —
// origin publish, replica bootstrap over HTTP, a rolled generation
// converging through long-polls, generation headers, and the convergence
// gauges — while a query loop asserts that no request ever fails.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/testcerts"
)

func runSmokeCluster(logger *slog.Logger) int {
	if err := smokeClusterScenario(logger); err != nil {
		logger.Error("trustd smoke-cluster: FAIL", "err", err)
		return 1
	}
	fmt.Println("trustd smoke-cluster: OK")
	return 0
}

// smokeNode is one loopback trustd: a service on a real listener.
type smokeNode struct {
	srv  *service.Server
	base string
	hs   *http.Server
}

func serveNode(srv *service.Server) (*smokeNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go hs.Serve(ln)
	return &smokeNode{srv: srv, base: "http://" + ln.Addr().String(), hs: hs}, nil
}

func smokeClusterScenario(logger *slog.Logger) error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	db1, err := smokeClusterDB("2020-06-01", 0, 1)
	if err != nil {
		return err
	}

	// Origin node: service + mounted distribution endpoints.
	org := cluster.NewOrigin(cluster.OriginOptions{Logger: logger})
	m1, err := org.Publish(ctx, db1, [archive.HashLen]byte{})
	if err != nil {
		return fmt.Errorf("publish: %w", err)
	}
	originSrv := service.New(db1, service.Config{Logger: logger})
	if hb, err := m1.HashBytes(); err == nil {
		originSrv.SwapArchive(db1, hb, m1.Epoch)
	}
	originSrv.Mount("/cluster/", org.Handler())
	originSrv.AddStatsSource(org)
	originNode, err := serveNode(originSrv)
	if err != nil {
		return err
	}
	defer originNode.hs.Close()

	// Two replica nodes bootstrapping over the wire.
	replicas := make([]*smokeNode, 2)
	for i := range replicas {
		node, stop, err := smokeReplicaNode(ctx, originNode.base, logger)
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
		defer stop()
		replicas[i] = node
	}
	for i, n := range replicas {
		if hash, epoch := n.srv.Generation(); hash != m1.Hash || epoch != m1.Epoch {
			return fmt.Errorf("replica %d bootstrapped on %s/%d, want %s/%d", i, hash, epoch, m1.Hash, m1.Epoch)
		}
	}

	// Continuous query load across the whole fleet while the snapshot
	// change rolls through. Every response must be a clean 2xx.
	var failures, queries atomic.Uint64
	loadCtx, stopLoad := context.WithCancel(ctx)
	defer stopLoad()
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		client := &http.Client{Timeout: 5 * time.Second}
		targets := []string{originNode.base, replicas[0].base, replicas[1].base}
		for i := 0; loadCtx.Err() == nil; i++ {
			res, err := client.Get(targets[i%len(targets)] + "/v1/providers")
			queries.Add(1)
			if err != nil {
				failures.Add(1)
				continue
			}
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
			if res.StatusCode != http.StatusOK {
				failures.Add(1)
			}
		}
	}()

	// Roll one snapshot change through the fleet: origin publishes, the
	// long-polls wake, both replicas converge.
	db2, err := smokeClusterDB("2020-07-01", 1, 2)
	if err != nil {
		return err
	}
	m2, err := org.Publish(ctx, db2, [archive.HashLen]byte{})
	if err != nil {
		return fmt.Errorf("publish v2: %w", err)
	}
	if m2.Epoch != m1.Epoch+1 {
		return fmt.Errorf("second publish epoch %d, want %d", m2.Epoch, m1.Epoch+1)
	}
	if hb, err := m2.HashBytes(); err == nil {
		originSrv.SwapArchive(db2, hb, m2.Epoch)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		converged := 0
		for _, n := range replicas {
			if hash, _ := n.srv.Generation(); hash == m2.Hash {
				converged++
			}
		}
		if converged == len(replicas) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replicas did not converge on %s within 15s", m2.Hash[:12])
		}
		time.Sleep(25 * time.Millisecond)
	}
	stopLoad()
	<-loadDone
	if q, f := queries.Load(), failures.Load(); f != 0 || q == 0 {
		return fmt.Errorf("%d of %d fleet queries failed during the roll", f, q)
	}

	// The generation surface agrees across the fleet: headers, healthz,
	// and the convergence gauges.
	client := &http.Client{Timeout: 5 * time.Second}
	for i, n := range append([]*smokeNode{originNode}, replicas...) {
		res, err := client.Get(n.base + "/healthz")
		if err != nil {
			return err
		}
		var h struct {
			Generation struct {
				Hash  string `json:"hash"`
				Epoch uint64 `json:"epoch"`
			} `json:"generation"`
		}
		err = json.NewDecoder(res.Body).Decode(&h)
		res.Body.Close()
		if err != nil {
			return err
		}
		if res.Header.Get("X-Rootpack-Hash") != m2.Hash || h.Generation.Hash != m2.Hash || h.Generation.Epoch != m2.Epoch {
			return fmt.Errorf("node %d serves generation %s/%d (header %s), fleet is on %s/%d",
				i, h.Generation.Hash, h.Generation.Epoch, res.Header.Get("X-Rootpack-Hash"), m2.Hash, m2.Epoch)
		}
	}
	res, err := client.Get(replicas[0].base + "/metrics/prometheus")
	if err != nil {
		return err
	}
	ptext, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("trustd_cluster_replica_epoch %d", m2.Epoch),
		fmt.Sprintf("trustd_cluster_origin_epoch %d", m2.Epoch),
		"trustd_cluster_replica_lag_seconds",
	} {
		if !strings.Contains(string(ptext), want) {
			return fmt.Errorf("replica exposition missing %q", want)
		}
	}
	return nil
}

// smokeReplicaNode builds one replica-backed service the same way main()
// does: bootstrap first, then route later swaps through an atomic server
// pointer.
func smokeReplicaNode(ctx context.Context, originURL string, logger *slog.Logger) (*smokeNode, func(), error) {
	var srvPtr atomic.Pointer[service.Server]
	rep, err := cluster.NewReplica(cluster.ReplicaConfig{
		OriginURL:  originURL,
		Interval:   50 * time.Millisecond,
		WaitFor:    500 * time.Millisecond,
		MaxBackoff: time.Second,
		Logger:     logger,
		OnSwap: func(db *store.Database, m cluster.Manifest) {
			s := srvPtr.Load()
			if s == nil {
				return
			}
			if hb, err := m.HashBytes(); err == nil {
				s.SwapArchive(db, hb, m.Epoch)
			}
		},
	})
	if err != nil {
		return nil, nil, err
	}
	db, m, err := rep.Bootstrap(ctx)
	if err != nil {
		return nil, nil, err
	}
	srv := service.New(db, service.Config{Logger: logger})
	if hb, err := m.HashBytes(); err == nil {
		srv.SwapArchive(db, hb, m.Epoch)
	}
	srv.AddStatsSource(rep)
	srvPtr.Store(srv)
	runCtx, stopRun := context.WithCancel(ctx)
	go rep.Run(runCtx)
	node, err := serveNode(srv)
	if err != nil {
		stopRun()
		return nil, nil, err
	}
	return node, func() { stopRun(); node.hs.Close() }, nil
}

// smokeClusterDB builds the same two-provider disagreement shape as the
// plain smoke fixture, parameterised so successive generations hash
// differently.
func smokeClusterDB(version string, idx ...int) (*store.Database, error) {
	roots := testcerts.Roots(3)
	date, err := time.Parse("2006-01-02", version)
	if err != nil {
		return nil, err
	}
	db := store.NewDatabase()
	for _, provider := range []string{"NSS", "Debian"} {
		snap := store.NewSnapshot(provider, version, date)
		for _, i := range idx {
			e, err := store.NewTrustedEntry(roots[i].DER, store.ServerAuth)
			if err != nil {
				return nil, err
			}
			snap.Add(e)
		}
		if err := db.AddSnapshot(snap); err != nil {
			return nil, err
		}
	}
	return db, nil
}
