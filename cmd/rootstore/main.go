// Command rootstore inspects, diffs and converts root-store files across
// every format the library supports.
//
// Usage:
//
//	rootstore inspect -format F PATH
//	rootstore diff    -format F PATH -format2 G PATH2
//	rootstore convert -format F PATH -to G OUT
//
// Formats: certdata, pem, pemdir, jks, authroot, apple, node.
// For jks, -password selects the integrity password (default "changeit").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/catalog"
	"repro/internal/certdata"
	"repro/internal/certutil"
	"repro/internal/core"
	"repro/internal/jks"
	"repro/internal/nodecerts"
	"repro/internal/pemstore"
	"repro/internal/report"
	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	format := fs.String("format", "", "input format: certdata|pem|pemdir|jks|authroot|apple|node")
	format2 := fs.String("format2", "", "second input format (diff)")
	to := fs.String("to", "", "output format (convert)")
	password := fs.String("password", "changeit", "JKS integrity password")
	purpose := fs.String("purpose", "server-auth", "trust purpose for bare-list formats")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	args := fs.Args()

	p, err := store.ParsePurpose(*purpose)
	if err != nil {
		fail(err)
	}

	switch cmd {
	case "inspect":
		if len(args) != 1 || *format == "" {
			usage()
		}
		entries, err := parseAny(*format, args[0], *password, p)
		if err != nil {
			fail(err)
		}
		inspect(entries)
	case "diff":
		if len(args) != 2 || *format == "" {
			usage()
		}
		f2 := *format2
		if f2 == "" {
			f2 = *format
		}
		a, err := parseAny(*format, args[0], *password, p)
		if err != nil {
			fail(err)
		}
		b, err := parseAny(f2, args[1], *password, p)
		if err != nil {
			fail(err)
		}
		diff(a, b, p)
	case "audit":
		if len(args) != 2 || *format == "" {
			usage()
		}
		f2 := *format2
		if f2 == "" {
			f2 = *format
		}
		deriv, err := parseAny(*format, args[0], *password, p)
		if err != nil {
			fail(err)
		}
		upstream, err := parseAny(f2, args[1], *password, p)
		if err != nil {
			fail(err)
		}
		audit(deriv, upstream, p)
	case "convert":
		if len(args) != 2 || *format == "" || *to == "" {
			usage()
		}
		entries, err := parseAny(*format, args[0], *password, p)
		if err != nil {
			fail(err)
		}
		if err := writeAny(*to, args[1], entries, *password); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d entries to %s (%s)\n", len(entries), args[1], *to)
	default:
		usage()
	}
}

func parseAny(format, path, password string, p store.Purpose) ([]*store.TrustEntry, error) {
	switch format {
	case "certdata":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		res, err := certdata.Parse(f)
		if err != nil {
			return nil, err
		}
		for _, w := range res.Warnings {
			fmt.Fprintf(os.Stderr, "warning: %s\n", w)
		}
		return res.Entries, nil
	case "pem":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pemstore.ParseBundle(f, p)
	case "pemdir":
		return pemstore.ReadDir(path, p)
	case "jks":
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		ks, err := jks.Parse(data, password)
		if err != nil {
			return nil, err
		}
		return ks.ToEntries(store.ServerAuth, store.EmailProtection, store.CodeSigning)
	case "authroot":
		entries, missing, err := authroot.ReadBundle(path)
		if err != nil {
			return nil, err
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d subjects missing certificate files\n", len(missing))
		}
		return entries, nil
	case "apple":
		return applestore.ReadDir(path)
	case "node":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return nodecerts.Parse(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func writeAny(format, path string, entries []*store.TrustEntry, password string) error {
	switch format {
	case "certdata":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return certdata.Marshal(f, entries)
	case "pem":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return pemstore.WriteBundle(f, entries)
	case "pemdir":
		return pemstore.WriteDir(path, entries)
	case "jks":
		data, err := jks.Marshal(jks.FromEntries(entries, time.Now()), password)
		if err != nil {
			return err
		}
		return os.WriteFile(path, data, 0o644)
	case "authroot":
		return authroot.WriteBundle(path, entries, time.Now().Unix(), time.Now())
	case "apple":
		return applestore.WriteDir(path, entries)
	case "node":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		return nodecerts.Marshal(f, entries)
	default:
		return fmt.Errorf("unknown output format %q", format)
	}
}

func inspect(entries []*store.TrustEntry) {
	t := report.NewTable(fmt.Sprintf("%d trust anchors", len(entries)),
		"Fingerprint", "Label", "Key", "Signature", "Expires", "Trust")
	for _, e := range entries {
		trust := ""
		for _, p := range store.AllPurposes {
			if l := e.TrustFor(p); l != store.Unspecified {
				if trust != "" {
					trust += " "
				}
				trust += fmt.Sprintf("%s=%s", p, l)
				if da, ok := e.DistrustAfterFor(p); ok {
					trust += fmt.Sprintf("(until %s)", da.Format("2006-01-02"))
				}
			}
		}
		t.AddRow(e.Fingerprint.Short(), e.Label,
			certutil.ClassifyKey(e.Cert).String(),
			certutil.ClassifySignature(e.Cert.SignatureAlgorithm).String(),
			e.Cert.NotAfter.Format("2006-01-02"), trust)
	}
	_ = t.Render(os.Stdout)
}

func diff(a, b []*store.TrustEntry, p store.Purpose) {
	sa := store.NewSnapshot("a", "a", time.Now())
	for _, e := range a {
		sa.Add(e)
	}
	sb := store.NewSnapshot("b", "b", time.Now())
	for _, e := range b {
		sb.Add(e)
	}
	onlyA, onlyB, both := store.SetDiff(sa, sb, p)
	fmt.Printf("only in %s: %d   only in %s: %d   shared: %d\n",
		filepath.Base(os.Args[len(os.Args)-2]), len(onlyA),
		filepath.Base(os.Args[len(os.Args)-1]), len(onlyB), len(both))
	for _, fp := range onlyA {
		e, _ := sa.Lookup(fp)
		fmt.Printf("  - %s %s\n", fp.Short(), e.Label)
	}
	for _, fp := range onlyB {
		e, _ := sb.Lookup(fp)
		fmt.Printf("  + %s %s\n", fp.Short(), e.Label)
	}
	d := store.DiffSnapshots(sa, sb)
	for _, tc := range d.TrustChanges {
		fmt.Printf("  ~ %s\n", tc)
	}
}

// audit runs the snapshot-level derivative linter: the first store is the
// derivative, the second its upstream.
func audit(deriv, upstream []*store.TrustEntry, p store.Purpose) {
	now := time.Now()
	ds := store.NewSnapshot("derivative", "cli", now)
	for _, e := range deriv {
		ds.Add(e)
	}
	us := store.NewSnapshot("upstream", "cli", now)
	for _, e := range upstream {
		us.Add(e)
	}
	report := core.AuditSnapshots(ds, us, p)
	if len(report.Findings) == 0 {
		fmt.Println("no findings: stores agree for this purpose")
		return
	}
	for kind, n := range report.CountByKind() {
		fmt.Printf("%-24s %d\n", kind, n)
	}
	fmt.Println()
	for _, f := range report.Findings {
		fmt.Println(" ", f)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rootstore inspect -format F PATH
  rootstore diff    -format F [-format2 G] PATH PATH2
  rootstore audit   -format F [-format2 G] DERIVATIVE UPSTREAM
  rootstore convert -format F -to G PATH OUT

rootstore works on single store files. To manage whole release histories,
lay files out as a snapshot tree and point trustd -watch / rootwatch at it:

`+catalog.TreeLayout)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rootstore: %v\n", err)
	os.Exit(1)
}
