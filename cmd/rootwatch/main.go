// Command rootwatch tails a root-store snapshot tree and narrates its
// changes: which roots appeared, which were pulled, which gained a
// Symantec-style distrust-after cutoff — each graded with the paper's
// removal-triage severities — plus a live recomputation of the
// removal-responsiveness deltas behind Table 4.
//
// Usage:
//
//	rootwatch -tree DIR [-interval 2s] [-once] [-replay] [-min-severity info]
//	          [-jsonl FILE] [-table4]
//	rootwatch -smoke
//
// The tree uses the module's shared snapshot layout (see
// internal/catalog): <root>/<provider>/<version>/<store files>, the same
// trees cmd/synthgen writes, cmd/rootstore exports into, and trustd -watch
// serves from. rootwatch ingests the whole tree first — replaying each
// provider's history into the event log chronologically — then polls for
// new or modified snapshot directories until interrupted.
//
// -once ingests, optionally replays, prints the responsiveness table and
// exits (cron-friendly). -jsonl makes the event log durable and resumable
// across runs. -smoke self-tests the pipeline against generated
// certificates and exits non-zero unless a removal event with a severity
// tag comes out the far end — CI runs it as a hermetic end-to-end check.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/pemstore"
	"repro/internal/store"
	"repro/internal/testcerts"
	"repro/internal/tracker"
)

func main() {
	tree := flag.String("tree", "", "snapshot tree to watch (<provider>/<version>/ directories)")
	interval := flag.Duration("interval", tracker.DefaultInterval, "poll cadence")
	settle := flag.Duration("settle", 2*time.Second, "quiescence a new snapshot dir needs before ingest")
	once := flag.Bool("once", false, "ingest, report and exit instead of polling")
	replay := flag.Bool("replay", false, "print the events of the initial historical ingest too")
	minSeverity := flag.String("min-severity", "info", "only print events at or above this severity (info|notice|medium|high)")
	jsonl := flag.String("jsonl", "", "persist events to this JSONL file (resumes sequence across runs)")
	archivePath := flag.String("archive", "", "rootpack sidecar location for fast cold starts (default <tree>/.rootpack)")
	table4 := flag.Bool("table4", true, "print the removal-responsiveness table on exit")
	smoke := flag.Bool("smoke", false, "run a hermetic self-test and exit (0 = event pipeline works)")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar and /debug/traces on this private address (off when empty)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *smoke {
		os.Exit(runSmoke(logger))
	}
	if *tree == "" {
		fmt.Fprintln(os.Stderr, "rootwatch: -tree is required (or -smoke); see -h")
		os.Exit(2)
	}
	floor, err := tracker.ParseSeverity(*minSeverity)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: %v\n", err)
		os.Exit(2)
	}

	var log *tracker.Log
	if *jsonl != "" {
		if log, err = tracker.NewLog(tracker.LogOptions{Path: *jsonl}); err != nil {
			fmt.Fprintf(os.Stderr, "rootwatch: open event log: %v\n", err)
			os.Exit(1)
		}
	}
	// Rescan traces (scan → parse/splice → classify) land in this ring,
	// served on -debug-addr alongside pprof.
	tracer := obs.NewTracer(obs.Options{Logger: logger})
	trk, err := tracker.New(tracker.Config{
		Source:   tracker.NewDirSource(*tree, *settle),
		Catalog:  catalog.Options{ArchivePath: *archivePath},
		Interval: *interval,
		Log:      log,
		Logger:   logger,
		Tracer:   tracer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: %v\n", err)
		os.Exit(1)
	}
	if *debugAddr != "" {
		go runDebugServer(*debugAddr, tracer, logger)
	}

	// Subscribe before the first rescan so nothing slips between replay
	// and live tailing.
	live, cancel := trk.Subscribe(256)
	defer cancel()

	baseline := trk.LastSeq() // non-zero when -jsonl resumes an old log
	n, err := trk.Rescan()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: initial ingest: %v\n", err)
		os.Exit(1)
	}
	logger.Info("tree ingested", "snapshots", n, "events", trk.LastSeq()-baseline)
	if *replay {
		for _, ev := range trk.Replay(tracker.Filter{SinceSeq: baseline, MinSeverity: floor}) {
			fmt.Println(ev)
		}
	}

	if !*once {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		go trk.Run(ctx)
		logger.Info("watching", "tree", *tree, "interval", *interval)
		replayed := trk.LastSeq()
	tail:
		for {
			select {
			case <-ctx.Done():
				break tail
			case ev := <-live:
				if ev.Seq <= replayed || ev.Severity < floor {
					continue // already printed by -replay, or below the floor
				}
				fmt.Println(ev)
			}
		}
	}

	if *table4 {
		printResponsiveness(trk.Responsiveness())
	}
}

// runDebugServer serves the private diagnostics mux — pprof, expvar,
// /debug/traces — for the life of the process. Failures are logged, never
// fatal: losing pprof must not stop the watch.
func runDebugServer(addr string, tracer *obs.Tracer, logger *slog.Logger) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           obs.DebugMux(tracer),
		ReadHeaderTimeout: 5 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}
	logger.Info("debug listener", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Warn("debug listener failed", "err", err)
	}
}

// printResponsiveness renders the live Table 4: per removed root, who
// pulled it first and how many days each other store lagged behind.
func printResponsiveness(rows []tracker.RemovalRow) {
	if len(rows) == 0 {
		fmt.Println("no removals observed")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ROOT\tFIRST REMOVED BY\tON\tFOLLOWERS (lag days)")
	for _, row := range rows {
		name := row.Label
		if name == "" {
			name = row.Fingerprint[:16]
		}
		type follower struct {
			provider string
			days     int
		}
		var fs []follower
		for p, d := range row.LagDays {
			if p != row.FirstProvider {
				fs = append(fs, follower{p, d})
			}
		}
		sort.Slice(fs, func(i, j int) bool { return fs[i].days < fs[j].days })
		followers := ""
		for i, f := range fs {
			if i > 0 {
				followers += ", "
			}
			followers += fmt.Sprintf("%s +%dd", f.provider, f.days)
		}
		if followers == "" {
			followers = "(none yet)"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", name, row.FirstProvider, row.FirstDate.Format("2006-01-02"), followers)
	}
	w.Flush()
}

// runSmoke is the hermetic self-test: build a tiny two-provider tree from
// generated certificates, ingest it, apply a removal, and demand the
// pipeline produce a severity-tagged removal event plus a responsiveness
// row. Exit status is the verdict.
func runSmoke(logger *slog.Logger) int {
	root, err := os.MkdirTemp("", "rootwatch-smoke-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: %v\n", err)
		return 1
	}
	defer os.RemoveAll(root)

	entries := testcerts.Entries(3, store.ServerAuth)
	write := func(provider, version string, es []*store.TrustEntry) error {
		dir := filepath.Join(root, provider, version)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
		if err != nil {
			return err
		}
		defer f.Close()
		return pemstore.WriteBundle(f, es)
	}
	if err := write("NSS", "2020-01-01", entries); err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: seed tree: %v\n", err)
		return 1
	}
	if err := write("Debian", "2020-01-01", entries); err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: seed tree: %v\n", err)
		return 1
	}

	trk, err := tracker.New(tracker.Config{Source: tracker.NewDirSource(root, 0), Logger: logger})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: %v\n", err)
		return 1
	}
	if _, err := trk.Rescan(); err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: initial ingest: %v\n", err)
		return 1
	}

	// NSS pulls the first root; Debian still trusts it → high severity.
	if err := write("NSS", "2020-03-01", entries[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: removal snapshot: %v\n", err)
		return 1
	}
	if _, err := trk.Rescan(); err != nil {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: rescan: %v\n", err)
		return 1
	}

	removals := trk.Replay(tracker.Filter{Type: tracker.RootRemoved})
	if len(removals) != 1 {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: FAIL: %d removal events, want 1\n", len(removals))
		return 1
	}
	rm := removals[0]
	if rm.Severity != tracker.SeverityHigh {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: FAIL: removal severity %s, want high\n", rm.Severity)
		return 1
	}
	if rows := trk.Responsiveness(); len(rows) != 1 {
		fmt.Fprintf(os.Stderr, "rootwatch: smoke: FAIL: %d responsiveness rows, want 1\n", len(rows))
		return 1
	}
	fmt.Println(rm)
	printResponsiveness(trk.Responsiveness())
	fmt.Println("rootwatch smoke: OK")
	return 0
}
