package main

// The `ecosystem ct` subcommand: the non-TLS ecosystem report. It compares
// the CT-log and TPM-manifest providers against every browser store — the
// divergence table reproducing the CT root-landscape finding (logs
// accumulate, so they sit far from every browser store, while same-operator
// logs are near-identical) — and summarizes the MDS embedding with the
// ecosystem families layered in.
//
// Usage:
//
//	ecosystem ct [-seed s | -tree dir]
//	ecosystem ct -smoke
//
// With -tree, the stores come from a snapshot tree (cmd/synthgen
// -ecosystems writes one) and operators from its ct-log-list.json manifest.
// -smoke runs the hermetic self-test CI uses: generate → write native
// trees → ingest via format detection → compile and re-read the rootpack
// archive → assert the kinds and the divergence structure survived.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/certdata"
	"repro/internal/core"
	"repro/internal/ctlog"
	"repro/internal/manifest"
	"repro/internal/report"
	"repro/internal/setdist"
	"repro/internal/store"
	"repro/internal/synth"
)

func runCT(args []string) int {
	fs := flag.NewFlagSet("ecosystem ct", flag.ExitOnError)
	seed := fs.String("seed", "tracing-your-roots", "synthetic corpus seed (ignored with -tree)")
	tree := fs.String("tree", "", "load stores from a snapshot tree instead of generating")
	smoke := fs.Bool("smoke", false, "run the hermetic ingest/archive/report self-test and exit")
	fs.Parse(args)

	if *smoke {
		if err := ctSmoke(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ecosystem ct -smoke: %v\n", err)
			return 1
		}
		return 0
	}

	var db *store.Database
	operators := make(map[string]string)
	if *tree != "" {
		var err error
		db, err = catalog.LoadTree(*tree, catalog.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecosystem ct: %v\n", err)
			return 1
		}
		if ll, err := ctlog.LoadLogList(filepath.Join(*tree, ctlog.LogListName)); err == nil {
			for _, op := range ll.Operators {
				for _, lg := range op.Logs {
					operators[lg.Dir] = op.Name
				}
			}
		}
	} else {
		eco, err := synth.CachedWithEcosystems(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecosystem ct: %v\n", err)
			return 1
		}
		db = eco.DB
		for _, lg := range synth.CTLogs() {
			operators[lg.Name] = lg.Operator
		}
	}

	if err := renderCT(os.Stdout, db, operators); err != nil {
		fmt.Fprintf(os.Stderr, "ecosystem ct: %v\n", err)
		return 1
	}
	return 0
}

// renderCT prints the divergence matrix, the operator-correlation pairs and
// the ordination summary for the database's non-TLS providers.
func renderCT(w io.Writer, db *store.Database, operators map[string]string) error {
	p := core.New(db)
	rep := p.EcosystemDivergence()
	if len(rep.Rows) == 0 {
		fmt.Fprintln(w, "ecosystem ct: no CT-log or manifest providers in the database")
		return nil
	}

	headers := append([]string{"provider", "kind", "operator"}, rep.TLSStores...)
	headers = append(headers, "min")
	matrix := report.NewTable("Ecosystem divergence (Jaccard distance to browser stores, 1 = disjoint)", headers...)
	byProvider := make(map[string]map[string]core.DivergenceRow)
	kinds := make(map[string]store.Kind)
	for _, row := range rep.Rows {
		if byProvider[row.Provider] == nil {
			byProvider[row.Provider] = make(map[string]core.DivergenceRow)
		}
		byProvider[row.Provider][row.Store] = row
		kinds[row.Provider] = row.Kind
	}
	minDist := rep.MinDistanceToTLS()
	for _, kind := range []store.Kind{store.KindCT, store.KindManifest} {
		for _, prov := range rep.Providers[kind] {
			cells := []any{prov, string(kind), operators[prov]}
			for _, tls := range rep.TLSStores {
				cells = append(cells, fmt.Sprintf("%.3f", byProvider[prov][tls].Distance))
			}
			cells = append(cells, fmt.Sprintf("%.3f", minDist[prov]))
			matrix.AddRow(cells...)
		}
	}
	if err := matrix.Render(w); err != nil {
		return err
	}

	if pairs := rep.Pairs[store.KindCT]; len(pairs) > 0 {
		fmt.Fprintln(w)
		pt := report.NewTable("CT operator correlation (pairwise log distance)", "log A", "log B", "operators", "distance")
		for _, pair := range pairs {
			rel := "cross-operator"
			if operators[pair.A] != "" && operators[pair.A] == operators[pair.B] {
				rel = "same-operator"
			}
			pt.AddRow(pair.A, pair.B, rel, fmt.Sprintf("%.3f", pair.Distance))
		}
		if err := pt.Render(w); err != nil {
			return err
		}
	}

	for prov, op := range operators {
		p.Families[prov] = "CT:" + op
	}
	for _, prov := range rep.Providers[store.KindManifest] {
		p.Families[prov] = "TPM"
	}
	// The report embeds whatever the database holds: unlike Figure 1 there
	// is no paper window to clip to, and tree-loaded snapshots may carry
	// file-derived dates far from the publication years.
	cfg := core.DefaultOrdinationConfig()
	cfg.From = time.Time{}
	cfg.To = time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	cfg.K = 8
	ord, err := p.Ordinate(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	ot := report.NewTable("Ordination with ecosystem families (MDS centroids)", "family", "x", "y")
	for _, fam := range sortedKeys(ord.FamilyCentroids) {
		c := ord.FamilyCentroids[fam]
		ot.AddRow(fam, fmt.Sprintf("%+.3f", c[0]), fmt.Sprintf("%+.3f", c[1]))
	}
	if err := ot.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstress-1 %.3f, purity %.3f, %d families own clusters\n",
		ord.Stress1, ord.Purity, ord.DistinctFamilies)
	return nil
}

func sortedKeys(m map[string][2]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ctSmoke is the hermetic self-test: synthetic ecosystem corpus → native
// files on disk → format-detected ingest → rootpack archive round trip →
// divergence structure. Everything a CI runner needs to trust the non-TLS
// pipeline end to end, with no network and no fixtures.
func ctSmoke(w io.Writer) error {
	eco, err := synth.GenerateWithEcosystems("ct-smoke")
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "ct-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Write the ecosystem providers plus NSS (the browser reference point)
	// in their native formats.
	want := map[string]store.Kind{"NSS": store.KindTLS}
	for name, kind := range synth.EcosystemProviders() {
		want[name] = kind
	}
	orig := make(map[string]*store.Snapshot)
	for name := range want {
		s := eco.DB.History(name).Latest()
		orig[name] = s
		vdir := filepath.Join(dir, name, s.Version)
		if err := os.MkdirAll(vdir, 0o755); err != nil {
			return err
		}
		switch s.Kind.Normalize() {
		case store.KindCT:
			err = ctlog.WriteDir(vdir, s.Entries())
		case store.KindManifest:
			err = manifest.WriteDir(vdir, manifest.FromEntries(name, s.Entries()))
		default:
			var f *os.File
			if f, err = os.Create(filepath.Join(vdir, "certdata.txt")); err == nil {
				err = certdata.Marshal(f, s.Entries())
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
		if err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
	}

	// Ingest through format detection; ArchiveAuto compiles the sidecar.
	db, info, err := catalog.LoadTreeInfo(dir, catalog.Options{})
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if info.FromArchive {
		return fmt.Errorf("first load came from an archive that should not exist yet")
	}
	for name, kind := range want {
		h := db.History(name)
		if h == nil || h.Len() == 0 {
			return fmt.Errorf("ingest lost provider %s", name)
		}
		s := h.Latest()
		if got := s.Kind.Normalize(); got != kind {
			return fmt.Errorf("%s: ingested kind %q, want %q", name, got, kind)
		}
		if d := setdist.SnapshotJaccard(orig[name], s, store.ServerAuth); d != 0 {
			return fmt.Errorf("%s: trusted set changed through ingest (distance %f)", name, d)
		}
	}

	// The compiled archive must reproduce the database bit-for-bit,
	// ecosystem kinds included.
	adb, err := archive.ReadFile(info.ArchivePath)
	if err != nil {
		return fmt.Errorf("archive: %w", err)
	}
	if err := archive.Equal(db, adb); err != nil {
		return fmt.Errorf("archive round trip: %w", err)
	}

	// The divergence structure the report prints must hold on the ingested
	// data: CT far from NSS, same-operator logs identical, manifest
	// near-disjoint.
	rep := core.New(db).EcosystemDivergence()
	for _, row := range rep.Rows {
		switch row.Kind {
		case store.KindCT:
			if row.Distance < 0.25 {
				return fmt.Errorf("%s vs %s: distance %.3f < 0.25", row.Provider, row.Store, row.Distance)
			}
		case store.KindManifest:
			if row.Distance < 0.9 {
				return fmt.Errorf("%s vs %s: distance %.3f < 0.9", row.Provider, row.Store, row.Distance)
			}
		}
	}
	operator := make(map[string]string)
	for _, lg := range synth.CTLogs() {
		operator[lg.Name] = lg.Operator
	}
	for _, pair := range rep.Pairs[store.KindCT] {
		same := operator[pair.A] == operator[pair.B]
		if same && pair.Distance > 0.01 {
			return fmt.Errorf("same-operator %s/%s: distance %.3f", pair.A, pair.B, pair.Distance)
		}
		if !same && pair.Distance < 0.1 {
			return fmt.Errorf("cross-operator %s/%s: distance %.3f", pair.A, pair.B, pair.Distance)
		}
	}

	fmt.Fprintf(w, "ecosystem ct -smoke: ok (%d providers ingested, archive %s round-tripped, %d divergence rows)\n",
		len(want), filepath.Base(info.ArchivePath), len(rep.Rows))
	return nil
}
