// Command ecosystem runs the full paper reproduction: it generates the
// synthetic root-store corpus and prints every table and figure of the
// evaluation with the paper's published values alongside.
//
// Usage:
//
//	ecosystem [-seed s] [-artifact name]
//	ecosystem simulate [flags]
//	ecosystem ct [flags]
//
// With -artifact, only the named artifact is printed (table1, table2,
// figure1, figure2, table3, table4, figure3, figure4, table5, table6,
// table7). The simulate subcommand evaluates removal-impact what-if
// scenarios; see cmd/ecosystem/simulate.go for its flags. The ct
// subcommand prints the non-TLS ecosystem divergence report (CT logs and
// TPM manifests vs browser stores); see cmd/ecosystem/ct.go.
//
// ecosystem computes everything from a generated in-memory corpus. To run
// against store files on disk instead, lay them out as the snapshot tree
// described by internal/catalog's TreeLayout
// (<root>/<provider>/<version>/<store files>) — cmd/synthgen writes the
// generated corpus in exactly that shape, and cmd/trustd -watch and
// cmd/rootwatch consume it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/artifacts"
	"repro/internal/synth"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "simulate" {
		os.Exit(runSimulate(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "ct" {
		os.Exit(runCT(os.Args[2:]))
	}
	seed := flag.String("seed", "tracing-your-roots", "corpus generation seed")
	artifact := flag.String("artifact", "", "render a single artifact (table1..table7, figure1..figure4)")
	flag.Parse()

	eco, err := synth.Generate(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecosystem: %v\n", err)
		os.Exit(1)
	}
	ctx := artifacts.NewContext(eco)

	var run func(io.Writer) error
	switch *artifact {
	case "":
		run = ctx.RenderAll
	case "table1":
		run = ctx.Table1
	case "table2":
		run = ctx.Table2
	case "figure1":
		run = ctx.Figure1
	case "figure2":
		run = ctx.Figure2
	case "table3":
		run = ctx.Table3
	case "table4":
		run = ctx.Table4
	case "figure3":
		run = ctx.Figure3
	case "figure4":
		run = ctx.Figure4
	case "table5":
		run = ctx.Table5
	case "table6":
		run = ctx.Table6
	case "table7":
		run = ctx.Table7
	default:
		fmt.Fprintf(os.Stderr, "ecosystem: unknown artifact %q\n", *artifact)
		os.Exit(2)
	}
	if err := run(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ecosystem: %v\n", err)
		os.Exit(1)
	}
}
