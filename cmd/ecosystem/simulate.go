package main

// The `ecosystem simulate` subcommand: the removal-impact what-if engine
// on the command line. It evaluates one hypothetical distrust event — or
// sweeps every root × store removal — against the synthetic corpus, a
// snapshot tree, or a rootpack archive, and renders the weighted client
// impact, divergence windows and mismatch risks as text tables.
//
// Usage:
//
//	ecosystem simulate [-seed s | -tree dir | -archive file]
//	                   [-kind removal|distrust-after|ca-removal]
//	                   [-store NSS] [-fp hex[,hex...]] [-owner substr]
//	                   [-date YYYY-MM-DD] [-purpose server-auth]
//	ecosystem simulate -sweep [-top n] [...]

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/certutil"
	"repro/internal/report"
	"repro/internal/simulate"
	"repro/internal/store"
	"repro/internal/synth"
)

func runSimulate(args []string) int {
	fs := flag.NewFlagSet("ecosystem simulate", flag.ExitOnError)
	seed := fs.String("seed", "tracing-your-roots", "synthetic corpus seed (ignored with -tree/-archive)")
	tree := fs.String("tree", "", "load stores from a snapshot tree instead of generating")
	archivePath := fs.String("archive", "", "load stores from a rootpack archive instead of generating")
	kind := fs.String("kind", "removal", "event kind: removal, distrust-after or ca-removal")
	actor := fs.String("store", "", "acting store (default NSS)")
	fps := fs.String("fp", "", "comma-separated root fingerprints (hex SHA-256)")
	owner := fs.String("owner", "", "CA owner substring for -kind ca-removal")
	date := fs.String("date", "", "event date, YYYY-MM-DD (default: acting store's latest snapshot)")
	purpose := fs.String("purpose", "", "trust purpose (default server-auth)")
	sweep := fs.Bool("sweep", false, "rank every root × store removal instead of one event")
	top := fs.Int("top", 20, "rows to print in -sweep mode (0 = all)")
	fs.Parse(args)

	db, err := simulateDatabase(*seed, *tree, *archivePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecosystem simulate: %v\n", err)
		return 1
	}
	eng := simulate.New(db, simulate.Options{})

	if *sweep {
		if err := renderSweep(os.Stdout, eng.Sweep(0), *top); err != nil {
			fmt.Fprintf(os.Stderr, "ecosystem simulate: %v\n", err)
			return 1
		}
		return 0
	}

	ev := simulate.Event{Provider: *actor, Owner: *owner}
	if ev.Kind, err = simulate.ParseKind(*kind); err != nil {
		fmt.Fprintf(os.Stderr, "ecosystem simulate: %v\n", err)
		return 2
	}
	for _, raw := range strings.Split(*fps, ",") {
		if raw = strings.TrimSpace(raw); raw == "" {
			continue
		}
		fp, err := certutil.ParseFingerprint(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecosystem simulate: -fp %q: %v\n", raw, err)
			return 2
		}
		ev.Fingerprints = append(ev.Fingerprints, fp)
	}
	if *date != "" {
		if ev.Date, err = parseDay(*date); err != nil {
			fmt.Fprintf(os.Stderr, "ecosystem simulate: %v\n", err)
			return 2
		}
	}
	if *purpose != "" {
		if ev.Purpose, err = store.ParsePurpose(*purpose); err != nil {
			fmt.Fprintf(os.Stderr, "ecosystem simulate: %v\n", err)
			return 2
		}
	}

	res, err := eng.Simulate(ev)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecosystem simulate: %v\n", err)
		return 1
	}
	if err := renderResult(os.Stdout, res); err != nil {
		fmt.Fprintf(os.Stderr, "ecosystem simulate: %v\n", err)
		return 1
	}
	return 0
}

func parseDay(s string) (time.Time, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return time.Time{}, fmt.Errorf("-date %q: want YYYY-MM-DD", s)
	}
	return t, nil
}

// simulateDatabase loads the database the engine runs against, in the
// same precedence order as cmd/trustd: tree, then archive, then the
// generated corpus.
func simulateDatabase(seed, tree, archivePath string) (*store.Database, error) {
	switch {
	case tree != "":
		return catalog.LoadTree(tree, catalog.Options{ArchivePath: archivePath})
	case archivePath != "":
		return archive.ReadFile(archivePath)
	default:
		eco, err := synth.Generate(seed)
		if err != nil {
			return nil, err
		}
		return eco.DB, nil
	}
}

func renderResult(w io.Writer, res *simulate.Result) error {
	fmt.Fprintf(w, "Event: %s by %s on %s (purpose %s)\n", res.Kind, res.Provider,
		res.Date.Format("2006-01-02"), res.Purpose)
	fmt.Fprintf(w, "Affected roots: %d\n", len(res.AffectedRoots))
	for _, root := range res.AffectedRoots {
		fmt.Fprintf(w, "  %s  %s\n", root.Fingerprint, root.Label)
	}
	fmt.Fprintf(w, "Impacted traffic: %.1f%%   (trusts today: %.1f%%, untraceable: %.1f%%)\n\n",
		100*res.ImpactFraction, 100*res.TrustedFraction, 100*res.UntraceableFraction)

	impacts := report.NewTable("Client impact (Table 1 marginals)", "provider", "share", "trusts now", "loses")
	for _, row := range res.Impacts {
		impacts.AddRow(row.Provider, fmt.Sprintf("%.1f%%", 100*row.Share), row.TrustsNow, row.Loses)
	}
	if err := impacts.Render(w); err != nil {
		return err
	}

	if len(res.Divergence) > 0 {
		fmt.Fprintln(w)
		div := report.NewTable("Divergence windows", "store", "derivative", "roots kept", "median lag", "projected until")
		for _, win := range res.Divergence {
			lag, until := "n/a", "open-ended"
			if win.HasHistory {
				lag = fmt.Sprintf("%.0fd", win.MedianLagDays)
				until = win.ProjectedUntil.Format("2006-01-02")
			}
			div.AddRow(win.Store, win.Derivative, win.TrustedRoots, lag, until)
		}
		if err := div.Render(w); err != nil {
			return err
		}
	}

	if len(res.MismatchRisks) > 0 {
		fmt.Fprintln(w)
		mis := report.NewTable("Partial-distrust mismatch risk", "derivative", "supports cutoff", "roots kept", "risk")
		for _, risk := range res.MismatchRisks {
			mis.AddRow(risk.Derivative, risk.SupportsDistrustAfter, risk.TrustedRoots, risk.Risk)
		}
		if err := mis.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func renderSweep(w io.Writer, res *simulate.SweepResult, top int) error {
	fmt.Fprintf(w, "Sweep: %d roots × %d stores → %d scenarios (purpose %s)\n\n",
		res.Roots, len(res.Stores), res.Pairs, res.Purpose)
	table := report.NewTable("Highest-impact removals", "#", "impact", "store", "root", "trusting stores")
	for i, entry := range res.Top(top) {
		table.AddRow(i+1, fmt.Sprintf("%.1f%%", 100*entry.Impact), entry.Store,
			fmt.Sprintf("%s  %s", entry.Fingerprint[:16], entry.Label), entry.TrustingStores)
	}
	return table.Render(w)
}
