// Command synthgen writes the synthetic root-store corpus to disk in each
// provider's native on-disk format, producing a directory tree a real
// root-store scraper would recognize:
//
//	out/
//	  NSS/<version>/certdata.txt
//	  Microsoft/<version>/authroot.stl + certs/<sha1>.cer
//	  Apple/<version>/<root>.cer [+ TrustSettings.plist]
//	  Java/<version>/cacerts.jks
//	  NodeJS/<version>/node_root_certs.h
//	  Debian|Ubuntu|Alpine|AmazonLinux|Android/<version>/tls-ca-bundle.pem
//
// With -ecosystems the CT-log and TPM-manifest providers ride along in
// their native formats, plus a log-list manifest at the tree root:
//
//	out/
//	  ct-log-list.json
//	  CT-Argon|CT-Mammoth|CT-Xenon|CT-Yeti/<version>/get-roots.json
//	  TPM-Vendors/<version>/tpm-roots.yaml
//
// Usage:
//
//	synthgen -out DIR [-seed s] [-latest-only] [-ecosystems]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/certdata"
	"repro/internal/ctlog"
	"repro/internal/jks"
	"repro/internal/manifest"
	"repro/internal/nodecerts"
	"repro/internal/paperdata"
	"repro/internal/pemstore"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	seed := flag.String("seed", "tracing-your-roots", "corpus generation seed")
	latestOnly := flag.Bool("latest-only", true, "write only each provider's latest snapshot (false: every snapshot)")
	ecosystems := flag.Bool("ecosystems", false, "include the CT-log and TPM-manifest providers")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "synthgen: -out is required")
		os.Exit(2)
	}

	var eco *synth.Ecosystem
	var err error
	if *ecosystems {
		eco, err = synth.GenerateWithEcosystems(*seed)
	} else {
		eco, err = synth.Generate(*seed)
	}
	if err != nil {
		fail(err)
	}
	written := 0
	for _, prov := range eco.DB.Providers() {
		h := eco.DB.History(prov)
		snaps := h.Snapshots()
		if *latestOnly {
			snaps = snaps[len(snaps)-1:]
		}
		for _, s := range snaps {
			dir := filepath.Join(*out, prov, s.Version)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail(err)
			}
			if err := writeNative(dir, prov, s); err != nil {
				fail(fmt.Errorf("%s %s: %w", prov, s.Version, err))
			}
			written++
		}
	}
	if *ecosystems {
		if err := writeLogList(*out); err != nil {
			fail(err)
		}
	}
	fmt.Printf("synthgen: wrote %d snapshots under %s\n", written, *out)
}

// writeLogList emits the log-list manifest mapping the CT provider
// directories to their operators, at the tree root where catalog ingestion
// and the ecosystem report expect it.
func writeLogList(out string) error {
	byOp := map[string][]ctlog.Log{}
	for _, lg := range synth.CTLogs() {
		byOp[lg.Operator] = append(byOp[lg.Operator], ctlog.Log{
			Description: lg.Name + " log",
			Dir:         lg.Name,
		})
	}
	var ll ctlog.LogList
	for op, logs := range byOp {
		ll.Operators = append(ll.Operators, ctlog.Operator{Name: op, Logs: logs})
	}
	data, err := ll.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(out, ctlog.LogListName), data, 0o644)
}

func writeNative(dir, provider string, s *store.Snapshot) error {
	entries := s.Entries()
	// The ecosystem kinds route by kind, not provider name: the codec is
	// the kind's native format regardless of which log or vendor it is.
	switch s.Kind.Normalize() {
	case store.KindCT:
		return ctlog.WriteDir(dir, entries)
	case store.KindManifest:
		return manifest.WriteDir(dir, manifest.FromEntries(provider, entries))
	}
	switch provider {
	case paperdata.NSS:
		f, err := os.Create(filepath.Join(dir, "certdata.txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		return certdata.Marshal(f, entries)
	case paperdata.Microsoft:
		return authroot.WriteBundle(dir, entries, int64(s.Date.Unix()), s.Date)
	case paperdata.Apple:
		return applestore.WriteDir(dir, entries)
	case paperdata.Java:
		data, err := jks.Marshal(jks.FromEntries(entries, s.Date), "changeit")
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, "cacerts.jks"), data, 0o644)
	case paperdata.NodeJS:
		f, err := os.Create(filepath.Join(dir, "node_root_certs.h"))
		if err != nil {
			return err
		}
		defer f.Close()
		return nodecerts.Marshal(f, entries)
	default: // the Linux-style derivatives
		f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
		if err != nil {
			return err
		}
		defer f.Close()
		return pemstore.WriteBundle(f, entries, store.ServerAuth)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
	os.Exit(1)
}
