// Command synthgen writes the synthetic root-store corpus to disk in each
// provider's native on-disk format, producing a directory tree a real
// root-store scraper would recognize:
//
//	out/
//	  NSS/<version>/certdata.txt
//	  Microsoft/<version>/authroot.stl + certs/<sha1>.cer
//	  Apple/<version>/<root>.cer [+ TrustSettings.plist]
//	  Java/<version>/cacerts.jks
//	  NodeJS/<version>/node_root_certs.h
//	  Debian|Ubuntu|Alpine|AmazonLinux|Android/<version>/tls-ca-bundle.pem
//
// Usage:
//
//	synthgen -out DIR [-seed s] [-latest-only]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/certdata"
	"repro/internal/jks"
	"repro/internal/nodecerts"
	"repro/internal/paperdata"
	"repro/internal/pemstore"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	seed := flag.String("seed", "tracing-your-roots", "corpus generation seed")
	latestOnly := flag.Bool("latest-only", true, "write only each provider's latest snapshot (false: every snapshot)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "synthgen: -out is required")
		os.Exit(2)
	}

	eco, err := synth.Generate(*seed)
	if err != nil {
		fail(err)
	}
	written := 0
	for _, prov := range eco.DB.Providers() {
		h := eco.DB.History(prov)
		snaps := h.Snapshots()
		if *latestOnly {
			snaps = snaps[len(snaps)-1:]
		}
		for _, s := range snaps {
			dir := filepath.Join(*out, prov, s.Version)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fail(err)
			}
			if err := writeNative(dir, prov, s); err != nil {
				fail(fmt.Errorf("%s %s: %w", prov, s.Version, err))
			}
			written++
		}
	}
	fmt.Printf("synthgen: wrote %d snapshots under %s\n", written, *out)
}

func writeNative(dir, provider string, s *store.Snapshot) error {
	entries := s.Entries()
	switch provider {
	case paperdata.NSS:
		f, err := os.Create(filepath.Join(dir, "certdata.txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		return certdata.Marshal(f, entries)
	case paperdata.Microsoft:
		return authroot.WriteBundle(dir, entries, int64(s.Date.Unix()), s.Date)
	case paperdata.Apple:
		return applestore.WriteDir(dir, entries)
	case paperdata.Java:
		data, err := jks.Marshal(jks.FromEntries(entries, s.Date), "changeit")
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, "cacerts.jks"), data, 0o644)
	case paperdata.NodeJS:
		f, err := os.Create(filepath.Join(dir, "node_root_certs.h"))
		if err != nil {
			return err
		}
		defer f.Close()
		return nodecerts.Marshal(f, entries)
	default: // the Linux-style derivatives
		f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
		if err != nil {
			return err
		}
		defer f.Close()
		return pemstore.WriteBundle(f, entries, store.ServerAuth)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
	os.Exit(1)
}
