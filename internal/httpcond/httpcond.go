// Package httpcond implements the conditional-request field parsing of
// RFC 9110 §8.8.3 and §13.1.2 that the serving layer and the cluster
// distribution endpoints share: entity-tag lists as they appear in
// If-None-Match headers.
//
// An earlier in-service matcher split the header on commas, which
// mis-parses any entity tag whose opaque part itself contains a comma —
// etagc (RFC 9110 §8.8.3) admits every VCHAR except DQUOTE, commas
// included. This package parses the list with a real tokenizer instead:
// optional W/ prefixes, quoted opaque parts, optional whitespace around
// separators, and the "*" wildcard. Malformed members are skipped rather
// than failing the whole header, matching the robustness the field has in
// deployed caches.
package httpcond

import "strings"

// ETag is one parsed entity tag.
type ETag struct {
	// Opaque is the tag including its surrounding double quotes, e.g.
	// `"xyzzy"` — the form handlers emit in ETag response headers.
	Opaque string
	// Weak records a W/ prefix.
	Weak bool
}

// weakCore returns the opaque part used for weak comparison (RFC 9110
// §8.8.3.2): both validators' opaque data, ignoring weakness.
func (t ETag) weakCore() string { return t.Opaque }

// ParseETags parses an If-None-Match (or If-Match) field value into its
// entity tags. The "*" wildcard is reported as wildcard=true and is only
// honoured when it is the sole member, per the ABNF
// (`If-None-Match = "*" / #entity-tag`). Members that do not parse as
// entity tags are skipped.
func ParseETags(header string) (tags []ETag, wildcard bool) {
	s := header
	members := 0
	for {
		s = strings.TrimLeft(s, " \t,")
		if s == "" {
			break
		}
		members++
		if s[0] == '*' {
			wildcard = true
			s = s[1:]
			continue
		}
		tag, rest, ok := parseOne(s)
		if !ok {
			// Skip to the next comma: the member is malformed, the rest
			// of the list may still be fine.
			if i := strings.IndexByte(s, ','); i >= 0 {
				s = s[i+1:]
				continue
			}
			break
		}
		tags = append(tags, tag)
		s = rest
	}
	if wildcard && members != 1 {
		wildcard = false
	}
	return tags, wildcard
}

// parseOne consumes a single entity-tag ([W/] DQUOTE *etagc DQUOTE) from
// the head of s.
func parseOne(s string) (ETag, string, bool) {
	var t ETag
	if len(s) >= 2 && (s[0] == 'W' || s[0] == 'w') && s[1] == '/' {
		t.Weak = true
		s = s[2:]
	}
	if s == "" || s[0] != '"' {
		return ETag{}, s, false
	}
	// etagc = %x21 / %x23-7E / obs-text — anything but DQUOTE and CTLs.
	end := -1
	for i := 1; i < len(s); i++ {
		c := s[i]
		if c == '"' {
			end = i
			break
		}
		if c < 0x21 || c == 0x7F {
			return ETag{}, s, false
		}
	}
	if end < 0 {
		return ETag{}, s, false
	}
	t.Opaque = s[:end+1]
	return t, s[end+1:], true
}

// MatchIfNoneMatch reports whether an If-None-Match field value names tag.
// tag is the server's current entity tag in its wire form (`"..."` or
// `W/"..."`). Comparison is weak (RFC 9110 §13.1.2: "a recipient MUST use
// the weak comparison function"), so W/"x" matches "x" in either
// direction. An empty header never matches.
func MatchIfNoneMatch(header, tag string) bool {
	if header == "" || tag == "" {
		return false
	}
	cur, _, ok := parseOne(tag)
	if !ok {
		return false
	}
	tags, wildcard := ParseETags(header)
	if wildcard {
		return true
	}
	for _, t := range tags {
		if t.weakCore() == cur.weakCore() {
			return true
		}
	}
	return false
}
