package httpcond

import "testing"

func TestMatchIfNoneMatch(t *testing.T) {
	const tag = `"abc123"`
	cases := []struct {
		name   string
		header string
		want   bool
	}{
		{"exact", `"abc123"`, true},
		{"miss", `"def456"`, false},
		{"empty", ``, false},
		{"wildcard", `*`, true},
		{"wildcard with spaces", `  *  `, true},
		{"weak form matches strong", `W/"abc123"`, true},
		{"lowercase weak prefix", `w/"abc123"`, true},
		{"weak miss", `W/"def456"`, false},
		{"list first", `"abc123", "def456"`, true},
		{"list last", `"def456", "abc123"`, true},
		{"list middle weak", `"x", W/"abc123", "y"`, true},
		{"list no match", `"x", "y", "z"`, false},
		{"list without spaces", `"x","abc123"`, true},
		{"list with tabs", "\"x\",\t\"abc123\"", true},
		{"empty list members", `,, "abc123" ,,`, true},
		// The regression the package exists for: a tag containing a comma
		// must not be split into two bogus members.
		{"comma inside other tag", `"abc,123", "abc123"`, true},
		{"comma inside tag is one member", `"abc,123"`, false},
		{"unquoted token skipped", `abc123`, false},
		{"unquoted then valid", `abc123, "abc123"`, true},
		{"unterminated quote", `"abc123`, false},
		{"unterminated then nothing", `"abc123, "never"`, false},
		// "*" is only valid as the sole member (If-None-Match = "*" / #entity-tag).
		{"wildcard in list is invalid", `"x", *`, false},
		{"bare weak prefix", `W/`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MatchIfNoneMatch(tc.header, tag); got != tc.want {
				t.Errorf("MatchIfNoneMatch(%q, %q) = %v, want %v", tc.header, tag, got, tc.want)
			}
		})
	}
}

func TestMatchIfNoneMatchWeakCurrentTag(t *testing.T) {
	// A server holding a weak validator still matches either form.
	if !MatchIfNoneMatch(`"v1"`, `W/"v1"`) {
		t.Error(`strong candidate should match weak current tag`)
	}
	if !MatchIfNoneMatch(`W/"v1"`, `W/"v1"`) {
		t.Error(`weak candidate should match weak current tag`)
	}
	if MatchIfNoneMatch(`"v2"`, `W/"v1"`) {
		t.Error(`different opaque data must not match`)
	}
}

func TestMatchIfNoneMatchInvalidCurrentTag(t *testing.T) {
	for _, cur := range []string{``, `abc`, `"unterminated`} {
		if MatchIfNoneMatch(`*`, cur) {
			t.Errorf("wildcard matched invalid current tag %q", cur)
		}
	}
}

func TestParseETags(t *testing.T) {
	tags, wildcard := ParseETags(`W/"a" , "b,c",, "d"`)
	if wildcard {
		t.Fatal("unexpected wildcard")
	}
	want := []ETag{{Opaque: `"a"`, Weak: true}, {Opaque: `"b,c"`}, {Opaque: `"d"`}}
	if len(tags) != len(want) {
		t.Fatalf("got %d tags %v, want %d", len(tags), tags, len(want))
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Errorf("tag %d = %+v, want %+v", i, tags[i], want[i])
		}
	}
}
