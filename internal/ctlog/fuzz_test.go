package ctlog

import (
	"bytes"
	"encoding/base64"
	"testing"

	"repro/internal/store"
	"repro/internal/testcerts"
)

// FuzzCTRootsDecode drives arbitrary bytes through the get-roots parser.
// The invariants: never panic, and any accepted document yields entries
// that are internally consistent (parsed cert, ServerAuth trust, unique
// fingerprints) and re-emit canonically.
func FuzzCTRootsDecode(f *testing.F) {
	f.Add([]byte(`{"certificates": []}`))
	f.Add([]byte(`{"certificates": ["aGVsbG8="]}`))
	f.Add([]byte(`{"certificates": "not-an-array"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	e := testcerts.Entries(1, store.ServerAuth)[0]
	f.Add([]byte(`{"certificates": ["` + base64.StdEncoding.EncodeToString(e.DER) + `"]}`))
	var canonical bytes.Buffer
	if err := WriteGetRoots(&canonical, testcerts.Entries(3, store.ServerAuth)); err != nil {
		f.Fatal(err)
	}
	f.Add(canonical.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ParseGetRoots(bytes.NewReader(data))
		if err != nil {
			return
		}
		seen := map[string]bool{}
		for _, e := range entries {
			if e.Cert == nil || len(e.DER) == 0 {
				t.Fatal("accepted entry without parsed certificate")
			}
			if e.TrustFor(store.ServerAuth) != store.Trusted {
				t.Fatal("accepted entry not trusted for server-auth")
			}
			if seen[string(e.Fingerprint[:])] {
				t.Fatal("duplicate fingerprint survived parsing")
			}
			seen[string(e.Fingerprint[:])] = true
		}
		// A successful parse must re-emit and re-parse to the same set:
		// the canonical writer accepts anything the parser accepts.
		var out bytes.Buffer
		if err := WriteGetRoots(&out, entries); err != nil {
			t.Fatalf("re-emit of accepted document failed: %v", err)
		}
		back, err := ParseGetRoots(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of canonical form failed: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("canonical round trip changed entry count: %d vs %d", len(back), len(entries))
		}
	})
}
