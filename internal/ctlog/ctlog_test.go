package ctlog

import (
	"bytes"
	"encoding/base64"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/testcerts"
)

func TestParseGetRootsRoundTrip(t *testing.T) {
	entries := testcerts.Entries(5, store.ServerAuth)

	var buf bytes.Buffer
	if err := WriteGetRoots(&buf, entries); err != nil {
		t.Fatalf("WriteGetRoots: %v", err)
	}
	got, err := ParseGetRoots(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseGetRoots: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("round trip: %d entries, want %d", len(got), len(entries))
	}
	want := map[string]bool{}
	for _, e := range entries {
		want[string(e.Fingerprint[:])] = true
	}
	for _, e := range got {
		if !want[string(e.Fingerprint[:])] {
			t.Errorf("unexpected fingerprint %x", e.Fingerprint[:8])
		}
		if e.TrustFor(store.ServerAuth) != store.Trusted {
			t.Errorf("%s: not trusted for server-auth", e.Label)
		}
	}

	// Emit → ingest → emit is byte-identical regardless of input order.
	var again bytes.Buffer
	if err := WriteGetRoots(&again, got); err != nil {
		t.Fatalf("re-emit: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-emitted get-roots differs from original")
	}
	reversed := append([]*store.TrustEntry(nil), entries...)
	for i, j := 0, len(reversed)-1; i < j; i, j = i+1, j-1 {
		reversed[i], reversed[j] = reversed[j], reversed[i]
	}
	var rev bytes.Buffer
	if err := WriteGetRoots(&rev, reversed); err != nil {
		t.Fatalf("reversed emit: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), rev.Bytes()) {
		t.Fatal("emit is input-order-sensitive")
	}
}

func TestParseGetRootsDedupes(t *testing.T) {
	e := testcerts.Entries(1, store.ServerAuth)[0]
	b64 := base64.StdEncoding.EncodeToString(e.DER)
	doc := `{"certificates": ["` + b64 + `", "` + b64 + `"]}`
	got, err := ParseGetRoots(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ParseGetRoots: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d entries, want 1 (duplicates collapse)", len(got))
	}
}

func TestParseGetRootsErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"not json", "certificates"},
		{"no array", `{"other": 1}`},
		{"bad base64", `{"certificates": ["!!!"]}`},
		{"bad der", `{"certificates": ["aGVsbG8="]}`},
	}
	for _, tc := range cases {
		if _, err := ParseGetRoots(strings.NewReader(tc.doc)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Empty array is a valid (empty) store, not an error.
	got, err := ParseGetRoots(strings.NewReader(`{"certificates": []}`))
	if err != nil {
		t.Fatalf("empty array: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("empty array: got %d entries", len(got))
	}
}

func TestReadWriteDir(t *testing.T) {
	dir := t.TempDir()
	entries := testcerts.Entries(3, store.ServerAuth)
	if err := WriteDir(dir, entries); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3", len(got))
	}
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Fatal("ReadDir on empty dir: no error")
	}
}

func TestLogList(t *testing.T) {
	ll := &LogList{Operators: []Operator{
		{Name: "Zebra", Logs: []Log{{Description: "Z2", Dir: "ZLog2"}, {Description: "Z1", Dir: "ZLog1"}}},
		{Name: "Alpha", Logs: []Log{{Description: "A", URL: "https://a.example/ct", Dir: "ALog"}}},
	}}
	out, err := ll.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := ParseLogList(out)
	if err != nil {
		t.Fatalf("ParseLogList: %v", err)
	}
	// Canonical form: operators and logs sorted.
	if back.Operators[0].Name != "Alpha" || back.Operators[1].Logs[0].Dir != "ZLog1" {
		t.Fatalf("not canonical: %+v", back)
	}
	again, err := back.Marshal()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(out, again) {
		t.Fatal("marshal not canonical across round trip")
	}

	if got := back.OperatorOf("ZLog2"); got != "Zebra" {
		t.Errorf("OperatorOf(ZLog2) = %q", got)
	}
	if got := back.OperatorOf("nope"); got != "" {
		t.Errorf("OperatorOf(nope) = %q", got)
	}
	dirs := back.Dirs()
	if len(dirs) != 3 || dirs[0] != "ALog" || dirs[2] != "ZLog2" {
		t.Errorf("Dirs = %v", dirs)
	}

	path := filepath.Join(t.TempDir(), LogListName)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLogList(path); err != nil {
		t.Fatalf("LoadLogList: %v", err)
	}
	if _, err := ParseLogList([]byte(`{"operators": []}`)); err == nil {
		t.Fatal("empty operator list: no error")
	}
}
