// Package ctlog parses Certificate Transparency log root stores: the JSON
// answer of a log's `get-roots` endpoint (RFC 6962 §4.7, a single
// "certificates" array of base64 DER), plus a log-list manifest that maps
// snapshot directories to logs and operators (the grouping the CT
// root-landscape analysis reports by).
//
// A log's accepted-root list is a root store in every sense the paper
// cares about — a named set of anchor certificates evolving over time —
// just one with very different hygiene: logs accumulate roots browsers
// purged (expired, MD5-signed, distrusted) because accepting submissions
// against an old root is harmless while rejecting them loses data. That
// divergence is exactly what "Characterizing the Root Landscape of
// Certificate Transparency Logs" measures and what ingesting logs as
// first-class providers lets the pipeline reproduce.
//
// Like the other codecs, parsing is lossy only in ways the analyses never
// observe: entries come back trusted for ServerAuth (the only purpose a CT
// log's acceptance implies), and WriteGetRoots emits a canonical,
// deterministic form (fingerprint-sorted, fixed layout) so emit → ingest →
// emit is byte-stable.
package ctlog

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/store"
)

// GetRootsName is the file name a snapshot directory stores its get-roots
// answer under; internal/catalog detects the format by its presence.
const GetRootsName = "get-roots.json"

// getRoots is the RFC 6962 get-roots wire shape.
type getRoots struct {
	Certificates []string `json:"certificates"`
}

// ParseGetRoots decodes a get-roots JSON document into trust entries, each
// trusted for ServerAuth. Every certificate must be valid base64 DER of a
// parseable X.509 certificate; duplicates collapse to one entry (stores are
// keyed by certificate).
func ParseGetRoots(r io.Reader) ([]*store.TrustEntry, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ctlog: read get-roots: %w", err)
	}
	var doc getRoots
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("ctlog: parse get-roots: %w", err)
	}
	if doc.Certificates == nil {
		return nil, fmt.Errorf("ctlog: get-roots has no \"certificates\" array")
	}
	entries := make([]*store.TrustEntry, 0, len(doc.Certificates))
	seen := make(map[string]bool, len(doc.Certificates))
	for i, b64 := range doc.Certificates {
		der, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("ctlog: certificate %d: %w", i, err)
		}
		e, err := store.NewTrustedEntry(der, store.ServerAuth)
		if err != nil {
			return nil, fmt.Errorf("ctlog: certificate %d: %w", i, err)
		}
		if seen[string(e.Fingerprint[:])] {
			continue
		}
		seen[string(e.Fingerprint[:])] = true
		entries = append(entries, e)
	}
	return entries, nil
}

// ReadDir ingests a snapshot directory holding a get-roots.json.
func ReadDir(dir string) ([]*store.TrustEntry, error) {
	f, err := os.Open(filepath.Join(dir, GetRootsName))
	if err != nil {
		return nil, fmt.Errorf("ctlog: %w", err)
	}
	defer f.Close()
	return ParseGetRoots(f)
}

// WriteGetRoots emits the canonical get-roots form: one certificate per
// line, fingerprint-sorted, so semantically equal root sets produce
// byte-identical documents (the same determinism contract the rootpack
// archive keeps).
func WriteGetRoots(w io.Writer, entries []*store.TrustEntry) error {
	sorted := append([]*store.TrustEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].Fingerprint, sorted[j].Fingerprint
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	if _, err := io.WriteString(w, "{\"certificates\":[\n"); err != nil {
		return fmt.Errorf("ctlog: %w", err)
	}
	for i, e := range sorted {
		sep := ","
		if i == len(sorted)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "  %q%s\n", base64.StdEncoding.EncodeToString(e.DER), sep); err != nil {
			return fmt.Errorf("ctlog: %w", err)
		}
	}
	if _, err := io.WriteString(w, "]}\n"); err != nil {
		return fmt.Errorf("ctlog: %w", err)
	}
	return nil
}

// WriteDir writes the snapshot directory form WriteGetRoots describes.
func WriteDir(dir string, entries []*store.TrustEntry) error {
	f, err := os.Create(filepath.Join(dir, GetRootsName))
	if err != nil {
		return fmt.Errorf("ctlog: %w", err)
	}
	werr := WriteGetRoots(f, entries)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
