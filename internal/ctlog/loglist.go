package ctlog

// The log-list manifest: a trimmed-down log_list.json in the shape CT
// tooling publishes — operators owning logs, each log naming the snapshot
// directory (= catalog provider) its get-roots snapshots live under. The
// CT report uses it to group logs by operator, the correlation the
// root-landscape paper finds (logs of one operator share their accepted
// sets almost exactly).

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// LogListName is the manifest's file name at the snapshot-tree root
// (a plain file there, like the .rootpack sidecar, so the tree walker
// never mistakes it for a provider).
const LogListName = "ct-log-list.json"

// Log describes one CT log in the list.
type Log struct {
	// Description is the log's human-readable name ("Argon 2021").
	Description string `json:"description"`
	// URL is the log's submission prefix.
	URL string `json:"url,omitempty"`
	// Dir is the provider directory the log's snapshots are filed under.
	Dir string `json:"dir"`
}

// Operator is one log operator and its logs.
type Operator struct {
	Name string `json:"name"`
	Logs []Log  `json:"logs"`
}

// LogList maps operators to logs.
type LogList struct {
	Operators []Operator `json:"operators"`
}

// ParseLogList decodes a log-list manifest.
func ParseLogList(data []byte) (*LogList, error) {
	var ll LogList
	if err := json.Unmarshal(data, &ll); err != nil {
		return nil, fmt.Errorf("ctlog: parse log list: %w", err)
	}
	if len(ll.Operators) == 0 {
		return nil, fmt.Errorf("ctlog: log list has no operators")
	}
	return &ll, nil
}

// LoadLogList reads and parses a log-list manifest file.
func LoadLogList(path string) (*LogList, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ctlog: %w", err)
	}
	return ParseLogList(data)
}

// Marshal emits the canonical manifest form: operators and logs sorted by
// name, stable indentation.
func (ll *LogList) Marshal() ([]byte, error) {
	c := &LogList{Operators: append([]Operator(nil), ll.Operators...)}
	for i := range c.Operators {
		c.Operators[i].Logs = append([]Log(nil), c.Operators[i].Logs...)
		sort.Slice(c.Operators[i].Logs, func(a, b int) bool {
			return c.Operators[i].Logs[a].Dir < c.Operators[i].Logs[b].Dir
		})
	}
	sort.Slice(c.Operators, func(a, b int) bool { return c.Operators[a].Name < c.Operators[b].Name })
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("ctlog: marshal log list: %w", err)
	}
	return append(out, '\n'), nil
}

// OperatorOf returns the operator owning the provider directory, or ""
// when the directory is not in the list.
func (ll *LogList) OperatorOf(dir string) string {
	for _, op := range ll.Operators {
		for _, lg := range op.Logs {
			if lg.Dir == dir {
				return op.Name
			}
		}
	}
	return ""
}

// Dirs returns every provider directory in the list, sorted.
func (ll *LogList) Dirs() []string {
	var out []string
	for _, op := range ll.Operators {
		for _, lg := range op.Logs {
			out = append(out, lg.Dir)
		}
	}
	sort.Strings(out)
	return out
}
