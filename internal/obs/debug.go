package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// tracesResponse is the GET /debug/traces envelope.
type tracesResponse struct {
	TracesStarted uint64         `json:"traces_started"`
	Recent        []*TraceRecord `json:"recent"`
	Slowest       []*TraceRecord `json:"slowest"`
}

// TracesHandler serves the tracer's ring buffer: the most recent traces
// plus the slowest-N board. ?n= bounds how many of each are returned
// (default 32 recent, all slowest); ?trace_id=<32 hex> filters both
// lists to that trace, which is how a /metrics/prometheus exemplar
// resolves to its span tree in one request.
func (t *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 32
		if v := r.URL.Query().Get("n"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				n = parsed
			}
		}
		resp := tracesResponse{
			TracesStarted: t.Started(),
			Recent:        t.Recent(n),
			Slowest:       t.Slowest(0),
		}
		if id := r.URL.Query().Get("trace_id"); id != "" {
			resp.Recent = filterTraces(resp.Recent, id)
			resp.Slowest = filterTraces(resp.Slowest, id)
		}
		if resp.Recent == nil {
			resp.Recent = []*TraceRecord{}
		}
		if resp.Slowest == nil {
			resp.Slowest = []*TraceRecord{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})
}

// filterTraces keeps only the records whose trace ID matches id.
func filterTraces(recs []*TraceRecord, id string) []*TraceRecord {
	out := []*TraceRecord{}
	for _, r := range recs {
		if r != nil && r.TraceID.String() == id {
			out = append(out, r)
		}
	}
	return out
}

// DebugMux builds the opt-in diagnostics mux the -debug-addr listeners
// serve: pprof (CPU/heap/goroutine profiles), the process-wide expvar
// tree, and — when a tracer is supplied — /debug/traces. It is meant for
// a loopback or otherwise private listener; none of these handlers
// belong on the public API mux.
func DebugMux(t *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	if t != nil {
		mux.Handle("/debug/traces", t.TracesHandler())
	}
	return mux
}
