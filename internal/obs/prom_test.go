package obs

import (
	"math"
	"strings"
	"testing"
)

// promFixture is a family set exercising every rendering feature: label
// escaping, histogram suffixes, sorting, infinities.
func promFixture() []MetricFamily {
	return []MetricFamily{
		{
			Name: "zz_requests_total",
			Help: "Requests by route.\nSecond line \\ backslash.",
			Type: Counter,
			Samples: []Sample{
				{Labels: []Label{{"route", `POST /v1/verify`}}, Value: 7},
				{Labels: []Label{{"route", `GET /v1/diff?a="x"`}}, Value: 2},
			},
		},
		GaugeFamily("aa_up", "Always first after sorting.", 1),
		{
			Name:    "mm_latency_seconds",
			Help:    "Request latency.",
			Type:    Histogram,
			Samples: HistogramSamples([]Label{{"route", "GET /x"}}, []float64{0.001, 0.025, 0.1}, []uint64{3, 2, 1, 1}, 0.5),
		},
	}
}

// TestExpositionGolden locks the full rendered form: family order,
// sample order, escaping, histogram cumulation. Any formatting change
// must be deliberate.
func TestExpositionGolden(t *testing.T) {
	const want = `# HELP aa_up Always first after sorting.
# TYPE aa_up gauge
aa_up 1
# HELP mm_latency_seconds Request latency.
# TYPE mm_latency_seconds histogram
mm_latency_seconds_bucket{route="GET /x",le="0.001"} 3
mm_latency_seconds_bucket{route="GET /x",le="0.025"} 5
mm_latency_seconds_bucket{route="GET /x",le="0.1"} 6
mm_latency_seconds_bucket{route="GET /x",le="+Inf"} 7
mm_latency_seconds_count{route="GET /x"} 7
mm_latency_seconds_sum{route="GET /x"} 0.5
# HELP zz_requests_total Requests by route.\nSecond line \\ backslash.
# TYPE zz_requests_total counter
zz_requests_total{route="GET /v1/diff?a=\"x\""} 2
zz_requests_total{route="POST /v1/verify"} 7
`
	var sb strings.Builder
	if err := WriteExposition(&sb, promFixture()); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
	// Rendering twice is byte-stable (the ordering contract).
	var again strings.Builder
	WriteExposition(&again, promFixture())
	if again.String() != sb.String() {
		t.Error("exposition is not deterministic across renders")
	}
}

func TestLintCleanFixture(t *testing.T) {
	if problems := Lint(promFixture()); len(problems) != 0 {
		t.Fatalf("lint problems on clean fixture: %v", problems)
	}
	var sb strings.Builder
	WriteExposition(&sb, promFixture())
	if problems := LintExposition(strings.NewReader(sb.String())); len(problems) != 0 {
		t.Fatalf("wire lint problems on clean fixture: %v", problems)
	}
}

func TestLintCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		fams []MetricFamily
		want string
	}{
		{"bad metric name", []MetricFamily{CounterFamily("1bad_total", "h", 1)}, "invalid metric name"},
		{"missing help", []MetricFamily{{Name: "x_total", Type: Counter, Samples: []Sample{{Value: 1}}}}, "no HELP"},
		{"counter suffix", []MetricFamily{CounterFamily("x_count_of_things", "h", 1)}, "_total"},
		{"duplicate series", []MetricFamily{{Name: "x_total", Help: "h", Type: Counter,
			Samples: []Sample{{Value: 1}, {Value: 2}}}}, "duplicate series"},
		{"bad label", []MetricFamily{{Name: "x_total", Help: "h", Type: Counter,
			Samples: []Sample{{Labels: []Label{{"le-gal", "v"}}, Value: 1}}}}, "invalid label name"},
		{"histogram no inf", []MetricFamily{{Name: "h", Help: "h", Type: Histogram,
			Samples: []Sample{{Suffix: "_bucket", Labels: []Label{{"le", "1"}}, Value: 1}}}}, "+Inf"},
		{"histogram non-cumulative", []MetricFamily{{Name: "h", Help: "h", Type: Histogram,
			Samples: []Sample{
				{Suffix: "_bucket", Labels: []Label{{"le", "1"}}, Value: 5},
				{Suffix: "_bucket", Labels: []Label{{"le", "+Inf"}}, Value: 3},
			}}}, "cumulative"},
	}
	for _, tc := range cases {
		problems := Lint(tc.fams)
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want a problem containing %q, got %v", tc.name, tc.want, problems)
		}
	}
}

func TestLintExpositionCatchesWireProblems(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"undeclared sample", "some_metric 1\n", "no TYPE"},
		{"bad value", "# TYPE x gauge\nx notanumber\n", "bad value"},
		{"unknown type", "# TYPE x widget\nx 1\n", "unknown type"},
		{"histogram no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\nh_sum 1\n", "+Inf"},
		{"duplicate type", "# TYPE x gauge\n# TYPE x gauge\nx 1\n", "duplicate TYPE"},
	}
	for _, tc := range cases {
		problems := LintExposition(strings.NewReader(tc.text))
		found := false
		for _, p := range problems {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want problem containing %q, got %v", tc.name, tc.want, problems)
		}
	}
	// Inf and NaN values are legal.
	ok := "# TYPE x gauge\nx +Inf\n"
	if problems := LintExposition(strings.NewReader(ok)); len(problems) != 0 {
		t.Errorf("+Inf value flagged: %v", problems)
	}
}

func TestHistogramSamplesShape(t *testing.T) {
	s := HistogramSamples(nil, []float64{1, 2}, []uint64{1, 0, 4}, 9.5)
	// buckets: le=1 →1, le=2 →1, +Inf →5; then _sum and _count.
	if len(s) != 5 {
		t.Fatalf("samples = %d, want 5", len(s))
	}
	if s[2].Labels[0].Value != "+Inf" || s[2].Value != 5 {
		t.Errorf("+Inf bucket = %+v", s[2])
	}
	if s[3].Suffix != "_sum" || s[3].Value != 9.5 {
		t.Errorf("sum = %+v", s[3])
	}
	if s[4].Suffix != "_count" || s[4].Value != 5 {
		t.Errorf("count = %+v", s[4])
	}
}

func TestFormatValue(t *testing.T) {
	if formatValue(math.Inf(1)) != "+Inf" || formatValue(math.Inf(-1)) != "-Inf" || formatValue(math.NaN()) != "NaN" {
		t.Error("special values misformatted")
	}
	if formatValue(0.001) != "0.001" {
		t.Errorf("0.001 → %s", formatValue(0.001))
	}
}

func TestRuntimeFamiliesLintClean(t *testing.T) {
	fams := RuntimeFamilies()
	if problems := Lint(fams); len(problems) != 0 {
		t.Fatalf("runtime families lint: %v", problems)
	}
	names := map[string]bool{}
	for _, f := range fams {
		names[f.Name] = true
	}
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_pause_seconds_total"} {
		if !names[want] {
			t.Errorf("missing runtime family %s", want)
		}
	}
}
