package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHDRBoundsShape(t *testing.T) {
	bounds := HDRBounds()
	if len(bounds) != 1+hdrOctaves*hdrSubBuckets {
		t.Fatalf("len(bounds) = %d, want %d", len(bounds), 1+hdrOctaves*hdrSubBuckets)
	}
	if bounds[0] != hdrMin {
		t.Fatalf("bounds[0] = %v, want %v", bounds[0], hdrMin)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
	}
	// Octave ends double: bound at index 1+o*sub+sub-1 is hdrMin*2^(o+1).
	for o := 0; o < hdrOctaves; o++ {
		end := bounds[hdrSubBuckets*(o+1)]
		want := hdrMin * math.Pow(2, float64(o+1))
		if math.Abs(end-want)/want > 1e-12 {
			t.Fatalf("octave %d end = %v, want %v", o, end, want)
		}
	}
	if HDRNumBuckets() != len(bounds)+1 {
		t.Fatalf("HDRNumBuckets() = %d, want %d", HDRNumBuckets(), len(bounds)+1)
	}
	// Relative bucket width stays bounded: (upper-lower)/lower <= 1/hdrSubBuckets
	// for every finite bucket past the first.
	for i := 1; i < len(bounds); i++ {
		rel := (bounds[i] - bounds[i-1]) / bounds[i-1]
		if rel > 1.0/hdrSubBuckets+1e-9 {
			t.Fatalf("bucket %d relative width %v exceeds %v", i, rel, 1.0/hdrSubBuckets)
		}
	}
}

func TestHDRBucketIndex(t *testing.T) {
	bounds := HDRBounds()
	// Every bound maps to its own index; just above maps to the next.
	for i, b := range bounds {
		if got := HDRBucketIndex(b); got != i {
			t.Fatalf("HDRBucketIndex(%v) = %d, want %d", b, got, i)
		}
		if got := HDRBucketIndex(b * (1 + 1e-9)); got != i+1 {
			t.Fatalf("HDRBucketIndex(just above %v) = %d, want %d", b, got, i+1)
		}
	}
	if got := HDRBucketIndex(0); got != 0 {
		t.Fatalf("HDRBucketIndex(0) = %d, want 0", got)
	}
	if got := HDRBucketIndex(1e9); got != len(bounds) {
		t.Fatalf("HDRBucketIndex(huge) = %d, want overflow %d", got, len(bounds))
	}
}

func TestHDRBucketLabels(t *testing.T) {
	bounds := HDRBounds()
	for i, b := range bounds {
		if got, want := HDRBucketLabel(i), formatValue(b); got != want {
			t.Fatalf("HDRBucketLabel(%d) = %q, want %q", i, got, want)
		}
	}
	if got := HDRBucketLabel(len(bounds)); got != "+Inf" {
		t.Fatalf("overflow label = %q, want +Inf", got)
	}
	// Out-of-range indexes clamp rather than panic.
	if got := HDRBucketLabel(-5); got != HDRBucketLabel(0) {
		t.Fatalf("negative index label = %q", got)
	}
	if got := HDRBucketLabelFor(1e9); got != "+Inf" {
		t.Fatalf("HDRBucketLabelFor(huge) = %q, want +Inf", got)
	}
	if got := HDRBucketLabelFor(0.00005); got != formatValue(bounds[0]) {
		t.Fatalf("HDRBucketLabelFor(tiny) = %q, want %q", got, formatValue(bounds[0]))
	}
}

func TestHDRHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHDRHistogram()
	durations := []time.Duration{
		50 * time.Microsecond, // bucket 0
		time.Millisecond,
		10 * time.Millisecond,
		100 * time.Millisecond,
		time.Second,
		time.Minute, // overflow
	}
	for _, d := range durations {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(durations)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(durations))
	}
	var sum float64
	for _, d := range durations {
		sum += d.Seconds()
	}
	if math.Abs(s.SumSeconds-sum) > 1e-6 {
		t.Fatalf("SumSeconds = %v, want %v", s.SumSeconds, sum)
	}
	if s.Counts[0] != 1 {
		t.Fatalf("bucket 0 count = %d, want 1", s.Counts[0])
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow count = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	if h.TotalCount() != uint64(len(durations)) {
		t.Fatalf("TotalCount = %d", h.TotalCount())
	}
	if m := s.Mean(); math.Abs(m-sum/float64(len(durations))) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestHDRQuantile(t *testing.T) {
	h := NewHDRHistogram()
	// 1000 observations spread 1ms..1000ms: quantiles should land near
	// the true values with bounded relative error.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.500},
		{0.90, 0.900},
		{0.99, 0.990},
		{0.999, 0.999},
	} {
		got := s.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.5/hdrSubBuckets {
			t.Errorf("Quantile(%v) = %v, want ~%v (rel err %v)", tc.q, got, tc.want, rel)
		}
	}
	if got := (HDRSnapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	// All mass in overflow: reports the last finite bound.
	h2 := NewHDRHistogram()
	h2.Observe(time.Hour)
	bounds := HDRBounds()
	if got := h2.Snapshot().Quantile(0.5); got != bounds[len(bounds)-1] {
		t.Fatalf("overflow Quantile = %v, want %v", got, bounds[len(bounds)-1])
	}
	// Out-of-range q clamps.
	if got := s.Quantile(2); got <= 0 {
		t.Fatalf("Quantile(2) = %v", got)
	}
	if got := s.Quantile(-1); got < 0 {
		t.Fatalf("Quantile(-1) = %v", got)
	}
}

func TestHDRExemplars(t *testing.T) {
	h := NewHDRHistogramExemplars()
	trace := TraceID{0xab, 0xcd, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	h.ObserveTrace(5*time.Millisecond, trace)
	h.ObserveTrace(7*time.Millisecond, TraceID{}) // zero trace: counted, no exemplar
	ex := h.Exemplars()
	if ex == nil {
		t.Fatal("Exemplars() = nil for exemplar histogram")
	}
	var found *Exemplar
	for _, e := range ex {
		if e != nil {
			if found != nil {
				t.Fatalf("more than one exemplar captured")
			}
			found = e
		}
	}
	if found == nil {
		t.Fatal("no exemplar captured")
	}
	if found.TraceID != trace.String() {
		t.Fatalf("exemplar trace = %q, want %q", found.TraceID, trace.String())
	}
	if math.Abs(found.Seconds-0.005) > 1e-9 {
		t.Fatalf("exemplar seconds = %v", found.Seconds)
	}
	if h.TotalCount() != 2 {
		t.Fatalf("TotalCount = %d, want 2", h.TotalCount())
	}
	// Client-side histograms report no exemplars at all.
	if NewHDRHistogram().Exemplars() != nil {
		t.Fatal("plain histogram reported exemplars")
	}
}

func TestHDRHistogramConcurrent(t *testing.T) {
	h := NewHDRHistogramExemplars()
	trace := TraceID{1}
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveTrace(time.Duration(g*per+i)*time.Microsecond, trace)
			}
		}(g)
	}
	wg.Wait()
	if got := h.TotalCount(); got != goroutines*per {
		t.Fatalf("TotalCount = %d, want %d", got, goroutines*per)
	}
}

func TestHDRSamplesRoundTripExposition(t *testing.T) {
	h := NewHDRHistogramExemplars()
	trace := TraceID{0xde, 0xad}
	h.ObserveTrace(300*time.Millisecond, trace)
	h.Observe(2 * time.Millisecond)
	s := h.Snapshot()
	fam := MetricFamily{
		Name: "test_hdr_seconds", Help: "t.", Type: Histogram,
		Samples: HistogramSamplesExemplars([]Label{{"route", "GET /x"}}, HDRBounds(), s.Counts, s.SumSeconds, h.Exemplars()),
	}
	if problems := Lint([]MetricFamily{fam}); len(problems) != 0 {
		t.Fatalf("Lint: %v", problems)
	}
	var buf strings.Builder
	if err := WriteExposition(&buf, []MetricFamily{fam}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# {trace_id="`+trace.String()+`"} 0.3`) {
		t.Fatalf("exposition missing exemplar:\n%s", out)
	}
	if problems := LintExposition(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("LintExposition: %v", problems)
	}
}

func BenchmarkHDRObserve(b *testing.B) {
	h := NewHDRHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
	if h.TotalCount() == 0 {
		b.Fatal("no observations")
	}
}

func BenchmarkHDRObserveTraceNoExemplar(b *testing.B) {
	h := NewHDRHistogramExemplars()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveTrace(time.Duration(i%1000)*time.Microsecond, TraceID{})
	}
}
