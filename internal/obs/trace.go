// Package obs is the module's dependency-free observability layer:
// W3C-traceparent-compatible request tracing into a bounded in-process
// ring buffer, Prometheus text-format exposition, Go runtime gauges, and
// an opt-in debug mux (pprof + trace inspection). Everything is stdlib
// only, like the rest of the module.
//
// The tracing model is deliberately small. A Tracer starts root spans
// (one per request or background operation); any code that holds the
// resulting context can open child spans with StartSpan without ever
// touching the Tracer. Finished traces land in a fixed-size ring of
// atomic pointers — writers never block, readers snapshot — plus a
// slowest-N board, so "what just happened" and "what was slow" are both
// answerable from /debug/traces with zero external infrastructure.
package obs

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is the W3C trace-id: 16 bytes, all-zero invalid.
type TraceID [16]byte

// SpanID is the W3C parent-id/span-id: 8 bytes, all-zero invalid.
type SpanID [8]byte

func (t TraceID) String() string { return hexString(t[:]) }
func (t TraceID) IsZero() bool   { return t == TraceID{} }
func (s SpanID) String() string  { return hexString(s[:]) }
func (s SpanID) IsZero() bool    { return s == SpanID{} }

// hexString is hex.EncodeToString with a stack scratch buffer: one string
// allocation instead of two. IDs render on every span end, so this is on
// the request hot path.
func hexString(b []byte) string {
	var buf [32]byte
	n := hex.Encode(buf[:], b)
	return string(buf[:n])
}

// newTraceID and newSpanID draw non-zero random IDs. math/rand/v2's
// global generator is goroutine-safe and cheap — trace IDs need
// uniqueness, not unpredictability.
func newTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(a >> (8 * i))
		}
	}
	return s
}

// Traceparent is a parsed W3C trace-context header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>").
type Traceparent struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// String renders the version-00 wire form. Built by hand rather than with
// fmt: the header is re-rendered on every traced request.
func (tp Traceparent) String() string {
	const hexdigits = "0123456789abcdef"
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tp.TraceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], tp.SpanID[:])
	buf[52] = '-'
	buf[53], buf[54] = hexdigits[tp.Flags>>4], hexdigits[tp.Flags&0xf]
	return string(buf[:])
}

// ParseTraceparent parses a version-00 traceparent header. Unknown future
// versions are accepted if they carry the version-00 prefix fields, per
// the spec's forward-compatibility rule; "ff" and malformed values error.
func ParseTraceparent(h string) (Traceparent, error) {
	var tp Traceparent
	if len(h) < 55 {
		return tp, fmt.Errorf("obs: traceparent too short: %d chars, want >= 55", len(h))
	}
	if len(h) > 55 && h[55] != '-' {
		return tp, fmt.Errorf("obs: malformed traceparent: junk after flags")
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return tp, fmt.Errorf("obs: malformed traceparent: bad separators")
	}
	ver, err := hex.DecodeString(h[0:2])
	if err != nil {
		return tp, fmt.Errorf("obs: malformed traceparent version: %v", err)
	}
	if ver[0] == 0xff {
		return tp, fmt.Errorf("obs: invalid traceparent version ff")
	}
	if _, err := hex.Decode(tp.TraceID[:], []byte(h[3:35])); err != nil {
		return tp, fmt.Errorf("obs: malformed trace-id: %v", err)
	}
	if _, err := hex.Decode(tp.SpanID[:], []byte(h[36:52])); err != nil {
		return tp, fmt.Errorf("obs: malformed parent-id: %v", err)
	}
	flags, err := hex.DecodeString(h[53:55])
	if err != nil {
		return tp, fmt.Errorf("obs: malformed trace-flags: %v", err)
	}
	tp.Flags = flags[0]
	if tp.TraceID.IsZero() {
		return tp, fmt.Errorf("obs: all-zero trace-id is invalid")
	}
	if tp.SpanID.IsZero() {
		return tp, fmt.Errorf("obs: all-zero parent-id is invalid")
	}
	return tp, nil
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a finished span as it appears in /debug/traces. IDs stay
// binary until marshalling: spans are recorded on every traced request
// but rendered only when someone reads the debug endpoint.
type SpanRecord struct {
	SpanID     SpanID
	ParentID   SpanID // zero when the span is a local root
	Name       string
	Start      time.Time
	DurationMS float64
	Attrs      []Attr
}

// MarshalJSON renders the wire shape ("span_id": "<16 hex>", …) the
// /debug/traces endpoint documents.
func (r SpanRecord) MarshalJSON() ([]byte, error) {
	type wire struct {
		SpanID     string    `json:"span_id"`
		ParentID   string    `json:"parent_id,omitempty"`
		Name       string    `json:"name"`
		Start      time.Time `json:"start"`
		DurationMS float64   `json:"duration_ms"`
		Attrs      []Attr    `json:"attrs,omitempty"`
	}
	w := wire{
		SpanID:     r.SpanID.String(),
		Name:       r.Name,
		Start:      r.Start,
		DurationMS: r.DurationMS,
		Attrs:      r.Attrs,
	}
	if !r.ParentID.IsZero() {
		w.ParentID = r.ParentID.String()
	}
	return json.Marshal(w)
}

// TraceRecord is a finished trace: the root span plus every child that
// ended before the root did.
type TraceRecord struct {
	TraceID      TraceID
	Name         string
	Start        time.Time
	DurationMS   float64
	RemoteParent SpanID // zero unless the trace continued a traceparent
	DroppedSpans int
	Spans        []SpanRecord
}

// MarshalJSON renders the wire shape ("trace_id": "<32 hex>", …) the
// /debug/traces endpoint documents.
func (r *TraceRecord) MarshalJSON() ([]byte, error) {
	type wire struct {
		TraceID      string       `json:"trace_id"`
		Name         string       `json:"name"`
		Start        time.Time    `json:"start"`
		DurationMS   float64      `json:"duration_ms"`
		BucketLE     string       `json:"bucket_le"`
		RemoteParent string       `json:"remote_parent,omitempty"`
		DroppedSpans int          `json:"dropped_spans,omitempty"`
		Spans        []SpanRecord `json:"spans"`
	}
	w := wire{
		TraceID:      r.TraceID.String(),
		Name:         r.Name,
		Start:        r.Start,
		DurationMS:   r.DurationMS,
		BucketLE:     HDRBucketLabelFor(r.DurationMS / 1e3),
		DroppedSpans: r.DroppedSpans,
		Spans:        r.Spans,
	}
	if !r.RemoteParent.IsZero() {
		w.RemoteParent = r.RemoteParent.String()
	}
	return json.Marshal(w)
}

// liveTrace accumulates a trace's finished spans until the root ends.
type liveTrace struct {
	tracer *Tracer
	id     TraceID
	flags  byte
	remote SpanID // parent span from an incoming traceparent, zero if local

	mu      sync.Mutex
	done    []SpanRecord
	dropped int
	final   bool // root ended; late spans are dropped
	discard bool
}

// Span is one timed operation within a trace. The zero Span and the nil
// *Span are both inert, so instrumented code needs no tracer-enabled
// conditionals.
type Span struct {
	tr     *liveTrace
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
	root   bool

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// TraceID returns the span's trace ID (zero for a no-op span).
func (s *Span) TraceID() TraceID {
	if s == nil || s.tr == nil {
		return TraceID{}
	}
	return s.tr.id
}

// SpanID returns the span's own ID (zero for a no-op span).
func (s *Span) SpanID() SpanID {
	if s == nil || s.tr == nil {
		return SpanID{}
	}
	return s.id
}

// Traceparent renders the outbound header value for propagating this
// span's context to a downstream service, and for echoing the trace ID
// back to the caller.
func (s *Span) Traceparent() string {
	if s == nil || s.tr == nil {
		return ""
	}
	return Traceparent{TraceID: s.tr.id, SpanID: s.id, Flags: s.tr.flags | 1}.String()
}

// SetAttr annotates the span. Safe from multiple goroutines and on no-op
// spans.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.tr == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make([]Attr, 0, 4)
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// maxSpanAttrs caps how many attributes a span accumulates via Annotate.
// Past the cap new annotations are dropped, not appended: the slice never
// regrows on a hot path, and the first attributes set (route, status,
// outcome) are the ones worth keeping.
const maxSpanAttrs = 16

// Annotate adds a bounded attribute to the span: like SetAttr, but past
// maxSpanAttrs the annotation is silently dropped instead of growing the
// slice. Instrumented hot paths (verify fan-out, cache tagging) use this
// so a pathological request can't balloon a span record. Safe on nil and
// no-op spans, where it is allocation-free.
func (s *Span) Annotate(key, value string) {
	if s == nil || s.tr == nil {
		return
	}
	s.mu.Lock()
	if len(s.attrs) < maxSpanAttrs {
		if s.attrs == nil {
			s.attrs = make([]Attr, 0, 4)
		}
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// Discard marks the whole trace as not worth recording (e.g. a poll that
// found nothing). It must be called before the root span ends.
func (s *Span) Discard() {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.discard = true
	s.tr.mu.Unlock()
}

// End finishes the span. Ending the root span seals the trace and hands
// it to the tracer's ring buffer; child spans that end after the root are
// dropped (counted, not recorded). End is idempotent.
func (s *Span) End() {
	if s == nil || s.tr == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		SpanID:     s.id,
		ParentID:   s.parent,
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(end.Sub(s.start)) / float64(time.Millisecond),
		Attrs:      s.attrs,
	}
	s.mu.Unlock()

	t := s.tr
	t.mu.Lock()
	if t.final {
		t.dropped++
		t.mu.Unlock()
		return
	}
	max := t.tracer.opt.MaxSpansPerTrace
	if !s.root && len(t.done) >= max {
		t.dropped++
		t.mu.Unlock()
		return
	}
	t.done = append(t.done, rec)
	if !s.root {
		t.mu.Unlock()
		return
	}
	t.final = true
	if t.discard {
		t.mu.Unlock()
		return
	}
	// final is set: nothing appends to done anymore, so hand the slice off
	// instead of copying it.
	spans := t.done
	t.done = nil
	dropped := t.dropped
	t.mu.Unlock()

	// Spans arrive in end order, which is nearly start order already;
	// insertion sort is ~linear here and avoids sort.Slice's closure.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Start.Before(spans[j-1].Start); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	t.tracer.record(&TraceRecord{
		TraceID:      t.id,
		Name:         s.name,
		Start:        s.start,
		DurationMS:   rec.DurationMS,
		RemoteParent: t.remote,
		DroppedSpans: dropped,
		Spans:        spans,
	})
}

// spanKey is the context key carrying the active *Span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil (a usable no-op).
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span. When the context
// carries no span (tracing disabled, or a call outside any trace) it
// returns the context unchanged and an inert span, so call sites never
// branch.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil || parent.tr == nil {
		return ctx, nil
	}
	child := parent.child(name)
	return ContextWithSpan(ctx, child), child
}

// StartLeafSpan opens a child span without deriving a new context — for
// leaf operations that start no spans of their own, it skips the
// context.WithValue allocation StartSpan pays. Nil-safe like StartSpan.
func StartLeafSpan(ctx context.Context, name string) *Span {
	parent := SpanFromContext(ctx)
	if parent == nil || parent.tr == nil {
		return nil
	}
	return parent.child(name)
}

func (s *Span) child(name string) *Span {
	return &Span{
		tr:     s.tr,
		name:   name,
		id:     newSpanID(),
		parent: s.id,
		start:  time.Now(),
	}
}

// Tracer records finished traces. The nil *Tracer is valid and records
// nothing.
type Tracer struct {
	opt     Options
	ring    *ring
	slowest *topK

	started atomic.Uint64
}

// Options tunes a Tracer; the zero value is usable.
type Options struct {
	// Capacity is the recent-trace ring size (default 256).
	Capacity int
	// SlowestCapacity is the slowest-N board size (default 16).
	SlowestCapacity int
	// MaxSpansPerTrace bounds per-trace span accumulation; extra spans
	// are counted as dropped (default 128).
	MaxSpansPerTrace int
	// SlowThreshold: a trace at least this slow emits one structured log
	// line carrying its trace ID (default 250ms; <0 disables).
	SlowThreshold time.Duration
	// Logger receives slow-trace lines (slog.Default when nil).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = 256
	}
	if o.SlowestCapacity <= 0 {
		o.SlowestCapacity = 16
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 128
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 250 * time.Millisecond
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// NewTracer builds a tracer with a bounded ring buffer.
func NewTracer(opt Options) *Tracer {
	opt = opt.withDefaults()
	return &Tracer{
		opt:     opt,
		ring:    newRing(opt.Capacity),
		slowest: newTopK(opt.SlowestCapacity),
	}
}

// Start opens a span. If ctx already carries one, the new span is its
// child within the same trace; otherwise a fresh trace begins with this
// span as root. A nil tracer returns inert spans.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent := SpanFromContext(ctx); parent != nil && parent.tr != nil {
		return StartSpan(ctx, name)
	}
	return t.startRoot(ctx, name, newTraceID(), SpanID{}, 0)
}

// StartRemote opens a root span continuing an incoming traceparent: the
// trace keeps the caller's trace ID and records their span as the remote
// parent.
func (t *Tracer) StartRemote(ctx context.Context, name string, tp Traceparent) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.startRoot(ctx, name, tp.TraceID, tp.SpanID, tp.Flags)
}

func (t *Tracer) startRoot(ctx context.Context, name string, id TraceID, remote SpanID, flags byte) (context.Context, *Span) {
	t.started.Add(1)
	lt := &liveTrace{tracer: t, id: id, flags: flags, remote: remote,
		done: make([]SpanRecord, 0, 4)}
	root := &Span{
		tr:    lt,
		name:  name,
		id:    newSpanID(),
		start: time.Now(),
		root:  true,
	}
	root.parent = remote
	return ContextWithSpan(ctx, root), root
}

func (t *Tracer) record(rec *TraceRecord) {
	t.ring.add(rec)
	t.slowest.offer(rec)
	if th := t.opt.SlowThreshold; th > 0 && rec.DurationMS >= float64(th)/float64(time.Millisecond) {
		t.opt.Logger.Warn("slow trace",
			"trace_id", rec.TraceID,
			"name", rec.Name,
			"duration_ms", rec.DurationMS,
			"spans", len(rec.Spans))
	}
}

// Recent returns up to n finished traces, newest first.
func (t *Tracer) Recent(n int) []*TraceRecord {
	if t == nil {
		return nil
	}
	return t.ring.snapshot(n)
}

// Slowest returns up to n slowest finished traces, slowest first.
func (t *Tracer) Slowest(n int) []*TraceRecord {
	if t == nil {
		return nil
	}
	return t.slowest.snapshot(n)
}

// Started reports how many traces have been started (test/metrics hook).
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}
