package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRingConcurrency hammers the ring from many writers while readers
// snapshot continuously — the -race proof that recording traces on every
// request cannot tear or block the serving path.
func TestRingConcurrency(t *testing.T) {
	r := newRing(64)
	const writers, perWriter = 16, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range r.snapshot(0) {
					if rec.TraceID.IsZero() {
						t.Error("torn record: empty trace id")
						return
					}
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				r.add(&TraceRecord{
					TraceID:    TraceID{byte(g + 1), byte(i >> 8), byte(i)},
					Name:       "w",
					Start:      time.Now(),
					DurationMS: float64(i % 17),
				})
			}
		}(g)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := r.total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
	if got := len(r.snapshot(0)); got != 64 {
		t.Fatalf("snapshot after fill = %d records, want capacity 64", got)
	}
	if got := len(r.snapshot(5)); got != 5 {
		t.Fatalf("bounded snapshot = %d, want 5", got)
	}
}

// TestTracerConcurrentTraces runs whole traces (root + children + attrs)
// from many goroutines at once; under -race this covers the span/trace
// mutexes and the topK fast path.
func TestTracerConcurrentTraces(t *testing.T) {
	tr := quietTracer(Options{Capacity: 32, SlowThreshold: -1})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.Start(context.Background(), "op")
				var cw sync.WaitGroup
				for c := 0; c < 3; c++ {
					cw.Add(1)
					go func(c int) {
						defer cw.Done()
						_, sp := StartSpan(ctx, "child")
						sp.SetAttr("c", fmt.Sprint(c))
						sp.End()
					}(c)
				}
				cw.Wait()
				root.End()
			}
		}(g)
	}
	wg.Wait()
	if tr.Started() != 32*50 {
		t.Fatalf("started = %d, want %d", tr.Started(), 32*50)
	}
	for _, rec := range tr.Recent(0) {
		if len(rec.Spans) != 4 {
			t.Fatalf("trace has %d spans, want 4", len(rec.Spans))
		}
	}
}

func TestTopKFloorFastPath(t *testing.T) {
	k := newTopK(3)
	for i := 1; i <= 10; i++ {
		k.offer(&TraceRecord{DurationMS: float64(i)})
	}
	got := k.snapshot(0)
	if len(got) != 3 || got[0].DurationMS != 10 || got[1].DurationMS != 9 || got[2].DurationMS != 8 {
		t.Fatalf("topK = %+v", got)
	}
	// Fast-rejected offers must not displace anything.
	k.offer(&TraceRecord{DurationMS: 0.5})
	if got := k.snapshot(0); got[2].DurationMS != 8 {
		t.Fatalf("floor breached: %+v", got)
	}
}
