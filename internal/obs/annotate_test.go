package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestAnnotateBounded(t *testing.T) {
	tr := quietTracer(Options{})
	_, root := tr.Start(context.Background(), "req")
	for i := 0; i < maxSpanAttrs*3; i++ {
		root.Annotate("k", fmt.Sprintf("v%d", i))
	}
	root.End()
	recs := tr.Recent(1)
	if len(recs) != 1 {
		t.Fatalf("recorded traces = %d", len(recs))
	}
	attrs := recs[0].Spans[0].Attrs
	if len(attrs) != maxSpanAttrs {
		t.Fatalf("attrs = %d, want cap %d", len(attrs), maxSpanAttrs)
	}
	// Drop-not-grow: the first annotations survive, the overflow is gone.
	if attrs[0].Value != "v0" || attrs[maxSpanAttrs-1].Value != fmt.Sprintf("v%d", maxSpanAttrs-1) {
		t.Fatalf("kept wrong attrs: first=%+v last=%+v", attrs[0], attrs[maxSpanAttrs-1])
	}
}

func TestAnnotateMixesWithSetAttr(t *testing.T) {
	tr := quietTracer(Options{})
	_, root := tr.Start(context.Background(), "req")
	root.SetAttr("status", "200")
	root.Annotate("cached", "true")
	root.End()
	recs := tr.Recent(1)
	if len(recs) != 1 || len(recs[0].Spans[0].Attrs) != 2 {
		t.Fatalf("attrs = %+v", recs[0].Spans[0].Attrs)
	}
}

func TestAnnotateNoopSpanSafe(t *testing.T) {
	var sp *Span
	sp.Annotate("a", "b") // must not panic
	var zero Span
	zero.Annotate("a", "b")
}

func TestTraceRecordJSONBucketLE(t *testing.T) {
	rec := &TraceRecord{
		TraceID:    TraceID{1, 2, 3},
		Name:       "GET /v1/providers",
		Start:      time.Now(),
		DurationMS: 300, // 0.3s
		Spans:      []SpanRecord{},
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var wire struct {
		BucketLE string `json:"bucket_le"`
	}
	if err := json.Unmarshal(raw, &wire); err != nil {
		t.Fatal(err)
	}
	if want := HDRBucketLabelFor(0.3); wire.BucketLE != want {
		t.Fatalf("bucket_le = %q, want %q", wire.BucketLE, want)
	}
	// The bound actually covers the duration: label parses back to a
	// bound >= 0.3s (or +Inf).
	if wire.BucketLE == "" {
		t.Fatal("bucket_le missing")
	}
}

func TestTracesHandlerTraceIDFilter(t *testing.T) {
	tr := quietTracer(Options{SlowThreshold: -1})
	var want string
	for i := 0; i < 3; i++ {
		_, root := tr.Start(context.Background(), fmt.Sprintf("req-%d", i))
		if i == 1 {
			want = root.TraceID().String()
		}
		root.End()
	}
	h := tr.TracesHandler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?trace_id="+want, nil))
	var resp struct {
		Recent  []json.RawMessage `json:"recent"`
		Slowest []json.RawMessage `json:"slowest"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v\n%s", err, rr.Body.String())
	}
	if len(resp.Recent) != 1 {
		t.Fatalf("filtered recent = %d, want 1", len(resp.Recent))
	}
	if !strings.Contains(string(resp.Recent[0]), want) {
		t.Fatalf("filtered record does not carry trace id %s: %s", want, resp.Recent[0])
	}

	// Unknown ID filters everything out but still returns valid JSON arrays.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/traces?trace_id="+strings.Repeat("0", 32), nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Recent) != 0 || len(resp.Slowest) != 0 {
		t.Fatalf("unknown id matched: recent=%d slowest=%d", len(resp.Recent), len(resp.Slowest))
	}
}

// BenchmarkAnnotateNoop pins the inert-span warm path at zero
// allocations: instrumented code calls Annotate unconditionally, and when
// tracing is off (nil tracer) it must cost nothing.
func BenchmarkAnnotateNoop(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Annotate("cached", "true")
	}
}

// BenchmarkAnnotateLive measures the live-span path: one append under a
// mutex, no per-call allocation once the attrs slice exists.
func BenchmarkAnnotateLive(b *testing.B) {
	tr := quietTracer(Options{})
	_, root := tr.Start(context.Background(), "bench")
	defer root.End()
	root.Annotate("warm", "up")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root.Annotate("cached", "true")
	}
}
