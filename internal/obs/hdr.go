package obs

// HDR-style log-linear latency histograms, shared between trustd's
// per-route server metrics and cmd/loadgen's client-side capture. Both
// sides bucket against the exact same bounds (HDRBounds), so a
// loadgen-vs-trustd latency comparison is a per-bucket diff, not an
// approximation across two bucket layouts.
//
// The layout is the classic HDR compromise: within each power-of-two
// octave the bucket widths are linear (hdrSubBuckets per octave), so
// relative error is bounded (~1/hdrSubBuckets) across the whole range
// while the bucket count stays small enough to expose per route. The
// range runs from 100µs to ~13s — below the first bound everything lands
// in bucket 0; above the last bound in the +Inf overflow bucket.
//
// Each bucket optionally carries one exemplar: the trace ID of the most
// recent observation that landed there. A scrape of
// /metrics/prometheus then links a slow bucket straight to its span
// tree in /debug/traces?trace_id=... without any external tracing
// infrastructure.

import (
	"math"
	"sync/atomic"
	"time"
)

const (
	// hdrMin is the first bucket's upper bound in seconds (100µs).
	hdrMin = 1e-4
	// hdrOctaves is how many power-of-two ranges the layout spans:
	// 100µs × 2^17 ≈ 13.1s.
	hdrOctaves = 17
	// hdrSubBuckets is the linear resolution within one octave.
	hdrSubBuckets = 4
)

// hdrBounds is the shared bucket layout: bounds[0] = hdrMin, then
// hdrSubBuckets linearly spaced bounds per octave up to hdrMin × 2^17.
// The +Inf overflow bucket is implicit (index len(hdrBounds)).
var hdrBounds = func() []float64 {
	bounds := make([]float64, 0, 1+hdrOctaves*hdrSubBuckets)
	bounds = append(bounds, hdrMin)
	lo := hdrMin
	for o := 0; o < hdrOctaves; o++ {
		for k := 1; k <= hdrSubBuckets; k++ {
			bounds = append(bounds, lo*(1+float64(k)/hdrSubBuckets))
		}
		lo *= 2
	}
	return bounds
}()

// hdrLabels pre-renders each bound as its Prometheus le label (plus
// "+Inf" for the overflow bucket), so exposition and the trace board
// never format on a hot path.
var hdrLabels = func() []string {
	labels := make([]string, len(hdrBounds)+1)
	for i, b := range hdrBounds {
		labels[i] = formatValue(b)
	}
	labels[len(hdrBounds)] = "+Inf"
	return labels
}()

// HDRBounds returns a copy of the shared bucket upper bounds in seconds.
// cmd/loadgen publishes these in its report and diffs them against the
// server's exposition to prove both sides bucket identically.
func HDRBounds() []float64 {
	return append([]float64(nil), hdrBounds...)
}

// HDRNumBuckets is the slot count of an HDR histogram: one per bound
// plus the +Inf overflow bucket.
func HDRNumBuckets() int { return len(hdrBounds) + 1 }

// HDRBucketIndex returns the bucket an observation of v seconds lands
// in: the smallest i with v <= hdrBounds[i], or len(hdrBounds) for the
// overflow bucket. Binary search over ~70 bounds — a handful of
// comparisons, no allocation.
func HDRBucketIndex(v float64) int {
	lo, hi := 0, len(hdrBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= hdrBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// HDRBucketLabel returns the le label of bucket i ("0.000125" …
// "+Inf"), matching the exposition's rendering exactly.
func HDRBucketLabel(i int) string {
	if i < 0 {
		i = 0
	}
	if i >= len(hdrLabels) {
		i = len(hdrLabels) - 1
	}
	return hdrLabels[i]
}

// HDRBucketLabelFor returns the le label of the bucket v seconds falls
// into — the /debug/traces board uses it to tag each trace with the
// histogram bucket its duration was counted in.
func HDRBucketLabelFor(v float64) string {
	return hdrLabels[HDRBucketIndex(v)]
}

// Exemplar links one recorded observation to its trace.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Seconds float64 `json:"seconds"`
	Unix    int64   `json:"unix"`
}

// HDRHistogram is a concurrent log-linear histogram over the shared
// bounds. Observations are two atomic adds (bucket count + sum); no
// locks, no allocation. Exemplar capture allocates one small record and
// is only taken for traced observations.
type HDRHistogram struct {
	counts []atomic.Uint64
	sumNs  atomic.Int64
	// exemplars holds the latest traced observation per bucket; nil
	// when the histogram was built without exemplar capture (client
	// side, where there is no trace to link).
	exemplars []atomic.Pointer[Exemplar]
}

// NewHDRHistogram builds a histogram without exemplar slots (the
// loadgen client side).
func NewHDRHistogram() *HDRHistogram {
	return &HDRHistogram{counts: make([]atomic.Uint64, HDRNumBuckets())}
}

// NewHDRHistogramExemplars builds a histogram that also captures one
// exemplar per bucket (the server side).
func NewHDRHistogramExemplars() *HDRHistogram {
	h := NewHDRHistogram()
	h.exemplars = make([]atomic.Pointer[Exemplar], HDRNumBuckets())
	return h
}

// Observe records one duration.
func (h *HDRHistogram) Observe(d time.Duration) {
	h.counts[HDRBucketIndex(d.Seconds())].Add(1)
	h.sumNs.Add(int64(d))
}

// ObserveTrace records one duration and, when the histogram captures
// exemplars and the trace ID is set, remembers the trace as the
// bucket's exemplar. Last-writer-wins per bucket: the freshest slow
// request is exactly the one worth chasing.
func (h *HDRHistogram) ObserveTrace(d time.Duration, trace TraceID) {
	secs := d.Seconds()
	i := HDRBucketIndex(secs)
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	if h.exemplars != nil && !trace.IsZero() {
		h.exemplars[i].Store(&Exemplar{TraceID: trace.String(), Seconds: secs, Unix: time.Now().Unix()})
	}
}

// HDRSnapshot is a consistent-enough copy of a histogram's state:
// per-bucket counts (overflow last), total count and sum. Buckets are
// read one atomic load at a time, so a snapshot taken under concurrent
// writes can be off by in-flight observations — fine for exposition and
// quantile reads.
type HDRSnapshot struct {
	Counts     []uint64
	Count      uint64
	SumSeconds float64
}

// Snapshot copies the histogram's current state.
func (h *HDRHistogram) Snapshot() HDRSnapshot {
	s := HDRSnapshot{Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumSeconds = float64(h.sumNs.Load()) / float64(time.Second)
	return s
}

// Exemplars returns the bucket exemplars (index-parallel to Counts),
// nil entries for buckets without one. Returns nil when the histogram
// does not capture exemplars.
func (h *HDRHistogram) Exemplars() []*Exemplar {
	if h.exemplars == nil {
		return nil
	}
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// TotalCount returns the number of observations recorded so far.
func (h *HDRHistogram) TotalCount() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds by linear
// interpolation within the bucket the rank falls into — the same
// estimate Prometheus's histogram_quantile would compute from the
// exposed buckets, so client-side p99s and PromQL p99s agree. Returns 0
// for an empty snapshot; ranks in the overflow bucket report the last
// finite bound (the histogram cannot see past it).
func (s HDRSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(hdrBounds) {
			return hdrBounds[len(hdrBounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = hdrBounds[i-1]
		}
		upper := hdrBounds[i]
		frac := (rank - prev) / float64(c)
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	return hdrBounds[len(hdrBounds)-1]
}

// Mean returns the average observation in seconds (0 when empty).
func (s HDRSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}
