package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func quietTracer(opt Options) *Tracer {
	opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return NewTracer(opt)
}

func TestTraceparentRoundTrip(t *testing.T) {
	in := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tp, err := ParseTraceparent(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tp.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id = %s", tp.TraceID)
	}
	if tp.SpanID.String() != "b7ad6b7169203331" {
		t.Errorf("span id = %s", tp.SpanID)
	}
	if tp.Flags != 1 {
		t.Errorf("flags = %d", tp.Flags)
	}
	if got := tp.String(); got != in {
		t.Errorf("round trip = %q, want %q", got, in)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"00-short",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",                 // version ff invalid
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",                 // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",                 // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",                 // bad hex
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",                 // bad separator
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01garbagenosep",     // trailing junk
		"000af7651916cd43dd8448eb211c80319cb7ad6b716920333101aaaaaaaaaaaaaaaaaaa", // no separators
	}
	for _, c := range cases {
		if _, err := ParseTraceparent(c); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", c)
		}
	}
	// Future versions with the same shape are accepted per spec.
	if _, err := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
	// Extra fields after flags are allowed when dash-separated.
	if _, err := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); err != nil {
		t.Errorf("dash-separated extension rejected: %v", err)
	}
}

func TestTracePropagation(t *testing.T) {
	tr := quietTracer(Options{})
	tp, _ := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	ctx, root := tr.StartRemote(context.Background(), "request", tp)

	if root.TraceID() != tp.TraceID {
		t.Fatalf("remote start lost the trace id: %s", root.TraceID())
	}
	if !strings.Contains(root.Traceparent(), tp.TraceID.String()) {
		t.Errorf("outbound traceparent %q does not carry trace id", root.Traceparent())
	}

	cctx, child := StartSpan(ctx, "child")
	child.SetAttr("k", "v")
	if child.TraceID() != tp.TraceID {
		t.Errorf("child trace id = %s", child.TraceID())
	}
	_, grand := StartSpan(cctx, "grandchild")
	grand.End()
	child.End()
	root.End()

	recs := tr.Recent(10)
	if len(recs) != 1 {
		t.Fatalf("recorded traces = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != tp.TraceID {
		t.Errorf("record trace id = %s", rec.TraceID)
	}
	if rec.RemoteParent != tp.SpanID {
		t.Errorf("remote parent = %s, want %s", rec.RemoteParent, tp.SpanID)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(rec.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range rec.Spans {
		byName[sp.Name] = sp
	}
	if byName["child"].ParentID != byName["request"].SpanID {
		t.Errorf("child parent = %q, want root %q", byName["child"].ParentID, byName["request"].SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Errorf("grandchild parent = %q", byName["grandchild"].ParentID)
	}
	if len(byName["child"].Attrs) != 1 || byName["child"].Attrs[0].Key != "k" {
		t.Errorf("child attrs = %+v", byName["child"].Attrs)
	}
}

func TestNoopSpansAreSafe(t *testing.T) {
	var nilTracer *Tracer
	ctx, sp := nilTracer.Start(context.Background(), "x")
	sp.SetAttr("a", "b")
	sp.Discard()
	sp.End()
	if got := sp.Traceparent(); got != "" {
		t.Errorf("noop traceparent = %q", got)
	}
	// StartSpan on a context without a trace is also inert.
	_, child := StartSpan(ctx, "child")
	child.SetAttr("a", "b")
	child.End()
	if nilTracer.Recent(5) != nil || nilTracer.Slowest(5) != nil {
		t.Error("nil tracer returned records")
	}
}

func TestDiscardDropsTrace(t *testing.T) {
	tr := quietTracer(Options{})
	_, root := tr.Start(context.Background(), "poll")
	root.Discard()
	root.End()
	if n := len(tr.Recent(10)); n != 0 {
		t.Fatalf("discarded trace recorded (%d)", n)
	}
}

func TestMaxSpansPerTrace(t *testing.T) {
	tr := quietTracer(Options{MaxSpansPerTrace: 4})
	ctx, root := tr.Start(context.Background(), "busy")
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, "child")
		sp.End()
	}
	root.End()
	recs := tr.Recent(1)
	if len(recs) != 1 {
		t.Fatal("trace not recorded")
	}
	// 4 children + the root span itself.
	if len(recs[0].Spans) != 5 {
		t.Errorf("spans = %d, want 5", len(recs[0].Spans))
	}
	if recs[0].DroppedSpans != 6 {
		t.Errorf("dropped = %d, want 6", recs[0].DroppedSpans)
	}
}

func TestSlowestBoard(t *testing.T) {
	tr := quietTracer(Options{SlowestCapacity: 2, SlowThreshold: -1})
	for _, d := range []float64{5, 1, 9, 3, 7} {
		tr.record(&TraceRecord{TraceID: TraceID{1}, Name: "n", Start: time.Now(), DurationMS: d})
	}
	slow := tr.Slowest(0)
	if len(slow) != 2 || slow[0].DurationMS != 9 || slow[1].DurationMS != 7 {
		t.Fatalf("slowest = %+v", slow)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := quietTracer(Options{})
	_, root := tr.Start(context.Background(), "once")
	root.End()
	root.End()
	if n := len(tr.Recent(10)); n != 1 {
		t.Fatalf("records = %d, want 1 after double End", n)
	}
}
