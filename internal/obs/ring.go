package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Duration values are non-negative, so their float bits round-trip
// through a uint64 without ordering surprises. A stored floor of 0 means
// "board not full yet", which merely skips the fast path.
func bitsFromFloat(f float64) uint64 { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// ring is the bounded recent-trace buffer: a fixed array of atomic
// pointers plus an atomic write cursor. Writers claim a slot with one
// atomic add and store the record with one atomic store — no lock, no
// blocking, and a reader concurrently snapshotting sees either the old
// or the new record, never a torn one. Overwrites drop the oldest trace,
// which is exactly the retention a debug buffer wants.
type ring struct {
	slots []atomic.Pointer[TraceRecord]
	next  atomic.Uint64
}

func newRing(capacity int) *ring {
	return &ring{slots: make([]atomic.Pointer[TraceRecord], capacity)}
}

func (r *ring) add(rec *TraceRecord) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(rec)
}

// snapshot returns up to n records, newest first.
func (r *ring) snapshot(n int) []*TraceRecord {
	out := make([]*TraceRecord, 0, len(r.slots))
	for i := range r.slots {
		if rec := r.slots[i].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// total reports how many traces have ever been recorded.
func (r *ring) total() uint64 { return r.next.Load() }

// topK is the slowest-N board. A lock-free floor check keeps the common
// case (a fast trace that cannot place) off the mutex entirely; only
// traces that might enter the board pay for the lock, and the critical
// section is a small sorted-slice insert.
type topK struct {
	k     int
	floor atomic.Uint64 // DurationMS bits of the current minimum once full

	mu    sync.Mutex
	items []*TraceRecord // sorted slowest first
}

func newTopK(k int) *topK {
	return &topK{k: k}
}

func (t *topK) offer(rec *TraceRecord) {
	if f := t.floor.Load(); f != 0 && rec.DurationMS <= floatFromBits(f) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	i := sort.Search(len(t.items), func(i int) bool { return t.items[i].DurationMS < rec.DurationMS })
	if i >= t.k {
		return
	}
	t.items = append(t.items, nil)
	copy(t.items[i+1:], t.items[i:])
	t.items[i] = rec
	if len(t.items) > t.k {
		t.items = t.items[:t.k]
	}
	if len(t.items) == t.k {
		t.floor.Store(bitsFromFloat(t.items[len(t.items)-1].DurationMS))
	}
}

// snapshot returns up to n records, slowest first.
func (t *topK) snapshot(n int) []*TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := len(t.items)
	if n > 0 && m > n {
		m = n
	}
	out := make([]*TraceRecord, m)
	copy(out, t.items[:m])
	return out
}
