package obs

// Prometheus text-format exposition (version 0.0.4), built from plain
// values at scrape time. There is no registry and no background state:
// callers assemble []MetricFamily from whatever they already track
// (expvar trees, atomics, a database pointer) and WriteExposition
// renders them with stable ordering and correct escaping. Lint and
// LintExposition are the promlint-style checks the golden tests and the
// hermetic smoke binaries run against the output.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// MetricType is the TYPE annotation of a family.
type MetricType string

// Exposition metric types.
const (
	Counter   MetricType = "counter"
	Gauge     MetricType = "gauge"
	Histogram MetricType = "histogram"
	Untyped   MetricType = "untyped"
)

// Label is one name="value" pair; order within a sample is preserved.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line. Suffix is appended to the family name —
// histogram families use "_bucket", "_sum" and "_count"; scalar families
// leave it empty. A histogram _bucket sample may carry an Exemplar,
// rendered OpenMetrics-style after the value
// (`… 17 # {trace_id="<hex>"} 0.42`) so a scrape links the bucket to a
// concrete trace in /debug/traces.
type Sample struct {
	Suffix   string
	Labels   []Label
	Value    float64
	Exemplar *Exemplar
}

// MetricFamily is one named metric with its samples.
type MetricFamily struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// CounterFamily builds a single-sample counter.
func CounterFamily(name, help string, v float64) MetricFamily {
	return MetricFamily{Name: name, Help: help, Type: Counter, Samples: []Sample{{Value: v}}}
}

// GaugeFamily builds a single-sample gauge.
func GaugeFamily(name, help string, v float64) MetricFamily {
	return MetricFamily{Name: name, Help: help, Type: Gauge, Samples: []Sample{{Value: v}}}
}

// HistogramSamples renders one histogram series: per-bucket counts
// (counts[i] observations at most bounds[i], counts[len(bounds)] beyond
// the last bound) become cumulative _bucket samples with le labels
// ending at +Inf, plus _sum and _count. labels are attached to every
// sample (e.g. the route).
func HistogramSamples(labels []Label, bounds []float64, counts []uint64, sum float64) []Sample {
	out := make([]Sample, 0, len(bounds)+3)
	var cum uint64
	for i, le := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		out = append(out, Sample{
			Suffix: "_bucket",
			Labels: append(append([]Label(nil), labels...), Label{"le", formatValue(le)}),
			Value:  float64(cum),
		})
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	out = append(out,
		Sample{Suffix: "_bucket", Labels: append(append([]Label(nil), labels...), Label{"le", "+Inf"}), Value: float64(cum)},
		Sample{Suffix: "_sum", Labels: append([]Label(nil), labels...), Value: sum},
		Sample{Suffix: "_count", Labels: append([]Label(nil), labels...), Value: float64(cum)},
	)
	return out
}

// HistogramSamplesExemplars is HistogramSamples plus per-bucket
// exemplars: exemplars is index-parallel to counts (overflow last, nil
// entries allowed) and each non-nil entry is attached to its bucket's
// sample, the overflow exemplar to the +Inf bucket.
func HistogramSamplesExemplars(labels []Label, bounds []float64, counts []uint64, sum float64, exemplars []*Exemplar) []Sample {
	out := HistogramSamples(labels, bounds, counts, sum)
	for i := 0; i <= len(bounds) && i < len(exemplars); i++ {
		if exemplars[i] != nil && i < len(out) {
			out[i].Exemplar = exemplars[i]
		}
	}
	return out
}

// WriteExposition renders the families as Prometheus text format with
// deterministic ordering: families sorted by name, samples by suffix and
// label signature. Ordering stability is what makes the golden test and
// conditional scraping diffs meaningful.
func WriteExposition(w io.Writer, families []MetricFamily) error {
	fams := append([]MetricFamily(nil), families...)
	sort.SliceStable(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		typ := f.Type
		if typ == "" {
			typ = Untyped
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, typ)
		samples := append([]Sample(nil), f.Samples...)
		sort.SliceStable(samples, func(i, j int) bool {
			if samples[i].Suffix != samples[j].Suffix {
				return samples[i].Suffix < samples[j].Suffix
			}
			return labelSig(samples[i].Labels) < labelSig(samples[j].Labels)
		})
		for _, s := range samples {
			bw.WriteString(f.Name)
			bw.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				bw.WriteByte('{')
				for i, l := range s.Labels {
					if i > 0 {
						bw.WriteByte(',')
					}
					fmt.Fprintf(bw, "%s=%q", l.Name, escapeLabel(l.Value))
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(formatValue(s.Value))
			if s.Exemplar != nil && s.Exemplar.TraceID != "" {
				// OpenMetrics-style exemplar suffix — an extension
				// over text format 0.0.4 (the content type stays
				// 0.0.4; LintExposition accepts and validates it).
				fmt.Fprintf(bw, " # {trace_id=%q} %s", escapeLabel(s.Exemplar.TraceID), formatValue(s.Exemplar.Seconds))
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// labelSig orders samples within a family. The le label sorts numerically
// so histogram buckets come out in bound order, not lexical order.
func labelSig(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		if l.Name == "le" {
			// '~' sorts after every digit, so +Inf lands last.
			key := "~inf"
			if l.Value != "+Inf" {
				if f, err := strconv.ParseFloat(l.Value, 64); err == nil {
					key = fmt.Sprintf("%030.9f", f)
				}
			}
			fmt.Fprintf(&b, "le\x00%s\x00", key)
			continue
		}
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
		b.WriteByte(0)
	}
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes the characters %q does not handle the Prometheus
// way. %q already escapes backslash, quote and newline compatibly, so the
// value passes through — kept as a function to document the contract.
func escapeLabel(s string) string { return s }

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Lint runs promlint-style checks over families before rendering:
// name/label charsets, counter naming, histogram shape (a +Inf bucket,
// cumulative monotone counts, _count == +Inf bucket), duplicate series.
// It returns human-readable problems, empty when clean.
func Lint(families []MetricFamily) []string {
	var problems []string
	seenFamily := map[string]bool{}
	for _, f := range families {
		if !metricNameRe.MatchString(f.Name) {
			problems = append(problems, fmt.Sprintf("%s: invalid metric name", f.Name))
			continue
		}
		if seenFamily[f.Name] {
			problems = append(problems, fmt.Sprintf("%s: duplicate family", f.Name))
		}
		seenFamily[f.Name] = true
		if f.Help == "" {
			problems = append(problems, fmt.Sprintf("%s: no HELP text", f.Name))
		}
		if f.Type == Counter && !strings.HasSuffix(f.Name, "_total") {
			problems = append(problems, fmt.Sprintf("%s: counter name should end in _total", f.Name))
		}
		seenSeries := map[string]bool{}
		for _, s := range f.Samples {
			for _, l := range s.Labels {
				if !labelNameRe.MatchString(l.Name) {
					problems = append(problems, fmt.Sprintf("%s: invalid label name %q", f.Name, l.Name))
				}
			}
			key := s.Suffix + "\x00" + labelSig(s.Labels)
			if seenSeries[key] {
				problems = append(problems, fmt.Sprintf("%s%s: duplicate series %v", f.Name, s.Suffix, s.Labels))
			}
			seenSeries[key] = true
			if s.Exemplar != nil && (f.Type != Histogram || s.Suffix != "_bucket") {
				problems = append(problems, fmt.Sprintf("%s%s: exemplar on non-bucket sample", f.Name, s.Suffix))
			}
			if f.Type == Histogram {
				switch s.Suffix {
				case "_bucket", "_sum", "_count":
				default:
					problems = append(problems, fmt.Sprintf("%s: histogram sample with suffix %q", f.Name, s.Suffix))
				}
			} else if s.Suffix != "" {
				problems = append(problems, fmt.Sprintf("%s: non-histogram sample with suffix %q", f.Name, s.Suffix))
			}
		}
		if f.Type == Histogram {
			problems = append(problems, lintHistogram(f)...)
		}
	}
	return problems
}

// lintHistogram checks each histogram series (grouped by its non-le
// labels) for a +Inf bucket, monotone cumulative counts and a matching
// _count.
func lintHistogram(f MetricFamily) []string {
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	groups := map[string]*series{}
	groupOf := func(labels []Label) *series {
		var rest []Label
		for _, l := range labels {
			if l.Name != "le" {
				rest = append(rest, l)
			}
		}
		key := labelSig(rest)
		g, ok := groups[key]
		if !ok {
			g = &series{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		g := groupOf(s.Labels)
		switch s.Suffix {
		case "_bucket":
			le := math.Inf(1)
			for _, l := range s.Labels {
				if l.Name == "le" && l.Value != "+Inf" {
					le, _ = strconv.ParseFloat(l.Value, 64)
				}
			}
			g.les = append(g.les, le)
			g.counts = append(g.counts, s.Value)
		case "_count":
			g.count, g.hasCnt = s.Value, true
		}
	}
	var problems []string
	for _, g := range groups {
		if len(g.les) == 0 {
			continue
		}
		sort.Sort(&bucketSort{g.les, g.counts})
		if !math.IsInf(g.les[len(g.les)-1], 1) {
			problems = append(problems, fmt.Sprintf("%s: histogram series missing +Inf bucket", f.Name))
			continue
		}
		for i := 1; i < len(g.counts); i++ {
			if g.counts[i] < g.counts[i-1] {
				problems = append(problems, fmt.Sprintf("%s: histogram buckets not cumulative", f.Name))
				break
			}
		}
		if g.hasCnt && g.count != g.counts[len(g.counts)-1] {
			problems = append(problems, fmt.Sprintf("%s: _count != +Inf bucket", f.Name))
		}
	}
	return problems
}

// bucketSort co-sorts bucket bounds and counts.
type bucketSort struct {
	les    []float64
	counts []float64
}

func (b *bucketSort) Len() int           { return len(b.les) }
func (b *bucketSort) Less(i, j int) bool { return b.les[i] < b.les[j] }
func (b *bucketSort) Swap(i, j int) {
	b.les[i], b.les[j] = b.les[j], b.les[i]
	b.counts[i], b.counts[j] = b.counts[j], b.counts[i]
}

// LintExposition parses rendered text format and re-checks it: every
// sample must belong to a declared TYPE, names and values must parse,
// histograms must carry +Inf buckets. It is the wire-level guard the CI
// smoke steps run against a live /metrics/prometheus response.
func LintExposition(r io.Reader) []string {
	var problems []string
	types := map[string]MetricType{}
	infSeen := map[string]bool{}
	bucketSeen := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				problems = append(problems, fmt.Sprintf("line %d: malformed TYPE line", lineNo))
				continue
			}
			name, typ := fields[2], MetricType(fields[3])
			if _, dup := types[name]; dup {
				problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
			}
			switch typ {
			case Counter, Gauge, Histogram, Untyped, "summary":
			default:
				problems = append(problems, fmt.Sprintf("line %d: unknown type %q", lineNo, typ))
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			problems = append(problems, fmt.Sprintf("line %d: %v", lineNo, err))
			continue
		}
		if _, err := parsePromValue(value); err != nil {
			problems = append(problems, fmt.Sprintf("line %d: bad value %q", lineNo, value))
		}
		base, ok := familyOf(name, types)
		if !ok {
			problems = append(problems, fmt.Sprintf("line %d: sample %s has no TYPE declaration", lineNo, name))
			continue
		}
		if types[base] == Histogram && strings.HasSuffix(name, "_bucket") {
			bucketSeen[base] = true
			if strings.Contains(labels, `le="+Inf"`) {
				infSeen[base] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}
	for base := range bucketSeen {
		if !infSeen[base] {
			problems = append(problems, fmt.Sprintf("%s: histogram without +Inf bucket", base))
		}
	}
	return problems
}

// familyOf resolves a sample name to its declared family, trying the
// bare name first and then stripping histogram/summary suffixes.
func familyOf(name string, types map[string]MetricType) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t, declared := types[base]; declared && (t == Histogram || t == "summary") {
				return base, true
			}
		}
	}
	return "", false
}

func parseSampleLine(line string) (name, labels, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		// Scan for the label set's own closing brace (quote-aware) —
		// an exemplar suffix carries a second {...} later in the line,
		// so a LastIndexByte would grab the wrong one.
		j, berr := closingBrace(rest, i)
		if berr != nil {
			return "", "", "", berr
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", "", fmt.Errorf("malformed sample line")
		}
		name = fields[0]
		rest = strings.TrimSpace(strings.TrimPrefix(rest, name))
	}
	if !metricNameRe.MatchString(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	// Split off an OpenMetrics-style exemplar (` # {…} value [ts]`)
	// before counting fields; the labels are already stripped, so the
	// first '#' here can only start an exemplar.
	var exemplar string
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		exemplar = strings.TrimSpace(rest[i+1:])
		rest = strings.TrimSpace(rest[:i])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return "", "", "", fmt.Errorf("malformed sample line")
	}
	if exemplar != "" {
		if eerr := lintExemplar(exemplar); eerr != nil {
			return "", "", "", eerr
		}
	}
	return name, labels, fields[0], nil
}

// closingBrace finds the index of the '}' matching the '{' at open,
// skipping braces inside quoted label values.
func closingBrace(s string, open int) (int, error) {
	inStr := false
	for i := open + 1; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == '}':
			return i, nil
		}
	}
	return 0, fmt.Errorf("unbalanced braces")
}

// lintExemplar validates the part after a sample's '#': a {label="v"}
// set followed by a value and an optional timestamp.
func lintExemplar(s string) error {
	if !strings.HasPrefix(s, "{") {
		return fmt.Errorf("malformed exemplar %q", s)
	}
	j, err := closingBrace(s, 0)
	if err != nil {
		return fmt.Errorf("malformed exemplar %q", s)
	}
	for _, part := range splitLabelPairs(s[1:j]) {
		name, _, ok := strings.Cut(part, "=")
		if !ok || !labelNameRe.MatchString(strings.TrimSpace(name)) {
			return fmt.Errorf("bad exemplar label %q", part)
		}
	}
	fields := strings.Fields(strings.TrimSpace(s[j+1:]))
	if len(fields) < 1 || len(fields) > 2 { // value [timestamp]
		return fmt.Errorf("exemplar missing value in %q", s)
	}
	if _, err := parsePromValue(fields[0]); err != nil {
		return fmt.Errorf("bad exemplar value %q", fields[0])
	}
	return nil
}

// splitLabelPairs splits a label body on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var parts []string
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch {
		case inStr:
			if s[i] == '\\' {
				i++
			} else if s[i] == '"' {
				inStr = false
			}
		case s[i] == '"':
			inStr = true
		case s[i] == ',':
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if tail := strings.TrimSpace(s[start:]); tail != "" {
		parts = append(parts, tail)
	}
	return parts
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// RuntimeFamilies reports the Go runtime's health at call time:
// goroutines, heap, and GC pause totals — the gauges every serving stack
// scrapes next to its own counters.
func RuntimeFamilies() []MetricFamily {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []MetricFamily{
		GaugeFamily("go_goroutines", "Number of goroutines that currently exist.", float64(runtime.NumGoroutine())),
		GaugeFamily("go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc)),
		GaugeFamily("go_heap_inuse_bytes", "Bytes in in-use heap spans.", float64(ms.HeapInuse)),
		GaugeFamily("go_heap_objects", "Number of allocated heap objects.", float64(ms.HeapObjects)),
		CounterFamily("go_gc_cycles_total", "Completed GC cycles.", float64(ms.NumGC)),
		CounterFamily("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9),
		GaugeFamily("go_next_gc_bytes", "Heap size target of the next GC cycle.", float64(ms.NextGC)),
	}
}
