// Package jks reads and writes Java KeyStore (JKS version 2) files, the
// binary format Oracle's Java root program ships its cacerts in. Only
// trusted-certificate entries (tag 2) are supported — exactly what a root
// store contains; private-key entries are rejected.
//
// Layout (all integers big-endian):
//
//	u4 magic 0xFEEDFEED | u4 version=2 | u4 count
//	per entry: u4 tag=2 | UTF alias | u8 creationDateMillis |
//	           UTF certType ("X.509") | u4 certLen | cert DER
//	trailer: SHA-1 over (password as UTF-16BE || "Mighty Aphrodite" ||
//	         all preceding bytes)
//
// The integrity digest is password-keyed obfuscation, not cryptographic
// protection; we implement it for wire compatibility. Aliases are encoded
// as standard UTF-8 (Java's modified UTF-8 differs only for NUL and
// supplementary characters, which never appear in root aliases).
package jks

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"io"
	"time"
	"unicode/utf16"

	"repro/internal/store"
)

const (
	magic       = 0xFEEDFEED
	version     = 2
	tagTrusted  = 2
	tagKeyEntry = 1
	certType    = "X.509"
	// whitener is the fixed string Sun's implementation mixes into the
	// integrity digest.
	whitener = "Mighty Aphrodite"
)

// Entry is one trusted-certificate keystore entry.
type Entry struct {
	Alias   string
	Created time.Time
	DER     []byte
}

// Keystore is a parsed JKS file.
type Keystore struct {
	Entries []Entry
}

// passwordBytes converts a store password to the UTF-16BE byte string Java
// feeds the digest.
func passwordBytes(password string) []byte {
	units := utf16.Encode([]rune(password))
	out := make([]byte, 0, len(units)*2)
	for _, u := range units {
		out = append(out, byte(u>>8), byte(u))
	}
	return out
}

func computeDigest(password string, body []byte) [sha1.Size]byte {
	h := sha1.New()
	h.Write(passwordBytes(password))
	h.Write([]byte(whitener))
	h.Write(body)
	var sum [sha1.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// Marshal serializes the keystore with the given integrity password.
func Marshal(ks *Keystore, password string) ([]byte, error) {
	var body bytes.Buffer
	w := func(v any) {
		_ = binary.Write(&body, binary.BigEndian, v)
	}
	w(uint32(magic))
	w(uint32(version))
	w(uint32(len(ks.Entries)))
	for _, e := range ks.Entries {
		if len(e.Alias) > 0xFFFF {
			return nil, fmt.Errorf("jks: alias too long (%d bytes)", len(e.Alias))
		}
		w(uint32(tagTrusted))
		w(uint16(len(e.Alias)))
		body.WriteString(e.Alias)
		w(uint64(e.Created.UnixMilli()))
		w(uint16(len(certType)))
		body.WriteString(certType)
		w(uint32(len(e.DER)))
		body.Write(e.DER)
	}
	digest := computeDigest(password, body.Bytes())
	body.Write(digest[:])
	return body.Bytes(), nil
}

// Parse deserializes a JKS file, verifying the integrity digest against the
// password.
func Parse(data []byte, password string) (*Keystore, error) {
	if len(data) < 12+sha1.Size {
		return nil, fmt.Errorf("jks: file too short (%d bytes)", len(data))
	}
	body, trailer := data[:len(data)-sha1.Size], data[len(data)-sha1.Size:]
	want := computeDigest(password, body)
	if !bytes.Equal(want[:], trailer) {
		return nil, fmt.Errorf("jks: integrity digest mismatch (wrong password or corrupted file)")
	}

	r := bytes.NewReader(body)
	var hdr struct {
		Magic, Version, Count uint32
	}
	if err := binary.Read(r, binary.BigEndian, &hdr); err != nil {
		return nil, fmt.Errorf("jks: header: %w", err)
	}
	if hdr.Magic != magic {
		return nil, fmt.Errorf("jks: bad magic 0x%08X", hdr.Magic)
	}
	if hdr.Version != version {
		return nil, fmt.Errorf("jks: unsupported version %d", hdr.Version)
	}

	ks := &Keystore{}
	for i := uint32(0); i < hdr.Count; i++ {
		var tag uint32
		if err := binary.Read(r, binary.BigEndian, &tag); err != nil {
			return nil, fmt.Errorf("jks: entry %d tag: %w", i, err)
		}
		switch tag {
		case tagTrusted:
		case tagKeyEntry:
			return nil, fmt.Errorf("jks: entry %d is a private-key entry; root stores must contain only trusted certificates", i)
		default:
			return nil, fmt.Errorf("jks: entry %d has unknown tag %d", i, tag)
		}
		alias, err := readUTF(r)
		if err != nil {
			return nil, fmt.Errorf("jks: entry %d alias: %w", i, err)
		}
		var millis uint64
		if err := binary.Read(r, binary.BigEndian, &millis); err != nil {
			return nil, fmt.Errorf("jks: entry %d date: %w", i, err)
		}
		ct, err := readUTF(r)
		if err != nil {
			return nil, fmt.Errorf("jks: entry %d cert type: %w", i, err)
		}
		if ct != certType {
			return nil, fmt.Errorf("jks: entry %d has certificate type %q, want %q", i, ct, certType)
		}
		var clen uint32
		if err := binary.Read(r, binary.BigEndian, &clen); err != nil {
			return nil, fmt.Errorf("jks: entry %d cert length: %w", i, err)
		}
		if int(clen) > r.Len() {
			return nil, fmt.Errorf("jks: entry %d cert length %d exceeds remaining %d", i, clen, r.Len())
		}
		der := make([]byte, clen)
		if _, err := io.ReadFull(r, der); err != nil {
			return nil, fmt.Errorf("jks: entry %d cert bytes: %w", i, err)
		}
		ks.Entries = append(ks.Entries, Entry{
			Alias:   alias,
			Created: time.UnixMilli(int64(millis)).UTC(),
			DER:     der,
		})
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("jks: %d trailing bytes after last entry", r.Len())
	}
	return ks, nil
}

func readUTF(r *bytes.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// FromEntries builds a keystore from trust entries that are trusted for any
// of the filter purposes (or all entries when filter is empty). JKS carries
// no trust metadata, so levels and distrust dates are dropped.
func FromEntries(entries []*store.TrustEntry, created time.Time, filter ...store.Purpose) *Keystore {
	ks := &Keystore{}
	for _, e := range entries {
		include := len(filter) == 0
		for _, p := range filter {
			if e.TrustedFor(p) {
				include = true
				break
			}
		}
		if !include {
			continue
		}
		ks.Entries = append(ks.Entries, Entry{
			Alias:   aliasFor(e),
			Created: created,
			DER:     append([]byte(nil), e.DER...),
		})
	}
	return ks
}

func aliasFor(e *store.TrustEntry) string {
	if e.Label != "" {
		return e.Label
	}
	return e.Fingerprint.Short()
}

// ToEntries converts keystore entries to trust entries marked Trusted for
// the given purposes (Java's cacerts conflates server auth, email and code
// signing — the multi-purpose problem §7 discusses).
func (ks *Keystore) ToEntries(purposes ...store.Purpose) ([]*store.TrustEntry, error) {
	var out []*store.TrustEntry
	for i, je := range ks.Entries {
		e, err := store.NewTrustedEntry(je.DER, purposes...)
		if err != nil {
			return nil, fmt.Errorf("jks: entry %d (%s): %w", i, je.Alias, err)
		}
		e.Label = je.Alias
		out = append(out, e)
	}
	return out, nil
}
