package jks

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/testcerts"
)

const testPassword = "changeit" // Java's infamous default

func sampleKeystore(t testing.TB) *Keystore {
	t.Helper()
	entries := testcerts.Entries(3, store.ServerAuth, store.EmailProtection, store.CodeSigning)
	return FromEntries(entries, time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC))
}

func TestRoundTrip(t *testing.T) {
	ks := sampleKeystore(t)
	data, err := Marshal(ks, testPassword)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, err := Parse(data, testPassword)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(out.Entries) != len(ks.Entries) {
		t.Fatalf("entries = %d, want %d", len(out.Entries), len(ks.Entries))
	}
	for i := range ks.Entries {
		if out.Entries[i].Alias != ks.Entries[i].Alias {
			t.Errorf("entry %d alias %q != %q", i, out.Entries[i].Alias, ks.Entries[i].Alias)
		}
		if !bytes.Equal(out.Entries[i].DER, ks.Entries[i].DER) {
			t.Errorf("entry %d DER mismatch", i)
		}
		if !out.Entries[i].Created.Equal(ks.Entries[i].Created) {
			t.Errorf("entry %d created %v != %v", i, out.Entries[i].Created, ks.Entries[i].Created)
		}
	}
}

func TestWrongPassword(t *testing.T) {
	data, err := Marshal(sampleKeystore(t), testPassword)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(data, "wrong"); err == nil {
		t.Error("wrong password should fail digest verification")
	}
}

func TestCorruptedByte(t *testing.T) {
	data, err := Marshal(sampleKeystore(t), testPassword)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if _, err := Parse(data, testPassword); err == nil {
		t.Error("bit flip should fail digest verification")
	}
}

func TestTruncated(t *testing.T) {
	data, err := Marshal(sampleKeystore(t), testPassword)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 5, 11, len(data) - 1} {
		if _, err := Parse(data[:n], testPassword); err == nil {
			t.Errorf("truncation to %d bytes should fail", n)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	ks := &Keystore{}
	data, err := Marshal(ks, testPassword)
	if err != nil {
		t.Fatal(err)
	}
	badMagic := append([]byte(nil), data...)
	binary.BigEndian.PutUint32(badMagic[:4], 0xDEADBEEF)
	fixDigest(badMagic, testPassword)
	if _, err := Parse(badMagic, testPassword); err == nil {
		t.Error("bad magic should fail")
	}
	badVersion := append([]byte(nil), data...)
	binary.BigEndian.PutUint32(badVersion[4:8], 1)
	fixDigest(badVersion, testPassword)
	if _, err := Parse(badVersion, testPassword); err == nil {
		t.Error("unsupported version should fail")
	}
}

func TestPrivateKeyEntryRejected(t *testing.T) {
	// Hand-assemble a keystore with a tag-1 entry.
	var body bytes.Buffer
	w := func(v any) { _ = binary.Write(&body, binary.BigEndian, v) }
	w(uint32(magic))
	w(uint32(version))
	w(uint32(1))
	w(uint32(tagKeyEntry))
	digest := computeDigest(testPassword, body.Bytes())
	body.Write(digest[:])
	if _, err := Parse(body.Bytes(), testPassword); err == nil {
		t.Error("private-key entry should be rejected")
	}
}

func TestCertLengthOverrun(t *testing.T) {
	var body bytes.Buffer
	w := func(v any) { _ = binary.Write(&body, binary.BigEndian, v) }
	w(uint32(magic))
	w(uint32(version))
	w(uint32(1))
	w(uint32(tagTrusted))
	w(uint16(1))
	body.WriteString("a")
	w(uint64(0))
	w(uint16(len(certType)))
	body.WriteString(certType)
	w(uint32(1 << 30)) // absurd length
	digest := computeDigest(testPassword, body.Bytes())
	body.Write(digest[:])
	if _, err := Parse(body.Bytes(), testPassword); err == nil {
		t.Error("oversized cert length should be rejected")
	}
}

func TestFromEntriesFilter(t *testing.T) {
	tls := testcerts.Entries(2, store.ServerAuth)
	email := testcerts.Entries(3, store.EmailProtection)[2]
	all := append(tls, email)
	ks := FromEntries(all, time.Now(), store.ServerAuth)
	if len(ks.Entries) != 2 {
		t.Errorf("filtered keystore has %d entries, want 2", len(ks.Entries))
	}
	ksAll := FromEntries(all, time.Now())
	if len(ksAll.Entries) != 3 {
		t.Errorf("unfiltered keystore has %d entries, want 3", len(ksAll.Entries))
	}
}

func TestToEntriesMultiPurpose(t *testing.T) {
	ks := sampleKeystore(t)
	entries, err := ks.ToEntries(store.ServerAuth, store.EmailProtection, store.CodeSigning)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		for _, p := range []store.Purpose{store.ServerAuth, store.EmailProtection, store.CodeSigning} {
			if !e.TrustedFor(p) {
				t.Errorf("entry %s lost purpose %s", e.Label, p)
			}
		}
	}
}

func TestToEntriesCorruptDER(t *testing.T) {
	ks := &Keystore{Entries: []Entry{{Alias: "bad", DER: []byte{1, 2, 3}}}}
	if _, err := ks.ToEntries(store.ServerAuth); err == nil {
		t.Error("corrupt DER should error")
	}
}

func TestPasswordBytesUTF16(t *testing.T) {
	got := passwordBytes("ab")
	want := []byte{0, 'a', 0, 'b'}
	if !bytes.Equal(got, want) {
		t.Errorf("passwordBytes = %v, want %v", got, want)
	}
	if len(passwordBytes("")) != 0 {
		t.Error("empty password should produce no bytes")
	}
}

func TestEmptyKeystoreRoundTrip(t *testing.T) {
	data, err := Marshal(&Keystore{}, testPassword)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(data, testPassword)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 0 {
		t.Errorf("entries = %d", len(out.Entries))
	}
}

// fixDigest recomputes the trailer digest after test mutations.
func fixDigest(data []byte, password string) {
	body := data[:len(data)-20]
	d := computeDigest(password, body)
	copy(data[len(data)-20:], d[:])
}

func BenchmarkMarshalParse(b *testing.B) {
	ks := sampleKeystore(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := Marshal(ks, testPassword)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Parse(data, testPassword); err != nil {
			b.Fatal(err)
		}
	}
}
