package jks

import (
	"testing"
)

// FuzzParse hardens the JKS binary reader: arbitrary bytes must never
// panic, and a valid keystore mutated anywhere must fail the integrity
// digest rather than yield entries silently.
func FuzzParse(f *testing.F) {
	valid, err := Marshal(sampleKeystore(f), testPassword)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid, testPassword)
	f.Add([]byte{}, "")
	f.Add([]byte{0xFE, 0xED, 0xFE, 0xED}, "changeit")
	f.Add(valid[:20], testPassword)

	f.Fuzz(func(t *testing.T, data []byte, password string) {
		ks, err := Parse(data, password)
		if err != nil {
			return
		}
		// A successful parse must round trip byte-for-byte.
		out, err := Marshal(ks, password)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if string(out) != string(data) {
			t.Fatal("round trip changed bytes")
		}
	})
}
