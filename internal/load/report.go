package load

// Report is the JSON artifact a run produces (BENCH_10.json in CI). The
// latency quantiles come from the same HDR log-linear buckets trustd
// exports on /metrics/prometheus — BucketBoundsSeconds restates the
// shared layout so a consumer can line client and server histograms up
// bucket-for-bucket.

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ClassReport is one workload class's results.
type ClassReport struct {
	Issued    uint64 `json:"issued"`
	Completed uint64 `json:"completed"`
	// Shed counts arrivals dropped at the in-flight cap; they were never
	// sent, so they appear in no latency bucket.
	Shed      uint64            `json:"shed"`
	Transport uint64            `json:"transport_errors"`
	Status    map[string]uint64 `json:"status,omitempty"` // "2xx", "4xx", ...

	// Latency from scheduled arrival to completion (seconds).
	P50    float64 `json:"p50_s"`
	P90    float64 `json:"p90_s"`
	P99    float64 `json:"p99_s"`
	P999   float64 `json:"p999_s"`
	MeanS  float64 `json:"mean_s"`
	Counts []int64 `json:"bucket_counts,omitempty"`
}

// Report is the whole run's outcome.
type Report struct {
	Schema string `json:"schema"` // "trustd-loadgen/1"

	TargetRPS   float64 `json:"target_rps"`
	DurationS   float64 `json:"duration_s"`
	Requested   int     `json:"requested"`
	Issued      int     `json:"issued"`
	OfferedRPS  float64 `json:"offered_rps"`   // issued / issue wall time
	AchievedRPS float64 `json:"completed_rps"` // completed / total wall time
	Seed        uint64  `json:"seed"`

	Classes map[string]*ClassReport `json:"classes"`

	// BucketBoundsSeconds is the shared HDR layout (69 finite bounds,
	// +Inf implicit) — identical to the server's le= labels.
	BucketBoundsSeconds []float64 `json:"bucket_bounds_seconds"`

	// Generations maps each observed X-Rootpack-Hash to how many
	// responses it served; two keys here means the run crossed a reload.
	Generations             map[string]uint64 `json:"generations"`
	MixedGenerationVerdicts uint64            `json:"mixed_generation_verdicts"`

	WatchStreams        int    `json:"watch_streams"`
	WatchEventsReceived uint64 `json:"watch_events_received"`
	Watch5xx            uint64 `json:"watch_5xx"`
	WatchStreamErrors   uint64 `json:"watch_stream_errors"`
}

var statusClassNames = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

func (r *Runner) buildReport(requested, issued int, interval time.Duration, issueWall, totalWall time.Duration) *Report {
	rep := &Report{
		Schema:              "trustd-loadgen/1",
		TargetRPS:           r.opts.RPS,
		DurationS:           r.opts.Duration.Seconds(),
		Requested:           requested,
		Issued:              issued,
		Seed:                r.opts.Seed,
		Classes:             map[string]*ClassReport{},
		BucketBoundsSeconds: obs.HDRBounds(),
		Generations:         map[string]uint64{},
		MixedGenerationVerdicts: r.mixed.Load(),
		WatchStreams:            r.opts.WatchStreams,
		WatchEventsReceived:     r.watchEvents.Load(),
		Watch5xx:                r.watch5xx.Load(),
		WatchStreamErrors:       r.watchErrs.Load(),
	}
	if s := issueWall.Seconds(); s > 0 {
		rep.OfferedRPS = float64(issued) / s
	}
	var completed uint64
	for _, c := range classOrder {
		cs := r.classes[c]
		if cs.issued.Load() == 0 {
			continue
		}
		snap := cs.hist.Snapshot()
		cr := &ClassReport{
			Issued:    cs.issued.Load(),
			Completed: cs.completed.Load(),
			Shed:      cs.shed.Load(),
			Transport: cs.transport.Load(),
			Status:    map[string]uint64{},
			P50:       snap.Quantile(0.50),
			P90:       snap.Quantile(0.90),
			P99:       snap.Quantile(0.99),
			P999:      snap.Quantile(0.999),
			MeanS:     snap.Mean(),
		}
		for i, name := range statusClassNames {
			if v := cs.status[i].Load(); v > 0 {
				cr.Status[name] = v
			}
		}
		cr.Counts = make([]int64, len(snap.Counts))
		for i, v := range snap.Counts {
			cr.Counts[i] = int64(v)
		}
		completed += cr.Completed
		rep.Classes[string(c)] = cr
	}
	if s := totalWall.Seconds(); s > 0 {
		rep.AchievedRPS = float64(completed) / s
	}
	r.generations.Range(func(k, v any) bool {
		rep.Generations[k.(string)] = v.(*atomic.Uint64).Load()
		return true
	})
	return rep
}

// Total5xx sums server-error responses across classes plus watch streams.
func (rep *Report) Total5xx() uint64 {
	var n uint64
	for _, cr := range rep.Classes {
		n += cr.Status["5xx"]
	}
	return n + rep.Watch5xx
}

// TotalTransportErrors sums client/transport failures across classes.
func (rep *Report) TotalTransportErrors() uint64 {
	var n uint64
	for _, cr := range rep.Classes {
		n += cr.Transport
	}
	return n
}

// TotalShed sums arrivals dropped at the in-flight cap.
func (rep *Report) TotalShed() uint64 {
	var n uint64
	for _, cr := range rep.Classes {
		n += cr.Shed
	}
	return n
}

// ClassNames lists the classes present in deterministic order.
func (rep *Report) ClassNames() []string {
	names := make([]string, 0, len(rep.Classes))
	for name := range rep.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
