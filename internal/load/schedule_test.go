package load

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/useragent"
)

// TestOpenLoopScheduleExact fires with no work attached: the loop must
// track the schedule, not run hot.
func TestOpenLoopScheduleExact(t *testing.T) {
	const n = 200
	interval := time.Millisecond
	start := time.Now()
	var fired int
	issued := openLoop(context.Background(), start, interval, n, func(i int, scheduled time.Time) {
		fired++
		if got := scheduled.Sub(start); got != time.Duration(i)*interval {
			t.Fatalf("event %d scheduled at %v, want %v", i, got, time.Duration(i)*interval)
		}
	})
	elapsed := time.Since(start)
	if issued != n || fired != n {
		t.Fatalf("issued %d fired %d, want %d", issued, fired, n)
	}
	want := time.Duration(n-1) * interval
	if elapsed < want {
		t.Errorf("loop finished in %v, before the last event's schedule %v", elapsed, want)
	}
}

// TestOpenLoopCancel stops issuing promptly on context cancellation.
func TestOpenLoopCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Int64
	done := make(chan int)
	go func() {
		done <- openLoop(ctx, time.Now(), 10*time.Millisecond, 1000, func(int, time.Time) { fired.Add(1) })
	}()
	time.Sleep(35 * time.Millisecond)
	cancel()
	issued := <-done
	if issued >= 1000 {
		t.Fatalf("issued %d, want an early stop", issued)
	}
	if int64(issued) != fired.Load() {
		t.Fatalf("issued %d but fired %d", issued, fired.Load())
	}
}

// TestOpenLoopImmuneToStalls is the coordinated-omission property: the
// offered rate must hold within 2% even when a slice of the "requests"
// stall for a long time relative to the interval. A closed loop would
// stretch the run by (stalls × stall time); the open loop must not.
func TestOpenLoopImmuneToStalls(t *testing.T) {
	const (
		n        = 1000
		interval = time.Millisecond // 1000 req/s offered
		stall    = 200 * time.Millisecond
	)
	var wg sync.WaitGroup
	start := time.Now()
	issued := openLoop(context.Background(), start, interval, n, func(i int, _ time.Time) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%10 == 0 { // every 10th request stalls 200× the interval
				time.Sleep(stall)
			}
		}()
	})
	issueWall := time.Since(start)
	wg.Wait()

	if issued != n {
		t.Fatalf("issued %d, want %d", issued, n)
	}
	offered := float64(n) / issueWall.Seconds()
	target := float64(time.Second / interval)
	if err := math.Abs(offered-target) / target; err > 0.02 {
		t.Errorf("offered rate %.1f req/s, want %.0f ±2%% (err %.2f%%) — issuance was blocked by stalled work", offered, target, err*100)
	}
}

// TestRunnerOfferedRPSUnderServerStalls drives the full Runner against a
// server that stalls 10%% of requests for 200ms and asserts the achieved
// offered rate stays within 2%% of the target — the end-to-end version of
// the open-loop property, through the semaphore and real HTTP.
func TestRunnerOfferedRPSUnderServerStalls(t *testing.T) {
	var hits atomic.Int64
	web := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%10 == 0 {
			time.Sleep(200 * time.Millisecond)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer web.Close()

	const rps = 500.0
	r, err := NewRunner(Options{
		BaseURL:  web.URL,
		RPS:      rps,
		Duration: 2 * time.Second,
		Mix:      Mix{ClassRead: 1},
		Seed:     1,
	}, Target{ReadPaths: []string{"/"}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Issued != rep.Requested {
		t.Fatalf("issued %d of %d", rep.Issued, rep.Requested)
	}
	if relErr := math.Abs(rep.OfferedRPS-rps) / rps; relErr > 0.02 {
		t.Errorf("offered RPS %.1f, want %.0f ±2%% (err %.2f%%)", rep.OfferedRPS, rps, relErr*100)
	}
	cr := rep.Classes[string(ClassRead)]
	if cr == nil || cr.Completed != uint64(rep.Requested) {
		t.Fatalf("read class incomplete: %+v", cr)
	}
	if cr.Shed != 0 {
		t.Errorf("shed %d requests with a roomy in-flight cap", cr.Shed)
	}
	// The stalled decile must show up in the tail: p99 ≥ stall, p50 ≪ stall.
	if cr.P99 < 0.150 {
		t.Errorf("p99 = %.3fs, want ≥ 0.15s (stalls must land in the tail)", cr.P99)
	}
	if cr.P50 > 0.100 {
		t.Errorf("p50 = %.3fs, want well under the stall", cr.P50)
	}
}

// TestUAMixDeterministicSeed pins the verify workload's user-agent draw:
// the same seed must reproduce the identical provider mix, a different
// seed must not be forced to, and the mix must reflect the paper pool's
// marginals (every traceable provider plus untraceable agents present).
func TestUAMixDeterministicSeed(t *testing.T) {
	pool := useragent.Generate(useragent.PaperSample())
	const n = 2000

	a := UAMixProviders(pool, 42, n)
	b := UAMixProviders(pool, 42, n)
	if len(a) != len(b) {
		t.Fatalf("same seed, different support: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("same seed, different mix at %q: %d vs %d", k, v, b[k])
		}
	}

	var total int
	for _, v := range a {
		total += v
	}
	if total != n {
		t.Fatalf("mix sums to %d, want %d", total, n)
	}
	for _, provider := range []string{"NSS", "Microsoft", "Apple", "Android", "NodeJS", ""} {
		if a[provider] == 0 {
			t.Errorf("provider %q absent from a %d-draw mix over the paper pool", provider, n)
		}
	}

	// The draw is uniform over the weighted pool, so each provider's share
	// must track its share of pool entries (±5 points at n=2000).
	poolShare := map[string]float64{}
	for _, ua := range pool {
		m := useragent.MapToProvider(useragent.Parse(ua))
		if m.Traceable {
			poolShare[string(m.Provider)]++
		} else {
			poolShare[""]++
		}
	}
	for k := range poolShare {
		poolShare[k] /= float64(len(pool))
		got := float64(a[k]) / n
		if math.Abs(got-poolShare[k]) > 0.05 {
			t.Errorf("provider %q drawn share %.3f, pool share %.3f", k, got, poolShare[k])
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("read=45,verify=35,batch=5,watch=5,simulate=10")
	if err != nil {
		t.Fatal(err)
	}
	if mix[ClassRead] != 45 || mix[ClassSimulate] != 10 {
		t.Fatalf("parsed mix %v", mix)
	}
	for _, bad := range []string{"", "bogus=1", "read", "read=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}
