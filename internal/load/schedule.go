package load

// Open-loop request scheduling — the half of a load generator that
// decides *when* requests happen. The arrival times are fixed up front
// (start + i/RPS) and issuance NEVER waits for completions: a stalled
// server changes nothing about when the next request is fired, only how
// long the outstanding ones take. That is the property that avoids
// coordinated omission — a closed loop (issue → wait → issue) silently
// stops sampling exactly when the server is at its worst, and its
// latency histogram reports the stall as one slow request instead of
// hundreds.
//
// Latency is therefore measured from the SCHEDULED arrival time, not
// from when the goroutine got around to writing bytes: if issuance
// itself falls behind (GC pause, CPU exhaustion on the generator), the
// delay is charged to the requests, same as HdrHistogram-based
// generators like wrk2 do.

import (
	"context"
	"time"
)

// openLoop fires n events at a fixed interval from start: event i is due
// at start + i·interval. fire must not block — it is handed the event
// index and its scheduled time and is expected to spawn any real work.
// When the loop falls behind (coarse sleeper, CPU starvation) it issues
// the backlog immediately in a catch-up burst rather than stretching the
// schedule. Returns how many events were issued (= n unless ctx ended
// the run early).
func openLoop(ctx context.Context, start time.Time, interval time.Duration, n int, fire func(i int, scheduled time.Time)) int {
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for i := 0; i < n; i++ {
		scheduled := start.Add(time.Duration(i) * interval)
		if wait := time.Until(scheduled); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				return i
			}
		} else {
			// Behind schedule: still check for cancellation, then fire
			// immediately — the catch-up burst keeps offered load honest.
			select {
			case <-ctx.Done():
				return i
			default:
			}
		}
		fire(i, scheduled)
	}
	return n
}
