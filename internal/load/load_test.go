package load_test

// End-to-end: the full mixed workload against a real in-process trustd,
// with a generation swap and a live SSE event fired mid-run. This is the
// same scenario cmd/loadgen -smoke runs, held to the same assertions:
// zero 5xx, zero transport errors, zero mixed-generation verdicts, both
// generations observed, every class exercised.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/service"
	"repro/internal/tracker"
)

var _ service.EventFeed = (*load.StubFeed)(nil)

func TestMixedWorkloadReloadUnderLoad(t *testing.T) {
	f, err := load.NewFixture()
	if err != nil {
		t.Fatal(err)
	}
	srv := service.New(f.GenA, service.Config{})
	feed := load.NewStubFeed()
	srv.AttachEvents(feed)
	web := httptest.NewServer(srv.Handler())
	defer web.Close()

	opts := load.Options{
		BaseURL:      web.URL,
		RPS:          300,
		Duration:     2 * time.Second,
		Seed:         7,
		WatchStreams: 2,
		MidRun: func() {
			srv.Swap(f.GenB)
			feed.Emit(tracker.Event{Type: tracker.RootAdded, Provider: "Debian", Version: "v2", Date: time.Now()})
		},
	}
	r, err := load.NewRunner(opts, f.Target)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if got := rep.Total5xx(); got != 0 {
		t.Errorf("5xx responses = %d, want 0 (classes: %+v)", got, rep.Classes)
	}
	if got := rep.TotalTransportErrors(); got != 0 {
		t.Errorf("transport errors = %d, want 0", got)
	}
	if rep.MixedGenerationVerdicts != 0 {
		t.Errorf("mixed-generation verdicts = %d, want 0", rep.MixedGenerationVerdicts)
	}
	if rep.TotalShed() != 0 {
		t.Errorf("shed = %d, want 0 at this load", rep.TotalShed())
	}

	// The swap happened mid-run, so both generations must have answered.
	if rep.Generations[f.HashA] == 0 || rep.Generations[f.HashB] == 0 {
		t.Errorf("generations seen = %v, want traffic from both %.8s and %.8s", rep.Generations, f.HashA, f.HashB)
	}

	for _, class := range []load.Class{load.ClassRead, load.ClassVerify, load.ClassBatch, load.ClassWatch, load.ClassSimulate} {
		cr := rep.Classes[string(class)]
		if cr == nil || cr.Completed == 0 {
			t.Errorf("class %s never completed a request: %+v", class, cr)
			continue
		}
		if cr.Status["2xx"] == 0 {
			t.Errorf("class %s has no 2xx responses: %v", class, cr.Status)
		}
		if cr.P50 <= 0 || cr.P999 < cr.P50 {
			t.Errorf("class %s quantiles broken: p50=%v p999=%v", class, cr.P50, cr.P999)
		}
	}

	// Both long-lived subscribers (which replay on reconnect) must have
	// seen the live event.
	if rep.WatchEventsReceived < 2 {
		t.Errorf("watch streams received %d events, want ≥ 2", rep.WatchEventsReceived)
	}
	if rep.Watch5xx != 0 {
		t.Errorf("watch streams saw %d 5xx", rep.Watch5xx)
	}
	if rep.Schema != "trustd-loadgen/1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.BucketBoundsSeconds) != 69 {
		t.Errorf("bucket bounds = %d, want 69 shared HDR bounds", len(rep.BucketBoundsSeconds))
	}
}
