package load

// Hermetic fixture for loadgen's smoke mode and the package's own e2e
// tests: two serving generations that disagree about exactly one store.
//
// Every UA-traceable provider (NSS, Microsoft, Apple, Android, NodeJS)
// trusts root 0 in BOTH generations, so weighted-UA verify traffic
// succeeds no matter which generation answers. The Debian derivative is
// the generation marker: generation A omits root 0 from Debian (the
// chain fails there), generation B includes it (the chain verifies).
// CheckVerify cross-references each response's X-Rootpack-Hash against
// the Debian outcome — a response claiming generation B but carrying
// generation A's verdict (or vice versa) is a torn read across the
// atomic swap, exactly what the rolling-reload scenario must prove
// cannot happen.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/certgen"
	"repro/internal/certutil"
	"repro/internal/store"
	"repro/internal/testcerts"
	"repro/internal/tracker"
)

// Fixture is a ready-to-serve pair of generations plus the Target that
// drives load against them.
type Fixture struct {
	GenA  *store.Database // Debian does NOT trust root 0
	GenB  *store.Database // Debian trusts root 0
	HashA string          // bare-hex rootpack hash of GenA (X-Rootpack-Hash form)
	HashB string
	// ChainPEM is a leaf issued by root 0 — verifies against every
	// traceable provider in both generations.
	ChainPEM string
	Target   Target
}

// fixtureProviders maps provider name → trusted root indices for
// generation A. Root 0 anchors the test chain.
var fixtureProviders = map[string][]int{
	"NSS":       {0, 1, 2},
	"Microsoft": {0, 1},
	"Apple":     {0, 1},
	"Android":   {0, 2},
	"NodeJS":    {0, 2},
	"Debian":    {1, 2}, // generation B adds 0
}

// NewFixture builds both generations, the chain, and a Target wired
// with a mixed-generation checker.
func NewFixture() (*Fixture, error) {
	roots := testcerts.Roots(3)
	snapDate := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)

	build := func(debianExtra bool) (*store.Database, error) {
		db := store.NewDatabase()
		for provider, idx := range fixtureProviders {
			snap := store.NewSnapshot(provider, snapDate.Format("2006-01-02"), snapDate)
			trusted := idx
			if provider == "Debian" && debianExtra {
				trusted = append([]int{0}, idx...)
			}
			for _, i := range trusted {
				e, err := store.NewTrustedEntry(roots[i].DER, store.ServerAuth)
				if err != nil {
					return nil, err
				}
				snap.Add(e)
			}
			if err := db.AddSnapshot(snap); err != nil {
				return nil, err
			}
		}
		return db, nil
	}
	genA, err := build(false)
	if err != nil {
		return nil, fmt.Errorf("load fixture generation A: %w", err)
	}
	genB, err := build(true)
	if err != nil {
		return nil, fmt.Errorf("load fixture generation B: %w", err)
	}
	hashA, err := archive.HashDatabase(genA)
	if err != nil {
		return nil, err
	}
	hashB, err := archive.HashDatabase(genB)
	if err != nil {
		return nil, err
	}

	leafDER, _, err := roots[0].IssueLeaf(testcerts.Pool(), certgen.LeafSpec{
		CommonName: "loadgen.example.test",
		DNSNames:   []string{"loadgen.example.test"},
		NotBefore:  time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		return nil, fmt.Errorf("issue loadgen leaf: %w", err)
	}
	var buf bytes.Buffer
	if err := pem.Encode(&buf, &pem.Block{Type: "CERTIFICATE", Bytes: leafDER}); err != nil {
		return nil, err
	}

	f := &Fixture{
		GenA:     genA,
		GenB:     genB,
		HashA:    hex.EncodeToString(hashA[:]),
		HashB:    hex.EncodeToString(hashB[:]),
		ChainPEM: buf.String(),
	}

	simBody, err := json.Marshal(map[string]any{
		"kind":         "removal",
		"fingerprints": []string{certutil.SHA256Fingerprint(roots[1].DER).String()},
	})
	if err != nil {
		return nil, err
	}
	f.Target = Target{
		ReadPaths: []string{
			"/v1/providers",
			"/v1/providers/NSS/snapshots",
			"/v1/roots/" + certutil.SHA256Fingerprint(roots[0].DER).String(),
			"/v1/diff?a=NSS&b=Debian",
		},
		ChainPEM:     f.ChainPEM,
		Stores:       []string{"NSS", "Debian"},
		SimulateBody: simBody,
		CheckVerify:  f.checkVerify,
	}
	return f, nil
}

// checkVerify asserts every verdict set is internally consistent with
// the generation that produced it: Debian's outcome flips exactly at
// the A→B swap, every other provider verifies in both.
func (f *Fixture) checkVerify(generation string, verdicts []Verdict) error {
	var wantDebianOK bool
	switch generation {
	case f.HashA:
		wantDebianOK = false
	case f.HashB:
		wantDebianOK = true
	default:
		return fmt.Errorf("unknown generation %q", generation)
	}
	for _, v := range verdicts {
		name := v.Provider
		if name == "" {
			name = v.Store
		}
		if name == "Debian" {
			if ok := v.Outcome == "ok"; ok != wantDebianOK {
				return fmt.Errorf("generation %.8s served Debian outcome %q, want ok=%v — mixed-generation verdict", generation, v.Outcome, wantDebianOK)
			}
			continue
		}
		if v.Outcome != "ok" {
			return fmt.Errorf("provider %s outcome %q, want ok", name, v.Outcome)
		}
	}
	return nil
}

// StubFeed is a minimal in-memory service.EventFeed so the smoke run can
// exercise live SSE delivery without the tracker pipeline.
type StubFeed struct {
	mu     sync.Mutex
	events []tracker.Event
	subs   map[int]chan tracker.Event
	nextID int
}

// NewStubFeed returns an empty feed.
func NewStubFeed() *StubFeed {
	return &StubFeed{subs: map[int]chan tracker.Event{}}
}

// Emit appends an event (assigning the next sequence number) and fans it
// out to every live subscriber, dropping to slow ones like the tracker.
func (f *StubFeed) Emit(ev tracker.Event) {
	f.mu.Lock()
	ev.Seq = uint64(len(f.events) + 1)
	if ev.ObservedAt.IsZero() {
		ev.ObservedAt = time.Now()
	}
	f.events = append(f.events, ev)
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	f.mu.Unlock()
}

// Replay implements service.EventFeed.
func (f *StubFeed) Replay(filter tracker.Filter) []tracker.Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []tracker.Event
	for _, ev := range f.events {
		if filter.Match(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Subscribe implements service.EventFeed.
func (f *StubFeed) Subscribe(buffer int) (<-chan tracker.Event, func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := f.nextID
	f.nextID++
	ch := make(chan tracker.Event, buffer)
	f.subs[id] = ch
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, id)
			close(ch)
			f.mu.Unlock()
		})
	}
}

// LastSeq implements service.EventFeed.
func (f *StubFeed) LastSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return uint64(len(f.events))
}
