package load

// Per-class HTTP drivers. Each returns the HTTP status (0 on transport
// failure) and the transport error; latency accounting happens in the
// caller against the SCHEDULED time, so drivers just do the request.
//
// Every driver records the response's X-Rootpack-Hash — the serving
// generation's content hash — so the report shows exactly which
// generations served traffic. Verify-shaped drivers additionally hand
// their verdicts plus that generation to Target.CheckVerify: a verdict
// set inconsistent with the generation that claims to have produced it
// is a mixed-generation verdict, the failure the rolling-reload
// scenario exists to catch.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

const rootpackHashHeader = "X-Rootpack-Hash"

// drain discards the remaining body so the connection can be reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

func (r *Runner) doRead(ctx context.Context) (int, error) {
	paths := r.target.ReadPaths
	if len(paths) == 0 {
		paths = []string{"/v1/providers"}
	}
	path := paths[int(r.readIdx.Add(1)-1)%len(paths)]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	r.recordGeneration(resp.Header.Get(rootpackHashHeader))
	drain(resp)
	return resp.StatusCode, nil
}

// verifyWire is the subset of the /v1/verify response the driver needs.
type verifyWire struct {
	Verdicts []Verdict `json:"verdicts"`
}

func (r *Runner) doVerify(ctx context.Context) (int, error) {
	body, err := json.Marshal(map[string]any{
		"chain_pem":  r.target.ChainPEM,
		"user_agent": r.ua.pick(),
		"stores":     r.target.Stores,
	})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.opts.BaseURL+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	gen := resp.Header.Get(rootpackHashHeader)
	r.recordGeneration(gen)
	if resp.StatusCode != http.StatusOK {
		drain(resp)
		return resp.StatusCode, nil
	}
	var wire verifyWire
	decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wire)
	drain(resp)
	if decErr != nil {
		return 0, fmt.Errorf("verify response: %w", decErr)
	}
	r.checkVerdicts(gen, wire.Verdicts)
	return resp.StatusCode, nil
}

// batchLine is one NDJSON response line from /v1/verify/batch.
type batchLine struct {
	Seq      int       `json:"seq"`
	Error    string    `json:"error"`
	Verdicts []Verdict `json:"verdicts"`
}

const batchChains = 3

func (r *Runner) doBatch(ctx context.Context) (int, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < batchChains; i++ {
		if err := enc.Encode(map[string]any{
			"chain_pem":  r.target.ChainPEM,
			"user_agent": r.ua.pick(),
			"stores":     r.target.Stores,
		}); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.opts.BaseURL+"/v1/verify/batch", &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	gen := resp.Header.Get(rootpackHashHeader)
	r.recordGeneration(gen)
	if resp.StatusCode != http.StatusOK {
		drain(resp)
		return resp.StatusCode, nil
	}
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<20))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var bl batchLine
		if err := json.Unmarshal([]byte(line), &bl); err != nil {
			drain(resp)
			return 0, fmt.Errorf("batch line: %w", err)
		}
		if bl.Error == "" {
			r.checkVerdicts(gen, bl.Verdicts)
		}
	}
	scanErr := sc.Err()
	drain(resp)
	if scanErr != nil {
		return 0, scanErr
	}
	return resp.StatusCode, nil
}

// doWatchConnect measures SSE time-to-first-byte: the server must flush
// headers immediately on connect, so client.Do returning IS the TTFB.
// The stream is torn down right away — long-lived subscribers are the
// separate WatchStreams fleet.
func (r *Runner) doWatchConnect(ctx context.Context) (int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.BaseURL+"/v1/events/watch", nil)
	if err != nil {
		return 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	r.recordGeneration(resp.Header.Get(rootpackHashHeader))
	// Cancel before draining: the stream never ends on its own.
	cancel()
	resp.Body.Close()
	return resp.StatusCode, nil
}

func (r *Runner) doSimulate(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.opts.BaseURL+"/v1/simulate", bytes.NewReader(r.target.SimulateBody))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, err
	}
	r.recordGeneration(resp.Header.Get(rootpackHashHeader))
	drain(resp)
	return resp.StatusCode, nil
}

// checkVerdicts applies Target.CheckVerify and counts inconsistencies.
func (r *Runner) checkVerdicts(generation string, verdicts []Verdict) {
	if r.target.CheckVerify == nil {
		return
	}
	if err := r.target.CheckVerify(generation, verdicts); err != nil {
		r.mixed.Add(1)
	}
}

// runWatchStream is one long-lived SSE subscriber: connect, count
// events, reconnect (with a short pause, so a refusing server isn't
// hammered) until ctx ends.
func (r *Runner) runWatchStream(ctx context.Context) {
	for ctx.Err() == nil {
		if err := r.watchOnce(ctx); err != nil && ctx.Err() == nil {
			r.watchErrs.Add(1)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}

func (r *Runner) watchOnce(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.opts.BaseURL+"/v1/events/watch", nil)
	if err != nil {
		return err
	}
	// Long-lived stream: bypass the pooled client's overall timeout.
	client := &http.Client{Transport: r.client.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		r.watch5xx.Add(1)
		return fmt.Errorf("watch stream status %d", resp.StatusCode)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch stream status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: ") {
			r.watchEvents.Add(1)
		}
	}
	return sc.Err()
}
