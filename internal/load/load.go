package load

// Package load is trustd's load harness: an open-loop scheduler (see
// schedule.go) driving a mixed workload — reads, single verifies, batch
// verifies, SSE watch subscribers, what-if simulations — against a
// trustd base URL, with client-side latency captured in the SAME HDR
// log-linear buckets the server exposes on /metrics/prometheus
// (obs.HDRBounds), so client-observed and server-observed latency diff
// per bucket instead of being approximated across layouts.
//
// Verify traffic is keyed by the weighted synthetic user-agent
// population from internal/useragent (the paper's Table 1 marginals), so
// the UA-routing and cache paths see realistic skew rather than uniform
// keys. Every response's X-Rootpack-Hash is recorded, and verify
// verdicts are checked against the generation that produced them — the
// rolling-reload scenario asserts zero mixed-generation verdicts across
// a mid-run hot swap.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/useragent"
)

// Class is one workload class in the mix.
type Class string

// Workload classes.
const (
	ClassRead     Class = "read"     // GET endpoints (providers, roots, diff)
	ClassVerify   Class = "verify"   // POST /v1/verify with a weighted UA
	ClassBatch    Class = "batch"    // POST /v1/verify/batch, a few NDJSON lines
	ClassWatch    Class = "watch"    // SSE /v1/events/watch connect (TTFB)
	ClassSimulate Class = "simulate" // POST /v1/simulate
)

// classOrder fixes iteration/report order.
var classOrder = []Class{ClassRead, ClassVerify, ClassBatch, ClassWatch, ClassSimulate}

// Mix maps each class to its relative weight; weights need not sum to 1.
type Mix map[Class]float64

// DefaultMix mirrors a read-heavy serving profile with verification as
// the dominant write-shaped load.
func DefaultMix() Mix {
	return Mix{ClassRead: 0.45, ClassVerify: 0.35, ClassBatch: 0.05, ClassWatch: 0.05, ClassSimulate: 0.10}
}

// ParseMix parses "read=45,verify=35,batch=5,watch=5,simulate=10".
func ParseMix(s string) (Mix, error) {
	mix := Mix{}
	for _, part := range splitComma(s) {
		eq := strings.IndexByte(part, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("mix term %q: want class=weight", part)
		}
		name := part[:eq]
		w, err := strconv.ParseFloat(part[eq+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("mix term %q: weight: %v", part, err)
		}
		c := Class(name)
		switch c {
		case ClassRead, ClassVerify, ClassBatch, ClassWatch, ClassSimulate:
		default:
			return nil, fmt.Errorf("unknown workload class %q", name)
		}
		if w < 0 {
			return nil, fmt.Errorf("negative weight for %q", name)
		}
		mix[c] = w
	}
	if len(mix) == 0 {
		return nil, errors.New("empty mix")
	}
	return mix, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// Target tells the drivers what to request. The fixture (hermetic smoke)
// and real deployments (cmd/loadgen flags) both fill this in.
type Target struct {
	// ReadPaths are GET paths for ClassRead, picked round-robin.
	ReadPaths []string
	// ChainPEM is the certificate chain for verify/batch classes.
	ChainPEM string
	// Stores are explicit snapshot refs for verify/batch, joined by the
	// UA-routed store. Must be non-empty so untraceable UAs don't 422.
	Stores []string
	// SimulateBody is the POST /v1/simulate JSON body.
	SimulateBody []byte
	// CheckVerify, when set, validates one verify/batch verdict set
	// against the generation (X-Rootpack-Hash) that served it. A non-nil
	// error counts as a mixed-generation verdict — the reload-under-load
	// failure mode.
	CheckVerify func(generation string, verdicts []Verdict) error
}

// Verdict is the slice of a verify response the checker sees. Single
// verifies key verdicts by store, batch lines by provider; both carry
// outcome.
type Verdict struct {
	Store    string `json:"store"`
	Provider string `json:"provider"`
	Outcome  string `json:"outcome"`
}

// Options configures one load run.
type Options struct {
	BaseURL  string
	RPS      float64
	Duration time.Duration
	Mix      Mix
	// Seed makes the class/UA draw deterministic.
	Seed uint64
	// MaxInFlight bounds concurrent scheduled requests (default 4096).
	// When the cap is hit new arrivals are SHED and counted — never
	// queued, which would re-introduce coordinated omission.
	MaxInFlight int
	// WatchStreams is how many long-lived SSE subscribers ride alongside
	// the scheduled load (default 0).
	WatchStreams int
	// MidRun, when set, is called once when the scheduler crosses the
	// halfway point — the rolling-reload hook (swap generations, kill a
	// replica, …). It runs on its own goroutine; issuance never pauses.
	MidRun func()
	// UserAgents is the weighted UA pool for verify traffic; defaults to
	// useragent.Generate(useragent.PaperSample()).
	UserAgents []string
	// Client defaults to a pooled http.Client with generous connection
	// reuse; override to inject transports in tests.
	Client *http.Client
}

// classState accumulates one class's results.
type classState struct {
	issued    atomic.Uint64
	completed atomic.Uint64
	shed      atomic.Uint64
	transport atomic.Uint64
	status    [6]atomic.Uint64 // by code/100; index 0 = weird
	checkFail atomic.Uint64
	hist      *obs.HDRHistogram
}

func (cs *classState) observe(scheduled time.Time, status int, transportErr bool) {
	cs.completed.Add(1)
	if transportErr {
		cs.transport.Add(1)
		return
	}
	if c := status / 100; c >= 1 && c < len(cs.status) {
		cs.status[c].Add(1)
	} else {
		cs.status[0].Add(1)
	}
	cs.hist.Observe(time.Since(scheduled))
}

// Runner executes one configured run.
type Runner struct {
	opts   Options
	target Target
	client *http.Client

	classes map[Class]*classState
	sem     chan struct{}

	generations sync.Map // hash string → *atomic.Uint64
	mixed       atomic.Uint64

	watchEvents atomic.Uint64
	watch5xx    atomic.Uint64
	watchErrs   atomic.Uint64

	ua *uaPicker

	readIdx atomic.Uint64
}

// NewRunner validates options and builds a runner.
func NewRunner(opts Options, target Target) (*Runner, error) {
	if opts.BaseURL == "" {
		return nil, errors.New("load: BaseURL required")
	}
	if opts.RPS <= 0 {
		return nil, errors.New("load: RPS must be positive")
	}
	if opts.Duration <= 0 {
		return nil, errors.New("load: Duration must be positive")
	}
	if opts.Mix == nil {
		opts.Mix = DefaultMix()
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = 4096
	}
	if len(opts.UserAgents) == 0 {
		opts.UserAgents = useragent.Generate(useragent.PaperSample())
	}
	client := opts.Client
	if client == nil {
		tr := &http.Transport{
			MaxIdleConns:        opts.MaxInFlight,
			MaxIdleConnsPerHost: opts.MaxInFlight,
			MaxConnsPerHost:     0,
			IdleConnTimeout:     90 * time.Second,
		}
		client = &http.Client{Transport: tr, Timeout: 30 * time.Second}
	}
	r := &Runner{
		opts:    opts,
		target:  target,
		client:  client,
		classes: map[Class]*classState{},
		sem:     make(chan struct{}, opts.MaxInFlight),
		ua:      newUAPicker(opts.UserAgents, opts.Seed),
	}
	for _, c := range classOrder {
		r.classes[c] = &classState{hist: obs.NewHDRHistogram()}
	}
	return r, nil
}

// classPicker pre-computes the cumulative mix so each draw is one
// rand.Float64 against a tiny table.
type classPicker struct {
	classes []Class
	cum     []float64
	rng     *rand.Rand
}

func newClassPicker(mix Mix, seed uint64) *classPicker {
	p := &classPicker{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
	var total float64
	for _, c := range classOrder {
		if w := mix[c]; w > 0 {
			p.classes = append(p.classes, c)
			total += w
			p.cum = append(p.cum, total)
		}
	}
	for i := range p.cum {
		p.cum[i] /= total
	}
	return p
}

func (p *classPicker) pick() Class {
	v := p.rng.Float64()
	for i, c := range p.cum {
		if v <= c {
			return p.classes[i]
		}
	}
	return p.classes[len(p.classes)-1]
}

// uaPicker draws user agents uniformly from the weighted pool (the pool
// itself carries the Table 1 weights as duplication) with its own seeded
// stream, guarded by a mutex — drivers run on many goroutines.
type uaPicker struct {
	mu  sync.Mutex
	rng *rand.Rand
	uas []string
}

func newUAPicker(uas []string, seed uint64) *uaPicker {
	return &uaPicker{rng: rand.New(rand.NewPCG(seed, seed^0xda942042e4dd58b5)), uas: uas}
}

func (p *uaPicker) pick() string {
	p.mu.Lock()
	ua := p.uas[p.rng.IntN(len(p.uas))]
	p.mu.Unlock()
	return ua
}

// UAMixProviders draws n user agents from the pool with the given seed
// and returns how many route to each traceable provider ("" for
// untraceable). This is exactly the draw Run makes for verify traffic,
// exported so tests can pin the distribution for a fixed seed.
func UAMixProviders(uas []string, seed uint64, n int) map[string]int {
	p := newUAPicker(uas, seed)
	out := map[string]int{}
	for i := 0; i < n; i++ {
		agent := useragent.Parse(p.pick())
		m := useragent.MapToProvider(agent)
		if m.Traceable {
			out[string(m.Provider)]++
		} else {
			out[""]++
		}
	}
	return out
}

// recordGeneration tallies one observed X-Rootpack-Hash.
func (r *Runner) recordGeneration(hash string) {
	if hash == "" {
		return
	}
	v, _ := r.generations.LoadOrStore(hash, new(atomic.Uint64))
	v.(*atomic.Uint64).Add(1)
}

// Run executes the configured load and blocks until every issued
// request completed (or the context is cancelled).
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	n := int(r.opts.RPS * r.opts.Duration.Seconds())
	if n <= 0 {
		n = 1
	}
	interval := time.Duration(float64(time.Second) / r.opts.RPS)

	// Pre-draw the class sequence so the schedule itself is deterministic
	// for a seed regardless of completion order.
	picker := newClassPicker(r.opts.Mix, r.opts.Seed)
	sequence := make([]Class, n)
	for i := range sequence {
		sequence[i] = picker.pick()
	}

	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	var watchWG sync.WaitGroup
	for i := 0; i < r.opts.WatchStreams; i++ {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			r.runWatchStream(watchCtx)
		}()
	}

	var wg sync.WaitGroup
	var midOnce sync.Once
	start := time.Now()
	issued := openLoop(ctx, start, interval, n, func(i int, scheduled time.Time) {
		if r.opts.MidRun != nil && i >= n/2 {
			midOnce.Do(func() { go r.opts.MidRun() })
		}
		class := sequence[i]
		cs := r.classes[class]
		cs.issued.Add(1)
		select {
		case r.sem <- struct{}{}:
		default:
			// At the in-flight cap: shed, never queue. Queuing would tie
			// issuance to completions — the coordinated-omission trap.
			cs.shed.Add(1)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-r.sem }()
			r.dispatch(ctx, class, cs, scheduled)
		}()
	})
	issueWall := time.Since(start)
	wg.Wait()
	totalWall := time.Since(start)
	stopWatch()
	watchWG.Wait()

	if ctx.Err() != nil && issued < n {
		return nil, fmt.Errorf("load: run cancelled after %d/%d requests: %w", issued, n, ctx.Err())
	}
	return r.buildReport(n, issued, interval, issueWall, totalWall), nil
}

// dispatch runs one scheduled request through its class driver.
func (r *Runner) dispatch(ctx context.Context, class Class, cs *classState, scheduled time.Time) {
	var (
		status int
		err    error
	)
	switch class {
	case ClassRead:
		status, err = r.doRead(ctx)
	case ClassVerify:
		status, err = r.doVerify(ctx)
	case ClassBatch:
		status, err = r.doBatch(ctx)
	case ClassWatch:
		status, err = r.doWatchConnect(ctx)
	case ClassSimulate:
		status, err = r.doSimulate(ctx)
	}
	cs.observe(scheduled, status, err != nil)
}
