// Package setdist computes set distances between root-store snapshots —
// the Jaccard distance the paper uses both for ordination (Figure 1) and
// for matching derivative snapshots to their closest NSS version
// (Figure 3).
//
// Two implementations coexist. The map-based Jaccard/Overlap metrics are
// the reference semantics, kept for the distance-metric ablation and as
// the oracle the property tests compare against. The hot path — the
// pairwise distance matrix behind Figure 1 and the closest-version
// matcher behind Figure 3 — runs on interned, bitset-backed trusted sets
// (store.Snapshot.TrustedBits): intersection and union collapse to
// word-wise AND/OR plus popcount, and pair computation fans out across
// GOMAXPROCS workers.
package setdist

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/certutil"
	"repro/internal/linalg"
	"repro/internal/store"
)

// Jaccard returns the Jaccard distance 1 - |A∩B| / |A∪B| between two
// fingerprint sets. Two empty sets are at distance 0.
func Jaccard(a, b map[certutil.Fingerprint]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := intersectionSize(a, b)
	union := len(a) + len(b) - inter
	return 1 - float64(inter)/float64(union)
}

// Overlap returns the overlap coefficient |A∩B| / min(|A|,|B|); 1 when one
// set contains the other, 0 for disjoint sets. Both empty → 1.
func Overlap(a, b map[certutil.Fingerprint]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	return float64(intersectionSize(a, b)) / float64(min)
}

// intersectionSize walks the smaller set probing the larger, so a
// lopsided pair (a large Microsoft snapshot against a tiny Java one)
// costs the small side, not the large.
func intersectionSize(a, b map[certutil.Fingerprint]bool) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for fp := range a {
		if b[fp] {
			inter++
		}
	}
	return inter
}

// SnapshotJaccard is Jaccard over the purpose-trusted sets of two snapshots.
func SnapshotJaccard(a, b *store.Snapshot, p store.Purpose) float64 {
	return Jaccard(a.TrustedSet(p), b.TrustedSet(p))
}

// Metric is a set distance over fingerprint sets; it must be symmetric,
// non-negative, and zero on identical sets.
type Metric func(a, b map[certutil.Fingerprint]bool) float64

// OverlapDistance is 1 - Overlap: zero when one set contains the other.
// Used by the distance-metric ablation; it under-separates stores of very
// different sizes (a superset store looks identical to its subset).
func OverlapDistance(a, b map[certutil.Fingerprint]bool) float64 {
	return 1 - Overlap(a, b)
}

// BitMetric is a set distance over bitsets; the bitset twin of Metric.
type BitMetric func(a, b *bitset.Set) float64

// BitJaccard is Jaccard over bitsets: exact, word-level popcount
// arithmetic, numerically identical to the map reference (both divide the
// same two integers).
func BitJaccard(a, b *bitset.Set) float64 {
	inter := a.IntersectCount(b)
	union := a.Count() + b.Count() - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// BitOverlap is the overlap coefficient over bitsets.
func BitOverlap(a, b *bitset.Set) float64 {
	ca, cb := a.Count(), b.Count()
	if ca == 0 || cb == 0 {
		if ca == 0 && cb == 0 {
			return 1
		}
		return 0
	}
	min := ca
	if cb < min {
		min = cb
	}
	return float64(a.IntersectCount(b)) / float64(min)
}

// BitOverlapDistance is 1 - BitOverlap.
func BitOverlapDistance(a, b *bitset.Set) float64 {
	return 1 - BitOverlap(a, b)
}

// DistanceMatrix computes the pairwise Jaccard distance matrix over the
// purpose-trusted sets of the snapshots, the input to MDS. It runs on the
// bitset fast path with GOMAXPROCS workers.
func DistanceMatrix(snapshots []*store.Snapshot, p store.Purpose) *linalg.Matrix {
	return DistanceMatrixWith(snapshots, p, nil)
}

// DistanceMatrixWith is DistanceMatrix under an arbitrary metric. A nil
// metric selects Jaccard on the bitset fast path; a non-nil metric runs
// over map sets (the reference representation), still fanned out over
// workers.
func DistanceMatrixWith(snapshots []*store.Snapshot, p store.Purpose, metric Metric) *linalg.Matrix {
	if metric == nil {
		return DistanceMatrixBits(snapshots, p, BitJaccard, 0)
	}
	n := len(snapshots)
	sets := make([]map[certutil.Fingerprint]bool, n)
	for i, s := range snapshots {
		sets[i] = s.TrustedSet(p)
	}
	m := linalg.NewMatrix(n, n)
	parallelRows(n, 0, func(i int) {
		for j := i + 1; j < n; j++ {
			d := metric(sets[i], sets[j])
			m.Set(i, j, d)
			m.Set(j, i, d)
		}
	})
	return m
}

// DistanceMatrixMap is the serial map-based reference implementation,
// kept for the ablation benchmarks and the property tests that prove the
// bitset path bit-for-bit equivalent. A nil metric means Jaccard.
func DistanceMatrixMap(snapshots []*store.Snapshot, p store.Purpose, metric Metric) *linalg.Matrix {
	if metric == nil {
		metric = Jaccard
	}
	n := len(snapshots)
	sets := make([]map[certutil.Fingerprint]bool, n)
	for i, s := range snapshots {
		sets[i] = s.TrustedSet(p)
	}
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := metric(sets[i], sets[j])
			m.Set(i, j, d)
			m.Set(j, i, d)
		}
	}
	return m
}

// DistanceMatrixBits computes the pairwise distance matrix on memoized
// trusted bitsets under bm (nil means BitJaccard), fanning rows out over
// the given worker count (0 means GOMAXPROCS).
func DistanceMatrixBits(snapshots []*store.Snapshot, p store.Purpose, bm BitMetric, workers int) *linalg.Matrix {
	if bm == nil {
		bm = BitJaccard
	}
	n := len(snapshots)
	in := sharedInterner(snapshots)
	// Materialize (and memoize) every trusted bitset before fanning out,
	// so the pair loop is pure read-only popcount work.
	sets := make([]*bitset.Set, n)
	for i, s := range snapshots {
		sets[i] = s.TrustedBits(p, in)
	}
	m := linalg.NewMatrix(n, n)
	parallelRows(n, workers, func(i int) {
		for j := i + 1; j < n; j++ {
			d := bm(sets[i], sets[j])
			m.Set(i, j, d)
			m.Set(j, i, d)
		}
	})
	return m
}

// parallelRows runs f(i) for i in [0,n) across workers goroutines,
// balancing the triangular row costs with an atomic row counter. Workers
// write disjoint matrix cells, so no further synchronization is needed.
func parallelRows(n, workers int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// sharedInterner picks the ID space for a cross-snapshot comparison: the
// single interner every attached snapshot shares (the owning database's —
// memoized bits apply), or a fresh one when the snapshots straddle
// databases (correct, just uncached).
func sharedInterner(snapshots []*store.Snapshot) *store.Interner {
	var common *store.Interner
	for _, s := range snapshots {
		in := s.Interner()
		if in == nil {
			continue
		}
		if common == nil {
			common = in
		} else if common != in {
			return store.NewInterner()
		}
	}
	if common == nil {
		common = store.NewInterner()
	}
	return common
}

// ClosestSnapshot returns the index in candidates whose purpose-trusted set
// is nearest (minimum Jaccard distance) to target, along with the distance.
// Ties break toward the earliest candidate. It returns -1 for an empty
// candidate list. This is the paper's derivative→NSS version matching
// (§6.1). It runs on the bitset fast path.
func ClosestSnapshot(target *store.Snapshot, candidates []*store.Snapshot, p store.Purpose) (int, float64) {
	if len(candidates) == 0 {
		return -1, 0
	}
	all := make([]*store.Snapshot, 0, len(candidates)+1)
	all = append(all, target)
	all = append(all, candidates...)
	in := sharedInterner(all)
	tset := target.TrustedBits(p, in)
	bestIdx, bestDist := -1, 2.0
	for i, c := range candidates {
		d := BitJaccard(tset, c.TrustedBits(p, in))
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	return bestIdx, bestDist
}
