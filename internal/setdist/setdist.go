// Package setdist computes set distances between root-store snapshots —
// the Jaccard distance the paper uses both for ordination (Figure 1) and
// for matching derivative snapshots to their closest NSS version
// (Figure 3).
package setdist

import (
	"repro/internal/certutil"
	"repro/internal/linalg"
	"repro/internal/store"
)

// Jaccard returns the Jaccard distance 1 - |A∩B| / |A∪B| between two
// fingerprint sets. Two empty sets are at distance 0.
func Jaccard(a, b map[certutil.Fingerprint]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for fp := range a {
		if b[fp] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return 1 - float64(inter)/float64(union)
}

// Overlap returns the overlap coefficient |A∩B| / min(|A|,|B|); 1 when one
// set contains the other, 0 for disjoint sets. Both empty → 1.
func Overlap(a, b map[certutil.Fingerprint]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == 0 && len(b) == 0 {
			return 1
		}
		return 0
	}
	inter := 0
	for fp := range a {
		if b[fp] {
			inter++
		}
	}
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	return float64(inter) / float64(min)
}

// SnapshotJaccard is Jaccard over the purpose-trusted sets of two snapshots.
func SnapshotJaccard(a, b *store.Snapshot, p store.Purpose) float64 {
	return Jaccard(a.TrustedSet(p), b.TrustedSet(p))
}

// Metric is a set distance over fingerprint sets; it must be symmetric,
// non-negative, and zero on identical sets.
type Metric func(a, b map[certutil.Fingerprint]bool) float64

// OverlapDistance is 1 - Overlap: zero when one set contains the other.
// Used by the distance-metric ablation; it under-separates stores of very
// different sizes (a superset store looks identical to its subset).
func OverlapDistance(a, b map[certutil.Fingerprint]bool) float64 {
	return 1 - Overlap(a, b)
}

// DistanceMatrix computes the pairwise Jaccard distance matrix over the
// purpose-trusted sets of the snapshots, the input to MDS.
func DistanceMatrix(snapshots []*store.Snapshot, p store.Purpose) *linalg.Matrix {
	return DistanceMatrixWith(snapshots, p, Jaccard)
}

// DistanceMatrixWith is DistanceMatrix under an arbitrary metric.
func DistanceMatrixWith(snapshots []*store.Snapshot, p store.Purpose, metric Metric) *linalg.Matrix {
	if metric == nil {
		metric = Jaccard
	}
	n := len(snapshots)
	sets := make([]map[certutil.Fingerprint]bool, n)
	for i, s := range snapshots {
		sets[i] = s.TrustedSet(p)
	}
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := metric(sets[i], sets[j])
			m.Set(i, j, d)
			m.Set(j, i, d)
		}
	}
	return m
}

// ClosestSnapshot returns the index in candidates whose purpose-trusted set
// is nearest (minimum Jaccard distance) to target, along with the distance.
// Ties break toward the earliest candidate. It returns -1 for an empty
// candidate list. This is the paper's derivative→NSS version matching
// (§6.1).
func ClosestSnapshot(target *store.Snapshot, candidates []*store.Snapshot, p store.Purpose) (int, float64) {
	if len(candidates) == 0 {
		return -1, 0
	}
	tset := target.TrustedSet(p)
	bestIdx, bestDist := -1, 2.0
	for i, c := range candidates {
		d := Jaccard(tset, c.TrustedSet(p))
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	return bestIdx, bestDist
}
