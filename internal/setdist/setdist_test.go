package setdist

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/certutil"
	"repro/internal/store"
	"repro/internal/testcerts"
)

func fpset(ids ...byte) map[certutil.Fingerprint]bool {
	out := make(map[certutil.Fingerprint]bool)
	for _, id := range ids {
		out[certutil.SHA256Fingerprint([]byte{id})] = true
	}
	return out
}

func TestJaccardKnownValues(t *testing.T) {
	cases := []struct {
		a, b map[certutil.Fingerprint]bool
		want float64
	}{
		{fpset(1, 2, 3), fpset(1, 2, 3), 0},
		{fpset(1, 2), fpset(3, 4), 1},
		{fpset(1, 2, 3), fpset(2, 3, 4), 0.5},
		{fpset(), fpset(), 0},
		{fpset(1), fpset(), 1},
		{fpset(1, 2, 3, 4), fpset(1), 0.75},
	}
	for i, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Jaccard = %f, want %f", i, got, c.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	gen := func(seed int64) map[certutil.Fingerprint]bool {
		out := make(map[certutil.Fingerprint]bool)
		x := uint64(seed)
		n := int(x%8) + 1
		for i := 0; i < n; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			out[certutil.SHA256Fingerprint([]byte{byte(x % 16)})] = true
		}
		return out
	}
	prop := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		dab, dba := Jaccard(a, b), Jaccard(b, a)
		if dab != dba { // symmetric
			return false
		}
		if dab < 0 || dab > 1 { // bounded
			return false
		}
		return Jaccard(a, a) == 0 // identity
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a, b map[certutil.Fingerprint]bool
		want float64
	}{
		{fpset(1, 2, 3), fpset(1, 2), 1}, // containment
		{fpset(1, 2), fpset(3, 4), 0},
		{fpset(1, 2), fpset(2, 3), 0.5},
		{fpset(), fpset(), 1},
		{fpset(1), fpset(), 0},
	}
	for i, c := range cases {
		if got := Overlap(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Overlap = %f, want %f", i, got, c.want)
		}
	}
}

func snap(t *testing.T, provider string, day int, rootIdx ...int) *store.Snapshot {
	t.Helper()
	maxIdx := 0
	for _, i := range rootIdx {
		if i > maxIdx {
			maxIdx = i
		}
	}
	rs := testcerts.Roots(maxIdx + 1)
	s := store.NewSnapshot(provider, "v", time.Date(2020, 1, day, 0, 0, 0, 0, time.UTC))
	for _, i := range rootIdx {
		e, err := store.NewTrustedEntry(rs[i].DER, store.ServerAuth)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(e)
	}
	return s
}

func TestSnapshotJaccard(t *testing.T) {
	a := snap(t, "NSS", 1, 0, 1, 2)
	b := snap(t, "Debian", 2, 1, 2, 3)
	if got := SnapshotJaccard(a, b, store.ServerAuth); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SnapshotJaccard = %f, want 0.5", got)
	}
	if got := SnapshotJaccard(a, a, store.ServerAuth); got != 0 {
		t.Errorf("self distance = %f", got)
	}
}

func TestDistanceMatrix(t *testing.T) {
	snaps := []*store.Snapshot{
		snap(t, "A", 1, 0, 1),
		snap(t, "B", 2, 0, 1),
		snap(t, "C", 3, 2, 3),
	}
	m := DistanceMatrix(snaps, store.ServerAuth)
	if m.Rows != 3 || m.Cols != 3 {
		t.Fatalf("matrix %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 1) != 0 {
		t.Errorf("identical snapshots distance = %f", m.At(0, 1))
	}
	if m.At(0, 2) != 1 {
		t.Errorf("disjoint snapshots distance = %f", m.At(0, 2))
	}
	if !m.IsSymmetric(0) {
		t.Error("distance matrix must be symmetric")
	}
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 0 {
			t.Error("diagonal must be zero")
		}
	}
}

func TestClosestSnapshot(t *testing.T) {
	target := snap(t, "Debian", 10, 0, 1, 2)
	candidates := []*store.Snapshot{
		snap(t, "NSS", 1, 0),          // far
		snap(t, "NSS", 2, 0, 1, 2),    // exact
		snap(t, "NSS", 3, 0, 1, 2, 3), // close
	}
	idx, dist := ClosestSnapshot(target, candidates, store.ServerAuth)
	if idx != 1 || dist != 0 {
		t.Errorf("ClosestSnapshot = %d, %f", idx, dist)
	}
	idx, _ = ClosestSnapshot(target, nil, store.ServerAuth)
	if idx != -1 {
		t.Errorf("empty candidates should give -1, got %d", idx)
	}
}

func TestClosestSnapshotTieBreaksEarliest(t *testing.T) {
	target := snap(t, "X", 10, 0, 1)
	candidates := []*store.Snapshot{
		snap(t, "NSS", 1, 0, 1),
		snap(t, "NSS", 2, 0, 1), // same distance
	}
	idx, _ := ClosestSnapshot(target, candidates, store.ServerAuth)
	if idx != 0 {
		t.Errorf("tie should break to earliest, got %d", idx)
	}
}
