package setdist

// Property tests proving the bitset fast path is an exact drop-in for the
// map-based reference semantics: same metrics bit-for-bit (both divide the
// same two integers), same set algebra, same distance matrices.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/certutil"
	"repro/internal/store"
)

// internPair builds the map and bitset views of the same fingerprint set
// under a shared interner.
func internPair(in *store.Interner, ids []byte) (map[certutil.Fingerprint]bool, *bitset.Set) {
	m := make(map[certutil.Fingerprint]bool)
	bs := bitset.New(in.Len() + len(ids))
	for _, id := range ids {
		fp := certutil.SHA256Fingerprint([]byte{id})
		m[fp] = true
		bs.Add(in.ID(fp))
	}
	return m, bs
}

func randomIDs(rng *rand.Rand) []byte {
	n := rng.Intn(40)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(64))
	}
	return out
}

// TestBitMetricsMatchMapReference checks, over random set pairs, that every
// bitset metric returns the exact float64 the map reference returns, and
// that bitset union/intersection reproduce the reference set algebra.
func TestBitMetricsMatchMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := store.NewInterner()
	for trial := 0; trial < 500; trial++ {
		ma, ba := internPair(in, randomIDs(rng))
		mb, bb := internPair(in, randomIDs(rng))

		if got, want := BitJaccard(ba, bb), Jaccard(ma, mb); got != want {
			t.Fatalf("trial %d: BitJaccard = %v, Jaccard = %v", trial, got, want)
		}
		if got, want := BitOverlap(ba, bb), Overlap(ma, mb); got != want {
			t.Fatalf("trial %d: BitOverlap = %v, Overlap = %v", trial, got, want)
		}
		if got, want := BitOverlapDistance(ba, bb), OverlapDistance(ma, mb); got != want {
			t.Fatalf("trial %d: BitOverlapDistance = %v, OverlapDistance = %v", trial, got, want)
		}

		// Set algebra: union and intersection round-trip through the
		// interner to the exact reference maps.
		union := make(map[certutil.Fingerprint]bool, len(ma)+len(mb))
		inter := make(map[certutil.Fingerprint]bool)
		for fp := range ma {
			union[fp] = true
			if mb[fp] {
				inter[fp] = true
			}
		}
		for fp := range mb {
			union[fp] = true
		}
		if got := in.FingerprintSet(ba.Union(bb)); !sameSet(got, union) {
			t.Fatalf("trial %d: bitset union mismatch: %d vs %d", trial, len(got), len(union))
		}
		if got := in.FingerprintSet(ba.Intersect(bb)); !sameSet(got, inter) {
			t.Fatalf("trial %d: bitset intersection mismatch: %d vs %d", trial, len(got), len(inter))
		}
		if ba.UnionCount(bb) != len(union) || ba.IntersectCount(bb) != len(inter) {
			t.Fatalf("trial %d: popcounts disagree with reference sizes", trial)
		}
	}
}

func sameSet(a, b map[certutil.Fingerprint]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for fp := range a {
		if !b[fp] {
			return false
		}
	}
	return true
}

// TestBitJaccardQuick is the testing/quick variant: arbitrary byte slices
// as membership draws, exact agreement required.
func TestBitJaccardQuick(t *testing.T) {
	in := store.NewInterner()
	prop := func(rawA, rawB []byte) bool {
		ma, ba := internPair(in, rawA)
		mb, bb := internPair(in, rawB)
		return BitJaccard(ba, bb) == Jaccard(ma, mb) &&
			BitOverlap(ba, bb) == Overlap(ma, mb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBitJaccardMatchesMap fuzzes the metric equivalence with
// attacker-chosen membership bytes.
func FuzzBitJaccardMatchesMap(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{255, 255, 0}, []byte{})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		in := store.NewInterner()
		ma, ba := internPair(in, rawA)
		mb, bb := internPair(in, rawB)
		if got, want := BitJaccard(ba, bb), Jaccard(ma, mb); got != want {
			t.Fatalf("BitJaccard = %v, map Jaccard = %v", got, want)
		}
		if got, want := BitOverlap(ba, bb), Overlap(ma, mb); got != want {
			t.Fatalf("BitOverlap = %v, map Overlap = %v", got, want)
		}
	})
}

// TestDistanceMatrixVariantsAgree proves the bitset matrix (serial and
// parallel) equals the serial map reference cell-for-cell on real
// snapshots.
func TestDistanceMatrixVariantsAgree(t *testing.T) {
	snaps := []*store.Snapshot{
		snap(t, "A", 1, 0, 1, 2, 3),
		snap(t, "B", 2, 0, 1, 2),
		snap(t, "C", 3, 2, 3, 4, 5),
		snap(t, "D", 4, 6),
		snap(t, "E", 5),
		snap(t, "F", 6, 0, 1, 2, 3, 4, 5, 6),
	}
	want := DistanceMatrixMap(snaps, store.ServerAuth, nil)
	for _, workers := range []int{1, 4} {
		got := DistanceMatrixBits(snaps, store.ServerAuth, nil, workers)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("workers=%d: shape %dx%d, want %dx%d", workers, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: cell %d = %v, want %v", workers, i, got.Data[i], want.Data[i])
			}
		}
	}
	// The public entry point must agree too.
	got := DistanceMatrix(snaps, store.ServerAuth)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("DistanceMatrix cell %d = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	// And the overlap ablation metric under the map fan-out path.
	wantOv := DistanceMatrixMap(snaps, store.ServerAuth, OverlapDistance)
	gotOv := DistanceMatrixWith(snaps, store.ServerAuth, OverlapDistance)
	for i := range gotOv.Data {
		if gotOv.Data[i] != wantOv.Data[i] {
			t.Fatalf("overlap cell %d = %v, want %v", i, gotOv.Data[i], wantOv.Data[i])
		}
	}
}
