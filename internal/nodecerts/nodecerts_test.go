package nodecerts

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/testcerts"
)

func TestRoundTrip(t *testing.T) {
	in := testcerts.Entries(3, store.ServerAuth)
	data, err := MarshalBytes(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("entries = %d, want 3", len(out))
	}
	for i := range in {
		if out[i].Fingerprint != in[i].Fingerprint {
			t.Errorf("entry %d fingerprint mismatch", i)
		}
		if !out[i].TrustedFor(store.ServerAuth) {
			t.Errorf("entry %d not TLS-trusted", i)
		}
	}
}

func TestMarshalSkipsNonTLS(t *testing.T) {
	entries := testcerts.Entries(2, store.ServerAuth)
	email := testcerts.Entries(3, store.EmailProtection)[2]
	entries = append(entries, email)
	data, err := MarshalBytes(entries)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("entries = %d, want 2 (email-only root must be skipped)", len(out))
	}
}

func TestParseHandlesComments(t *testing.T) {
	in := testcerts.Entries(1, store.ServerAuth)
	data, err := MarshalBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	doc := "// line comment\n/* block\ncomment */\n" + string(data)
	out, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(out) != 1 {
		t.Errorf("entries = %d", len(out))
	}
}

func TestParseEscapes(t *testing.T) {
	// Literal containing all supported escapes around a valid cert.
	in := testcerts.Entries(1, store.ServerAuth)
	data, err := MarshalBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `\n`) {
		t.Fatal("marshalled header should contain \\n escapes")
	}
	out, err := Parse(bytes.NewReader(data))
	if err != nil || len(out) != 1 {
		t.Fatalf("Parse: %v, %d entries", err, len(out))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"unterminated string", `"abc`},
		{"unterminated comment", "/* forever"},
		{"bad escape", `"\q",`},
		{"dangling escape", `"abc\`},
		{"not a cert", `"-----BEGIN PUBLIC KEY-----\nAAAA\n-----END PUBLIC KEY-----\n",`},
		{"corrupt cert", `"-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n",`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.doc)); err == nil {
				t.Errorf("Parse succeeded for %s", c.name)
			}
		})
	}
}

func TestParseEmpty(t *testing.T) {
	out, err := Parse(strings.NewReader("// nothing here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("entries = %d", len(out))
	}
}

func TestExtractElementsConcatenation(t *testing.T) {
	els, err := extractElements(`"ab" "cd",
"ef",`)
	if err != nil {
		t.Fatal(err)
	}
	if len(els) != 2 || els[0] != "abcd" || els[1] != "ef" {
		t.Errorf("elements = %q", els)
	}
}

func TestExtractElementsNoTrailingComma(t *testing.T) {
	els, err := extractElements(`"ab"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(els) != 1 || els[0] != "ab" {
		t.Errorf("elements = %q", els)
	}
}
