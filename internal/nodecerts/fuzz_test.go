package nodecerts

import (
	"bytes"
	"testing"

	"repro/internal/store"
	"repro/internal/testcerts"
)

// FuzzParse hardens the C-header scanner: arbitrary input must never panic
// and successful parses must round trip.
func FuzzParse(f *testing.F) {
	valid, err := MarshalBytes(testcerts.Entries(2, store.ServerAuth))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte(`"abc" "def",`))
	f.Add([]byte("/* comment */ // another"))
	f.Add([]byte(`"\n\t\\\"",`))
	f.Add([]byte(`"unterminated`))

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := MarshalBytes(entries)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		back, err := Parse(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(back) != len(entries) {
			t.Fatalf("entry count changed: %d -> %d", len(entries), len(back))
		}
	})
}
