// Package nodecerts reads and writes NodeJS's src/node_root_certs.h: a C
// header declaring an array of string literals, each holding one PEM
// certificate. Like PEM bundles, the format expresses only on-or-off TLS
// trust (NodeJS ships it purely for server authentication).
package nodecerts

import (
	"bytes"
	"encoding/pem"
	"fmt"
	"io"
	"strings"

	"repro/internal/store"
)

// Parse reads a node_root_certs.h stream. It extracts every quoted string
// fragment, concatenates fragments per array element (elements are
// comma-separated), and PEM-decodes each element.
func Parse(r io.Reader) ([]*store.TrustEntry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("nodecerts: read: %w", err)
	}
	elements, err := extractElements(string(data))
	if err != nil {
		return nil, err
	}
	var entries []*store.TrustEntry
	for i, el := range elements {
		block, rest := pem.Decode([]byte(el))
		if block == nil || block.Type != "CERTIFICATE" {
			return nil, fmt.Errorf("nodecerts: element %d is not a PEM certificate", i)
		}
		if len(bytes.TrimSpace(rest)) != 0 {
			return nil, fmt.Errorf("nodecerts: element %d has trailing data", i)
		}
		e, err := store.NewTrustedEntry(block.Bytes, store.ServerAuth)
		if err != nil {
			return nil, fmt.Errorf("nodecerts: element %d: %w", i, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// extractElements walks the header text and returns one string per array
// element, de-escaping C string literals and joining adjacent literals
// (C concatenation) until a comma at top level.
func extractElements(src string) ([]string, error) {
	var elements []string
	var cur strings.Builder
	curHasContent := false
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("nodecerts: unterminated block comment")
			}
			i += 2 + end + 2
		case c == '"':
			i++
			for i < n && src[i] != '"' {
				if src[i] == '\\' {
					if i+1 >= n {
						return nil, fmt.Errorf("nodecerts: dangling escape")
					}
					switch src[i+1] {
					case 'n':
						cur.WriteByte('\n')
					case 't':
						cur.WriteByte('\t')
					case '\\':
						cur.WriteByte('\\')
					case '"':
						cur.WriteByte('"')
					default:
						return nil, fmt.Errorf("nodecerts: unsupported escape \\%c", src[i+1])
					}
					i += 2
					continue
				}
				cur.WriteByte(src[i])
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("nodecerts: unterminated string literal")
			}
			i++ // closing quote
			curHasContent = true
		case c == ',':
			if curHasContent {
				elements = append(elements, cur.String())
				cur.Reset()
				curHasContent = false
			}
			i++
		default:
			i++
		}
	}
	if curHasContent {
		elements = append(elements, cur.String())
	}
	return elements, nil
}

// Marshal writes entries trusted for TLS server authentication as a
// node_root_certs.h document that Parse round-trips.
func Marshal(w io.Writer, entries []*store.TrustEntry) error {
	if _, err := fmt.Fprintf(w, "// Generated root certificate list (node_root_certs.h format).\n"); err != nil {
		return err
	}
	for i, e := range entries {
		if !e.TrustedFor(store.ServerAuth) {
			continue
		}
		var pemBuf bytes.Buffer
		if err := pem.Encode(&pemBuf, &pem.Block{Type: "CERTIFICATE", Bytes: e.DER}); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "\n/* %s */\n", e.Label); err != nil {
			return err
		}
		lines := strings.Split(strings.TrimRight(pemBuf.String(), "\n"), "\n")
		for j, line := range lines {
			sep := "\n"
			if j == len(lines)-1 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, "\"%s\\n\"%s", line, sep); err != nil {
				return err
			}
		}
		_ = i
		if _, err := fmt.Fprintf(w, ",\n"); err != nil {
			return err
		}
	}
	return nil
}

// MarshalBytes is Marshal into a byte slice.
func MarshalBytes(entries []*store.TrustEntry) ([]byte, error) {
	var buf bytes.Buffer
	if err := Marshal(&buf, entries); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
