package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Error("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Error("Clone shares storage")
	}
}

func TestIsSymmetric(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	if !m.IsSymmetric(1e-12) {
		t.Error("symmetric matrix reported asymmetric")
	}
	m.Set(1, 0, 2)
	if m.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(1e-12) {
		t.Error("non-square cannot be symmetric")
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 1)
	m.Set(1, 1, 5)
	m.Set(2, 2, 3)
	eig, err := SymmetricEigen(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i, w := range want {
		if !almost(eig.Values[i], w, 1e-9) {
			t.Errorf("eigenvalue %d = %f, want %f", i, eig.Values[i], w)
		}
	}
}

func TestSymmetricEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	eig, err := SymmetricEigen(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(eig.Values[0], 3, 1e-9) || !almost(eig.Values[1], 1, 1e-9) {
		t.Errorf("eigenvalues = %v", eig.Values)
	}
	// Eigenvector for lambda=3 is (1,1)/sqrt2 up to sign.
	v0 := []float64{eig.Vectors.At(0, 0), eig.Vectors.At(1, 0)}
	if !almost(math.Abs(v0[0]), 1/math.Sqrt2, 1e-9) || !almost(v0[0], v0[1], 1e-9) {
		t.Errorf("eigenvector = %v", v0)
	}
}

func TestSymmetricEigenReconstruction(t *testing.T) {
	// Verify A v = lambda v for a fixed symmetric matrix.
	vals := [][]float64{
		{4, 1, 0.5, 0},
		{1, 3, 0.2, 0.7},
		{0.5, 0.2, 2, 0.1},
		{0, 0.7, 0.1, 1},
	}
	n := len(vals)
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, vals[i][j])
		}
	}
	eig, err := SymmetricEigen(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			var av float64
			for k := 0; k < n; k++ {
				av += vals[r][k] * eig.Vectors.At(k, c)
			}
			lv := eig.Values[c] * eig.Vectors.At(r, c)
			if !almost(av, lv, 1e-8) {
				t.Fatalf("A·v != λ·v at (%d,%d): %f vs %f", r, c, av, lv)
			}
		}
	}
	// Eigenvalue sum equals trace.
	var sum, trace float64
	for i := 0; i < n; i++ {
		sum += eig.Values[i]
		trace += vals[i][i]
	}
	if !almost(sum, trace, 1e-9) {
		t.Errorf("eigenvalue sum %f != trace %f", sum, trace)
	}
}

func TestSymmetricEigenErrors(t *testing.T) {
	if _, err := SymmetricEigen(NewMatrix(2, 3), 0); err == nil {
		t.Error("non-square should fail")
	}
	m := NewMatrix(2, 2)
	m.Set(0, 1, 1)
	if _, err := SymmetricEigen(m, 0); err == nil {
		t.Error("asymmetric should fail")
	}
}

func TestDoubleCenterKnown(t *testing.T) {
	// Points on a line at 0, 3, 6: classical MDS Gram matrix should have
	// row sums 0 (centering) and reproduce squared distances.
	d := NewMatrix(3, 3)
	coords := []float64{0, 3, 6}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			d.Set(i, j, math.Abs(coords[i]-coords[j]))
		}
	}
	b, err := DoubleCenter(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var rowSum float64
		for j := 0; j < 3; j++ {
			rowSum += b.At(i, j)
		}
		if !almost(rowSum, 0, 1e-9) {
			t.Errorf("row %d sum = %f, want 0", i, rowSum)
		}
	}
	// B should be PSD with rank 1 here: top eigenvalue = variance scale.
	eig, err := SymmetricEigen(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eig.Values[0] <= 0 {
		t.Errorf("top eigenvalue = %f, want > 0", eig.Values[0])
	}
	if !almost(eig.Values[1], 0, 1e-8) || !almost(eig.Values[2], 0, 1e-8) {
		t.Errorf("collinear points should have rank-1 Gram matrix: %v", eig.Values)
	}
}

func TestDoubleCenterNonSquare(t *testing.T) {
	if _, err := DoubleCenter(NewMatrix(2, 3)); err == nil {
		t.Error("non-square should fail")
	}
}

func TestKMeansSeparatedClusters(t *testing.T) {
	// Two tight blobs far apart.
	pts := NewMatrix(8, 2)
	blobA := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}}
	blobB := [][]float64{{10, 10}, {10.1, 10}, {10, 10.1}, {10.1, 10.1}}
	for i, p := range append(blobA, blobB...) {
		pts.Set(i, 0, p[0])
		pts.Set(i, 1, p[1])
	}
	res, err := KMeans(pts, 2, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		if res.Assignments[i] != res.Assignments[0] {
			t.Error("blob A split across clusters")
		}
	}
	for i := 5; i < 8; i++ {
		if res.Assignments[i] != res.Assignments[4] {
			t.Error("blob B split across clusters")
		}
	}
	if res.Assignments[0] == res.Assignments[4] {
		t.Error("blobs merged into one cluster")
	}
	if res.Inertia > 0.2 {
		t.Errorf("inertia = %f, want tiny", res.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts := NewMatrix(6, 1)
	for i := 0; i < 6; i++ {
		pts.Set(i, 0, float64(i*i))
	}
	a, err := KMeans(pts, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pts, 3, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	pts := NewMatrix(3, 2)
	if _, err := KMeans(pts, 0, 1, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KMeans(pts, 4, 1, 0); err == nil {
		t.Error("k>n should fail")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	pts := NewMatrix(3, 1)
	pts.Set(0, 0, 0)
	pts.Set(1, 0, 5)
	pts.Set(2, 0, 10)
	res, err := KMeans(pts, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Inertia, 0, 1e-12) {
		t.Errorf("k=n inertia = %f", res.Inertia)
	}
	seen := map[int]bool{}
	for _, a := range res.Assignments {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n should use all clusters, got %v", res.Assignments)
	}
}

func TestEigenvalueSumEqualsTraceProperty(t *testing.T) {
	prop := func(a, b, c, d, e, f float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0
			}
			return math.Mod(x, 100)
		}
		a, b, c, d, e, f = clamp(a), clamp(b), clamp(c), clamp(d), clamp(e), clamp(f)
		m := NewMatrix(3, 3)
		m.Set(0, 0, a)
		m.Set(1, 1, b)
		m.Set(2, 2, c)
		m.Set(0, 1, d)
		m.Set(1, 0, d)
		m.Set(0, 2, e)
		m.Set(2, 0, e)
		m.Set(1, 2, f)
		m.Set(2, 1, f)
		eig, err := SymmetricEigen(m, 0)
		if err != nil {
			return false
		}
		sum := eig.Values[0] + eig.Values[1] + eig.Values[2]
		return almost(sum, a+b+c, 1e-6*(1+math.Abs(a+b+c)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
