package linalg

// This file holds the top-k symmetric eigensolver the ordination hot path
// uses. Classical MDS only consumes the two dominant eigenpairs of the
// double-centered Gram matrix, but SymmetricEigen (cyclic Jacobi) pays for
// the full spectrum — O(n³) per sweep over a few-hundred-row matrix, the
// single largest cost in the Figure 1 pipeline. TopEigen computes just the
// leading eigenpairs by block orthogonal iteration with Rayleigh–Ritz
// extraction: one n²·b block mat-vec per iteration instead of n³ work,
// converging in a few dozen iterations on clustered root-store spectra.
// SymmetricEigen remains the reference (and the fallback when iteration
// does not converge), so results are never worse than the full
// decomposition — only cheaper.

import (
	"fmt"
	"math"
)

// TopEigen returns the k algebraically largest eigenpairs of the symmetric
// matrix a, sorted by descending eigenvalue. Values has length k and
// Vectors is n×k with matching unit-eigenvector columns. Matrices with
// n ≤ 3k+8 (where block iteration cannot beat a full decomposition) and
// runs that fail to converge fall back to SymmetricEigen.
func TopEigen(a *Matrix, k int) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: eigen needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if k <= 0 || k > n {
		k = n
	}
	block := k + 4
	if n <= 3*block || n < 16 {
		return topEigenExact(a, k)
	}
	if !a.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("linalg: eigen needs a symmetric matrix")
	}
	if gershgorin(a) == 0 { // zero matrix: every unit vector is an eigenvector
		return topEigenExact(a, k)
	}

	// Orthogonal iteration converges to the dominant-by-magnitude
	// subspace, but MDS wants the largest-algebraic eigenvalues. A shift
	// σ ≥ |λmin| reconciles the two; it is estimated adaptively after a
	// short unshifted warm-up (the Gershgorin bound can exceed the
	// spectral radius by a large factor and would stall convergence).
	const warmup = 8
	sigma := 0.0

	x := seedBlock(n, block)
	orthonormalize(x, 0)
	y := NewMatrix(n, block)     // (a+σI)·q
	h := NewMatrix(block, block) // Rayleigh quotient qᵀ(a+σI)q
	const maxIter = 300
	const tol = 1e-11

	for iter := 0; iter < maxIter; iter++ {
		shiftedMul(a, sigma, x, y)
		// h = xᵀ y, symmetrized against round-off.
		for i := 0; i < block; i++ {
			for j := i; j < block; j++ {
				var s float64
				for r := 0; r < n; r++ {
					s += x.Data[r*block+i] * y.Data[r*block+j]
				}
				h.Data[i*block+j] = s
				h.Data[j*block+i] = s
			}
		}
		small, err := SymmetricEigen(h, 0)
		if err != nil {
			return topEigenExact(a, k)
		}
		// Ritz vectors: x ← x·W, and their images y·W for the residual
		// check, column by column to avoid another block mat-vec.
		xw := NewMatrix(n, block)
		yw := NewMatrix(n, block)
		for r := 0; r < n; r++ {
			xrow := x.Data[r*block : (r+1)*block]
			yrow := y.Data[r*block : (r+1)*block]
			for c := 0; c < block; c++ {
				var sx, sy float64
				for m := 0; m < block; m++ {
					w := small.Vectors.Data[m*block+c]
					sx += xrow[m] * w
					sy += yrow[m] * w
				}
				xw.Data[r*block+c] = sx
				yw.Data[r*block+c] = sy
			}
		}
		x, y = xw, yw

		if iter == warmup {
			// Ritz values now approximate the dominant eigenvalues of
			// both signs. If any are negative, shift just past the
			// most-negative estimate so largest-algebraic becomes
			// dominant; keep iterating with the same (adapted) block.
			if min := small.Values[block-1] - sigma; min < 0 {
				sigma = -1.25 * min
			}
		} else if iter > warmup {
			// Converged when the top-k Ritz pairs have small residuals
			// ‖(a+σI)v − θv‖ relative to the spectrum scale.
			scale := math.Abs(small.Values[0])
			if scale == 0 {
				scale = 1
			}
			done := true
			for c := 0; c < k; c++ {
				theta := small.Values[c]
				var res float64
				for r := 0; r < n; r++ {
					d := y.Data[r*block+c] - theta*x.Data[r*block+c]
					res += d * d
				}
				if math.Sqrt(res) > tol*scale {
					done = false
					break
				}
			}
			if done {
				eig := &Eigen{Values: make([]float64, k), Vectors: NewMatrix(n, k)}
				for c := 0; c < k; c++ {
					eig.Values[c] = small.Values[c] - sigma
					for r := 0; r < n; r++ {
						eig.Vectors.Set(r, c, x.Data[r*block+c])
					}
				}
				return eig, nil
			}
		}
		// Advance the subspace: the next block is the orthonormalized
		// image (a+σI)·x·W, not the rotated x itself (which spans the
		// same subspace and would never converge).
		x, y = y, x
		orthonormalize(x, iter+1)
	}
	return topEigenExact(a, k)
}

// topEigenExact is the reference path: full Jacobi, truncated to k pairs.
func topEigenExact(a *Matrix, k int) (*Eigen, error) {
	full, err := SymmetricEigen(a, 0)
	if err != nil {
		return nil, err
	}
	if k >= a.Rows {
		return full, nil
	}
	eig := &Eigen{Values: full.Values[:k], Vectors: NewMatrix(a.Rows, k)}
	for c := 0; c < k; c++ {
		for r := 0; r < a.Rows; r++ {
			eig.Vectors.Set(r, c, full.Vectors.At(r, c))
		}
	}
	return eig, nil
}

// gershgorin returns max_i Σ_j |a_ij|, an upper bound on the spectral
// radius.
func gershgorin(a *Matrix) float64 {
	var bound float64
	n := a.Rows
	for i := 0; i < n; i++ {
		var s float64
		for _, v := range a.Data[i*n : (i+1)*n] {
			s += math.Abs(v)
		}
		if s > bound {
			bound = s
		}
	}
	return bound
}

// shiftedMul computes y = (a + σI)·x for n×b column blocks.
func shiftedMul(a *Matrix, sigma float64, x, y *Matrix) {
	n, b := x.Rows, x.Cols
	for i := 0; i < n; i++ {
		arow := a.Data[i*n : (i+1)*n]
		yrow := y.Data[i*b : (i+1)*b]
		for c := 0; c < b; c++ {
			yrow[c] = sigma * x.Data[i*b+c]
		}
		for j, aij := range arow {
			if aij == 0 {
				continue
			}
			xrow := x.Data[j*b : (j+1)*b]
			for c := 0; c < b; c++ {
				yrow[c] += aij * xrow[c]
			}
		}
	}
}

// seedBlock builds a deterministic pseudo-random n×b starting block (an
// xorshift stream), so results are reproducible run to run.
func seedBlock(n, b int) *Matrix {
	x := NewMatrix(n, b)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range x.Data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		x.Data[i] = float64(state%2048)/1024 - 1
	}
	return x
}

// orthonormalize runs modified Gram–Schmidt with one re-orthogonalization
// pass over the columns of x, replacing any numerically dependent column
// with a fresh deterministic vector (salted by round).
func orthonormalize(x *Matrix, round int) {
	n, b := x.Rows, x.Cols
	col := make([]float64, n)
	for c := 0; c < b; c++ {
		for r := 0; r < n; r++ {
			col[r] = x.Data[r*b+c]
		}
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < c; p++ {
				var dot float64
				for r := 0; r < n; r++ {
					dot += col[r] * x.Data[r*b+p]
				}
				for r := 0; r < n; r++ {
					col[r] -= dot * x.Data[r*b+p]
				}
			}
		}
		var norm float64
		for _, v := range col {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			// Dependent column: reseed deterministically and redo it.
			state := uint64(0xD1B54A32D192ED03) ^ uint64(round*131+c*17+1)
			for r := range col {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				col[r] = float64(state%2048)/1024 - 1
			}
			for pass := 0; pass < 2; pass++ {
				for p := 0; p < c; p++ {
					var dot float64
					for r := 0; r < n; r++ {
						dot += col[r] * x.Data[r*b+p]
					}
					for r := 0; r < n; r++ {
						col[r] -= dot * x.Data[r*b+p]
					}
				}
			}
			norm = 0
			for _, v := range col {
				norm += v * v
			}
			norm = math.Sqrt(norm)
		}
		for r := 0; r < n; r++ {
			x.Data[r*b+c] = col[r] / norm
		}
	}
}
