package linalg

import (
	"fmt"
	"math"
)

// KMeansResult is the outcome of a k-means run.
type KMeansResult struct {
	// Assignments maps each point index to its cluster id in [0,k).
	Assignments []int
	// Centroids holds the final cluster centres, one row per cluster.
	Centroids *Matrix
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is how many Lloyd iterations ran before convergence.
	Iterations int
}

// rng is a small deterministic PRNG (xorshift64*) so clustering is
// reproducible without math/rand seeding ceremony.
type rng uint64

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// KMeans clusters the rows of points into k clusters using k-means++
// seeding and Lloyd iterations. It is deterministic for a given seed.
func KMeans(points *Matrix, k int, seed uint64, maxIter int) (*KMeansResult, error) {
	n, dim := points.Rows, points.Cols
	if k <= 0 || k > n {
		return nil, fmt.Errorf("linalg: k=%d out of range for %d points", k, n)
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	r := rng(seed | 1)

	dist2 := func(i int, centroid []float64) float64 {
		var s float64
		for d := 0; d < dim; d++ {
			diff := points.At(i, d) - centroid[d]
			s += diff * diff
		}
		return s
	}

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	first := r.intn(n)
	centroids = append(centroids, rowOf(points, first))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = dist2(i, centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = r.intn(n)
		} else {
			target := r.float() * total
			var acc float64
			for i, d := range minDist {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, rowOf(points, pick))
		for i := range minDist {
			if d := dist2(i, centroids[len(centroids)-1]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int, n)
	var iterations int
	for iterations = 0; iterations < maxIter; iterations++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := dist2(i, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i := 0; i < n; i++ {
			counts[assign[i]]++
			for d := 0; d < dim; d++ {
				sums[assign[i]][d] += points.At(i, d)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if d := dist2(i, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = rowOf(points, far)
				changed = true
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}

	res := &KMeansResult{Assignments: assign, Centroids: NewMatrix(k, dim), Iterations: iterations}
	for c := 0; c < k; c++ {
		for d := 0; d < dim; d++ {
			res.Centroids.Set(c, d, centroids[c][d])
		}
	}
	for i := 0; i < n; i++ {
		res.Inertia += dist2(i, centroids[assign[i]])
	}
	return res, nil
}

func rowOf(m *Matrix, i int) []float64 {
	out := make([]float64, m.Cols)
	for d := 0; d < m.Cols; d++ {
		out[d] = m.At(i, d)
	}
	return out
}
