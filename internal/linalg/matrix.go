// Package linalg provides the small dense-matrix toolkit the ordination
// analysis needs: symmetric eigendecomposition (cyclic Jacobi), double
// centering, and k-means clustering. Everything is plain float64 slices —
// the matrices involved (one row per root-store snapshot, a few hundred
// rows) are far below the scale where cache blocking or BLAS would matter.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// IsSymmetric reports whether the matrix is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// DoubleCenter computes B = -1/2 * J * D2 * J where D2 is the matrix of
// squared entries of d and J = I - 11'/n, the Gram-matrix construction of
// classical MDS (Torgerson scaling).
func DoubleCenter(d *Matrix) (*Matrix, error) {
	if d.Rows != d.Cols {
		return nil, fmt.Errorf("linalg: distance matrix must be square, got %dx%d", d.Rows, d.Cols)
	}
	n := d.Rows
	b := NewMatrix(n, n)
	rowMean := make([]float64, n)
	colMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sq := d.At(i, j) * d.At(i, j)
			b.Set(i, j, sq)
			rowMean[i] += sq
			colMean[j] += sq
			total += sq
		}
	}
	for i := range rowMean {
		rowMean[i] /= float64(n)
		colMean[i] /= float64(n)
	}
	total /= float64(n * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, -0.5*(b.At(i, j)-rowMean[i]-colMean[j]+total))
		}
	}
	return b, nil
}

// Eigen holds the result of a symmetric eigendecomposition, sorted by
// descending eigenvalue.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // columns are unit eigenvectors
}

// SymmetricEigen decomposes a symmetric matrix with the cyclic Jacobi
// method. It returns eigenvalues (descending) and matching eigenvectors.
func SymmetricEigen(a *Matrix, maxSweeps int) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: eigen needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("linalg: eigen needs a symmetric matrix")
	}
	n := a.Rows
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	offdiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return s
	}

	const eps = 1e-12
	for sweep := 0; sweep < maxSweeps && offdiag() > eps; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	for i := 1; i < n; i++ { // insertion sort, n is small
		for j := i; j > 0 && pairs[j].val > pairs[j-1].val; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
	eig := &Eigen{Values: make([]float64, n), Vectors: NewMatrix(n, n)}
	for c, p := range pairs {
		eig.Values[c] = p.val
		for r := 0; r < n; r++ {
			eig.Vectors.Set(r, c, v.At(r, p.idx))
		}
	}
	return eig, nil
}
