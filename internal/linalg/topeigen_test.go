package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSymmetric builds a random symmetric matrix with a few dominant
// eigenvalues, the shape the double-centered Gram matrices have.
func randomSymmetric(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64() / float64(n)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	// Plant dominant structure: a couple of strong rank-1 components.
	for c := 0; c < 3; c++ {
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = rng.NormFloat64()
		}
		var norm float64
		for _, v := range vec {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		scale := float64(20 - 5*c)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Data[i*n+j] += scale * vec[i] * vec[j] / (norm * norm)
			}
		}
	}
	return m
}

// TestTopEigenMatchesJacobi is the property test: on random symmetric
// matrices the iterative solver must agree with the full Jacobi reference
// on the leading eigenvalues and eigenspaces.
func TestTopEigenMatchesJacobi(t *testing.T) {
	for _, n := range []int{40, 80, 150} {
		for seed := int64(0); seed < 3; seed++ {
			m := randomSymmetric(n, seed)
			k := 2
			got, err := TopEigen(m, k)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			want, err := SymmetricEigen(m, 0)
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < k; c++ {
				if math.Abs(got.Values[c]-want.Values[c]) > 1e-7*math.Max(1, math.Abs(want.Values[c])) {
					t.Errorf("n=%d seed=%d: eigenvalue %d = %g, want %g", n, seed, c, got.Values[c], want.Values[c])
				}
				// Eigenvector agreement up to sign (planted spectra here
				// are non-degenerate).
				var dot float64
				for r := 0; r < n; r++ {
					dot += got.Vectors.At(r, c) * want.Vectors.At(r, c)
				}
				if math.Abs(math.Abs(dot)-1) > 1e-6 {
					t.Errorf("n=%d seed=%d: eigenvector %d alignment |dot| = %g", n, seed, c, math.Abs(dot))
				}
			}
		}
	}
}

// TestTopEigenResidual checks the defining property A·v = λ·v directly on
// a larger matrix, independent of the reference decomposition.
func TestTopEigenResidual(t *testing.T) {
	n := 300
	m := randomSymmetric(n, 99)
	eig, err := TopEigen(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		var res, scale float64
		for i := 0; i < n; i++ {
			var av float64
			for j := 0; j < n; j++ {
				av += m.At(i, j) * eig.Vectors.At(j, c)
			}
			d := av - eig.Values[c]*eig.Vectors.At(i, c)
			res += d * d
			scale += av * av
		}
		if math.Sqrt(res) > 1e-6*math.Max(1, math.Sqrt(scale)) {
			t.Errorf("eigenpair %d residual %g too large", c, math.Sqrt(res))
		}
	}
	if eig.Values[0] < eig.Values[1] {
		t.Error("eigenvalues not descending")
	}
}

// TestTopEigenSmallAndEdge covers the exact-fallback paths.
func TestTopEigenSmallAndEdge(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 2)
	m.Set(1, 1, 1)
	m.Set(2, 2, -1)
	eig, err := TopEigen(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-2) > 1e-9 || math.Abs(eig.Values[1]-1) > 1e-9 {
		t.Errorf("diagonal eigenvalues = %v", eig.Values)
	}
	zero := NewMatrix(50, 50)
	eig, err = TopEigen(zero, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eig.Values[0] != 0 || eig.Values[1] != 0 {
		t.Errorf("zero-matrix eigenvalues = %v", eig.Values)
	}
	if _, err := TopEigen(NewMatrix(2, 3), 1); err == nil {
		t.Error("non-square must fail")
	}
}
