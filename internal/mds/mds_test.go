package mds

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

// distMatrixFromPoints builds the Euclidean distance matrix of 2-D points.
func distMatrixFromPoints(pts [][2]float64) *linalg.Matrix {
	n := len(pts)
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			d.Set(i, j, math.Hypot(dx, dy))
		}
	}
	return d
}

var squarePoints = [][2]float64{{0, 0}, {4, 0}, {4, 4}, {0, 4}}

func TestClassicalRecoversEuclideanConfig(t *testing.T) {
	d := distMatrixFromPoints(squarePoints)
	res, err := Classical(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The embedding is unique up to rotation/reflection, so compare
	// pairwise distances instead of coordinates.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			got := res.EmbeddedDistance(i, j)
			want := d.At(i, j)
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("distance (%d,%d) = %f, want %f", i, j, got, want)
			}
		}
	}
	if res.Stress1 > 1e-6 {
		t.Errorf("stress1 = %g for perfectly embeddable distances", res.Stress1)
	}
}

func TestSMACOFImprovesOrMatchesClassical(t *testing.T) {
	// Non-Euclidean distances (violating triangle inequality slightly):
	// SMACOF should still converge and not be worse than classical.
	n := 5
	d := linalg.NewMatrix(n, n)
	vals := [][]float64{
		{0, 1, 2, 3, 1},
		{1, 0, 1, 2.5, 2},
		{2, 1, 0, 1, 2.2},
		{3, 2.5, 1, 0, 1},
		{1, 2, 2.2, 1, 0},
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Set(i, j, vals[i][j])
		}
	}
	classical, err := Classical(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	smacof, err := SMACOF(d, Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if smacof.Stress > classical.Stress+1e-9 {
		t.Errorf("SMACOF stress %g worse than classical %g", smacof.Stress, classical.Stress)
	}
	if smacof.Iterations == 0 {
		t.Error("SMACOF should iterate at least once")
	}
}

func TestSMACOFPreservesClusterStructure(t *testing.T) {
	// Two groups with tiny intra-group distance and large inter-group
	// distance must embed far apart — the property Figure 1 relies on.
	n := 8
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sameGroup := (i < 4) == (j < 4)
			if sameGroup {
				d.Set(i, j, 0.05)
			} else {
				d.Set(i, j, 1.0)
			}
		}
	}
	res, err := SMACOF(d, Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := res.EmbeddedDistance(i, j)
			if (i < 4) == (j < 4) {
				intra += dist
				nIntra++
			} else {
				inter += dist
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if inter < 5*intra {
		t.Errorf("cluster separation poor: intra=%f inter=%f", intra, inter)
	}
}

func TestValidation(t *testing.T) {
	bad := linalg.NewMatrix(2, 3)
	if _, err := Classical(bad, 2); err == nil {
		t.Error("non-square should fail")
	}
	neg := linalg.NewMatrix(2, 2)
	neg.Set(0, 1, -1)
	neg.Set(1, 0, -1)
	if _, err := SMACOF(neg, Config{}); err == nil {
		t.Error("negative distance should fail")
	}
	diag := linalg.NewMatrix(2, 2)
	diag.Set(0, 0, 1)
	if _, err := Classical(diag, 2); err == nil {
		t.Error("nonzero diagonal should fail")
	}
	asym := linalg.NewMatrix(2, 2)
	asym.Set(0, 1, 1)
	asym.Set(1, 0, 2)
	if _, err := Classical(asym, 2); err == nil {
		t.Error("asymmetric should fail")
	}
}

func TestSMACOFEmptyAndSingle(t *testing.T) {
	empty, err := SMACOF(linalg.NewMatrix(0, 0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Points.Rows != 0 {
		t.Error("empty input should give empty embedding")
	}
	single, err := SMACOF(linalg.NewMatrix(1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if single.Points.Rows != 1 {
		t.Error("single point embedding wrong")
	}
	if single.Stress != 0 {
		t.Errorf("single point stress = %f", single.Stress)
	}
}

func TestIdenticalObjectsEmbedTogether(t *testing.T) {
	// Distance 0 between objects 0 and 1; they must land on the same spot.
	n := 3
	d := linalg.NewMatrix(n, n)
	d.Set(0, 2, 1)
	d.Set(2, 0, 1)
	d.Set(1, 2, 1)
	d.Set(2, 1, 1)
	res, err := SMACOF(d, Config{Dims: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.EmbeddedDistance(0, 1); got > 1e-6 {
		t.Errorf("identical objects embedded %f apart", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Dims != 2 || c.MaxIter != 300 || c.Epsilon != 1e-6 {
		t.Errorf("defaults = %+v", c)
	}
}

func BenchmarkSMACOF50(b *testing.B) {
	// 50 synthetic snapshots-worth of distances.
	n := 50
	d := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := math.Abs(math.Sin(float64(i*31+j*17))) + 0.01
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SMACOF(d, Config{Dims: 2, MaxIter: 50}); err != nil {
			b.Fatal(err)
		}
	}
}
