// Package mds implements multidimensional scaling: the ordination technique
// the paper uses (Figure 1) to project pairwise Jaccard distances between
// root-store snapshots into two dimensions while preserving inter-snapshot
// distances as well as possible.
//
// Two variants are provided. Classical (Torgerson) scaling double-centres
// the squared distance matrix and takes the top eigenvectors; it is closed
// form and serves as the initial configuration. SMACOF stress majorization
// — the algorithm behind sklearn.manifold.MDS that the paper used — then
// iteratively minimizes raw stress via the Guttman transform.
package mds

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Config controls a SMACOF run.
type Config struct {
	// Dims is the embedding dimension (the paper uses 2).
	Dims int
	// MaxIter bounds Guttman iterations (default 300, sklearn's default).
	MaxIter int
	// Epsilon is the relative stress-improvement stopping threshold
	// (default 1e-6).
	Epsilon float64
}

func (c Config) withDefaults() Config {
	if c.Dims <= 0 {
		c.Dims = 2
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 300
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-6
	}
	return c
}

// Result is an MDS embedding.
type Result struct {
	// Points has one row per object, Dims columns.
	Points *linalg.Matrix
	// Stress is the final raw stress (sum of squared residuals between
	// embedded and target distances).
	Stress float64
	// Stress1 is Kruskal's normalized stress-1.
	Stress1 float64
	// Iterations is the number of Guttman transforms applied.
	Iterations int
}

// validateDistances checks d is square, symmetric, zero-diagonal and
// non-negative.
func validateDistances(d *linalg.Matrix) error {
	if d.Rows != d.Cols {
		return fmt.Errorf("mds: distance matrix must be square, got %dx%d", d.Rows, d.Cols)
	}
	for i := 0; i < d.Rows; i++ {
		if d.At(i, i) != 0 {
			return fmt.Errorf("mds: nonzero diagonal at %d", i)
		}
		for j := 0; j < d.Cols; j++ {
			v := d.At(i, j)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("mds: invalid distance %v at (%d,%d)", v, i, j)
			}
			if math.Abs(v-d.At(j, i)) > 1e-9 {
				return fmt.Errorf("mds: asymmetric at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// Classical computes the Torgerson closed-form embedding into dims
// dimensions.
func Classical(d *linalg.Matrix, dims int) (*Result, error) {
	if err := validateDistances(d); err != nil {
		return nil, err
	}
	if dims <= 0 {
		dims = 2
	}
	n := d.Rows
	if dims > n {
		dims = n
	}
	b, err := linalg.DoubleCenter(d)
	if err != nil {
		return nil, err
	}
	// Only the top dims eigenpairs are consumed; TopEigen gets them by
	// block orthogonal iteration instead of a full O(n³) decomposition.
	eig, err := linalg.TopEigen(b, dims)
	if err != nil {
		return nil, err
	}
	pts := linalg.NewMatrix(n, dims)
	for c := 0; c < dims; c++ {
		lambda := eig.Values[c]
		if lambda < 0 {
			lambda = 0 // negative eigenvalues: non-Euclidean residue
		}
		scale := math.Sqrt(lambda)
		for r := 0; r < n; r++ {
			pts.Set(r, c, eig.Vectors.At(r, c)*scale)
		}
	}
	res := &Result{Points: pts}
	res.Stress, res.Stress1 = stress(d, pts)
	return res, nil
}

// SMACOF minimizes stress starting from the classical embedding.
func SMACOF(d *linalg.Matrix, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validateDistances(d); err != nil {
		return nil, err
	}
	n := d.Rows
	if n == 0 {
		return &Result{Points: linalg.NewMatrix(0, cfg.Dims)}, nil
	}
	init, err := Classical(d, cfg.Dims)
	if err != nil {
		return nil, err
	}
	x := init.Points.Clone()
	prevStress, _ := stress(d, x)

	iterations := 0
	for iter := 0; iter < cfg.MaxIter; iter++ {
		x = guttman(d, x)
		cur, _ := stress(d, x)
		iterations = iter + 1
		if prevStress > 0 && (prevStress-cur)/prevStress < cfg.Epsilon {
			prevStress = cur
			break
		}
		prevStress = cur
	}
	res := &Result{Points: x, Iterations: iterations}
	res.Stress, res.Stress1 = stress(d, x)
	return res, nil
}

// guttman applies one Guttman transform: X' = (1/n) B(X) X where
// B(X)_ij = -d_ij / dist_ij for i != j (0 when dist is 0) and
// B_ii = -sum_{j != i} B_ij.
func guttman(d *linalg.Matrix, x *linalg.Matrix) *linalg.Matrix {
	n, dims := x.Rows, x.Cols
	next := linalg.NewMatrix(n, dims)
	brow := make([]float64, n)
	for i := 0; i < n; i++ {
		drow := d.Data[i*n : (i+1)*n]
		var diag float64
		for j := 0; j < n; j++ {
			if i == j {
				brow[j] = 0
				continue
			}
			dist := pointDist(x, i, j)
			if dist > 1e-12 {
				brow[j] = -drow[j] / dist
			} else {
				brow[j] = 0
			}
			diag -= brow[j]
		}
		brow[i] = diag
		out := next.Data[i*dims : (i+1)*dims]
		for j, bj := range brow {
			if bj == 0 {
				continue
			}
			xrow := x.Data[j*dims : (j+1)*dims]
			for c := 0; c < dims; c++ {
				out[c] += bj * xrow[c]
			}
		}
		for c := 0; c < dims; c++ {
			out[c] /= float64(n)
		}
	}
	return next
}

func pointDist(x *linalg.Matrix, i, j int) float64 {
	var s float64
	ri, rj := i*x.Cols, j*x.Cols
	for c := 0; c < x.Cols; c++ {
		diff := x.Data[ri+c] - x.Data[rj+c]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// stress returns raw stress and Kruskal stress-1 for an embedding.
func stress(d *linalg.Matrix, x *linalg.Matrix) (raw, stress1 float64) {
	n := d.Rows
	var num, den float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := pointDist(x, i, j)
			diff := d.At(i, j) - dist
			num += diff * diff
			den += d.At(i, j) * d.At(i, j)
		}
	}
	raw = num
	if den > 0 {
		stress1 = math.Sqrt(num / den)
	}
	return raw, stress1
}

// EmbeddedDistance returns the distance between two embedded points.
func (r *Result) EmbeddedDistance(i, j int) float64 { return pointDist(r.Points, i, j) }
