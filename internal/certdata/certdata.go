// Package certdata reads and writes Mozilla NSS certdata.txt trust-anchor
// files, the PKCS#11-flavoured text format NSS has used since 2000 (§3 of
// the paper). A file is a sequence of objects, each a list of attribute
// lines; the objects of interest are certificates (CKO_CERTIFICATE, raw DER
// in CKA_VALUE) and trust objects (CKO_NSS_TRUST, keyed by issuer+serial,
// carrying per-purpose CK_TRUST levels). NSS's partial distrust
// (CKA_NSS_SERVER_DISTRUST_AFTER / CKA_NSS_EMAIL_DISTRUST_AFTER) lives on
// the certificate object as an octal-encoded GeneralizedTime-like string.
package certdata

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/store"
)

// Attribute value types that appear in certdata.txt.
const (
	typeObjectClass = "CK_OBJECT_CLASS"
	typeBBool       = "CK_BBOOL"
	typeUTF8        = "UTF8"
	typeCertType    = "CK_CERTIFICATE_TYPE"
	typeTrust       = "CK_TRUST"
	typeMultiline   = "MULTILINE_OCTAL"
)

// Object classes.
const (
	classCertificate = "CKO_CERTIFICATE"
	classTrust       = "CKO_NSS_TRUST"
	classBuiltinROM  = "CKO_NSS_BUILTIN_ROOT_LIST"
)

// Trust constants.
const (
	trustedDelegator = "CKT_NSS_TRUSTED_DELEGATOR"
	mustVerifyTrust  = "CKT_NSS_MUST_VERIFY_TRUST"
	notTrusted       = "CKT_NSS_NOT_TRUSTED"
	trustUnknown     = "CKT_NSS_TRUST_UNKNOWN"
)

// distrustTimeLayout is the CK_DATE-ish layout NSS uses for the
// *_DISTRUST_AFTER attributes: YYMMDDHHMMSSZ.
const distrustTimeLayout = "060102150405Z"

// attribute is one parsed attribute line (plus multiline payload).
type attribute struct {
	Name  string
	Type  string
	Value string // for UTF8/BBOOL/CLASS/TRUST values
	Data  []byte // for MULTILINE_OCTAL payloads
}

// object is a parsed PKCS#11 object: attribute list in file order.
type object struct {
	attrs []attribute
}

func (o *object) get(name string) (attribute, bool) {
	for _, a := range o.attrs {
		if a.Name == name {
			return a, true
		}
	}
	return attribute{}, false
}

func (o *object) class() string {
	if a, ok := o.get("CKA_CLASS"); ok {
		return a.Value
	}
	return ""
}

// ParseResult is the outcome of parsing a certdata.txt file.
type ParseResult struct {
	// Entries are the certificates with their trust metadata applied.
	Entries []*store.TrustEntry
	// OrphanTrust counts trust objects whose issuer+serial matched no
	// certificate object — NSS uses these to distrust certificates it
	// does not ship (e.g. the DigiNotar tombstones).
	OrphanTrust int
	// Warnings records recoverable oddities encountered while parsing.
	Warnings []string
}

// Parse reads a certdata.txt stream.
func Parse(r io.Reader) (*ParseResult, error) {
	objects, err := lex(r)
	if err != nil {
		return nil, err
	}

	res := &ParseResult{}
	// Certificates keyed by issuer+serial for trust-object matching.
	type certRec struct {
		entry *store.TrustEntry
	}
	byIssuerSerial := make(map[string]*certRec)

	for _, o := range objects {
		if o.class() != classCertificate {
			continue
		}
		val, ok := o.get("CKA_VALUE")
		if !ok {
			res.Warnings = append(res.Warnings, "certificate object without CKA_VALUE")
			continue
		}
		entry, err := store.NewEntry(val.Data)
		if err != nil {
			res.Warnings = append(res.Warnings, fmt.Sprintf("unparseable certificate: %v", err))
			continue
		}
		if lbl, ok := o.get("CKA_LABEL"); ok {
			entry.Label = lbl.Value
		}
		if att, ok := o.get("CKA_NSS_SERVER_DISTRUST_AFTER"); ok && att.Type == typeMultiline {
			if t, err := parseDistrustTime(att.Data); err == nil {
				entry.SetDistrustAfter(store.ServerAuth, t)
			} else {
				res.Warnings = append(res.Warnings, fmt.Sprintf("bad server distrust-after for %q: %v", entry.Label, err))
			}
		}
		if att, ok := o.get("CKA_NSS_EMAIL_DISTRUST_AFTER"); ok && att.Type == typeMultiline {
			if t, err := parseDistrustTime(att.Data); err == nil {
				entry.SetDistrustAfter(store.EmailProtection, t)
			} else {
				res.Warnings = append(res.Warnings, fmt.Sprintf("bad email distrust-after for %q: %v", entry.Label, err))
			}
		}
		key := issuerSerialKeyFromObject(o, entry)
		byIssuerSerial[key] = &certRec{entry: entry}
		res.Entries = append(res.Entries, entry)
	}

	for _, o := range objects {
		if o.class() != classTrust {
			continue
		}
		key := issuerSerialKeyFromTrust(o)
		rec, ok := byIssuerSerial[key]
		if !ok {
			res.OrphanTrust++
			continue
		}
		applyTrust(o, rec.entry)
	}
	return res, nil
}

// issuerSerialKeyFromObject prefers the object's own CKA_ISSUER/SERIAL
// attributes, falling back to the parsed certificate.
func issuerSerialKeyFromObject(o *object, e *store.TrustEntry) string {
	iss, okI := o.get("CKA_ISSUER")
	ser, okS := o.get("CKA_SERIAL_NUMBER")
	if okI && okS {
		return string(iss.Data) + "|" + string(ser.Data)
	}
	return string(e.Cert.RawIssuer) + "|" + string(rawSerial(e))
}

func issuerSerialKeyFromTrust(o *object) string {
	iss, _ := o.get("CKA_ISSUER")
	ser, _ := o.get("CKA_SERIAL_NUMBER")
	return string(iss.Data) + "|" + string(ser.Data)
}

// rawSerial re-encodes the certificate serial as DER INTEGER bytes, which is
// how certdata stores CKA_SERIAL_NUMBER.
func rawSerial(e *store.TrustEntry) []byte {
	b, err := asn1MarshalInt(e.Cert.SerialNumber)
	if err != nil {
		return nil
	}
	return b
}

func applyTrust(o *object, e *store.TrustEntry) {
	set := func(attrName string, p store.Purpose) {
		a, ok := o.get(attrName)
		if !ok {
			return
		}
		switch a.Value {
		case trustedDelegator:
			e.SetTrust(p, store.Trusted)
		case mustVerifyTrust:
			e.SetTrust(p, store.MustVerify)
		case notTrusted:
			e.SetTrust(p, store.Distrusted)
		case trustUnknown:
			e.SetTrust(p, store.Unspecified)
		}
	}
	set("CKA_TRUST_SERVER_AUTH", store.ServerAuth)
	set("CKA_TRUST_EMAIL_PROTECTION", store.EmailProtection)
	set("CKA_TRUST_CODE_SIGNING", store.CodeSigning)
}

func parseDistrustTime(data []byte) (time.Time, error) {
	return time.Parse(distrustTimeLayout, string(data))
}

// lex splits the stream into objects. Grammar: '#' comments, blank lines,
// a BEGINDATA marker, then attribute lines "NAME TYPE [VALUE]"; a
// MULTILINE_OCTAL type is followed by octal-escape lines until END. A new
// CKA_CLASS attribute begins a new object.
func lex(r io.Reader) ([]*object, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var objects []*object
	var cur *object
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || line == "BEGINDATA" {
			continue
		}
		if strings.HasPrefix(line, "CVS_ID") {
			continue // ancient header in early NSS versions
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) < 2 {
			return nil, fmt.Errorf("certdata: line %d: malformed attribute %q", lineNo, line)
		}
		attr := attribute{Name: fields[0], Type: fields[1]}
		switch attr.Type {
		case typeMultiline:
			data, consumed, err := readOctal(sc)
			lineNo += consumed
			if err != nil {
				return nil, fmt.Errorf("certdata: line %d: %v", lineNo, err)
			}
			attr.Data = data
		case typeUTF8:
			if len(fields) < 3 {
				return nil, fmt.Errorf("certdata: line %d: UTF8 attribute missing value", lineNo)
			}
			v, err := unquote(fields[2])
			if err != nil {
				return nil, fmt.Errorf("certdata: line %d: %v", lineNo, err)
			}
			attr.Value = v
		default:
			if len(fields) >= 3 {
				attr.Value = strings.TrimSpace(fields[2])
			}
		}
		if attr.Name == "CKA_CLASS" {
			cur = &object{}
			objects = append(objects, cur)
		}
		if cur == nil {
			return nil, fmt.Errorf("certdata: line %d: attribute before any CKA_CLASS", lineNo)
		}
		cur.attrs = append(cur.attrs, attr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("certdata: read: %w", err)
	}
	return objects, nil
}

// readOctal consumes `\ooo` escape lines until END.
func readOctal(sc *bufio.Scanner) ([]byte, int, error) {
	var buf bytes.Buffer
	consumed := 0
	for sc.Scan() {
		consumed++
		line := strings.TrimSpace(sc.Text())
		if line == "END" {
			return buf.Bytes(), consumed, nil
		}
		i := 0
		for i < len(line) {
			if line[i] != '\\' {
				return nil, consumed, fmt.Errorf("unexpected byte %q in octal block", line[i])
			}
			if i+3 >= len(line) {
				return nil, consumed, fmt.Errorf("truncated octal escape %q", line[i:])
			}
			var v int
			for j := 1; j <= 3; j++ {
				c := line[i+j]
				if c < '0' || c > '7' {
					return nil, consumed, fmt.Errorf("bad octal digit %q", c)
				}
				v = v*8 + int(c-'0')
			}
			if v > 0xFF {
				return nil, consumed, fmt.Errorf("octal escape out of range: %d", v)
			}
			buf.WriteByte(byte(v))
			i += 4
		}
	}
	return nil, consumed, fmt.Errorf("octal block not terminated by END")
}

func unquote(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("UTF8 value not quoted: %q", s)
	}
	return s[1 : len(s)-1], nil
}
