package certdata

import (
	"bytes"
	"testing"

	"repro/internal/store"
)

// FuzzParse hardens the certdata lexer/parser against malformed input: it
// must never panic, and whatever parses must re-marshal cleanly.
func FuzzParse(f *testing.F) {
	valid, err := MarshalBytes(sampleEntries(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(""))
	f.Add([]byte("BEGINDATA\n"))
	f.Add([]byte("# only a comment\n"))
	f.Add([]byte("BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\nCKA_VALUE MULTILINE_OCTAL\n\\060\\000\nEND\n"))
	f.Add([]byte("BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_NSS_TRUST\nCKA_TRUST_SERVER_AUTH CK_TRUST CKT_NSS_TRUSTED_DELEGATOR\n"))
	f.Add(bytes.Repeat([]byte("\\377"), 100))
	f.Add([]byte("CKA_LABEL UTF8 \"unterminated"))

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Parse(bytes.NewReader(data))
		if err != nil || res == nil {
			return
		}
		// Anything that parsed must marshal and re-parse losslessly in
		// entry count.
		out, err := MarshalBytes(res.Entries)
		if err != nil {
			t.Fatalf("marshal of parsed entries failed: %v", err)
		}
		res2, err := Parse(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(res2.Entries) != len(res.Entries) {
			t.Fatalf("entry count changed: %d -> %d", len(res.Entries), len(res2.Entries))
		}
		for i := range res.Entries {
			_ = res.Entries[i].TrustFor(store.ServerAuth)
		}
	})
}
