package certdata

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/certgen"
	"repro/internal/store"
)

var (
	pool      = certgen.NewKeyPool("certdata-test")
	onceRoots sync.Once
	cached    []*certgen.Root
)

func testRoots(t testing.TB, n int) []*certgen.Root {
	t.Helper()
	onceRoots.Do(func() {
		for i := 0; i < 8; i++ {
			r, err := certgen.NewRoot(pool, certgen.RootSpec{
				Name:      fmt.Sprintf("Certdata Root %d", i),
				Org:       "Certdata Org",
				Country:   "US",
				Key:       certgen.ECDSA256,
				Sig:       certgen.ECDSAWithSHA256,
				NotBefore: time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2035, 1, 1, 0, 0, 0, 0, time.UTC),
				KeyIndex:  i,
			})
			if err != nil {
				panic(err)
			}
			cached = append(cached, r)
		}
	})
	return cached[:n]
}

func sampleEntries(t testing.TB) []*store.TrustEntry {
	t.Helper()
	rs := testRoots(t, 3)
	e0, err := store.NewTrustedEntry(rs[0].DER, store.ServerAuth, store.EmailProtection)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := store.NewTrustedEntry(rs[1].DER, store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	e1.SetTrust(store.EmailProtection, store.MustVerify)
	e1.SetTrust(store.CodeSigning, store.Distrusted)
	e1.SetDistrustAfter(store.ServerAuth, time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC))
	e2, err := store.NewTrustedEntry(rs[2].DER, store.EmailProtection)
	if err != nil {
		t.Fatal(err)
	}
	e2.SetDistrustAfter(store.EmailProtection, time.Date(2019, 7, 15, 0, 0, 0, 0, time.UTC))
	return []*store.TrustEntry{e0, e1, e2}
}

func TestRoundTrip(t *testing.T) {
	in := sampleEntries(t)
	data, err := MarshalBytes(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	res, err := Parse(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("warnings: %v", res.Warnings)
	}
	if res.OrphanTrust != 0 {
		t.Fatalf("orphan trust objects: %d", res.OrphanTrust)
	}
	if len(res.Entries) != len(in) {
		t.Fatalf("entries = %d, want %d", len(res.Entries), len(in))
	}
	byFP := map[string]*store.TrustEntry{}
	for _, e := range res.Entries {
		byFP[e.Fingerprint.String()] = e
	}
	for _, want := range in {
		got, ok := byFP[want.Fingerprint.String()]
		if !ok {
			t.Fatalf("entry %s missing after round trip", want.Fingerprint.Short())
		}
		if got.Label != want.Label {
			t.Errorf("label %q != %q", got.Label, want.Label)
		}
		for _, p := range store.AllPurposes[:3] {
			if got.TrustFor(p) != want.TrustFor(p) {
				t.Errorf("%s trust for %s: %v != %v", want.Label, p, got.TrustFor(p), want.TrustFor(p))
			}
			wantDA, wantOK := want.DistrustAfterFor(p)
			gotDA, gotOK := got.DistrustAfterFor(p)
			if wantOK != gotOK || (wantOK && !wantDA.Equal(gotDA)) {
				t.Errorf("%s distrust-after for %s: (%v,%v) != (%v,%v)", want.Label, p, gotDA, gotOK, wantDA, wantOK)
			}
		}
		if !bytes.Equal(got.DER, want.DER) {
			t.Errorf("%s DER changed in round trip", want.Label)
		}
	}
}

func TestMarshalStable(t *testing.T) {
	in := sampleEntries(t)
	a, err := MarshalBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Marshal is not deterministic")
	}
}

func TestParseSkipsCommentsAndHeaders(t *testing.T) {
	in := sampleEntries(t)[:1]
	data, err := MarshalBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	// Inject legacy header cruft.
	doc := "# a comment\nCVS_ID \"@(#) old header\"\n" + string(data)
	res, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse with cruft: %v", err)
	}
	if len(res.Entries) != 1 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
}

func TestParseOrphanTrust(t *testing.T) {
	doc := `BEGINDATA
CKA_CLASS CK_OBJECT_CLASS CKO_NSS_TRUST
CKA_TOKEN CK_BBOOL CK_TRUE
CKA_LABEL UTF8 "Tombstone"
CKA_ISSUER MULTILINE_OCTAL
\060\003
END
CKA_SERIAL_NUMBER MULTILINE_OCTAL
\002\001\001
END
CKA_TRUST_SERVER_AUTH CK_TRUST CKT_NSS_NOT_TRUSTED
`
	res, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if res.OrphanTrust != 1 {
		t.Errorf("OrphanTrust = %d, want 1", res.OrphanTrust)
	}
	if len(res.Entries) != 0 {
		t.Errorf("entries = %d, want 0", len(res.Entries))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"attr before class", "CKA_TOKEN CK_BBOOL CK_TRUE\n"},
		{"malformed line", "BEGINDATA\nJUNKLINE\n"},
		{"unterminated octal", "BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\nCKA_VALUE MULTILINE_OCTAL\n\\060\\003\n"},
		{"bad octal digit", "BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\nCKA_VALUE MULTILINE_OCTAL\n\\069\nEND\n"},
		{"octal not escape", "BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\nCKA_VALUE MULTILINE_OCTAL\nabc\nEND\n"},
		{"truncated escape", "BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\nCKA_VALUE MULTILINE_OCTAL\n\\06\nEND\n"},
		{"unquoted utf8", "BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\nCKA_LABEL UTF8 unquoted\n"},
		{"utf8 missing value", "BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\nCKA_LABEL UTF8\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.doc)); err == nil {
				t.Errorf("Parse(%s) succeeded, want error", c.name)
			}
		})
	}
}

func TestParseUnparseableCertIsWarning(t *testing.T) {
	doc := `BEGINDATA
CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE
CKA_LABEL UTF8 "Broken"
CKA_VALUE MULTILINE_OCTAL
\001\002\003
END
`
	res, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(res.Warnings) != 1 {
		t.Errorf("warnings = %v, want 1 entry", res.Warnings)
	}
	if len(res.Entries) != 0 {
		t.Errorf("entries = %d", len(res.Entries))
	}
}

func TestParseCertObjectMissingValue(t *testing.T) {
	doc := "BEGINDATA\nCKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\nCKA_LABEL UTF8 \"NoValue\"\n"
	res, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) != 1 || len(res.Entries) != 0 {
		t.Errorf("warnings=%v entries=%d", res.Warnings, len(res.Entries))
	}
}

func TestDistrustTimeFormat(t *testing.T) {
	// NSS encodes e.g. 2020-09-01 00:00:00 UTC as "200901000000Z".
	ts := time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC)
	s := ts.Format(distrustTimeLayout)
	if s != "200901000000Z" {
		t.Errorf("distrust layout = %q", s)
	}
	back, err := parseDistrustTime([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ts) {
		t.Errorf("round trip = %v", back)
	}
}

func TestOctalEncodingWidth(t *testing.T) {
	in := sampleEntries(t)[:1]
	data, err := MarshalBytes(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "\\") {
			if len(line)%4 != 0 {
				t.Fatalf("octal line length %d not a multiple of 4: %q", len(line), line)
			}
			if len(line) > 16*4 {
				t.Fatalf("octal line too long: %q", line)
			}
		}
	}
}

func BenchmarkParse(b *testing.B) {
	data, err := MarshalBytes(sampleEntries(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshal(b *testing.B) {
	in := sampleEntries(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalBytes(in); err != nil {
			b.Fatal(err)
		}
	}
}
