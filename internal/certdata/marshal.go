package certdata

import (
	"bytes"
	"encoding/asn1"
	"fmt"
	"io"
	"math/big"

	"repro/internal/store"
)

func asn1MarshalInt(n *big.Int) ([]byte, error) {
	return asn1.Marshal(n)
}

// Marshal writes entries as a certdata.txt document that Parse round-trips.
// Entries are emitted in the given order: a certificate object followed by
// its trust object, mirroring NSS's file layout.
func Marshal(w io.Writer, entries []*store.TrustEntry) error {
	bw := &errWriter{w: w}
	bw.printf("# This file is auto-generated in the NSS certdata.txt format.\n")
	bw.printf("# Object classes: CKO_CERTIFICATE, CKO_NSS_TRUST\n\n")
	bw.printf("BEGINDATA\n")

	for _, e := range entries {
		serial, err := asn1MarshalInt(e.Cert.SerialNumber)
		if err != nil {
			return fmt.Errorf("certdata: marshal serial for %q: %w", e.Label, err)
		}

		bw.printf("\n# Certificate \"%s\"\n", e.Label)
		bw.printf("CKA_CLASS CK_OBJECT_CLASS CKO_CERTIFICATE\n")
		bw.printf("CKA_TOKEN CK_BBOOL CK_TRUE\n")
		bw.printf("CKA_PRIVATE CK_BBOOL CK_FALSE\n")
		bw.printf("CKA_MODIFIABLE CK_BBOOL CK_FALSE\n")
		bw.printf("CKA_LABEL UTF8 \"%s\"\n", e.Label)
		bw.printf("CKA_CERTIFICATE_TYPE CK_CERTIFICATE_TYPE CKC_X_509\n")
		bw.octal("CKA_SUBJECT", e.Cert.RawSubject)
		bw.printf("CKA_ID UTF8 \"0\"\n")
		bw.octal("CKA_ISSUER", e.Cert.RawIssuer)
		bw.octal("CKA_SERIAL_NUMBER", serial)
		bw.octal("CKA_VALUE", e.DER)
		if t, ok := e.DistrustAfterFor(store.ServerAuth); ok {
			bw.octal("CKA_NSS_SERVER_DISTRUST_AFTER", []byte(t.UTC().Format(distrustTimeLayout)))
		} else {
			bw.printf("CKA_NSS_SERVER_DISTRUST_AFTER CK_BBOOL CK_FALSE\n")
		}
		if t, ok := e.DistrustAfterFor(store.EmailProtection); ok {
			bw.octal("CKA_NSS_EMAIL_DISTRUST_AFTER", []byte(t.UTC().Format(distrustTimeLayout)))
		} else {
			bw.printf("CKA_NSS_EMAIL_DISTRUST_AFTER CK_BBOOL CK_FALSE\n")
		}

		bw.printf("\n# Trust for \"%s\"\n", e.Label)
		bw.printf("CKA_CLASS CK_OBJECT_CLASS CKO_NSS_TRUST\n")
		bw.printf("CKA_TOKEN CK_BBOOL CK_TRUE\n")
		bw.printf("CKA_PRIVATE CK_BBOOL CK_FALSE\n")
		bw.printf("CKA_MODIFIABLE CK_BBOOL CK_FALSE\n")
		bw.printf("CKA_LABEL UTF8 \"%s\"\n", e.Label)
		bw.octal("CKA_ISSUER", e.Cert.RawIssuer)
		bw.octal("CKA_SERIAL_NUMBER", serial)
		bw.printf("CKA_TRUST_SERVER_AUTH CK_TRUST %s\n", trustConst(e.TrustFor(store.ServerAuth)))
		bw.printf("CKA_TRUST_EMAIL_PROTECTION CK_TRUST %s\n", trustConst(e.TrustFor(store.EmailProtection)))
		bw.printf("CKA_TRUST_CODE_SIGNING CK_TRUST %s\n", trustConst(e.TrustFor(store.CodeSigning)))
		bw.printf("CKA_TRUST_STEP_UP_APPROVED CK_BBOOL CK_FALSE\n")
	}
	return bw.err
}

// MarshalBytes is Marshal into a byte slice.
func MarshalBytes(entries []*store.TrustEntry) ([]byte, error) {
	var buf bytes.Buffer
	if err := Marshal(&buf, entries); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func trustConst(l store.TrustLevel) string {
	switch l {
	case store.Trusted:
		return trustedDelegator
	case store.MustVerify:
		return mustVerifyTrust
	case store.Distrusted:
		return notTrusted
	default:
		return trustUnknown
	}
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// octal writes a MULTILINE_OCTAL attribute, 16 bytes per line as NSS does.
func (e *errWriter) octal(name string, data []byte) {
	e.printf("%s MULTILINE_OCTAL\n", name)
	for i := 0; i < len(data); i += 16 {
		end := i + 16
		if end > len(data) {
			end = len(data)
		}
		if e.err != nil {
			return
		}
		var line bytes.Buffer
		for _, b := range data[i:end] {
			fmt.Fprintf(&line, "\\%03o", b)
		}
		e.printf("%s\n", line.String())
	}
	e.printf("END\n")
}
