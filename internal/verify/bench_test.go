package verify

// Allocation benchmarks for the verification hot path. The batch pipeline
// calls Verify once per (chain, store) pair, so every per-call allocation
// here is multiplied by the batch size; BenchmarkVerify pins the cost of
// the default path against the caller-built-pool path the batch uses
// (Request.InterPool), with ReportAllocs so a pool-rebuild regression is
// visible as an allocs/op jump in CI's bench-smoke.

import (
	"crypto/x509"
	"testing"
	"time"

	"repro/internal/certgen"
	"repro/internal/store"
	"repro/internal/testcerts"
)

// benchChain builds a store of n trusted roots plus a leaf chaining through
// a cross-signed intermediate — the realistic shape (leaf + 1 intermediate)
// that makes the per-call intermediates pool rebuild measurable.
func benchChain(b *testing.B, n int) (*Verifier, Request) {
	b.Helper()
	roots := testcerts.Roots(n + 1)
	snap := store.NewSnapshot("Bench", "v1", time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC))
	for i := 0; i < n; i++ {
		e, err := store.NewTrustedEntry(roots[i].DER, store.ServerAuth)
		if err != nil {
			b.Fatal(err)
		}
		snap.Add(e)
	}

	// Leaf under roots[n] (not in the store), bridged into the store via a
	// cross-cert signed by roots[0].
	leafDER, _, err := roots[n].IssueLeaf(testcerts.Pool(), certgen.LeafSpec{
		CommonName: "bench.example.test",
		DNSNames:   []string{"bench.example.test"},
		NotBefore:  time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		b.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(leafDER)
	if err != nil {
		b.Fatal(err)
	}
	xDER, err := certgen.CrossSign(roots[n], roots[0], time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2028, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		b.Fatal(err)
	}
	xcert, err := x509.ParseCertificate(xDER)
	if err != nil {
		b.Fatal(err)
	}

	v := New(snap)
	req := Request{
		Leaf:          leaf,
		Intermediates: []*x509.Certificate{xcert},
		Purpose:       store.ServerAuth,
		At:            time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC),
	}
	// Prime the lazy pools so the benchmark measures Verify, not pool
	// construction.
	if res := v.Verify(req); res.Outcome != OK {
		b.Fatalf("fixture chain does not verify: %v (%v)", res.Outcome, res.Err)
	}
	return v, req
}

// BenchmarkVerify measures the default path: the intermediates pool is
// rebuilt inside every call.
func BenchmarkVerify(b *testing.B) {
	v, req := benchChain(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := v.Verify(req); res.Outcome != OK {
			b.Fatalf("outcome %v", res.Outcome)
		}
	}
}

// BenchmarkVerifyPrebuiltPool measures the batch path: one intermediates
// pool built up front and shared across every call — what fanoutVerify and
// the /v1/verify/batch pipeline do per chain.
func BenchmarkVerifyPrebuiltPool(b *testing.B) {
	v, req := benchChain(b, 16)
	req.InterPool = PoolIntermediates(req.Intermediates)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := v.Verify(req); res.Outcome != OK {
			b.Fatalf("outcome %v", res.Outcome)
		}
	}
}
