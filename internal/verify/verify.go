// Package verify performs purpose- and time-aware certificate chain
// verification against a root-store snapshot. It is the client-side
// substrate that turns the paper's root-store comparisons into observable
// authentication outcomes: the same chain can verify under NSS semantics
// (which honour server-distrust-after partial distrust) and fail — or
// wrongly succeed — under a derivative's flattened on-or-off copy, which is
// exactly the Symantec failure mode §6.2 documents.
package verify

import (
	"crypto/x509"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/certutil"
	"repro/internal/store"
)

// Outcome is the result of verifying a chain.
type Outcome int

// Verification outcomes.
const (
	// OK: the chain verifies to a trusted root for the purpose.
	OK Outcome = iota
	// NoAnchor: no chain to any root in the store.
	NoAnchor
	// AnchorNotTrusted: chain reaches a root present in the store but not
	// trusted for the requested purpose (or explicitly distrusted).
	AnchorNotTrusted
	// AnchorPartialDistrust: chain reaches a trusted root whose partial
	// distrust cutoff precedes the leaf's issuance date.
	AnchorPartialDistrust
	// Expired: the leaf is outside its validity window at the
	// verification time.
	Expired
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case NoAnchor:
		return "no-anchor"
	case AnchorNotTrusted:
		return "anchor-not-trusted"
	case AnchorPartialDistrust:
		return "anchor-partial-distrust"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Result carries the outcome plus diagnostics.
type Result struct {
	Outcome Outcome
	// Anchor is the trust entry the chain terminated at, when one was
	// found.
	Anchor *store.TrustEntry
	// Err is the underlying x509 error for NoAnchor/Expired.
	Err error
}

// Verifier verifies chains against one snapshot. It is safe for concurrent
// use: pools are built lazily under a lock and immutable once published.
type Verifier struct {
	snapshot *store.Snapshot

	mu sync.RWMutex
	// pools per purpose, built lazily.
	pools map[store.Purpose]*x509.CertPool
	// all holds every certificate in the store regardless of trust, used
	// by Verify to distinguish "no chain" from "chain to untrusted anchor".
	all *x509.CertPool
}

// New creates a verifier over a snapshot.
func New(s *store.Snapshot) *Verifier {
	return &Verifier{snapshot: s, pools: make(map[store.Purpose]*x509.CertPool)}
}

// Pool returns the x509.CertPool of roots trusted for the purpose — what a
// TLS client would install as tls.Config.RootCAs.
func (v *Verifier) Pool(p store.Purpose) *x509.CertPool {
	v.mu.RLock()
	pool, ok := v.pools[p]
	v.mu.RUnlock()
	if ok {
		return pool
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if pool, ok := v.pools[p]; ok {
		return pool
	}
	pool = x509.NewCertPool()
	for _, e := range v.snapshot.Entries() {
		if e.TrustedFor(p) {
			pool.AddCert(e.Cert)
		}
	}
	v.pools[p] = pool
	return pool
}

// allPool returns the pool of every certificate in the store, building it
// once. Verify is called per request in serving contexts, so rebuilding this
// pool per call would dominate the hot path.
func (v *Verifier) allPool() *x509.CertPool {
	v.mu.RLock()
	pool := v.all
	v.mu.RUnlock()
	if pool != nil {
		return pool
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.all == nil {
		pool := x509.NewCertPool()
		for _, e := range v.snapshot.Entries() {
			pool.AddCert(e.Cert)
		}
		v.all = pool
	}
	return v.all
}

// Request describes one verification.
type Request struct {
	// Leaf is the end-entity certificate.
	Leaf *x509.Certificate
	// Intermediates are any additional chain certificates.
	Intermediates []*x509.Certificate
	// InterPool, when non-nil, is a caller-built pool holding exactly the
	// Intermediates certificates. Callers verifying one chain against many
	// snapshots (the service fan-out, the batch pipeline) build it once and
	// reuse it across every Verify call, instead of paying a pool rebuild
	// per (chain, store) pair.
	InterPool *x509.CertPool
	// Purpose is the trust purpose to verify for.
	Purpose store.Purpose
	// DNSName, when set, is matched against the leaf.
	DNSName string
	// At is the verification time (defaults to the snapshot date).
	At time.Time
}

// PoolIntermediates builds the reusable intermediates pool for a chain —
// the value batch callers place in Request.InterPool. A chain with no
// intermediates returns an empty (non-nil) pool so Verify still skips the
// per-call rebuild.
func PoolIntermediates(intermediates []*x509.Certificate) *x509.CertPool {
	pool := x509.NewCertPool()
	for _, c := range intermediates {
		pool.AddCert(c)
	}
	return pool
}

// Verify checks a chain against the snapshot, honouring trust purposes and
// partial-distrust cutoffs.
func (v *Verifier) Verify(req Request) Result {
	at := req.At
	if at.IsZero() {
		at = v.snapshot.Date
	}

	// Chain against every certificate in the store — including ones not
	// trusted for the purpose — so we can distinguish "no chain at all"
	// from "chain to an untrusted anchor".
	allPool := v.allPool()
	inter := req.InterPool
	if inter == nil {
		inter = x509.NewCertPool()
		for _, c := range req.Intermediates {
			inter.AddCert(c)
		}
	}

	eku := []x509.ExtKeyUsage{x509.ExtKeyUsageAny}
	chains, err := req.Leaf.Verify(x509.VerifyOptions{
		Roots:         allPool,
		Intermediates: inter,
		DNSName:       req.DNSName,
		CurrentTime:   at,
		KeyUsages:     eku,
	})
	if err != nil {
		var invalid x509.CertificateInvalidError
		if errors.As(err, &invalid) && invalid.Reason == x509.Expired {
			return Result{Outcome: Expired, Err: err}
		}
		return Result{Outcome: NoAnchor, Err: err}
	}

	// Evaluate every candidate chain; accept if any terminates at an
	// anchor trusted for the purpose and not partially distrusted for
	// this leaf.
	var best Result
	best.Outcome = NoAnchor
	for _, chain := range chains {
		root := chain[len(chain)-1]
		entry, ok := v.snapshot.Lookup(certutil.SHA256Fingerprint(root.Raw))
		if !ok {
			continue
		}
		switch entry.TrustFor(req.Purpose) {
		case store.Trusted:
			if cutoff, has := entry.DistrustAfterFor(req.Purpose); has && req.Leaf.NotBefore.After(cutoff) {
				best = better(best, Result{Outcome: AnchorPartialDistrust, Anchor: entry})
				continue
			}
			return Result{Outcome: OK, Anchor: entry}
		default:
			best = better(best, Result{Outcome: AnchorNotTrusted, Anchor: entry})
		}
	}
	return best
}

// better keeps the most informative failure: partial distrust beats
// not-trusted beats no-anchor.
func better(a, b Result) Result {
	rank := func(o Outcome) int {
		switch o {
		case AnchorPartialDistrust:
			return 2
		case AnchorNotTrusted:
			return 1
		default:
			return 0
		}
	}
	if rank(b.Outcome) > rank(a.Outcome) {
		return b
	}
	return a
}
