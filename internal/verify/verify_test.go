package verify

import (
	"crypto/x509"
	"testing"
	"time"

	"repro/internal/certgen"
	"repro/internal/store"
	"repro/internal/testcerts"
)

func ts(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

// leafUnder mints a leaf under the given shared test root.
func leafUnder(t *testing.T, root *certgen.Root, cn string, nb, na time.Time) *x509.Certificate {
	t.Helper()
	der, _, err := root.IssueLeaf(testcerts.Pool(), certgen.LeafSpec{
		CommonName: cn,
		DNSNames:   []string{cn},
		NotBefore:  nb,
		NotAfter:   na,
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	return leaf
}

func snapWith(t *testing.T, entries ...*store.TrustEntry) *store.Snapshot {
	t.Helper()
	s := store.NewSnapshot("Test", "v1", ts(2020, 6, 1))
	for _, e := range entries {
		s.Add(e)
	}
	return s
}

func TestVerifyOK(t *testing.T) {
	root := testcerts.Roots(1)[0]
	e, _ := store.NewTrustedEntry(root.DER, store.ServerAuth)
	v := New(snapWith(t, e))
	leaf := leafUnder(t, root, "ok.example.test", ts(2019, 1, 1), ts(2021, 1, 1))
	res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth, DNSName: "ok.example.test"})
	if res.Outcome != OK {
		t.Fatalf("outcome = %v (%v)", res.Outcome, res.Err)
	}
	if res.Anchor == nil || res.Anchor.Fingerprint != e.Fingerprint {
		t.Error("anchor not reported")
	}
}

func TestVerifyNoAnchor(t *testing.T) {
	roots := testcerts.Roots(2)
	inStore, _ := store.NewTrustedEntry(roots[0].DER, store.ServerAuth)
	v := New(snapWith(t, inStore))
	// Leaf under a root NOT in the store.
	leaf := leafUnder(t, roots[1], "stranger.example.test", ts(2019, 1, 1), ts(2021, 1, 1))
	res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth})
	if res.Outcome != NoAnchor {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Err == nil {
		t.Error("NoAnchor should carry the x509 error")
	}
}

func TestVerifyAnchorNotTrustedForPurpose(t *testing.T) {
	root := testcerts.Roots(1)[0]
	e, _ := store.NewTrustedEntry(root.DER, store.EmailProtection) // email only
	v := New(snapWith(t, e))
	leaf := leafUnder(t, root, "tls.example.test", ts(2019, 1, 1), ts(2021, 1, 1))
	res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth})
	if res.Outcome != AnchorNotTrusted {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	// But email verification succeeds.
	res = v.Verify(Request{Leaf: leaf, Purpose: store.EmailProtection})
	if res.Outcome != OK {
		t.Fatalf("email outcome = %v", res.Outcome)
	}
}

func TestVerifyPartialDistrust(t *testing.T) {
	root := testcerts.Roots(1)[0]
	e, _ := store.NewTrustedEntry(root.DER, store.ServerAuth)
	cutoff := ts(2019, 9, 1)
	e.SetDistrustAfter(store.ServerAuth, cutoff)
	v := New(snapWith(t, e))

	// Issued before the cutoff: still trusted (the partial in partial
	// distrust).
	oldLeaf := leafUnder(t, root, "old.example.test", ts(2019, 1, 1), ts(2021, 1, 1))
	res := v.Verify(Request{Leaf: oldLeaf, Purpose: store.ServerAuth})
	if res.Outcome != OK {
		t.Fatalf("pre-cutoff outcome = %v", res.Outcome)
	}

	// Issued after the cutoff: rejected.
	newLeaf := leafUnder(t, root, "new.example.test", ts(2020, 1, 1), ts(2021, 6, 1))
	res = v.Verify(Request{Leaf: newLeaf, Purpose: store.ServerAuth})
	if res.Outcome != AnchorPartialDistrust {
		t.Fatalf("post-cutoff outcome = %v", res.Outcome)
	}
}

func TestPartialDistrustLostInFlatCopy(t *testing.T) {
	// The §6.2 failure mode end-to-end: the same post-cutoff leaf is
	// rejected under NSS semantics but accepted under a derivative's
	// flattened copy of the same store.
	root := testcerts.Roots(1)[0]
	nssEntry, _ := store.NewTrustedEntry(root.DER, store.ServerAuth)
	nssEntry.SetDistrustAfter(store.ServerAuth, ts(2019, 9, 1))
	flatEntry, _ := store.NewTrustedEntry(root.DER, store.ServerAuth) // annotation lost

	leaf := leafUnder(t, root, "post.example.test", ts(2020, 1, 1), ts(2021, 6, 1))

	nssResult := New(snapWith(t, nssEntry)).Verify(Request{Leaf: leaf, Purpose: store.ServerAuth})
	flatResult := New(snapWith(t, flatEntry)).Verify(Request{Leaf: leaf, Purpose: store.ServerAuth})
	if nssResult.Outcome != AnchorPartialDistrust {
		t.Errorf("NSS semantics outcome = %v, want partial distrust", nssResult.Outcome)
	}
	if flatResult.Outcome != OK {
		t.Errorf("flat-copy outcome = %v, want OK (the dangerous acceptance)", flatResult.Outcome)
	}
}

func TestVerifyExpiredLeaf(t *testing.T) {
	root := testcerts.Roots(1)[0]
	e, _ := store.NewTrustedEntry(root.DER, store.ServerAuth)
	v := New(snapWith(t, e))
	leaf := leafUnder(t, root, "expired.example.test", ts(2015, 1, 1), ts(2016, 1, 1))
	res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth, At: ts(2020, 6, 1)})
	if res.Outcome != Expired {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestVerifyDNSMismatch(t *testing.T) {
	root := testcerts.Roots(1)[0]
	e, _ := store.NewTrustedEntry(root.DER, store.ServerAuth)
	v := New(snapWith(t, e))
	leaf := leafUnder(t, root, "right.example.test", ts(2019, 1, 1), ts(2021, 1, 1))
	res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth, DNSName: "wrong.example.test"})
	if res.Outcome == OK {
		t.Fatal("DNS mismatch should not verify")
	}
}

func TestVerifyDistrustedAnchor(t *testing.T) {
	root := testcerts.Roots(1)[0]
	e, _ := store.NewTrustedEntry(root.DER)
	e.SetTrust(store.ServerAuth, store.Distrusted)
	v := New(snapWith(t, e))
	leaf := leafUnder(t, root, "d.example.test", ts(2019, 1, 1), ts(2021, 1, 1))
	res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth})
	if res.Outcome != AnchorNotTrusted {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestVerifyDefaultsToSnapshotDate(t *testing.T) {
	root := testcerts.Roots(1)[0]
	e, _ := store.NewTrustedEntry(root.DER, store.ServerAuth)
	// Leaf valid only around the snapshot date.
	leaf := leafUnder(t, root, "dated.example.test", ts(2020, 5, 1), ts(2020, 7, 1))
	v := New(snapWith(t, e)) // snapshot dated 2020-06-01
	if res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth}); res.Outcome != OK {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

func TestPoolSizes(t *testing.T) {
	roots := testcerts.Roots(3)
	tls0, _ := store.NewTrustedEntry(roots[0].DER, store.ServerAuth)
	tls1, _ := store.NewTrustedEntry(roots[1].DER, store.ServerAuth, store.EmailProtection)
	email, _ := store.NewTrustedEntry(roots[2].DER, store.EmailProtection)
	v := New(snapWith(t, tls0, tls1, email))

	// CertPool has no length accessor; count via Subjects (deprecated but
	// serviceable for tests against our own pool).
	if got := len(v.Pool(store.ServerAuth).Subjects()); got != 2 {
		t.Errorf("TLS pool = %d roots, want 2", got)
	}
	if got := len(v.Pool(store.EmailProtection).Subjects()); got != 2 {
		t.Errorf("email pool = %d roots, want 2", got)
	}
	if got := len(v.Pool(store.CodeSigning).Subjects()); got != 0 {
		t.Errorf("code-signing pool = %d roots, want 0", got)
	}
	// Cached pool identity.
	if v.Pool(store.ServerAuth) != v.Pool(store.ServerAuth) {
		t.Error("pool should be cached")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		OK: "ok", NoAnchor: "no-anchor", AnchorNotTrusted: "anchor-not-trusted",
		AnchorPartialDistrust: "anchor-partial-distrust", Expired: "expired",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}
