package verify

import (
	"crypto/x509"
	"testing"

	"repro/internal/certgen"
	"repro/internal/store"
	"repro/internal/testcerts"
)

// TestCrossSignedChainBridgesTrust reproduces the paper's cross-signing
// concern (§5.3 Certinomis/StartCom): a client that trusts only root B can
// still validate leaves issued under root A once a B-signed cross
// certificate for A circulates — so distrusting A's self-signed root alone
// does not cut the trust path.
func TestCrossSignedChainBridgesTrust(t *testing.T) {
	roots := testcerts.Roots(2)
	subject, issuer := roots[0], roots[1]

	// Leaf under the subject root.
	leafDER, _, err := subject.IssueLeaf(testcerts.Pool(), certgen.LeafSpec{
		CommonName: "bridged.example.test",
		DNSNames:   []string{"bridged.example.test"},
		NotBefore:  ts(2019, 1, 1),
		NotAfter:   ts(2021, 1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(leafDER)
	if err != nil {
		t.Fatal(err)
	}

	// Cross-certificate: subject's key signed by issuer.
	xDER, err := certgen.CrossSign(subject, issuer, ts(2018, 1, 1), ts(2028, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	xcert, err := x509.ParseCertificate(xDER)
	if err != nil {
		t.Fatal(err)
	}

	// Store trusting only the issuer.
	issuerOnly, err := store.NewTrustedEntry(issuer.DER, store.ServerAuth)
	if err != nil {
		t.Fatal(err)
	}
	v := New(snapWith(t, issuerOnly))

	// Without the cross cert the chain dangles.
	res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth, At: ts(2020, 1, 1)})
	if res.Outcome != NoAnchor {
		t.Fatalf("without cross cert: outcome = %v", res.Outcome)
	}

	// With it, the leaf validates against a store that never contained
	// the subject root.
	res = v.Verify(Request{
		Leaf:          leaf,
		Intermediates: []*x509.Certificate{xcert},
		Purpose:       store.ServerAuth,
		At:            ts(2020, 1, 1),
	})
	if res.Outcome != OK {
		t.Fatalf("with cross cert: outcome = %v (%v)", res.Outcome, res.Err)
	}
	if res.Anchor == nil || res.Anchor.Fingerprint != issuerOnly.Fingerprint {
		t.Error("chain should anchor at the issuer root")
	}

	// Distrusting the subject's self-signed root does NOT help: the store
	// never had it. Only distrusting the issuer (or revoking the cross
	// cert) cuts the path — the paper's point about Certinomis.
	subjectEntry, _ := store.NewTrustedEntry(subject.DER)
	subjectEntry.SetTrust(store.ServerAuth, store.Distrusted)
	both := snapWith(t, issuerOnly, subjectEntry)
	res = New(both).Verify(Request{
		Leaf:          leaf,
		Intermediates: []*x509.Certificate{xcert},
		Purpose:       store.ServerAuth,
		At:            ts(2020, 1, 1),
	})
	if res.Outcome != OK {
		t.Fatalf("distrusting the subject root should not cut the cross-signed path: %v", res.Outcome)
	}
}

// TestCrossSignErrors covers input validation.
func TestCrossSignErrors(t *testing.T) {
	roots := testcerts.Roots(1)
	if _, err := certgen.CrossSign(nil, roots[0], ts(2020, 1, 1), ts(2021, 1, 1)); err == nil {
		t.Error("nil subject should error")
	}
	if _, err := certgen.CrossSign(roots[0], nil, ts(2020, 1, 1), ts(2021, 1, 1)); err == nil {
		t.Error("nil issuer should error")
	}
}
