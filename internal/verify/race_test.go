package verify

import (
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/testcerts"
)

// TestVerifierConcurrent is the -race regression for the lazily built pools:
// Pool and Verify used to write v.pools unsynchronized, so any concurrent
// caller (exactly the serving layer's access pattern) raced.
func TestVerifierConcurrent(t *testing.T) {
	t.Parallel()
	root := testcerts.Roots(1)[0]
	e, _ := store.NewTrustedEntry(root.DER, store.ServerAuth, store.EmailProtection)
	v := New(snapWith(t, e))
	leaf := leafUnder(t, root, "race.example.test", ts(2019, 1, 1), ts(2021, 1, 1))

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				p := store.AllPurposes[(i+j)%len(store.AllPurposes)]
				if v.Pool(p) == nil {
					t.Error("nil pool")
					return
				}
				res := v.Verify(Request{Leaf: leaf, Purpose: store.ServerAuth})
				if res.Outcome != OK {
					t.Errorf("outcome = %v", res.Outcome)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// Cached pool identity must survive the stampede.
	if v.Pool(store.ServerAuth) != v.Pool(store.ServerAuth) {
		t.Error("pool not cached")
	}
}
