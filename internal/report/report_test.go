package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("My Title", "Name", "Count")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("much-longer-name", 12345)
	tbl.AddRow("floats", 3.14159)
	out := tbl.String()

	if !strings.Contains(out, "My Title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Name") || !strings.Contains(out, "Count") {
		t.Error("headers missing")
	}
	if !strings.Contains(out, "much-longer-name") {
		t.Error("row missing")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float should format with two decimals")
	}
	if strings.Contains(out, "3.14159") {
		t.Error("float should be truncated to two decimals")
	}
	// The rule line must be as wide as the widest cell.
	lines := strings.Split(out, "\n")
	var rule string
	for _, l := range lines {
		if strings.HasPrefix(l, "-") {
			rule = l
			break
		}
	}
	if !strings.Contains(rule, strings.Repeat("-", len("much-longer-name"))) {
		t.Errorf("rule too narrow: %q", rule)
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("", "A", "B")
	tbl.AddRow("x", "y")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (header, rule, row)", len(lines))
	}
	// Column B starts at the same offset in every line.
	idx := strings.Index(lines[0], "B")
	for _, l := range lines[1:] {
		if len(l) <= idx {
			t.Fatalf("line %q shorter than header", l)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := NewTable("Empty", "Col")
	out := tbl.String()
	if !strings.Contains(out, "Col") {
		t.Error("headers should render for empty tables")
	}
	if tbl.Len() != 0 {
		t.Error("Len should be 0")
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("Stale")
	s.Add("Alpine", 0.73)
	s.Add("AmazonLinux", 4.83)
	out := s.String()
	if !strings.Contains(out, "Stale") || !strings.Contains(out, "Alpine") {
		t.Error("series labels missing")
	}
	// The largest value gets the longest bar.
	var alpineBar, amazonBar int
	for _, l := range strings.Split(out, "\n") {
		bar := strings.Count(l, "#")
		if strings.Contains(l, "Alpine ") || strings.HasPrefix(l, "Alpine") {
			alpineBar = bar
		}
		if strings.Contains(l, "AmazonLinux") {
			amazonBar = bar
		}
	}
	if amazonBar <= alpineBar {
		t.Errorf("bar scaling wrong: alpine=%d amazon=%d", alpineBar, amazonBar)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSeriesZeroValues(t *testing.T) {
	s := NewSeries("Zeros")
	s.Add("a", 0)
	s.Add("b", 0)
	out := s.String()
	if strings.Contains(out, "#") {
		t.Error("zero values should have no bars")
	}
}

func TestSeriesDefaultWidth(t *testing.T) {
	s := NewSeries("W")
	s.Add("x", 1)
	var b strings.Builder
	if err := s.Render(&b, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "#") != 50 {
		t.Errorf("default width should be 50, got %d", strings.Count(b.String(), "#"))
	}
}
