// Package report renders analysis results as aligned text tables and
// simple ASCII series plots — the presentation layer shared by the CLI
// tools, examples and benchmark harness when regenerating the paper's
// tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Series is a named sequence of (label, value) points rendered as an ASCII
// bar chart — enough to eyeball the shape of a paper figure in a terminal.
type Series struct {
	Title  string
	labels []string
	values []float64
}

// NewSeries creates a series.
func NewSeries(title string) *Series { return &Series{Title: title} }

// Add appends a point.
func (s *Series) Add(label string, value float64) {
	s.labels = append(s.labels, label)
	s.values = append(s.values, value)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.values) }

// Render writes the bar chart, scaling bars to maxWidth characters.
func (s *Series) Render(w io.Writer, maxWidth int) error {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	var max float64
	labelW := 0
	for i, v := range s.values {
		if v > max {
			max = v
		}
		if len(s.labels[i]) > labelW {
			labelW = len(s.labels[i])
		}
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	for i, v := range s.values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(maxWidth))
		}
		fmt.Fprintf(&b, "%-*s  %8.2f  %s\n", labelW, s.labels[i], v, strings.Repeat("#", n))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string with default width.
func (s *Series) String() string {
	var b strings.Builder
	_ = s.Render(&b, 50)
	return b.String()
}
