package manifest

import (
	"bytes"
	"encoding/pem"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/certutil"
	"repro/internal/store"
	"repro/internal/testcerts"
)

func pemFor(t *testing.T, der []byte) string {
	t.Helper()
	return string(pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}))
}

func TestParseBundle(t *testing.T) {
	roots := testcerts.Roots(2)
	doc := `# TPM vendor root manifest
version: 1
vendor: "Acme Trusted Platform"

roots:
  - name: Acme EK Root CA
    url: https://acme.example/ek-root.crt
    source: vendor-website
    evidence: "Listed in Acme's EK root registry, retrieved 2021-03-01."
    purposes: [server-auth, code-signing]
    cert: |
` + indent(pemFor(t, roots[0].DER), 6) + `
  # file-referenced sibling
  - name: Acme EK Root CA G2
    cert_file: g2.pem
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "g2.pem"), []byte(pemFor(t, roots[1].DER)), 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if b.Version != 1 || b.Vendor != "Acme Trusted Platform" || len(b.Roots) != 2 {
		t.Fatalf("bundle = %+v", b)
	}
	if b.Roots[0].URL != "https://acme.example/ek-root.crt" || b.Roots[0].Source != "vendor-website" {
		t.Errorf("provenance fields: %+v", b.Roots[0])
	}
	if len(b.Roots[0].Purposes) != 2 {
		t.Errorf("purposes = %v", b.Roots[0].Purposes)
	}

	entries, err := b.Entries(dir)
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries", len(entries))
	}
	if entries[0].Label != "Acme EK Root CA" {
		t.Errorf("label = %q (manifest name should win)", entries[0].Label)
	}
	if entries[0].TrustFor(store.CodeSigning) != store.Trusted {
		t.Error("explicit purposes not honored")
	}
	// Default purpose is ServerAuth when the list is absent.
	if entries[1].TrustFor(store.ServerAuth) != store.Trusted {
		t.Error("default purpose not ServerAuth")
	}
	if entries[1].Fingerprint != certutil.SHA256Fingerprint(roots[1].DER) {
		t.Error("cert_file resolved to wrong certificate")
	}
}

func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = pad + l
	}
	return strings.Join(lines, "\n")
}

// TestMarshalRoundTripByteIdentical is the deterministic-builds property:
// emitting a bundle, re-ingesting the emitted document, and emitting again
// produces byte-identical output — and so does emitting a semantically
// equal bundle with roots in a different order.
func TestMarshalRoundTripByteIdentical(t *testing.T) {
	entries := testcerts.Entries(4, store.ServerAuth, store.EmailProtection)
	b := FromEntries("Acme Trusted Platform", entries)
	first, err := Marshal(b)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Parse(first)
	if err != nil {
		t.Fatalf("Parse of own output: %v", err)
	}
	second, err := Marshal(back)
	if err != nil {
		t.Fatalf("re-Marshal: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("emit → parse → emit not byte-identical:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}

	shuffled := &Bundle{Version: b.Version, Vendor: b.Vendor}
	for i := len(b.Roots) - 1; i >= 0; i-- {
		shuffled.Roots = append(shuffled.Roots, b.Roots[i])
	}
	third, err := Marshal(shuffled)
	if err != nil {
		t.Fatalf("Marshal shuffled: %v", err)
	}
	if !bytes.Equal(first, third) {
		t.Fatal("marshal is input-order-sensitive")
	}

	// The parsed entries match the originals.
	got, err := back.Entries("")
	if err != nil {
		t.Fatalf("Entries: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("entry count %d vs %d", len(got), len(entries))
	}
	want := map[string]bool{}
	for _, e := range entries {
		want[string(e.Fingerprint[:])] = true
	}
	for _, e := range got {
		if !want[string(e.Fingerprint[:])] {
			t.Errorf("unexpected certificate %x", e.Fingerprint[:8])
		}
		if e.TrustFor(store.EmailProtection) != store.Trusted {
			t.Errorf("%s: email purpose lost", e.Label)
		}
	}
}

func TestParseErrors(t *testing.T) {
	root := testcerts.Roots(1)[0]
	certBlock := "    cert: |\n" + indent(pemFor(t, root.DER), 6) + "\n"
	cases := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"missing version", "vendor: V\nroots:\n  - name: A\n" + certBlock},
		{"missing vendor", "version: 1\nroots:\n  - name: A\n" + certBlock},
		{"missing roots", "version: 1\nvendor: V\n"},
		{"unknown top key", "version: 1\nvendor: V\nextra: x\nroots:\n  - name: A\n" + certBlock},
		{"unknown root key", "version: 1\nvendor: V\nroots:\n  - name: A\n    bogus: x\n" + certBlock},
		{"no cert", "version: 1\nvendor: V\nroots:\n  - name: A\n"},
		{"both certs", "version: 1\nvendor: V\nroots:\n  - name: A\n    cert_file: a.pem\n" + certBlock},
		{"duplicate names", "version: 1\nvendor: V\nroots:\n  - name: A\n" + certBlock + "  - name: A\n    cert_file: b.pem\n"},
		{"bad purposes", "version: 1\nvendor: V\nroots:\n  - name: A\n    purposes: [nonsense]\n" + certBlock},
		{"purposes not a list", "version: 1\nvendor: V\nroots:\n  - name: A\n    purposes: server-auth\n" + certBlock},
		{"bad version", "version: two\nvendor: V\nroots:\n  - name: A\n" + certBlock},
		{"bad indent", "version: 1\nvendor: V\nroots:\n   - name: A\n" + certBlock},
		{"empty cert block", "version: 1\nvendor: V\nroots:\n  - name: A\n    cert: |\n"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestEntriesErrors(t *testing.T) {
	doc := "version: 1\nvendor: V\nroots:\n  - name: A\n    cert_file: missing.pem\n"
	b, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Entries(t.TempDir()); err == nil {
		t.Error("missing cert_file: no error")
	}

	doc = "version: 1\nvendor: V\nroots:\n  - name: A\n    cert: |\n      not a pem block\n"
	b, err = Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Entries(""); err == nil {
		t.Error("non-PEM cert: no error")
	}
}

func TestReadWriteDir(t *testing.T) {
	entries := testcerts.Entries(3, store.ServerAuth)
	b := FromEntries("TPM Vendors", entries)
	dir := t.TempDir()
	if err := WriteDir(dir, b); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	got, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3", len(got))
	}
	if _, err := ReadDir(t.TempDir()); err == nil {
		t.Error("ReadDir on empty dir: no error")
	}

	// Two manifests in one directory is ambiguous for FindIn.
	if err := os.WriteFile(filepath.Join(dir, "extra.tpm-roots.yaml"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FindIn(dir); err == nil {
		t.Error("two manifests: no error")
	}
}

func TestIsManifestName(t *testing.T) {
	for _, name := range []string{"tpm-roots.yaml", ".tpm-roots.yaml", "acme.tpm-roots.yaml"} {
		if !IsManifestName(name) {
			t.Errorf("IsManifestName(%q) = false", name)
		}
	}
	for _, name := range []string{"roots.yaml", "tpm-roots.yml", "tpm-roots.yaml.bak"} {
		if IsManifestName(name) {
			t.Errorf("IsManifestName(%q) = true", name)
		}
	}
}
