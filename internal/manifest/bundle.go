package manifest

// Conversion between the manifest's provenance shape and the pipeline's
// store.TrustEntry shape. Entries is the ingest direction (internal/catalog
// calls it via ReadDir); FromEntries is the emit direction cmd/synthgen uses
// to materialize synthetic manifest snapshots. Round-tripping through both
// preserves the semantic content exactly, which is what the deterministic-
// build property test pins down.

import (
	"encoding/pem"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/store"
)

// Entries converts the bundle's roots to trust entries. File-referenced
// certificates resolve relative to baseDir; the manifest's name becomes the
// entry label (the manifest, not the certificate, is the curated source of
// display names); roots without an explicit purpose list default to
// ServerAuth, the same bare-list semantics PEM bundles get.
func (b *Bundle) Entries(baseDir string) ([]*store.TrustEntry, error) {
	entries := make([]*store.TrustEntry, 0, len(b.Roots))
	seen := make(map[string]bool, len(b.Roots))
	for _, r := range b.Roots {
		pemData := []byte(r.CertPEM)
		if r.CertFile != "" {
			data, err := os.ReadFile(filepath.Join(baseDir, filepath.FromSlash(r.CertFile)))
			if err != nil {
				return nil, fmt.Errorf("manifest: root %q: %w", r.Name, err)
			}
			pemData = data
		}
		block, rest := pem.Decode(pemData)
		if block == nil || block.Type != "CERTIFICATE" {
			return nil, fmt.Errorf("manifest: root %q: no CERTIFICATE PEM block", r.Name)
		}
		if block2, _ := pem.Decode(rest); block2 != nil {
			return nil, fmt.Errorf("manifest: root %q: more than one PEM block", r.Name)
		}
		purposes := r.Purposes
		if len(purposes) == 0 {
			purposes = []store.Purpose{store.ServerAuth}
		}
		e, err := store.NewTrustedEntry(block.Bytes, purposes...)
		if err != nil {
			return nil, fmt.Errorf("manifest: root %q: %w", r.Name, err)
		}
		e.Label = r.Name
		if seen[string(e.Fingerprint[:])] {
			return nil, fmt.Errorf("manifest: root %q: duplicate certificate", r.Name)
		}
		seen[string(e.Fingerprint[:])] = true
		entries = append(entries, e)
	}
	return entries, nil
}

// ReadDir ingests a snapshot directory holding a manifest file (tpm-roots.yaml
// or a *.tpm-roots.yaml) and returns its trust entries.
func ReadDir(dir string) ([]*store.TrustEntry, error) {
	path, err := FindIn(dir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	b, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return b.Entries(dir)
}

// FindIn locates the manifest file inside a snapshot directory.
func FindIn(dir string) (string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("manifest: %w", err)
	}
	var found []string
	for _, de := range des {
		if !de.IsDir() && IsManifestName(de.Name()) {
			found = append(found, de.Name())
		}
	}
	switch len(found) {
	case 0:
		return "", fmt.Errorf("manifest: no %s in %s", Name, dir)
	case 1:
		return filepath.Join(dir, found[0]), nil
	}
	sort.Strings(found)
	return "", fmt.Errorf("manifest: multiple manifests in %s: %s", dir, strings.Join(found, ", "))
}

// FromEntries builds a bundle with inline certificates from trust entries,
// synthesizing provenance fields from the vendor name. Entry labels become
// root names (deduplicated positionally if a store reuses one).
func FromEntries(vendor string, entries []*store.TrustEntry) *Bundle {
	b := &Bundle{Version: 1, Vendor: vendor}
	used := map[string]bool{}
	for _, e := range entries {
		name := e.Label
		if name == "" {
			name = fmt.Sprintf("%x", e.Fingerprint[:8])
		}
		for base, n := name, 2; used[name]; n++ {
			name = fmt.Sprintf("%s (%d)", base, n)
		}
		used[name] = true
		var purposes []store.Purpose
		for _, p := range store.AllPurposes {
			if e.TrustFor(p) == store.Trusted {
				purposes = append(purposes, p)
			}
		}
		slug := strings.ToLower(strings.ReplaceAll(name, " ", "-"))
		b.Roots = append(b.Roots, Root{
			Name:     name,
			URL:      "https://roots.example/" + vendorSlug(vendor) + "/" + slug + ".crt",
			Source:   "vendor-website",
			Evidence: fmt.Sprintf("Published by %s; verified against vendor fingerprint list.", vendor),
			Purposes: purposes,
			CertPEM: string(pem.EncodeToMemory(&pem.Block{
				Type:  "CERTIFICATE",
				Bytes: e.DER,
			})),
		})
	}
	return b
}

func vendorSlug(vendor string) string {
	return strings.ToLower(strings.ReplaceAll(vendor, " ", "-"))
}

// WriteDir writes the bundle's canonical form as dir/tpm-roots.yaml.
func WriteDir(dir string, b *Bundle) error {
	out, err := Marshal(b)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, Name), out, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}
