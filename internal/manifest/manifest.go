// Package manifest implements a YAML-manifest bundle codec in the style of
// the tpm-ca-certificates project's `.tpm-roots.yaml`: a vendor-curated
// list of trust anchors where every root carries provenance metadata — the
// URL it was fetched from, the kind of source, human-readable evidence —
// and its certificate either inline (a PEM block scalar) or referenced as
// a file next to the manifest. Manifest bundles are how trust stores exist
// entirely outside TLS (TPM endorsement-key roots, firmware signing), and
// ingesting them proves the unified trust model generalizes: past this
// codec the pipeline treats them like any other provider.
//
// The module carries no YAML dependency, so the codec hand-rolls a parser
// for exactly the subset the schema needs: top-level scalars, a `roots:`
// list of flat mappings, inline `[a, b]` lists, `|` block scalars for PEM,
// comments and blank lines. Unknown keys are rejected — a manifest is a
// reviewed artifact, and silently dropping a field would hide provenance.
//
// Marshal emits one canonical form (roots sorted by name, fixed
// indentation), which is what makes deterministic, reproducible bundle
// builds checkable: emit → re-ingest → emit is byte-identical, the same
// contract the rootpack archive keeps (cf. tpm-ca-certificates'
// reproducible bundle builds).
package manifest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/store"
)

// Name is the canonical manifest file name; internal/catalog also accepts
// the dotfile spelling (".tpm-roots.yaml") and any "*.tpm-roots.yaml".
const Name = "tpm-roots.yaml"

// IsManifestName reports whether a file name is a manifest.
func IsManifestName(name string) bool {
	return name == Name || name == "."+Name || strings.HasSuffix(name, "."+Name)
}

// Root is one manifest entry: a trust anchor plus its provenance.
type Root struct {
	// Name is the root's display name (unique within a bundle).
	Name string
	// URL is where the certificate was obtained.
	URL string
	// Source classifies the origin ("vendor-website", "tcg-registry", ...).
	Source string
	// Evidence is the human-readable provenance note.
	Evidence string
	// Purposes are the trust purposes granted (default ServerAuth).
	Purposes []store.Purpose
	// CertPEM is the inline PEM certificate; empty when CertFile is set.
	CertPEM string
	// CertFile is a path relative to the manifest directory; empty when
	// the certificate is inline.
	CertFile string
}

// Bundle is a parsed manifest.
type Bundle struct {
	Version int
	Vendor  string
	Roots   []Root
}

// Parse decodes a manifest document.
func Parse(data []byte) (*Bundle, error) {
	p := &parser{lines: strings.Split(string(data), "\n")}
	b, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("manifest: line %d: %w", p.pos, err)
	}
	return b, nil
}

type parser struct {
	lines []string
	pos   int // 1-based line of the last consumed line, for errors
}

// next returns the next meaningful line (skipping blanks and comments)
// without consuming it; ok is false at end of input.
func (p *parser) next() (line string, ok bool) {
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if t := strings.TrimSpace(l); t == "" || strings.HasPrefix(t, "#") {
			p.pos++
			continue
		}
		return l, true
	}
	return "", false
}

func (p *parser) consume() { p.pos++ }

func indentOf(l string) int {
	return len(l) - len(strings.TrimLeft(l, " "))
}

// splitKV splits "key: value" (value may be empty). The line must already
// be trimmed of its indentation.
func splitKV(l string) (key, value string, err error) {
	i := strings.Index(l, ":")
	if i < 0 {
		return "", "", fmt.Errorf("expected \"key: value\", got %q", l)
	}
	return strings.TrimSpace(l[:i]), strings.TrimSpace(l[i+1:]), nil
}

// scalar unquotes a value: double-quoted strings go through strconv,
// anything else is taken verbatim (already trimmed).
func scalar(v string) (string, error) {
	if strings.HasPrefix(v, `"`) {
		return strconv.Unquote(v)
	}
	return v, nil
}

func (p *parser) parse() (*Bundle, error) {
	b := &Bundle{}
	sawRoots := false
	for {
		l, ok := p.next()
		if !ok {
			break
		}
		if indentOf(l) != 0 {
			return nil, fmt.Errorf("unexpected indentation under no key: %q", l)
		}
		p.consume()
		key, value, err := splitKV(strings.TrimSpace(l))
		if err != nil {
			return nil, err
		}
		switch key {
		case "version":
			v, err := strconv.Atoi(value)
			if err != nil {
				return nil, fmt.Errorf("version: %w", err)
			}
			b.Version = v
		case "vendor":
			if b.Vendor, err = scalar(value); err != nil {
				return nil, fmt.Errorf("vendor: %w", err)
			}
		case "roots":
			if value != "" {
				return nil, fmt.Errorf("roots: expected a block list, got %q", value)
			}
			if err := p.parseRoots(b); err != nil {
				return nil, err
			}
			sawRoots = true
		default:
			return nil, fmt.Errorf("unknown top-level key %q", key)
		}
	}
	if b.Version == 0 {
		return nil, fmt.Errorf("missing version")
	}
	if b.Vendor == "" {
		return nil, fmt.Errorf("missing vendor")
	}
	if !sawRoots || len(b.Roots) == 0 {
		return nil, fmt.Errorf("missing roots")
	}
	seen := map[string]bool{}
	for _, r := range b.Roots {
		if seen[r.Name] {
			return nil, fmt.Errorf("duplicate root name %q", r.Name)
		}
		seen[r.Name] = true
	}
	return b, nil
}

// parseRoots consumes the "- name: ..." items under roots:.
func (p *parser) parseRoots(b *Bundle) error {
	const itemIndent, fieldIndent, blockIndent = 2, 4, 6
	for {
		l, ok := p.next()
		if !ok {
			return nil
		}
		if indentOf(l) == 0 {
			return nil // next top-level key
		}
		if indentOf(l) != itemIndent || !strings.HasPrefix(strings.TrimLeft(l, " "), "- ") {
			return fmt.Errorf("expected a \"- \" list item at indent %d, got %q", itemIndent, l)
		}
		p.consume()
		var r Root
		// The first field rides on the "- " line.
		if err := p.rootField(&r, strings.TrimPrefix(strings.TrimLeft(l, " "), "- "), blockIndent); err != nil {
			return err
		}
		for {
			l, ok := p.next()
			if !ok || indentOf(l) < fieldIndent {
				break
			}
			if indentOf(l) != fieldIndent {
				return fmt.Errorf("expected field at indent %d, got %q", fieldIndent, l)
			}
			p.consume()
			if err := p.rootField(&r, strings.TrimSpace(l), blockIndent); err != nil {
				return err
			}
		}
		if r.Name == "" {
			return fmt.Errorf("root without a name")
		}
		if (r.CertPEM == "") == (r.CertFile == "") {
			return fmt.Errorf("root %q: exactly one of cert and cert_file is required", r.Name)
		}
		b.Roots = append(b.Roots, r)
	}
}

// rootField parses one "key: value" field of a root item.
func (p *parser) rootField(r *Root, kv string, blockIndent int) error {
	key, value, err := splitKV(kv)
	if err != nil {
		return err
	}
	switch key {
	case "name":
		r.Name, err = scalar(value)
	case "url":
		r.URL, err = scalar(value)
	case "source":
		r.Source, err = scalar(value)
	case "evidence":
		r.Evidence, err = scalar(value)
	case "cert_file":
		r.CertFile, err = scalar(value)
	case "purposes":
		r.Purposes, err = parsePurposeList(value)
	case "cert":
		if value != "|" {
			return fmt.Errorf("cert: expected a \"|\" block scalar, got %q", value)
		}
		r.CertPEM = p.blockScalar(blockIndent)
		if r.CertPEM == "" {
			return fmt.Errorf("cert: empty block scalar")
		}
	default:
		return fmt.Errorf("unknown root key %q", key)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", key, err)
	}
	return nil
}

// blockScalar consumes the indented lines of a "|" block, dedenting them.
// Blank lines inside the block are kept; the block ends at the first
// non-blank line indented less than the block.
func (p *parser) blockScalar(indent int) string {
	var out []string
	var pendingBlanks int
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if strings.TrimSpace(l) == "" {
			pendingBlanks++
			p.pos++
			continue
		}
		if indentOf(l) < indent {
			break
		}
		for ; pendingBlanks > 0; pendingBlanks-- {
			out = append(out, "")
		}
		if len(l) >= indent {
			out = append(out, l[indent:])
		}
		p.pos++
	}
	if len(out) == 0 {
		return ""
	}
	return strings.Join(out, "\n") + "\n"
}

// parsePurposeList parses an inline "[a, b]" purpose list.
func parsePurposeList(v string) ([]store.Purpose, error) {
	if !strings.HasPrefix(v, "[") || !strings.HasSuffix(v, "]") {
		return nil, fmt.Errorf("expected an inline [a, b] list, got %q", v)
	}
	inner := strings.TrimSpace(v[1 : len(v)-1])
	if inner == "" {
		return nil, fmt.Errorf("empty purpose list")
	}
	var out []store.Purpose
	for _, part := range strings.Split(inner, ",") {
		pp, err := store.ParsePurpose(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, pp)
	}
	return out, nil
}

// Marshal emits the bundle's canonical form. It is a pure function of the
// bundle's semantic content: roots sorted by name, purposes in enum order,
// fixed two-space indentation, inline certs as 6-space block scalars.
func Marshal(b *Bundle) ([]byte, error) {
	if b.Version == 0 || b.Vendor == "" || len(b.Roots) == 0 {
		return nil, fmt.Errorf("manifest: version, vendor and at least one root are required")
	}
	roots := append([]Root(nil), b.Roots...)
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name < roots[j].Name })

	var sb strings.Builder
	fmt.Fprintf(&sb, "version: %d\n", b.Version)
	fmt.Fprintf(&sb, "vendor: %s\n", emitScalar(b.Vendor))
	sb.WriteString("roots:\n")
	for _, r := range roots {
		if r.Name == "" {
			return nil, fmt.Errorf("manifest: root without a name")
		}
		if (r.CertPEM == "") == (r.CertFile == "") {
			return nil, fmt.Errorf("manifest: root %q: exactly one of CertPEM and CertFile is required", r.Name)
		}
		fmt.Fprintf(&sb, "  - name: %s\n", emitScalar(r.Name))
		if r.URL != "" {
			fmt.Fprintf(&sb, "    url: %s\n", emitScalar(r.URL))
		}
		if r.Source != "" {
			fmt.Fprintf(&sb, "    source: %s\n", emitScalar(r.Source))
		}
		if r.Evidence != "" {
			fmt.Fprintf(&sb, "    evidence: %s\n", emitScalar(r.Evidence))
		}
		if len(r.Purposes) > 0 {
			names := make([]string, 0, len(r.Purposes))
			for _, pp := range normalizePurposes(r.Purposes) {
				names = append(names, pp.String())
			}
			fmt.Fprintf(&sb, "    purposes: [%s]\n", strings.Join(names, ", "))
		}
		if r.CertFile != "" {
			fmt.Fprintf(&sb, "    cert_file: %s\n", emitScalar(r.CertFile))
		} else {
			sb.WriteString("    cert: |\n")
			for _, line := range strings.Split(strings.TrimRight(r.CertPEM, "\n"), "\n") {
				if line == "" {
					sb.WriteString("\n")
					continue
				}
				sb.WriteString("      ")
				sb.WriteString(line)
				sb.WriteString("\n")
			}
		}
	}
	return []byte(sb.String()), nil
}

// emitScalar quotes a value only when the plain form would not round-trip.
func emitScalar(v string) string {
	if v == "" {
		return `""`
	}
	plainSafe := v == strings.TrimSpace(v) &&
		!strings.ContainsAny(v, "\"\n#") &&
		!strings.Contains(v, ": ") &&
		!strings.HasSuffix(v, ":") &&
		!strings.HasPrefix(v, "[") &&
		!strings.HasPrefix(v, "|") &&
		!strings.HasPrefix(v, "- ")
	if plainSafe {
		return v
	}
	return strconv.Quote(v)
}

// normalizePurposes sorts and dedupes a purpose list into enum order.
func normalizePurposes(ps []store.Purpose) []store.Purpose {
	seen := map[store.Purpose]bool{}
	var out []store.Purpose
	for _, p := range store.AllPurposes {
		for _, q := range ps {
			if q == p && !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}
