package authroot

import (
	"crypto/sha1"
	"math/big"
	"testing"

	"repro/internal/testcerts"
)

// FuzzParse hardens the CTL ASN.1 decoder against arbitrary DER.
func FuzzParse(f *testing.F) {
	rs := testcerts.Roots(1)
	valid, err := Marshal(&CTL{
		SequenceNumber: big.NewInt(1),
		ThisUpdate:     ts(2021, 1, 1),
		Subjects:       []TrustedSubject{{SHA1: sha1.Sum(rs[0].DER), FriendlyName: "Seed"}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x00})
	f.Add([]byte{0x30, 0x82, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		ctl, err := Parse(data)
		if err != nil {
			return
		}
		if _, err := Marshal(ctl); err != nil {
			t.Fatalf("re-marshal of parsed CTL failed: %v", err)
		}
	})
}
