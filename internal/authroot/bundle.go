package authroot

import (
	"crypto/sha1"
	"encoding/asn1"
	"encoding/hex"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"time"

	"repro/internal/store"
)

// Bundle layout constants.
const (
	// STLName is the trust list file inside a bundle directory.
	STLName = "authroot.stl"
	// CertsDir holds the per-hash certificate files.
	CertsDir = "certs"
)

// purposeEKU maps store purposes onto the EKU OIDs the CTL carries.
func purposeEKU(p store.Purpose) (asn1.ObjectIdentifier, bool) {
	switch p {
	case store.ServerAuth:
		return OIDServerAuth, true
	case store.EmailProtection:
		return OIDEmailProtection, true
	case store.CodeSigning:
		return OIDCodeSigning, true
	case store.TimeStamping:
		return OIDTimeStamping, true
	default:
		return nil, false
	}
}

func ekuPurpose(oid asn1.ObjectIdentifier) (store.Purpose, bool) {
	switch {
	case oid.Equal(OIDServerAuth):
		return store.ServerAuth, true
	case oid.Equal(OIDEmailProtection):
		return store.EmailProtection, true
	case oid.Equal(OIDCodeSigning):
		return store.CodeSigning, true
	case oid.Equal(OIDTimeStamping):
		return store.TimeStamping, true
	default:
		return 0, false
	}
}

// SubjectFromEntry converts a trust entry to a CTL trusted subject.
func SubjectFromEntry(e *store.TrustEntry) TrustedSubject {
	var s TrustedSubject
	s.SHA1 = sha1.Sum(e.DER)
	s.FriendlyName = e.Label
	allDistrusted := true
	for _, p := range []store.Purpose{store.ServerAuth, store.EmailProtection, store.CodeSigning, store.TimeStamping} {
		switch e.TrustFor(p) {
		case store.Trusted:
			allDistrusted = false
			if oid, ok := purposeEKU(p); ok {
				s.EKUs = append(s.EKUs, oid)
			}
		}
	}
	if allDistrusted {
		s.Disallowed = true
		s.EKUs = nil
	}
	// Microsoft models partial distrust with a single NotBefore filetime
	// covering all usages; use the earliest per-purpose date.
	var earliest *time.Time
	for _, p := range store.AllPurposes {
		if da, ok := e.DistrustAfterFor(p); ok {
			if earliest == nil || da.Before(*earliest) {
				t := da
				earliest = &t
			}
		}
	}
	s.NotBefore = earliest
	return s
}

// EntryFromSubject converts a CTL subject plus its certificate DER back to
// a trust entry.
func EntryFromSubject(s TrustedSubject, der []byte) (*store.TrustEntry, error) {
	if got := sha1.Sum(der); got != s.SHA1 {
		return nil, fmt.Errorf("authroot: certificate hash %x does not match subject %x",
			got[:4], s.SHA1[:4])
	}
	e, err := store.NewEntry(der)
	if err != nil {
		return nil, err
	}
	if s.FriendlyName != "" {
		e.Label = s.FriendlyName
	}
	switch {
	case s.Disallowed:
		for _, p := range []store.Purpose{store.ServerAuth, store.EmailProtection, store.CodeSigning, store.TimeStamping} {
			e.SetTrust(p, store.Distrusted)
		}
	case len(s.EKUs) == 0:
		// No EKU restriction: trusted for everything.
		for _, p := range []store.Purpose{store.ServerAuth, store.EmailProtection, store.CodeSigning, store.TimeStamping} {
			e.SetTrust(p, store.Trusted)
		}
	default:
		for _, oid := range s.EKUs {
			if p, ok := ekuPurpose(oid); ok {
				e.SetTrust(p, store.Trusted)
			}
		}
	}
	if s.NotBefore != nil && !s.Disallowed {
		for _, p := range store.AllPurposes {
			if e.TrustedFor(p) {
				e.SetDistrustAfter(p, *s.NotBefore)
			}
		}
	}
	return e, nil
}

// WriteBundle writes entries as an authroot bundle: authroot.stl plus
// certs/<sha1>.cer files.
func WriteBundle(dir string, entries []*store.TrustEntry, sequence int64, thisUpdate time.Time) error {
	certDir := filepath.Join(dir, CertsDir)
	if err := os.MkdirAll(certDir, 0o755); err != nil {
		return fmt.Errorf("authroot: %w", err)
	}
	ctl := &CTL{SequenceNumber: big.NewInt(sequence), ThisUpdate: thisUpdate}
	for _, e := range entries {
		s := SubjectFromEntry(e)
		ctl.Subjects = append(ctl.Subjects, s)
		name := hex.EncodeToString(s.SHA1[:]) + ".cer"
		if err := os.WriteFile(filepath.Join(certDir, name), e.DER, 0o644); err != nil {
			return fmt.Errorf("authroot: %w", err)
		}
	}
	der, err := Marshal(ctl)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, STLName), der, 0o644); err != nil {
		return fmt.Errorf("authroot: %w", err)
	}
	return nil
}

// ReadBundle reads an authroot bundle back into trust entries. Subjects
// whose certificate file is missing are reported in missing (by hex hash)
// rather than failing the whole read, because the real archive is similarly
// incomplete for long-removed roots.
func ReadBundle(dir string) (entries []*store.TrustEntry, missing []string, err error) {
	der, err := os.ReadFile(filepath.Join(dir, STLName))
	if err != nil {
		return nil, nil, fmt.Errorf("authroot: %w", err)
	}
	ctl, err := Parse(der)
	if err != nil {
		return nil, nil, err
	}
	for _, s := range ctl.Subjects {
		hexHash := hex.EncodeToString(s.SHA1[:])
		certPath := filepath.Join(dir, CertsDir, hexHash+".cer")
		certDER, err := os.ReadFile(certPath)
		if os.IsNotExist(err) {
			missing = append(missing, hexHash)
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("authroot: %w", err)
		}
		e, err := EntryFromSubject(s, certDER)
		if err != nil {
			return nil, nil, fmt.Errorf("authroot: %s: %w", hexHash, err)
		}
		entries = append(entries, e)
	}
	return entries, missing, nil
}

// Fingerprints returns the SHA-1 hex identifiers in the CTL, for quick
// membership checks without loading certificates.
func (c *CTL) Fingerprints() []string {
	out := make([]string, 0, len(c.Subjects))
	for _, s := range c.Subjects {
		out = append(out, hex.EncodeToString(s.SHA1[:]))
	}
	return out
}
