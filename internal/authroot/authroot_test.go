package authroot

import (
	"crypto/sha1"
	"encoding/asn1"
	"math/big"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/testcerts"
)

func ts(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

func TestFiletimeRoundTrip(t *testing.T) {
	cases := []time.Time{
		ts(1601, 1, 2),
		ts(1970, 1, 1),
		ts(2017, 9, 22),
		time.Date(2021, 3, 1, 13, 45, 30, 0, time.UTC),
	}
	for _, c := range cases {
		got, err := bytesToFiletime(filetimeToBytes(c))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(c) {
			t.Errorf("filetime round trip: %v != %v", got, c)
		}
	}
	if _, err := bytesToFiletime([]byte{1, 2, 3}); err == nil {
		t.Error("short FILETIME should error")
	}
}

func TestUTF16RoundTrip(t *testing.T) {
	for _, s := range []string{"", "Microsoft Root", "ümlaut ÇA", "日本語"} {
		if got := utf16leString(utf16leBytes(s)); got != s {
			t.Errorf("utf16 round trip %q -> %q", s, got)
		}
	}
}

func TestCTLRoundTrip(t *testing.T) {
	rs := testcerts.Roots(3)
	da := ts(2020, 2, 26)
	nb := ts(2017, 9, 22)
	in := &CTL{
		SequenceNumber: big.NewInt(42),
		ThisUpdate:     ts(2021, 3, 1),
		Subjects: []TrustedSubject{
			{SHA1: sha1.Sum(rs[0].DER), FriendlyName: "Unrestricted Root"},
			{SHA1: sha1.Sum(rs[1].DER), FriendlyName: "Email Only", EKUs: []asn1.ObjectIdentifier{OIDEmailProtection}},
			{SHA1: sha1.Sum(rs[2].DER), FriendlyName: "Distrusted", Disallowed: true, DisallowedAfter: &da, NotBefore: &nb},
		},
	}
	der, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, err := Parse(der)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if out.SequenceNumber.Cmp(in.SequenceNumber) != 0 {
		t.Errorf("sequence = %v", out.SequenceNumber)
	}
	if !out.ThisUpdate.Equal(in.ThisUpdate) {
		t.Errorf("thisUpdate = %v", out.ThisUpdate)
	}
	if len(out.Subjects) != 3 {
		t.Fatalf("subjects = %d", len(out.Subjects))
	}
	s0, s1, s2 := out.Subjects[0], out.Subjects[1], out.Subjects[2]
	if s0.FriendlyName != "Unrestricted Root" || len(s0.EKUs) != 0 || s0.Disallowed {
		t.Errorf("subject 0 = %+v", s0)
	}
	if len(s1.EKUs) != 1 || !s1.EKUs[0].Equal(OIDEmailProtection) {
		t.Errorf("subject 1 EKUs = %v", s1.EKUs)
	}
	if !s2.Disallowed || s2.DisallowedAfter == nil || !s2.DisallowedAfter.Equal(da) {
		t.Errorf("subject 2 disallow = %+v", s2)
	}
	if s2.NotBefore == nil || !s2.NotBefore.Equal(nb) {
		t.Errorf("subject 2 notBefore = %v", s2.NotBefore)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{0x30, 0x00}); err == nil {
		t.Error("empty sequence should fail")
	}
	if _, err := Parse([]byte("garbage")); err == nil {
		t.Error("garbage should fail")
	}
	// Valid ASN.1 but wrong content type.
	ctl := &CTL{ThisUpdate: ts(2021, 1, 1)}
	der, err := Marshal(ctl)
	if err != nil {
		t.Fatal(err)
	}
	der[9] ^= 0x01 // flip a byte inside the content-type OID
	if _, err := Parse(der); err == nil {
		t.Error("wrong content type should fail")
	}
}

func TestSubjectEntryConversion(t *testing.T) {
	entries := testcerts.Entries(1, store.ServerAuth, store.EmailProtection)
	e := entries[0]
	e.SetDistrustAfter(store.ServerAuth, ts(2019, 4, 1))

	s := SubjectFromEntry(e)
	if s.Disallowed {
		t.Error("trusted entry should not be disallowed")
	}
	if len(s.EKUs) != 2 {
		t.Errorf("EKUs = %v", s.EKUs)
	}
	if s.NotBefore == nil || !s.NotBefore.Equal(ts(2019, 4, 1)) {
		t.Errorf("NotBefore = %v", s.NotBefore)
	}

	back, err := EntryFromSubject(s, e.DER)
	if err != nil {
		t.Fatal(err)
	}
	if !back.TrustedFor(store.ServerAuth) || !back.TrustedFor(store.EmailProtection) {
		t.Error("round trip lost purposes")
	}
	if back.TrustedFor(store.CodeSigning) {
		t.Error("round trip gained code signing")
	}
	da, ok := back.DistrustAfterFor(store.ServerAuth)
	if !ok || !da.Equal(ts(2019, 4, 1)) {
		t.Errorf("distrust-after = %v, %v", da, ok)
	}
}

func TestSubjectFromDistrustedEntry(t *testing.T) {
	e := testcerts.Entries(1)[0] // no purposes at all
	for _, p := range store.AllPurposes {
		e.SetTrust(p, store.Distrusted)
	}
	s := SubjectFromEntry(e)
	if !s.Disallowed {
		t.Error("fully distrusted entry should be disallowed")
	}
	back, err := EntryFromSubject(s, e.DER)
	if err != nil {
		t.Fatal(err)
	}
	if back.TrustedFor(store.ServerAuth) {
		t.Error("disallowed subject should not be trusted")
	}
	if back.TrustFor(store.ServerAuth) != store.Distrusted {
		t.Errorf("trust = %v", back.TrustFor(store.ServerAuth))
	}
}

func TestEntryFromSubjectHashMismatch(t *testing.T) {
	rs := testcerts.Roots(2)
	s := TrustedSubject{SHA1: sha1.Sum(rs[0].DER)}
	if _, err := EntryFromSubject(s, rs[1].DER); err == nil {
		t.Error("hash mismatch should error")
	}
}

func TestUnrestrictedSubjectTrustsEverything(t *testing.T) {
	rs := testcerts.Roots(1)
	s := TrustedSubject{SHA1: sha1.Sum(rs[0].DER)}
	e, err := EntryFromSubject(s, rs[0].DER)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range store.AllPurposes {
		if !e.TrustedFor(p) {
			t.Errorf("unrestricted subject should trust %s", p)
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(3, store.ServerAuth)
	in[1].SetTrust(store.EmailProtection, store.Trusted)
	if err := WriteBundle(dir, in, 7, ts(2021, 3, 1)); err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	out, missing, err := ReadBundle(dir)
	if err != nil {
		t.Fatalf("ReadBundle: %v", err)
	}
	if len(missing) != 0 {
		t.Errorf("missing = %v", missing)
	}
	if len(out) != 3 {
		t.Fatalf("entries = %d", len(out))
	}
	found := map[string]bool{}
	for _, e := range out {
		found[e.Fingerprint.String()] = true
	}
	for _, e := range in {
		if !found[e.Fingerprint.String()] {
			t.Errorf("entry %s missing after round trip", e.Fingerprint.Short())
		}
	}
}

func TestBundleMissingCertReported(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(2, store.ServerAuth)
	if err := WriteBundle(dir, in, 1, ts(2021, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// Delete one certificate file: the archive situation for old roots.
	s := SubjectFromEntry(in[0])
	name := filepath.Join(dir, CertsDir, hexOf(s.SHA1)+".cer")
	if err := os.Remove(name); err != nil {
		t.Fatal(err)
	}
	out, missing, err := ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(missing) != 1 {
		t.Errorf("entries=%d missing=%d", len(out), len(missing))
	}
}

func hexOf(h [sha1.Size]byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 40)
	for _, b := range h {
		out = append(out, digits[b>>4], digits[b&0xF])
	}
	return string(out)
}

func TestCTLFingerprints(t *testing.T) {
	rs := testcerts.Roots(2)
	ctl := &CTL{
		ThisUpdate: ts(2021, 1, 1),
		Subjects: []TrustedSubject{
			{SHA1: sha1.Sum(rs[0].DER)},
			{SHA1: sha1.Sum(rs[1].DER)},
		},
	}
	fps := ctl.Fingerprints()
	if len(fps) != 2 || len(fps[0]) != 40 {
		t.Errorf("fingerprints = %v", fps)
	}
}

func TestReadBundleMissingSTL(t *testing.T) {
	if _, _, err := ReadBundle(t.TempDir()); err == nil {
		t.Error("missing STL should error")
	}
}
