// Package authroot reads and writes Microsoft-style Certificate Trust Lists
// (the authroot.stl mechanism behind Windows Automatic Root Updates, §3 of
// the paper).
//
// A CTL does not carry certificates: it lists trust anchors by SHA-1 hash
// together with Microsoft-specific property attributes — the EKU property
// restricting trust purposes, the "disallowed" FILETIME that distrusts a
// root outright, and the "not before" FILETIME that implements Microsoft's
// flavour of partial distrust (certificates issued after the date are
// rejected). Full certificates are distributed separately, addressable by
// hash; a Bundle pairs the STL with its certificate directory the way the
// open-source authroot.stl archive the paper used does.
//
// The on-disk structure follows the real CTL ASN.1 (CertificateTrustList,
// TrustedSubject, Attribute) wrapped in a ContentInfo with the szOID_CTL
// content type. The Authenticode SignedData signature layer is intentionally
// omitted: the paper's analyses never verify Microsoft's signature, and the
// omission keeps the codec self-contained.
package authroot

import (
	"crypto/sha1"
	"encoding/asn1"
	"encoding/binary"
	"fmt"
	"math/big"
	"time"
)

// Object identifiers used by CTLs.
var (
	// oidCTL is szOID_CTL (1.3.6.1.4.1.311.10.1), the ContentInfo type.
	oidCTL = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 311, 10, 1}
	// oidRootListSigner is the subject usage marking a root-list CTL.
	oidRootListSigner = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 311, 10, 3, 9}
	// oidSHA1 identifies the subject hash algorithm.
	oidSHA1 = asn1.ObjectIdentifier{1, 3, 14, 3, 2, 26}

	// Property attributes (CERT_*_PROP_ID under 1.3.6.1.4.1.311.10.11).
	oidEKUProp          = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 311, 10, 11, 9}
	oidDisallowedProp   = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 311, 10, 11, 104}
	oidNotBeforeProp    = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 311, 10, 11, 126}
	oidFriendlyNameProp = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 311, 10, 11, 11}
)

// Extended key usage OIDs appearing in EKU properties.
var (
	OIDServerAuth      = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 1}
	OIDClientAuth      = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 2}
	OIDCodeSigning     = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 3}
	OIDEmailProtection = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 4}
	OIDTimeStamping    = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 3, 8}
)

// TrustedSubject is one root's record in the CTL.
type TrustedSubject struct {
	// SHA1 identifies the certificate.
	SHA1 [sha1.Size]byte
	// FriendlyName is Microsoft's display name for the root, if present.
	FriendlyName string
	// EKUs restricts the purposes the root is trusted for; empty means
	// trusted for all purposes (Microsoft's default).
	EKUs []asn1.ObjectIdentifier
	// Disallowed marks outright distrust (presence of the disallowed
	// property or membership in the disallowed CTL).
	Disallowed bool
	// DisallowedAfter, when set, is the FILETIME after which the root is
	// distrusted.
	DisallowedAfter *time.Time
	// NotBefore, when set, rejects certificates issued after the date —
	// Microsoft's partial distrust.
	NotBefore *time.Time
}

// CTL is a parsed certificate trust list.
type CTL struct {
	SequenceNumber *big.Int
	ThisUpdate     time.Time
	Subjects       []TrustedSubject
}

// ---- ASN.1 wire structures ----

type contentInfo struct {
	ContentType asn1.ObjectIdentifier
	Content     asn1.RawValue `asn1:"explicit,tag:0"`
}

type certificateTrustList struct {
	SubjectUsage     []asn1.ObjectIdentifier
	SequenceNumber   *big.Int `asn1:"optional"`
	ThisUpdate       time.Time
	SubjectAlgorithm algorithmIdentifier
	TrustedSubjects  []trustedSubjectASN `asn1:"optional"`
}

type algorithmIdentifier struct {
	Algorithm  asn1.ObjectIdentifier
	Parameters asn1.RawValue `asn1:"optional"`
}

type trustedSubjectASN struct {
	SubjectIdentifier []byte
	Attributes        []attributeASN `asn1:"set,optional"`
}

type attributeASN struct {
	Type   asn1.ObjectIdentifier
	Values []asn1.RawValue `asn1:"set"`
}

// filetimeEpochDelta is the number of seconds between the Windows FILETIME
// epoch (1601-01-01) and the Unix epoch.
const filetimeEpochDelta = 11644473600

// filetimeToBytes encodes a time as a Windows FILETIME: little-endian
// 64-bit count of 100ns intervals since 1601-01-01 UTC. The arithmetic is
// done in integer ticks because the 420-year span overflows time.Duration.
func filetimeToBytes(t time.Time) []byte {
	ticks := (t.Unix()+filetimeEpochDelta)*10_000_000 + int64(t.Nanosecond())/100
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(ticks))
	return b[:]
}

func bytesToFiletime(b []byte) (time.Time, error) {
	if len(b) != 8 {
		return time.Time{}, fmt.Errorf("authroot: FILETIME must be 8 bytes, got %d", len(b))
	}
	ticks := int64(binary.LittleEndian.Uint64(b))
	sec := ticks/10_000_000 - filetimeEpochDelta
	nsec := (ticks % 10_000_000) * 100
	return time.Unix(sec, nsec).UTC(), nil
}

// utf16leBytes encodes a string as null-terminated UTF-16LE, the encoding of
// the friendly-name property.
func utf16leBytes(s string) []byte {
	out := make([]byte, 0, len(s)*2+2)
	for _, r := range s {
		if r > 0xFFFF {
			r = '?' // BMP only; fine for CA names
		}
		out = append(out, byte(r), byte(r>>8))
	}
	return append(out, 0, 0)
}

func utf16leString(b []byte) string {
	var runes []rune
	for i := 0; i+1 < len(b); i += 2 {
		u := uint16(b[i]) | uint16(b[i+1])<<8
		if u == 0 {
			break
		}
		runes = append(runes, rune(u))
	}
	return string(runes)
}

// Marshal serializes the CTL as a ContentInfo-wrapped DER document.
func Marshal(ctl *CTL) ([]byte, error) {
	var subjects []trustedSubjectASN
	for i, s := range ctl.Subjects {
		ts := trustedSubjectASN{SubjectIdentifier: append([]byte(nil), s.SHA1[:]...)}
		if len(s.EKUs) > 0 {
			inner, err := asn1.Marshal(s.EKUs)
			if err != nil {
				return nil, fmt.Errorf("authroot: subject %d EKUs: %w", i, err)
			}
			if err := addOctetAttr(&ts, oidEKUProp, inner); err != nil {
				return nil, err
			}
		}
		if s.FriendlyName != "" {
			if err := addOctetAttr(&ts, oidFriendlyNameProp, utf16leBytes(s.FriendlyName)); err != nil {
				return nil, err
			}
		}
		if s.Disallowed && s.DisallowedAfter == nil {
			// Presence of the disallowed property with an epoch FILETIME
			// means "distrusted since forever".
			if err := addOctetAttr(&ts, oidDisallowedProp, filetimeToBytes(time.Date(1601, 1, 1, 0, 0, 0, 0, time.UTC))); err != nil {
				return nil, err
			}
		}
		if s.DisallowedAfter != nil {
			if err := addOctetAttr(&ts, oidDisallowedProp, filetimeToBytes(*s.DisallowedAfter)); err != nil {
				return nil, err
			}
		}
		if s.NotBefore != nil {
			if err := addOctetAttr(&ts, oidNotBeforeProp, filetimeToBytes(*s.NotBefore)); err != nil {
				return nil, err
			}
		}
		subjects = append(subjects, ts)
	}
	ctlASN := certificateTrustList{
		SubjectUsage:     []asn1.ObjectIdentifier{oidRootListSigner},
		SequenceNumber:   ctl.SequenceNumber,
		ThisUpdate:       ctl.ThisUpdate.UTC().Truncate(time.Second),
		SubjectAlgorithm: algorithmIdentifier{Algorithm: oidSHA1, Parameters: asn1.RawValue{Tag: asn1.TagNull}},
		TrustedSubjects:  subjects,
	}
	inner, err := asn1.Marshal(ctlASN)
	if err != nil {
		return nil, fmt.Errorf("authroot: marshal CTL: %w", err)
	}
	// encoding/asn1 ignores explicit-tag directives when a RawValue carries
	// FullBytes, so build the [0] EXPLICIT wrapper by hand via Bytes.
	outer, err := asn1.Marshal(contentInfo{
		ContentType: oidCTL,
		Content: asn1.RawValue{
			Class:      asn1.ClassContextSpecific,
			Tag:        0,
			IsCompound: true,
			Bytes:      inner,
		},
	})
	if err != nil {
		return nil, fmt.Errorf("authroot: marshal ContentInfo: %w", err)
	}
	return outer, nil
}

func addOctetAttr(ts *trustedSubjectASN, oid asn1.ObjectIdentifier, payload []byte) error {
	wrapped, err := asn1.Marshal(payload) // OCTET STRING
	if err != nil {
		return fmt.Errorf("authroot: wrap attribute %v: %w", oid, err)
	}
	ts.Attributes = append(ts.Attributes, attributeASN{
		Type:   oid,
		Values: []asn1.RawValue{{FullBytes: wrapped}},
	})
	return nil
}

// Parse deserializes a ContentInfo-wrapped CTL.
func Parse(der []byte) (*CTL, error) {
	var ci contentInfo
	rest, err := asn1.Unmarshal(der, &ci)
	if err != nil {
		return nil, fmt.Errorf("authroot: ContentInfo: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("authroot: %d trailing bytes", len(rest))
	}
	if !ci.ContentType.Equal(oidCTL) {
		return nil, fmt.Errorf("authroot: content type %v is not szOID_CTL", ci.ContentType)
	}
	var ctlASN certificateTrustList
	if rest, err := asn1.Unmarshal(ci.Content.Bytes, &ctlASN); err != nil {
		return nil, fmt.Errorf("authroot: CTL body: %w", err)
	} else if len(rest) != 0 {
		return nil, fmt.Errorf("authroot: %d trailing bytes in CTL body", len(rest))
	}
	usageOK := false
	for _, u := range ctlASN.SubjectUsage {
		if u.Equal(oidRootListSigner) {
			usageOK = true
		}
	}
	if !usageOK {
		return nil, fmt.Errorf("authroot: CTL subject usage %v is not a root list", ctlASN.SubjectUsage)
	}
	if !ctlASN.SubjectAlgorithm.Algorithm.Equal(oidSHA1) {
		return nil, fmt.Errorf("authroot: subject algorithm %v is not SHA-1", ctlASN.SubjectAlgorithm.Algorithm)
	}

	ctl := &CTL{SequenceNumber: ctlASN.SequenceNumber, ThisUpdate: ctlASN.ThisUpdate}
	for i, ts := range ctlASN.TrustedSubjects {
		if len(ts.SubjectIdentifier) != sha1.Size {
			return nil, fmt.Errorf("authroot: subject %d identifier is %d bytes, want %d", i, len(ts.SubjectIdentifier), sha1.Size)
		}
		var s TrustedSubject
		copy(s.SHA1[:], ts.SubjectIdentifier)
		for _, attr := range ts.Attributes {
			if len(attr.Values) == 0 {
				continue
			}
			var payload []byte
			if _, err := asn1.Unmarshal(attr.Values[0].FullBytes, &payload); err != nil {
				return nil, fmt.Errorf("authroot: subject %d attribute %v: %w", i, attr.Type, err)
			}
			switch {
			case attr.Type.Equal(oidEKUProp):
				var ekus []asn1.ObjectIdentifier
				if _, err := asn1.Unmarshal(payload, &ekus); err != nil {
					return nil, fmt.Errorf("authroot: subject %d EKU property: %w", i, err)
				}
				s.EKUs = ekus
			case attr.Type.Equal(oidFriendlyNameProp):
				s.FriendlyName = utf16leString(payload)
			case attr.Type.Equal(oidDisallowedProp):
				t, err := bytesToFiletime(payload)
				if err != nil {
					return nil, fmt.Errorf("authroot: subject %d disallowed property: %w", i, err)
				}
				s.Disallowed = true
				if t.Year() > 1601 {
					tt := t
					s.DisallowedAfter = &tt
				}
			case attr.Type.Equal(oidNotBeforeProp):
				t, err := bytesToFiletime(payload)
				if err != nil {
					return nil, fmt.Errorf("authroot: subject %d not-before property: %w", i, err)
				}
				s.NotBefore = &t
			}
		}
		ctl.Subjects = append(ctl.Subjects, s)
	}
	return ctl, nil
}
