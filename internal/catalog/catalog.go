// Package catalog ingests root-store files from disk into the analysis
// database — the scraper side of the paper's methodology (§3.1: "we parse
// these formats and consolidate them into a single database"). It
// auto-detects each snapshot's format from its files, so a directory tree
// of collected releases (like cmd/synthgen's output, or a real archive of
// certdata.txt / authroot.stl / cacerts files) loads with one call.
//
// Expected layout: <root>/<provider>/<version>/<files...>, where each
// version directory holds one snapshot in any supported format. Snapshot
// dates come from a manifest file, or are derived from the version
// directory's name when it parses as a date, or fall back to file mtime.
package catalog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/certdata"
	"repro/internal/ctlog"
	"repro/internal/jks"
	"repro/internal/manifest"
	"repro/internal/nodecerts"
	"repro/internal/pemstore"
	"repro/internal/store"
)

// TreeLayout documents the snapshot-tree layout every disk-facing tool in
// this module shares — catalog.LoadTree ingests it, cmd/synthgen writes it,
// and internal/tracker watches it. Keep cmd help texts pointing here rather
// than restating the shape.
const TreeLayout = `<root>/<provider>/<version>/<store files>
  one snapshot per version directory, auto-detected format
  (certdata.txt, authroot.stl, cacerts.jks, node_root_certs.h,
  tls-ca-bundle.pem / purpose-split bundles, Apple roots dir,
  CT get-roots.json, tpm-roots.yaml manifest bundles);
  version directories named like dates (2006-01-02, 20060102, 2006-01)
  date the snapshot, otherwise file mtime is used; an optional
  ct-log-list.json at the tree root maps CT providers to operators`

// Format identifies a detected on-disk root-store format.
type Format string

// Detected formats.
const (
	FormatCertdata     Format = "certdata"
	FormatAuthroot     Format = "authroot"
	FormatJKS          Format = "jks"
	FormatNodeHeader   Format = "node-header"
	FormatPEMBundle    Format = "pem-bundle"
	FormatPurposeSplit Format = "purpose-split"
	FormatAppleDir     Format = "apple-dir"
	FormatCTRoots      Format = "ct-roots"
	FormatManifest     Format = "manifest"
	FormatUnknown      Format = ""
)

// Kind returns the trust-ecosystem kind snapshots of this format belong
// to. This is the single place format knowledge turns into a kind tag;
// everything downstream of LoadSnapshot branches on the kind (or, mostly,
// on nothing at all).
func (f Format) Kind() store.Kind {
	switch f {
	case FormatCTRoots:
		return store.KindCT
	case FormatManifest:
		return store.KindManifest
	default:
		return store.KindTLS
	}
}

// ErrAmbiguousFormat marks a snapshot directory whose files match more
// than one format probe — say, a certdata.txt sitting next to an
// authroot.stl. Earlier versions of DetectFormat silently picked whichever
// format the detection switch listed first, which made ingest results
// depend on probe ordering; now the caller gets told and decides. Test
// with errors.Is.
var ErrAmbiguousFormat = errors.New("catalog: ambiguous snapshot format")

// Options tunes ingestion.
type Options struct {
	// JKSPassword verifies keystore integrity (default "changeit").
	JKSPassword string
	// BundlePurposes are the purposes a bare PEM bundle grants (default
	// ServerAuth only, the tls-ca-bundle.pem semantics).
	BundlePurposes []store.Purpose
	// Archive selects sidecar caching: ArchiveAuto (default) serves
	// LoadTree from a .rootpack sidecar when fresh and compiles one after
	// each native parse; ArchiveOff disables both.
	Archive ArchiveMode
	// ArchivePath overrides the sidecar location (default
	// <root>/.rootpack).
	ArchivePath string
}

func (o Options) withDefaults() Options {
	if o.JKSPassword == "" {
		o.JKSPassword = "changeit"
	}
	if len(o.BundlePurposes) == 0 {
		o.BundlePurposes = []store.Purpose{store.ServerAuth}
	}
	return o
}

// DetectFormat inspects a snapshot directory and reports its format.
//
// Every format's marker files are probed independently; exactly one probe
// may claim the directory. When two or more match, DetectFormat returns an
// error wrapping ErrAmbiguousFormat that names all claimants — it never
// silently picks one, because which parser runs decides what trust data
// comes out. Two deliberate exceptions to strict independence:
//
//   - The PEM family is one probe. A purpose-split layout is a PEM bundle
//     plus more files, so "tls-ca-bundle.pem with email/objsign siblings"
//     resolves to purpose-split by specificity inside the probe, not by
//     inter-probe priority.
//   - The extension heuristics (a directory of bare .cer files → Apple,
//     any .pem/.crt → PEM bundle) are fallbacks that only fire when no
//     marker-file probe matched at all; they are how unlabeled scrape dirs
//     still ingest, and too weak to veto a real marker.
func DetectFormat(dir string) (Format, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return FormatUnknown, fmt.Errorf("catalog: %w", err)
	}
	names := map[string]bool{}
	var pemCount, cerCount int
	hasManifest := false
	for _, de := range des {
		if de.IsDir() {
			names[de.Name()+"/"] = true
			continue
		}
		names[de.Name()] = true
		if manifest.IsManifestName(de.Name()) {
			hasManifest = true
		}
		switch strings.ToLower(filepath.Ext(de.Name())) {
		case ".pem", ".crt":
			pemCount++
		case ".cer":
			cerCount++
		}
	}

	pemFamily := func() Format {
		if names["tls-ca-bundle.pem"] && (names["email-ca-bundle.pem"] || names["objsign-ca-bundle.pem"]) {
			return FormatPurposeSplit
		}
		return FormatPEMBundle
	}
	probes := []struct {
		format  Format
		matched bool
	}{
		{FormatCertdata, names["certdata.txt"]},
		{FormatAuthroot, names[authroot.STLName]},
		{FormatNodeHeader, names["node_root_certs.h"]},
		{FormatJKS, hasJKS(des)},
		{pemFamily(), names["tls-ca-bundle.pem"] || names["cert.pem"] || names["ca-certificates.crt"]},
		{FormatAppleDir, names[applestore.TrustSettingsName]},
		{FormatCTRoots, names[ctlog.GetRootsName]},
		{FormatManifest, hasManifest},
	}
	var matched []Format
	for _, p := range probes {
		if p.matched {
			matched = append(matched, p.format)
		}
	}
	switch len(matched) {
	case 1:
		return matched[0], nil
	case 0:
		// Marker-free fallbacks.
		switch {
		case cerCount > 0 && pemCount == 0:
			return FormatAppleDir, nil
		case pemCount > 0:
			return FormatPEMBundle, nil
		}
		return FormatUnknown, fmt.Errorf("catalog: no recognizable root store in %s", dir)
	}
	strs := make([]string, len(matched))
	for i, f := range matched {
		strs[i] = string(f)
	}
	sort.Strings(strs)
	return FormatUnknown, fmt.Errorf("%w: %s matches %s", ErrAmbiguousFormat, dir, strings.Join(strs, ", "))
}

func hasJKS(des []os.DirEntry) bool {
	for _, de := range des {
		if !de.IsDir() && (strings.HasSuffix(de.Name(), ".jks") || de.Name() == "cacerts") {
			return true
		}
	}
	return false
}

// LoadSnapshot ingests one snapshot directory.
func LoadSnapshot(dir, provider, version string, date time.Time, opts Options) (*store.Snapshot, Format, error) {
	opts = opts.withDefaults()
	format, err := DetectFormat(dir)
	if err != nil {
		return nil, FormatUnknown, err
	}
	var entries []*store.TrustEntry
	switch format {
	case FormatCertdata:
		f, err := os.Open(filepath.Join(dir, "certdata.txt"))
		if err != nil {
			return nil, format, fmt.Errorf("catalog: %w", err)
		}
		res, perr := certdata.Parse(f)
		f.Close()
		if perr != nil {
			return nil, format, perr
		}
		entries = res.Entries
	case FormatAuthroot:
		es, _, err := authroot.ReadBundle(dir)
		if err != nil {
			return nil, format, err
		}
		entries = es
	case FormatNodeHeader:
		f, err := os.Open(filepath.Join(dir, "node_root_certs.h"))
		if err != nil {
			return nil, format, fmt.Errorf("catalog: %w", err)
		}
		es, perr := nodecerts.Parse(f)
		f.Close()
		if perr != nil {
			return nil, format, perr
		}
		entries = es
	case FormatJKS:
		path, err := jksPath(dir)
		if err != nil {
			return nil, format, err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, format, fmt.Errorf("catalog: %w", err)
		}
		ks, err := jks.Parse(data, opts.JKSPassword)
		if err != nil {
			return nil, format, err
		}
		// Java's cacerts conflates TLS, email and code signing.
		entries, err = ks.ToEntries(store.ServerAuth, store.EmailProtection, store.CodeSigning)
		if err != nil {
			return nil, format, err
		}
	case FormatPurposeSplit:
		es, err := pemstore.ReadPurposeBundles(dir)
		if err != nil {
			return nil, format, err
		}
		entries = es
	case FormatPEMBundle:
		path, err := pemPath(dir)
		if err != nil {
			return nil, format, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, format, fmt.Errorf("catalog: %w", err)
		}
		es, perr := pemstore.ParseBundle(f, opts.BundlePurposes...)
		f.Close()
		if perr != nil {
			return nil, format, perr
		}
		entries = es
	case FormatAppleDir:
		es, err := applestore.ReadDir(dir)
		if err != nil {
			return nil, format, err
		}
		entries = es
	case FormatCTRoots:
		es, err := ctlog.ReadDir(dir)
		if err != nil {
			return nil, format, err
		}
		entries = es
	case FormatManifest:
		es, err := manifest.ReadDir(dir)
		if err != nil {
			return nil, format, err
		}
		entries = es
	}
	s := store.NewSnapshot(provider, version, date)
	s.Kind = format.Kind()
	for _, e := range entries {
		s.Add(e)
	}
	return s, format, nil
}

func jksPath(dir string) (string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("catalog: %w", err)
	}
	for _, de := range des {
		if !de.IsDir() && (strings.HasSuffix(de.Name(), ".jks") || de.Name() == "cacerts") {
			return filepath.Join(dir, de.Name()), nil
		}
	}
	return "", fmt.Errorf("catalog: no JKS file in %s", dir)
}

func pemPath(dir string) (string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("catalog: %w", err)
	}
	// Preferred canonical names first.
	for _, name := range []string{"tls-ca-bundle.pem", "cert.pem", "ca-certificates.crt"} {
		for _, de := range des {
			if de.Name() == name {
				return filepath.Join(dir, name), nil
			}
		}
	}
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".pem") {
			return filepath.Join(dir, de.Name()), nil
		}
	}
	return "", fmt.Errorf("catalog: no PEM bundle in %s", dir)
}

// LoadTree ingests a <root>/<provider>/<version>/ tree into a database.
// Version directories named like dates (2006-01-02 or 20060102) provide
// snapshot dates; otherwise file modification time is used. Snapshots are
// parsed concurrently (bounded by GOMAXPROCS) and assembled in lexical
// (provider, version) order, so the result is deterministic. Under
// Options.Archive's default ArchiveAuto mode, a fresh .rootpack sidecar
// short-circuits parsing entirely, and a successful parse compiles one.
func LoadTree(root string, opts Options) (*store.Database, error) {
	db, _, err := LoadTreeInfo(root, opts)
	return db, err
}

// LoadTreeCtx is LoadTree with the load's phases recorded as spans of the
// trace carried in ctx (see LoadTreeInfoCtx).
func LoadTreeCtx(ctx context.Context, root string, opts Options) (*store.Database, error) {
	db, _, err := LoadTreeInfoCtx(ctx, root, opts)
	return db, err
}

func dateForVersion(dir, version string) time.Time {
	for _, layout := range []string{"2006-01-02", "20060102", "2006-01"} {
		if t, err := time.Parse(layout, version); err == nil {
			return t
		}
	}
	if fi, err := os.Stat(dir); err == nil {
		return fi.ModTime().UTC()
	}
	return time.Time{}
}
