// Package catalog ingests root-store files from disk into the analysis
// database — the scraper side of the paper's methodology (§3.1: "we parse
// these formats and consolidate them into a single database"). It
// auto-detects each snapshot's format from its files, so a directory tree
// of collected releases (like cmd/synthgen's output, or a real archive of
// certdata.txt / authroot.stl / cacerts files) loads with one call.
//
// Expected layout: <root>/<provider>/<version>/<files...>, where each
// version directory holds one snapshot in any supported format. Snapshot
// dates come from a manifest file, or are derived from the version
// directory's name when it parses as a date, or fall back to file mtime.
package catalog

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/certdata"
	"repro/internal/jks"
	"repro/internal/nodecerts"
	"repro/internal/pemstore"
	"repro/internal/store"
)

// TreeLayout documents the snapshot-tree layout every disk-facing tool in
// this module shares — catalog.LoadTree ingests it, cmd/synthgen writes it,
// and internal/tracker watches it. Keep cmd help texts pointing here rather
// than restating the shape.
const TreeLayout = `<root>/<provider>/<version>/<store files>
  one snapshot per version directory, auto-detected format
  (certdata.txt, authroot.stl, cacerts.jks, node_root_certs.h,
  tls-ca-bundle.pem / purpose-split bundles, Apple roots dir);
  version directories named like dates (2006-01-02, 20060102, 2006-01)
  date the snapshot, otherwise file mtime is used`

// Format identifies a detected on-disk root-store format.
type Format string

// Detected formats.
const (
	FormatCertdata     Format = "certdata"
	FormatAuthroot     Format = "authroot"
	FormatJKS          Format = "jks"
	FormatNodeHeader   Format = "node-header"
	FormatPEMBundle    Format = "pem-bundle"
	FormatPurposeSplit Format = "purpose-split"
	FormatAppleDir     Format = "apple-dir"
	FormatUnknown      Format = ""
)

// Options tunes ingestion.
type Options struct {
	// JKSPassword verifies keystore integrity (default "changeit").
	JKSPassword string
	// BundlePurposes are the purposes a bare PEM bundle grants (default
	// ServerAuth only, the tls-ca-bundle.pem semantics).
	BundlePurposes []store.Purpose
	// Archive selects sidecar caching: ArchiveAuto (default) serves
	// LoadTree from a .rootpack sidecar when fresh and compiles one after
	// each native parse; ArchiveOff disables both.
	Archive ArchiveMode
	// ArchivePath overrides the sidecar location (default
	// <root>/.rootpack).
	ArchivePath string
}

func (o Options) withDefaults() Options {
	if o.JKSPassword == "" {
		o.JKSPassword = "changeit"
	}
	if len(o.BundlePurposes) == 0 {
		o.BundlePurposes = []store.Purpose{store.ServerAuth}
	}
	return o
}

// DetectFormat inspects a snapshot directory and reports its format.
func DetectFormat(dir string) (Format, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return FormatUnknown, fmt.Errorf("catalog: %w", err)
	}
	names := map[string]bool{}
	var pemCount, cerCount int
	for _, de := range des {
		if de.IsDir() {
			names[de.Name()+"/"] = true
			continue
		}
		names[de.Name()] = true
		switch strings.ToLower(filepath.Ext(de.Name())) {
		case ".pem", ".crt":
			pemCount++
		case ".cer":
			cerCount++
		}
	}
	switch {
	case names["certdata.txt"]:
		return FormatCertdata, nil
	case names[authroot.STLName]:
		return FormatAuthroot, nil
	case names["node_root_certs.h"]:
		return FormatNodeHeader, nil
	case hasJKS(des):
		return FormatJKS, nil
	case names["tls-ca-bundle.pem"] && (names["email-ca-bundle.pem"] || names["objsign-ca-bundle.pem"]):
		return FormatPurposeSplit, nil
	case names["tls-ca-bundle.pem"] || names["cert.pem"] || names["ca-certificates.crt"]:
		return FormatPEMBundle, nil
	case names[applestore.TrustSettingsName] || (cerCount > 0 && pemCount == 0):
		return FormatAppleDir, nil
	case pemCount > 0:
		return FormatPEMBundle, nil
	default:
		return FormatUnknown, fmt.Errorf("catalog: no recognizable root store in %s", dir)
	}
}

func hasJKS(des []os.DirEntry) bool {
	for _, de := range des {
		if !de.IsDir() && (strings.HasSuffix(de.Name(), ".jks") || de.Name() == "cacerts") {
			return true
		}
	}
	return false
}

// LoadSnapshot ingests one snapshot directory.
func LoadSnapshot(dir, provider, version string, date time.Time, opts Options) (*store.Snapshot, Format, error) {
	opts = opts.withDefaults()
	format, err := DetectFormat(dir)
	if err != nil {
		return nil, FormatUnknown, err
	}
	var entries []*store.TrustEntry
	switch format {
	case FormatCertdata:
		f, err := os.Open(filepath.Join(dir, "certdata.txt"))
		if err != nil {
			return nil, format, fmt.Errorf("catalog: %w", err)
		}
		res, perr := certdata.Parse(f)
		f.Close()
		if perr != nil {
			return nil, format, perr
		}
		entries = res.Entries
	case FormatAuthroot:
		es, _, err := authroot.ReadBundle(dir)
		if err != nil {
			return nil, format, err
		}
		entries = es
	case FormatNodeHeader:
		f, err := os.Open(filepath.Join(dir, "node_root_certs.h"))
		if err != nil {
			return nil, format, fmt.Errorf("catalog: %w", err)
		}
		es, perr := nodecerts.Parse(f)
		f.Close()
		if perr != nil {
			return nil, format, perr
		}
		entries = es
	case FormatJKS:
		path, err := jksPath(dir)
		if err != nil {
			return nil, format, err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, format, fmt.Errorf("catalog: %w", err)
		}
		ks, err := jks.Parse(data, opts.JKSPassword)
		if err != nil {
			return nil, format, err
		}
		// Java's cacerts conflates TLS, email and code signing.
		entries, err = ks.ToEntries(store.ServerAuth, store.EmailProtection, store.CodeSigning)
		if err != nil {
			return nil, format, err
		}
	case FormatPurposeSplit:
		es, err := pemstore.ReadPurposeBundles(dir)
		if err != nil {
			return nil, format, err
		}
		entries = es
	case FormatPEMBundle:
		path, err := pemPath(dir)
		if err != nil {
			return nil, format, err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, format, fmt.Errorf("catalog: %w", err)
		}
		es, perr := pemstore.ParseBundle(f, opts.BundlePurposes...)
		f.Close()
		if perr != nil {
			return nil, format, perr
		}
		entries = es
	case FormatAppleDir:
		es, err := applestore.ReadDir(dir)
		if err != nil {
			return nil, format, err
		}
		entries = es
	}
	s := store.NewSnapshot(provider, version, date)
	for _, e := range entries {
		s.Add(e)
	}
	return s, format, nil
}

func jksPath(dir string) (string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("catalog: %w", err)
	}
	for _, de := range des {
		if !de.IsDir() && (strings.HasSuffix(de.Name(), ".jks") || de.Name() == "cacerts") {
			return filepath.Join(dir, de.Name()), nil
		}
	}
	return "", fmt.Errorf("catalog: no JKS file in %s", dir)
}

func pemPath(dir string) (string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return "", fmt.Errorf("catalog: %w", err)
	}
	// Preferred canonical names first.
	for _, name := range []string{"tls-ca-bundle.pem", "cert.pem", "ca-certificates.crt"} {
		for _, de := range des {
			if de.Name() == name {
				return filepath.Join(dir, name), nil
			}
		}
	}
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".pem") {
			return filepath.Join(dir, de.Name()), nil
		}
	}
	return "", fmt.Errorf("catalog: no PEM bundle in %s", dir)
}

// LoadTree ingests a <root>/<provider>/<version>/ tree into a database.
// Version directories named like dates (2006-01-02 or 20060102) provide
// snapshot dates; otherwise file modification time is used. Snapshots are
// parsed concurrently (bounded by GOMAXPROCS) and assembled in lexical
// (provider, version) order, so the result is deterministic. Under
// Options.Archive's default ArchiveAuto mode, a fresh .rootpack sidecar
// short-circuits parsing entirely, and a successful parse compiles one.
func LoadTree(root string, opts Options) (*store.Database, error) {
	db, _, err := LoadTreeInfo(root, opts)
	return db, err
}

// LoadTreeCtx is LoadTree with the load's phases recorded as spans of the
// trace carried in ctx (see LoadTreeInfoCtx).
func LoadTreeCtx(ctx context.Context, root string, opts Options) (*store.Database, error) {
	db, _, err := LoadTreeInfoCtx(ctx, root, opts)
	return db, err
}

func dateForVersion(dir, version string) time.Time {
	for _, layout := range []string{"2006-01-02", "20060102", "2006-01"} {
		if t, err := time.Parse(layout, version); err == nil {
			return t
		}
	}
	if fi, err := os.Stat(dir); err == nil {
		return fi.ModTime().UTC()
	}
	return time.Time{}
}
