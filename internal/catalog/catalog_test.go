package catalog

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/certdata"
	"repro/internal/jks"
	"repro/internal/nodecerts"
	"repro/internal/pemstore"
	"repro/internal/store"
	"repro/internal/testcerts"
)

func sampleEntries(t *testing.T) []*store.TrustEntry {
	t.Helper()
	entries := testcerts.Entries(3, store.ServerAuth, store.EmailProtection)
	entries[0].SetDistrustAfter(store.ServerAuth, time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC))
	return entries
}

func writeAll(t *testing.T, root string, entries []*store.TrustEntry) {
	t.Helper()
	date := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)

	// NSS certdata.
	dir := filepath.Join(root, "NSS", "2021-01-01")
	mk(t, dir)
	f, err := os.Create(filepath.Join(dir, "certdata.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := certdata.Marshal(f, entries); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Microsoft authroot.
	dir = filepath.Join(root, "Microsoft", "2021-01-01")
	mk(t, dir)
	if err := authroot.WriteBundle(dir, entries, 1, date); err != nil {
		t.Fatal(err)
	}

	// Apple dir.
	dir = filepath.Join(root, "Apple", "2021-01-01")
	mk(t, dir)
	if err := applestore.WriteDir(dir, entries); err != nil {
		t.Fatal(err)
	}

	// Java JKS.
	dir = filepath.Join(root, "Java", "2021-01-01")
	mk(t, dir)
	data, err := jks.Marshal(jks.FromEntries(entries, date), "changeit")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "cacerts.jks"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	// NodeJS header.
	dir = filepath.Join(root, "NodeJS", "2021-01-01")
	mk(t, dir)
	f, err = os.Create(filepath.Join(dir, "node_root_certs.h"))
	if err != nil {
		t.Fatal(err)
	}
	if err := nodecerts.Marshal(f, entries); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Debian flat bundle.
	dir = filepath.Join(root, "Debian", "2021-01-01")
	mk(t, dir)
	f, err = os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := pemstore.WriteBundle(f, entries, store.ServerAuth); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// AmazonLinux purpose-split bundles.
	dir = filepath.Join(root, "AmazonLinux", "2021-01-01")
	mk(t, dir)
	if err := pemstore.WritePurposeBundles(dir, entries); err != nil {
		t.Fatal(err)
	}
}

func mk(t *testing.T, dir string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestDetectFormat(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))
	cases := map[string]Format{
		"NSS":         FormatCertdata,
		"Microsoft":   FormatAuthroot,
		"Apple":       FormatAppleDir,
		"Java":        FormatJKS,
		"NodeJS":      FormatNodeHeader,
		"Debian":      FormatPEMBundle,
		"AmazonLinux": FormatPurposeSplit,
	}
	for prov, want := range cases {
		got, err := DetectFormat(filepath.Join(root, prov, "2021-01-01"))
		if err != nil {
			t.Errorf("%s: %v", prov, err)
			continue
		}
		if got != want {
			t.Errorf("%s: format %q, want %q", prov, got, want)
		}
	}
	if _, err := DetectFormat(t.TempDir()); err == nil {
		t.Error("empty directory should not detect")
	}
	if _, err := DetectFormat(filepath.Join(root, "missing")); err == nil {
		t.Error("missing directory should error")
	}
}

func TestLoadTree(t *testing.T) {
	root := t.TempDir()
	entries := sampleEntries(t)
	writeAll(t, root, entries)

	db, err := LoadTree(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	provs := db.Providers()
	if len(provs) != 7 {
		t.Fatalf("providers = %v", provs)
	}
	for _, prov := range provs {
		h := db.History(prov)
		if h.Len() != 1 {
			t.Errorf("%s: %d snapshots", prov, h.Len())
		}
		s := h.Latest()
		if !s.Date.Equal(time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)) {
			t.Errorf("%s: date %s (should parse from version dir name)", prov, s.Date)
		}
		if s.TrustedCount(store.ServerAuth) != 3 {
			t.Errorf("%s: %d TLS roots, want 3", prov, s.TrustedCount(store.ServerAuth))
		}
	}

	// Metadata fidelity follows the format: certdata keeps the
	// distrust-after; the flat Debian bundle loses it.
	nssEntry, _ := db.History("NSS").Latest().Lookup(entries[0].Fingerprint)
	if _, ok := nssEntry.DistrustAfterFor(store.ServerAuth); !ok {
		t.Error("certdata ingestion lost partial distrust")
	}
	debEntry, _ := db.History("Debian").Latest().Lookup(entries[0].Fingerprint)
	if _, ok := debEntry.DistrustAfterFor(store.ServerAuth); ok {
		t.Error("PEM ingestion fabricated partial distrust")
	}
	// JKS conflation: Java entries trusted for code signing too.
	javaEntry, _ := db.History("Java").Latest().Lookup(entries[1].Fingerprint)
	if !javaEntry.TrustedFor(store.CodeSigning) {
		t.Error("JKS ingestion should conflate purposes")
	}
	// Purpose-split preserved purposes without conflation.
	amzEntry, _ := db.History("AmazonLinux").Latest().Lookup(entries[1].Fingerprint)
	if !amzEntry.TrustedFor(store.ServerAuth) || !amzEntry.TrustedFor(store.EmailProtection) {
		t.Error("purpose-split ingestion lost purposes")
	}
	if amzEntry.TrustedFor(store.CodeSigning) {
		t.Error("purpose-split ingestion fabricated code-signing trust")
	}
}

func TestLoadSnapshotWrongPassword(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))
	dir := filepath.Join(root, "Java", "2021-01-01")
	_, _, err := LoadSnapshot(dir, "Java", "v", time.Now(), Options{JKSPassword: "wrong"})
	if err == nil {
		t.Error("wrong JKS password should fail")
	}
}

func TestDateForVersion(t *testing.T) {
	cases := map[string]string{
		"2021-01-02": "2021-01-02",
		"20210102":   "2021-01-02",
		"2021-01":    "2021-01-01",
	}
	for in, want := range cases {
		got := dateForVersion(t.TempDir(), in)
		if got.Format("2006-01-02") != want {
			t.Errorf("dateForVersion(%q) = %s, want %s", in, got.Format("2006-01-02"), want)
		}
	}
	// Non-date names fall back to mtime (non-zero).
	dir := t.TempDir()
	if dateForVersion(dir, "v3.53").IsZero() {
		t.Error("mtime fallback should be non-zero")
	}
}

func TestLoadTreeCorrupt(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "NSS", "2021-01-01")
	mk(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "certdata.txt"), []byte("JUNK LINE\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTree(root, Options{}); err == nil {
		t.Error("corrupt tree should fail loudly")
	}
}
