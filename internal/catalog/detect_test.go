package catalog

// Ambiguity detection: every pair of format marker files in one snapshot
// directory must be reported as ErrAmbiguousFormat, never resolved by
// probe order. DetectFormat only looks at file names, so markers here are
// stubs — parsing happens later, in LoadSnapshot.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/ctlog"
	"repro/internal/manifest"
)

// formatMarkers maps each primary probe to a file whose presence alone
// triggers it.
var formatMarkers = []struct {
	format Format
	file   string
}{
	{FormatCertdata, "certdata.txt"},
	{FormatAuthroot, authroot.STLName},
	{FormatNodeHeader, "node_root_certs.h"},
	{FormatJKS, "cacerts"},
	{FormatPEMBundle, "tls-ca-bundle.pem"},
	{FormatAppleDir, applestore.TrustSettingsName},
	{FormatCTRoots, ctlog.GetRootsName},
	{FormatManifest, manifest.Name},
}

func markerDir(t *testing.T, files ...string) string {
	t.Helper()
	dir := t.TempDir()
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("stub"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestDetectFormatSingleMarkers(t *testing.T) {
	for _, m := range formatMarkers {
		got, err := DetectFormat(markerDir(t, m.file))
		if err != nil {
			t.Errorf("%s alone: %v", m.file, err)
			continue
		}
		if got != m.format {
			t.Errorf("%s alone: format %q, want %q", m.file, got, m.format)
		}
	}
}

func TestDetectFormatPairwiseAmbiguity(t *testing.T) {
	for i, a := range formatMarkers {
		for _, b := range formatMarkers[i+1:] {
			dir := markerDir(t, a.file, b.file)
			got, err := DetectFormat(dir)
			if err == nil {
				t.Errorf("%s + %s: detected %q, want ambiguity error", a.file, b.file, got)
				continue
			}
			if !errors.Is(err, ErrAmbiguousFormat) {
				t.Errorf("%s + %s: error %v does not wrap ErrAmbiguousFormat", a.file, b.file, err)
				continue
			}
			// The error names both claimants.
			for _, f := range []Format{a.format, b.format} {
				if !strings.Contains(err.Error(), string(f)) {
					t.Errorf("%s + %s: error %q does not name %q", a.file, b.file, err, f)
				}
			}
		}
	}
}

func TestDetectFormatPEMFamilyNotAmbiguous(t *testing.T) {
	// Purpose-split is a superset of a PEM bundle: one probe, resolved by
	// specificity, never ambiguous with itself.
	for _, extra := range []string{"email-ca-bundle.pem", "objsign-ca-bundle.pem"} {
		got, err := DetectFormat(markerDir(t, "tls-ca-bundle.pem", extra))
		if err != nil {
			t.Errorf("tls + %s: %v", extra, err)
			continue
		}
		if got != FormatPurposeSplit {
			t.Errorf("tls + %s: format %q, want purpose-split", extra, got)
		}
	}
	// The alternate canonical bundle names are the same probe too.
	for _, name := range []string{"cert.pem", "ca-certificates.crt"} {
		got, err := DetectFormat(markerDir(t, "tls-ca-bundle.pem", name))
		if err != nil || got != FormatPEMBundle {
			t.Errorf("tls + %s: format %q err %v, want pem-bundle", name, got, err)
		}
	}
}

func TestDetectFormatFallbacksYieldToMarkers(t *testing.T) {
	// Loose .pem/.cer files ride along with a marker without tripping the
	// extension fallbacks (a manifest's cert_file siblings, say).
	got, err := DetectFormat(markerDir(t, manifest.Name, "g2.pem", "g3.pem"))
	if err != nil || got != FormatManifest {
		t.Errorf("manifest + loose pem: format %q err %v, want manifest", got, err)
	}
	got, err = DetectFormat(markerDir(t, ctlog.GetRootsName, "extra.cer"))
	if err != nil || got != FormatCTRoots {
		t.Errorf("get-roots + loose cer: format %q err %v, want ct-roots", got, err)
	}

	// And still fire when no marker matched.
	got, err = DetectFormat(markerDir(t, "loose.cer"))
	if err != nil || got != FormatAppleDir {
		t.Errorf("lone cer: format %q err %v, want apple-dir", got, err)
	}
	got, err = DetectFormat(markerDir(t, "loose.pem"))
	if err != nil || got != FormatPEMBundle {
		t.Errorf("lone pem: format %q err %v, want pem-bundle", got, err)
	}
}

func TestDetectFormatManifestVariants(t *testing.T) {
	for _, name := range []string{manifest.Name, ".tpm-roots.yaml", "acme.tpm-roots.yaml"} {
		got, err := DetectFormat(markerDir(t, name))
		if err != nil || got != FormatManifest {
			t.Errorf("%s: format %q err %v, want manifest", name, got, err)
		}
	}
}

func TestFormatKind(t *testing.T) {
	if k := FormatCTRoots.Kind(); k != "ct" {
		t.Errorf("ct-roots kind = %q", k)
	}
	if k := FormatManifest.Kind(); k != "manifest" {
		t.Errorf("manifest kind = %q", k)
	}
	for _, f := range []Format{FormatCertdata, FormatAuthroot, FormatJKS, FormatNodeHeader, FormatPEMBundle, FormatPurposeSplit, FormatAppleDir} {
		if k := f.Kind(); k != "tls" {
			t.Errorf("%s kind = %q, want tls", f, k)
		}
	}
}
