package catalog

// Tree-level ingestion: the parallel native-parse path and the rootpack
// sidecar fast path LoadTree picks between.

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/store"
)

// ArchiveMode selects how LoadTree uses rootpack sidecars.
type ArchiveMode int

const (
	// ArchiveAuto (the default) reads a sidecar archive when its recorded
	// source hash matches the tree, and compiles one after a native parse —
	// compile-on-ingest caching.
	ArchiveAuto ArchiveMode = iota
	// ArchiveOff always parses natively and never reads or writes sidecars.
	ArchiveOff
)

// DefaultArchiveName is the sidecar file LoadTree maintains at the tree
// root when Options.ArchivePath is empty. It is a plain file, so tree
// scanners (which only descend provider directories) never mistake it for
// a provider.
const DefaultArchiveName = ".rootpack"

// TreeInfo reports how a tree was loaded.
type TreeInfo struct {
	// FromArchive is true when the database came from a sidecar archive
	// instead of native parsers.
	FromArchive bool
	// ArchivePath is the sidecar consulted (empty under ArchiveOff).
	ArchivePath string
	// TreeHash is the source tree's content hash — the staleness key.
	TreeHash [archive.HashLen]byte
	// ContentHash is the archive content hash of the loaded database, when
	// known (read from or written to the sidecar).
	ContentHash [archive.HashLen]byte
}

// versionJob is one version directory scheduled for ingestion.
type versionJob struct {
	provider string
	version  string
	dir      string
	date     time.Time
}

// listVersionDirs enumerates the tree's version directories in the
// deterministic (provider, version) lexical order every loader shares.
func listVersionDirs(root string) ([]versionJob, error) {
	provs, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	var jobs []versionJob
	for _, prov := range provs {
		if !prov.IsDir() {
			continue
		}
		provDir := filepath.Join(root, prov.Name())
		versions, err := os.ReadDir(provDir)
		if err != nil {
			return nil, fmt.Errorf("catalog: %w", err)
		}
		for _, v := range versions {
			if !v.IsDir() {
				continue
			}
			dir := filepath.Join(provDir, v.Name())
			jobs = append(jobs, versionJob{
				provider: prov.Name(),
				version:  v.Name(),
				dir:      dir,
				date:     dateForVersion(dir, v.Name()),
			})
		}
	}
	return jobs, nil
}

// loadJobs parses every version directory with a bounded worker pool and
// assembles the database in job order, so the result (and any error
// surfaced) is identical to a sequential load regardless of scheduling.
func loadJobs(jobs []versionJob, opts Options) (*store.Database, error) {
	snaps := make([]*store.Snapshot, len(jobs))
	errs := make([]error, len(jobs))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers > 1 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					snaps[i], _, errs[i] = LoadSnapshot(jobs[i].dir, jobs[i].provider, jobs[i].version, jobs[i].date, opts)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range jobs {
			snaps[i], _, errs[i] = LoadSnapshot(jobs[i].dir, jobs[i].provider, jobs[i].version, jobs[i].date, opts)
		}
	}

	db := store.NewDatabase()
	for i, j := range jobs {
		if errs[i] != nil {
			return nil, fmt.Errorf("catalog: %s/%s: %w", j.provider, j.version, errs[i])
		}
		if err := db.AddSnapshot(snaps[i]); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// TreeHash computes the content hash of a snapshot tree: every provider,
// version, resolved snapshot date, file name, size and byte of content, in
// the same deterministic order the loader ingests. It is the staleness key
// a sidecar archive records as its source hash — any change that could
// alter the loaded database changes the hash.
func TreeHash(root string) ([archive.HashLen]byte, error) {
	jobs, err := listVersionDirs(root)
	if err != nil {
		return [archive.HashLen]byte{}, err
	}
	return treeHashJobs(jobs)
}

func treeHashJobs(jobs []versionJob) ([archive.HashLen]byte, error) {
	var zero [archive.HashLen]byte
	h := sha256.New()
	for _, j := range jobs {
		fmt.Fprintf(h, "s\x00%s\x00%s\x00%d:%d\x00", j.provider, j.version, j.date.Unix(), j.date.Nanosecond())
		if err := hashDir(h, j.dir, 1); err != nil {
			return zero, err
		}
	}
	var out [archive.HashLen]byte
	h.Sum(out[:0])
	return out, nil
}

// hashDir feeds dir's files (and one nested directory level — the deepest
// any supported format goes, e.g. authroot's certs/) into h in lexical
// order.
func hashDir(h io.Writer, dir string, depth int) error {
	des, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	for _, de := range des {
		path := filepath.Join(dir, de.Name())
		if de.IsDir() {
			if depth > 0 {
				fmt.Fprintf(h, "d\x00%s\x00", de.Name())
				if err := hashDir(h, path, depth-1); err != nil {
					return err
				}
			}
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("catalog: %w", err)
		}
		fmt.Fprintf(h, "f\x00%s\x00%d\x00", de.Name(), len(data))
		h.Write(data)
	}
	return nil
}

// LoadVersionDir ingests a single <root>/<provider>/<version>/ directory
// with the same date resolution LoadTree applies — the unit of work an
// incremental reload re-parses for a changed snapshot.
func LoadVersionDir(root, provider, version string, opts Options) (*store.Snapshot, Format, error) {
	return LoadVersionDirCtx(context.Background(), root, provider, version, opts)
}

// LoadVersionDirCtx is LoadVersionDir under a "catalog.parse" span naming
// the snapshot being re-parsed — the incremental reload's unit of work in
// a rescan trace.
func LoadVersionDirCtx(ctx context.Context, root, provider, version string, opts Options) (*store.Snapshot, Format, error) {
	_, span := obs.StartSpan(ctx, "catalog.parse")
	defer span.End()
	span.SetAttr("snapshot", provider+"/"+version)
	dir := filepath.Join(root, provider, version)
	snap, format, err := LoadSnapshot(dir, provider, version, dateForVersion(dir, version), opts)
	if err != nil {
		span.SetAttr("error", err.Error())
	} else {
		span.SetAttr("format", string(format))
	}
	return snap, format, err
}

// LoadTreeInfo is LoadTree plus a report of how the tree was loaded:
// whether the sidecar archive served the database, and under which hashes.
func LoadTreeInfo(root string, opts Options) (*store.Database, *TreeInfo, error) {
	return LoadTreeInfoCtx(context.Background(), root, opts)
}

// LoadTreeInfoCtx is LoadTreeInfo with each phase of the load — tree
// hashing, the sidecar fast path, the parallel native parse, the
// compile-on-ingest write — recorded as a child span of whatever trace
// rides in ctx. With no trace in ctx every span is inert.
func LoadTreeInfoCtx(ctx context.Context, root string, opts Options) (*store.Database, *TreeInfo, error) {
	opts = opts.withDefaults()
	jobs, err := listVersionDirs(root)
	if err != nil {
		return nil, nil, err
	}
	info := &TreeInfo{}
	if opts.Archive == ArchiveOff {
		db, err := loadJobsCtx(ctx, jobs, opts)
		return db, info, err
	}

	info.ArchivePath = opts.ArchivePath
	if info.ArchivePath == "" {
		info.ArchivePath = filepath.Join(root, DefaultArchiveName)
	}
	_, hashSpan := obs.StartSpan(ctx, "catalog.hash_tree")
	hashSpan.SetAttr("dirs", strconv.Itoa(len(jobs)))
	th, err := treeHashJobs(jobs)
	hashSpan.End()
	if err != nil {
		return nil, nil, err
	}
	info.TreeHash = th

	if db, contentHash, ok := tryArchive(ctx, info.ArchivePath, th); ok {
		info.FromArchive = true
		info.ContentHash = contentHash
		return db, info, nil
	}

	db, err := loadJobsCtx(ctx, jobs, opts)
	if err != nil {
		return nil, nil, err
	}
	// Compile-on-ingest: cache what we just parsed. Best-effort — a
	// read-only tree still loads, it just stays on the slow path.
	if contentHash, werr := archive.WriteFileCtx(ctx, info.ArchivePath, db, th); werr == nil {
		info.ContentHash = contentHash
	}
	return db, info, nil
}

// loadJobsCtx runs the parallel native parse under a "catalog.parse" span.
func loadJobsCtx(ctx context.Context, jobs []versionJob, opts Options) (*store.Database, error) {
	_, span := obs.StartSpan(ctx, "catalog.parse")
	defer span.End()
	span.SetAttr("snapshots", strconv.Itoa(len(jobs)))
	db, err := loadJobs(jobs, opts)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	return db, err
}

// tryArchive loads a sidecar if it exists and matches the tree hash. Any
// failure — missing file, stale source hash, corruption, I/O error — is a
// cache miss, never an error: the native parsers are the fallback.
func tryArchive(ctx context.Context, path string, want [archive.HashLen]byte) (*store.Database, [archive.HashLen]byte, bool) {
	var zero [archive.HashLen]byte
	r, err := archive.Open(path)
	if err != nil {
		return nil, zero, false
	}
	defer r.Close()
	if r.SourceHash() != want {
		return nil, zero, false
	}
	db, err := r.DatabaseCtx(ctx)
	if err != nil {
		return nil, zero, false
	}
	return db, r.ContentHash(), true
}

// RefreshArchive recompiles the sidecar archive for root from an
// already-loaded database (an incremental reloader's cheap way to keep
// cold starts fast without re-parsing). No-op under ArchiveOff.
func RefreshArchive(root string, db *store.Database, opts Options) error {
	return RefreshArchiveCtx(context.Background(), root, db, opts)
}

// RefreshArchiveCtx is RefreshArchive with the tree hash and compile
// recorded as spans of the surrounding trace.
func RefreshArchiveCtx(ctx context.Context, root string, db *store.Database, opts Options) error {
	if opts.Archive == ArchiveOff {
		return nil
	}
	_, hashSpan := obs.StartSpan(ctx, "catalog.hash_tree")
	th, err := TreeHash(root)
	hashSpan.End()
	if err != nil {
		return err
	}
	path := opts.ArchivePath
	if path == "" {
		path = filepath.Join(root, DefaultArchiveName)
	}
	_, err = archive.WriteFileCtx(ctx, path, db, th)
	return err
}
