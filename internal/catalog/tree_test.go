package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/archive"
	"repro/internal/pemstore"
	"repro/internal/store"
)

// TestSidecarRoundTrip: the first LoadTree parses natively and compiles a
// sidecar; the second serves from it; the databases are semantically
// identical.
func TestSidecarRoundTrip(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))

	db1, info1, err := LoadTreeInfo(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info1.FromArchive {
		t.Fatal("first load claims FromArchive before any sidecar existed")
	}
	if _, err := os.Stat(info1.ArchivePath); err != nil {
		t.Fatalf("compile-on-ingest wrote no sidecar: %v", err)
	}

	db2, info2, err := LoadTreeInfo(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.FromArchive {
		t.Fatal("second load did not use the sidecar")
	}
	if info2.TreeHash != info1.TreeHash || info2.ContentHash != info1.ContentHash {
		t.Fatal("hashes drifted between parse and archive loads")
	}
	if err := archive.Equal(db1, db2); err != nil {
		t.Fatalf("archive-loaded database differs: %v", err)
	}
}

// TestSidecarStaleAfterTreeChange: touching the tree's content invalidates
// the sidecar (source hash mismatch) and the next load re-parses and
// recompiles it.
func TestSidecarStaleAfterTreeChange(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))
	if _, _, err := LoadTreeInfo(root, Options{}); err != nil {
		t.Fatal(err)
	}

	// Grow the tree: a brand-new provider version.
	entries := sampleEntries(t)
	dir := filepath.Join(root, "NSS", "2022-01-01")
	mk(t, dir)
	writePEMBundle(t, dir, entries[:2])

	db, info, err := LoadTreeInfo(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.FromArchive {
		t.Fatal("stale sidecar was trusted after the tree changed")
	}
	if db.History("NSS").Len() != 2 {
		t.Fatalf("NSS has %d snapshots, want 2", db.History("NSS").Len())
	}

	// The recompiled sidecar serves the next load.
	_, info2, err := LoadTreeInfo(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.FromArchive {
		t.Fatal("sidecar was not recompiled after the stale parse")
	}
}

// TestSidecarCorruptionFallsBackToParse: a damaged sidecar must never
// surface as an error or a partial database — the native parsers take
// over, and the sidecar is repaired.
func TestSidecarCorruptionFallsBackToParse(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))
	db1, info, err := LoadTreeInfo(root, Options{})
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(info.ArchivePath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(info.ArchivePath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, info2, err := LoadTreeInfo(root, Options{})
	if err != nil {
		t.Fatalf("corrupt sidecar surfaced as an error: %v", err)
	}
	if info2.FromArchive {
		t.Fatal("corrupt sidecar was served")
	}
	if err := archive.Equal(db1, db2); err != nil {
		t.Fatalf("fallback parse differs: %v", err)
	}
	// Repaired: next load is fast again.
	if _, info3, err := LoadTreeInfo(root, Options{}); err != nil || !info3.FromArchive {
		t.Fatalf("sidecar not repaired (fromArchive=%v err=%v)", info3.FromArchive, err)
	}
}

// TestArchiveOff: no sidecar is written or read.
func TestArchiveOff(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))

	if _, _, err := LoadTreeInfo(root, Options{Archive: ArchiveOff}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, DefaultArchiveName)); !os.IsNotExist(err) {
		t.Fatalf("ArchiveOff wrote a sidecar (stat err: %v)", err)
	}
}

// TestParallelLoadDeterministic: the concurrent tree loader must produce a
// database semantically identical to itself across runs (and hence to a
// sequential load) regardless of goroutine scheduling.
func TestParallelLoadDeterministic(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))

	var prev [archive.HashLen]byte
	for i := 0; i < 4; i++ {
		db, err := LoadTree(root, Options{Archive: ArchiveOff})
		if err != nil {
			t.Fatal(err)
		}
		h, err := archive.HashDatabase(db)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && h != prev {
			t.Fatalf("run %d produced a different database hash", i)
		}
		prev = h
	}
}

// TestLoadVersionDir: the single-directory loader resolves dates exactly
// like the tree loader, so incremental reloads splice identical snapshots.
func TestLoadVersionDir(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))

	full, err := LoadTree(root, Options{Archive: ArchiveOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, prov := range full.Providers() {
		for _, want := range full.History(prov).Snapshots() {
			got, _, err := LoadVersionDir(root, prov, want.Version, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", prov, want.Version, err)
			}
			if got.Len() != want.Len() || !got.Date.Equal(want.Date) {
				t.Fatalf("%s/%s: LoadVersionDir disagrees with LoadTree (%d/%v vs %d/%v)",
					prov, want.Version, got.Len(), got.Date, want.Len(), want.Date)
			}
		}
	}
}

// TestTreeHashSensitivity: the tree hash must move on any content change
// and stay put across no-op reloads.
func TestTreeHashSensitivity(t *testing.T) {
	root := t.TempDir()
	writeAll(t, root, sampleEntries(t))

	h1, err := TreeHash(root)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := TreeHash(root)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("tree hash not stable across identical reads")
	}

	// Rewrite one file with different content, same length, and restore
	// its mtime: only the bytes changed.
	path := filepath.Join(root, "Debian", "2021-01-01", "tls-ca-bundle.pem")
	fi, err := os.Stat(path)
	if err != nil {
		// Provider layout differs; fall back to any certdata file.
		path = filepath.Join(root, "NSS", "2021-01-01", "certdata.txt")
		if fi, err = os.Stat(path); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, fi.ModTime(), fi.ModTime()); err != nil {
		t.Fatal(err)
	}

	h3, err := TreeHash(root)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("content-only change did not move the tree hash")
	}
}

// writePEMBundle writes a tls-ca-bundle.pem snapshot into dir (helper for
// tree-growth tests; writeAll covers the full format matrix).
func writePEMBundle(t *testing.T, dir string, entries []*store.TrustEntry) {
	t.Helper()
	f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pemstore.WriteBundle(f, entries); err != nil {
		t.Fatal(err)
	}
}
