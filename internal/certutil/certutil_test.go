package certutil

import (
	"crypto/x509"
	"crypto/x509/pkix"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestFingerprintString(t *testing.T) {
	der := []byte("not-really-der-but-bytes")
	f := SHA256Fingerprint(der)
	if len(f.String()) != 64 {
		t.Fatalf("fingerprint hex length = %d, want 64", len(f.String()))
	}
	if len(f.Short()) != 8 {
		t.Fatalf("short fingerprint length = %d, want 8", len(f.Short()))
	}
	if !strings.HasPrefix(f.String(), f.Short()) {
		t.Fatalf("Short %q is not a prefix of String %q", f.Short(), f.String())
	}
}

func TestParseFingerprintRoundTrip(t *testing.T) {
	f := SHA256Fingerprint([]byte("abc"))
	got, err := ParseFingerprint(f.String())
	if err != nil {
		t.Fatalf("ParseFingerprint: %v", err)
	}
	if got != f {
		t.Fatalf("round trip mismatch: %v != %v", got, f)
	}
}

func TestParseFingerprintColons(t *testing.T) {
	f := SHA256Fingerprint([]byte("abc"))
	s := f.String()
	var withColons strings.Builder
	for i := 0; i < len(s); i += 2 {
		if i > 0 {
			withColons.WriteByte(':')
		}
		withColons.WriteString(s[i : i+2])
	}
	got, err := ParseFingerprint(withColons.String())
	if err != nil {
		t.Fatalf("ParseFingerprint with colons: %v", err)
	}
	if got != f {
		t.Fatal("colon-separated fingerprint did not round trip")
	}
}

func TestParseFingerprintErrors(t *testing.T) {
	cases := []string{"", "zz", "abcd", strings.Repeat("0", 63), strings.Repeat("0", 66)}
	for _, c := range cases {
		if _, err := ParseFingerprint(c); err == nil {
			t.Errorf("ParseFingerprint(%q) = nil error, want failure", c)
		}
	}
}

func TestFingerprintPropertyRoundTrip(t *testing.T) {
	prop := func(data []byte) bool {
		f := SHA256Fingerprint(data)
		back, err := ParseFingerprint(f.String())
		return err == nil && back == f
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintUniqueness(t *testing.T) {
	prop := func(a, b []byte) bool {
		if string(a) == string(b) {
			return true
		}
		return SHA256Fingerprint(a) != SHA256Fingerprint(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigestHexLengths(t *testing.T) {
	der := []byte{1, 2, 3}
	if got := len(SHA1Hex(der)); got != 40 {
		t.Errorf("SHA1Hex length = %d, want 40", got)
	}
	if got := len(MD5Hex(der)); got != 32 {
		t.Errorf("MD5Hex length = %d, want 32", got)
	}
}

func TestKeyClassString(t *testing.T) {
	cases := []struct {
		in   KeyClass
		want string
	}{
		{KeyClass{"RSA", 2048}, "RSA-2048"},
		{KeyClass{"ECDSA", 256}, "ECDSA-256"},
		{KeyClass{"DSA", 0}, "DSA"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("KeyClass%v.String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWeakRSA(t *testing.T) {
	cases := []struct {
		in   KeyClass
		want bool
	}{
		{KeyClass{"RSA", 1024}, true},
		{KeyClass{"RSA", 512}, true},
		{KeyClass{"RSA", 2048}, false},
		{KeyClass{"ECDSA", 256}, false},
		{KeyClass{"RSA", 0}, false},
	}
	for _, c := range cases {
		if got := c.in.WeakRSA(); got != c.want {
			t.Errorf("WeakRSA(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClassifySignature(t *testing.T) {
	cases := []struct {
		in   x509.SignatureAlgorithm
		want SignatureDigest
	}{
		{x509.MD2WithRSA, DigestMD2},
		{x509.MD5WithRSA, DigestMD5},
		{x509.SHA1WithRSA, DigestSHA1},
		{x509.ECDSAWithSHA1, DigestSHA1},
		{x509.SHA256WithRSA, DigestSHA256},
		{x509.ECDSAWithSHA256, DigestSHA256},
		{x509.SHA384WithRSA, DigestSHA384},
		{x509.SHA512WithRSA, DigestSHA512},
		{x509.UnknownSignatureAlgorithm, DigestUnknown},
	}
	for _, c := range cases {
		if got := ClassifySignature(c.in); got != c.want {
			t.Errorf("ClassifySignature(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSignatureDigestWeak(t *testing.T) {
	if !DigestMD5.Weak() || !DigestMD2.Weak() {
		t.Error("MD2/MD5 should be weak")
	}
	if DigestSHA1.Weak() || DigestSHA256.Weak() {
		t.Error("SHA-1/SHA-256 should not be in the MD5-weak bucket")
	}
}

func TestSignatureDigestString(t *testing.T) {
	if DigestMD5.String() != "MD5" || DigestSHA256.String() != "SHA-256" {
		t.Errorf("unexpected digest names: %s %s", DigestMD5, DigestSHA256)
	}
	if SignatureDigest(99).String() != "unknown" {
		t.Error("out-of-range digest should render as unknown")
	}
}

func TestExpiryHelpers(t *testing.T) {
	nb := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	na := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	cert := &x509.Certificate{NotBefore: nb, NotAfter: na}
	if ExpiredAt(cert, nb.AddDate(1, 0, 0)) {
		t.Error("cert should not be expired mid-window")
	}
	if !ExpiredAt(cert, na.AddDate(0, 0, 1)) {
		t.Error("cert should be expired after NotAfter")
	}
	if !ValidAt(cert, nb) || !ValidAt(cert, na) {
		t.Error("window endpoints should be valid")
	}
	if ValidAt(cert, nb.AddDate(0, 0, -1)) {
		t.Error("before NotBefore should be invalid")
	}
	years := ValidityYears(cert)
	if years < 4.9 || years > 5.1 {
		t.Errorf("ValidityYears = %f, want ~5", years)
	}
}

func TestSubjectStringDeterministic(t *testing.T) {
	n := pkix.Name{
		Country:      []string{"US"},
		Organization: []string{"Zeta", "Alpha"},
		CommonName:   "Example Root CA",
	}
	got := SubjectString(n)
	want := "C=US, O=Alpha, O=Zeta, CN=Example Root CA"
	if got != want {
		t.Errorf("SubjectString = %q, want %q", got, want)
	}
	// Multi-valued attributes must sort regardless of input order.
	n2 := n
	n2.Organization = []string{"Alpha", "Zeta"}
	if SubjectString(n2) != got {
		t.Error("SubjectString not order-independent for multi-valued attributes")
	}
}

func TestDisplayName(t *testing.T) {
	cn := &x509.Certificate{Subject: pkix.Name{CommonName: "My Root", Organization: []string{"Org"}}}
	if DisplayName(cn) != "My Root" {
		t.Errorf("DisplayName CN = %q", DisplayName(cn))
	}
	orgOnly := &x509.Certificate{Subject: pkix.Name{Organization: []string{"Org Inc"}}}
	if DisplayName(orgOnly) != "Org Inc" {
		t.Errorf("DisplayName org = %q", DisplayName(orgOnly))
	}
	empty := &x509.Certificate{}
	if DisplayName(empty) != "" {
		t.Errorf("DisplayName empty = %q", DisplayName(empty))
	}
}

func TestIsSelfIssued(t *testing.T) {
	same := &x509.Certificate{RawSubject: []byte{1, 2}, RawIssuer: []byte{1, 2}}
	diff := &x509.Certificate{RawSubject: []byte{1, 2}, RawIssuer: []byte{3}}
	if !IsSelfIssued(same) {
		t.Error("identical subject/issuer should be self-issued")
	}
	if IsSelfIssued(diff) {
		t.Error("different subject/issuer should not be self-issued")
	}
}
