// Package certutil provides certificate inspection helpers shared by every
// root-store codec and analysis stage: stable fingerprints, signature and
// key-strength classification, distinguished-name rendering, and validity
// arithmetic.
//
// The package deliberately works on parsed *x509.Certificate values plus raw
// DER so that stores holding certificates the standard library cannot fully
// validate (MD5-signed roots, ancient encodings) can still be fingerprinted
// and classified.
package certutil

import (
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/md5"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Fingerprint is the SHA-256 digest of a certificate's DER encoding. It is
// the canonical identity of a trust anchor throughout this codebase, matching
// the paper's use of certificate hashes to track roots across stores.
type Fingerprint [sha256.Size]byte

// SHA256Fingerprint computes the canonical fingerprint of raw DER bytes.
func SHA256Fingerprint(der []byte) Fingerprint {
	return sha256.Sum256(der)
}

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first eight hex characters, the abbreviation style used
// in the paper's Appendix B tables (e.g. "beb00b30...").
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:4]) }

// ParseFingerprint decodes a lowercase/uppercase hex fingerprint. It accepts
// optional colon separators as emitted by OpenSSL.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	s = strings.ReplaceAll(strings.TrimSpace(s), ":", "")
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("certutil: invalid fingerprint %q: %w", s, err)
	}
	if len(b) != sha256.Size {
		return f, fmt.Errorf("certutil: fingerprint must be %d bytes, got %d", sha256.Size, len(b))
	}
	copy(f[:], b)
	return f, nil
}

// SHA1Hex returns the hex SHA-1 digest of DER bytes. Microsoft's
// authroot.stl identifies trust anchors by SHA-1 hash, so the codec needs it
// even though SHA-1 is obsolete for signatures.
func SHA1Hex(der []byte) string {
	sum := sha1.Sum(der)
	return hex.EncodeToString(sum[:])
}

// SHA1Sum returns the raw SHA-1 digest of DER bytes.
func SHA1Sum(der []byte) [sha1.Size]byte { return sha1.Sum(der) }

// MD5Hex returns the hex MD5 digest of DER bytes; NSS trust objects carry MD5
// hashes of the certificate for legacy identification.
func MD5Hex(der []byte) string {
	sum := md5.Sum(der)
	return hex.EncodeToString(sum[:])
}

// KeyClass summarizes the public-key algorithm and strength of a certificate
// in the categories the paper's hygiene analysis uses (Table 3 tracks the
// purge of 1024-bit RSA roots).
type KeyClass struct {
	Algorithm string // "RSA", "ECDSA", "Ed25519", "DSA", "Unknown"
	Bits      int    // modulus size for RSA, curve size for ECDSA
}

// String renders e.g. "RSA-1024" or "ECDSA-256".
func (k KeyClass) String() string {
	if k.Bits == 0 {
		return k.Algorithm
	}
	return fmt.Sprintf("%s-%d", k.Algorithm, k.Bits)
}

// WeakRSA reports whether the key is RSA with a modulus of 1024 bits or
// fewer, the class of roots whose removal dates Table 3 reports.
func (k KeyClass) WeakRSA() bool { return k.Algorithm == "RSA" && k.Bits > 0 && k.Bits <= 1024 }

// ClassifyKey inspects a certificate's public key.
func ClassifyKey(cert *x509.Certificate) KeyClass {
	switch pub := cert.PublicKey.(type) {
	case *rsa.PublicKey:
		return KeyClass{Algorithm: "RSA", Bits: pub.N.BitLen()}
	case *ecdsa.PublicKey:
		return KeyClass{Algorithm: "ECDSA", Bits: pub.Curve.Params().BitSize}
	case ed25519.PublicKey:
		return KeyClass{Algorithm: "Ed25519", Bits: 256}
	default:
		switch cert.PublicKeyAlgorithm {
		case x509.DSA:
			return KeyClass{Algorithm: "DSA"}
		default:
			return KeyClass{Algorithm: "Unknown"}
		}
	}
}

// SignatureDigest identifies the hash family of a certificate signature in
// the buckets the hygiene analysis cares about.
type SignatureDigest int

// Digest families ordered from weakest to strongest.
const (
	DigestUnknown SignatureDigest = iota
	DigestMD2
	DigestMD5
	DigestSHA1
	DigestSHA256
	DigestSHA384
	DigestSHA512
)

var digestNames = map[SignatureDigest]string{
	DigestUnknown: "unknown",
	DigestMD2:     "MD2",
	DigestMD5:     "MD5",
	DigestSHA1:    "SHA-1",
	DigestSHA256:  "SHA-256",
	DigestSHA384:  "SHA-384",
	DigestSHA512:  "SHA-512",
}

// String returns the conventional name of the digest family.
func (d SignatureDigest) String() string {
	if s, ok := digestNames[d]; ok {
		return s
	}
	return "unknown"
}

// Weak reports whether the digest is MD2, MD5 or unknown — families that the
// root programs purged (Table 3 tracks MD5 removal dates). SHA-1 is reported
// separately because programs retired it on a different schedule.
func (d SignatureDigest) Weak() bool { return d == DigestMD2 || d == DigestMD5 }

// ClassifySignature maps an x509 signature algorithm to its digest family.
func ClassifySignature(alg x509.SignatureAlgorithm) SignatureDigest {
	switch alg {
	case x509.MD2WithRSA:
		return DigestMD2
	case x509.MD5WithRSA:
		return DigestMD5
	case x509.SHA1WithRSA, x509.DSAWithSHA1, x509.ECDSAWithSHA1:
		return DigestSHA1
	case x509.SHA256WithRSA, x509.DSAWithSHA256, x509.ECDSAWithSHA256, x509.SHA256WithRSAPSS:
		return DigestSHA256
	case x509.SHA384WithRSA, x509.ECDSAWithSHA384, x509.SHA384WithRSAPSS:
		return DigestSHA384
	case x509.SHA512WithRSA, x509.ECDSAWithSHA512, x509.SHA512WithRSAPSS:
		return DigestSHA512
	default:
		return DigestUnknown
	}
}

// ExpiredAt reports whether the certificate's validity window has closed at
// the given instant.
func ExpiredAt(cert *x509.Certificate, at time.Time) bool {
	return at.After(cert.NotAfter)
}

// ValidAt reports whether the instant falls inside the validity window.
func ValidAt(cert *x509.Certificate, at time.Time) bool {
	return !at.Before(cert.NotBefore) && !at.After(cert.NotAfter)
}

// SubjectString renders a pkix.Name deterministically: RDNs in a fixed
// attribute order with sorted multi-valued attributes, so store diffs are
// stable across parse/serialize round trips.
func SubjectString(name pkix.Name) string {
	var parts []string
	add := func(label string, values []string) {
		vals := append([]string(nil), values...)
		sort.Strings(vals)
		for _, v := range vals {
			parts = append(parts, label+"="+v)
		}
	}
	add("C", name.Country)
	add("ST", name.Province)
	add("L", name.Locality)
	add("O", name.Organization)
	add("OU", name.OrganizationalUnit)
	if name.CommonName != "" {
		parts = append(parts, "CN="+name.CommonName)
	}
	if name.SerialNumber != "" {
		parts = append(parts, "SN="+name.SerialNumber)
	}
	return strings.Join(parts, ", ")
}

// DisplayName returns the friendliest short label for a certificate: the
// subject CN if present, otherwise the first organization, otherwise the
// full subject string.
func DisplayName(cert *x509.Certificate) string {
	if cert.Subject.CommonName != "" {
		return cert.Subject.CommonName
	}
	if len(cert.Subject.Organization) > 0 {
		return cert.Subject.Organization[0]
	}
	return SubjectString(cert.Subject)
}

// IsSelfIssued reports whether subject and issuer match byte-for-byte on the
// raw DER, the standard test for a root candidate.
func IsSelfIssued(cert *x509.Certificate) bool {
	return string(cert.RawSubject) == string(cert.RawIssuer)
}

// ValidityYears returns the length of the validity window in fractional
// years (365.25-day years).
func ValidityYears(cert *x509.Certificate) float64 {
	return cert.NotAfter.Sub(cert.NotBefore).Hours() / (24 * 365.25)
}

// Summary is a compact single-line description used by CLI tools and logs.
func Summary(cert *x509.Certificate) string {
	return fmt.Sprintf("%s [%s, %s, %s..%s]",
		DisplayName(cert),
		ClassifyKey(cert),
		ClassifySignature(cert.SignatureAlgorithm),
		cert.NotBefore.Format("2006-01-02"),
		cert.NotAfter.Format("2006-01-02"))
}
