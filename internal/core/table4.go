package core

import (
	"sort"
	"time"

	"repro/internal/certutil"
)

// IncidentSpec identifies an incident's affected roots for lag analysis.
type IncidentSpec struct {
	Name string
	// Fingerprints are the removed roots' identities.
	Fingerprints []certutil.Fingerprint
	// Anchor is the reference store whose removal date lags are measured
	// against (the paper anchors on NSS).
	Anchor string
}

// LagRow is one store's measured response to one incident (Table 4).
type LagRow struct {
	Incident string
	Store    string
	// Certs is how many of the incident's roots the store ever trusted.
	Certs int
	// TrustedUntil is the last snapshot date still trusting any of them;
	// zero when StillTrusted.
	TrustedUntil time.Time
	// StillTrusted marks stores whose latest snapshot still trusts at
	// least one affected root.
	StillTrusted bool
	// LagDays is TrustedUntil - anchor removal, in days (negative: acted
	// first). Undefined when StillTrusted (use ElapsedDays).
	LagDays int
	// ElapsedDays, for still-trusted rows, is days from anchor removal to
	// the store's latest snapshot (the paper's "N+" lower bounds).
	ElapsedDays int
}

// RemovalLag measures Table 4: for each incident, every store's last date
// of trust in the affected roots, relative to the anchor store's removal.
func (p *Pipeline) RemovalLag(incidents []IncidentSpec) []LagRow {
	var rows []LagRow
	for _, inc := range incidents {
		anchor := p.DB.History(inc.Anchor)
		if anchor == nil {
			continue
		}
		anchorDate := p.lastTrustAcross(inc.Anchor, inc.Fingerprints)
		if anchorDate.IsZero() {
			continue // anchor never trusted these roots
		}
		for _, prov := range p.DB.Providers() {
			if prov == inc.Anchor {
				continue
			}
			h := p.DB.History(prov)
			certs := 0
			var last time.Time
			still := false
			for _, fp := range inc.Fingerprints {
				until, s, ever := h.TrustedUntil(fp, p.Purpose)
				if !ever {
					continue
				}
				certs++
				if until.After(last) {
					last = until
				}
				if s {
					still = true
				}
			}
			if certs == 0 {
				continue
			}
			row := LagRow{
				Incident:     inc.Name,
				Store:        prov,
				Certs:        certs,
				TrustedUntil: last,
				StillTrusted: still,
			}
			if still {
				row.ElapsedDays = int(h.Latest().Date.Sub(anchorDate).Hours() / 24)
			} else {
				row.LagDays = int(last.Sub(anchorDate).Hours() / 24)
			}
			rows = append(rows, row)
		}
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].Incident != rows[j].Incident {
				return rows[i].Incident < rows[j].Incident
			}
			li, lj := rows[i].LagDays, rows[j].LagDays
			if rows[i].StillTrusted {
				li = rows[i].ElapsedDays
			}
			if rows[j].StillTrusted {
				lj = rows[j].ElapsedDays
			}
			return li < lj
		})
	}
	return rows
}

// lastTrustAcross returns the latest snapshot date at which the provider
// trusted any of the fingerprints.
func (p *Pipeline) lastTrustAcross(provider string, fps []certutil.Fingerprint) time.Time {
	h := p.DB.History(provider)
	var last time.Time
	for _, fp := range fps {
		if until, _, ever := h.TrustedUntil(fp, p.Purpose); ever && until.After(last) {
			last = until
		}
	}
	return last
}
