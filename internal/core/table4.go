package core

import (
	"sort"
	"time"

	"repro/internal/certutil"
)

// IncidentSpec identifies an incident's affected roots for lag analysis.
type IncidentSpec struct {
	Name string
	// Fingerprints are the removed roots' identities.
	Fingerprints []certutil.Fingerprint
	// Anchor is the reference store whose removal date lags are measured
	// against (the paper anchors on NSS).
	Anchor string
}

// LagRow is one store's measured response to one incident (Table 4).
type LagRow struct {
	Incident string
	Store    string
	// Certs is how many of the incident's roots the store ever trusted.
	Certs int
	// TrustedUntil is the last snapshot date still trusting any of them;
	// zero when StillTrusted.
	TrustedUntil time.Time
	// StillTrusted marks stores whose latest snapshot still trusts at
	// least one affected root.
	StillTrusted bool
	// LagDays is TrustedUntil - anchor removal, in days (negative: acted
	// first). Undefined when StillTrusted (use ElapsedDays).
	LagDays int
	// ElapsedDays, for still-trusted rows, is days from anchor removal to
	// the store's latest snapshot (the paper's "N+" lower bounds).
	ElapsedDays int
}

// RemovalLag measures Table 4: for each incident, every store's last date
// of trust in the affected roots, relative to the anchor store's removal.
func (p *Pipeline) RemovalLag(incidents []IncidentSpec) []LagRow {
	var rows []LagRow
	for _, inc := range incidents {
		anchor := p.DB.History(inc.Anchor)
		if anchor == nil {
			continue
		}
		anchorDate := p.lastTrustAcross(inc.Anchor, inc.Fingerprints)
		if anchorDate.IsZero() {
			continue // anchor never trusted these roots
		}
		for _, prov := range p.DB.Providers() {
			if prov == inc.Anchor {
				continue
			}
			h := p.DB.History(prov)
			certs := 0
			var last time.Time
			still := false
			for _, fp := range inc.Fingerprints {
				until, s, ever := h.TrustedUntil(fp, p.Purpose)
				if !ever {
					continue
				}
				certs++
				if until.After(last) {
					last = until
				}
				if s {
					still = true
				}
			}
			if certs == 0 {
				continue
			}
			row := LagRow{
				Incident:     inc.Name,
				Store:        prov,
				Certs:        certs,
				TrustedUntil: last,
				StillTrusted: still,
			}
			if still {
				row.ElapsedDays = int(h.Latest().Date.Sub(anchorDate).Hours() / 24)
			} else {
				row.LagDays = int(last.Sub(anchorDate).Hours() / 24)
			}
			rows = append(rows, row)
		}
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].Incident != rows[j].Incident {
				return rows[i].Incident < rows[j].Incident
			}
			li, lj := rows[i].LagDays, rows[j].LagDays
			if rows[i].StillTrusted {
				li = rows[i].ElapsedDays
			}
			if rows[j].StillTrusted {
				lj = rows[j].ElapsedDays
			}
			return li < lj
		})
	}
	return rows
}

// LagStats summarizes one store's historical responsiveness across
// incidents — the programmatic form of the per-store medians Table 4 only
// used to render. Simulation callers consume these to project how long a
// store will keep trusting a root after a hypothetical upstream removal.
type LagStats struct {
	Store string
	// Samples counts resolved removals (rows where the store acted).
	Samples int
	// StillTrusted counts incidents the store has never acted on; their
	// elapsed-day lower bounds are excluded from the percentiles.
	StillTrusted int
	// MedianDays / P90Days are percentiles over the resolved LagDays.
	MedianDays float64
	P90Days    float64
	MinDays    int
	MaxDays    int
	MeanDays   float64
}

// StoreLagStats aggregates Table 4 rows into per-store responsiveness
// statistics, sorted by store name. Still-trusted rows are counted but do
// not contribute lag samples — a lower bound is not a measurement.
func StoreLagStats(rows []LagRow) []LagStats {
	byStore := map[string][]int{}
	still := map[string]int{}
	for _, r := range rows {
		if r.StillTrusted {
			still[r.Store]++
			if _, ok := byStore[r.Store]; !ok {
				byStore[r.Store] = nil
			}
			continue
		}
		byStore[r.Store] = append(byStore[r.Store], r.LagDays)
	}
	names := make([]string, 0, len(byStore))
	for name := range byStore {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]LagStats, 0, len(names))
	for _, name := range names {
		lags := byStore[name]
		st := LagStats{Store: name, Samples: len(lags), StillTrusted: still[name]}
		if len(lags) > 0 {
			sort.Ints(lags)
			st.MinDays = lags[0]
			st.MaxDays = lags[len(lags)-1]
			sum := 0
			for _, d := range lags {
				sum += d
			}
			st.MeanDays = float64(sum) / float64(len(lags))
			st.MedianDays = percentileDays(lags, 0.5)
			st.P90Days = percentileDays(lags, 0.9)
		}
		out = append(out, st)
	}
	return out
}

// percentileDays returns the p-quantile of sorted day counts: the exact
// middle-pair mean for the median of an even sample, nearest-rank
// otherwise.
func percentileDays(sorted []int, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p == 0.5 && n%2 == 0 {
		return float64(sorted[n/2-1]+sorted[n/2]) / 2
	}
	rank := int(p*float64(n) + 0.999999)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return float64(sorted[rank-1])
}

// ResponsivenessLags runs the Table 4 measurement and aggregates it into
// per-store statistics in one call — the simulate subsystem's entry point.
func (p *Pipeline) ResponsivenessLags(incidents []IncidentSpec) []LagStats {
	return StoreLagStats(p.RemovalLag(incidents))
}

// lastTrustAcross returns the latest snapshot date at which the provider
// trusted any of the fingerprints.
func (p *Pipeline) lastTrustAcross(provider string, fps []certutil.Fingerprint) time.Time {
	h := p.DB.History(provider)
	var last time.Time
	for _, fp := range fps {
		if until, _, ever := h.TrustedUntil(fp, p.Purpose); ever && until.After(last) {
			last = until
		}
	}
	return last
}
