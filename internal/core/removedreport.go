package core

import (
	"sort"
	"time"

	"repro/internal/certutil"
)

// RemovedCA is one row of a removed-CA transparency report: a root that
// left a provider's trusted set, with its tenure.
type RemovedCA struct {
	Fingerprint  certutil.Fingerprint
	Label        string
	FirstTrusted time.Time
	LastTrusted  time.Time
	// RemovalSeen is the snapshot date at which the removal became
	// visible.
	RemovalSeen time.Time
}

// RemovedCAReport reconstructs the full removed-CA history of a provider —
// the report the paper found Mozilla's own CCADB "Removed CA Report" to be
// missing 92 entries from. Every root ever purpose-trusted that is absent
// from the latest snapshot appears exactly once.
func (p *Pipeline) RemovedCAReport(provider string, since time.Time) []RemovedCA {
	h := p.DB.History(provider)
	if h == nil || h.Len() == 0 {
		return nil
	}
	latest := h.Latest().TrustedSet(p.Purpose)
	var rows []RemovedCA
	for fp := range h.EverTrusted(p.Purpose) {
		if latest[fp] {
			continue
		}
		last, _, _ := h.TrustedUntil(fp, p.Purpose)
		if last.Before(since) {
			continue
		}
		first, _ := h.FirstTrusted(fp, p.Purpose)
		label := ""
		// Recover the label from the last snapshot that carried the root.
		for _, s := range h.Snapshots() {
			if e, ok := s.Lookup(fp); ok {
				label = e.Label
			}
		}
		rows = append(rows, RemovedCA{
			Fingerprint:  fp,
			Label:        label,
			FirstTrusted: first,
			LastTrusted:  last,
			RemovalSeen:  last, // refined below
		})
	}
	// Refine RemovalSeen: first snapshot after LastTrusted.
	snaps := h.Snapshots()
	for i := range rows {
		for _, s := range snaps {
			if s.Date.After(rows[i].LastTrusted) {
				rows[i].RemovalSeen = s.Date
				break
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if !rows[i].LastTrusted.Equal(rows[j].LastTrusted) {
			return rows[i].LastTrusted.Before(rows[j].LastTrusted)
		}
		return rows[i].Fingerprint.String() < rows[j].Fingerprint.String()
	})
	return rows
}

// CompareRemovals checks an external removed-CA catalog (e.g. CCADB's
// report) against the measured history: it returns the removals the
// catalog misses and the catalog entries the history does not corroborate.
// This is the §5.3 exercise in which the authors found Mozilla's report
// missing 92 removals.
func (p *Pipeline) CompareRemovals(provider string, since time.Time, catalog map[certutil.Fingerprint]bool) (missingFromCatalog, unsupportedInCatalog []RemovedCA) {
	measured := p.RemovedCAReport(provider, since)
	measuredSet := map[certutil.Fingerprint]RemovedCA{}
	for _, r := range measured {
		measuredSet[r.Fingerprint] = r
		if !catalog[r.Fingerprint] {
			missingFromCatalog = append(missingFromCatalog, r)
		}
	}
	for fp := range catalog {
		if _, ok := measuredSet[fp]; !ok {
			unsupportedInCatalog = append(unsupportedInCatalog, RemovedCA{Fingerprint: fp})
		}
	}
	sort.Slice(unsupportedInCatalog, func(i, j int) bool {
		return unsupportedInCatalog[i].Fingerprint.String() < unsupportedInCatalog[j].Fingerprint.String()
	})
	return missingFromCatalog, unsupportedInCatalog
}
