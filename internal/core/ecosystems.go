package core

// The ecosystem divergence analysis: how far the non-TLS trust ecosystems
// (CT-log root stores, TPM-vendor manifests) sit from the browser stores.
// The CT root-landscape result this reproduces has two halves: logs are
// far from every browser store in the Jaccard metric (they accumulate
// roots browsers purge), yet logs of one operator are near-identical to
// each other (shared acceptance tooling). Both fall out of the same
// pairwise-distance machinery Figure 1 uses; this file just slices it by
// store kind.

import (
	"sort"

	"repro/internal/setdist"
	"repro/internal/store"
)

// DivergenceRow compares one non-TLS provider against one TLS store, both
// at their latest snapshot.
type DivergenceRow struct {
	Provider string
	Kind     store.Kind
	Store    string
	// Distance is the Jaccard distance between the trusted sets (1 =
	// disjoint, 0 = identical).
	Distance float64
	// Shared counts roots in both sets; Exclusive counts roots only the
	// non-TLS provider trusts.
	Shared, Exclusive int
}

// DivergencePair is one pairwise distance between two same-kind non-TLS
// providers (for CT, the operator-correlation signal).
type DivergencePair struct {
	A, B     string
	Distance float64
}

// EcosystemReport is the kind-sliced divergence analysis.
type EcosystemReport struct {
	Purpose store.Purpose
	// TLSStores and by-kind provider lists, sorted by name.
	TLSStores []string
	Providers map[store.Kind][]string
	// Rows holds every non-TLS provider × TLS store comparison, grouped by
	// provider (provider name order, then store order).
	Rows []DivergenceRow
	// Pairs holds pairwise distances within each non-TLS kind.
	Pairs map[store.Kind][]DivergencePair
}

// EcosystemDivergence computes the report over the pipeline's database.
// Providers are partitioned by their latest snapshot's kind; a database
// with no non-TLS providers yields a report with empty Rows.
func (p *Pipeline) EcosystemDivergence() *EcosystemReport {
	rep := &EcosystemReport{
		Purpose:   p.Purpose,
		Providers: make(map[store.Kind][]string),
		Pairs:     make(map[store.Kind][]DivergencePair),
	}
	latest := make(map[string]*store.Snapshot)
	for _, prov := range p.DB.Providers() {
		h := p.DB.History(prov)
		if h == nil || h.Len() == 0 {
			continue
		}
		s := h.Latest()
		latest[prov] = s
		kind := s.Kind.Normalize()
		if kind == store.KindTLS {
			rep.TLSStores = append(rep.TLSStores, prov)
		} else {
			rep.Providers[kind] = append(rep.Providers[kind], prov)
		}
	}
	sort.Strings(rep.TLSStores)

	kinds := make([]store.Kind, 0, len(rep.Providers))
	for kind := range rep.Providers {
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	for _, kind := range kinds {
		provs := rep.Providers[kind]
		sort.Strings(provs)
		for _, prov := range provs {
			set := latest[prov].TrustedSet(p.Purpose)
			for _, tls := range rep.TLSStores {
				tlsSet := latest[tls].TrustedSet(p.Purpose)
				shared := 0
				for fp := range set {
					if tlsSet[fp] {
						shared++
					}
				}
				rep.Rows = append(rep.Rows, DivergenceRow{
					Provider:  prov,
					Kind:      kind,
					Store:     tls,
					Distance:  setdist.Jaccard(set, tlsSet),
					Shared:    shared,
					Exclusive: len(set) - shared,
				})
			}
		}
		for i := 0; i < len(provs); i++ {
			for j := i + 1; j < len(provs); j++ {
				rep.Pairs[kind] = append(rep.Pairs[kind], DivergencePair{
					A:        provs[i],
					B:        provs[j],
					Distance: setdist.SnapshotJaccard(latest[provs[i]], latest[provs[j]], p.Purpose),
				})
			}
		}
	}
	return rep
}

// MinDistanceToTLS returns, per non-TLS provider, the smallest distance to
// any TLS store — the "how close does this ecosystem ever get to a
// browser" summary the divergence claim rests on.
func (r *EcosystemReport) MinDistanceToTLS() map[string]float64 {
	out := make(map[string]float64)
	for _, row := range r.Rows {
		d, ok := out[row.Provider]
		if !ok || row.Distance < d {
			out[row.Provider] = row.Distance
		}
	}
	return out
}
