package core

import (
	"time"

	"repro/internal/bitset"
	"repro/internal/certutil"
)

// DatasetRow summarizes one provider's collected history (Table 2).
type DatasetRow struct {
	Provider string
	From, To time.Time
	// Snapshots is the raw snapshot count ("# SS").
	Snapshots int
	// UniqueStates counts distinct purpose-trusted root sets across the
	// history ("# Uniq") — the paper's substantial versions.
	UniqueStates int
	// UniqueRoots counts distinct certificates ever trusted.
	UniqueRoots int
}

// DatasetSummary reproduces Table 2 from the database.
func (p *Pipeline) DatasetSummary() []DatasetRow {
	var rows []DatasetRow
	for _, prov := range p.DB.Providers() {
		h := p.DB.History(prov)
		row := DatasetRow{
			Provider:  prov,
			Snapshots: h.Len(),
		}
		if h.Len() > 0 {
			row.From = h.First().Date
			row.To = h.Latest().Date
		}
		row.UniqueStates = len(p.UniqueStates(prov))
		row.UniqueRoots = len(h.EverTrusted(p.Purpose))
		rows = append(rows, row)
	}
	return rows
}

// StateVersion is one substantial version of a store: the first snapshot
// exhibiting a new purpose-trusted root set.
type StateVersion struct {
	Index int
	Date  time.Time
	Set   map[certutil.Fingerprint]bool
	// Snapshot is the representative (first) snapshot of the state.
	Snapshot snapshotRef
}

type snapshotRef struct {
	Provider string
	Version  string
}

// UniqueStates returns the provider's substantial versions in date order:
// consecutive snapshots with identical purpose-trusted sets collapse into
// one state. This is both Table 2's "# Uniq" and the version axis of
// Figure 3. The equality scan runs on memoized trusted bitsets, so only
// the state transitions (a few dozen per provider) materialize a map.
func (p *Pipeline) UniqueStates(provider string) []StateVersion {
	h := p.DB.History(provider)
	if h == nil {
		return nil
	}
	in := p.DB.Interner()
	var states []StateVersion
	var last *bitset.Set
	for _, s := range h.Snapshots() {
		bits := s.TrustedBits(p.Purpose, in)
		if last != nil && bits.Equal(last) {
			continue
		}
		states = append(states, StateVersion{
			Index:    len(states),
			Date:     s.Date,
			Set:      s.TrustedSet(p.Purpose),
			Snapshot: snapshotRef{Provider: s.Provider, Version: s.Version},
		})
		last = bits
	}
	return states
}
