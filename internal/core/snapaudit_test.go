package core

import (
	"testing"

	"repro/internal/paperdata"
	"repro/internal/store"
)

func TestAuditSnapshotsForeignAndMissing(t *testing.T) {
	eco, _ := fixture(t)
	nss := eco.DB.History(paperdata.NSS).At(ts(2016, 6, 1))
	debian := eco.DB.History(paperdata.Debian).At(ts(2016, 6, 1))
	report := AuditSnapshots(debian, nss, store.ServerAuth)

	counts := report.CountByKind()
	// 2016 Debian carries the non-NSS roots and the 19 conflated
	// email-only roots — all foreign relative to the NSS snapshot.
	if counts[FindingForeignRoot] < 19 {
		t.Errorf("foreign roots = %d, want >= 19", counts[FindingForeignRoot])
	}
	if report.Derivative != paperdata.Debian || report.Upstream != paperdata.NSS {
		t.Error("report attribution wrong")
	}

	// At a date just after NSS gained a root (the 2019 Microsec ECC
	// inclusion), the lagging Debian snapshot misses it.
	nss2019 := eco.DB.History(paperdata.NSS).At(ts(2019, 10, 1))
	deb2019 := eco.DB.History(paperdata.Debian).At(ts(2019, 10, 1))
	report = AuditSnapshots(deb2019, nss2019, store.ServerAuth)
	if report.CountByKind()[FindingMissingRoot] == 0 {
		t.Error("expected missing-root findings right after an upstream inclusion")
	}
}

func TestAuditSnapshotsPartialDistrustLoss(t *testing.T) {
	eco, _ := fixture(t)
	nss := eco.DB.History(paperdata.NSS).At(ts(2020, 9, 15))
	debian := eco.DB.History(paperdata.Debian).At(ts(2020, 11, 15))
	report := AuditSnapshots(debian, nss, store.ServerAuth)
	if report.CountByKind()[FindingLostPartialDistrust] == 0 {
		t.Error("expected lost-partial-distrust findings")
	}
}

func TestAuditSnapshotsIdentical(t *testing.T) {
	eco, _ := fixture(t)
	nss := eco.DB.History(paperdata.NSS).Latest()
	report := AuditSnapshots(nss, nss, store.ServerAuth)
	counts := report.CountByKind()
	if counts[FindingForeignRoot] != 0 || counts[FindingMissingRoot] != 0 {
		t.Errorf("self-audit should find no membership issues: %v", counts)
	}
	// Partial distrust present on both sides is not a finding.
	if counts[FindingLostPartialDistrust] != 0 {
		t.Errorf("self-audit flagged lost partial distrust: %v", counts)
	}
}
