// Package core implements the paper's analysis pipeline — the primary
// contribution this library reproduces. Each file regenerates one artifact
// of the evaluation:
//
//	table1.go  — top-200 User-Agent → root-store mapping (Table 1)
//	table2.go  — dataset summary (Table 2)
//	figure1.go — Jaccard + MDS ordination and clustering (Figure 1)
//	figure2.go — ecosystem family shares, the inverted pyramid (Figure 2)
//	table3.go  — root-store hygiene metrics (Table 3)
//	table4.go  — high-severity removal lag (Table 4)
//	figure3.go — NSS-derivative staleness (Figure 3)
//	figure4.go — derivative membership diffs (Figure 4)
//	table6.go  — program-exclusive roots (Table 6 / Appendix B)
//	table7.go  — NSS removal catalog (Table 7 / Appendix C)
//
// The pipeline operates on a store.Database of provider snapshot histories
// and is agnostic to where they came from: the synthetic corpus, files
// parsed by the format codecs, or any mixture.
package core

import (
	"repro/internal/paperdata"
	"repro/internal/store"
)

// Pipeline is the analysis entry point.
type Pipeline struct {
	DB *store.Database
	// Purpose is the trust purpose under analysis; the paper studies TLS
	// server authentication.
	Purpose store.Purpose
	// Families maps provider name → root program family for ordination
	// purity and ecosystem rollups. Defaults to the paper's lineage
	// (derivatives → Mozilla).
	Families map[string]string
}

// New creates a pipeline with the paper's defaults.
func New(db *store.Database) *Pipeline {
	return &Pipeline{
		DB:       db,
		Purpose:  store.ServerAuth,
		Families: DefaultFamilies(),
	}
}

// DefaultFamilies returns the provider→family lineage from the paper:
// every derivative rolls up to Mozilla/NSS.
func DefaultFamilies() map[string]string {
	fam := map[string]string{
		paperdata.NSS:       "Mozilla",
		paperdata.Microsoft: "Microsoft",
		paperdata.Apple:     "Apple",
		paperdata.Java:      "Java",
	}
	for _, d := range paperdata.Derivatives {
		fam[d] = "Mozilla"
	}
	return fam
}

// FamilyOf resolves a provider's family, defaulting to the provider name
// itself for unknown providers.
func (p *Pipeline) FamilyOf(provider string) string {
	if f, ok := p.Families[provider]; ok {
		return f
	}
	return provider
}
