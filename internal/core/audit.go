package core

import (
	"fmt"
	"time"

	"repro/internal/certutil"
	"repro/internal/store"
)

// FindingKind classifies a derivative-audit finding. The kinds correspond
// to the §6 failure modes the paper documents and the §7 recommendations.
type FindingKind string

// Audit finding kinds.
const (
	// FindingStale: the derivative's latest snapshot trails the upstream
	// mainline by more than the configured number of substantial versions.
	FindingStale FindingKind = "stale"
	// FindingRetainedRemoval: the derivative still trusts a root its
	// upstream removed (the AmazonLinux 1024-bit re-add pattern).
	FindingRetainedRemoval FindingKind = "retained-removal"
	// FindingForeignRoot: the derivative trusts a root its upstream never
	// trusted for the purpose (non-NSS roots; email-signing conflation).
	FindingForeignRoot FindingKind = "foreign-root"
	// FindingLostPartialDistrust: the upstream constrains a root with a
	// partial-distrust cutoff the derivative cannot express, so the
	// derivative extends strictly more trust (the Symantec failure).
	FindingLostPartialDistrust FindingKind = "lost-partial-distrust"
	// FindingExpiredRoot: the derivative ships a root past its validity.
	FindingExpiredRoot FindingKind = "expired-root"
	// FindingMissingRoot: the upstream trusts a root the derivative
	// lacks, degrading compatibility rather than safety.
	FindingMissingRoot FindingKind = "missing-root"
)

// Finding is one audit observation.
type Finding struct {
	Kind        FindingKind
	Fingerprint certutil.Fingerprint
	Label       string
	Detail      string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s %s: %s", f.Kind, f.Fingerprint.Short(), f.Label, f.Detail)
}

// AuditReport is the outcome of auditing a derivative snapshot against its
// upstream.
type AuditReport struct {
	Derivative string
	Upstream   string
	// At is the audit instant (the derivative snapshot's date).
	At time.Time
	// UpstreamVersion is the upstream substantial-version index compared
	// against (the newest at the audit instant).
	UpstreamVersion int
	// VersionsBehind is the gap between the matched and current upstream
	// versions.
	VersionsBehind int
	Findings       []Finding
}

// CountByKind tallies findings per kind.
func (r *AuditReport) CountByKind() map[FindingKind]int {
	out := map[FindingKind]int{}
	for _, f := range r.Findings {
		out[f.Kind]++
	}
	return out
}

// AuditConfig tunes the derivative audit.
type AuditConfig struct {
	// MaxVersionsBehind triggers FindingStale beyond this gap (default 1).
	MaxVersionsBehind int
}

// AuditDerivative inspects a derivative's state at an instant against its
// upstream provider — the linter §7 implies derivative maintainers need.
// It compares the derivative snapshot in force at `at` with the newest
// upstream snapshot at the same instant, plus the upstream's removal
// history.
func (p *Pipeline) AuditDerivative(derivative, upstream string, at time.Time, cfg AuditConfig) (*AuditReport, error) {
	if cfg.MaxVersionsBehind <= 0 {
		cfg.MaxVersionsBehind = 1
	}
	dh, uh := p.DB.History(derivative), p.DB.History(upstream)
	if dh == nil {
		return nil, fmt.Errorf("core: no history for derivative %q", derivative)
	}
	if uh == nil {
		return nil, fmt.Errorf("core: no history for upstream %q", upstream)
	}
	dsnap := dh.At(at)
	usnap := uh.At(at)
	if dsnap == nil || usnap == nil {
		return nil, fmt.Errorf("core: no snapshots in force at %s", at.Format("2006-01-02"))
	}

	report := &AuditReport{Derivative: derivative, Upstream: upstream, At: dsnap.Date}

	// Version gap via the Figure 3 machinery.
	st := p.DerivativeStaleness(derivative, upstream, dsnap.Date.AddDate(0, 0, -1), dsnap.Date.AddDate(0, 0, 1))
	if st != nil && len(st.Points) > 0 {
		last := st.Points[len(st.Points)-1]
		report.UpstreamVersion = last.Current
		report.VersionsBehind = last.Behind
		if last.Behind > cfg.MaxVersionsBehind {
			report.Findings = append(report.Findings, Finding{
				Kind:   FindingStale,
				Detail: fmt.Sprintf("derivative matches upstream version %d; mainline is %d (%d behind)", last.Matched, last.Current, last.Behind),
			})
		}
	}

	upstreamEver := uh.EverTrusted(p.Purpose)
	upstreamNow := usnap.TrustedSet(p.Purpose)

	for _, e := range dsnap.Entries() {
		if !e.TrustedFor(p.Purpose) {
			continue
		}
		fp := e.Fingerprint
		switch {
		case upstreamNow[fp]:
			// Shared root: check partial-distrust fidelity.
			ue, _ := usnap.Lookup(fp)
			if ue != nil {
				if cutoff, ok := ue.DistrustAfterFor(p.Purpose); ok {
					if _, has := e.DistrustAfterFor(p.Purpose); !has {
						report.Findings = append(report.Findings, Finding{
							Kind:        FindingLostPartialDistrust,
							Fingerprint: fp,
							Label:       e.Label,
							Detail: fmt.Sprintf("upstream rejects issuance after %s; derivative trusts unconditionally",
								cutoff.Format("2006-01-02")),
						})
					}
				}
			}
		case upstreamEver[fp]:
			until, _, _ := uh.TrustedUntil(fp, p.Purpose)
			report.Findings = append(report.Findings, Finding{
				Kind:        FindingRetainedRemoval,
				Fingerprint: fp,
				Label:       e.Label,
				Detail:      fmt.Sprintf("upstream last trusted this root on %s", until.Format("2006-01-02")),
			})
		default:
			report.Findings = append(report.Findings, Finding{
				Kind:        FindingForeignRoot,
				Fingerprint: fp,
				Label:       e.Label,
				Detail:      "root was never trusted by the upstream for this purpose",
			})
		}
		if certutil.ExpiredAt(e.Cert, dsnap.Date) {
			report.Findings = append(report.Findings, Finding{
				Kind:        FindingExpiredRoot,
				Fingerprint: fp,
				Label:       e.Label,
				Detail:      fmt.Sprintf("expired %s", e.Cert.NotAfter.Format("2006-01-02")),
			})
		}
	}

	derivSet := dsnap.TrustedSet(p.Purpose)
	for fp := range upstreamNow {
		if derivSet[fp] {
			continue
		}
		ue, _ := usnap.Lookup(fp)
		label := ""
		if ue != nil {
			label = ue.Label
		}
		report.Findings = append(report.Findings, Finding{
			Kind:        FindingMissingRoot,
			Fingerprint: fp,
			Label:       label,
			Detail:      "upstream trusts this root; derivative lacks it",
		})
	}
	return report, nil
}

// SplitByPurpose implements the paper's §7 single-purpose recommendation:
// partition a snapshot into per-purpose stores, each containing only the
// entries trusted for that purpose with their metadata restricted to it.
// This is the tls/email/objsign-ca-bundle.pem layout RHEL and AmazonLinux
// adopted.
func SplitByPurpose(s *store.Snapshot) map[store.Purpose]*store.Snapshot {
	out := make(map[store.Purpose]*store.Snapshot, len(store.AllPurposes))
	for _, p := range store.AllPurposes {
		split := store.NewSnapshot(s.Provider, s.Version+"/"+p.String(), s.Date)
		for _, e := range s.Entries() {
			if !e.TrustedFor(p) {
				continue
			}
			ne := e.Clone()
			ne.Trust = map[store.Purpose]store.TrustLevel{p: store.Trusted}
			if da, ok := e.DistrustAfterFor(p); ok {
				ne.DistrustAfter = map[store.Purpose]time.Time{p: da}
			} else {
				ne.DistrustAfter = nil
			}
			split.Add(ne)
		}
		out[p] = split
	}
	return out
}
