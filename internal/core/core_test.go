package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/certutil"
	"repro/internal/paperdata"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/useragent"
)

var (
	fixOnce sync.Once
	fixEco  *synth.Ecosystem
	fixPipe *Pipeline
	fixErr  error
)

func fixture(t testing.TB) (*synth.Ecosystem, *Pipeline) {
	t.Helper()
	fixOnce.Do(func() {
		fixEco, fixErr = synth.Cached("core-test")
		if fixErr == nil {
			fixPipe = New(fixEco.DB)
		}
	})
	if fixErr != nil {
		t.Fatalf("synth: %v", fixErr)
	}
	return fixEco, fixPipe
}

func ts(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

// --- Table 1 / Figure 2 -------------------------------------------------

func TestTable1Coverage(t *testing.T) {
	uas := useragent.Generate(useragent.PaperSample())
	t1 := AnalyzeUserAgents(uas)
	if t1.Total != 200 {
		t.Errorf("total = %d, want 200", t1.Total)
	}
	pct := t1.CoveragePercent()
	if pct < 74 || pct > 80 {
		t.Errorf("coverage = %.1f%%, paper reports 77.0%%", pct)
	}
	// Chrome Mobile on Android must be the largest group, as in Table 1.
	top := t1.Groups[0]
	if top.Browser != useragent.BrowserChromeMobile || top.OS != useragent.OSAndroid {
		t.Errorf("largest group = %s on %s, want Chrome Mobile on Android", top.Browser, top.OS)
	}
	if top.Versions != 48 {
		t.Errorf("largest group versions = %d, want 48", top.Versions)
	}
}

func TestFigure2InvertedPyramid(t *testing.T) {
	uas := useragent.Generate(useragent.PaperSample())
	f2 := EcosystemShares(uas)
	moz := f2.Share(useragent.FamilyNSS)
	apple := f2.Share(useragent.FamilyApple)
	ms := f2.Share(useragent.FamilyMicrosoft)
	java := f2.Share(useragent.FamilyJava)
	// §4: NSS 34%, Apple 23%, Windows 20%, Java absent. Who-wins ordering
	// must hold exactly; magnitudes within a few points.
	if !(moz > apple && apple > ms && ms > 0) {
		t.Errorf("family ordering wrong: Mozilla=%.1f Apple=%.1f Microsoft=%.1f", moz, apple, ms)
	}
	if java != 0 {
		t.Errorf("Java share = %.1f, want 0", java)
	}
	if moz < 28 || moz > 40 {
		t.Errorf("Mozilla share = %.1f, paper reports 34", moz)
	}
	if apple < 18 || apple > 30 {
		t.Errorf("Apple share = %.1f, paper reports 23", apple)
	}
	if ms < 15 || ms > 25 {
		t.Errorf("Microsoft share = %.1f, paper reports 20", ms)
	}
}

// --- Table 2 -------------------------------------------------------------

func TestTable2Dataset(t *testing.T) {
	_, p := fixture(t)
	rows := p.DatasetSummary()
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	byProv := map[string]DatasetRow{}
	total := 0
	for _, r := range rows {
		byProv[r.Provider] = r
		total += r.Snapshots
		if r.UniqueStates <= 0 || r.UniqueStates > r.Snapshots {
			t.Errorf("%s: unique states %d out of range (snapshots %d)", r.Provider, r.UniqueStates, r.Snapshots)
		}
	}
	if total < paperdata.TotalSnapshots {
		t.Errorf("total snapshots = %d, want >= %d", total, paperdata.TotalSnapshots)
	}
	// NSS must have the most snapshots and the longest history.
	nss := byProv[paperdata.NSS]
	for prov, r := range byProv {
		if prov == paperdata.NSS {
			continue
		}
		if r.Snapshots > nss.Snapshots {
			t.Errorf("%s has more snapshots than NSS", prov)
		}
		if r.From.Before(nss.From) {
			t.Errorf("%s history starts before NSS", prov)
		}
	}
}

// --- Figure 1 ------------------------------------------------------------

func TestFigure1Ordination(t *testing.T) {
	_, p := fixture(t)
	ord, err := p.Ordinate(DefaultOrdinationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.Points) < 40 {
		t.Fatalf("only %d points embedded", len(ord.Points))
	}
	// The paper's headline: the four program families occupy disjoint
	// regions of the embedding (Figure 1's four clusters), with NSS
	// derivatives inside the Mozilla region. We measure disjointness by
	// nearest-family-centroid purity; the k-means cells are kept for
	// rendering (a large family cloud may legitimately span several).
	if ord.Purity < 0.9 {
		t.Errorf("nearest-centroid purity = %.3f, want >= 0.9 (disjoint clusters)", ord.Purity)
	}
	if len(ord.FamilyCentroids) != 4 {
		t.Errorf("families embedded = %d, want 4", len(ord.FamilyCentroids))
	}
	fams := []string{"Mozilla", "Microsoft", "Apple", "Java"}
	for i := 0; i < len(fams); i++ {
		for j := i + 1; j < len(fams); j++ {
			a, b := ord.FamilyCentroids[fams[i]], ord.FamilyCentroids[fams[j]]
			dx, dy := a[0]-b[0], a[1]-b[1]
			if dx*dx+dy*dy < 0.04 { // centroids closer than 0.2 => overlap
				t.Errorf("family centroids %s and %s overlap", fams[i], fams[j])
			}
		}
	}
	if ord.Stress1 > 0.35 {
		t.Errorf("stress-1 = %.3f, embedding too distorted", ord.Stress1)
	}
	if ord.DistinctFamilies < 2 {
		t.Errorf("k-means clusters owned by %d families (map %v)", ord.DistinctFamilies, ord.ClusterFamily)
	}
	// Derivatives land in the Mozilla region.
	derivSet := map[string]bool{}
	for _, d := range paperdata.Derivatives {
		derivSet[d] = true
	}
	moz := ord.FamilyCentroids["Mozilla"]
	misplaced, counted := 0, 0
	for _, pt := range ord.Points {
		if !derivSet[pt.Provider] {
			continue
		}
		counted++
		own := (pt.X-moz[0])*(pt.X-moz[0]) + (pt.Y-moz[1])*(pt.Y-moz[1])
		for fam, c := range ord.FamilyCentroids {
			if fam == "Mozilla" {
				continue
			}
			if d := (pt.X-c[0])*(pt.X-c[0]) + (pt.Y-c[1])*(pt.Y-c[1]); d < own {
				misplaced++
				break
			}
		}
	}
	if counted == 0 {
		t.Fatal("no derivative points in window")
	}
	if float64(misplaced)/float64(counted) > 0.1 {
		t.Errorf("%d/%d derivative snapshots outside the Mozilla region", misplaced, counted)
	}
}

// --- Table 3 -------------------------------------------------------------

func TestTable3Hygiene(t *testing.T) {
	_, p := fixture(t)
	rows := p.Hygiene(paperdata.IndependentPrograms)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byProg := map[string]HygieneRow{}
	for _, r := range rows {
		byProg[r.Program] = r
	}
	// Size ordering: Microsoft > Apple > NSS > Java.
	if !(byProg[paperdata.Microsoft].AvgSize > byProg[paperdata.Apple].AvgSize &&
		byProg[paperdata.Apple].AvgSize > byProg[paperdata.NSS].AvgSize &&
		byProg[paperdata.NSS].AvgSize > byProg[paperdata.Java].AvgSize) {
		t.Errorf("size ordering wrong: %+v", rows)
	}
	// Expired ordering: Microsoft worst, NSS/Java best.
	if !(byProg[paperdata.Microsoft].AvgExpired > byProg[paperdata.Apple].AvgExpired &&
		byProg[paperdata.Apple].AvgExpired > byProg[paperdata.NSS].AvgExpired) {
		t.Errorf("expired ordering wrong: %+v", rows)
	}
	// Purge dates: month-level agreement with Table 3 (snapshot cadence
	// introduces up to ~one cadence interval of detection delay).
	for _, prog := range paperdata.IndependentPrograms {
		want := paperdata.Hygiene()
		var target paperdata.HygieneRow
		for _, h := range want {
			if h.Program == prog {
				target = h
			}
		}
		got := byProg[prog]
		if got.MD5Removal.IsZero() {
			t.Errorf("%s: MD5 purge not detected", prog)
			continue
		}
		if d := got.MD5Removal.Sub(target.MD5Removal); d < -45*24*time.Hour || d > 120*24*time.Hour {
			t.Errorf("%s: MD5 purge %s vs paper %s", prog, got.MD5Removal.Format("2006-01"), target.MD5Removal.Format("2006-01"))
		}
		if got.RSA1024Removal.IsZero() {
			t.Errorf("%s: 1024-bit purge not detected", prog)
			continue
		}
		if d := got.RSA1024Removal.Sub(target.RSA1024Removal); d < -45*24*time.Hour || d > 120*24*time.Hour {
			t.Errorf("%s: 1024-bit purge %s vs paper %s", prog, got.RSA1024Removal.Format("2006-01"), target.RSA1024Removal.Format("2006-01"))
		}
	}
}

// --- Table 4 -------------------------------------------------------------

func incidentSpecs(e *synth.Ecosystem) []IncidentSpec {
	var specs []IncidentSpec
	for _, inc := range paperdata.Incidents() {
		spec := IncidentSpec{Name: inc.Name, Anchor: paperdata.NSS}
		for _, ca := range e.Universe.ByIncident(inc.Name) {
			spec.Fingerprints = append(spec.Fingerprints, certutil.SHA256Fingerprint(ca.Root.DER))
		}
		specs = append(specs, spec)
	}
	return specs
}

func TestTable4RemovalLag(t *testing.T) {
	e, p := fixture(t)
	rows := p.RemovalLag(incidentSpecs(e))
	if len(rows) == 0 {
		t.Fatal("no lag rows")
	}
	get := func(incident, st string) *LagRow {
		for i := range rows {
			if rows[i].Incident == incident && rows[i].Store == st {
				return &rows[i]
			}
		}
		return nil
	}
	// Spot-check the paper's headline lags (± snapshot cadence).
	checks := []struct {
		incident, store string
		wantLag         int
		tolerance       int
	}{
		{"DigiNotar", paperdata.Microsoft, -37, 15},
		{"DigiNotar", paperdata.Apple, 6, 15},
		{"CNNIC", paperdata.Apple, -758, 30},
		{"CNNIC", paperdata.Microsoft, 944, 30},
		{"StartCom", paperdata.Debian, -120, 30},
		{"WoSign", paperdata.Android, 21, 30},
		{"Certinomis", paperdata.AmazonLinux, 630, 30},
	}
	for _, c := range checks {
		row := get(c.incident, c.store)
		if row == nil {
			t.Errorf("%s/%s: no row", c.incident, c.store)
			continue
		}
		if row.StillTrusted {
			t.Errorf("%s/%s: unexpectedly still trusted", c.incident, c.store)
			continue
		}
		if diff := row.LagDays - c.wantLag; diff < -c.tolerance || diff > c.tolerance {
			t.Errorf("%s/%s: lag %d, paper %d", c.incident, c.store, row.LagDays, c.wantLag)
		}
	}
	// Microsoft still trusts Certinomis; Apple still trusts a StartCom root.
	if row := get("Certinomis", paperdata.Microsoft); row == nil || !row.StillTrusted {
		t.Error("Microsoft should still trust Certinomis")
	}
	if row := get("StartCom", paperdata.Apple); row == nil || !row.StillTrusted {
		t.Error("Apple should still trust a StartCom root")
	}
	// Procert never reached the other programs.
	for _, st := range []string{paperdata.Apple, paperdata.Microsoft, paperdata.Java, paperdata.Android} {
		if row := get("PSPProcert", st); row != nil {
			t.Errorf("PSPProcert should have no %s row", st)
		}
	}
}

// --- Figure 3 ------------------------------------------------------------

func TestFigure3Staleness(t *testing.T) {
	_, p := fixture(t)
	from, to := ts(2015, 1, 1), ts(2021, 4, 30)
	byName := map[string]float64{}
	for _, s := range p.AllDerivativeStaleness(paperdata.NSS, paperdata.Derivatives, from, to) {
		byName[s.Derivative] = s.AvgVersionsBehind
		if len(s.Points) == 0 {
			t.Errorf("%s: no staleness points", s.Derivative)
		}
	}
	// The paper's ordering: Alpine < Debian/Ubuntu ~ NodeJS < Android <
	// AmazonLinux, all > 0.
	if !(byName[paperdata.Alpine] < byName[paperdata.Debian]) {
		t.Errorf("Alpine (%.2f) should be fresher than Debian (%.2f)", byName[paperdata.Alpine], byName[paperdata.Debian])
	}
	if !(byName[paperdata.Debian] < byName[paperdata.Android]) {
		t.Errorf("Debian (%.2f) should be fresher than Android (%.2f)", byName[paperdata.Debian], byName[paperdata.Android])
	}
	if !(byName[paperdata.Android] < byName[paperdata.AmazonLinux]) {
		t.Errorf("Android (%.2f) should be fresher than AmazonLinux (%.2f)", byName[paperdata.Android], byName[paperdata.AmazonLinux])
	}
	for name, v := range byName {
		if v <= 0 {
			t.Errorf("%s: staleness %.2f, want > 0 (derivatives are never current)", name, v)
		}
		if v > 12 {
			t.Errorf("%s: staleness %.2f implausibly high", name, v)
		}
	}
}

// --- Figure 4 ------------------------------------------------------------

func TestFigure4DerivativeDiffs(t *testing.T) {
	e, p := fixture(t)
	categorize := categorizer(e)
	for _, d := range paperdata.Derivatives {
		diff := p.DerivativeDiffs(d, paperdata.NSS, categorize)
		if diff == nil {
			t.Fatalf("%s: no diff series", d)
		}
		if !diff.Deviates() {
			t.Errorf("%s: no deviation from NSS found; the paper finds all derivatives deviate", d)
		}
	}
	// Debian's additions must include non-NSS roots and email-only roots.
	diff := p.DerivativeDiffs(paperdata.Debian, paperdata.NSS, categorize)
	added, _ := diff.CategoryTotals()
	if added[string(synth.CatNonNSS)] == 0 {
		t.Error("Debian additions should include non-NSS roots")
	}
	if added[string(synth.CatEmailOnly)] == 0 {
		t.Error("Debian additions should include email-only conflation")
	}
	// AmazonLinux's additions include its re-adds. Because its bundle is
	// so stale it often best-matches pre-purge NSS versions (exactly the
	// paper's Figure 3 finding), the re-added roots may appear either as
	// additions or via old-version matching, so accept any of the
	// customization categories.
	diff = p.DerivativeDiffs(paperdata.AmazonLinux, paperdata.NSS, categorize)
	added, _ = diff.CategoryTotals()
	custom := added[string(synth.CatLegacyRSA)] + added[string(synth.CatExpiring)] + added[string(synth.CatNonNSS)]
	if custom == 0 {
		t.Error("AmazonLinux additions should reflect its custom re-adds (1024-bit, expired, Thawte)")
	}
}

func categorizer(e *synth.Ecosystem) Categorizer {
	byFP := map[certutil.Fingerprint]string{}
	for _, ca := range e.Universe.CAs {
		byFP[certutil.SHA256Fingerprint(ca.Root.DER)] = string(ca.Category)
	}
	return func(fp certutil.Fingerprint) string {
		if c, ok := byFP[fp]; ok {
			return c
		}
		return "unknown"
	}
}

// --- Table 6 -------------------------------------------------------------

func TestTable6ExclusiveRoots(t *testing.T) {
	_, p := fixture(t)
	counts := p.ExclusiveCounts(paperdata.IndependentPrograms)
	want := paperdata.ExclusiveCounts() // NSS 1, Java 0, Apple 13, MS 30
	for prog, n := range want {
		if counts[prog] != n {
			t.Errorf("%s exclusive roots = %d, paper reports %d", prog, counts[prog], n)
		}
	}
}

// --- Table 7 -------------------------------------------------------------

func TestTable7RemovalCatalog(t *testing.T) {
	e, p := fixture(t)
	high := map[certutil.Fingerprint]bool{}
	for _, inc := range paperdata.Incidents() {
		for _, ca := range e.Universe.ByIncident(inc.Name) {
			high[certutil.SHA256Fingerprint(ca.Root.DER)] = true
		}
	}
	events := p.RemovalCatalog(paperdata.NSS, ts(2010, 1, 1), DefaultSeverity(high))
	if len(events) == 0 {
		t.Fatal("no removal events detected")
	}
	bySeverity := map[string]int{}
	highRoots := 0
	for _, ev := range events {
		bySeverity[ev.Severity]++
		if ev.Severity == "high" {
			highRoots += len(ev.Roots)
		}
	}
	// The paper's six high-severity incidents cover 12 roots; our events
	// may merge incidents sharing a removal date (StartCom+WoSign+Procert
	// all removed 2017-11-14).
	if highRoots != 12 {
		t.Errorf("high-severity removed roots = %d, want 12", highRoots)
	}
	if bySeverity["low"] == 0 {
		t.Error("expected low-severity (expired-root) removals in the catalog")
	}
	if bySeverity["medium"] == 0 {
		t.Error("expected medium-severity removals (Symantec batches)")
	}
}

// --- Misc ----------------------------------------------------------------

func TestDefaultFamilies(t *testing.T) {
	fam := DefaultFamilies()
	if fam[paperdata.NodeJS] != "Mozilla" || fam[paperdata.Alpine] != "Mozilla" {
		t.Error("derivatives should map to Mozilla")
	}
	p := &Pipeline{Families: fam}
	if p.FamilyOf("SomethingElse") != "SomethingElse" {
		t.Error("unknown providers map to themselves")
	}
}

func TestUniqueStatesCollapse(t *testing.T) {
	// Two identical snapshots then a different one → 2 states.
	db := store.NewDatabase()
	eco, _ := fixture(t)
	e, _ := store.NewTrustedEntry(eco.Universe.CAs[0].Root.DER, store.ServerAuth)
	s1 := store.NewSnapshot("X", "a", ts(2020, 1, 1))
	s1.Add(e.Clone())
	s2 := store.NewSnapshot("X", "b", ts(2020, 2, 1))
	s2.Add(e.Clone())
	s3 := store.NewSnapshot("X", "c", ts(2020, 3, 1))
	_ = db.AddSnapshot(s1)
	_ = db.AddSnapshot(s2)
	_ = db.AddSnapshot(s3)
	p := New(db)
	states := p.UniqueStates("X")
	if len(states) != 2 {
		t.Errorf("unique states = %d, want 2", len(states))
	}
}
