package core

import (
	"fmt"
	"time"

	"repro/internal/linalg"
	"repro/internal/mds"
	"repro/internal/setdist"
	"repro/internal/store"
)

// OrdinationPoint is one embedded snapshot in the Figure 1 scatter.
type OrdinationPoint struct {
	Provider string
	Family   string
	Date     time.Time
	X, Y     float64
	Cluster  int
}

// Ordination is the reproduced Figure 1: an MDS embedding of snapshot
// Jaccard distances plus a k-means clustering of the embedding.
type Ordination struct {
	Points []OrdinationPoint
	// Stress1 is Kruskal's normalized stress of the embedding.
	Stress1 float64
	// ClusterFamily maps k-means cluster id → majority family.
	ClusterFamily map[int]string
	// Purity is the nearest-family-centroid purity: the fraction of
	// points lying closer to their own family's embedded centroid than to
	// any other family's. 1.0 reproduces the paper's "disjoint clusters"
	// finding; k-means assignments are kept for rendering but a large
	// family cloud can legitimately absorb several k-means cells.
	Purity float64
	// DistinctFamilies counts how many families own at least one k-means
	// cluster.
	DistinctFamilies int
	// FamilyCentroids holds each family's mean embedded position.
	FamilyCentroids map[string][2]float64
}

// OrdinationConfig controls the Figure 1 computation.
type OrdinationConfig struct {
	// From/To bound the snapshot window; the paper plots 2011–2021.
	From, To time.Time
	// K is the cluster count (the paper finds 4).
	K int
	// Dedupe collapses identical consecutive states per provider before
	// embedding, as the paper's "snapshot" granularity effectively does.
	Dedupe bool
	// Metric overrides the set distance (default Jaccard, the paper's
	// choice; setdist.OverlapDistance enables the ablation).
	Metric setdist.Metric
}

// DefaultOrdinationConfig mirrors the paper: 2011–2021, k=4, deduped.
func DefaultOrdinationConfig() OrdinationConfig {
	return OrdinationConfig{
		From:   time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		To:     time.Date(2021, 12, 31, 0, 0, 0, 0, time.UTC),
		K:      4,
		Dedupe: true,
	}
}

// Ordinate runs the Figure 1 pipeline: collect snapshots, compute pairwise
// Jaccard distances over trusted sets, embed with SMACOF MDS, cluster with
// k-means, and score cluster/family agreement.
func (p *Pipeline) Ordinate(cfg OrdinationConfig) (*Ordination, error) {
	if cfg.K <= 0 {
		cfg.K = 4
	}
	snapshots := p.ordinationSnapshots(cfg)
	if len(snapshots) < cfg.K {
		return nil, fmt.Errorf("core: only %d snapshots in window, need at least k=%d", len(snapshots), cfg.K)
	}

	dist := setdist.DistanceMatrixWith(snapshots, p.Purpose, cfg.Metric)
	emb, err := mds.SMACOF(dist, mds.Config{Dims: 2})
	if err != nil {
		return nil, fmt.Errorf("core: MDS: %w", err)
	}
	km, err := linalg.KMeans(emb.Points, cfg.K, 0x5EED, 0)
	if err != nil {
		return nil, fmt.Errorf("core: k-means: %w", err)
	}

	ord := &Ordination{Stress1: emb.Stress1, ClusterFamily: make(map[int]string)}
	for i, s := range snapshots {
		ord.Points = append(ord.Points, OrdinationPoint{
			Provider: s.Provider,
			Family:   p.FamilyOf(s.Provider),
			Date:     s.Date,
			X:        emb.Points.At(i, 0),
			Y:        emb.Points.At(i, 1),
			Cluster:  km.Assignments[i],
		})
	}

	// Majority family per cluster and purity.
	votes := make(map[int]map[string]int)
	for _, pt := range ord.Points {
		if votes[pt.Cluster] == nil {
			votes[pt.Cluster] = make(map[string]int)
		}
		votes[pt.Cluster][pt.Family]++
	}
	for cluster, fams := range votes {
		best, bestN := "", -1
		for fam, n := range fams {
			if n > bestN {
				best, bestN = fam, n
			}
		}
		ord.ClusterFamily[cluster] = best
	}
	owners := make(map[string]bool)
	for _, fam := range ord.ClusterFamily {
		owners[fam] = true
	}
	ord.DistinctFamilies = len(owners)

	// Family centroids and nearest-centroid purity.
	sums := map[string][3]float64{} // x, y, count
	for _, pt := range ord.Points {
		s := sums[pt.Family]
		sums[pt.Family] = [3]float64{s[0] + pt.X, s[1] + pt.Y, s[2] + 1}
	}
	ord.FamilyCentroids = make(map[string][2]float64, len(sums))
	for fam, s := range sums {
		ord.FamilyCentroids[fam] = [2]float64{s[0] / s[2], s[1] / s[2]}
	}
	matched := 0
	for _, pt := range ord.Points {
		best, bestD := "", -1.0
		for fam, c := range ord.FamilyCentroids {
			dx, dy := pt.X-c[0], pt.Y-c[1]
			d := dx*dx + dy*dy
			if bestD < 0 || d < bestD {
				best, bestD = fam, d
			}
		}
		if best == pt.Family {
			matched++
		}
	}
	ord.Purity = float64(matched) / float64(len(ord.Points))
	return ord, nil
}

// ordinationSnapshots collects the in-window snapshots, optionally
// deduplicated to substantial versions.
func (p *Pipeline) ordinationSnapshots(cfg OrdinationConfig) []*store.Snapshot {
	var out []*store.Snapshot
	for _, prov := range p.DB.Providers() {
		h := p.DB.History(prov)
		if cfg.Dedupe {
			snapsByVersion := make(map[string]*store.Snapshot)
			for _, s := range h.Snapshots() {
				snapsByVersion[s.Version] = s
			}
			for _, st := range p.UniqueStates(prov) {
				if st.Date.Before(cfg.From) || st.Date.After(cfg.To) {
					continue
				}
				if s, ok := snapsByVersion[st.Snapshot.Version]; ok {
					out = append(out, s)
				}
			}
			continue
		}
		for _, s := range h.Range(cfg.From, cfg.To) {
			out = append(out, s)
		}
	}
	return out
}
