package core

import (
	"sort"

	"repro/internal/certutil"
	"repro/internal/store"
)

// ExclusiveRoot is one program-exclusive root (Table 6): present and
// purpose-trusted in the program's latest snapshot, never purpose-trusted
// by any other program at any time.
type ExclusiveRoot struct {
	Program string
	Entry   *store.TrustEntry
}

// ExclusiveDiffs reproduces Table 6 over the given independent programs.
func (p *Pipeline) ExclusiveDiffs(programs []string) map[string][]ExclusiveRoot {
	// Ever-trusted sets per program.
	ever := make(map[string]map[certutil.Fingerprint]bool, len(programs))
	for _, prog := range programs {
		h := p.DB.History(prog)
		if h == nil {
			ever[prog] = map[certutil.Fingerprint]bool{}
			continue
		}
		ever[prog] = h.EverTrusted(p.Purpose)
	}

	out := make(map[string][]ExclusiveRoot, len(programs))
	for _, prog := range programs {
		h := p.DB.History(prog)
		if h == nil || h.Latest() == nil {
			continue
		}
		var roots []ExclusiveRoot
		for _, e := range h.Latest().Entries() {
			if !e.TrustedFor(p.Purpose) {
				continue
			}
			exclusive := true
			for _, other := range programs {
				if other == prog {
					continue
				}
				if ever[other][e.Fingerprint] {
					exclusive = false
					break
				}
			}
			if exclusive {
				roots = append(roots, ExclusiveRoot{Program: prog, Entry: e})
			}
		}
		sort.Slice(roots, func(i, j int) bool {
			return roots[i].Entry.Label < roots[j].Entry.Label
		})
		out[prog] = roots
	}
	return out
}

// ExclusiveCounts summarizes ExclusiveDiffs as per-program totals.
func (p *Pipeline) ExclusiveCounts(programs []string) map[string]int {
	diffs := p.ExclusiveDiffs(programs)
	out := make(map[string]int, len(diffs))
	for prog, roots := range diffs {
		out[prog] = len(roots)
	}
	return out
}
