package core

import (
	"fmt"

	"repro/internal/certutil"
	"repro/internal/store"
)

// AuditSnapshots compares a derivative snapshot against a single upstream
// snapshot without historical context — the file-level variant of
// AuditDerivative used by the rootstore CLI, where only two store files are
// at hand. Retained removals cannot be distinguished from foreign roots
// without history, so both surface as FindingForeignRoot.
func AuditSnapshots(deriv, upstream *store.Snapshot, purpose store.Purpose) *AuditReport {
	report := &AuditReport{
		Derivative: deriv.Provider,
		Upstream:   upstream.Provider,
		At:         deriv.Date,
	}
	upstreamSet := upstream.TrustedSet(purpose)
	for _, e := range deriv.Entries() {
		if !e.TrustedFor(purpose) {
			continue
		}
		fp := e.Fingerprint
		if upstreamSet[fp] {
			ue, _ := upstream.Lookup(fp)
			if ue != nil {
				if cutoff, ok := ue.DistrustAfterFor(purpose); ok {
					if _, has := e.DistrustAfterFor(purpose); !has {
						report.Findings = append(report.Findings, Finding{
							Kind:        FindingLostPartialDistrust,
							Fingerprint: fp,
							Label:       e.Label,
							Detail: fmt.Sprintf("upstream rejects issuance after %s; derivative trusts unconditionally",
								cutoff.Format("2006-01-02")),
						})
					}
				}
			}
		} else {
			report.Findings = append(report.Findings, Finding{
				Kind:        FindingForeignRoot,
				Fingerprint: fp,
				Label:       e.Label,
				Detail:      "root not trusted by the upstream snapshot",
			})
		}
		if certutil.ExpiredAt(e.Cert, deriv.Date) {
			report.Findings = append(report.Findings, Finding{
				Kind:        FindingExpiredRoot,
				Fingerprint: fp,
				Label:       e.Label,
				Detail:      fmt.Sprintf("expired %s", e.Cert.NotAfter.Format("2006-01-02")),
			})
		}
	}
	derivSet := deriv.TrustedSet(purpose)
	for fp := range upstreamSet {
		if derivSet[fp] {
			continue
		}
		label := ""
		if ue, ok := upstream.Lookup(fp); ok {
			label = ue.Label
		}
		report.Findings = append(report.Findings, Finding{
			Kind:        FindingMissingRoot,
			Fingerprint: fp,
			Label:       label,
			Detail:      "upstream trusts this root; derivative lacks it",
		})
	}
	return report
}
