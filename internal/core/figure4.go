package core

import (
	"time"

	"repro/internal/certutil"
	"repro/internal/setdist"
	"repro/internal/store"
)

// DiffPoint is one derivative snapshot's membership difference against its
// matched upstream version (Figure 4).
type DiffPoint struct {
	Date time.Time
	// Added are roots the derivative trusts beyond the matched upstream
	// version; Removed are upstream roots the derivative dropped.
	Added, Removed []certutil.Fingerprint
	// AddedByCategory / RemovedByCategory bucket the differences by the
	// caller's categorizer (Figure 4's "sources of difference" legend).
	AddedByCategory, RemovedByCategory map[string]int
}

// DerivativeDiff is one derivative's Figure 4 series.
type DerivativeDiff struct {
	Derivative string
	Upstream   string
	Points     []DiffPoint
	// TotalAdded/TotalRemoved aggregate over the whole series.
	TotalAdded, TotalRemoved int
}

// Categorizer maps a root to a difference-source label; nil buckets
// everything under "uncategorized".
type Categorizer func(certutil.Fingerprint) string

// DerivativeDiffs reproduces Figure 4 for one derivative: each snapshot is
// matched to the closest upstream substantial version and the set
// difference recorded, categorized by the supplied function.
func (p *Pipeline) DerivativeDiffs(derivative, upstream string, categorize Categorizer) *DerivativeDiff {
	if categorize == nil {
		categorize = func(certutil.Fingerprint) string { return "uncategorized" }
	}
	states := p.UniqueStates(upstream)
	if len(states) == 0 {
		return nil
	}
	upstreamHist := p.DB.History(upstream)
	byVersion := make(map[string]*store.Snapshot)
	for _, s := range upstreamHist.Snapshots() {
		byVersion[s.Version] = s
	}
	reps := make([]*store.Snapshot, len(states))
	for i, st := range states {
		reps[i] = byVersion[st.Snapshot.Version]
	}

	h := p.DB.History(derivative)
	if h == nil {
		return nil
	}
	res := &DerivativeDiff{Derivative: derivative, Upstream: upstream}
	for _, s := range h.Snapshots() {
		idx, _ := setdist.ClosestSnapshot(s, reps, p.Purpose)
		if idx < 0 {
			continue
		}
		onlyUpstream, onlyDeriv, _ := store.SetDiff(reps[idx], s, p.Purpose)
		pt := DiffPoint{
			Date:              s.Date,
			Added:             onlyDeriv,
			Removed:           onlyUpstream,
			AddedByCategory:   map[string]int{},
			RemovedByCategory: map[string]int{},
		}
		for _, fp := range onlyDeriv {
			pt.AddedByCategory[categorize(fp)]++
		}
		for _, fp := range onlyUpstream {
			pt.RemovedByCategory[categorize(fp)]++
		}
		res.Points = append(res.Points, pt)
		res.TotalAdded += len(onlyDeriv)
		res.TotalRemoved += len(onlyUpstream)
	}
	return res
}

// Deviates reports whether the derivative ever differed from its matched
// upstream versions — the paper finds every derivative does.
func (d *DerivativeDiff) Deviates() bool {
	return d.TotalAdded > 0 || d.TotalRemoved > 0
}

// CategoryTotals aggregates the per-point categories across the series.
func (d *DerivativeDiff) CategoryTotals() (added, removed map[string]int) {
	added, removed = map[string]int{}, map[string]int{}
	for _, pt := range d.Points {
		for c, n := range pt.AddedByCategory {
			added[c] += n
		}
		for c, n := range pt.RemovedByCategory {
			removed[c] += n
		}
	}
	return added, removed
}
