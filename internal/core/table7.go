package core

import (
	"sort"
	"time"

	"repro/internal/certutil"
)

// RemovalEvent is one detected removal event in a provider's history: a
// date on which one or more purpose-trusted roots left the store
// (Table 7's raw material).
type RemovalEvent struct {
	// Date is the first snapshot no longer trusting the roots.
	Date time.Time
	// LastTrusted is the prior snapshot's date (the "trusted until").
	LastTrusted time.Time
	// Roots are the departed fingerprints with their labels.
	Roots []RemovedRoot
	// Severity, when a classifier is supplied, grades the event.
	Severity string
}

// RemovedRoot pairs a fingerprint with its last-known label.
type RemovedRoot struct {
	Fingerprint certutil.Fingerprint
	Label       string
	// Expired reports whether the root's validity had lapsed by the
	// removal date — the signature of a routine low-severity removal.
	Expired bool
}

// SeverityClassifier grades a removal event; it receives the event with
// Severity unset.
type SeverityClassifier func(RemovalEvent) string

// RemovalCatalog walks a provider's history and extracts every removal
// event since `since`, reproducing the Table 7 catalog when pointed at NSS.
func (p *Pipeline) RemovalCatalog(provider string, since time.Time, classify SeverityClassifier) []RemovalEvent {
	h := p.DB.History(provider)
	if h == nil || h.Len() < 2 {
		return nil
	}
	snaps := h.Snapshots()
	var events []RemovalEvent
	for i := 1; i < len(snaps); i++ {
		prev, cur := snaps[i-1], snaps[i]
		if cur.Date.Before(since) {
			continue
		}
		var removed []RemovedRoot
		for fp := range prev.TrustedSet(p.Purpose) {
			cure, ok := cur.Lookup(fp)
			if ok && cure.TrustedFor(p.Purpose) {
				continue
			}
			preve, _ := prev.Lookup(fp)
			removed = append(removed, RemovedRoot{
				Fingerprint: fp,
				Label:       preve.Label,
				Expired:     certutil.ExpiredAt(preve.Cert, cur.Date),
			})
		}
		if len(removed) == 0 {
			continue
		}
		sort.Slice(removed, func(a, b int) bool { return removed[a].Label < removed[b].Label })
		ev := RemovalEvent{Date: cur.Date, LastTrusted: prev.Date, Roots: removed}
		if classify != nil {
			ev.Severity = classify(ev)
		}
		events = append(events, ev)
	}
	return events
}

// DefaultSeverity is the paper's triage heuristic: removals of expired
// roots are low severity; everything else needs the incident catalog, so a
// lookup set of high-severity fingerprints upgrades matching events.
func DefaultSeverity(high map[certutil.Fingerprint]bool) SeverityClassifier {
	return func(ev RemovalEvent) string {
		allExpired := true
		anyHigh := false
		for _, r := range ev.Roots {
			if !r.Expired {
				allExpired = false
			}
			if high[r.Fingerprint] {
				anyHigh = true
			}
		}
		switch {
		case anyHigh:
			return "high"
		case allExpired:
			return "low"
		default:
			return "medium"
		}
	}
}
