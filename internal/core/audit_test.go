package core

import (
	"testing"

	"repro/internal/certutil"
	"repro/internal/paperdata"
	"repro/internal/store"
)

func TestAuditDerivativeAmazon2017(t *testing.T) {
	_, p := fixture(t)
	// Mid-2017 AmazonLinux: carrying 16 retired 1024-bit roots plus the
	// Thawte root NSS never had.
	report, err := p.AuditDerivative(paperdata.AmazonLinux, paperdata.NSS,
		ts(2017, 6, 1), AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	counts := report.CountByKind()
	if counts[FindingRetainedRemoval] < 16 {
		t.Errorf("retained removals = %d, want >= 16 (the 1024-bit re-adds)", counts[FindingRetainedRemoval])
	}
	if counts[FindingForeignRoot] < 1 {
		t.Errorf("foreign roots = %d, want >= 1 (Thawte)", counts[FindingForeignRoot])
	}
	if report.VersionsBehind <= 0 {
		t.Errorf("versions behind = %d, want > 0", report.VersionsBehind)
	}
	if counts[FindingStale] == 0 {
		t.Error("AmazonLinux should be flagged stale")
	}
	for _, f := range report.Findings {
		if f.String() == "" {
			t.Fatal("finding renders empty")
		}
	}
}

func TestAuditDerivativeSymantecLoss(t *testing.T) {
	_, p := fixture(t)
	// November 2020 Debian has re-added the Symantec roots that NSS holds
	// under partial distrust: every shared annotated root is a
	// lost-partial-distrust finding.
	report, err := p.AuditDerivative(paperdata.Debian, paperdata.NSS,
		ts(2020, 11, 15), AuditConfig{})
	if err != nil {
		t.Fatal(err)
	}
	counts := report.CountByKind()
	if counts[FindingLostPartialDistrust] == 0 {
		t.Error("expected lost-partial-distrust findings for re-added Symantec roots")
	}
}

func TestAuditDerivativeCleanish(t *testing.T) {
	_, p := fixture(t)
	// Alpine shortly after a sync: few findings beyond the email
	// conflation of its early period.
	report, err := p.AuditDerivative(paperdata.Alpine, paperdata.NSS,
		ts(2019, 9, 1), AuditConfig{MaxVersionsBehind: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := report.CountByKind()
	if counts[FindingForeignRoot] != 4 {
		t.Errorf("Alpine 2019 foreign roots = %d, want 4 (email-only conflation)", counts[FindingForeignRoot])
	}
}

func TestAuditErrors(t *testing.T) {
	_, p := fixture(t)
	if _, err := p.AuditDerivative("Nope", paperdata.NSS, ts(2020, 1, 1), AuditConfig{}); err == nil {
		t.Error("unknown derivative should error")
	}
	if _, err := p.AuditDerivative(paperdata.Debian, "Nope", ts(2020, 1, 1), AuditConfig{}); err == nil {
		t.Error("unknown upstream should error")
	}
	if _, err := p.AuditDerivative(paperdata.Alpine, paperdata.NSS, ts(1990, 1, 1), AuditConfig{}); err == nil {
		t.Error("pre-history instant should error")
	}
}

func TestSplitByPurpose(t *testing.T) {
	eco, _ := fixture(t)
	nss := eco.DB.History(paperdata.NSS).At(ts(2020, 9, 1))
	split := SplitByPurpose(nss)

	tls := split[store.ServerAuth]
	email := split[store.EmailProtection]
	if tls.Len() != nss.TrustedCount(store.ServerAuth) {
		t.Errorf("tls split = %d entries, want %d", tls.Len(), nss.TrustedCount(store.ServerAuth))
	}
	if email.Len() != nss.TrustedCount(store.EmailProtection) {
		t.Errorf("email split = %d entries, want %d", email.Len(), nss.TrustedCount(store.EmailProtection))
	}
	// The email-only roots appear in the email split but not the TLS one.
	for _, e := range email.Entries() {
		if e.TrustedFor(store.EmailProtection) == false {
			t.Fatal("email split entry lacks email trust")
		}
		if e.TrustedFor(store.ServerAuth) {
			t.Fatal("email split entry leaked TLS trust")
		}
	}
	// Partial-distrust annotations survive in the relevant split only.
	annotated := 0
	for _, e := range tls.Entries() {
		if _, ok := e.DistrustAfterFor(store.ServerAuth); ok {
			annotated++
		}
	}
	if annotated == 0 {
		t.Error("tls split lost the Symantec partial-distrust annotations")
	}
	// Splits must not alias the original entries.
	orig := nss.Entries()[0]
	if se, ok := tls.Lookup(orig.Fingerprint); ok {
		se.SetTrust(store.CodeSigning, store.Trusted)
		if orig.TrustedFor(store.CodeSigning) {
			t.Error("split mutation leaked into the source snapshot")
		}
	}
}

func TestMinimize(t *testing.T) {
	eco, p := fixture(t)
	nss := eco.DB.History(paperdata.NSS).Latest()

	// Synthetic workload: three roots serve 90% of traffic.
	entries := nss.Entries()
	var tlsRoots []*store.TrustEntry
	for _, e := range entries {
		if e.TrustedFor(store.ServerAuth) {
			tlsRoots = append(tlsRoots, e)
		}
	}
	if len(tlsRoots) < 5 {
		t.Fatal("need at least 5 TLS roots")
	}
	usage := Usage{
		tlsRoots[0].Fingerprint: 60,
		tlsRoots[1].Fingerprint: 20,
		tlsRoots[2].Fingerprint: 10,
		tlsRoots[3].Fingerprint: 7,
		tlsRoots[4].Fingerprint: 3,
	}
	res := p.Minimize(nss, usage, 0.9)
	if len(res.Kept) != 3 {
		t.Errorf("kept = %d roots, want 3 for 90%% coverage", len(res.Kept))
	}
	if res.Coverage < 0.9 {
		t.Errorf("coverage = %.2f", res.Coverage)
	}
	// The Braun et al. observation: most roots go unused.
	if len(res.Dropped) < len(tlsRoots)-5 {
		t.Errorf("dropped = %d, want most of the store", len(res.Dropped))
	}
	// Kept list is ordered most-used first.
	if res.Kept[0].Fingerprint != tlsRoots[0].Fingerprint {
		t.Error("kept not ordered by usage")
	}
}

func TestMinimizeFullCoverage(t *testing.T) {
	eco, p := fixture(t)
	nss := eco.DB.History(paperdata.NSS).Latest()
	entries := nss.Entries()
	usage := Usage{}
	for i, e := range entries {
		if e.TrustedFor(store.ServerAuth) && i%2 == 0 {
			usage[e.Fingerprint] = 1
		}
	}
	res := p.Minimize(nss, usage, 1.0)
	if res.Coverage != 1.0 {
		t.Errorf("coverage = %.2f, want 1.0", res.Coverage)
	}
	for _, e := range res.Kept {
		if usage[e.Fingerprint] == 0 {
			t.Error("kept an unused root at full coverage")
		}
	}
}

func TestMinimizeEmptyWorkload(t *testing.T) {
	eco, p := fixture(t)
	nss := eco.DB.History(paperdata.NSS).Latest()
	res := p.Minimize(nss, Usage{}, 0.99)
	if len(res.Kept) != 0 {
		t.Errorf("kept = %d with no workload", len(res.Kept))
	}
	if res.Coverage != 0 {
		t.Errorf("coverage = %.2f", res.Coverage)
	}
}

func TestUsageFromAnchors(t *testing.T) {
	a := certutil.SHA256Fingerprint([]byte{1})
	b := certutil.SHA256Fingerprint([]byte{2})
	u := UsageFromAnchors([]certutil.Fingerprint{a, b, a, a})
	if u[a] != 3 || u[b] != 1 {
		t.Errorf("usage = %v", u)
	}
}

func TestRemovedCAReport(t *testing.T) {
	e, p := fixture(t)
	rows := p.RemovedCAReport(paperdata.NSS, ts(2010, 1, 1))
	if len(rows) < 30 {
		t.Fatalf("removed CAs = %d, want a substantial catalog", len(rows))
	}
	byFP := map[certutil.Fingerprint]RemovedCA{}
	for _, r := range rows {
		byFP[r.Fingerprint] = r
		if r.FirstTrusted.After(r.LastTrusted) {
			t.Errorf("%s: first after last", r.Label)
		}
		if !r.RemovalSeen.After(r.LastTrusted) {
			t.Errorf("%s: removal seen %s not after last trusted %s", r.Label,
				r.RemovalSeen.Format("2006-01-02"), r.LastTrusted.Format("2006-01-02"))
		}
	}
	// Every incident root must be present with the right removal date.
	for _, inc := range paperdata.Incidents() {
		for _, ca := range e.Universe.ByIncident(inc.Name) {
			fp := certutil.SHA256Fingerprint(ca.Root.DER)
			r, ok := byFP[fp]
			if !ok {
				t.Errorf("%s missing from removed-CA report", ca.Name)
				continue
			}
			if !r.LastTrusted.Equal(inc.NSSRemoval) {
				t.Errorf("%s last trusted %s, want %s", ca.Name,
					r.LastTrusted.Format("2006-01-02"), inc.NSSRemoval.Format("2006-01-02"))
			}
		}
	}
	// Rows are sorted by LastTrusted ascending.
	for i := 1; i < len(rows); i++ {
		if rows[i].LastTrusted.Before(rows[i-1].LastTrusted) {
			t.Fatal("report not date-sorted")
		}
	}
}

func TestCompareRemovals(t *testing.T) {
	e, p := fixture(t)
	// Build a deliberately incomplete catalog: only the incident roots.
	catalog := map[certutil.Fingerprint]bool{}
	for _, inc := range paperdata.Incidents() {
		for _, ca := range e.Universe.ByIncident(inc.Name) {
			catalog[certutil.SHA256Fingerprint(ca.Root.DER)] = true
		}
	}
	missing, unsupported := p.CompareRemovals(paperdata.NSS, ts(2010, 1, 1), catalog)
	// The catalog misses the routine removals (expired roots, legacy
	// purges, Symantec) — the paper's 92-removals finding in miniature.
	if len(missing) < 20 {
		t.Errorf("missing from catalog = %d, want the routine-removal bulk", len(missing))
	}
	if len(unsupported) != 0 {
		t.Errorf("unsupported catalog entries = %d, want 0", len(unsupported))
	}
	// A bogus catalog entry is flagged.
	catalog[certutil.SHA256Fingerprint([]byte("bogus"))] = true
	_, unsupported = p.CompareRemovals(paperdata.NSS, ts(2010, 1, 1), catalog)
	if len(unsupported) != 1 {
		t.Errorf("unsupported = %d, want 1", len(unsupported))
	}
}
