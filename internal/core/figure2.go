package core

import (
	"sort"

	"repro/internal/useragent"
)

// FamilyShare is one layer of the Figure 2 inverted pyramid: the fraction
// of user agents ultimately resting on one root program.
type FamilyShare struct {
	Family  useragent.Family
	Agents  int
	Percent float64
}

// Figure2 is the ecosystem rollup.
type Figure2 struct {
	Shares []FamilyShare
	// Untraceable counts agents whose store could not be determined.
	Untraceable int
	Total       int
}

// EcosystemShares rolls raw User-Agent strings up to root-program families
// (UA → client/OS → provider → family), reproducing §4's NSS 34% / Apple
// 23% / Windows 20% finding.
func EcosystemShares(uas []string) *Figure2 {
	counts := make(map[useragent.Family]int)
	f := &Figure2{Total: len(uas)}
	for _, ua := range uas {
		m := useragent.MapToProvider(useragent.Parse(ua))
		if !m.Traceable {
			f.Untraceable++
			continue
		}
		counts[useragent.FamilyOf(m.Provider)]++
	}
	for fam, n := range counts {
		f.Shares = append(f.Shares, FamilyShare{
			Family:  fam,
			Agents:  n,
			Percent: float64(n) / float64(f.Total) * 100,
		})
	}
	sort.Slice(f.Shares, func(i, j int) bool {
		if f.Shares[i].Agents != f.Shares[j].Agents {
			return f.Shares[i].Agents > f.Shares[j].Agents
		}
		return f.Shares[i].Family < f.Shares[j].Family
	})
	return f
}

// Share returns one family's percentage (0 when absent).
func (f *Figure2) Share(fam useragent.Family) float64 {
	for _, s := range f.Shares {
		if s.Family == fam {
			return s.Percent
		}
	}
	return 0
}
