package core

import (
	"sync"
	"time"

	"repro/internal/setdist"
	"repro/internal/store"
)

// StalenessPoint is one derivative snapshot's version match (Figure 3).
type StalenessPoint struct {
	Date time.Time
	// Matched is the index of the closest upstream substantial version.
	Matched int
	// Current is the index of the newest upstream version at Date.
	Current int
	// Behind = Current - Matched (floored at 0).
	Behind int
	// Distance is the Jaccard distance to the matched version (0 = exact
	// copy; >0 indicates bespoke modifications).
	Distance float64
}

// Staleness is one derivative's Figure 3 series.
type Staleness struct {
	Derivative string
	Upstream   string
	Points     []StalenessPoint
	// AvgVersionsBehind is the time-weighted average staleness in
	// substantial versions — the paper's "X versions behind" headline.
	AvgVersionsBehind float64
	// AvgDistance is the mean Jaccard distance to the matched version,
	// quantifying copy fidelity.
	AvgDistance float64
}

// DerivativeStaleness reproduces Figure 3 for one derivative against an
// upstream provider: each derivative snapshot is matched to the closest
// upstream substantial version by Jaccard distance, and staleness is the
// version-count gap to the upstream mainline, integrated over time.
func (p *Pipeline) DerivativeStaleness(derivative, upstream string, from, to time.Time) *Staleness {
	states := p.UniqueStates(upstream)
	if len(states) == 0 {
		return nil
	}
	h := p.DB.History(derivative)
	if h == nil || h.Len() == 0 {
		return nil
	}

	// Representative snapshots per upstream state for the matcher.
	reps := make([]*store.Snapshot, len(states))
	upstreamHist := p.DB.History(upstream)
	byVersion := make(map[string]*store.Snapshot)
	for _, s := range upstreamHist.Snapshots() {
		byVersion[s.Version] = s
	}
	for i, st := range states {
		reps[i] = byVersion[st.Snapshot.Version]
	}

	currentAt := func(t time.Time) int {
		cur := 0
		for i, st := range states {
			if st.Date.After(t) {
				break
			}
			cur = i
		}
		return cur
	}

	res := &Staleness{Derivative: derivative, Upstream: upstream}
	var snaps []*store.Snapshot
	for _, s := range h.Snapshots() {
		if from.IsZero() || (!s.Date.Before(from) && !s.Date.After(to)) {
			snaps = append(snaps, s)
		}
	}
	if len(snaps) == 0 {
		return res
	}

	// Integrate staleness over time: while a derivative snapshot is in
	// force its matched version stays fixed, but upstream keeps releasing
	// — so staleness grows stepwise until the next derivative update.
	// This is the paper's "area between NSS and each derivative" measure.
	var versionDays, distSum float64
	var totalDays float64
	for i, s := range snaps {
		idx, dist := setdist.ClosestSnapshot(s, reps, p.Purpose)
		if idx < 0 {
			continue
		}
		cur := currentAt(s.Date)
		behind := cur - idx
		if behind < 0 {
			behind = 0
		}
		res.Points = append(res.Points, StalenessPoint{
			Date:     s.Date,
			Matched:  idx,
			Current:  cur,
			Behind:   behind,
			Distance: dist,
		})
		distSum += dist

		end := to
		if i+1 < len(snaps) {
			end = snaps[i+1].Date
		}
		if end.IsZero() || end.Before(s.Date) {
			end = s.Date
		}
		// Piecewise integration across upstream version bumps inside
		// [s.Date, end).
		segStart := s.Date
		for _, st := range states {
			if !st.Date.After(segStart) || !st.Date.Before(end) {
				continue
			}
			days := st.Date.Sub(segStart).Hours() / 24
			b := currentAt(segStart) - idx
			if b < 0 {
				b = 0
			}
			versionDays += float64(b) * days
			totalDays += days
			segStart = st.Date
		}
		days := end.Sub(segStart).Hours() / 24
		b := currentAt(segStart) - idx
		if b < 0 {
			b = 0
		}
		versionDays += float64(b) * days
		totalDays += days
	}
	if totalDays > 0 {
		res.AvgVersionsBehind = versionDays / totalDays
	}
	if len(res.Points) > 0 {
		res.AvgDistance = distSum / float64(len(res.Points))
	}
	return res
}

// AllDerivativeStaleness runs Figure 3 for every derivative in the
// family map sharing the upstream's family, over the window. The series
// are independent, so each derivative runs in its own goroutine; the
// result keeps the input order.
func (p *Pipeline) AllDerivativeStaleness(upstream string, derivatives []string, from, to time.Time) []*Staleness {
	results := make([]*Staleness, len(derivatives))
	var wg sync.WaitGroup
	wg.Add(len(derivatives))
	for i, d := range derivatives {
		go func(i int, d string) {
			defer wg.Done()
			results[i] = p.DerivativeStaleness(d, upstream, from, to)
		}(i, d)
	}
	wg.Wait()
	out := make([]*Staleness, 0, len(derivatives))
	for _, s := range results {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}
