package core

import "testing"

func TestStoreLagStats(t *testing.T) {
	rows := []LagRow{
		{Incident: "A", Store: "Microsoft", LagDays: 10},
		{Incident: "B", Store: "Microsoft", LagDays: 30},
		{Incident: "C", Store: "Microsoft", LagDays: 20},
		{Incident: "D", Store: "Microsoft", LagDays: 100},
		{Incident: "A", Store: "Debian", LagDays: -5},
		{Incident: "B", Store: "Debian", LagDays: 15},
		{Incident: "C", Store: "Apple", StillTrusted: true, ElapsedDays: 400},
	}
	stats := StoreLagStats(rows)
	if len(stats) != 3 {
		t.Fatalf("got %d stores, want 3", len(stats))
	}
	byStore := map[string]LagStats{}
	for _, s := range stats {
		byStore[s.Store] = s
	}

	ms := byStore["Microsoft"]
	if ms.Samples != 4 || ms.StillTrusted != 0 {
		t.Errorf("Microsoft samples=%d still=%d, want 4/0", ms.Samples, ms.StillTrusted)
	}
	if ms.MedianDays != 25 { // mean of middle pair {20,30}
		t.Errorf("Microsoft median = %v, want 25", ms.MedianDays)
	}
	if ms.P90Days != 100 { // nearest rank ceil(0.9*4)=4 → largest
		t.Errorf("Microsoft p90 = %v, want 100", ms.P90Days)
	}
	if ms.MinDays != 10 || ms.MaxDays != 100 {
		t.Errorf("Microsoft min/max = %d/%d, want 10/100", ms.MinDays, ms.MaxDays)
	}
	if ms.MeanDays != 40 {
		t.Errorf("Microsoft mean = %v, want 40", ms.MeanDays)
	}

	deb := byStore["Debian"]
	if deb.MedianDays != 5 { // mean of {-5,15}
		t.Errorf("Debian median = %v, want 5", deb.MedianDays)
	}

	// Still-trusted rows count but contribute no lag samples.
	ap := byStore["Apple"]
	if ap.Samples != 0 || ap.StillTrusted != 1 {
		t.Errorf("Apple samples=%d still=%d, want 0/1", ap.Samples, ap.StillTrusted)
	}
	if ap.MedianDays != 0 || ap.P90Days != 0 {
		t.Errorf("Apple percentiles over zero samples should be 0, got %v/%v", ap.MedianDays, ap.P90Days)
	}
}

func TestStoreLagStatsEmpty(t *testing.T) {
	if got := StoreLagStats(nil); len(got) != 0 {
		t.Fatalf("StoreLagStats(nil) = %v, want empty", got)
	}
}

func TestPercentileDaysSingle(t *testing.T) {
	if v := percentileDays([]int{42}, 0.5); v != 42 {
		t.Errorf("median of singleton = %v, want 42", v)
	}
	if v := percentileDays([]int{42}, 0.9); v != 42 {
		t.Errorf("p90 of singleton = %v, want 42", v)
	}
}
