package core

import (
	"testing"

	"repro/internal/paperdata"
	"repro/internal/store"
	"repro/internal/synth"
)

func TestEcosystemDivergence(t *testing.T) {
	eco, err := synth.CachedWithEcosystems("core-ecosystems")
	if err != nil {
		t.Fatal(err)
	}
	p := New(eco.DB)
	rep := p.EcosystemDivergence()

	if got, want := len(rep.TLSStores), len(paperdata.Providers()); got != want {
		t.Fatalf("%d TLS stores, want %d", got, want)
	}
	if got := len(rep.Providers[store.KindCT]); got != len(synth.CTLogs()) {
		t.Fatalf("%d CT providers, want %d", got, len(synth.CTLogs()))
	}
	if got := len(rep.Providers[store.KindManifest]); got != 1 {
		t.Fatalf("%d manifest providers, want 1", got)
	}
	wantRows := (len(synth.CTLogs()) + 1) * len(rep.TLSStores)
	if len(rep.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rep.Rows), wantRows)
	}

	// Every CT store is far from every browser store, and the manifest
	// provider farther still (Jaccard distance, 1 = disjoint).
	for _, row := range rep.Rows {
		switch row.Kind {
		case store.KindCT:
			// Google's logs accept the Microsoft legacy cohort, which pulls
			// them closest to Microsoft (~0.30); every pair stays >= 0.25.
			if row.Distance < 0.25 {
				t.Errorf("%s vs %s: distance %.3f < 0.25", row.Provider, row.Store, row.Distance)
			}
			if row.Shared == 0 {
				t.Errorf("%s vs %s: no shared roots — CT stores contain the browser mainstream", row.Provider, row.Store)
			}
		case store.KindManifest:
			if row.Distance < 0.9 {
				t.Errorf("%s vs %s: distance %.3f < 0.9", row.Provider, row.Store, row.Distance)
			}
		}
		if row.Shared+row.Exclusive == 0 {
			t.Errorf("%s vs %s: empty provider set", row.Provider, row.Store)
		}
	}

	// Operator correlation shows up in the pairwise slice: same-operator
	// pairs near zero, cross-operator pairs clearly apart.
	operator := make(map[string]string)
	for _, lg := range synth.CTLogs() {
		operator[lg.Name] = lg.Operator
	}
	pairs := rep.Pairs[store.KindCT]
	if want := len(synth.CTLogs()) * (len(synth.CTLogs()) - 1) / 2; len(pairs) != want {
		t.Fatalf("%d CT pairs, want %d", len(pairs), want)
	}
	for _, pair := range pairs {
		if operator[pair.A] == operator[pair.B] {
			if pair.Distance > 0.01 {
				t.Errorf("same-operator %s/%s: distance %.3f", pair.A, pair.B, pair.Distance)
			}
		} else if pair.Distance < 0.1 {
			t.Errorf("cross-operator %s/%s: distance %.3f", pair.A, pair.B, pair.Distance)
		}
	}

	minDist := rep.MinDistanceToTLS()
	for _, lg := range synth.CTLogs() {
		if d, ok := minDist[lg.Name]; !ok || d < 0.25 {
			t.Errorf("%s: min distance to TLS %.3f (present=%v)", lg.Name, d, ok)
		}
	}
	if d := minDist[synth.TPMVendorProvider]; d < 0.9 {
		t.Errorf("%s: min distance to TLS %.3f", synth.TPMVendorProvider, d)
	}
}

// TestEcosystemOrdination checks that with ecosystem families layered onto
// the default lineage, the MDS embedding separates CT logs and the
// manifest provider from the browser clusters.
func TestEcosystemOrdination(t *testing.T) {
	eco, err := synth.CachedWithEcosystems("core-ecosystems")
	if err != nil {
		t.Fatal(err)
	}
	p := New(eco.DB)
	for _, lg := range synth.CTLogs() {
		p.Families[lg.Name] = "CT:" + lg.Operator
	}
	p.Families[synth.TPMVendorProvider] = "TPM"

	cfg := DefaultOrdinationConfig()
	cfg.K = 8
	ord, err := p.Ordinate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate-only stores barely change, so each CT log dedupes to a
	// point or two — too few to out-vote a browser family inside a k-means
	// cell. The embedding claims are therefore about centroids: every
	// ecosystem family lands in the plot, the TPM cloud is distinct enough
	// to own a cell, and the CT centroids sit away from the Mozilla mass.
	for _, fam := range []string{"CT:Google", "CT:DigiCert", "TPM"} {
		if _, ok := ord.FamilyCentroids[fam]; !ok {
			t.Errorf("no %s family centroid: %v", fam, ord.FamilyCentroids)
		}
	}
	owners := make(map[string]bool)
	for _, fam := range ord.ClusterFamily {
		owners[fam] = true
	}
	if !owners["TPM"] {
		t.Errorf("no k-means cluster owned by TPM: %v", ord.ClusterFamily)
	}
	moz := ord.FamilyCentroids["Mozilla"]
	for _, fam := range []string{"CT:Google", "CT:DigiCert", "TPM"} {
		c := ord.FamilyCentroids[fam]
		dx, dy := c[0]-moz[0], c[1]-moz[1]
		if dx*dx+dy*dy < 0.01 {
			t.Errorf("%s centroid %.3f,%.3f on top of Mozilla %.3f,%.3f", fam, c[0], c[1], moz[0], moz[1])
		}
	}
	if ord.Purity < 0.75 {
		t.Errorf("purity %.3f with ecosystem families, want >= 0.75", ord.Purity)
	}
}
