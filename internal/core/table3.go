package core

import (
	"time"

	"repro/internal/certutil"
)

// HygieneRow is one program's Table 3 row, measured from the database.
type HygieneRow struct {
	Program string
	// AvgSize is the mean entry count per snapshot (all purposes, as a
	// store ships them).
	AvgSize float64
	// AvgExpired is the mean number of purpose-trusted entries already
	// expired at their snapshot's date.
	AvgExpired float64
	// MD5Removal is the date of the first snapshot with no trusted
	// MD5-signed roots (after having trusted some); zero if never purged.
	MD5Removal time.Time
	// RSA1024Removal is the analogous purge date for RSA keys <= 1024
	// bits.
	RSA1024Removal time.Time
}

// Hygiene measures Table 3 for the given programs.
func (p *Pipeline) Hygiene(programs []string) []HygieneRow {
	var rows []HygieneRow
	for _, prog := range programs {
		h := p.DB.History(prog)
		if h == nil || h.Len() == 0 {
			continue
		}
		row := HygieneRow{Program: prog}
		var sizeSum, expiredSum int
		everMD5, everWeak := false, false
		for _, s := range h.Snapshots() {
			sizeSum += s.Len()
			md5Count, weakCount := 0, 0
			for _, e := range s.Entries() {
				if !e.TrustedFor(p.Purpose) {
					continue
				}
				if certutil.ExpiredAt(e.Cert, s.Date) {
					expiredSum++
				}
				if certutil.ClassifySignature(e.Cert.SignatureAlgorithm).Weak() {
					md5Count++
				}
				if certutil.ClassifyKey(e.Cert).WeakRSA() {
					weakCount++
				}
			}
			if md5Count > 0 {
				everMD5 = true
				row.MD5Removal = time.Time{}
			} else if everMD5 && row.MD5Removal.IsZero() {
				row.MD5Removal = s.Date
			}
			if weakCount > 0 {
				everWeak = true
				row.RSA1024Removal = time.Time{}
			} else if everWeak && row.RSA1024Removal.IsZero() {
				row.RSA1024Removal = s.Date
			}
		}
		n := float64(h.Len())
		row.AvgSize = float64(sizeSum) / n
		row.AvgExpired = float64(expiredSum) / n
		rows = append(rows, row)
	}
	return rows
}
