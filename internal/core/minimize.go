package core

import (
	"sort"

	"repro/internal/certutil"
	"repro/internal/store"
)

// Usage records how often each trust anchor actually terminated a
// verified chain in some observed workload — the input to the
// root-store minimization analysis (Braun et al. found 90% of roots
// unused; Smith et al. sized minimal stores; the paper discusses both as
// attack-surface reduction).
type Usage map[certutil.Fingerprint]int

// MinimizeResult is the outcome of minimizing a store against a workload.
type MinimizeResult struct {
	// Kept are the retained entries, most-used first.
	Kept []*store.TrustEntry
	// Dropped are the entries removed (unused or below the coverage
	// target).
	Dropped []*store.TrustEntry
	// Coverage is the fraction of workload weight the kept set serves.
	Coverage float64
	// TotalWeight is the workload's total observation count.
	TotalWeight int
}

// Minimize selects the smallest set of roots (by greedy weight ranking)
// whose combined usage covers at least targetCoverage (0..1] of the
// workload. Roots with zero observed use are always dropped; ties break
// by fingerprint for determinism.
func (p *Pipeline) Minimize(s *store.Snapshot, usage Usage, targetCoverage float64) MinimizeResult {
	if targetCoverage <= 0 || targetCoverage > 1 {
		targetCoverage = 1
	}
	type weighted struct {
		entry  *store.TrustEntry
		weight int
	}
	var candidates []weighted
	total := 0
	for _, e := range s.Entries() {
		if !e.TrustedFor(p.Purpose) {
			continue
		}
		w := usage[e.Fingerprint]
		total += w
		candidates = append(candidates, weighted{e, w})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].weight != candidates[j].weight {
			return candidates[i].weight > candidates[j].weight
		}
		return candidates[i].entry.Fingerprint.String() < candidates[j].entry.Fingerprint.String()
	})

	res := MinimizeResult{TotalWeight: total}
	if total == 0 {
		for _, c := range candidates {
			res.Dropped = append(res.Dropped, c.entry)
		}
		return res
	}
	covered := 0
	for _, c := range candidates {
		if float64(covered)/float64(total) >= targetCoverage || c.weight == 0 {
			res.Dropped = append(res.Dropped, c.entry)
			continue
		}
		res.Kept = append(res.Kept, c.entry)
		covered += c.weight
	}
	res.Coverage = float64(covered) / float64(total)
	return res
}

// UsageFromAnchors builds a Usage map from a stream of chain-terminating
// anchor fingerprints (e.g. collected from verify.Result.Anchor).
func UsageFromAnchors(anchors []certutil.Fingerprint) Usage {
	u := make(Usage)
	for _, fp := range anchors {
		u[fp]++
	}
	return u
}
