package core

import (
	"sort"

	"repro/internal/useragent"
)

// UAGroup is one aggregated row of Table 1: a (OS, client) pair with its
// version count and traceability.
type UAGroup struct {
	OS        useragent.OS
	Browser   useragent.Browser
	Versions  int
	Provider  useragent.Provider
	Traceable bool
	Reason    string
}

// Table1 is the reproduced Table 1.
type Table1 struct {
	Groups []UAGroup
	// Total and Included give the headline coverage numbers (200 / 154).
	Total, Included int
}

// CoveragePercent is the paper's 77.0% headline.
func (t *Table1) CoveragePercent() float64 {
	if t.Total == 0 {
		return 0
	}
	return float64(t.Included) / float64(t.Total) * 100
}

// AnalyzeUserAgents runs the Table 1 pipeline over raw User-Agent strings:
// parse, group by (OS, client), and map each group to its root-store
// provider.
func AnalyzeUserAgents(uas []string) *Table1 {
	type key struct {
		os      useragent.OS
		browser useragent.Browser
	}
	counts := make(map[key]int)
	order := []key{}
	for _, ua := range uas {
		a := useragent.Parse(ua)
		k := key{a.OS, a.Browser}
		if _, seen := counts[k]; !seen {
			order = append(order, k)
		}
		counts[k]++
	}
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] > counts[order[j]]
		}
		if order[i].os != order[j].os {
			return order[i].os < order[j].os
		}
		return order[i].browser < order[j].browser
	})

	t := &Table1{}
	for _, k := range order {
		m := useragent.MapToProvider(useragent.Agent{Browser: k.browser, OS: k.os})
		g := UAGroup{
			OS:        k.os,
			Browser:   k.browser,
			Versions:  counts[k],
			Provider:  m.Provider,
			Traceable: m.Traceable,
			Reason:    m.Reason,
		}
		t.Groups = append(t.Groups, g)
		t.Total += g.Versions
		if g.Traceable {
			t.Included += g.Versions
		}
	}
	return t
}
