package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/paperdata"
)

func TestDiagnostics(t *testing.T) {
	_, p := fixture(t)
	ord, err := p.Ordinate(DefaultOrdinationConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("points=%d stress1=%.3f purity=%.3f clusters=%v", len(ord.Points), ord.Stress1, ord.Purity, ord.ClusterFamily)
	// Per-family spreads and centroid distances.
	spread := map[string]float64{}
	count := map[string]float64{}
	for _, pt := range ord.Points {
		c := ord.FamilyCentroids[pt.Family]
		dx, dy := pt.X-c[0], pt.Y-c[1]
		spread[pt.Family] += dx*dx + dy*dy
		count[pt.Family]++
	}
	for fam := range spread {
		t.Logf("family %-10s n=%3.0f rms-spread=%.3f centroid=(%.2f,%.2f)",
			fam, count[fam], math.Sqrt(spread[fam]/count[fam]), ord.FamilyCentroids[fam][0], ord.FamilyCentroids[fam][1])
	}
	fams := []string{"Mozilla", "Microsoft", "Apple", "Java"}
	for i := 0; i < len(fams); i++ {
		for j := i + 1; j < len(fams); j++ {
			a, b := ord.FamilyCentroids[fams[i]], ord.FamilyCentroids[fams[j]]
			t.Logf("dist %s-%s = %.3f", fams[i], fams[j], math.Hypot(a[0]-b[0], a[1]-b[1]))
		}
	}
	from, to := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC), time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	for _, s := range p.AllDerivativeStaleness(paperdata.NSS, paperdata.Derivatives, from, to) {
		t.Logf("staleness %-12s avg=%.2f dist=%.3f points=%d", s.Derivative, s.AvgVersionsBehind, s.AvgDistance, len(s.Points))
	}
	t.Logf("NSS unique states: %d", len(p.UniqueStates(paperdata.NSS)))
}
