package e2e

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/catalog"
	"repro/internal/certdata"
	"repro/internal/jks"
	"repro/internal/nodecerts"
	"repro/internal/paperdata"
	"repro/internal/pemstore"
	"repro/internal/store"
)

// writeNative mirrors cmd/synthgen's per-provider format choice.
func writeNative(t *testing.T, dir, provider string, s *store.Snapshot) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries := s.Entries()
	switch provider {
	case paperdata.NSS:
		f, err := os.Create(filepath.Join(dir, "certdata.txt"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := certdata.Marshal(f, entries); err != nil {
			t.Fatal(err)
		}
	case paperdata.Microsoft:
		if err := authroot.WriteBundle(dir, entries, 1, s.Date); err != nil {
			t.Fatal(err)
		}
	case paperdata.Apple:
		if err := applestore.WriteDir(dir, entries); err != nil {
			t.Fatal(err)
		}
	case paperdata.Java:
		data, err := jks.Marshal(jks.FromEntries(entries, s.Date), "changeit")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "cacerts.jks"), data, 0o644); err != nil {
			t.Fatal(err)
		}
	case paperdata.NodeJS:
		f, err := os.Create(filepath.Join(dir, "node_root_certs.h"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := nodecerts.Marshal(f, entries); err != nil {
			t.Fatal(err)
		}
	default:
		f, err := os.Create(filepath.Join(dir, "tls-ca-bundle.pem"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := pemstore.WriteBundle(f, entries, store.ServerAuth); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSynthgenIngestRoundTrip is the full scraper loop: write every
// provider's latest snapshot in its native format (what cmd/synthgen
// does), auto-detect and ingest the tree with the catalog, and verify the
// rebuilt database agrees with the in-memory corpus on TLS membership.
func TestSynthgenIngestRoundTrip(t *testing.T) {
	eco := ecosystem(t)
	root := t.TempDir()
	for _, prov := range eco.DB.Providers() {
		snap := eco.DB.History(prov).Latest()
		dir := filepath.Join(root, prov, snap.Date.Format("2006-01-02"))
		writeNative(t, dir, prov, snap)
	}

	db, err := catalog.LoadTree(root, catalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(db.Providers()); got != 10 {
		t.Fatalf("ingested %d providers, want 10", got)
	}
	for _, prov := range eco.DB.Providers() {
		want := eco.DB.History(prov).Latest()
		got := db.History(prov).Latest()
		if got == nil {
			t.Fatalf("%s: no ingested snapshot", prov)
		}
		if !got.Date.Equal(want.Date) {
			t.Errorf("%s: date %s, want %s", prov, got.Date.Format("2006-01-02"), want.Date.Format("2006-01-02"))
		}
		wantSet := want.TrustedSet(store.ServerAuth)
		gotSet := got.TrustedSet(store.ServerAuth)
		if len(gotSet) != len(wantSet) {
			t.Errorf("%s: %d TLS roots ingested, want %d", prov, len(gotSet), len(wantSet))
			continue
		}
		for fp := range wantSet {
			if !gotSet[fp] {
				t.Errorf("%s: root %s lost in the disk round trip", prov, fp.Short())
			}
		}
	}

	// NSS's partial-distrust metadata must survive the loop end to end.
	nssWant := eco.DB.History(paperdata.NSS).Latest()
	nssGot := db.History(paperdata.NSS).Latest()
	for _, e := range nssWant.Entries() {
		cutoff, ok := e.DistrustAfterFor(store.ServerAuth)
		if !ok {
			continue
		}
		ge, found := nssGot.Lookup(e.Fingerprint)
		if !found {
			t.Errorf("annotated root %s missing after ingest", e.Label)
			continue
		}
		gc, gok := ge.DistrustAfterFor(store.ServerAuth)
		if !gok || !gc.Equal(cutoff) {
			t.Errorf("%s: distrust-after %v/%v after ingest, want %v", e.Label, gc, gok, cutoff)
		}
	}
}
