package e2e

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildCmds compiles the three CLI binaries once per test run.
func buildCmds(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain unavailable")
	}
	binDir := t.TempDir()
	for _, cmd := range []string{"rootstore", "synthgen", "ecosystem"} {
		out := filepath.Join(binDir, cmd)
		if runtime.GOOS == "windows" {
			out += ".exe"
		}
		build := exec.Command("go", "build", "-o", out, "./cmd/"+cmd)
		build.Dir = repoRoot(t)
		if msg, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, msg)
		}
	}
	return binDir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// internal/e2e → repo root is two levels up.
	return filepath.Dir(filepath.Dir(wd))
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

// TestCLIPipeline drives the real binaries end to end: synthgen writes the
// corpus, rootstore inspects/converts/diffs/audits the files, and ecosystem
// reproduces an artifact.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline is slow")
	}
	bins := buildCmds(t)
	tree := t.TempDir()

	// 1. synthgen writes the latest snapshots.
	out := run(t, filepath.Join(bins, "synthgen"), "-out", tree, "-seed", "cli-e2e")
	if !strings.Contains(out, "wrote 10 snapshots") {
		t.Fatalf("synthgen output: %s", out)
	}

	// Locate the NSS certdata file and the Debian bundle.
	certdataPath := findOne(t, filepath.Join(tree, "NSS"), "certdata.txt")
	debianBundle := findOne(t, filepath.Join(tree, "Debian"), "tls-ca-bundle.pem")

	// 2. inspect.
	out = run(t, filepath.Join(bins, "rootstore"), "inspect", "-format", "certdata", certdataPath)
	if !strings.Contains(out, "trust anchors") || !strings.Contains(out, "server-auth=trusted") {
		t.Fatalf("inspect output:\n%s", out[:min(len(out), 600)])
	}

	// 3. convert certdata → pem, then diff the conversion against the
	// Debian bundle.
	pemOut := filepath.Join(t.TempDir(), "nss.pem")
	out = run(t, filepath.Join(bins, "rootstore"), "convert", "-format", "certdata", "-to", "pem", certdataPath, pemOut)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("convert output: %s", out)
	}
	out = run(t, filepath.Join(bins, "rootstore"), "diff", "-format", "pem", pemOut, debianBundle)
	if !strings.Contains(out, "shared:") {
		t.Fatalf("diff output: %s", out)
	}

	// 4. audit: Debian bundle against the NSS certdata.
	out = run(t, filepath.Join(bins, "rootstore"), "audit",
		"-format", "pem", "-format2", "certdata", debianBundle, certdataPath)
	if !strings.Contains(out, "lost-partial-distrust") {
		t.Fatalf("audit should flag the flattened Symantec annotations:\n%s", out)
	}

	// 5. ecosystem reproduces an artifact.
	out = run(t, filepath.Join(bins, "ecosystem"), "-seed", "cli-e2e", "-artifact", "table6")
	if !strings.Contains(out, "Microsoft") || !strings.Contains(out, "30") {
		t.Fatalf("ecosystem table6 output:\n%s", out)
	}

	// 6. The non-TLS ecosystems ride the same pipeline: synthgen -ecosystems
	// writes CT get-roots and TPM manifest snapshots plus the log-list
	// manifest, and `ecosystem ct -tree` ingests the files back through
	// format detection and prints the divergence report with the operators
	// resolved from ct-log-list.json.
	ecoTree := t.TempDir()
	out = run(t, filepath.Join(bins, "synthgen"), "-out", ecoTree, "-seed", "cli-e2e", "-ecosystems")
	if !strings.Contains(out, "wrote 15 snapshots") {
		t.Fatalf("synthgen -ecosystems output: %s", out)
	}
	findOne(t, filepath.Join(ecoTree, "CT-Argon"), "get-roots.json")
	findOne(t, filepath.Join(ecoTree, "TPM-Vendors"), "tpm-roots.yaml")
	out = run(t, filepath.Join(bins, "ecosystem"), "ct", "-tree", ecoTree)
	for _, want := range []string{"CT-Argon", "TPM-Vendors", "manifest", "same-operator", "Google"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ecosystem ct output missing %q:\n%s", want, out)
		}
	}
}

func findOne(t *testing.T, dir, name string) string {
	t.Helper()
	var found string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && d.Name() == name {
			found = path
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no %s under %s (%v)", name, dir, err)
	}
	return found
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
