// Package e2e exercises the full corpus-to-disk-and-back loop: the
// synthetic ecosystem's latest snapshots are written in every provider's
// native on-disk format (exactly what cmd/synthgen emits), re-parsed with
// the codecs, and compared against the in-memory database. This is the
// integration test proving that a scraper feeding real files into the
// pipeline would see the same stores the analyses ran on.
package e2e

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/applestore"
	"repro/internal/authroot"
	"repro/internal/certdata"
	"repro/internal/jks"
	"repro/internal/nodecerts"
	"repro/internal/paperdata"
	"repro/internal/pemstore"
	"repro/internal/store"
	"repro/internal/synth"
)

func ecosystem(t *testing.T) *synth.Ecosystem {
	t.Helper()
	eco, err := synth.Cached("e2e")
	if err != nil {
		t.Fatal(err)
	}
	return eco
}

// compareMembership asserts the re-parsed entries cover the same
// purpose-trusted fingerprints as the source snapshot.
func compareMembership(t *testing.T, src *store.Snapshot, parsed []*store.TrustEntry, p store.Purpose) {
	t.Helper()
	want := src.TrustedSet(p)
	got := map[string]bool{}
	for _, e := range parsed {
		if e.TrustedFor(p) {
			got[e.Fingerprint.String()] = true
		}
	}
	if len(got) != len(want) {
		t.Errorf("%s: %d trusted after round trip, want %d", src.Provider, len(got), len(want))
	}
	for fp := range want {
		if !got[fp.String()] {
			t.Errorf("%s: %s lost in round trip", src.Provider, fp.Short())
		}
	}
}

func TestNSSCertdataDisk(t *testing.T) {
	eco := ecosystem(t)
	snap := eco.DB.History(paperdata.NSS).Latest()
	path := filepath.Join(t.TempDir(), "certdata.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := certdata.Marshal(f, snap.Entries()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	res, err := certdata.Parse(rf)
	if err != nil {
		t.Fatal(err)
	}
	compareMembership(t, snap, res.Entries, store.ServerAuth)
	compareMembership(t, snap, res.Entries, store.EmailProtection)

	// Partial-distrust annotations must survive the disk round trip.
	wantDA, gotDA := 0, 0
	for _, e := range snap.Entries() {
		if _, ok := e.DistrustAfterFor(store.ServerAuth); ok {
			wantDA++
		}
	}
	for _, e := range res.Entries {
		if _, ok := e.DistrustAfterFor(store.ServerAuth); ok {
			gotDA++
		}
	}
	if wantDA == 0 || gotDA != wantDA {
		t.Errorf("distrust-after annotations: %d on disk, want %d (nonzero)", gotDA, wantDA)
	}
}

func TestMicrosoftAuthrootDisk(t *testing.T) {
	eco := ecosystem(t)
	snap := eco.DB.History(paperdata.Microsoft).Latest()
	dir := t.TempDir()
	if err := authroot.WriteBundle(dir, snap.Entries(), 99, snap.Date); err != nil {
		t.Fatal(err)
	}
	entries, missing, err := authroot.ReadBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Errorf("missing certs: %d", len(missing))
	}
	compareMembership(t, snap, entries, store.ServerAuth)
	compareMembership(t, snap, entries, store.EmailProtection)
	compareMembership(t, snap, entries, store.CodeSigning)
}

func TestAppleDirDisk(t *testing.T) {
	eco := ecosystem(t)
	snap := eco.DB.History(paperdata.Apple).Latest()
	dir := t.TempDir()
	if err := applestore.WriteDir(dir, snap.Entries()); err != nil {
		t.Fatal(err)
	}
	entries, err := applestore.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	compareMembership(t, snap, entries, store.ServerAuth)
}

func TestJavaJKSDisk(t *testing.T) {
	eco := ecosystem(t)
	snap := eco.DB.History(paperdata.Java).Latest()
	data, err := jks.Marshal(jks.FromEntries(snap.Entries(), snap.Date), "changeit")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cacerts.jks")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := jks.Parse(back, "changeit")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := ks.ToEntries(store.ServerAuth, store.EmailProtection)
	if err != nil {
		t.Fatal(err)
	}
	// JKS conflates purposes: membership must match the union, which for
	// Java (all entries TLS+email) equals the TLS set.
	compareMembership(t, snap, entries, store.ServerAuth)
}

func TestNodeHeaderDisk(t *testing.T) {
	eco := ecosystem(t)
	snap := eco.DB.History(paperdata.NodeJS).Latest()
	path := filepath.Join(t.TempDir(), "node_root_certs.h")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := nodecerts.Marshal(f, snap.Entries()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	entries, err := nodecerts.Parse(rf)
	if err != nil {
		t.Fatal(err)
	}
	compareMembership(t, snap, entries, store.ServerAuth)
}

func TestLinuxBundlesDisk(t *testing.T) {
	eco := ecosystem(t)
	for _, prov := range []string{paperdata.Debian, paperdata.Ubuntu, paperdata.Alpine, paperdata.AmazonLinux, paperdata.Android} {
		snap := eco.DB.History(prov).Latest()
		path := filepath.Join(t.TempDir(), "tls-ca-bundle.pem")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := pemstore.WriteBundle(f, snap.Entries(), store.ServerAuth); err != nil {
			t.Fatal(err)
		}
		f.Close()
		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		entries, err := pemstore.ParseBundle(rf, store.ServerAuth)
		rf.Close()
		if err != nil {
			t.Fatalf("%s: %v", prov, err)
		}
		compareMembership(t, snap, entries, store.ServerAuth)
	}
}

// TestDatabaseRebuildFromDisk writes several NSS snapshots to disk, rebuilds
// a history from the files alone, and re-runs a pipeline analysis on it —
// the full scraper path.
func TestDatabaseRebuildFromDisk(t *testing.T) {
	eco := ecosystem(t)
	h := eco.DB.History(paperdata.NSS)
	snaps := h.Snapshots()
	// Sample a handful across the history.
	var picked []*store.Snapshot
	for i := 0; i < len(snaps); i += len(snaps)/8 + 1 {
		picked = append(picked, snaps[i])
	}
	dir := t.TempDir()
	for i, s := range picked {
		path := filepath.Join(dir, s.Version+".certdata.txt")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := certdata.Marshal(f, s.Entries()); err != nil {
			t.Fatal(err)
		}
		f.Close()
		_ = i
	}

	db := store.NewDatabase()
	for _, s := range picked {
		path := filepath.Join(dir, s.Version+".certdata.txt")
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		res, err := certdata.Parse(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		ns := store.NewSnapshot(paperdata.NSS, s.Version, s.Date)
		for _, e := range res.Entries {
			ns.Add(e)
		}
		if err := db.AddSnapshot(ns); err != nil {
			t.Fatal(err)
		}
	}

	rebuilt := db.History(paperdata.NSS)
	if rebuilt.Len() != len(picked) {
		t.Fatalf("rebuilt %d snapshots, want %d", rebuilt.Len(), len(picked))
	}
	for i, s := range picked {
		rs := rebuilt.Snapshots()[i]
		if rs.TrustedCount(store.ServerAuth) != s.TrustedCount(store.ServerAuth) {
			t.Errorf("snapshot %s: %d TLS roots after rebuild, want %d",
				s.Version, rs.TrustedCount(store.ServerAuth), s.TrustedCount(store.ServerAuth))
		}
	}
}
