// Package artifacts renders every table and figure of the paper from a
// generated ecosystem, and computes paper-vs-measured comparisons. It is
// the shared presentation layer behind cmd/ecosystem, the examples, the
// benchmark harness, and EXPERIMENTS.md generation.
package artifacts

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/certutil"
	"repro/internal/core"
	"repro/internal/paperdata"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/useragent"
)

// Context bundles everything the renderers need.
type Context struct {
	Eco  *synth.Ecosystem
	Pipe *core.Pipeline
	UAs  []string
}

// NewContext prepares a rendering context from a generated ecosystem.
func NewContext(eco *synth.Ecosystem) *Context {
	return &Context{
		Eco:  eco,
		Pipe: core.New(eco.DB),
		UAs:  useragent.Generate(useragent.PaperSample()),
	}
}

// Categorize maps fingerprints to synthetic CA categories for Figure 4.
func (c *Context) Categorize() core.Categorizer {
	byFP := map[certutil.Fingerprint]string{}
	for _, ca := range c.Eco.Universe.CAs {
		byFP[certutil.SHA256Fingerprint(ca.Root.DER)] = string(ca.Category)
	}
	return func(fp certutil.Fingerprint) string {
		if cat, ok := byFP[fp]; ok {
			return cat
		}
		return "unknown"
	}
}

// IncidentSpecs converts the paper's incident catalog to measured-lag specs.
func (c *Context) IncidentSpecs() []core.IncidentSpec {
	var specs []core.IncidentSpec
	for _, inc := range paperdata.Incidents() {
		spec := core.IncidentSpec{Name: inc.Name, Anchor: paperdata.NSS}
		for _, ca := range c.Eco.Universe.ByIncident(inc.Name) {
			spec.Fingerprints = append(spec.Fingerprints, certutil.SHA256Fingerprint(ca.Root.DER))
		}
		specs = append(specs, spec)
	}
	return specs
}

// Table1 renders the UA → root store table.
func (c *Context) Table1(w io.Writer) error {
	t1 := core.AnalyzeUserAgents(c.UAs)
	t := report.NewTable("Table 1 — Major CDN Top 200 User Agents",
		"OS", "User Agent", "#Versions", "Provider", "Included?")
	for _, g := range t1.Groups {
		prov := string(g.Provider)
		if prov == "" {
			prov = "-"
		}
		inc := "no"
		if g.Traceable {
			inc = "yes"
		}
		t.AddRow(string(g.OS), string(g.Browser), g.Versions, prov, inc)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Total included: %d/%d (%.1f%%)  [paper: 154/200, 77.0%%]\n\n",
		t1.Included, t1.Total, t1.CoveragePercent())
	return err
}

// Table2 renders the dataset summary.
func (c *Context) Table2(w io.Writer) error {
	rows := c.Pipe.DatasetSummary()
	t := report.NewTable("Table 2 — Dataset (snapshot histories per provider)",
		"Root store", "From", "To", "#SS", "#Uniq", "#Roots")
	total := 0
	for _, r := range rows {
		total += r.Snapshots
		t.AddRow(r.Provider, r.From.Format("2006-01"), r.To.Format("2006-01"),
			r.Snapshots, r.UniqueStates, r.UniqueRoots)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Total snapshots: %d  [paper: %d]\n\n", total, paperdata.TotalSnapshots)
	return err
}

// Figure1 renders the ordination summary and a coarse scatter.
func (c *Context) Figure1(w io.Writer) error {
	ord, err := c.Pipe.Ordinate(core.DefaultOrdinationConfig())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 1 — Root store similarity (MDS on Jaccard distances, 2011-2021)\n")
	fmt.Fprintf(w, "points=%d  stress-1=%.3f  nearest-centroid purity=%.3f\n",
		len(ord.Points), ord.Stress1, ord.Purity)
	fams := make([]string, 0, len(ord.FamilyCentroids))
	for fam := range ord.FamilyCentroids {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	t := report.NewTable("Family regions", "Family", "Centroid X", "Centroid Y", "#Snapshots")
	counts := map[string]int{}
	for _, pt := range ord.Points {
		counts[pt.Family]++
	}
	for _, fam := range fams {
		cen := ord.FamilyCentroids[fam]
		t.AddRow(fam, cen[0], cen[1], counts[fam])
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "[paper: four disjoint clusters — Microsoft, NSS-like, Apple, Java]\n\n")
	return err
}

// Figure2 renders the inverted pyramid shares.
func (c *Context) Figure2(w io.Writer) error {
	f2 := core.EcosystemShares(c.UAs)
	s := report.NewSeries("Figure 2 — Root store ecosystem (share of top-200 UAs per family)")
	for _, share := range f2.Shares {
		s.Add(string(share.Family), share.Percent)
	}
	s.Add("(untraceable)", float64(f2.Untraceable)/float64(f2.Total)*100)
	if err := s.Render(w, 40); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "[paper: NSS 34%%, Apple 23%%, Windows 20%%]\n\n")
	return err
}

// Table3 renders hygiene metrics.
func (c *Context) Table3(w io.Writer) error {
	rows := c.Pipe.Hygiene(paperdata.IndependentPrograms)
	t := report.NewTable("Table 3 — Root store hygiene",
		"Root store", "Avg. Size", "Avg. Expired", "MD5 purge", "1024-bit purge")
	sort.Slice(rows, func(i, j int) bool { return rows[i].Program < rows[j].Program })
	for _, r := range rows {
		t.AddRow(r.Program, r.AvgSize, r.AvgExpired,
			r.MD5Removal.Format("2006-01"), r.RSA1024Removal.Format("2006-01"))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "[paper: Apple 152.9/2.9 2016-09/2015-09; Java 89.4/1.3; Microsoft 246.6/9.9 2018-03/2017-09; NSS 121.8/1.2 2016-02/2015-10]\n\n")
	return err
}

// Table4 renders measured removal lags.
func (c *Context) Table4(w io.Writer) error {
	rows := c.Pipe.RemovalLag(c.IncidentSpecs())
	t := report.NewTable("Table 4 — High severity removals: store responses vs NSS",
		"Incident", "Root store", "#Certs", "Trusted until", "Lag (days)")
	for _, r := range rows {
		until, lag := "", ""
		if r.StillTrusted {
			until = "still trusted"
			lag = fmt.Sprintf("%d+", r.ElapsedDays)
		} else {
			until = r.TrustedUntil.Format("2006-01-02")
			lag = fmt.Sprintf("%d", r.LagDays)
		}
		t.AddRow(r.Incident, r.Store, r.Certs, until, lag)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Figure3 renders derivative staleness.
func (c *Context) Figure3(w io.Writer) error {
	from := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2021, 4, 30, 0, 0, 0, 0, time.UTC)
	res := c.Pipe.AllDerivativeStaleness(paperdata.NSS, paperdata.Derivatives, from, to)
	sort.Slice(res, func(i, j int) bool { return res[i].AvgVersionsBehind < res[j].AvgVersionsBehind })
	s := report.NewSeries("Figure 3 — NSS derivative staleness (avg substantial versions behind, 2015-2021)")
	for _, r := range res {
		s.Add(r.Derivative, r.AvgVersionsBehind)
	}
	if err := s.Render(w, 40); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "[paper: Alpine 0.73, Debian/Ubuntu 1.96, NodeJS 2.1, Android 3.22, AmazonLinux 4.83]\n\n")
	return err
}

// Figure4 renders derivative diff totals by category.
func (c *Context) Figure4(w io.Writer) error {
	categorize := c.Categorize()
	t := report.NewTable("Figure 4 — Derivative differences vs matched NSS version (totals by source)",
		"Derivative", "Added", "Removed", "Top added categories")
	for _, d := range paperdata.Derivatives {
		diff := c.Pipe.DerivativeDiffs(d, paperdata.NSS, categorize)
		if diff == nil {
			continue
		}
		added, _ := diff.CategoryTotals()
		t.AddRow(d, diff.TotalAdded, diff.TotalRemoved, topCategories(added, 3))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "[paper: all derivatives deviate — Symantec distrust, non-NSS roots, email signing, custom trust]\n\n")
	return err
}

func topCategories(m map[string]int, n int) string {
	type kv struct {
		k string
		v int
	}
	var list []kv
	for k, v := range m {
		list = append(list, kv{k, v})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].v != list[j].v {
			return list[i].v > list[j].v
		}
		return list[i].k < list[j].k
	})
	if len(list) > n {
		list = list[:n]
	}
	out := ""
	for i, e := range list {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s(%d)", e.k, e.v)
	}
	return out
}

// Table5 renders the software survey (pure paperdata).
func (c *Context) Table5(w io.Writer) error {
	t := report.NewTable("Table 5 — Popular OS & TLS software root stores",
		"Name", "Kind", "Root store?", "Details")
	for _, r := range paperdata.Survey() {
		has := "no"
		if r.HasStore {
			has = "yes"
		}
		t.AddRow(r.Name, string(r.Kind), has, r.Details)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Table6 renders program-exclusive roots.
func (c *Context) Table6(w io.Writer) error {
	diffs := c.Pipe.ExclusiveDiffs(paperdata.IndependentPrograms)
	t := report.NewTable("Table 6 — Program-exclusive TLS roots",
		"Program", "Exclusive roots", "Paper")
	want := paperdata.ExclusiveCounts()
	progs := append([]string(nil), paperdata.IndependentPrograms...)
	sort.Strings(progs)
	for _, prog := range progs {
		t.AddRow(prog, len(diffs[prog]), want[prog])
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Table7 renders the NSS removal catalog.
func (c *Context) Table7(w io.Writer) error {
	high := map[certutil.Fingerprint]bool{}
	for _, inc := range paperdata.Incidents() {
		for _, ca := range c.Eco.Universe.ByIncident(inc.Name) {
			high[certutil.SHA256Fingerprint(ca.Root.DER)] = true
		}
	}
	since := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	events := c.Pipe.RemovalCatalog(paperdata.NSS, since, core.DefaultSeverity(high))
	t := report.NewTable("Table 7 — NSS root removals since 2010 (measured)",
		"Removed on", "Severity", "#Certs", "Roots")
	for _, ev := range events {
		if ev.Severity == "low" && len(ev.Roots) == 0 {
			continue
		}
		names := ""
		for i, r := range ev.Roots {
			if i > 2 {
				names += fmt.Sprintf(" +%d more", len(ev.Roots)-3)
				break
			}
			if i > 0 {
				names += ", "
			}
			names += r.Label
		}
		t.AddRow(ev.Date.Format("2006-01-02"), ev.Severity, len(ev.Roots), names)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "[paper: 6 high-severity (12 roots) + 3 medium-severity removals since 2010]\n\n")
	return err
}

// RenderAll writes every artifact in paper order.
func (c *Context) RenderAll(w io.Writer) error {
	steps := []func(io.Writer) error{
		c.Table1, c.Table2, c.Figure1, c.Figure2, c.Table3,
		c.Table4, c.Figure3, c.Figure4, c.Table5, c.Table6, c.Table7,
	}
	for _, step := range steps {
		if err := step(w); err != nil {
			return err
		}
	}
	return nil
}
