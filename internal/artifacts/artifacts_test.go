package artifacts

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/synth"
)

var (
	ctxOnce sync.Once
	ctx     *Context
	ctxErr  error
)

func testContext(t testing.TB) *Context {
	t.Helper()
	ctxOnce.Do(func() {
		eco, err := synth.Cached("artifacts-test")
		if err != nil {
			ctxErr = err
			return
		}
		ctx = NewContext(eco)
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctx
}

func render(t *testing.T, f func(*strings.Builder) error) string {
	t.Helper()
	var b strings.Builder
	if err := f(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestTable1Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Table1(b) })
	for _, want := range []string{"Table 1", "Chrome Mobile", "154/200", "77.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Table2(b) })
	for _, want := range []string{"Table 2", "NSS", "Microsoft", "Total snapshots", "619"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q", want)
		}
	}
}

func TestFigure1Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Figure1(b) })
	for _, want := range []string{"Figure 1", "stress-1", "purity", "Mozilla", "Apple", "Java"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure1 output missing %q", want)
		}
	}
}

func TestFigure2Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Figure2(b) })
	for _, want := range []string{"Figure 2", "Mozilla", "untraceable"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 output missing %q", want)
		}
	}
}

func TestTable3Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Table3(b) })
	for _, want := range []string{"Table 3", "2016-02", "2015-10", "2018-03"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 output missing %q (purge dates must be exact)", want)
		}
	}
}

func TestTable4Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Table4(b) })
	for _, want := range []string{"Table 4", "DigiNotar", "CNNIC", "still trusted", "-37"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 output missing %q", want)
		}
	}
}

func TestFigure3Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Figure3(b) })
	for _, want := range []string{"Figure 3", "Alpine", "AmazonLinux"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure3 output missing %q", want)
		}
	}
	// Ordering in the rendered series: Alpine line above AmazonLinux.
	if strings.Index(out, "Alpine") > strings.Index(out, "AmazonLinux") {
		t.Error("staleness series should be sorted ascending")
	}
}

func TestFigure4Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Figure4(b) })
	for _, want := range []string{"Figure 4", "Debian", "email-only"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure4 output missing %q", want)
		}
	}
}

func TestTable5Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Table5(b) })
	for _, want := range []string{"Table 5", "OpenSSL", "wolfSSL", "Firefox"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 output missing %q", want)
		}
	}
}

func TestTable6Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Table6(b) })
	for _, want := range []string{"Table 6", "Microsoft", "30", "13"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 output missing %q", want)
		}
	}
}

func TestTable7Output(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.Table7(b) })
	for _, want := range []string{"Table 7", "high", "medium", "low"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table7 output missing %q", want)
		}
	}
}

func TestRenderAll(t *testing.T) {
	c := testContext(t)
	out := render(t, func(b *strings.Builder) error { return c.RenderAll(b) })
	for _, want := range []string{"Table 1", "Table 2", "Figure 1", "Figure 2", "Table 3",
		"Table 4", "Figure 3", "Figure 4", "Table 5", "Table 6", "Table 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
	if len(out) < 5000 {
		t.Errorf("full report suspiciously short: %d bytes", len(out))
	}
}

func TestTopCategories(t *testing.T) {
	got := topCategories(map[string]int{"a": 5, "b": 9, "c": 1, "d": 9}, 2)
	if got != "b(9), d(9)" {
		t.Errorf("topCategories = %q", got)
	}
	if topCategories(nil, 3) != "" {
		t.Error("empty map should render empty")
	}
}
