package simulate

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/certutil"
)

// SweepEntry is one (root, store) removal scenario with its UA-weighted
// impact — what Simulate's ImpactFraction would report for a single-root
// removal of Fingerprint by Store.
type SweepEntry struct {
	Fingerprint string  `json:"fingerprint"`
	Label       string  `json:"label,omitempty"`
	Store       string  `json:"store"`
	Impact      float64 `json:"impact"`
	// TrustingStores counts how many stores' latest snapshots trust the
	// root — a proxy for how contested a removal would be.
	TrustingStores int `json:"trusting_stores"`
}

// SweepResult ranks every root × store removal scenario for one database
// generation.
type SweepResult struct {
	Purpose string `json:"purpose"`
	// Roots is the number of distinct roots trusted by at least one
	// latest snapshot; Stores the providers swept; Pairs the evaluated
	// (root, store) scenarios.
	Roots  int      `json:"roots"`
	Stores []string `json:"stores"`
	Pairs  int      `json:"pairs"`
	// Entries is the full ranking, highest impact first (ties broken by
	// fingerprint then store for a stable order).
	Entries []SweepEntry `json:"entries"`
}

// Top returns the n highest-impact entries (the whole ranking when n <= 0
// or exceeds it) without copying the backing array.
func (r *SweepResult) Top(n int) []SweepEntry {
	if n <= 0 || n >= len(r.Entries) {
		return r.Entries
	}
	return r.Entries[:n]
}

// Sweep evaluates the removal of every root by every store that trusts
// it, in parallel, and returns the full impact ranking. Each (root,
// store) cell costs a handful of bitset probes, so the whole cross
// product over a realistic corpus lands in single-digit milliseconds.
// workers <= 0 means GOMAXPROCS. The result is identical — entry by
// entry, bit for bit — to running Simulate once per pair, because both
// paths share impactOf.
func (e *Engine) Sweep(workers int) *SweepResult {
	p := e.purpose

	// The root universe: every ID trusted by at least one latest snapshot.
	universe := &bitset.Set{}
	perStore := make(map[string]*bitset.Set, len(e.providers))
	for _, name := range e.providers {
		if bits := e.trustedBits(name, p); bits != nil {
			perStore[name] = bits
			universe = universe.Union(bits)
		}
	}
	ids := universe.IDs()

	res := &SweepResult{Purpose: p.String(), Roots: len(ids)}
	for _, name := range e.providers {
		if perStore[name] != nil {
			res.Stores = append(res.Stores, name)
		}
	}

	// Shard over roots with the atomic-counter idiom the distance-matrix
	// kernel uses (setdist.parallelRows): workers pull the next root index
	// and write a disjoint slot, so no synchronization beyond the counter.
	perRoot := make([][]SweepEntry, len(ids))
	parallelIDs(len(ids), workers, func(i int) {
		id := ids[i]
		fp, ok := e.interner.FingerprintOf(id)
		if !ok {
			return
		}
		label := e.labelAnywhere(fp)
		single := [1]uint32{id}
		trusting := 0
		for _, name := range res.Stores {
			if perStore[name].Contains(id) {
				trusting++
			}
		}
		var entries []SweepEntry
		for _, name := range res.Stores {
			if !perStore[name].Contains(id) {
				continue // a store cannot remove a root it does not carry
			}
			impact, _ := e.impactOf(name, p, single[:])
			entries = append(entries, SweepEntry{
				Fingerprint:    fp.String(),
				Label:          label,
				Store:          name,
				Impact:         impact,
				TrustingStores: trusting,
			})
		}
		perRoot[i] = entries
	})

	for _, entries := range perRoot {
		res.Entries = append(res.Entries, entries...)
	}
	res.Pairs = len(res.Entries)
	sort.Slice(res.Entries, func(i, j int) bool {
		a, b := res.Entries[i], res.Entries[j]
		if a.Impact != b.Impact {
			return a.Impact > b.Impact
		}
		if a.Fingerprint != b.Fingerprint {
			return a.Fingerprint < b.Fingerprint
		}
		return a.Store < b.Store
	})
	return res
}

// SimulateRemovalOf is the single-pair probe the sweep ranking is made
// of, exposed so property tests (and curious callers) can cross-check a
// sweep cell against a full Simulate run.
func (e *Engine) SimulateRemovalOf(provider string, fp certutil.Fingerprint) (float64, error) {
	res, err := e.Simulate(Event{Kind: KindRemoval, Provider: provider, Fingerprints: []certutil.Fingerprint{fp}, Purpose: e.purpose})
	if err != nil {
		return 0, err
	}
	return res.ImpactFraction, nil
}

// parallelIDs runs f(i) for i in [0,n) across workers goroutines pulling
// indices from an atomic counter; callers must write disjoint slots.
func parallelIDs(n, workers int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
