package simulate

import (
	"testing"

	"repro/internal/certutil"
	"repro/internal/synth"
)

// BenchmarkSimulateSweep measures the full root × store removal ranking
// over the synthetic corpus (the paper-scale dataset: ten providers,
// a few hundred distinct roots). The acceptance bar is single-digit
// milliseconds for the entire cross product.
func BenchmarkSimulateSweep(b *testing.B) {
	eco, err := synth.Cached("simulate-bench")
	if err != nil {
		b.Fatal(err)
	}
	eng := New(eco.DB, Options{})
	eng.Sweep(0) // warm the memoized per-snapshot bitsets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Sweep(0)
		if res.Pairs == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkSimulateEvent measures one single-event evaluation — the
// per-request cost of POST /v1/simulate.
func BenchmarkSimulateEvent(b *testing.B) {
	eco, err := synth.Cached("simulate-bench")
	if err != nil {
		b.Fatal(err)
	}
	eng := New(eco.DB, Options{})
	sweep := eng.Sweep(0)
	top := sweep.Top(1)[0]
	fp, err := certutil.ParseFingerprint(top.Fingerprint)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SimulateRemovalOf(top.Store, fp); err != nil {
			b.Fatal(err)
		}
	}
}
