package simulate

import (
	"errors"
	"testing"
	"time"

	"repro/internal/certutil"
	"repro/internal/paperdata"
	"repro/internal/store"
	"repro/internal/testcerts"
)

// fixtureDB builds a small hand-auditable database over three shared test
// roots A, B, C. Every oracle number in this file is computed by hand from
// this layout:
//
//	NSS:       2020-01-01 {A,B,C}   2020-06-01 {A,B}      (C removed, not expired)
//	Microsoft: 2020-01-01 {A,B,C}   2020-08-01 {A,B,C}    2020-09-01 {A,B}
//	Apple:     2020-01-01 {B}
//	Android:   2020-06-01 {A,B}
//	NodeJS:    2020-01-01 {A,B}     2020-06-01 {B}        (dropped A outright)
//	Debian:    2020-06-01 {A, B+distrust-after}           (format keeps metadata)
//	Ubuntu:    2020-06-01 {B}
//
// The NSS history yields exactly one removal incident (C, anchor date
// 2020-01-01); Microsoft's last trust in C is 2020-08-01, so its measured
// lag is 213 days (2020 is a leap year). No other store ever carried C.
func fixtureDB(t testing.TB) (*store.Database, []certutil.Fingerprint) {
	t.Helper()
	roots := testcerts.Roots(3)
	fps := make([]certutil.Fingerprint, 3)
	for i, r := range roots {
		fps[i] = certutil.SHA256Fingerprint(r.DER)
	}
	entry := func(i int) *store.TrustEntry {
		e, err := store.NewTrustedEntry(roots[i].DER, store.ServerAuth)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	day := func(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }
	snap := func(provider, version string, date time.Time, idx ...int) *store.Snapshot {
		s := store.NewSnapshot(provider, version, date)
		for _, i := range idx {
			s.Add(entry(i))
		}
		return s
	}

	db := store.NewDatabase()
	add := func(s *store.Snapshot) {
		if err := db.AddSnapshot(s); err != nil {
			t.Fatal(err)
		}
	}
	add(snap(paperdata.NSS, "1", day(2020, 1, 1), 0, 1, 2))
	add(snap(paperdata.NSS, "2", day(2020, 6, 1), 0, 1))
	add(snap(paperdata.Microsoft, "1", day(2020, 1, 1), 0, 1, 2))
	add(snap(paperdata.Microsoft, "2", day(2020, 8, 1), 0, 1, 2))
	add(snap(paperdata.Microsoft, "3", day(2020, 9, 1), 0, 1))
	add(snap(paperdata.Apple, "1", day(2020, 1, 1), 1))
	add(snap(paperdata.Android, "1", day(2020, 6, 1), 0, 1))
	add(snap(paperdata.NodeJS, "1", day(2020, 1, 1), 0, 1))
	add(snap(paperdata.NodeJS, "2", day(2020, 6, 1), 1))

	deb := store.NewSnapshot(paperdata.Debian, "1", day(2020, 6, 1))
	deb.Add(entry(0))
	withCutoff := entry(1)
	withCutoff.SetDistrustAfter(store.ServerAuth, day(2019, 9, 1))
	deb.Add(withCutoff)
	add(deb)

	add(snap(paperdata.Ubuntu, "1", day(2020, 6, 1), 1))
	return db, fps
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

func TestSimulateRemovalOracle(t *testing.T) {
	db, fps := fixtureDB(t)
	eng := New(db, Options{})

	res, err := eng.Simulate(Event{Kind: KindRemoval, Fingerprints: []certutil.Fingerprint{fps[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Provider != paperdata.NSS {
		t.Errorf("provider defaulted to %q, want NSS", res.Provider)
	}
	if !res.Date.Equal(time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("date defaulted to %v, want NSS latest 2020-06-01", res.Date)
	}
	// Stores trusting A: NSS (11), Microsoft (34), Android (49), Debian (no
	// UA share). Losing stores = NSS + its derivatives → NSS + Android.
	if want := 60.0 / 200; !approx(res.ImpactFraction, want) {
		t.Errorf("impact = %v, want %v (NSS 11 + Android 49 of 200)", res.ImpactFraction, want)
	}
	if want := 94.0 / 200; !approx(res.TrustedFraction, want) {
		t.Errorf("trusted = %v, want %v (NSS 11 + Microsoft 34 + Android 49)", res.TrustedFraction, want)
	}
	if want := 46.0 / 200; !approx(res.UntraceableFraction, want) {
		t.Errorf("untraceable = %v, want %v", res.UntraceableFraction, want)
	}
	if len(res.AffectedRoots) != 1 || res.AffectedRoots[0].Fingerprint != fps[0].String() {
		t.Fatalf("affected roots = %+v, want exactly root A", res.AffectedRoots)
	}

	// Divergence: Microsoft (213-day measured lag → projected 2020-12-31),
	// Android and Debian (derivatives, no history → open-ended).
	byStore := map[string]DivergenceWindow{}
	for _, w := range res.Divergence {
		byStore[w.Store] = w
	}
	if len(byStore) != 3 {
		t.Fatalf("divergence stores = %v, want Microsoft/Android/Debian", res.Divergence)
	}
	ms := byStore[paperdata.Microsoft]
	if !ms.HasHistory || ms.MedianLagDays != 213 {
		t.Errorf("Microsoft lag = %+v, want measured median 213", ms)
	}
	if want := time.Date(2020, 12, 31, 0, 0, 0, 0, time.UTC); !ms.ProjectedUntil.Equal(want) {
		t.Errorf("Microsoft projected until %v, want %v", ms.ProjectedUntil, want)
	}
	if ms.Derivative {
		t.Error("Microsoft flagged as NSS derivative")
	}
	for _, name := range []string{paperdata.Android, paperdata.Debian} {
		w := byStore[name]
		if !w.Derivative || !w.OpenEnded || w.HasHistory {
			t.Errorf("%s window = %+v, want open-ended derivative", name, w)
		}
	}

	// Per-UA rows: Apple has the largest share but neither trusts nor loses A.
	if len(res.Impacts) == 0 || res.Impacts[0].Provider != paperdata.Apple {
		t.Fatalf("impacts = %+v, want Apple (share 0.265) first", res.Impacts)
	}
	if res.Impacts[0].TrustsNow || res.Impacts[0].Loses {
		t.Errorf("Apple row = %+v, want untouched", res.Impacts[0])
	}
}

func TestSimulateDistrustAfterMismatch(t *testing.T) {
	db, fps := fixtureDB(t)
	eng := New(db, Options{})

	res, err := eng.Simulate(Event{
		Kind:         KindDistrustAfter,
		Provider:     paperdata.NSS,
		Fingerprints: []certutil.Fingerprint{fps[0]},
		Date:         time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		paperdata.Android: MismatchIgnored,    // trusts A, flattened format
		paperdata.Debian:  MismatchHonored,    // trusts A, carries distrust-after metadata
		paperdata.NodeJS:  MismatchRemoved,    // dropped A outright
		paperdata.Ubuntu:  MismatchNotTrusted, // never carried A
	}
	if len(res.MismatchRisks) != len(want) {
		t.Fatalf("got %d mismatch rows (%+v), want %d", len(res.MismatchRisks), res.MismatchRisks, len(want))
	}
	for _, r := range res.MismatchRisks {
		if r.Upstream != paperdata.NSS {
			t.Errorf("%s upstream = %q, want NSS", r.Derivative, r.Upstream)
		}
		if r.Risk != want[r.Derivative] {
			t.Errorf("%s risk = %q, want %q", r.Derivative, r.Risk, want[r.Derivative])
		}
	}

	// A plain removal must not emit mismatch rows.
	res2, err := eng.Simulate(Event{Kind: KindRemoval, Fingerprints: []certutil.Fingerprint{fps[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.MismatchRisks) != 0 {
		t.Errorf("removal event produced mismatch rows: %+v", res2.MismatchRisks)
	}
}

func TestSimulateCARemoval(t *testing.T) {
	db, _ := fixtureDB(t)
	eng := New(db, Options{})

	// Every shared test root is labeled "Shared Test Root NNN"; the owner
	// match is case-insensitive and scoped to the acting store's latest
	// snapshot, so NSS@2020-06-01 contributes A and B.
	res, err := eng.Simulate(Event{Kind: KindCARemoval, Owner: "shared test root"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AffectedRoots) != 2 {
		t.Fatalf("affected = %+v, want A and B", res.AffectedRoots)
	}
	// Every UA-weighted store trusts B, so the whole traceable share is
	// trusted and the NSS family share is impacted.
	if want := 154.0 / 200; !approx(res.TrustedFraction, want) {
		t.Errorf("trusted = %v, want %v", res.TrustedFraction, want)
	}
	if want := (11.0 + 49 + 7) / 200; !approx(res.ImpactFraction, want) {
		t.Errorf("impact = %v, want %v (NSS + Android + NodeJS)", res.ImpactFraction, want)
	}

	one, err := eng.Simulate(Event{Kind: KindCARemoval, Owner: "Root 000"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.AffectedRoots) != 1 {
		t.Fatalf("affected = %+v, want just root A", one.AffectedRoots)
	}
}

func TestSimulateErrors(t *testing.T) {
	db, fps := fixtureDB(t)
	eng := New(db, Options{})

	cases := []struct {
		name string
		ev   Event
		want error
	}{
		{"unknown provider", Event{Kind: KindRemoval, Provider: "Netscape", Fingerprints: fps[:1]}, ErrUnknownProvider},
		{"unknown kind", Event{Kind: "merger"}, ErrBadEvent},
		{"no fingerprints", Event{Kind: KindRemoval}, ErrBadEvent},
		{"no owner", Event{Kind: KindCARemoval}, ErrBadEvent},
		{"owner matches nothing", Event{Kind: KindCARemoval, Owner: "Honest Achmed"}, ErrNoAffectedRoots},
		{"fingerprint nobody knows", Event{Kind: KindRemoval, Fingerprints: []certutil.Fingerprint{{0xde, 0xad}}}, ErrNoAffectedRoots},
	}
	for _, tc := range cases {
		if _, err := eng.Simulate(tc.ev); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, ok := range []string{"removal", "distrust-after", "ca-removal"} {
		if _, err := ParseKind(ok); err != nil {
			t.Errorf("ParseKind(%q) = %v", ok, err)
		}
	}
	if _, err := ParseKind("acquisition"); !errors.Is(err, ErrBadEvent) {
		t.Errorf("ParseKind(acquisition) = %v, want ErrBadEvent", err)
	}
}

func TestEngineConcurrentSimulate(t *testing.T) {
	db, fps := fixtureDB(t)
	eng := New(db, Options{})
	done := make(chan *Result, 16)
	for i := 0; i < 16; i++ {
		go func() {
			res, err := eng.Simulate(Event{Kind: KindRemoval, Fingerprints: []certutil.Fingerprint{fps[0]}})
			if err != nil {
				t.Error(err)
			}
			done <- res
		}()
	}
	first := <-done
	for i := 1; i < 16; i++ {
		if res := <-done; res != nil && first != nil && res.ImpactFraction != first.ImpactFraction {
			t.Fatalf("concurrent simulations disagree: %v vs %v", res.ImpactFraction, first.ImpactFraction)
		}
	}
}
