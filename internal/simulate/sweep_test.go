package simulate

import (
	"reflect"
	"testing"

	"repro/internal/certutil"
	"repro/internal/synth"
)

// TestSweepMatchesSingleSimulations is the defining property of sweep
// mode: every (root, store) cell equals — bit for bit — the
// ImpactFraction a full single-event Simulate reports for that removal.
func TestSweepMatchesSingleSimulations(t *testing.T) {
	db, _ := fixtureDB(t)
	eng := New(db, Options{})
	sweep := eng.Sweep(0)

	// NSS 2 + Microsoft 2 + Apple 1 + Android 2 + NodeJS 1 + Debian 2 +
	// Ubuntu 1 trusted roots in the latest snapshots.
	if sweep.Pairs != 11 || len(sweep.Entries) != 11 {
		t.Fatalf("pairs = %d (%d entries), want 11", sweep.Pairs, len(sweep.Entries))
	}
	// C left every store, so the sweep universe is {A, B}.
	if sweep.Roots != 2 {
		t.Errorf("roots = %d, want 2", sweep.Roots)
	}
	for _, entry := range sweep.Entries {
		fp, err := certutil.ParseFingerprint(entry.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		impact, err := eng.SimulateRemovalOf(entry.Store, fp)
		if err != nil {
			t.Fatalf("simulate %s×%s: %v", entry.Store, entry.Fingerprint[:8], err)
		}
		if impact != entry.Impact {
			t.Errorf("sweep(%s, %s…) = %v, Simulate = %v — paths diverged",
				entry.Store, entry.Fingerprint[:8], entry.Impact, impact)
		}
	}
	for i := 1; i < len(sweep.Entries); i++ {
		if sweep.Entries[i].Impact > sweep.Entries[i-1].Impact {
			t.Fatalf("entries not sorted by impact at %d: %v after %v",
				i, sweep.Entries[i].Impact, sweep.Entries[i-1].Impact)
		}
	}
}

// TestSweepPropertyOnSynthCorpus runs the same property against the full
// synthetic ecosystem — every sweep cell must agree with an independent
// single-event simulation.
func TestSweepPropertyOnSynthCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("synth corpus sweep cross-check is not short")
	}
	eco, err := synth.Cached("simulate-test")
	if err != nil {
		t.Fatal(err)
	}
	eng := New(eco.DB, Options{})
	sweep := eng.Sweep(0)
	if sweep.Pairs == 0 {
		t.Fatal("synth sweep produced no pairs")
	}
	// Spot-check a deterministic sample across the ranking; checking all
	// few-thousand pairs would dominate the suite for no extra signal.
	step := len(sweep.Entries)/50 + 1
	for i := 0; i < len(sweep.Entries); i += step {
		entry := sweep.Entries[i]
		fp, err := certutil.ParseFingerprint(entry.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		impact, err := eng.SimulateRemovalOf(entry.Store, fp)
		if err != nil {
			t.Fatal(err)
		}
		if impact != entry.Impact {
			t.Errorf("entry %d (%s×%s…): sweep %v != simulate %v",
				i, entry.Store, entry.Fingerprint[:8], entry.Impact, impact)
		}
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	db, _ := fixtureDB(t)
	eng := New(db, Options{})
	serial := eng.Sweep(1)
	for _, workers := range []int{0, 2, 7} {
		if got := eng.Sweep(workers); !reflect.DeepEqual(got, serial) {
			t.Fatalf("Sweep(%d) differs from serial sweep", workers)
		}
	}
}

func TestSweepTop(t *testing.T) {
	db, _ := fixtureDB(t)
	sweep := New(db, Options{}).Sweep(0)
	if got := sweep.Top(2); len(got) != 2 {
		t.Errorf("Top(2) returned %d entries", len(got))
	}
	if got := sweep.Top(0); len(got) != len(sweep.Entries) {
		t.Errorf("Top(0) returned %d entries, want all %d", len(got), len(sweep.Entries))
	}
	if got := sweep.Top(10_000); len(got) != len(sweep.Entries) {
		t.Errorf("Top(10000) returned %d entries, want all %d", len(got), len(sweep.Entries))
	}
}
