// Package simulate is the removal-impact "what-if" engine: the
// forward-looking counterpart of the paper's Table 4 retrospective. Given
// a hypothetical distrust event — a root removal, a partial distrust-after
// date, or a whole-CA removal by owner — against one database generation,
// it answers who breaks and for how long:
//
//   - weighted client impact: the fraction of UA-weighted traffic (Table 1
//     marginals, internal/useragent) whose routed store loses the root,
//   - cross-store divergence windows: which stores and derivatives still
//     trust the root and the projected interval until they follow, using
//     each store's historical responsiveness measured from its own history
//     (internal/core's Table 4 machinery, aggregated per store), and
//   - Symantec-style partial-distrust mismatch risk per derivative:
//     whether a derivative honors, ignores, or overshoots an upstream
//     distrust-after annotation (modeled off store.DistrustAfter
//     semantics and §6.2's flattened-format fidelity loss).
//
// The engine is immutable once built over a database and safe for any
// number of concurrent callers — the serving layer builds one per
// generation and shares it across requests. Sweep mode (sweep.go)
// evaluates every root × every store as a sharded bitset workload.
package simulate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bitset"
	"repro/internal/certutil"
	"repro/internal/core"
	"repro/internal/paperdata"
	"repro/internal/store"
	"repro/internal/useragent"
)

// Kind is the hypothetical event class.
type Kind string

// Event kinds.
const (
	// KindRemoval removes the named roots from the acting store outright.
	KindRemoval Kind = "removal"
	// KindDistrustAfter sets a partial-distrust issuance cutoff on the
	// named roots (CKA_NSS_SERVER_DISTRUST_AFTER semantics).
	KindDistrustAfter Kind = "distrust-after"
	// KindCARemoval removes every root whose label or subject matches the
	// owner substring — a whole-CA distrust across all its fingerprints.
	KindCARemoval Kind = "ca-removal"
)

// ParseKind validates a wire-format kind.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case KindRemoval, KindDistrustAfter, KindCARemoval:
		return Kind(s), nil
	}
	return "", fmt.Errorf("%w: unknown kind %q (want removal, distrust-after or ca-removal)", ErrBadEvent, s)
}

// Event is one hypothetical distrust action.
type Event struct {
	Kind Kind
	// Provider is the acting store; defaults to NSS (the paper's anchor).
	Provider string
	// Fingerprints names the affected roots (removal / distrust-after).
	Fingerprints []certutil.Fingerprint
	// Owner is the CA owner substring for ca-removal events, matched
	// case-insensitively against root labels and subjects.
	Owner string
	// Date is when the event takes effect; the acting store's latest
	// snapshot date when zero.
	Date time.Time
	// Purpose defaults to server authentication.
	Purpose store.Purpose
}

// Typed errors so transports can map causes to status codes.
var (
	ErrUnknownProvider = errors.New("simulate: unknown provider")
	ErrNoAffectedRoots = errors.New("simulate: no affected roots")
	ErrBadEvent        = errors.New("simulate: invalid event")
)

// Options tunes engine construction. Zero values select the paper's
// defaults.
type Options struct {
	// Weights is the UA traffic distribution; useragent.PaperWeights()
	// when zero.
	Weights useragent.Weights
	// Upstream maps derivative provider → upstream provider; the
	// paperdata Table 2 lineage when nil.
	Upstream map[string]string
	// Purpose is the default trust purpose (server-auth when unset); an
	// Event may override it per call.
	Purpose store.Purpose
}

// Engine evaluates events against one immutable database generation.
type Engine struct {
	db       *store.Database
	purpose  store.Purpose
	weights  useragent.Weights
	upstream map[string]string

	providers []string                   // sorted DB providers
	latest    map[string]*store.Snapshot // latest snapshot per provider
	interner  *store.Interner

	// shares maps a DB store name to its UA traffic share — the Table 1
	// marginal of every UA provider routed to that store. shareList is the
	// same data in sorted order: impact sums iterate it so that the same
	// event always produces the bit-identical float, whichever path
	// (single simulation or sweep) computed it.
	shares    map[string]float64
	shareList []providerShare

	// lagMu guards the lazily computed per-anchor responsiveness stats;
	// everything else is immutable after New.
	lagMu       sync.Mutex
	lagByAnchor map[string]map[string]core.LagStats
}

// New builds an engine over db. The database must not be mutated
// afterwards (the serving layer's existing immutable-generation
// convention).
func New(db *store.Database, opts Options) *Engine {
	w := opts.Weights
	if w.Total == 0 {
		w = useragent.PaperWeights()
	}
	up := opts.Upstream
	if up == nil {
		up = map[string]string{}
		for _, p := range paperdata.Providers() {
			if p.DerivesFrom != "" {
				up[p.Name] = p.DerivesFrom
			}
		}
	}
	e := &Engine{
		db:          db,
		purpose:     opts.Purpose,
		weights:     w,
		upstream:    up,
		providers:   db.Providers(),
		latest:      map[string]*store.Snapshot{},
		interner:    db.Interner(),
		shares:      map[string]float64{},
		lagByAnchor: map[string]map[string]core.LagStats{},
	}
	for _, name := range e.providers {
		if snap := db.History(name).Latest(); snap != nil {
			e.latest[name] = snap
		}
	}
	// Intern every fingerprint the database has ever seen so event
	// resolution can name historical roots, not just currently-trusted
	// ones (TrustedBits only interns lazily on first computation).
	for _, snap := range db.AllSnapshots() {
		for _, entry := range snap.Entries() {
			e.interner.ID(entry.Fingerprint)
		}
	}
	for p := range w.Providers {
		// useragent provider names match store provider names by design;
		// a share routed to a store the database lacks contributes nothing.
		e.shares[string(p)] += w.Share(p)
	}
	names := make([]string, 0, len(e.shares))
	for name := range e.shares {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e.shareList = append(e.shareList, providerShare{name: name, share: e.shares[name]})
	}
	return e
}

// providerShare pairs a store provider with its UA traffic share.
type providerShare struct {
	name  string
	share float64
}

// Purpose returns the engine's default trust purpose.
func (e *Engine) Purpose() store.Purpose { return e.purpose }

// trustedBits returns the provider's latest trusted set in the database's
// ID space; memoized inside the snapshot, so repeated calls are free.
func (e *Engine) trustedBits(provider string, p store.Purpose) *bitset.Set {
	snap := e.latest[provider]
	if snap == nil {
		return nil
	}
	return snap.TrustedBits(p, e.interner)
}

// RootRef identifies one affected root in results.
type RootRef struct {
	Fingerprint string `json:"fingerprint"`
	Label       string `json:"label,omitempty"`
}

// ImpactRow is one UA provider's exposure to the event.
type ImpactRow struct {
	// Provider is the UA-routed store provider (Table 1 marginal).
	Provider string `json:"provider"`
	// Share is its fraction of total UA traffic.
	Share float64 `json:"share"`
	// TrustsNow reports whether the routed store currently trusts any
	// affected root; false means those clients see no change.
	TrustsNow bool `json:"trusts_now"`
	// Loses reports whether the routed store is the acting store or one
	// of its derivatives — the stores the event propagates to.
	Loses bool `json:"loses"`
}

// DivergenceWindow is one store still trusting the affected roots after
// the event, with its projected catch-up interval.
type DivergenceWindow struct {
	Store string `json:"store"`
	// Derivative marks stores deriving from the acting provider (they
	// follow mechanically, on their observed sync lag).
	Derivative bool `json:"derivative"`
	// TrustedRoots counts the affected roots the store still trusts.
	TrustedRoots int `json:"trusted_roots"`
	// MedianLagDays is the store's historical responsiveness to the
	// acting store's removals (core.LagStats); meaningful only when
	// HasHistory.
	MedianLagDays float64 `json:"median_lag_days,omitempty"`
	P90LagDays    float64 `json:"p90_lag_days,omitempty"`
	HasHistory    bool    `json:"has_history"`
	// ProjectedUntil is event date + median lag — the projected end of
	// the divergence window. Zero (and OpenEnded true) when the store has
	// never followed one of the acting store's removals.
	ProjectedUntil time.Time `json:"projected_until,omitzero"`
	OpenEnded      bool      `json:"open_ended"`
}

// Mismatch classes for distrust-after events, per derivative.
const (
	// MismatchHonored: the derivative's format carries distrust-after
	// metadata; the cutoff propagates faithfully.
	MismatchHonored = "honored"
	// MismatchIgnored: the derivative trusts the root fully and its
	// format cannot express the cutoff — post-cutoff issuance stays
	// accepted (the Symantec failure the paper observed in §6.2).
	MismatchIgnored = "ignored-full-trust"
	// MismatchRemoved: the derivative dropped the root outright —
	// pre-cutoff issuance breaks too (overblocking).
	MismatchRemoved = "removed-overblocking"
	// MismatchNotTrusted: the derivative never trusted the root; no risk.
	MismatchNotTrusted = "not-trusted"
)

// MismatchRisk is one derivative's projected handling of an upstream
// distrust-after annotation.
type MismatchRisk struct {
	Derivative string `json:"derivative"`
	Upstream   string `json:"upstream"`
	// SupportsDistrustAfter reports whether the derivative's latest
	// snapshot carries any distrust-after metadata at all — flattened
	// formats (PEM bundles, node_root_certs.h) cannot.
	SupportsDistrustAfter bool `json:"supports_distrust_after"`
	// Risk is one of the Mismatch* classes.
	Risk string `json:"risk"`
	// TrustedRoots counts affected roots the derivative still fully
	// trusts.
	TrustedRoots int `json:"trusted_roots"`
}

// Result is a single-event evaluation.
type Result struct {
	Kind     Kind      `json:"kind"`
	Provider string    `json:"provider"`
	Date     time.Time `json:"date"`
	Purpose  string    `json:"purpose"`

	AffectedRoots []RootRef `json:"affected_roots"`

	// ImpactFraction is the headline: the UA-weighted share of traffic
	// whose routed store loses (or gains the cutoff on) the roots.
	ImpactFraction float64 `json:"impact_fraction"`
	// TrustedFraction is the share of traffic whose routed store trusts
	// any affected root today — the impact ceiling.
	TrustedFraction float64 `json:"trusted_fraction"`
	// UntraceableFraction is the share of traffic no store can be
	// attributed to (the paper's 23%).
	UntraceableFraction float64 `json:"untraceable_fraction"`

	Impacts    []ImpactRow        `json:"impacts"`
	Divergence []DivergenceWindow `json:"divergence"`
	// MismatchRisks is populated for distrust-after events only.
	MismatchRisks []MismatchRisk `json:"mismatch_risks,omitempty"`
}

// Simulate evaluates one event. It never mutates the engine or database,
// so any number of simulations may run concurrently.
func (e *Engine) Simulate(ev Event) (*Result, error) {
	if ev.Provider == "" {
		ev.Provider = paperdata.NSS
	}
	snap := e.latest[ev.Provider]
	if snap == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProvider, ev.Provider)
	}
	purpose := ev.Purpose
	if purpose == 0 && e.purpose != 0 {
		purpose = e.purpose
	}
	if ev.Date.IsZero() {
		ev.Date = snap.Date
	}
	if _, err := ParseKind(string(ev.Kind)); err != nil {
		return nil, err
	}

	roots, ids, err := e.resolveRoots(ev, snap)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Kind:                ev.Kind,
		Provider:            ev.Provider,
		Date:                ev.Date,
		Purpose:             purpose.String(),
		AffectedRoots:       roots,
		UntraceableFraction: e.weights.UntraceableShare(),
	}
	res.ImpactFraction, res.TrustedFraction = e.impactOf(ev.Provider, purpose, ids)
	res.Impacts = e.impactRows(ev.Provider, purpose, ids)
	res.Divergence = e.divergenceWindows(ev, purpose, ids)
	if ev.Kind == KindDistrustAfter {
		res.MismatchRisks = e.mismatchRisks(ev, purpose, ids)
	}
	return res, nil
}

// resolveRoots maps the event to interned root IDs and display references.
func (e *Engine) resolveRoots(ev Event, snap *store.Snapshot) ([]RootRef, []uint32, error) {
	var refs []RootRef
	var ids []uint32
	switch ev.Kind {
	case KindCARemoval:
		if strings.TrimSpace(ev.Owner) == "" {
			return nil, nil, fmt.Errorf("%w: ca-removal requires an owner", ErrBadEvent)
		}
		needle := strings.ToLower(ev.Owner)
		for _, entry := range snap.Entries() {
			if !strings.Contains(strings.ToLower(entry.Label), needle) &&
				!strings.Contains(strings.ToLower(certutil.DisplayName(entry.Cert)), needle) {
				continue
			}
			refs = append(refs, RootRef{Fingerprint: entry.Fingerprint.String(), Label: entry.Label})
			ids = append(ids, e.interner.ID(entry.Fingerprint))
		}
		if len(ids) == 0 {
			return nil, nil, fmt.Errorf("%w: owner %q matches no root in %s", ErrNoAffectedRoots, ev.Owner, snap.Key())
		}
	default:
		if len(ev.Fingerprints) == 0 {
			return nil, nil, fmt.Errorf("%w: %s requires fingerprints", ErrBadEvent, ev.Kind)
		}
		for _, fp := range ev.Fingerprints {
			id, ok := e.interner.LookupID(fp)
			if !ok {
				continue // a root no store has ever seen cannot diverge
			}
			ref := RootRef{Fingerprint: fp.String()}
			if entry, ok := snap.Lookup(fp); ok {
				ref.Label = entry.Label
			} else {
				ref.Label = e.labelAnywhere(fp)
			}
			refs = append(refs, ref)
			ids = append(ids, id)
		}
		if len(ids) == 0 {
			return nil, nil, fmt.Errorf("%w: no named fingerprint is known to any store", ErrNoAffectedRoots)
		}
	}
	return refs, ids, nil
}

// labelAnywhere finds a display label for a root the acting store lacks.
func (e *Engine) labelAnywhere(fp certutil.Fingerprint) string {
	for _, name := range e.providers {
		if snap := e.latest[name]; snap != nil {
			if entry, ok := snap.Lookup(fp); ok {
				return entry.Label
			}
		}
	}
	return ""
}

// impactOf computes the headline fractions: traffic whose routed store
// loses any affected root (the acting store plus its derivatives), and
// traffic whose routed store trusts any of them today. This single
// formula is shared by Simulate and the sweep, which is what makes
// "sweep == N single simulations" a provable property rather than an
// aspiration.
func (e *Engine) impactOf(provider string, p store.Purpose, ids []uint32) (impact, trusted float64) {
	for _, ps := range e.shareList {
		bits := e.trustedBits(ps.name, p)
		if bits == nil || !anyIn(bits, ids) {
			continue
		}
		trusted += ps.share
		if ps.name == provider || e.upstream[ps.name] == provider {
			impact += ps.share
		}
	}
	return impact, trusted
}

// anyIn reports whether the set contains any of the IDs.
func anyIn(b *bitset.Set, ids []uint32) bool {
	for _, id := range ids {
		if b.Contains(id) {
			return true
		}
	}
	return false
}

// impactRows renders the per-UA-provider breakdown, sorted by share
// descending then name.
func (e *Engine) impactRows(provider string, p store.Purpose, ids []uint32) []ImpactRow {
	rows := make([]ImpactRow, 0, len(e.shares))
	for storeName, share := range e.shares {
		row := ImpactRow{Provider: storeName, Share: share}
		if bits := e.trustedBits(storeName, p); bits != nil && anyIn(bits, ids) {
			row.TrustsNow = true
			row.Loses = storeName == provider || e.upstream[storeName] == provider
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Share != rows[j].Share {
			return rows[i].Share > rows[j].Share
		}
		return rows[i].Provider < rows[j].Provider
	})
	return rows
}

// divergenceWindows lists every other store still trusting the roots,
// with a catch-up projection from its historical responsiveness to the
// acting store's removals.
func (e *Engine) divergenceWindows(ev Event, p store.Purpose, ids []uint32) []DivergenceWindow {
	lags := e.lagStats(ev.Provider)
	var out []DivergenceWindow
	for _, name := range e.providers {
		if name == ev.Provider {
			continue
		}
		bits := e.trustedBits(name, p)
		if bits == nil {
			continue
		}
		n := 0
		for _, id := range ids {
			if bits.Contains(id) {
				n++
			}
		}
		if n == 0 {
			continue
		}
		win := DivergenceWindow{
			Store:        name,
			Derivative:   e.upstream[name] == ev.Provider,
			TrustedRoots: n,
		}
		if st, ok := lags[name]; ok && st.Samples > 0 {
			win.HasHistory = true
			win.MedianLagDays = st.MedianDays
			win.P90LagDays = st.P90Days
			win.ProjectedUntil = ev.Date.AddDate(0, 0, int(math.Round(st.MedianDays)))
		} else {
			win.OpenEnded = true
		}
		out = append(out, win)
	}
	return out
}

// mismatchRisks classifies each derivative of the acting store against a
// distrust-after annotation.
func (e *Engine) mismatchRisks(ev Event, p store.Purpose, ids []uint32) []MismatchRisk {
	var out []MismatchRisk
	for _, name := range e.providers {
		if e.upstream[name] != ev.Provider {
			continue
		}
		snap := e.latest[name]
		if snap == nil {
			continue
		}
		risk := MismatchRisk{
			Derivative:            name,
			Upstream:              ev.Provider,
			SupportsDistrustAfter: snapshotCarriesDistrustAfter(snap, p),
		}
		bits := e.trustedBits(name, p)
		for _, id := range ids {
			if bits.Contains(id) {
				risk.TrustedRoots++
			}
		}
		switch {
		case risk.TrustedRoots > 0 && risk.SupportsDistrustAfter:
			risk.Risk = MismatchHonored
		case risk.TrustedRoots > 0:
			risk.Risk = MismatchIgnored
		case e.everTrustedAny(name, p, ev.Fingerprints):
			risk.Risk = MismatchRemoved
		default:
			risk.Risk = MismatchNotTrusted
		}
		out = append(out, risk)
	}
	return out
}

// snapshotCarriesDistrustAfter reports whether any entry of the snapshot
// has a distrust-after annotation for the purpose — the capability signal
// that the provider's format preserves partial distrust at all.
func snapshotCarriesDistrustAfter(snap *store.Snapshot, p store.Purpose) bool {
	for _, entry := range snap.Entries() {
		if _, ok := entry.DistrustAfterFor(p); ok {
			return true
		}
	}
	return false
}

// everTrustedAny reports whether the provider's history ever trusted any
// of the fingerprints for the purpose.
func (e *Engine) everTrustedAny(provider string, p store.Purpose, fps []certutil.Fingerprint) bool {
	h := e.db.History(provider)
	if h == nil {
		return false
	}
	for _, fp := range fps {
		if _, _, ever := h.TrustedUntil(fp, p); ever {
			return true
		}
	}
	return false
}

// lagStats returns per-store responsiveness statistics against the
// anchor's own removal history: every removal event the anchor's history
// contains (excluding pure expiry hygiene) becomes an incident, and each
// other store's lag is measured with the Table 4 machinery. Computed once
// per anchor and cached for the engine's lifetime.
func (e *Engine) lagStats(anchor string) map[string]core.LagStats {
	e.lagMu.Lock()
	defer e.lagMu.Unlock()
	if cached, ok := e.lagByAnchor[anchor]; ok {
		return cached
	}
	pipe := &core.Pipeline{DB: e.db, Purpose: e.purpose, Families: core.DefaultFamilies()}
	var specs []core.IncidentSpec
	for _, evt := range pipe.RemovalCatalog(anchor, time.Time{}, nil) {
		spec := core.IncidentSpec{Name: evt.Date.Format("2006-01-02"), Anchor: anchor}
		allExpired := true
		for _, r := range evt.Roots {
			if !r.Expired {
				allExpired = false
				spec.Fingerprints = append(spec.Fingerprints, r.Fingerprint)
			}
		}
		if allExpired {
			continue // routine expiry cleanup says nothing about responsiveness
		}
		specs = append(specs, spec)
	}
	stats := map[string]core.LagStats{}
	for _, st := range pipe.ResponsivenessLags(specs) {
		stats[st.Store] = st
	}
	e.lagByAnchor[anchor] = stats
	return stats
}
