package bitset

import (
	"math/rand"
	"testing"
)

func setOf(ids ...uint32) *Set {
	s := &Set{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func TestAddContainsCount(t *testing.T) {
	s := New(10)
	ids := []uint32{0, 1, 63, 64, 65, 200, 1000}
	for _, id := range ids {
		s.Add(id)
	}
	for _, id := range ids {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false after Add", id)
		}
	}
	if s.Contains(2) || s.Contains(999) {
		t.Error("Contains reports absent IDs")
	}
	if got := s.Count(); got != len(ids) {
		t.Errorf("Count = %d, want %d", got, len(ids))
	}
	s.Add(63) // idempotent
	if got := s.Count(); got != len(ids) {
		t.Errorf("Count after re-Add = %d, want %d", got, len(ids))
	}
}

func TestSetAlgebraMixedLengths(t *testing.T) {
	a := setOf(1, 2, 3, 64)
	b := setOf(2, 3, 4, 500) // longer backing array
	if got := a.IntersectCount(b); got != 2 {
		t.Errorf("IntersectCount = %d, want 2", got)
	}
	if got := b.IntersectCount(a); got != 2 {
		t.Errorf("IntersectCount (swapped) = %d, want 2", got)
	}
	if got := a.UnionCount(b); got != 6 {
		t.Errorf("UnionCount = %d, want 6", got)
	}
	if got := b.UnionCount(a); got != 6 {
		t.Errorf("UnionCount (swapped) = %d, want 6", got)
	}
	u := a.Union(b)
	if u.Count() != 6 || !u.Contains(500) || !u.Contains(1) {
		t.Errorf("Union wrong: %v", u.IDs())
	}
	in := a.Intersect(b)
	if in.Count() != 2 || !in.Contains(2) || !in.Contains(3) {
		t.Errorf("Intersect wrong: %v", in.IDs())
	}
}

func TestEqualIgnoresTrailingZeroWords(t *testing.T) {
	a := setOf(1, 70)
	b := setOf(1, 70)
	b.Add(900)
	if a.Equal(b) || b.Equal(a) {
		t.Error("sets with different members compare equal")
	}
	c := setOf(1, 70)
	c.Add(900)
	// Remove 900 by rebuilding the long array with a zero tail.
	c.words[len(c.words)-1] = 0
	if !a.Equal(c) || !c.Equal(a) {
		t.Error("trailing zero words must not affect equality")
	}
	var empty Set
	if !empty.Equal(&Set{}) {
		t.Error("two empty sets must be equal")
	}
}

func TestIDsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := make(map[uint32]bool)
	s := &Set{}
	for i := 0; i < 500; i++ {
		id := uint32(rng.Intn(2000))
		ref[id] = true
		s.Add(id)
	}
	ids := s.IDs()
	if len(ids) != len(ref) {
		t.Fatalf("IDs len = %d, want %d", len(ids), len(ref))
	}
	for i, id := range ids {
		if !ref[id] {
			t.Errorf("IDs[%d] = %d not in reference", i, id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Errorf("IDs not strictly ascending at %d", i)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := setOf(1, 2, 3)
	c := a.Clone()
	c.Add(100)
	if a.Contains(100) {
		t.Error("Clone shares backing array")
	}
	if !c.Contains(1) {
		t.Error("Clone lost members")
	}
}

// TestAgainstMapReference drives the whole API against a map[uint32]bool
// model with random operations.
func TestAgainstMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		refA, refB := make(map[uint32]bool), make(map[uint32]bool)
		a, b := &Set{}, &Set{}
		for i := 0; i < rng.Intn(300); i++ {
			id := uint32(rng.Intn(600))
			refA[id] = true
			a.Add(id)
		}
		for i := 0; i < rng.Intn(300); i++ {
			id := uint32(rng.Intn(600))
			refB[id] = true
			b.Add(id)
		}
		inter, union := 0, len(refA)+len(refB)
		for id := range refA {
			if refB[id] {
				inter++
			}
		}
		union -= inter
		if got := a.IntersectCount(b); got != inter {
			t.Fatalf("trial %d: IntersectCount = %d, want %d", trial, got, inter)
		}
		if got := a.UnionCount(b); got != union {
			t.Fatalf("trial %d: UnionCount = %d, want %d", trial, got, union)
		}
		if got := a.Union(b).Count(); got != union {
			t.Fatalf("trial %d: Union.Count = %d, want %d", trial, got, union)
		}
		if got := a.Intersect(b).Count(); got != inter {
			t.Fatalf("trial %d: Intersect.Count = %d, want %d", trial, got, inter)
		}
	}
}
