// Package bitset provides a packed bitmap over dense uint32 IDs — the
// representation the analysis hot path uses for trusted-root sets. A root
// store holds tens to hundreds of roots out of a corpus universe of a few
// hundred distinct fingerprints, so once fingerprints are interned to dense
// IDs an entire trusted set fits in a handful of machine words and the
// set algebra the paper's comparisons need (|A∩B|, |A∪B|) collapses to
// word-wise AND/OR plus popcount.
package bitset

import "math/bits"

const wordBits = 64

// Set is a bitmap keyed by dense uint32 IDs. The zero value is an empty
// set ready for use. A Set is not safe for concurrent mutation, but any
// number of readers may share one once populated.
type Set struct {
	words []uint64
}

// New returns an empty set pre-sized to hold IDs below capacity without
// reallocating.
func New(capacity int) *Set {
	if capacity <= 0 {
		return &Set{}
	}
	return &Set{words: make([]uint64, (capacity+wordBits-1)/wordBits)}
}

// Add inserts id into the set, growing the backing array as needed.
func (s *Set) Add(id uint32) {
	w := int(id / wordBits)
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	s.words[w] |= 1 << (id % wordBits)
}

// Contains reports whether id is in the set.
func (s *Set) Contains(id uint32) bool {
	w := int(id / wordBits)
	return w < len(s.words) && s.words[w]&(1<<(id%wordBits)) != 0
}

// Count returns the set cardinality.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IntersectCount returns |s ∩ o| without materializing the intersection.
func (s *Set) IntersectCount(o *Set) int {
	a, b := s.words, o.words
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// UnionCount returns |s ∪ o| without materializing the union.
func (s *Set) UnionCount(o *Set) int {
	a, b := s.words, o.words
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w | b[i])
	}
	for _, w := range b[len(a):] {
		n += bits.OnesCount64(w)
	}
	return n
}

// Union returns a new set holding s ∪ o.
func (s *Set) Union(o *Set) *Set {
	a, b := s.words, o.words
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make([]uint64, len(b))
	for i, w := range a {
		out[i] = w | b[i]
	}
	copy(out[len(a):], b[len(a):])
	return &Set{words: out}
}

// Intersect returns a new set holding s ∩ o.
func (s *Set) Intersect(o *Set) *Set {
	a, b := s.words, o.words
	if len(b) < len(a) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	for i, w := range a {
		out[i] = w & b[i]
	}
	return &Set{words: out}
}

// Equal reports whether the two sets hold exactly the same IDs,
// regardless of backing-array lengths.
func (s *Set) Equal(o *Set) bool {
	a, b := s.words, o.words
	if len(b) < len(a) {
		a, b = b, a
	}
	for i, w := range a {
		if w != b[i] {
			return false
		}
	}
	for _, w := range b[len(a):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// IDs returns the member IDs in ascending order.
func (s *Set) IDs() []uint32 {
	out := make([]uint32, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, uint32(wi*wordBits+bit))
			w &= w - 1
		}
	}
	return out
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...)}
}

// Words returns the packed 64-bit words with trailing zero words trimmed —
// the canonical wire form internal/archive serializes. The returned slice
// is fresh; mutating it does not affect the set.
func (s *Set) Words() []uint64 {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	return append([]uint64(nil), s.words[:n]...)
}

// FromWords reconstructs a set from packed words as produced by Words. The
// slice is copied; the caller keeps ownership.
func FromWords(words []uint64) *Set {
	return &Set{words: append([]uint64(nil), words...)}
}
