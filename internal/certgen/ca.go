package certgen

import (
	"crypto"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/binary"
	"fmt"
	"math/big"
	"time"
)

// KeySpec selects the key class for a generated CA.
type KeySpec struct {
	Algorithm string // "RSA" or "ECDSA"
	Bits      int    // 1024/2048/4096 for RSA; 256 for ECDSA
}

// Common key specifications used by the synthetic corpus.
var (
	RSA1024  = KeySpec{Algorithm: "RSA", Bits: 1024}
	RSA2048  = KeySpec{Algorithm: "RSA", Bits: 2048}
	RSA4096  = KeySpec{Algorithm: "RSA", Bits: 4096}
	ECDSA256 = KeySpec{Algorithm: "ECDSA", Bits: 256}
)

// RootSpec fully describes a synthetic root CA certificate.
type RootSpec struct {
	// Name becomes the subject CN; Org the O attribute; Country C.
	Name    string
	Org     string
	Country string
	// Key and Sig select the key class and signature algorithm.
	Key KeySpec
	Sig Algorithm
	// Validity window.
	NotBefore time.Time
	NotAfter  time.Time
	// KeyIndex selects which pooled key to use, letting callers mint
	// distinct roots that share a key class without paying keygen cost.
	KeyIndex int
}

// Root bundles a minted root certificate with its signing key so callers can
// later issue subordinate certificates from it.
type Root struct {
	DER  []byte
	Cert *x509.Certificate
	Key  crypto.Signer
	Spec RootSpec
}

// serialFor derives a deterministic positive serial number from the spec so
// regenerated corpora are byte-stable apart from ECDSA signature nonces.
func serialFor(spec RootSpec) *big.Int {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%s|%d|%d|%d|%d",
		spec.Name, spec.Org, spec.Country, spec.Key.Algorithm,
		spec.Key.Bits, int(spec.Sig), spec.NotBefore.Unix(), spec.KeyIndex)
	sum := h.Sum(nil)
	// 63 bits keeps serials positive and comfortably in-range everywhere.
	v := binary.BigEndian.Uint64(sum[:8]) >> 1
	if v == 0 {
		v = 1
	}
	return new(big.Int).SetUint64(v)
}

// NewRoot mints a self-signed root CA certificate according to spec, drawing
// keys from the pool.
func NewRoot(pool *KeyPool, spec RootSpec) (*Root, error) {
	var (
		signer crypto.Signer
		err    error
	)
	switch spec.Key.Algorithm {
	case "RSA":
		signer, err = pool.RSA(spec.Key.Bits, spec.KeyIndex)
	case "ECDSA":
		signer, err = pool.ECDSAP256(spec.KeyIndex)
	default:
		return nil, fmt.Errorf("certgen: unknown key algorithm %q", spec.Key.Algorithm)
	}
	if err != nil {
		return nil, err
	}

	subject := pkix.Name{CommonName: spec.Name}
	if spec.Org != "" {
		subject.Organization = []string{spec.Org}
	}
	if spec.Country != "" {
		subject.Country = []string{spec.Country}
	}
	tmpl := &Template{
		SerialNumber: serialFor(spec),
		Subject:      subject,
		NotBefore:    spec.NotBefore,
		NotAfter:     spec.NotAfter,
		IsCA:         true,
		MaxPathLen:   -1,
		KeyUsage:     x509.KeyUsageCertSign | x509.KeyUsageCRLSign,
	}
	der, err := SelfSign(tmpl, signer.Public(), signer, spec.Sig)
	if err != nil {
		return nil, fmt.Errorf("certgen: mint root %q: %w", spec.Name, err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certgen: parse minted root %q: %w", spec.Name, err)
	}
	return &Root{DER: der, Cert: cert, Key: signer, Spec: spec}, nil
}

// LeafSpec describes an end-entity certificate issued under a Root.
type LeafSpec struct {
	CommonName string
	DNSNames   []string
	NotBefore  time.Time
	NotAfter   time.Time
	Serial     *big.Int // optional; derived from CommonName when nil
}

// IssueLeaf mints a TLS server leaf certificate signed by the root. Leaves
// always use a modern algorithm (the root's key decides RSA vs ECDSA) so the
// standard verifier accepts the chain structure; trust outcomes are then
// decided purely by root-store contents, which is what the experiments vary.
func (r *Root) IssueLeaf(pool *KeyPool, spec LeafSpec) ([]byte, crypto.Signer, error) {
	key, err := pool.ECDSAP256(1)
	if err != nil {
		return nil, nil, err
	}
	serial := spec.Serial
	if serial == nil {
		sum := sha256.Sum256([]byte("leaf|" + spec.CommonName + "|" + r.Spec.Name))
		serial = new(big.Int).SetUint64(binary.BigEndian.Uint64(sum[:8]) >> 1)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: spec.CommonName},
		DNSNames:              spec.DNSNames,
		NotBefore:             spec.NotBefore,
		NotAfter:              spec.NotAfter,
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(drbgRand, tmpl, r.Cert, key.Public(), r.Key)
	if err != nil {
		return nil, nil, fmt.Errorf("certgen: issue leaf %q under %q: %w", spec.CommonName, r.Spec.Name, err)
	}
	return der, key, nil
}

// drbgRand feeds x509.CreateCertificate; determinism is unnecessary there
// because serials are caller-supplied, but reusing the DRBG avoids draining
// the system entropy pool in tight corpus-generation loops.
var drbgRand = newDRBG("certgen/leaf-rand")
