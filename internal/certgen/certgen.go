// Package certgen constructs genuine X.509 certificates for the synthetic
// root-store corpus.
//
// The standard library's x509.CreateCertificate refuses to produce
// certificates signed with MD5 or other retired algorithms, but the paper's
// hygiene analysis (Table 3) is specifically about root programs purging
// MD5-signed and 1024-bit-RSA roots — so the simulator must be able to mint
// them. This package therefore implements its own TBSCertificate assembly
// and PKCS#1 v1.5 signing for the legacy algorithms, and delegates to the
// standard library for modern ones. Everything it emits is real DER that
// x509.ParseCertificate accepts.
package certgen

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/md5"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"io"
	"math/big"
	"time"
)

// Algorithm selects the signature algorithm for a generated certificate.
type Algorithm int

// Supported signature algorithms, including the retired ones the hygiene
// analysis tracks.
const (
	MD5WithRSA Algorithm = iota
	SHA1WithRSA
	SHA256WithRSA
	ECDSAWithSHA256
)

// String returns the JCA-style algorithm name.
func (a Algorithm) String() string {
	switch a {
	case MD5WithRSA:
		return "MD5WithRSA"
	case SHA1WithRSA:
		return "SHA1WithRSA"
	case SHA256WithRSA:
		return "SHA256WithRSA"
	case ECDSAWithSHA256:
		return "ECDSAWithSHA256"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Signature algorithm OIDs (RFC 3279 / RFC 5758).
var (
	oidMD5WithRSA      = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 1, 4}
	oidSHA1WithRSA     = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 1, 5}
	oidSHA256WithRSA   = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 1, 11}
	oidECDSAWithSHA256 = asn1.ObjectIdentifier{1, 2, 840, 10045, 4, 3, 2}
	oidRSAEncryption   = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 1, 1}
	oidECPublicKey     = asn1.ObjectIdentifier{1, 2, 840, 10045, 2, 1}
	oidCurveP256       = asn1.ObjectIdentifier{1, 2, 840, 10045, 3, 1, 7}

	oidExtBasicConstraints = asn1.ObjectIdentifier{2, 5, 29, 19}
	oidExtKeyUsage         = asn1.ObjectIdentifier{2, 5, 29, 15}
	oidExtSubjectKeyID     = asn1.ObjectIdentifier{2, 5, 29, 14}
)

type algorithmIdentifier struct {
	Algorithm  asn1.ObjectIdentifier
	Parameters asn1.RawValue `asn1:"optional"`
}

type validity struct {
	NotBefore, NotAfter time.Time
}

type publicKeyInfo struct {
	Algorithm algorithmIdentifier
	PublicKey asn1.BitString
}

type tbsCertificate struct {
	Version            int `asn1:"optional,explicit,default:0,tag:0"`
	SerialNumber       *big.Int
	SignatureAlgorithm algorithmIdentifier
	Issuer             asn1.RawValue
	Validity           validity
	Subject            asn1.RawValue
	PublicKey          publicKeyInfo
	Extensions         []pkix.Extension `asn1:"omitempty,optional,explicit,tag:3"`
}

type certificateASN struct {
	TBSCertificate     asn1.RawValue
	SignatureAlgorithm algorithmIdentifier
	SignatureValue     asn1.BitString
}

type basicConstraints struct {
	IsCA       bool `asn1:"optional"`
	MaxPathLen int  `asn1:"optional,default:-1"`
}

var asn1Null = asn1.RawValue{Tag: asn1.TagNull}

func algID(alg Algorithm) (algorithmIdentifier, error) {
	switch alg {
	case MD5WithRSA:
		return algorithmIdentifier{Algorithm: oidMD5WithRSA, Parameters: asn1Null}, nil
	case SHA1WithRSA:
		return algorithmIdentifier{Algorithm: oidSHA1WithRSA, Parameters: asn1Null}, nil
	case SHA256WithRSA:
		return algorithmIdentifier{Algorithm: oidSHA256WithRSA, Parameters: asn1Null}, nil
	case ECDSAWithSHA256:
		// ECDSA signature algorithms omit the parameters field entirely.
		return algorithmIdentifier{Algorithm: oidECDSAWithSHA256}, nil
	default:
		return algorithmIdentifier{}, fmt.Errorf("certgen: unsupported algorithm %v", alg)
	}
}

func hashFor(alg Algorithm) (crypto.Hash, error) {
	switch alg {
	case MD5WithRSA:
		return crypto.MD5, nil
	case SHA1WithRSA:
		return crypto.SHA1, nil
	case SHA256WithRSA, ECDSAWithSHA256:
		return crypto.SHA256, nil
	default:
		return 0, fmt.Errorf("certgen: unsupported algorithm %v", alg)
	}
}

func digest(alg Algorithm, msg []byte) ([]byte, error) {
	switch alg {
	case MD5WithRSA:
		sum := md5.Sum(msg)
		return sum[:], nil
	case SHA1WithRSA:
		sum := sha1.Sum(msg)
		return sum[:], nil
	case SHA256WithRSA, ECDSAWithSHA256:
		sum := sha256.Sum256(msg)
		return sum[:], nil
	default:
		return nil, fmt.Errorf("certgen: unsupported algorithm %v", alg)
	}
}

func marshalPublicKey(pub crypto.PublicKey) (publicKeyInfo, error) {
	switch k := pub.(type) {
	case *rsa.PublicKey:
		der := x509.MarshalPKCS1PublicKey(k)
		return publicKeyInfo{
			Algorithm: algorithmIdentifier{Algorithm: oidRSAEncryption, Parameters: asn1Null},
			PublicKey: asn1.BitString{Bytes: der, BitLength: len(der) * 8},
		}, nil
	case *ecdsa.PublicKey:
		if k.Curve != elliptic.P256() {
			return publicKeyInfo{}, fmt.Errorf("certgen: only P-256 ECDSA keys supported, got %s", k.Curve.Params().Name)
		}
		curveDER, err := asn1.Marshal(oidCurveP256)
		if err != nil {
			return publicKeyInfo{}, err
		}
		point := elliptic.Marshal(k.Curve, k.X, k.Y)
		return publicKeyInfo{
			Algorithm: algorithmIdentifier{Algorithm: oidECPublicKey, Parameters: asn1.RawValue{FullBytes: curveDER}},
			PublicKey: asn1.BitString{Bytes: point, BitLength: len(point) * 8},
		}, nil
	default:
		return publicKeyInfo{}, fmt.Errorf("certgen: unsupported public key type %T", pub)
	}
}

// Template describes a certificate to mint.
type Template struct {
	SerialNumber *big.Int
	Subject      pkix.Name
	Issuer       pkix.Name // ignored when Parent is set
	NotBefore    time.Time
	NotAfter     time.Time
	IsCA         bool
	MaxPathLen   int // -1 for absent
	KeyUsage     x509.KeyUsage
}

func subjectKeyID(pki publicKeyInfo) []byte {
	sum := sha1.Sum(pki.PublicKey.Bytes)
	return sum[:]
}

func buildExtensions(tmpl *Template, pki publicKeyInfo) ([]pkix.Extension, error) {
	var exts []pkix.Extension

	bc := basicConstraints{IsCA: tmpl.IsCA, MaxPathLen: tmpl.MaxPathLen}
	bcDER, err := asn1.Marshal(bc)
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal basicConstraints: %w", err)
	}
	exts = append(exts, pkix.Extension{Id: oidExtBasicConstraints, Critical: true, Value: bcDER})

	if tmpl.KeyUsage != 0 {
		kuDER, err := marshalKeyUsage(tmpl.KeyUsage)
		if err != nil {
			return nil, err
		}
		exts = append(exts, pkix.Extension{Id: oidExtKeyUsage, Critical: true, Value: kuDER})
	}

	skiDER, err := asn1.Marshal(subjectKeyID(pki))
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal subjectKeyId: %w", err)
	}
	exts = append(exts, pkix.Extension{Id: oidExtSubjectKeyID, Value: skiDER})
	return exts, nil
}

func marshalKeyUsage(ku x509.KeyUsage) ([]byte, error) {
	// KeyUsage is a BIT STRING with bit 0 = digitalSignature ... bit 8 =
	// decipherOnly; x509.KeyUsage uses the same bit numbering as flags.
	var bits [2]byte
	width := 0
	for i := 0; i < 9; i++ {
		if ku&(1<<uint(i)) != 0 {
			bits[i/8] |= 1 << uint(7-i%8)
			width = i + 1
		}
	}
	nbytes := (width + 7) / 8
	return asn1.Marshal(asn1.BitString{Bytes: bits[:nbytes], BitLength: width})
}

// SelfSign mints a self-signed certificate over pub with the given signing
// key and algorithm. The signer must correspond to pub for a root
// certificate, but the function does not enforce that so that cross-signed
// constructions are possible via Sign.
func SelfSign(tmpl *Template, pub crypto.PublicKey, signer crypto.Signer, alg Algorithm) ([]byte, error) {
	return sign(tmpl, tmpl.Subject, pub, signer, alg)
}

// Sign mints a certificate over pub issued by the given parent subject.
func Sign(tmpl *Template, issuer pkix.Name, pub crypto.PublicKey, signer crypto.Signer, alg Algorithm) ([]byte, error) {
	return sign(tmpl, issuer, pub, signer, alg)
}

func sign(tmpl *Template, issuer pkix.Name, pub crypto.PublicKey, signer crypto.Signer, alg Algorithm) ([]byte, error) {
	if tmpl.SerialNumber == nil {
		return nil, fmt.Errorf("certgen: template missing serial number")
	}
	if tmpl.NotAfter.Before(tmpl.NotBefore) {
		return nil, fmt.Errorf("certgen: NotAfter %v precedes NotBefore %v", tmpl.NotAfter, tmpl.NotBefore)
	}
	sigAlg, err := algID(alg)
	if err != nil {
		return nil, err
	}
	pki, err := marshalPublicKey(pub)
	if err != nil {
		return nil, err
	}
	subjDER, err := asn1.Marshal(tmpl.Subject.ToRDNSequence())
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal subject: %w", err)
	}
	issuerDER, err := asn1.Marshal(issuer.ToRDNSequence())
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal issuer: %w", err)
	}
	exts, err := buildExtensions(tmpl, pki)
	if err != nil {
		return nil, err
	}

	tbs := tbsCertificate{
		Version:            2, // X.509 v3
		SerialNumber:       tmpl.SerialNumber,
		SignatureAlgorithm: sigAlg,
		Issuer:             asn1.RawValue{FullBytes: issuerDER},
		Validity:           validity{NotBefore: tmpl.NotBefore.UTC(), NotAfter: tmpl.NotAfter.UTC()},
		Subject:            asn1.RawValue{FullBytes: subjDER},
		PublicKey:          pki,
		Extensions:         exts,
	}
	tbsDER, err := asn1.Marshal(tbs)
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal tbsCertificate: %w", err)
	}

	dig, err := digest(alg, tbsDER)
	if err != nil {
		return nil, err
	}
	var sig []byte
	switch key := signer.(type) {
	case *rsa.PrivateKey:
		if alg == ECDSAWithSHA256 {
			return nil, fmt.Errorf("certgen: RSA key cannot produce %v", alg)
		}
		h, _ := hashFor(alg)
		sig, err = rsa.SignPKCS1v15(rand.Reader, key, h, dig)
	case *ecdsa.PrivateKey:
		if alg != ECDSAWithSHA256 {
			return nil, fmt.Errorf("certgen: ECDSA key cannot produce %v", alg)
		}
		sig, err = deterministicECDSASign(key, dig)
	default:
		return nil, fmt.Errorf("certgen: unsupported signer type %T", signer)
	}
	if err != nil {
		return nil, fmt.Errorf("certgen: signing: %w", err)
	}

	certDER, err := asn1.Marshal(certificateASN{
		TBSCertificate:     asn1.RawValue{FullBytes: tbsDER},
		SignatureAlgorithm: sigAlg,
		SignatureValue:     asn1.BitString{Bytes: sig, BitLength: len(sig) * 8},
	})
	if err != nil {
		return nil, fmt.Errorf("certgen: marshal certificate: %w", err)
	}
	return certDER, nil
}

// deterministicECDSASign produces an ECDSA signature whose nonce is
// derived from the private key and digest (the RFC 6979 idea, realized
// with the package DRBG) instead of ecdsa.SignASN1's random nonce. Two
// processes minting the same certificate therefore emit identical DER —
// the same reproducibility contract deterministicRSA keeps for key
// generation, and the property the on-disk corpora (rootpack hashes,
// manifest bundles) rely on. RSA signing is naturally deterministic
// (PKCS#1 v1.5); this closes the gap for the ECDSA-signed roots.
func deterministicECDSASign(key *ecdsa.PrivateKey, dig []byte) ([]byte, error) {
	curve := key.Curve
	N := curve.Params().N
	e := hashToInt(dig, N)
	nonce := newDRBG("certgen/ecdsa-nonce/" + string(key.D.Bytes()) + "/" + string(dig))
	buf := make([]byte, (N.BitLen()+7)/8)
	one := big.NewInt(1)
	for {
		if _, err := io.ReadFull(nonce, buf); err != nil {
			return nil, fmt.Errorf("certgen: nonce: %w", err)
		}
		k := new(big.Int).SetBytes(buf)
		k.Mod(k, new(big.Int).Sub(N, one)).Add(k, one) // k in [1, N-1]
		x, _ := curve.ScalarBaseMult(k.Bytes())
		r := new(big.Int).Mod(x, N)
		if r.Sign() == 0 {
			continue
		}
		kInv := new(big.Int).ModInverse(k, N)
		s := new(big.Int).Mul(r, key.D)
		s.Add(s, e)
		s.Mul(s, kInv)
		s.Mod(s, N)
		if s.Sign() == 0 {
			continue
		}
		sig, err := asn1.Marshal(struct{ R, S *big.Int }{r, s})
		if err != nil {
			return nil, fmt.Errorf("certgen: marshal signature: %w", err)
		}
		return sig, nil
	}
}

// hashToInt converts a digest to an integer per SEC 1 §4.1.3: take the
// leftmost order-bit-length bits.
func hashToInt(dig []byte, n *big.Int) *big.Int {
	orderBits := n.BitLen()
	orderBytes := (orderBits + 7) / 8
	if len(dig) > orderBytes {
		dig = dig[:orderBytes]
	}
	e := new(big.Int).SetBytes(dig)
	if excess := len(dig)*8 - orderBits; excess > 0 {
		e.Rsh(e, uint(excess))
	}
	return e
}
