package certgen

import (
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"testing"
	"time"

	"repro/internal/certutil"
)

var testPool = NewKeyPool("certgen-test")

func testSpec(name string, key KeySpec, sig Algorithm) RootSpec {
	return RootSpec{
		Name:      name,
		Org:       "Test Org",
		Country:   "US",
		Key:       key,
		Sig:       sig,
		NotBefore: time.Date(2005, 6, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:  time.Date(2030, 6, 1, 0, 0, 0, 0, time.UTC),
	}
}

func TestNewRootModern(t *testing.T) {
	root, err := NewRoot(testPool, testSpec("Modern Root", RSA2048, SHA256WithRSA))
	if err != nil {
		t.Fatalf("NewRoot: %v", err)
	}
	if !root.Cert.IsCA {
		t.Error("root must be a CA")
	}
	if root.Cert.Subject.CommonName != "Modern Root" {
		t.Errorf("CN = %q", root.Cert.Subject.CommonName)
	}
	if root.Cert.SignatureAlgorithm != x509.SHA256WithRSA {
		t.Errorf("signature algorithm = %v", root.Cert.SignatureAlgorithm)
	}
	// The self-signature must actually verify.
	if err := root.Cert.CheckSignatureFrom(root.Cert); err != nil {
		t.Errorf("self-signature does not verify: %v", err)
	}
	if kc := certutil.ClassifyKey(root.Cert); kc.String() != "RSA-2048" {
		t.Errorf("key class = %v", kc)
	}
}

func TestNewRootMD5(t *testing.T) {
	root, err := NewRoot(testPool, testSpec("Legacy MD5 Root", RSA1024, MD5WithRSA))
	if err != nil {
		t.Fatalf("NewRoot MD5: %v", err)
	}
	if root.Cert.SignatureAlgorithm != x509.MD5WithRSA {
		t.Errorf("signature algorithm = %v, want MD5WithRSA", root.Cert.SignatureAlgorithm)
	}
	if kc := certutil.ClassifyKey(root.Cert); !kc.WeakRSA() {
		t.Errorf("expected weak RSA key, got %v", kc)
	}
	if d := certutil.ClassifySignature(root.Cert.SignatureAlgorithm); !d.Weak() {
		t.Errorf("expected weak digest, got %v", d)
	}
}

func TestNewRootSHA1(t *testing.T) {
	root, err := NewRoot(testPool, testSpec("Legacy SHA1 Root", RSA2048, SHA1WithRSA))
	if err != nil {
		t.Fatalf("NewRoot SHA1: %v", err)
	}
	if root.Cert.SignatureAlgorithm != x509.SHA1WithRSA {
		t.Errorf("signature algorithm = %v, want SHA1WithRSA", root.Cert.SignatureAlgorithm)
	}
}

func TestNewRootECDSA(t *testing.T) {
	root, err := NewRoot(testPool, testSpec("EC Root", ECDSA256, ECDSAWithSHA256))
	if err != nil {
		t.Fatalf("NewRoot ECDSA: %v", err)
	}
	if root.Cert.SignatureAlgorithm != x509.ECDSAWithSHA256 {
		t.Errorf("signature algorithm = %v", root.Cert.SignatureAlgorithm)
	}
	if err := root.Cert.CheckSignatureFrom(root.Cert); err != nil {
		t.Errorf("ECDSA self-signature does not verify: %v", err)
	}
}

func TestRootDeterminism(t *testing.T) {
	spec := testSpec("Stable Root", RSA2048, SHA256WithRSA)
	a, err := NewRoot(testPool, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRoot(testPool, spec)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.DER) != string(b.DER) {
		t.Error("identical RSA specs should mint byte-identical certificates")
	}
	if a.Cert.SerialNumber.Sign() <= 0 {
		t.Error("serial must be positive")
	}
}

func TestDistinctSpecsDistinctSerials(t *testing.T) {
	a, _ := NewRoot(testPool, testSpec("Root A", RSA2048, SHA256WithRSA))
	b, _ := NewRoot(testPool, testSpec("Root B", RSA2048, SHA256WithRSA))
	if a.Cert.SerialNumber.Cmp(b.Cert.SerialNumber) == 0 {
		t.Error("different specs should get different serials")
	}
	if certutil.SHA256Fingerprint(a.DER) == certutil.SHA256Fingerprint(b.DER) {
		t.Error("different specs should get different fingerprints")
	}
}

func TestIssueLeafAndVerifyChain(t *testing.T) {
	root, err := NewRoot(testPool, testSpec("Issuing Root", RSA2048, SHA256WithRSA))
	if err != nil {
		t.Fatal(err)
	}
	leafDER, _, err := root.IssueLeaf(testPool, LeafSpec{
		CommonName: "www.example.test",
		DNSNames:   []string{"www.example.test"},
		NotBefore:  time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatalf("IssueLeaf: %v", err)
	}
	leaf, err := x509.ParseCertificate(leafDER)
	if err != nil {
		t.Fatalf("parse leaf: %v", err)
	}
	pool := x509.NewCertPool()
	pool.AddCert(root.Cert)
	_, err = leaf.Verify(x509.VerifyOptions{
		Roots:       pool,
		DNSName:     "www.example.test",
		CurrentTime: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatalf("chain verification failed: %v", err)
	}
}

func TestLeafUnderMD5RootStillVerifies(t *testing.T) {
	// The paper's point: a legacy root in a store endangers users because
	// chains under it still validate — the root's own signature is never
	// checked. Confirm our substrate reproduces that behaviour.
	root, err := NewRoot(testPool, testSpec("MD5 Issuing Root", RSA1024, MD5WithRSA))
	if err != nil {
		t.Fatal(err)
	}
	leafDER, _, err := root.IssueLeaf(testPool, LeafSpec{
		CommonName: "legacy.example.test",
		DNSNames:   []string{"legacy.example.test"},
		NotBefore:  time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	leaf, _ := x509.ParseCertificate(leafDER)
	pool := x509.NewCertPool()
	pool.AddCert(root.Cert)
	if _, err := leaf.Verify(x509.VerifyOptions{
		Roots:       pool,
		DNSName:     "legacy.example.test",
		CurrentTime: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
	}); err != nil {
		t.Fatalf("leaf under MD5 root should verify (root self-sig is not checked): %v", err)
	}
}

func TestTemplateValidation(t *testing.T) {
	key, err := testPool.RSA(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Missing serial.
	_, err = SelfSign(&Template{
		Subject:   pkix.Name{CommonName: "x"},
		NotBefore: time.Now(),
		NotAfter:  time.Now().Add(time.Hour),
	}, key.Public(), key, SHA256WithRSA)
	if err == nil {
		t.Error("missing serial should error")
	}
	// Inverted validity.
	_, err = SelfSign(&Template{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "x"},
		NotBefore:    time.Now(),
		NotAfter:     time.Now().Add(-time.Hour),
	}, key.Public(), key, SHA256WithRSA)
	if err == nil {
		t.Error("inverted validity should error")
	}
}

func TestAlgorithmKeyMismatch(t *testing.T) {
	rsaKey, _ := testPool.RSA(1024, 0)
	ecKey, _ := testPool.ECDSAP256(0)
	tmpl := &Template{
		SerialNumber: big.NewInt(7),
		Subject:      pkix.Name{CommonName: "mismatch"},
		NotBefore:    time.Now(),
		NotAfter:     time.Now().Add(time.Hour),
	}
	if _, err := SelfSign(tmpl, rsaKey.Public(), rsaKey, ECDSAWithSHA256); err == nil {
		t.Error("RSA key with ECDSA algorithm should error")
	}
	if _, err := SelfSign(tmpl, ecKey.Public(), ecKey, SHA256WithRSA); err == nil {
		t.Error("ECDSA key with RSA algorithm should error")
	}
}

func TestKeyPoolReuse(t *testing.T) {
	p := NewKeyPool("reuse-test")
	a, err := p.RSA(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RSA(1024, 4) // wraps around perClass=4
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("index 0 and 4 should alias in a pool of 4")
	}
	c, _ := p.RSA(1024, 1)
	if a == c {
		t.Error("index 0 and 1 should be distinct keys")
	}
	if n, _ := p.RSA(1024, -3); n == nil {
		t.Error("negative index must be tolerated")
	}
}

func TestKeyPoolDeterminism(t *testing.T) {
	p1 := NewKeyPool("same-seed")
	p2 := NewKeyPool("same-seed")
	k1, _ := p1.RSA(1024, 0)
	k2, _ := p2.RSA(1024, 0)
	if k1.N.Cmp(k2.N) != 0 {
		t.Error("same seed should produce identical keys")
	}
	p3 := NewKeyPool("other-seed")
	k3, _ := p3.RSA(1024, 0)
	if k1.N.Cmp(k3.N) == 0 {
		t.Error("different seeds should produce different keys")
	}
}

func TestDRBGStreamStable(t *testing.T) {
	a := newDRBG("x")
	b := newDRBG("x")
	bufA := make([]byte, 100)
	bufB := make([]byte, 100)
	if _, err := a.Read(bufA); err != nil {
		t.Fatal(err)
	}
	// Read in odd-sized chunks to exercise buffering.
	for i := 0; i < 100; i += 7 {
		end := i + 7
		if end > 100 {
			end = 100
		}
		if _, err := b.Read(bufB[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if string(bufA) != string(bufB) {
		t.Error("DRBG output must not depend on read chunking")
	}
}

func TestKeyUsageEncoding(t *testing.T) {
	root, err := NewRoot(testPool, testSpec("KU Root", RSA2048, SHA256WithRSA))
	if err != nil {
		t.Fatal(err)
	}
	if root.Cert.KeyUsage&x509.KeyUsageCertSign == 0 {
		t.Error("certSign key usage missing")
	}
	if root.Cert.KeyUsage&x509.KeyUsageCRLSign == 0 {
		t.Error("cRLSign key usage missing")
	}
	if root.Cert.KeyUsage&x509.KeyUsageDigitalSignature != 0 {
		t.Error("digitalSignature should not be set")
	}
}
