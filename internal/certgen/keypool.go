package certgen

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// drbg is a deterministic byte stream (SHA-256 in counter mode) used to make
// key generation reproducible for a given corpus seed. It is NOT a
// cryptographically vetted DRBG and must only be used for synthetic-corpus
// material.
type drbg struct {
	seed    [32]byte
	counter uint64
	buf     []byte
}

func newDRBG(seed string) *drbg {
	return &drbg{seed: sha256.Sum256([]byte(seed))}
}

func (d *drbg) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(d.buf) == 0 {
			var block [40]byte
			copy(block[:32], d.seed[:])
			binary.BigEndian.PutUint64(block[32:], d.counter)
			d.counter++
			sum := sha256.Sum256(block[:])
			d.buf = sum[:]
		}
		c := copy(p[n:], d.buf)
		d.buf = d.buf[c:]
		n += c
	}
	return n, nil
}

var _ io.Reader = (*drbg)(nil)

// KeyPool hands out reusable private keys by class. Generating thousands of
// distinct RSA keys for a synthetic corpus would dominate runtime without
// changing any measured property (the analyses care about key class, not key
// identity), so the pool cycles through a small number of keys per class.
type KeyPool struct {
	mu   sync.Mutex
	seed string
	rsa  map[int][]*rsa.PrivateKey
	ec   []*ecdsa.PrivateKey
	// PerClass is the number of distinct keys per class (default 4).
	perClass int
}

// NewKeyPool creates a pool whose keys are a deterministic function of seed.
func NewKeyPool(seed string) *KeyPool {
	return &KeyPool{seed: seed, rsa: make(map[int][]*rsa.PrivateKey), perClass: 4}
}

// RSA returns the i-th (mod pool size) RSA key with the given modulus size.
func (p *KeyPool) RSA(bits, i int) (*rsa.PrivateKey, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	keys := p.rsa[bits]
	if len(keys) == 0 {
		keys = make([]*rsa.PrivateKey, 0, p.perClass)
		r := newDRBG(fmt.Sprintf("%s/rsa/%d", p.seed, bits))
		for k := 0; k < p.perClass; k++ {
			key, err := deterministicRSA(r, bits)
			if err != nil {
				return nil, fmt.Errorf("certgen: generate RSA-%d: %w", bits, err)
			}
			keys = append(keys, key)
		}
		p.rsa[bits] = keys
	}
	return keys[((i%len(keys))+len(keys))%len(keys)], nil
}

// deterministicPrime draws a random odd candidate of exactly `bits` bits
// from the reader and searches upward for a probable prime. Unlike
// crypto/rand.Prime — which deliberately injects nondeterminism via
// randutil.MaybeReadByte — this is a pure function of the reader stream,
// which is what corpus reproducibility needs. ProbablyPrime(20) plus the
// Baillie-PSW test it performs is deterministic for a given candidate.
func deterministicPrime(r io.Reader, bits int) (*big.Int, error) {
	if bits%8 != 0 || bits < 64 {
		return nil, fmt.Errorf("certgen: prime bits must be a positive multiple of 8, got %d", bits)
	}
	buf := make([]byte, bits/8)
	two := big.NewInt(2)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		buf[0] |= 0xC0       // exact bit length, product reaches 2*bits
		buf[len(buf)-1] |= 1 // odd
		p := new(big.Int).SetBytes(buf)
		for i := 0; i < 4096; i++ {
			if p.BitLen() != bits {
				break // ran off the top; redraw
			}
			if p.ProbablyPrime(20) {
				return p, nil
			}
			p.Add(p, two)
		}
	}
}

// deterministicRSA builds an RSA key from primes drawn off the DRBG.
// rsa.GenerateKey deliberately injects nondeterminism (randutil.MaybeReadByte)
// even with a caller-supplied reader, which would break corpus
// reproducibility, so the pool assembles keys itself.
func deterministicRSA(r io.Reader, bits int) (*rsa.PrivateKey, error) {
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for {
		p, err := deterministicPrime(r, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := deterministicPrime(r, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int)
		if d.ModInverse(e, phi) == nil {
			continue // e not invertible mod phi; redraw primes
		}
		key := &rsa.PrivateKey{
			PublicKey: rsa.PublicKey{N: n, E: int(e.Int64())},
			D:         d,
			Primes:    []*big.Int{p, q},
		}
		key.Precompute()
		if err := key.Validate(); err != nil {
			continue
		}
		return key, nil
	}
}

// deterministicECDSA derives a P-256 key directly from reader bytes
// (ecdsa.GenerateKey is intentionally nondeterministic, like
// rsa.GenerateKey).
func deterministicECDSA(r io.Reader) (*ecdsa.PrivateKey, error) {
	curve := elliptic.P256()
	buf := make([]byte, 32)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	nMinus1 := new(big.Int).Sub(curve.Params().N, big.NewInt(1))
	d := new(big.Int).SetBytes(buf)
	d.Mod(d, nMinus1).Add(d, big.NewInt(1)) // d in [1, N-1]
	key := &ecdsa.PrivateKey{D: d}
	key.Curve = curve
	key.X, key.Y = curve.ScalarBaseMult(d.Bytes())
	return key, nil
}

// ECDSAP256 returns the i-th (mod pool size) P-256 key.
func (p *KeyPool) ECDSAP256(i int) (*ecdsa.PrivateKey, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.ec) == 0 {
		r := newDRBG(p.seed + "/ecdsa/p256")
		for k := 0; k < p.perClass; k++ {
			key, err := deterministicECDSA(r)
			if err != nil {
				return nil, fmt.Errorf("certgen: generate P-256: %w", err)
			}
			p.ec = append(p.ec, key)
		}
	}
	return p.ec[((i%len(p.ec))+len(p.ec))%len(p.ec)], nil
}
