package certgen

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"math/big"
	"time"
)

// CrossSign mints a cross-certificate: a CA certificate over the subject
// root's name and public key, signed by the issuer root. Clients that
// trust only the issuer can then build chains to leaves issued under the
// subject — the mechanism behind the paper's cross-signing observations
// (Certinomis re-validating distrusted StartCom, Microsoft roots reachable
// via Baltimore CyberTrust).
func CrossSign(subject, issuer *Root, notBefore, notAfter time.Time) ([]byte, error) {
	if subject == nil || issuer == nil {
		return nil, fmt.Errorf("certgen: cross-sign needs both roots")
	}
	sum := sha256.Sum256([]byte("xsign|" + subject.Spec.Name + "|" + issuer.Spec.Name))
	serial := new(big.Int).SetUint64(binary.BigEndian.Uint64(sum[:8]) >> 1)
	tmpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               subject.Cert.Subject,
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign,
	}
	der, err := x509.CreateCertificate(drbgRand, tmpl, issuer.Cert, subject.Cert.PublicKey, issuer.Key)
	if err != nil {
		return nil, fmt.Errorf("certgen: cross-sign %q under %q: %w", subject.Spec.Name, issuer.Spec.Name, err)
	}
	return der, nil
}
