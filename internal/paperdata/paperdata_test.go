package paperdata

import (
	"testing"
	"time"
)

func TestProvidersMatchHeadline(t *testing.T) {
	provs := Providers()
	if len(provs) != 10 {
		t.Errorf("providers = %d, want 10", len(provs))
	}
	total := 0
	for _, p := range provs {
		total += p.Snapshots
		if p.From.After(p.To) {
			t.Errorf("%s: From after To", p.Name)
		}
		if p.Snapshots <= 0 || p.Unique <= 0 {
			t.Errorf("%s: non-positive counts", p.Name)
		}
	}
	if total != TotalSnapshots {
		t.Errorf("snapshot total = %d, want %d", total, TotalSnapshots)
	}
}

func TestProviderLineage(t *testing.T) {
	derivSet := map[string]bool{}
	for _, d := range Derivatives {
		derivSet[d] = true
	}
	for _, p := range Providers() {
		if derivSet[p.Name] && p.DerivesFrom != NSS {
			t.Errorf("%s should derive from NSS, got %q", p.Name, p.DerivesFrom)
		}
		if !derivSet[p.Name] && p.DerivesFrom != "" {
			t.Errorf("independent program %s has DerivesFrom %q", p.Name, p.DerivesFrom)
		}
	}
	if len(IndependentPrograms) != 4 {
		t.Errorf("independent programs = %d, want 4", len(IndependentPrograms))
	}
}

func TestNSSHasLongestHistory(t *testing.T) {
	var nss ProviderInfo
	for _, p := range Providers() {
		if p.Name == NSS {
			nss = p
		}
	}
	for _, p := range Providers() {
		if p.Name == NSS {
			continue
		}
		if p.From.Before(nss.From) {
			t.Errorf("%s history starts before NSS", p.Name)
		}
		if p.Snapshots > nss.Snapshots {
			t.Errorf("%s has more snapshots than NSS", p.Name)
		}
	}
}

func TestHygieneOrdering(t *testing.T) {
	rows := Hygiene()
	if len(rows) != 4 {
		t.Fatalf("hygiene rows = %d, want 4", len(rows))
	}
	byProg := map[string]HygieneRow{}
	for _, r := range rows {
		byProg[r.Program] = r
	}
	// Headline findings: Microsoft manages the largest store and the most
	// expired roots; NSS has the fewest expired; Apple and NSS purged
	// MD5/1024-bit first.
	if byProg[Microsoft].AvgSize <= byProg[Apple].AvgSize {
		t.Error("Microsoft store should be largest")
	}
	if byProg[Microsoft].AvgExpired <= byProg[Apple].AvgExpired {
		t.Error("Microsoft should average most expired roots")
	}
	if byProg[NSS].AvgExpired > byProg[Java].AvgExpired {
		t.Error("NSS should have fewest expired roots")
	}
	if !byProg[NSS].MD5Removal.Before(byProg[Microsoft].MD5Removal) {
		t.Error("NSS purged MD5 before Microsoft")
	}
	if !byProg[Apple].RSA1024Removal.Before(byProg[Java].RSA1024Removal) {
		t.Error("Apple purged 1024-bit RSA before Java")
	}
}

func TestIncidentsConsistency(t *testing.T) {
	incidents := Incidents()
	if len(incidents) != 6 {
		t.Fatalf("incidents = %d, want 6", len(incidents))
	}
	for _, inc := range incidents {
		if inc.NSSRemoval.IsZero() || inc.NSSCerts <= 0 || inc.BugzillaID == 0 {
			t.Errorf("%s: incomplete incident record", inc.Name)
		}
		for _, r := range inc.Responses {
			if r.StillTrusted {
				if !r.TrustedUntil.IsZero() && inc.Name != "Certinomis" {
					t.Errorf("%s/%s: still-trusted with TrustedUntil set", inc.Name, r.Store)
				}
				continue
			}
			// Lag must equal TrustedUntil - NSSRemoval in days, except on
			// footnoted rows where the paper itself prints an approximate
			// date alongside an exact lag (Certinomis/Apple).
			wantLag := int(r.TrustedUntil.Sub(inc.NSSRemoval).Hours() / 24)
			if wantLag != r.LagDays && r.Note == "" {
				t.Errorf("%s/%s: lag %d does not match dates (%d)", inc.Name, r.Store, r.LagDays, wantLag)
			}
		}
	}
}

func TestIncidentHeadlines(t *testing.T) {
	byName := map[string]Incident{}
	for _, inc := range Incidents() {
		byName[inc.Name] = inc
	}
	// Microsoft acted before NSS on DigiNotar but was last on CNNIC.
	var msDigiNotar, msCNNIC *StoreResponse
	for i, r := range byName["DigiNotar"].Responses {
		if r.Store == Microsoft {
			msDigiNotar = &byName["DigiNotar"].Responses[i]
		}
	}
	for i, r := range byName["CNNIC"].Responses {
		if r.Store == Microsoft {
			msCNNIC = &byName["CNNIC"].Responses[i]
		}
	}
	if msDigiNotar == nil || msDigiNotar.LagDays >= 0 {
		t.Error("Microsoft should lead on DigiNotar (negative lag)")
	}
	if msCNNIC == nil || msCNNIC.LagDays < 900 {
		t.Error("Microsoft should trail by ~944 days on CNNIC")
	}
	// Apple still trusts a StartCom root.
	foundApple := false
	for _, r := range byName["StartCom"].Responses {
		if r.Store == Apple && r.StillTrusted {
			foundApple = true
		}
	}
	if !foundApple {
		t.Error("Apple should still trust a StartCom root")
	}
}

func TestNSSRemovalsTable(t *testing.T) {
	rows := NSSRemovals()
	high, medium := 0, 0
	for _, r := range rows {
		switch r.Severity {
		case SeverityHigh:
			high++
		case SeverityMedium:
			medium++
		}
		if r.RemovedOn.Before(time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)) {
			t.Errorf("bug %d: removal before 2010", r.BugzillaID)
		}
	}
	if high != 6 {
		t.Errorf("high severity removals = %d, want 6", high)
	}
	if medium != 3 {
		t.Errorf("medium severity removals = %d, want 3", medium)
	}
}

func TestSeverityString(t *testing.T) {
	if SeverityHigh.String() != "high" || SeverityLow.String() != "low" || SeverityMedium.String() != "medium" {
		t.Error("severity names wrong")
	}
	if Severity(9).String() != "unknown" {
		t.Error("out-of-range severity should be unknown")
	}
}

func TestExclusiveCounts(t *testing.T) {
	counts := ExclusiveCounts()
	want := map[string]int{NSS: 1, Java: 0, Apple: 13, Microsoft: 30}
	for prog, n := range want {
		if counts[prog] != n {
			t.Errorf("exclusive roots for %s = %d, want %d", prog, counts[prog], n)
		}
	}
}

func TestExclusiveRootsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range ExclusiveRoots() {
		if r.ShortHash == "" || r.CA == "" || r.Category == "" {
			t.Errorf("incomplete exclusive root %+v", r)
		}
		key := r.Program + "/" + r.ShortHash
		if seen[key] {
			t.Errorf("duplicate exclusive root %s", key)
		}
		seen[key] = true
	}
}

func TestSurveyCounts(t *testing.T) {
	counts := SurveyCounts()
	// Only three libraries ship their own store: NSS, JSSE, NodeJS.
	lib := counts[KindLibrary]
	if lib.WithStore != 3 {
		t.Errorf("libraries with store = %d, want 3", lib.WithStore)
	}
	if lib.Total < 19 {
		t.Errorf("library survey rows = %d, want >= 19", lib.Total)
	}
	os := counts[KindOS]
	if os.WithStore != os.Total {
		t.Error("every surveyed OS provides a store")
	}
}

func TestStalenessTargetsOrdering(t *testing.T) {
	targets := StalenessTargets()
	byName := map[string]float64{}
	for _, s := range targets {
		byName[s.Derivative] = s.AvgVersionsStale
	}
	if !(byName[Alpine] < byName[Debian] && byName[Debian] < byName[NodeJS] &&
		byName[NodeJS] < byName[Android] && byName[Android] < byName[AmazonLinux]) {
		t.Errorf("staleness ordering wrong: %v", byName)
	}
}

func TestFamilyShares(t *testing.T) {
	shares := FamilyShares()
	byFam := map[string]float64{}
	for _, s := range shares {
		byFam[s.Family] = s.Percent
	}
	if !(byFam["Mozilla"] > byFam["Apple"] && byFam["Apple"] > byFam["Microsoft"]) {
		t.Errorf("family share ordering wrong: %v", byFam)
	}
	if byFam["Java"] != 0 {
		t.Error("Java should have no top-200 share")
	}
}
