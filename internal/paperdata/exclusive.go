package paperdata

// NSSStatus describes a root's relationship with the NSS inclusion process
// (Table 6 column "NSS inclusion?").
type NSSStatus string

// NSS inclusion outcomes.
const (
	NSSAccepted  NSSStatus = "accepted"
	NSSDenied    NSSStatus = "denied"
	NSSAbandoned NSSStatus = "abandoned"
	NSSRetracted NSSStatus = "retracted"
	NSSPending   NSSStatus = "pending"
	NSSApproved  NSSStatus = "approved" // approved, awaiting addition
	NSSNone      NSSStatus = "none"     // never attempted
)

// ExclusiveRoot is a row of Table 6 / Appendix B: a root trusted for TLS
// server auth by exactly one of the four independent programs.
type ExclusiveRoot struct {
	Program   string
	ShortHash string // leading hex of the SHA-256 as printed in the paper
	CA        string
	Status    NSSStatus
	Details   string
	// Category buckets the paper's qualitative grouping for Apple and
	// Microsoft exclusives.
	Category string
}

// Categories for exclusive roots.
const (
	CatNewRoot       = "new-root"        // new cert for an already-trusted CA
	CatEmailElswhere = "email-elsewhere" // other programs trust it for email only
	CatProprietary   = "apple-services"  // Apple FairPlay / Developer ID etc.
	CatDistrusted    = "distrusted-peer" // actively distrusted by another program
	CatGovernment    = "government"      // national government CA
	CatFailedNSS     = "failed-nss"      // denied/abandoned/retracted at NSS
	CatPendingNSS    = "pending-nss"     // inclusion request in flight
	CatLowPresence   = "low-ct-presence" // <100-200 leaves in CT
	CatCrossSigned   = "cross-signed"    // trusted elsewhere via cross-sign
	CatSpecialUse    = "special-use"     // WiFi Alliance, kernel-mode, etc.
)

// ExclusiveRoots returns Table 6: per-program exclusive TLS roots. NSS has
// one (a new Microsec ECC root), Java zero, Apple thirteen, Microsoft
// thirty.
func ExclusiveRoots() []ExclusiveRoot {
	return []ExclusiveRoot{
		// NSS (1)
		{NSS, "beb00b30", "Microsec", NSSAccepted, "new elliptic-curve root alongside an already-trusted Microsec root", CatNewRoot},

		// Apple (13)
		{Apple, "0ed3ffab", "Gov. of Venezuela", NSSDenied, "super-CA concerns; Microsoft trusted same issuer for email until 2020", CatGovernment},
		{Apple, "9f974446", "Certipost", NSSNone, "CA requested cross-sign revocation: ceased TLS issuance", CatDistrusted},
		{Apple, "e3268f61", "ANF", NSSNone, "Microsoft trusts same issuer for email, distrust after 2019-02-01", CatEmailElswhere},
		{Apple, "6639d13c", "Echoworx", NSSNone, "Microsoft trusted for email", CatEmailElswhere},
		{Apple, "92d8092e", "Nets.eu", NSSNone, "Microsoft trusted for email", CatEmailElswhere},
		{Apple, "9d190b2e", "DigiCert", NSSAccepted, "trusted by Microsoft and NSS for email", CatEmailElswhere},
		{Apple, "cb627d18", "DigiCert", NSSAccepted, "trusted by Microsoft and NSS for email", CatEmailElswhere},
		{Apple, "a1a86d04", "D-TRUST", NSSAccepted, "Microsoft/NSS trusted for email", CatEmailElswhere},
		{Apple, "apple-01", "Apple", NSSNone, "FairPlay service root", CatProprietary},
		{Apple, "apple-02", "Apple", NSSNone, "Developer ID code signing root", CatProprietary},
		{Apple, "apple-03", "Apple", NSSNone, "Apple services root", CatProprietary},
		{Apple, "apple-04", "Apple", NSSNone, "Apple services root", CatProprietary},
		{Apple, "apple-05", "Apple", NSSNone, "Apple services root", CatProprietary},

		// Microsoft (30)
		{Microsoft, "1501f89c", "EDICOM", NSSDenied, "inadequate audits, issuance concerns, CA unresponsiveness", CatFailedNSS},
		{Microsoft, "416b1f9e", "e-monitoring.at", NSSDenied, "BR and RFC 5280 violations", CatFailedNSS},
		{Microsoft, "6e0bff06", "Gov. of Brazil", NSSDenied, "super-CA concerns, insufficient auditing/disclosure", CatGovernment},
		{Microsoft, "c795ff8f", "Gov. of Tunisia", NSSDenied, "repeated misissuance exposed during public discussion", CatGovernment},
		{Microsoft, "407c276b", "Gov. of Korea", NSSDenied, "confidential, unrestrained subCAs", CatGovernment},
		{Microsoft, "c1d80ce4", "AC Camerfirma", NSSDenied, "numerous issues; all Camerfirma roots removed from NSS May 2021", CatFailedNSS},
		{Microsoft, "ad016f95", "PostSignum", NSSAbandoned, "new root inclusion attempt running into issues", CatFailedNSS},
		{Microsoft, "7a77c6c6", "OATI", NSSAbandoned, "no response in 3 years", CatFailedNSS},
		{Microsoft, "604d32d0", "MULTICERT", NSSAbandoned, "external subCA concerns and misissuance", CatFailedNSS},
		{Microsoft, "e2809772", "Digidentity", NSSRetracted, "inclusion request retracted", CatFailedNSS},
		{Microsoft, "2e44102a", "Gov. of Tunisia", NSSPending, "community concerns about added value", CatPendingNSS},
		{Microsoft, "e74fbda5", "SECOM", NSSPending, "pending since 2016, ongoing issue resolution", CatPendingNSS},
		{Microsoft, "24a55c2a", "SECOM", NSSPending, "pending since 2016, ongoing issue resolution", CatPendingNSS},
		{Microsoft, "f015ce3c", "Chunghwa Telecom", NSSPending, "HiPKI Root CA - G1", CatPendingNSS},
		{Microsoft, "5ab4fcdb", "Fina", NSSPending, "Fina Root CA", CatPendingNSS},
		{Microsoft, "242b6974", "Telia", NSSPending, "<100 leaf certificates in CT", CatPendingNSS},
		{Microsoft, "eb7e05aa", "NETLOCK Kft.", NSSNone, "cross-signed by MS Code Verification Root (kernel-mode only)", CatSpecialUse},
		{Microsoft, "5b1d9d24", "Gov. of Spain, MTIN", NSSNone, "expired Nov 2019, no intermediates in CT", CatGovernment},
		{Microsoft, "34ff2a44", "Gov. of Finland", NSSNone, "previously abandoned NSS inclusion for a different root", CatGovernment},
		{Microsoft, "229ccc19", "Cisco", NSSNone, "<100 leaves in CT; NSS rejected older device-local root", CatLowPresence},
		{Microsoft, "d7ba3f4f", "Halcom D.D.", NSSNone, "<100 leaf certificates in CT", CatLowPresence},
		{Microsoft, "7d2bf348", "Spain Commercial Reg.", NSSNone, "<100 leaf certificates in CT", CatLowPresence},
		{Microsoft, "c2157309", "NISZ", NSSNone, "<200 leaf certificates in CT", CatLowPresence},
		{Microsoft, "608142da", "TrustFactory", NSSNone, "<100 leaf certificates in CT", CatLowPresence},
		{Microsoft, "a3cc6859", "DigiCert", NSSNone, "WiFi Alliance Passpoint roaming", CatSpecialUse},
		{Microsoft, "68ad5090", "DigiCert", NSSNone, "trusted intermediate in NSS/Apple/Java via Baltimore CyberTrust", CatCrossSigned},
		{Microsoft, "1a0d2044", "Sectigo", NSSNone, "Apple/NSS trust issuer through different root certificate", CatCrossSigned},
		{Microsoft, "asseco-1", "Asseco/e-monitoring.at", NSSApproved, "recently approved by NSS, awaiting addition", CatPendingNSS},
		{Microsoft, "asseco-2", "Asseco/e-monitoring.at", NSSApproved, "recently approved by NSS, awaiting addition", CatPendingNSS},
		{Microsoft, "asseco-3", "Asseco/e-monitoring.at", NSSApproved, "recently approved by NSS, awaiting addition", CatPendingNSS},
	}
}

// ExclusiveCounts returns the per-program exclusive-root totals the paper
// headlines (NSS 1, Java 0, Apple 13, Microsoft 30).
func ExclusiveCounts() map[string]int {
	counts := map[string]int{NSS: 0, Java: 0, Apple: 0, Microsoft: 0}
	for _, r := range ExclusiveRoots() {
		counts[r.Program]++
	}
	return counts
}
