// Package paperdata is the curated ground truth the reproduction is
// calibrated against: the published facts from the paper's tables —
// provider dataset ranges (Table 2), hygiene metrics (Table 3),
// high-severity incident timelines (Table 4), software survey (Table 5),
// program-exclusive roots (Table 6/Appendix B), and the NSS removal catalog
// (Table 7/Appendix C).
//
// These values substitute for the proprietary inputs the authors scraped
// (CDN logs, decades of repository history, Bugzilla metadata): the
// synthetic corpus generator consumes them to produce certificate-level
// data whose analysis must land back on these numbers, and EXPERIMENTS.md
// compares measured values against them.
package paperdata

import "time"

// ym builds a month-precision date, the paper's comparison resolution
// (§3.1: "coarse-grained comparisons ... on the order of months or years").
func ym(year, month int) time.Time {
	return time.Date(year, time.Month(month), 1, 0, 0, 0, 0, time.UTC)
}

// ymd builds a day-precision date for the removal events the paper reports
// exactly.
func ymd(year, month, day int) time.Time {
	return time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC)
}

// Provider names, matching internal/store snapshot providers.
const (
	NSS         = "NSS"
	Microsoft   = "Microsoft"
	Apple       = "Apple"
	Java        = "Java"
	Android     = "Android"
	NodeJS      = "NodeJS"
	Debian      = "Debian"
	Ubuntu      = "Ubuntu"
	Alpine      = "Alpine"
	AmazonLinux = "AmazonLinux"
)

// ProviderInfo is a row of Table 2: one root-store provider's collected
// history.
type ProviderInfo struct {
	Name      string
	From, To  time.Time
	Snapshots int // "# SS"
	Unique    int // "# Uniq": distinct certificates across the history
	Source    string
	Detail    string
	// DerivesFrom is the upstream provider for derivative stores ("" for
	// the four independent programs).
	DerivesFrom string
}

// Providers returns Table 2 verbatim: 619 snapshots across ten providers.
func Providers() []ProviderInfo {
	return []ProviderInfo{
		{Alpine, ym(2019, 3), ym(2021, 4), 42, 7, "docker", "/etc/ssl/cert.pem or /etc/ssl/ca-certificates.crt", NSS},
		{AmazonLinux, ym(2016, 10), ym(2021, 3), 43, 15, "docker", "ca-trust/extracted/pem/tls-ca-bundle.pem aggregate file", NSS},
		{Android, ym(2016, 8), ym(2020, 12), 14, 7, "source code", "list of root certificate files", NSS},
		{Apple, ym(2002, 8), ym(2021, 2), 109, 43, "source code", "certificates/roots directory of files", ""},
		{Debian, ym(2005, 5), ym(2021, 1), 39, 29, "source code", "/etc/ssl/certs and /usr/share/ca-certificates", NSS},
		{Java, ym(2018, 3), ym(2021, 2), 7, 7, "source code", "make/data/cacerts JKS file", ""},
		{Microsoft, ym(2006, 12), ym(2021, 3), 86, 70, "update file", "authroot.stl roots, trust purpose, addl. constraints", ""},
		{NodeJS, ym(2015, 1), ym(2021, 4), 16, 11, "source code", "src/node_root_certs.h list of certificates", NSS},
		{NSS, ym(2000, 10), ym(2021, 5), 225, 63, "source code", "certdata.txt roots, trust purpose, additional constraints", ""},
		{Ubuntu, ym(2003, 10), ym(2021, 1), 38, 29, "source code", "/etc/ssl/certs and /usr/share/ca-certificates", NSS},
	}
}

// TotalSnapshots is the dataset headline: 619 snapshots.
const TotalSnapshots = 619

// IndependentPrograms lists the four root programs the ordination analysis
// finds (Figure 1), left-to-right as plotted.
var IndependentPrograms = []string{Microsoft, NSS, Apple, Java}

// Derivatives lists the NSS-derived providers in the dataset.
var Derivatives = []string{Alpine, AmazonLinux, Android, Debian, NodeJS, Ubuntu}

// HygieneRow is a row of Table 3.
type HygieneRow struct {
	Program string
	// AvgSize and AvgExpired are per-snapshot averages.
	AvgSize    float64
	AvgExpired float64
	// MD5Removal / RSA1024Removal are when the program purged trusted
	// MD5-signed / 1024-bit-RSA roots.
	MD5Removal     time.Time
	RSA1024Removal time.Time
}

// Hygiene returns Table 3 verbatim.
func Hygiene() []HygieneRow {
	return []HygieneRow{
		{Apple, 152.9, 2.9, ym(2016, 9), ym(2015, 9)},
		{Java, 89.4, 1.3, ym(2019, 2), ym(2021, 2)},
		{Microsoft, 246.6, 9.9, ym(2018, 3), ym(2017, 9)},
		{NSS, 121.8, 1.2, ym(2016, 2), ym(2015, 10)},
	}
}

// StoreResponse is one store's reaction to a high-severity incident
// (Table 4).
type StoreResponse struct {
	Store string
	// Certs is the number of affected certificates in that store.
	Certs int
	// TrustedUntil is the date the store stopped trusting them; zero when
	// StillTrusted.
	TrustedUntil time.Time
	// StillTrusted marks stores that never removed the roots ("Still
	// trusted" / "1 root still trusted" rows).
	StillTrusted bool
	// LagDays is the paper's reported lag relative to the NSS removal
	// (negative = acted before NSS).
	LagDays int
	// Note captures table footnotes (e.g. Apple's valid.apple.com
	// revocation).
	Note string
}

// Incident is a high-severity CA distrust event (Table 4, severities from
// Table 7).
type Incident struct {
	Name string
	// NSSRemoval is the anchoring NSS removal date.
	NSSRemoval time.Time
	// NSSCerts is how many roots NSS removed.
	NSSCerts int
	// BugzillaID is the NSS tracking bug.
	BugzillaID int
	Responses  []StoreResponse
	// Description summarizes the incident (§5.3 narratives).
	Description string
}

// Incidents returns Table 4 verbatim: the six high-severity removals since
// 2010 and every store's response.
func Incidents() []Incident {
	return []Incident{
		{
			Name: "DigiNotar", NSSRemoval: ymd(2011, 10, 6), NSSCerts: 1, BugzillaID: 682927,
			Description: "2011 compromise; forged certificates for high-profile sites; swift cross-industry removal",
			Responses: []StoreResponse{
				{Store: Microsoft, Certs: 1, TrustedUntil: ymd(2011, 8, 30), LagDays: -37},
				{Store: Apple, Certs: 1, TrustedUntil: ymd(2011, 10, 12), LagDays: 6},
				{Store: Debian, Certs: 1, TrustedUntil: ymd(2011, 10, 22), LagDays: 16},
				{Store: Ubuntu, Certs: 1, TrustedUntil: ymd(2011, 10, 22), LagDays: 16},
			},
		},
		{
			Name: "CNNIC", NSSRemoval: ymd(2017, 7, 27), NSSCerts: 2, BugzillaID: 1380868,
			Description: "2015 MCS intermediate misissuance; Mozilla partial distrust in code, full removal 2017",
			Responses: []StoreResponse{
				{Store: Apple, Certs: 2, TrustedUntil: ymd(2015, 6, 30), LagDays: -758, Note: "removed early, whitelisted 1,429 leaves"},
				{Store: Android, Certs: 1, TrustedUntil: ymd(2017, 12, 5), LagDays: 131},
				{Store: Debian, Certs: 2, TrustedUntil: ymd(2018, 4, 9), LagDays: 256},
				{Store: Ubuntu, Certs: 2, TrustedUntil: ymd(2018, 4, 9), LagDays: 256},
				{Store: NodeJS, Certs: 2, TrustedUntil: ymd(2018, 4, 24), LagDays: 271},
				{Store: AmazonLinux, Certs: 2, TrustedUntil: ymd(2019, 2, 18), LagDays: 571},
				{Store: Microsoft, Certs: 2, TrustedUntil: ymd(2020, 2, 26), LagDays: 944},
			},
		},
		{
			Name: "StartCom", NSSRemoval: ymd(2017, 11, 14), NSSCerts: 3, BugzillaID: 1392849,
			Description: "WoSign's secret acquisition of StartCom; shared issuance infrastructure",
			Responses: []StoreResponse{
				{Store: Debian, Certs: 3, TrustedUntil: ymd(2017, 7, 17), LagDays: -120},
				{Store: Ubuntu, Certs: 3, TrustedUntil: ymd(2017, 7, 17), LagDays: -120},
				{Store: Microsoft, Certs: 2, TrustedUntil: ymd(2017, 9, 22), LagDays: -53},
				{Store: Android, Certs: 3, TrustedUntil: ymd(2017, 12, 5), LagDays: 21},
				{Store: NodeJS, Certs: 3, TrustedUntil: ymd(2018, 4, 24), LagDays: 161},
				{Store: AmazonLinux, Certs: 3, TrustedUntil: ymd(2019, 2, 18), LagDays: 461},
				{Store: Apple, Certs: 3, StillTrusted: true, LagDays: 1175, Note: "1 root still trusted; 2 revoked via valid.apple.com"},
			},
		},
		{
			Name: "WoSign", NSSRemoval: ymd(2017, 11, 14), NSSCerts: 4, BugzillaID: 1387260,
			Description: "backdated SHA-1 issuance to evade deadlines (2016)",
			Responses: []StoreResponse{
				{Store: Debian, Certs: 4, TrustedUntil: ymd(2017, 7, 17), LagDays: -120},
				{Store: Ubuntu, Certs: 4, TrustedUntil: ymd(2017, 7, 17), LagDays: -120},
				{Store: Microsoft, Certs: 4, TrustedUntil: ymd(2017, 9, 22), LagDays: -53},
				{Store: Android, Certs: 4, TrustedUntil: ymd(2017, 12, 5), LagDays: 21},
				{Store: NodeJS, Certs: 4, TrustedUntil: ymd(2018, 4, 24), LagDays: 161},
				{Store: AmazonLinux, Certs: 4, TrustedUntil: ymd(2019, 2, 18), LagDays: 461},
			},
		},
		{
			Name: "PSPProcert", NSSRemoval: ymd(2017, 11, 14), NSSCerts: 1, BugzillaID: 1408080,
			Description: "repeated transgressions by Venezuelan sub-CA; never in Apple/Microsoft/Java",
			Responses: []StoreResponse{
				{Store: Debian, Certs: 1, TrustedUntil: ymd(2018, 4, 9), LagDays: 146},
				{Store: Ubuntu, Certs: 1, TrustedUntil: ymd(2018, 4, 9), LagDays: 146},
				{Store: NodeJS, Certs: 1, TrustedUntil: ymd(2018, 4, 24), LagDays: 161},
				{Store: AmazonLinux, Certs: 1, TrustedUntil: ymd(2019, 2, 18), LagDays: 461},
			},
		},
		{
			Name: "Certinomis", NSSRemoval: ymd(2019, 7, 5), NSSCerts: 1, BugzillaID: 1552374,
			Description: "cross-signed distrusted StartCom; 111-day disclosure delay",
			Responses: []StoreResponse{
				{Store: NodeJS, Certs: 1, TrustedUntil: ymd(2019, 10, 22), LagDays: 109},
				{Store: Alpine, Certs: 1, TrustedUntil: ymd(2020, 3, 23), LagDays: 262},
				{Store: Debian, Certs: 1, TrustedUntil: ymd(2020, 6, 1), LagDays: 332},
				{Store: Ubuntu, Certs: 1, TrustedUntil: ymd(2020, 6, 1), LagDays: 332},
				{Store: Android, Certs: 1, TrustedUntil: ymd(2020, 9, 7), LagDays: 430},
				{Store: AmazonLinux, Certs: 1, TrustedUntil: ymd(2021, 3, 26), LagDays: 630},
				{Store: Apple, Certs: 1, TrustedUntil: ymd(2021, 1, 1), LagDays: 577, Note: "revoked via valid.apple.com at unknown date"},
				{Store: Microsoft, Certs: 1, StillTrusted: true, LagDays: 607, Note: "still trusted at collection end"},
			},
		},
	}
}

// Severity grades an NSS removal (Appendix C).
type Severity int

// Removal severities per the paper's triage.
const (
	SeverityLow    Severity = iota // expired roots / CA-requested removal
	SeverityMedium                 // Mozilla-driven, non-urgent
	SeverityHigh                   // Mozilla-driven, urgent security concern
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityLow:
		return "low"
	case SeverityMedium:
		return "medium"
	case SeverityHigh:
		return "high"
	default:
		return "unknown"
	}
}

// NSSRemoval is a row of Table 7 (high and medium severity removals since
// 2010).
type NSSRemoval struct {
	BugzillaID int
	Severity   Severity
	RemovedOn  time.Time
	Certs      int
	Details    string
}

// NSSRemovals returns Table 7 verbatim.
func NSSRemovals() []NSSRemoval {
	return []NSSRemoval{
		{1552374, SeverityHigh, ymd(2019, 7, 5), 1, "Certinomis removal"},
		{1392849, SeverityHigh, ymd(2017, 11, 14), 3, "StartCom removal"},
		{1408080, SeverityHigh, ymd(2017, 11, 14), 1, "PSPProcert removal"},
		{1387260, SeverityHigh, ymd(2017, 11, 14), 4, "WoSign removal"},
		{1380868, SeverityHigh, ymd(2017, 7, 27), 2, "CNNIC removal"},
		{682927, SeverityHigh, ymd(2011, 10, 6), 1, "DigiNotar removal"},
		{1670769, SeverityMedium, ymd(2020, 12, 11), 10, "Symantec distrust - roots ready to be removed"},
		{1656077, SeverityMedium, ymd(2020, 9, 18), 1, "Taiwan GRCA misissuance"},
		{1618402, SeverityMedium, ymd(2020, 6, 26), 3, "Symantec distrust - roots ready to be removed"},
	}
}
