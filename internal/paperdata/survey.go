package paperdata

// SoftwareKind buckets the Table 5 survey.
type SoftwareKind string

// Survey categories.
const (
	KindOS      SoftwareKind = "operating-system"
	KindLibrary SoftwareKind = "tls-library"
	KindClient  SoftwareKind = "tls-client"
)

// SurveyRow is a row of Table 5 / Appendix A: whether a piece of TLS
// software ships its own root store.
type SurveyRow struct {
	Name     string
	Kind     SoftwareKind
	HasStore bool
	Details  string
}

// Survey returns Table 5 verbatim: nine OSes, nineteen (plus NodeJS,
// counted with libraries) TLS libraries, and fourteen clients.
func Survey() []SurveyRow {
	return []SurveyRow{
		// Operating systems.
		{"Alpine Linux", KindOS, true, "popular Docker image base"},
		{"Amazon Linux", KindOS, true, "AWS base image"},
		{"Android", KindOS, true, "most common mobile OS"},
		{"ChromeOS", KindOS, true, "excluded: no build-target history"},
		{"Debian", KindOS, true, "base of OpenWRT/Ubuntu"},
		{"iOS / macOS", KindOS, true, "common root store across product lines"},
		{"Microsoft Windows", KindOS, true, "PC and server OS"},
		{"Ubuntu", KindOS, true, "Debian-based desktop Linux"},

		// TLS libraries.
		{"AlamoFire", KindLibrary, false, "Swift HTTP library"},
		{"Botan", KindLibrary, false, "defaults to root store"},
		{"BoringSSL", KindLibrary, false, "Google OpenSSL fork used in Chrome/Android"},
		{"Bouncy Castle", KindLibrary, false, "no default, requires configured keystore"},
		{"cryptlib", KindLibrary, false, "unknown default"},
		{"GnuTLS", KindLibrary, false, "configured via --with-default-trust-store"},
		{"Java Secure Socket Ext. (JSSE)", KindLibrary, true, "cacerts JKS file"},
		{"LibreSSL libtls/libssl", KindLibrary, false, "configured TLS_DEFAULT_CA_FILE"},
		{"MatrixSSL", KindLibrary, false, "no default, requires configuration"},
		{"Mbed TLS", KindLibrary, false, "no default ca_path/ca_file"},
		{"Network Security Services (NSS)", KindLibrary, true, "certdata.txt, additional trust in code"},
		{"OkHttp", KindLibrary, false, "uses platform TLS"},
		{"OpenSSL", KindLibrary, false, "defaults to $OPENSSLDIR, often symlinked to system certs"},
		{"RSA BSAFE", KindLibrary, false, "unknown default"},
		{"s2n", KindLibrary, false, "defaults to system stores"},
		{"SChannel", KindLibrary, false, "defaults to Microsoft system store"},
		{"wolfSSL", KindLibrary, false, "no default, requires configuration"},
		{"Erlang/OTP SSL", KindLibrary, false, "unknown default"},
		{"BearSSL", KindLibrary, false, "no default, requires configuration"},
		{"NodeJS", KindLibrary, true, "static src/node_root_certs.h"},

		// TLS clients.
		{"Safari", KindClient, false, "uses macOS root store"},
		{"Mobile Safari", KindClient, false, "uses iOS root store"},
		{"Chrome", KindClient, true, "historically system roots + bespoke distrust; own store rolling out from Dec 2020"},
		{"Chrome Mobile", KindClient, false, "uses Android root store"},
		{"Chrome Mobile iOS", KindClient, false, "Apple prohibits custom stores on iOS"},
		{"Edge", KindClient, false, "Windows system certificates (not via SChannel)"},
		{"Internet Explorer", KindClient, false, "Windows system certificates via SChannel"},
		{"Firefox", KindClient, true, "uses NSS root store"},
		{"Opera", KindClient, false, "own program until 2013; now Chromium system roots"},
		{"Electron", KindClient, true, "Chromium + NodeJS; either store depending on networking library"},
		{"360Browser", KindClient, true, "excluded: no open-source history"},
		{"curl", KindClient, false, "libcurl compiled against system or custom store"},
		{"wget", KindClient, false, "wgetrc configuration; GnuTLS (previously OpenSSL)"},
	}
}

// SurveyCounts summarizes Table 5: how many of each kind ship a store.
func SurveyCounts() map[SoftwareKind]struct{ Total, WithStore int } {
	out := make(map[SoftwareKind]struct{ Total, WithStore int })
	for _, r := range Survey() {
		c := out[r.Kind]
		c.Total++
		if r.HasStore {
			c.WithStore++
		}
		out[r.Kind] = c
	}
	return out
}

// StalenessTarget is a Figure 3 headline: a derivative's average staleness
// in substantial NSS versions.
type StalenessTarget struct {
	Derivative       string
	AvgVersionsStale float64
}

// StalenessTargets returns Figure 3's per-derivative averages.
func StalenessTargets() []StalenessTarget {
	return []StalenessTarget{
		{Alpine, 0.73},
		{Debian, 1.96}, // paper reports Debian/Ubuntu jointly
		{Ubuntu, 1.96},
		{NodeJS, 2.1},
		{Android, 3.22},
		{AmazonLinux, 4.83},
	}
}

// FamilyShare is a Figure 2 headline: the fraction of top-200 user agents
// resting on each root program.
type FamilyShare struct {
	Family  string
	Percent float64
}

// FamilyShares returns §4's rollup: NSS 34%, Apple 23%, Windows 20%; Java
// absent from the top UAs.
func FamilyShares() []FamilyShare {
	return []FamilyShare{
		{"Mozilla", 34},
		{"Apple", 23},
		{"Microsoft", 20},
		{"Java", 0},
	}
}
