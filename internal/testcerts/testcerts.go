// Package testcerts provides a process-wide cache of minted test root
// certificates so the many codec and analysis test suites do not each pay
// key-generation cost. Tests only — not part of the library API surface.
package testcerts

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/certgen"
	"repro/internal/store"
)

var (
	mu    sync.Mutex
	pool  = certgen.NewKeyPool("testcerts")
	cache []*certgen.Root
)

// Roots returns n distinct ECDSA test roots, minting lazily.
func Roots(n int) []*certgen.Root {
	mu.Lock()
	defer mu.Unlock()
	for len(cache) < n {
		i := len(cache)
		r, err := certgen.NewRoot(pool, certgen.RootSpec{
			Name:      fmt.Sprintf("Shared Test Root %03d", i),
			Org:       "Test Fixtures",
			Country:   "US",
			Key:       certgen.ECDSA256,
			Sig:       certgen.ECDSAWithSHA256,
			NotBefore: time.Date(2008, 1, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:  time.Date(2038, 1, 1, 0, 0, 0, 0, time.UTC),
			KeyIndex:  i,
		})
		if err != nil {
			panic(fmt.Sprintf("testcerts: mint root %d: %v", i, err))
		}
		cache = append(cache, r)
	}
	return cache[:n]
}

// Entries returns n trust entries over the shared roots, each trusted for
// the given purposes.
func Entries(n int, purposes ...store.Purpose) []*store.TrustEntry {
	rs := Roots(n)
	out := make([]*store.TrustEntry, 0, n)
	for _, r := range rs {
		e, err := store.NewTrustedEntry(r.DER, purposes...)
		if err != nil {
			panic(err)
		}
		out = append(out, e)
	}
	return out
}

// Pool exposes the shared key pool for tests that issue leaves.
func Pool() *certgen.KeyPool { return pool }
