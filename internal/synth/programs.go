package synth

import (
	"fmt"
	"time"

	"repro/internal/paperdata"
	"repro/internal/store"
)

// Key NSS dates used across schedules.
var (
	// nssV53 is the NSS 3.53 release implementing Symantec partial
	// distrust (bug 1618402/1618404) plus the TWCA and SK ID removals.
	nssV53 = date(2020, 6, 26)
	// nssSymantecRemoval is the final removal of ten Symantec roots
	// (bug 1670769).
	nssSymantecRemoval = date(2020, 12, 11)
	// symantecDistrustAfter is the issuance cutoff recorded in
	// CKA_NSS_SERVER_DISTRUST_AFTER.
	symantecDistrustAfter = date(2019, 9, 1)
)

var bothPurposes = []store.Purpose{store.ServerAuth, store.EmailProtection}

// endOfMonth extends a month-precision Table 2 date to the month's last
// day, so events the paper dates inside a provider's final month (e.g.
// AmazonLinux's 2021-03-26 Certinomis removal) still fall in-window.
func endOfMonth(t time.Time) time.Time {
	return t.AddDate(0, 1, -1)
}

func providerInfo(name string) paperdata.ProviderInfo {
	for _, p := range paperdata.Providers() {
		if p.Name == name {
			return p
		}
	}
	panic(fmt.Sprintf("synth: unknown provider %q", name))
}

func hygiene(program string) paperdata.HygieneRow {
	for _, h := range paperdata.Hygiene() {
		if h.Program == program {
			return h
		}
	}
	panic(fmt.Sprintf("synth: no hygiene row for %q", program))
}

// response returns the Table 4 response of a store to an incident, if any.
func response(inc paperdata.Incident, storeName string) (paperdata.StoreResponse, bool) {
	for _, r := range inc.Responses {
		if r.Store == storeName {
			return r, true
		}
	}
	return paperdata.StoreResponse{}, false
}

// joinDate converts a CA's nominal join year to a program-specific
// inclusion date; delayMonths models each program's inclusion latency.
func joinDate(ca *CA, delayMonths int) time.Time {
	return date(ca.JoinYear, 3, 1).AddDate(0, delayMonths, 0)
}

// buildNSS constructs the NSS schedule: the reference store everything else
// derives from.
func buildNSS(u *Universe) *providerSchedule {
	info := providerInfo(paperdata.NSS)
	hyg := hygiene(paperdata.NSS)
	ps := newSchedule(paperdata.NSS, info.From, endOfMonth(info.To))

	for _, ca := range u.ByCategory(CatMainstream) {
		ps.add(ca.Name, joinDate(ca, 0), time.Time{}, bothPurposes...)
	}
	for _, ca := range u.ByCategory(CatLegacyMD5) {
		ps.add(ca.Name, info.From, hyg.MD5Removal, bothPurposes...)
	}
	for _, ca := range u.ByCategory(CatLegacyRSA) {
		ps.add(ca.Name, info.From, hyg.RSA1024Removal, bothPurposes...)
	}
	// NSS drops expired roots promptly: within ~4 months of expiry.
	for _, ca := range u.ByCategory(CatExpiring) {
		ps.add(ca.Name, joinDate(ca, 0), ca.Root.Cert.NotAfter.AddDate(0, 4, 0), bothPurposes...)
	}
	// The retained-legacy roots: NSS trusted them only 2000-2008.
	for _, ca := range u.ByCategory(CatMSLegacy) {
		ps.add(ca.Name, info.From, date(2008, 6, 1), bothPurposes...)
	}
	// Email-only roots: never TLS trust in NSS.
	for _, ca := range u.ByCategory(CatEmailOnly) {
		ps.add(ca.Name, date(2005, 6, 1), time.Time{}, store.EmailProtection)
	}
	// NSS's single exclusive root (Microsec ECC).
	for _, ca := range u.ByCategory(CatExclusive) {
		if ca.Program == paperdata.NSS {
			ps.add(ca.Name, date(2019, 8, 1), time.Time{}, bothPurposes...)
		}
	}
	// Incidents: trusted from a year before Table 4's earliest mention,
	// removed on the NSS removal date.
	for _, inc := range paperdata.Incidents() {
		for _, ca := range u.ByIncident(inc.Name) {
			ps.add(ca.Name, joinDate(ca, 0), inc.NSSRemoval, bothPurposes...)
		}
	}
	// TWCA and SK ID leave in v53 (policy violation / CA request).
	for _, ca := range u.ByIncident("TWCA") {
		ps.add(ca.Name, joinDate(ca, 0), nssV53, bothPurposes...)
	}
	for _, ca := range u.ByIncident("SKID") {
		ps.add(ca.Name, joinDate(ca, 0), nssV53, bothPurposes...)
	}
	// Symantec: three retired outright in v53; twelve annotated in v53 and
	// ten of those removed in December 2020.
	for _, ca := range u.ByIncident("SymantecRetired") {
		ps.add(ca.Name, joinDate(ca, 0), nssV53, bothPurposes...)
	}
	symantec := symantecCohort(u)
	for i, ca := range symantec {
		end := time.Time{}
		if i < 10 {
			end = nssSymantecRemoval
		}
		ps.add(ca.Name, joinDate(ca, 0), end, bothPurposes...)
		ps.annotate(ca.Name, nssV53, store.ServerAuth, symantecDistrustAfter)
	}
	return ps
}

// symantecCohort returns the twelve partial-distrust Symantec roots
// (excluding the three retired ones).
func symantecCohort(u *Universe) []*CA {
	var out []*CA
	for _, ca := range u.ByCategory(CatSymantec) {
		if ca.Incident == "" {
			out = append(out, ca)
		}
	}
	return out
}

// buildMicrosoft constructs the Microsoft schedule: the largest and most
// permissive store.
func buildMicrosoft(u *Universe) *providerSchedule {
	info := providerInfo(paperdata.Microsoft)
	hyg := hygiene(paperdata.Microsoft)
	ps := newSchedule(paperdata.Microsoft, info.From, endOfMonth(info.To))

	for _, ca := range u.ByCategory(CatMainstream) {
		ps.add(ca.Name, joinDate(ca, 9), time.Time{}, bothPurposes...)
	}
	for _, ca := range u.ByCategory(CatLegacyMD5) {
		ps.add(ca.Name, info.From, hyg.MD5Removal, bothPurposes...)
	}
	for _, ca := range u.ByCategory(CatLegacyRSA) {
		ps.add(ca.Name, info.From, hyg.RSA1024Removal, bothPurposes...)
	}
	// Microsoft keeps expired roots for years (Table 3: ~10 expired per
	// snapshot).
	for _, ca := range u.ByCategory(CatExpiring) {
		ps.add(ca.Name, joinDate(ca, 6), ca.Root.Cert.NotAfter.AddDate(4, 0, 0), bothPurposes...)
	}
	// Email-only roots: Microsoft trusts them, restricted to email.
	for _, ca := range u.ByCategory(CatEmailOnly) {
		ps.add(ca.Name, date(2007, 1, 1), time.Time{}, store.EmailProtection)
	}
	// The non-TLS bulk: email + code signing only.
	for _, ca := range u.ByCategory(CatMSExtra) {
		ps.add(ca.Name, joinDate(ca, 0), time.Time{}, store.EmailProtection, store.CodeSigning)
	}
	// The Apple/Microsoft shared block.
	for _, ca := range u.ByCategory(CatAppleExtra) {
		ps.add(ca.Name, joinDate(ca, 12), time.Time{}, bothPurposes...)
	}
	// Roots NSS dropped in 2008 that Microsoft retains to this day.
	for _, ca := range u.ByCategory(CatMSLegacy) {
		ps.add(ca.Name, joinDate(ca, 0), time.Time{}, bothPurposes...)
	}
	// Microsoft's thirty TLS-exclusive roots.
	for _, ca := range u.ByCategory(CatExclusive) {
		if ca.Program == paperdata.Microsoft {
			ps.add(ca.Name, joinDate(ca, 0), time.Time{}, bothPurposes...)
		}
	}
	// Incident responses per Table 4. Absence of a response row means the
	// store never trusted the roots (e.g. PSPProcert).
	for _, inc := range paperdata.Incidents() {
		r, ok := response(inc, paperdata.Microsoft)
		if !ok {
			continue
		}
		cas := u.ByIncident(inc.Name)
		for i, ca := range cas {
			if i >= r.Certs {
				break // store only ever trusted r.Certs of them
			}
			end := r.TrustedUntil
			if r.StillTrusted {
				end = time.Time{}
			}
			ps.add(ca.Name, joinDate(ca, 3), end, bothPurposes...)
		}
	}
	// Symantec stays trusted in Microsoft through the study window.
	for _, ca := range u.ByCategory(CatSymantec) {
		ps.add(ca.Name, joinDate(ca, 6), time.Time{}, bothPurposes...)
	}
	return ps
}

// buildApple constructs the Apple schedule.
func buildApple(u *Universe) *providerSchedule {
	info := providerInfo(paperdata.Apple)
	hyg := hygiene(paperdata.Apple)
	ps := newSchedule(paperdata.Apple, info.From, endOfMonth(info.To))

	for _, ca := range u.ByCategory(CatMainstream) {
		ps.add(ca.Name, joinDate(ca, 4), time.Time{}, bothPurposes...)
	}
	for _, ca := range u.ByCategory(CatLegacyMD5) {
		ps.add(ca.Name, info.From, hyg.MD5Removal, bothPurposes...)
	}
	for _, ca := range u.ByCategory(CatLegacyRSA) {
		ps.add(ca.Name, info.From, hyg.RSA1024Removal, bothPurposes...)
	}
	// Apple removes expired roots within about 18 months.
	for _, ca := range u.ByCategory(CatExpiring) {
		ps.add(ca.Name, joinDate(ca, 2), ca.Root.Cert.NotAfter.AddDate(1, 6, 0), bothPurposes...)
	}
	// Apple's wider store: everything trusted for everything (no default
	// purpose restrictions — §5.2's critique).
	for _, ca := range u.ByCategory(CatAppleExtra) {
		ps.add(ca.Name, joinDate(ca, 0), time.Time{}, store.ServerAuth, store.EmailProtection, store.CodeSigning)
	}
	for _, ca := range u.ByCategory(CatExclusive) {
		if ca.Program == paperdata.Apple {
			ps.add(ca.Name, joinDate(ca, 0), time.Time{}, store.ServerAuth, store.EmailProtection, store.CodeSigning)
		}
	}
	for _, inc := range paperdata.Incidents() {
		r, ok := response(inc, paperdata.Apple)
		if !ok {
			continue
		}
		for i, ca := range u.ByIncident(inc.Name) {
			if i >= r.Certs {
				break
			}
			end := r.TrustedUntil
			if r.StillTrusted {
				end = time.Time{}
			}
			ps.add(ca.Name, joinDate(ca, 2), end, bothPurposes...)
		}
	}
	return ps
}

// buildJava constructs the Java schedule: the smallest store, starting in
// 2018.
func buildJava(u *Universe) *providerSchedule {
	info := providerInfo(paperdata.Java)
	hyg := hygiene(paperdata.Java)
	ps := newSchedule(paperdata.Java, info.From, endOfMonth(info.To))

	// Java trusts the pre-2011 mainstream cohorts only (smallest store).
	for _, ca := range u.ByCategory(CatMainstream) {
		if ca.JoinYear <= 2006 {
			ps.add(ca.Name, info.From, time.Time{}, bothPurposes...)
		}
	}
	for _, ca := range u.ByCategory(CatLegacyMD5) {
		ps.add(ca.Name, info.From, hyg.MD5Removal, bothPurposes...)
	}
	for _, ca := range u.ByCategory(CatLegacyRSA) {
		ps.add(ca.Name, info.From, hyg.RSA1024Removal, bothPurposes...)
	}
	// Java keeps a couple of expiring roots briefly.
	for i, ca := range u.ByCategory(CatExpiring) {
		if i%4 == 0 && ca.Root.Cert.NotAfter.After(info.From) {
			ps.add(ca.Name, info.From, ca.Root.Cert.NotAfter.AddDate(0, 10, 0), bothPurposes...)
		}
	}
	// Symantec: Java trusted them and dropped them quietly in 2021.
	for _, ca := range symantecCohort(u) {
		ps.add(ca.Name, info.From, date(2021, 1, 15), bothPurposes...)
	}
	return ps
}
