package synth

import (
	"sort"
	"time"

	"repro/internal/store"
)

// distrustAnno is a partial-distrust annotation: from appliedFrom onward,
// snapshots carry DistrustAfter[purpose] = value (NSS's
// CKA_NSS_SERVER_DISTRUST_AFTER semantics).
type distrustAnno struct {
	appliedFrom time.Time
	purpose     store.Purpose
	value       time.Time
}

// grant is one contiguous trust interval for a CA in one provider.
// Dates are inclusive on both ends; a zero `to` means open-ended.
type grant struct {
	from, to time.Time
	purposes []store.Purpose
	annos    []distrustAnno
}

func (g grant) contains(at time.Time) bool {
	if at.Before(g.from) {
		return false
	}
	return g.to.IsZero() || !at.After(g.to)
}

// providerSchedule is a provider's full trust plan: per-CA grants plus the
// provider's publication window.
type providerSchedule struct {
	provider           string
	rangeFrom, rangeTo time.Time
	// kind tags the provider's ecosystem (zero value = tls).
	kind   store.Kind
	grants map[string][]grant
	// extraEvents collects change dates beyond grant boundaries.
	extraEvents []time.Time
	// grantEventsOff suppresses grant boundaries as snapshot triggers.
	// Programs publish a release whenever membership changes, but
	// derivatives only materialize upstream changes at their own sparse
	// releases — modelling that is what makes Figure 3's staleness real.
	// Pinned dates (incident responses, bespoke mods) still force a
	// release.
	grantEventsOff bool
}

func newSchedule(provider string, from, to time.Time) *providerSchedule {
	return &providerSchedule{
		provider:  provider,
		rangeFrom: from,
		rangeTo:   to,
		grants:    make(map[string][]grant),
	}
}

// add records a grant. A zero `to` leaves the CA trusted through the end of
// the history.
func (ps *providerSchedule) add(ca string, from, to time.Time, purposes ...store.Purpose) {
	ps.grants[ca] = append(ps.grants[ca], grant{from: from, to: to, purposes: purposes})
}

// pin forces snapshot emission at the given dates (used by derivative
// overrides whose dates are real release dates from the paper).
func (ps *providerSchedule) pin(dates ...time.Time) {
	for _, d := range dates {
		if !d.IsZero() {
			ps.extraEvents = append(ps.extraEvents, d, d.AddDate(0, 0, 1))
		}
	}
}

// annotate attaches a partial-distrust annotation to the CA's grants.
func (ps *providerSchedule) annotate(ca string, appliedFrom time.Time, p store.Purpose, value time.Time) {
	gs := ps.grants[ca]
	for i := range gs {
		gs[i].annos = append(gs[i].annos, distrustAnno{appliedFrom: appliedFrom, purpose: p, value: value})
	}
	ps.extraEvents = append(ps.extraEvents, appliedFrom)
}

// stateAt materializes the provider's snapshot at an instant.
func (ps *providerSchedule) stateAt(u *Universe, version string, at time.Time) *store.Snapshot {
	s := store.NewSnapshot(ps.provider, version, at)
	s.Kind = ps.kind
	// Deterministic CA order.
	names := make([]string, 0, len(ps.grants))
	for name := range ps.grants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ca := u.Lookup(name)
		if ca == nil {
			continue
		}
		for _, g := range ps.grants[name] {
			if !g.contains(at) {
				continue
			}
			e := ca.Entry()
			for _, p := range g.purposes {
				e.SetTrust(p, store.Trusted)
			}
			for _, a := range g.annos {
				if !at.Before(a.appliedFrom) {
					e.SetDistrustAfter(a.purpose, a.value)
				}
			}
			s.Add(e)
			break
		}
	}
	return s
}

// eventDates returns every date the provider's contents change, clamped to
// its publication window, sorted and de-duplicated.
func (ps *providerSchedule) eventDates() []time.Time {
	seen := map[time.Time]bool{}
	var out []time.Time
	record := func(t time.Time) {
		if t.IsZero() || t.Before(ps.rangeFrom) || t.After(ps.rangeTo) {
			return
		}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	if !ps.grantEventsOff {
		for _, gs := range ps.grants {
			for _, g := range gs {
				record(g.from)
				if !g.to.IsZero() {
					// The change is visible the day after the last trusted day.
					record(g.to)
					record(g.to.AddDate(0, 0, 1))
				}
			}
		}
	}
	for _, t := range ps.extraEvents {
		record(t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// snapshotDates merges an even cadence of `count` dates across the
// publication window with all event dates, so every membership change is
// observable and the snapshot count approximates the paper's Table 2.
func (ps *providerSchedule) snapshotDates(count int) []time.Time {
	seen := map[time.Time]bool{}
	var out []time.Time
	add := func(t time.Time) {
		if t.Before(ps.rangeFrom) || t.After(ps.rangeTo) {
			return
		}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	if count < 2 {
		count = 2
	}
	span := ps.rangeTo.Sub(ps.rangeFrom)
	for i := 0; i < count; i++ {
		frac := float64(i) / float64(count-1)
		add(ps.rangeFrom.Add(time.Duration(frac * float64(span))).Truncate(24 * time.Hour))
	}
	for _, t := range ps.eventDates() {
		add(t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
