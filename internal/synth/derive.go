package synth

import (
	"time"

	"repro/internal/paperdata"
	"repro/internal/store"
)

// DerivativeLagDays is the calibrated copy lag per derivative, in days.
// These produce Figure 3's "substantial versions behind" ordering:
// Alpine closest to NSS, AmazonLinux worst.
var DerivativeLagDays = map[string]int{
	paperdata.Alpine:      70,
	paperdata.Debian:      360,
	paperdata.Ubuntu:      360,
	paperdata.NodeJS:      370,
	paperdata.Android:     700,
	paperdata.AmazonLinux: 355,
}

// neverIncluded records roots a derivative excluded even though NSS shipped
// them (§6.2 "Customized trust": Android never included PSPProcert).
var neverIncluded = map[string][]string{
	paperdata.Android: {"PSPProcert"},
}

// buildDerivative lag-copies the NSS schedule into a derivative provider
// and applies the provider's bespoke modifications. The copy is inherently
// lossy: derivative stores are flat certificate lists, so partial-distrust
// annotations vanish and only TLS membership survives — the paper's core
// finding about derivative formats.
func buildDerivative(u *Universe, nss *providerSchedule, name string) *providerSchedule {
	info := providerInfo(name)
	lag := time.Duration(DerivativeLagDays[name]) * 24 * time.Hour
	ps := newSchedule(name, info.From, endOfMonth(info.To))
	ps.grantEventsOff = true

	excluded := map[string]bool{}
	for _, inc := range neverIncluded[name] {
		for _, ca := range u.ByIncident(inc) {
			excluded[ca.Name] = true
		}
	}

	// Lag-copy every NSS ServerAuth grant. Annotations are dropped (the
	// format cannot express them).
	for caName, grants := range nss.grants {
		if excluded[caName] {
			continue
		}
		for _, g := range grants {
			if !hasPurpose(g.purposes, store.ServerAuth) {
				continue
			}
			from := g.from.Add(lag)
			to := g.to
			if !to.IsZero() {
				to = to.Add(lag)
			}
			ps.add(caName, from, to, store.ServerAuth)
		}
	}

	// Incident overrides: where Table 4 gives this derivative's own
	// removal date, it supersedes the lagged copy.
	for _, inc := range paperdata.Incidents() {
		r, ok := response(inc, name)
		if !ok {
			continue
		}
		for i, ca := range u.ByIncident(inc.Name) {
			if excluded[ca.Name] {
				continue
			}
			if i >= r.Certs {
				// The store never carried this certificate (e.g. Android
				// only ever had one of the two CNNIC roots), so the
				// lag-copied grant must go entirely.
				delete(ps.grants, ca.Name)
				continue
			}
			end := r.TrustedUntil
			if r.StillTrusted {
				end = time.Time{}
			}
			replaceGrantEnd(ps, ca.Name, end)
			ps.pin(end)
		}
	}

	applyDerivativeMods(u, ps, name, lag)
	return ps
}

func hasPurpose(purposes []store.Purpose, p store.Purpose) bool {
	for _, x := range purposes {
		if x == p {
			return true
		}
	}
	return false
}

// replaceGrantEnd rewrites the CA's grants to a single interval ending at
// `end` (zero = open), keeping the earliest start.
func replaceGrantEnd(ps *providerSchedule, caName string, end time.Time) {
	gs := ps.grants[caName]
	if len(gs) == 0 {
		return
	}
	start := gs[0].from
	for _, g := range gs {
		if g.from.Before(start) {
			start = g.from
		}
	}
	ps.grants[caName] = []grant{{from: start, to: end, purposes: []store.Purpose{store.ServerAuth}}}
}

// applyDerivativeMods layers each derivative's documented customizations
// (§6.2) over the lag-copied base.
func applyDerivativeMods(u *Universe, ps *providerSchedule, name string, lag time.Duration) {
	emailOnly := u.ByCategory(CatEmailOnly)
	symantec := symantecCohort(u)

	switch name {
	case paperdata.Debian, paperdata.Ubuntu:
		// Non-NSS roots from the first snapshot until 2015.
		for _, ca := range u.ByCategory(CatNonNSS) {
			if ca.Name == "NonNSS Thawte Premium Server" || ca.Name == "ValiCert Legacy" {
				continue // AmazonLinux's and NodeJS's own additions
			}
			ps.add(ca.Name, ps.rangeFrom, date(2015, 6, 1), store.ServerAuth)
		}
		// Email-signing conflation: all 19 NSS email-only roots TLS-trusted
		// until the 2017 cutover to TLS-only copying.
		for _, ca := range emailOnly {
			ps.add(ca.Name, ps.rangeFrom, date(2017, 1, 15), store.ServerAuth)
		}
		ps.pin(date(2015, 6, 1), date(2017, 1, 15))
		// Symantec: premature full removal of eleven of the twelve roots
		// days after NSS 3.53 (GeoTrust Universal CA 2 analog retained),
		// then re-addition after breakage complaints.
		for i, ca := range symantec {
			if i == len(symantec)-1 {
				continue // the curiously retained root keeps its lagged grant
			}
			// Replace the lagged grant with: trusted until 2020-07-01,
			// re-added 2020-10-01 onward.
			start := ps.rangeFrom
			if gs := ps.grants[ca.Name]; len(gs) > 0 {
				start = gs[0].from
			}
			ps.grants[ca.Name] = []grant{
				{from: start, to: date(2020, 7, 1), purposes: []store.Purpose{store.ServerAuth}},
				{from: date(2020, 10, 1), purposes: []store.Purpose{store.ServerAuth}},
			}
		}
		ps.pin(date(2020, 7, 1), date(2020, 10, 1))

	case paperdata.AmazonLinux:
		// Sixteen 1024-bit roots re-added 2016-10 through 2018-12 after
		// NSS had removed them in 2015.
		for _, ca := range u.ByCategory(CatLegacyRSA) {
			ps.add(ca.Name, date(2016, 10, 1), date(2018, 12, 15), store.ServerAuth)
		}
		// A brief 2018 window re-adding thirteen expired / CA-requested
		// removals.
		readds := u.ByCategory(CatExpiring)
		if len(readds) > 13 {
			readds = readds[:13]
		}
		for _, ca := range readds {
			ps.add(ca.Name, date(2018, 3, 1), date(2018, 9, 15), store.ServerAuth)
		}
		// Thawte Premium Server CA: trusted 2016-10 until just before its
		// 2020-12 expiry.
		ps.add("NonNSS Thawte Premium Server", date(2016, 10, 1), date(2020, 12, 15), store.ServerAuth)
		ps.pin(date(2018, 3, 1), date(2018, 9, 15), date(2018, 12, 15), date(2020, 12, 15))

	case paperdata.NodeJS:
		// ValiCert re-added for OpenSSL chain building.
		ps.add("ValiCert Legacy", ps.rangeFrom, time.Time{}, store.ServerAuth)
		// NSS 3.53 skipped: the TWCA, SK ID and three retired Symantec
		// removals never landed.
		for _, incName := range []string{"TWCA", "SKID", "SymantecRetired"} {
			for _, ca := range u.ByIncident(incName) {
				replaceGrantEnd(ps, ca.Name, time.Time{})
			}
		}

	case paperdata.Alpine:
		// Four email-only roots TLS-trusted until 2020.
		for i, ca := range emailOnly {
			if i >= 4 {
				break
			}
			ps.add(ca.Name, ps.rangeFrom, date(2020, 3, 1), store.ServerAuth)
		}
		// Manual removal of the expired AddTrust root at its expiry,
		// ahead of any NSS version bump.
		replaceGrantEnd(ps, "AddTrust External", date(2020, 5, 30))
		ps.pin(date(2020, 3, 1), date(2020, 5, 30))

	case paperdata.Android:
		// Android's proactive CNNIC and WoSign removals are Table 4
		// responses, already applied. PSPProcert exclusion handled above.
	}
}
