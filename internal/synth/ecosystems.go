package synth

// The non-TLS ecosystems: CT log root stores and a TPM-vendor manifest
// provider, layered on top of the base ten-provider corpus. Kept out of
// Generate so the base corpus — whose provider count, snapshot counts and
// fingerprints many artifacts pin — is untouched; GenerateWithEcosystems
// is the superset the ecosystem analyses run on.
//
// The schedules encode what "Characterizing the Root Landscape of
// Certificate Transparency Logs" reports about logs as root stores:
//
//   - Logs ACCUMULATE. Everything a log ever accepts stays accepted —
//     MD5-signed and 1024-bit roots the browsers purged, roots past
//     expiry, distrusted Symantec and incident roots. Rejecting an old
//     root loses submissions; keeping it is free. That one behavioural
//     difference is what pushes CT sets far from every browser store in
//     the Jaccard metric.
//   - Operator correlation. Logs run by one operator share acceptance
//     tooling, so same-operator logs have near-identical root sets while
//     cross-operator sets diverge. Here same-operator logs get the same
//     grant plan, plus per-operator submission-only cohorts no browser
//     trusts.
//   - Cadence, not events. Logs don't cut releases when membership
//     changes; snapshots are periodic get-roots scrapes (grantEventsOff).

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/store"
)

// CTOperators are the synthetic log operators, each running two logs.
var CTOperators = []string{"DigiCert", "Google"}

// CTLogSpec names one synthetic CT log and its operator.
type CTLogSpec struct {
	Name     string
	Operator string
}

// CTLogs lists the synthetic CT logs in provider-name order.
func CTLogs() []CTLogSpec {
	return []CTLogSpec{
		{Name: "CT-Argon", Operator: "Google"},
		{Name: "CT-Mammoth", Operator: "DigiCert"},
		{Name: "CT-Xenon", Operator: "Google"},
		{Name: "CT-Yeti", Operator: "DigiCert"},
	}
}

// TPMVendorProvider is the manifest-kind provider's name.
const TPMVendorProvider = "TPM-Vendors"

// EcosystemProviders lists every provider GenerateWithEcosystems adds on
// top of the base corpus, with its kind.
func EcosystemProviders() map[string]store.Kind {
	out := map[string]store.Kind{TPMVendorProvider: store.KindManifest}
	for _, lg := range CTLogs() {
		out[lg.Name] = store.KindCT
	}
	return out
}

// ctSnapshotCount approximates quarterly get-roots scrapes over the log
// window.
const ctSnapshotCount = 8

// buildCTLog constructs one log's schedule. All logs of an operator share
// the same plan (operator correlation); the operator decides the marginal
// acceptance policy.
func buildCTLog(u *Universe, name, operator string) *providerSchedule {
	ps := newSchedule(name, date(2017, 3, 1), date(2021, 6, 1))
	ps.kind = store.KindCT
	ps.grantEventsOff = true
	server := []store.Purpose{store.ServerAuth}

	// open grants acceptance from the later of the log's launch and the
	// CA's own existence, and never revokes it.
	open := func(ca *CA, notBefore time.Time) {
		from := ps.rangeFrom
		if notBefore.After(from) {
			from = notBefore
		}
		ps.add(ca.Name, from, time.Time{}, server...)
	}

	// The mainstream universe: everything the browsers agree on, accepted
	// wholesale.
	for _, ca := range u.ByCategory(CatMainstream) {
		open(ca, joinDate(ca, 0))
	}
	// The hygiene divergence: legacy and expiring roots browsers purged
	// (Table 3) are accepted and never dropped — logs keep accepting
	// submissions chaining to them.
	for _, cat := range []Category{CatLegacyMD5, CatLegacyRSA, CatExpiring} {
		for _, ca := range u.ByCategory(cat) {
			open(ca, time.Time{})
		}
	}
	// Distrusted cohorts: Symantec and the incident CAs stay accepted
	// after every browser removed them.
	for _, ca := range u.ByCategory(CatSymantec) {
		open(ca, time.Time{})
	}
	for _, ca := range u.ByCategory(CatIncident) {
		open(ca, time.Time{})
	}
	// The operator's submission-only cohort: roots no browser program
	// ever trusted, added to keep historic submission chains verifiable.
	for _, ca := range u.ByCategory(CatCTOnly) {
		if ca.Program == operator {
			open(ca, joinDate(ca, 0))
		}
	}
	// Operator policy margin: Google's acceptance sweep also takes the
	// wider Apple/Microsoft TLS population; DigiCert's logs stop at the
	// NSS-derived universe. This is the cross-operator divergence.
	if operator == "Google" {
		for _, cat := range []Category{CatAppleExtra, CatMSLegacy} {
			for _, ca := range u.ByCategory(cat) {
				open(ca, time.Time{})
			}
		}
	}
	return ps
}

// buildTPMVendors constructs the manifest-kind provider: a vendor-curated
// bundle of TPM endorsement-key roots plus the handful of mainstream TLS
// roots vendors also anchor, published on a slow manifest cadence.
func buildTPMVendors(u *Universe) *providerSchedule {
	ps := newSchedule(TPMVendorProvider, date(2019, 1, 1), date(2021, 6, 1))
	ps.kind = store.KindManifest
	server := []store.Purpose{store.ServerAuth}

	// The vendor EK roots arrive in waves as vendors join the manifest.
	for i, ca := range u.ByCategory(CatTPMOnly) {
		from := ps.rangeFrom.AddDate(0, (i%3)*9, 0)
		ps.add(ca.Name, from, time.Time{}, server...)
	}
	// A small mainstream overlap: vendors anchor a few public TLS roots
	// for firmware-update endpoints. Enough to place the provider in the
	// same certificate universe, far too few to cluster it with browsers.
	mainstream := u.ByCategory(CatMainstream)
	for i := 0; i < 6 && i < len(mainstream); i++ {
		ps.add(mainstream[i].Name, ps.rangeFrom, time.Time{}, server...)
	}
	return ps
}

// ecosystemSchedules builds every non-TLS provider schedule.
func ecosystemSchedules(u *Universe) []*providerSchedule {
	var out []*providerSchedule
	for _, lg := range CTLogs() {
		out = append(out, buildCTLog(u, lg.Name, lg.Operator))
	}
	out = append(out, buildTPMVendors(u))
	return out
}

// manifestSnapshotCount is the vendor manifest's release count: manifests
// are curated documents, revised a few times a year at most.
const manifestSnapshotCount = 4

// GenerateWithEcosystems builds the base corpus plus the CT-log and
// TPM-manifest providers, each snapshot tagged with its ecosystem kind.
// Deterministic for a seed, like Generate.
func GenerateWithEcosystems(seed string) (*Ecosystem, error) {
	eco, err := Generate(seed)
	if err != nil {
		return nil, err
	}
	for _, ps := range ecosystemSchedules(eco.Universe) {
		eco.Schedules[ps.provider] = ps
		count := ctSnapshotCount
		if ps.kind == store.KindManifest {
			count = manifestSnapshotCount
		}
		dates := ps.snapshotDates(count)
		for i, d := range dates {
			snap := ps.stateAt(eco.Universe, fmt.Sprintf("%s-%03d", ps.provider, i), d)
			if err := eco.DB.AddSnapshot(snap); err != nil {
				return nil, fmt.Errorf("synth: %s snapshot %d: %w", ps.provider, i, err)
			}
		}
	}
	return eco, nil
}

var (
	ecoCacheMu sync.Mutex
	ecoCache   = map[string]*Ecosystem{}
)

// CachedWithEcosystems is Cached for the ecosystem-extended corpus: a
// process-wide shared instance per seed, read-only to callers.
func CachedWithEcosystems(seed string) (*Ecosystem, error) {
	ecoCacheMu.Lock()
	defer ecoCacheMu.Unlock()
	if e, ok := ecoCache[seed]; ok {
		return e, nil
	}
	e, err := GenerateWithEcosystems(seed)
	if err != nil {
		return nil, err
	}
	ecoCache[seed] = e
	return e, nil
}
