package synth

import (
	"fmt"
	"sync"

	"repro/internal/paperdata"
	"repro/internal/store"
)

// Ecosystem is the generated corpus: the CA universe plus the full
// snapshot database for all ten providers.
type Ecosystem struct {
	Universe *Universe
	DB       *store.Database
	// Schedules exposes the per-provider trust plans for white-box tests
	// and ablations.
	Schedules map[string]*providerSchedule
}

// Generate builds the complete synthetic ecosystem deterministically from
// a seed. The returned database holds roughly the paper's 619 snapshots
// (Table 2 cadence plus one snapshot per membership-change date).
func Generate(seed string) (*Ecosystem, error) {
	u, err := NewUniverse(seed)
	if err != nil {
		return nil, err
	}
	eco := &Ecosystem{
		Universe:  u,
		DB:        store.NewDatabase(),
		Schedules: make(map[string]*providerSchedule),
	}

	nss := buildNSS(u)
	eco.Schedules[paperdata.NSS] = nss
	eco.Schedules[paperdata.Microsoft] = buildMicrosoft(u)
	eco.Schedules[paperdata.Apple] = buildApple(u)
	eco.Schedules[paperdata.Java] = buildJava(u)
	for _, name := range paperdata.Derivatives {
		eco.Schedules[name] = buildDerivative(u, nss, name)
	}

	for _, info := range paperdata.Providers() {
		ps, ok := eco.Schedules[info.Name]
		if !ok {
			return nil, fmt.Errorf("synth: no schedule for provider %q", info.Name)
		}
		dates := ps.snapshotDates(info.Snapshots)
		for i, d := range dates {
			snap := ps.stateAt(u, fmt.Sprintf("%s-%03d", info.Name, i), d)
			if err := eco.DB.AddSnapshot(snap); err != nil {
				return nil, fmt.Errorf("synth: %s snapshot %d: %w", info.Name, i, err)
			}
		}
	}
	return eco, nil
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Ecosystem{}
)

// Cached returns a process-wide shared ecosystem for the seed, generating
// it on first use. The result MUST be treated as read-only: analyses,
// examples and benchmarks all share it. Use Generate for a private copy.
func Cached(seed string) (*Ecosystem, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if e, ok := cache[seed]; ok {
		return e, nil
	}
	e, err := Generate(seed)
	if err != nil {
		return nil, err
	}
	cache[seed] = e
	return e, nil
}
