package synth

import (
	"sync"
	"testing"
	"time"

	"repro/internal/paperdata"
	"repro/internal/store"
)

var (
	ecoOnce sync.Once
	eco     *Ecosystem
	ecoErr  error
)

// ecosystem generates the corpus once per test process (it is the heavy
// fixture every test here shares).
func ecosystem(t testing.TB) *Ecosystem {
	t.Helper()
	ecoOnce.Do(func() {
		eco, ecoErr = Generate("synth-test")
	})
	if ecoErr != nil {
		t.Fatalf("Generate: %v", ecoErr)
	}
	return eco
}

func TestGenerateProviders(t *testing.T) {
	e := ecosystem(t)
	provs := e.DB.Providers()
	if len(provs) != 10 {
		t.Fatalf("providers = %d, want 10: %v", len(provs), provs)
	}
	for _, info := range paperdata.Providers() {
		h := e.DB.History(info.Name)
		if h == nil {
			t.Fatalf("no history for %s", info.Name)
		}
		if h.Len() < info.Snapshots {
			t.Errorf("%s: %d snapshots, want >= %d", info.Name, h.Len(), info.Snapshots)
		}
		// Publication window respected.
		if h.First().Date.Before(info.From) || h.Latest().Date.After(info.To.AddDate(0, 1, 0)) {
			t.Errorf("%s: snapshots outside window %s..%s", info.Name,
				h.First().Date.Format("2006-01"), h.Latest().Date.Format("2006-01"))
		}
	}
	if total := e.DB.TotalSnapshots(); total < paperdata.TotalSnapshots {
		t.Errorf("total snapshots = %d, want >= %d", total, paperdata.TotalSnapshots)
	}
}

func TestStoreSizeOrdering(t *testing.T) {
	e := ecosystem(t)
	avgSize := func(p string) float64 {
		h := e.DB.History(p)
		sum := 0
		for _, s := range h.Snapshots() {
			sum += s.Len()
		}
		return float64(sum) / float64(h.Len())
	}
	ms, apple, nss, java := avgSize(paperdata.Microsoft), avgSize(paperdata.Apple), avgSize(paperdata.NSS), avgSize(paperdata.Java)
	// Table 3 ordering: Microsoft > Apple > NSS > Java.
	if !(ms > apple && apple > nss && nss > java) {
		t.Errorf("avg size ordering wrong: MS=%.1f Apple=%.1f NSS=%.1f Java=%.1f", ms, apple, nss, java)
	}
}

func TestExpiredRootsOrdering(t *testing.T) {
	e := ecosystem(t)
	avgExpired := func(p string) float64 {
		h := e.DB.History(p)
		sum := 0
		for _, s := range h.Snapshots() {
			sum += s.ExpiredCount(store.ServerAuth)
		}
		return float64(sum) / float64(h.Len())
	}
	ms, apple, nss := avgExpired(paperdata.Microsoft), avgExpired(paperdata.Apple), avgExpired(paperdata.NSS)
	if !(ms > apple && apple > nss) {
		t.Errorf("avg expired ordering wrong: MS=%.2f Apple=%.2f NSS=%.2f", ms, apple, nss)
	}
}

func TestIncidentRemovalDatesReproduced(t *testing.T) {
	e := ecosystem(t)
	for _, inc := range paperdata.Incidents() {
		cas := e.Universe.ByIncident(inc.Name)
		if len(cas) != inc.NSSCerts {
			t.Fatalf("%s: %d CAs minted, want %d", inc.Name, len(cas), inc.NSSCerts)
		}
		// NSS removal.
		nssHist := e.DB.History(paperdata.NSS)
		fp := store.TrustEntry{}
		_ = fp
		for _, ca := range cas {
			entry := ca.Entry()
			last, still, ever := nssHist.TrustedUntil(entry.Fingerprint, store.ServerAuth)
			if !ever {
				t.Errorf("%s: %s never trusted by NSS", inc.Name, ca.Name)
				continue
			}
			if still {
				t.Errorf("%s: %s still trusted by NSS", inc.Name, ca.Name)
				continue
			}
			if !last.Equal(inc.NSSRemoval) {
				t.Errorf("%s: NSS trusted %s until %s, want %s", inc.Name, ca.Name,
					last.Format("2006-01-02"), inc.NSSRemoval.Format("2006-01-02"))
			}
		}
		// Per-store responses.
		for _, r := range inc.Responses {
			h := e.DB.History(r.Store)
			if h == nil {
				t.Fatalf("no history for %s", r.Store)
			}
			for i, ca := range cas {
				if i >= r.Certs {
					break
				}
				entry := ca.Entry()
				last, still, ever := h.TrustedUntil(entry.Fingerprint, store.ServerAuth)
				if !ever {
					t.Errorf("%s/%s: %s never trusted", inc.Name, r.Store, ca.Name)
					continue
				}
				if r.StillTrusted {
					if !still {
						t.Errorf("%s/%s: %s should still be trusted", inc.Name, r.Store, ca.Name)
					}
					continue
				}
				if still {
					t.Errorf("%s/%s: %s unexpectedly still trusted", inc.Name, r.Store, ca.Name)
					continue
				}
				if !last.Equal(r.TrustedUntil) && r.Note == "" {
					t.Errorf("%s/%s: trusted until %s, want %s", inc.Name, r.Store,
						last.Format("2006-01-02"), r.TrustedUntil.Format("2006-01-02"))
				}
			}
		}
	}
}

func TestAndroidNeverIncludedProcert(t *testing.T) {
	e := ecosystem(t)
	h := e.DB.History(paperdata.Android)
	for _, ca := range e.Universe.ByIncident("PSPProcert") {
		if _, _, ever := h.TrustedUntil(ca.Entry().Fingerprint, store.ServerAuth); ever {
			t.Errorf("Android should never have trusted %s", ca.Name)
		}
	}
}

func TestSymantecPartialDistrustInNSSOnly(t *testing.T) {
	e := ecosystem(t)
	symantec := symantecCohort(e.Universe)
	if len(symantec) != 12 {
		t.Fatalf("symantec cohort = %d, want 12", len(symantec))
	}
	after := time.Date(2020, 8, 1, 0, 0, 0, 0, time.UTC)

	nssSnap := e.DB.History(paperdata.NSS).At(after)
	annotated := 0
	for _, ca := range symantec {
		if entry, ok := nssSnap.Lookup(ca.Entry().Fingerprint); ok {
			if _, has := entry.DistrustAfterFor(store.ServerAuth); has {
				annotated++
			}
		}
	}
	if annotated != 12 {
		t.Errorf("NSS snapshot after v53 has %d annotated Symantec roots, want 12", annotated)
	}

	// Derivatives cannot express the annotation: their snapshots carry
	// fully-trusted Symantec roots (or none at all).
	for _, deriv := range []string{paperdata.NodeJS, paperdata.AmazonLinux} {
		snap := e.DB.History(deriv).At(after)
		if snap == nil {
			continue
		}
		for _, ca := range symantec {
			if entry, ok := snap.Lookup(ca.Entry().Fingerprint); ok {
				if _, has := entry.DistrustAfterFor(store.ServerAuth); has {
					t.Errorf("%s carries a partial-distrust annotation it cannot express", deriv)
				}
			}
		}
	}
}

func TestDebianSymantecReAdd(t *testing.T) {
	e := ecosystem(t)
	h := e.DB.History(paperdata.Debian)
	symantec := symantecCohort(e.Universe)
	removedRoot := symantec[0].Entry().Fingerprint
	keptRoot := symantec[len(symantec)-1].Entry().Fingerprint

	gapSnap := h.At(time.Date(2020, 8, 15, 0, 0, 0, 0, time.UTC))
	if gapSnap == nil {
		t.Fatal("no Debian snapshot in the gap window")
	}
	if _, ok := gapSnap.Lookup(removedRoot); ok {
		t.Error("Debian should have removed the Symantec root in the gap window")
	}
	if _, ok := gapSnap.Lookup(keptRoot); !ok {
		t.Error("Debian should have curiously retained one Symantec root")
	}
	lateSnap := h.At(time.Date(2020, 12, 1, 0, 0, 0, 0, time.UTC))
	if _, ok := lateSnap.Lookup(removedRoot); !ok {
		t.Error("Debian should have re-added the Symantec root after complaints")
	}
}

func TestNodeJSPreservesV53Removals(t *testing.T) {
	e := ecosystem(t)
	h := e.DB.History(paperdata.NodeJS)
	latest := h.Latest()
	for _, incName := range []string{"TWCA", "SKID"} {
		for _, ca := range e.Universe.ByIncident(incName) {
			if _, ok := latest.Lookup(ca.Entry().Fingerprint); !ok {
				t.Errorf("NodeJS should preserve %s after skipping NSS v53", ca.Name)
			}
		}
	}
	// NSS itself removed them.
	nssLatest := e.DB.History(paperdata.NSS).Latest()
	for _, ca := range e.Universe.ByIncident("TWCA") {
		if _, ok := nssLatest.Lookup(ca.Entry().Fingerprint); ok {
			t.Error("NSS should have removed TWCA in v53")
		}
	}
}

func TestAmazonReAdds1024BitRoots(t *testing.T) {
	e := ecosystem(t)
	h := e.DB.History(paperdata.AmazonLinux)
	mid2017 := h.At(time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC))
	if mid2017 == nil {
		t.Fatal("no AmazonLinux snapshot mid-2017")
	}
	count := 0
	for _, ca := range e.Universe.ByCategory(CatLegacyRSA) {
		if _, ok := mid2017.Lookup(ca.Entry().Fingerprint); ok {
			count++
		}
	}
	if count != 16 {
		t.Errorf("AmazonLinux mid-2017 has %d legacy 1024-bit roots, want 16", count)
	}
	// NSS removed them back in 2015.
	nss2016 := e.DB.History(paperdata.NSS).At(time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC))
	for _, ca := range e.Universe.ByCategory(CatLegacyRSA) {
		if _, ok := nss2016.Lookup(ca.Entry().Fingerprint); ok {
			t.Fatal("NSS should have purged 1024-bit roots by mid-2016")
		}
	}
}

func TestEmailConflation(t *testing.T) {
	e := ecosystem(t)
	emailOnly := e.Universe.ByCategory(CatEmailOnly)
	if len(emailOnly) != 19 {
		t.Fatalf("email-only cohort = %d, want 19", len(emailOnly))
	}
	// NSS never TLS-trusts them.
	nssLatest := e.DB.History(paperdata.NSS).Latest()
	for _, ca := range emailOnly {
		if entry, ok := nssLatest.Lookup(ca.Entry().Fingerprint); ok {
			if entry.TrustedFor(store.ServerAuth) {
				t.Fatalf("NSS TLS-trusts email-only root %s", ca.Name)
			}
		}
	}
	// Debian TLS-trusted all 19 before 2017.
	deb2016 := e.DB.History(paperdata.Debian).At(time.Date(2016, 6, 1, 0, 0, 0, 0, time.UTC))
	n := 0
	for _, ca := range emailOnly {
		if entry, ok := deb2016.Lookup(ca.Entry().Fingerprint); ok && entry.TrustedFor(store.ServerAuth) {
			n++
		}
	}
	if n != 19 {
		t.Errorf("Debian 2016 TLS-trusts %d email-only roots, want 19", n)
	}
	// And stopped after the cutover.
	deb2018 := e.DB.History(paperdata.Debian).At(time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC))
	n = 0
	for _, ca := range emailOnly {
		if entry, ok := deb2018.Lookup(ca.Entry().Fingerprint); ok && entry.TrustedFor(store.ServerAuth) {
			n++
		}
	}
	if n != 0 {
		t.Errorf("Debian 2018 still TLS-trusts %d email-only roots", n)
	}
	// Alpine: four until 2020.
	alp2019 := e.DB.History(paperdata.Alpine).At(time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC))
	n = 0
	for _, ca := range emailOnly {
		if entry, ok := alp2019.Lookup(ca.Entry().Fingerprint); ok && entry.TrustedFor(store.ServerAuth) {
			n++
		}
	}
	if n != 4 {
		t.Errorf("Alpine 2019 TLS-trusts %d email-only roots, want 4", n)
	}
}

func TestExclusiveRootsPlacement(t *testing.T) {
	e := ecosystem(t)
	latestByProg := map[string]*store.Snapshot{}
	for _, prog := range paperdata.IndependentPrograms {
		latestByProg[prog] = e.DB.History(prog).Latest()
	}
	for _, ca := range e.Universe.ByCategory(CatExclusive) {
		fp := ca.Entry().Fingerprint
		for prog, snap := range latestByProg {
			entry, ok := snap.Lookup(fp)
			tlsTrusted := ok && entry.TrustedFor(store.ServerAuth)
			if prog == ca.Program && !tlsTrusted {
				t.Errorf("%s missing from its own program %s", ca.Name, prog)
			}
			if prog != ca.Program && tlsTrusted {
				t.Errorf("%s leaked into %s", ca.Name, prog)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := ecosystem(t)
	b, err := Generate("synth-test") // same seed as the shared fixture
	if err != nil {
		t.Fatal(err)
	}
	sa := a.DB.History(paperdata.NSS).Latest()
	sb := b.DB.History(paperdata.NSS).Latest()
	if sa.Len() != sb.Len() {
		t.Fatalf("same seed produced different NSS sizes: %d vs %d", sa.Len(), sb.Len())
	}
	for _, entry := range sa.Entries() {
		if _, ok := sb.Lookup(entry.Fingerprint); !ok {
			// RSA certificates are fully deterministic. ECDSA roots carry
			// nondeterministic signature nonces, so only their absence
			// from the *name* space would be a bug, not their bytes.
			if entry.Cert.PublicKeyAlgorithm.String() == "RSA" {
				t.Errorf("RSA root %s differs across same-seed runs", entry.Label)
			}
		}
	}
}

func TestCachedSharesInstance(t *testing.T) {
	a, err := Cached("cache-test-synth")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cached("cache-test-synth")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Cached should return the same instance for the same seed")
	}
}
