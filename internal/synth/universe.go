// Package synth generates the synthetic root-store ecosystem the
// reproduction runs on: a population of genuine CA certificates (real keys,
// real DER, including legacy MD5/1024-bit material) and, for each of the
// paper's ten providers, a history of dated snapshots whose membership is
// driven by the published ground truth in internal/paperdata — program
// growth, hygiene purges (Table 3), high-severity incidents (Table 4),
// program-exclusive roots (Table 6), and the derivative copying behaviours
// of §6 (staleness, Symantec partial-distrust failures, email-signing
// conflation, non-NSS roots, custom trust).
//
// The paper's own inputs (21 years of scraped release archives) are
// proprietary and unavailable offline; this simulator is the substitution
// documented in DESIGN.md. Every downstream analysis parses the same
// certificate-level data structures (and, via the codecs, the same
// bytes-on-disk formats) the paper's pipeline consumed.
package synth

import (
	"fmt"
	"time"

	"repro/internal/certgen"
	"repro/internal/paperdata"
	"repro/internal/store"
)

// Category classifies a synthetic CA's role in the ecosystem narrative.
type Category string

// CA categories.
const (
	CatMainstream Category = "mainstream"  // trusted broadly across programs
	CatLegacyMD5  Category = "legacy-md5"  // MD5-signed roots purged per Table 3
	CatLegacyRSA  Category = "legacy-rsa"  // 1024-bit RSA roots purged per Table 3
	CatExpiring   Category = "expiring"    // roots whose validity lapses mid-study
	CatEmailOnly  Category = "email-only"  // NSS email-only roots (conflation analysis)
	CatExclusive  Category = "exclusive"   // program-exclusive roots (Table 6)
	CatIncident   Category = "incident"    // roots removed in Table 4 incidents
	CatSymantec   Category = "symantec"    // the partial-distrust cohort
	CatMSExtra    Category = "ms-extra"    // Microsoft non-TLS bulk (email/code)
	CatAppleExtra Category = "apple-extra" // Apple's wider store
	CatMSLegacy   Category = "ms-legacy"   // NSS-then-Microsoft retained TLS roots
	CatNonNSS     Category = "non-nss"     // Debian/Ubuntu/Amazon roots never in NSS
	CatCTOnly     Category = "ct-only"     // submission roots only CT logs accept
	CatTPMOnly    Category = "tpm-only"    // TPM vendor EK roots outside TLS entirely
)

// CA is one synthetic certification authority: a minted root plus the
// metadata the scheduler keys on.
type CA struct {
	Name     string
	Category Category
	Root     *certgen.Root
	// Incident links incident-category CAs to their paperdata incident.
	Incident string
	// Program scopes exclusive/extra roots to their program.
	Program string
	// JoinYear is the nominal year the CA entered the ecosystem.
	JoinYear int

	proto *store.TrustEntry // parsed-once prototype, cloned per snapshot
}

// Universe is the full CA population, indexed by name.
type Universe struct {
	CAs    []*CA
	byName map[string]*CA
	pool   *certgen.KeyPool
}

// Lookup finds a CA by name.
func (u *Universe) Lookup(name string) *CA { return u.byName[name] }

// ByCategory returns the CAs in a category, in creation order.
func (u *Universe) ByCategory(c Category) []*CA {
	var out []*CA
	for _, ca := range u.CAs {
		if ca.Category == c {
			out = append(out, ca)
		}
	}
	return out
}

// ByIncident returns the CAs tied to a named incident.
func (u *Universe) ByIncident(name string) []*CA {
	var out []*CA
	for _, ca := range u.CAs {
		if ca.Incident == name {
			out = append(out, ca)
		}
	}
	return out
}

// Entry builds a fresh trust entry for a CA (no purposes set). The DER is
// parsed once per CA; clones share the parsed certificate.
func (ca *CA) Entry() *store.TrustEntry {
	if ca.proto == nil {
		e, err := store.NewEntry(ca.Root.DER)
		if err != nil {
			// Minting already parsed the certificate; failure here is a bug.
			panic(fmt.Sprintf("synth: entry for %s: %v", ca.Name, err))
		}
		e.Label = ca.Name
		ca.proto = e
	}
	return ca.proto.Clone()
}

// universeSpec is one row of the population plan.
type universeSpec struct {
	namePrefix string
	count      int
	category   Category
	key        certgen.KeySpec
	sig        certgen.Algorithm
	notBefore  time.Time
	notAfter   time.Time
	incident   string
	program    string
	joinYear   int
}

func date(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

// NewUniverse mints the full CA population. Deterministic for a seed.
func NewUniverse(seed string) (*Universe, error) {
	u := &Universe{byName: make(map[string]*CA), pool: certgen.NewKeyPool(seed)}

	var specs []universeSpec

	// Mainstream cohorts: 14 cohorts of 8 CAs joining 2000..2018, long
	// validity. These form the broad overlap that makes each family's
	// snapshots cluster tightly in Figure 1.
	for cohort := 0; cohort < 14; cohort++ {
		year := 2000 + (cohort*10)/13 // staggered 2000..2010
		specs = append(specs, universeSpec{
			namePrefix: fmt.Sprintf("Mainstream %02d", cohort),
			count:      8,
			category:   CatMainstream,
			key:        certgen.RSA2048,
			sig:        certgen.SHA256WithRSA,
			notBefore:  date(year, 1, 1),
			notAfter:   date(year+30, 1, 1),
			joinYear:   year,
		})
	}

	// Legacy MD5-signed roots (purged per Table 3 MD5 column).
	specs = append(specs, universeSpec{
		namePrefix: "Legacy MD5", count: 10, category: CatLegacyMD5,
		key: certgen.RSA2048, sig: certgen.MD5WithRSA,
		notBefore: date(1998, 1, 1), notAfter: date(2028, 1, 1), joinYear: 2000,
	})

	// Legacy 1024-bit RSA roots (purged per Table 3 1024-bit column);
	// sixteen of them so AmazonLinux's re-add of sixteen (§6.2) is exact.
	specs = append(specs, universeSpec{
		namePrefix: "Legacy RSA1024", count: 16, category: CatLegacyRSA,
		key: certgen.RSA1024, sig: certgen.SHA1WithRSA,
		notBefore: date(1999, 1, 1), notAfter: date(2029, 1, 1), joinYear: 2000,
	})

	// Expiring roots: validity ends mid-study; programs differ in how
	// promptly they drop them (Table 3 Avg. Expired).
	for i, exp := range []int{2008, 2008, 2009, 2010, 2010, 2011, 2012, 2012, 2013, 2014, 2014, 2015, 2015, 2016, 2016, 2017, 2017, 2018, 2018, 2019, 2019, 2020, 2020, 2020} {
		specs = append(specs, universeSpec{
			namePrefix: fmt.Sprintf("Expiring %02d", i), count: 1, category: CatExpiring,
			key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
			notBefore: date(exp-15, 1, 1), notAfter: date(exp, 6, 1), joinYear: exp - 15,
		})
	}

	// NSS email-only roots: never TLS-trusted by NSS. Debian/Ubuntu
	// wrongly TLS-trusted 19, Alpine 4 (§6.2 "Email signing").
	specs = append(specs, universeSpec{
		namePrefix: "Email Only", count: 19, category: CatEmailOnly,
		key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
		notBefore: date(2004, 1, 1), notAfter: date(2034, 1, 1), joinYear: 2005,
	})

	// Program-exclusive roots per Table 6.
	for _, ex := range paperdata.ExclusiveRoots() {
		keySpec, sig := certgen.RSA2048, certgen.SHA256WithRSA
		if ex.ShortHash == "beb00b30" {
			keySpec, sig = certgen.ECDSA256, certgen.ECDSAWithSHA256 // Microsec ECC
		}
		specs = append(specs, universeSpec{
			namePrefix: fmt.Sprintf("Exclusive %s %s (%s)", ex.Program, ex.CA, ex.ShortHash),
			count:      1, category: CatExclusive,
			key: keySpec, sig: sig,
			notBefore: date(2012, 1, 1), notAfter: date(2037, 1, 1),
			program: ex.Program, joinYear: 2014,
		})
	}

	// Incident CAs per Table 4.
	for _, inc := range paperdata.Incidents() {
		nb := inc.NSSRemoval.AddDate(-12, 0, 0)
		specs = append(specs, universeSpec{
			namePrefix: "Incident " + inc.Name, count: inc.NSSCerts, category: CatIncident,
			key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
			notBefore: nb, notAfter: nb.AddDate(25, 0, 0),
			incident: inc.Name, joinYear: nb.Year(),
		})
	}

	// The Symantec partial-distrust cohort: twelve roots get
	// server-distrust-after in NSS 3.53 (§6.2), plus TWCA and SK ID whose
	// same-version removals NodeJS preserved.
	specs = append(specs,
		universeSpec{
			namePrefix: "Symantec", count: 12, category: CatSymantec,
			key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
			notBefore: date(2006, 1, 1), notAfter: date(2036, 1, 1), joinYear: 2006,
		},
		universeSpec{
			// The three roots NSS removed outright alongside the v53
			// partial distrust (Table 7, bug 1618402).
			namePrefix: "Symantec Retired", count: 3, category: CatSymantec,
			incident: "SymantecRetired",
			key:      certgen.RSA2048, sig: certgen.SHA256WithRSA,
			notBefore: date(2004, 1, 1), notAfter: date(2034, 1, 1), joinYear: 2005,
		},
		universeSpec{
			namePrefix: "TWCA Policy", count: 1, category: CatIncident, incident: "TWCA",
			key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
			notBefore: date(2008, 1, 1), notAfter: date(2038, 1, 1), joinYear: 2008,
		},
		universeSpec{
			namePrefix: "SK ID Solutions", count: 1, category: CatIncident, incident: "SKID",
			key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
			notBefore: date(2008, 1, 1), notAfter: date(2038, 1, 1), joinYear: 2008,
		},
	)

	// Microsoft's non-TLS bulk: email/code-signing-only roots that inflate
	// its store size (Table 3) without appearing TLS-exclusive (Table 6).
	specs = append(specs, universeSpec{
		namePrefix: "MS NonTLS", count: 20, category: CatMSExtra,
		key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
		notBefore: date(2005, 1, 1), notAfter: date(2035, 1, 1),
		program: paperdata.Microsoft, joinYear: 2007,
	})

	// The Apple/Microsoft shared block: CAs both permissive programs trust
	// for TLS that never passed NSS review. They widen both stores without
	// being Table 6 exclusives (two programs trust them).
	specs = append(specs, universeSpec{
		namePrefix: "Apple Extra", count: 60, category: CatAppleExtra,
		key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
		notBefore: date(2004, 1, 1), notAfter: date(2036, 1, 1),
		program: paperdata.Apple, joinYear: 2005,
	})

	// Microsoft's retained-legacy TLS block: roots NSS trusted in the
	// early 2000s and removed by 2008, which Microsoft kept. They give
	// Microsoft its distinct identity in the ordination without counting
	// as Table 6 exclusives (NSS *ever* trusted them).
	specs = append(specs, universeSpec{
		namePrefix: "MS Retained", count: 45, category: CatMSLegacy,
		key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
		notBefore: date(2001, 1, 1), notAfter: date(2033, 1, 1),
		program: paperdata.Microsoft, joinYear: 2003,
	})

	// Roots that were never in NSS but appeared in Debian/Ubuntu
	// (CAcert 3, SPI 3, Debian 2, TP Internet 9, DCSSI 1, Brazil NIIT 1 =
	// 19, §6.2 "Non-NSS roots") and AmazonLinux's Thawte Premium.
	nonNSS := []struct {
		name  string
		count int
	}{
		{"CAcert", 3}, {"SPI", 3}, {"Debian Infra", 2}, {"TP Internet", 9},
		{"DCSSI", 1}, {"Brazil NIIT", 1}, {"Thawte Premium Server", 1},
	}
	for _, nn := range nonNSS {
		specs = append(specs, universeSpec{
			namePrefix: "NonNSS " + nn.name, count: nn.count, category: CatNonNSS,
			key: certgen.RSA2048, sig: certgen.SHA1WithRSA,
			notBefore: date(2003, 1, 1), notAfter: date(2033, 1, 1), joinYear: 2004,
		})
	}

	// ValiCert: the deprecated root NodeJS re-added for OpenSSL chain
	// building (§6.2 "Customized trust").
	specs = append(specs, universeSpec{
		namePrefix: "ValiCert Legacy", count: 1, category: CatNonNSS,
		key: certgen.RSA1024, sig: certgen.SHA1WithRSA,
		notBefore: date(1999, 6, 1), notAfter: date(2029, 6, 1), joinYear: 1999,
	})

	// AddTrust: expires 2020-05-30; Alpine removed it manually (§6.2).
	specs = append(specs, universeSpec{
		namePrefix: "AddTrust External", count: 1, category: CatExpiring,
		key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
		notBefore: date(2000, 5, 30), notAfter: date(2020, 5, 30), joinYear: 2000,
	})

	// NOTE: the specs below extend the universe for the non-TLS ecosystems
	// (CT logs, TPM manifests). They MUST stay at the end: key indices are
	// assigned in spec order, so appending keeps every pre-existing CA's
	// certificate — and with it the fingerprints every base-corpus artifact
	// and golden value depends on — byte-identical.

	// CT submission-only roots: per-operator cohorts of roots accepted by
	// that operator's logs for submission chains but never trusted by any
	// browser program — the log-exclusive tail the CT root-landscape
	// analysis reports.
	for _, op := range CTOperators {
		specs = append(specs, universeSpec{
			namePrefix: "CT Submission " + op, count: 20, category: CatCTOnly,
			key: certgen.RSA2048, sig: certgen.SHA256WithRSA,
			notBefore: date(2014, 1, 1), notAfter: date(2039, 1, 1),
			program: op, joinYear: 2016,
		})
	}

	// TPM vendor endorsement-key roots: anchors that exist entirely outside
	// the TLS ecosystem, published only through vendor manifests.
	specs = append(specs, universeSpec{
		namePrefix: "TPM Vendor EK", count: 12, category: CatTPMOnly,
		key: certgen.ECDSA256, sig: certgen.ECDSAWithSHA256,
		notBefore: date(2013, 1, 1), notAfter: date(2043, 1, 1), joinYear: 2015,
	})

	keyIdx := 0
	for _, spec := range specs {
		for i := 0; i < spec.count; i++ {
			name := spec.namePrefix
			if spec.count > 1 {
				name = fmt.Sprintf("%s Root %d", spec.namePrefix, i+1)
			}
			root, err := certgen.NewRoot(u.pool, certgen.RootSpec{
				Name:      name,
				Org:       name + " Org",
				Country:   "US",
				Key:       spec.key,
				Sig:       spec.sig,
				NotBefore: spec.notBefore,
				NotAfter:  spec.notAfter,
				KeyIndex:  keyIdx,
			})
			if err != nil {
				return nil, fmt.Errorf("synth: mint %q: %w", name, err)
			}
			keyIdx++
			ca := &CA{
				Name:     name,
				Category: spec.category,
				Root:     root,
				Incident: spec.incident,
				Program:  spec.program,
				JoinYear: spec.joinYear,
			}
			u.CAs = append(u.CAs, ca)
			u.byName[name] = ca
		}
	}
	return u, nil
}
