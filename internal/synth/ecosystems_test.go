package synth

import (
	"testing"

	"repro/internal/paperdata"
	"repro/internal/setdist"
	"repro/internal/store"
)

func ecosystemCorpus(t *testing.T) *Ecosystem {
	t.Helper()
	eco, err := CachedWithEcosystems("ecosystems-test")
	if err != nil {
		t.Fatal(err)
	}
	return eco
}

func TestGenerateWithEcosystemsExtendsBase(t *testing.T) {
	eco := ecosystemCorpus(t)
	base, err := Cached("ecosystems-test")
	if err != nil {
		t.Fatal(err)
	}
	wantProviders := len(paperdata.Providers()) + len(CTLogs()) + 1
	if got := len(eco.DB.Providers()); got != wantProviders {
		t.Fatalf("%d providers, want %d", got, wantProviders)
	}
	// The base corpus rides along unchanged: same providers, same
	// snapshot counts, same latest membership.
	for _, info := range paperdata.Providers() {
		bh, eh := base.DB.History(info.Name), eco.DB.History(info.Name)
		if bh.Len() != eh.Len() {
			t.Errorf("%s: %d snapshots with ecosystems, %d without", info.Name, eh.Len(), bh.Len())
			continue
		}
		if bl, el := bh.Latest(), eh.Latest(); bl.Len() != el.Len() {
			t.Errorf("%s: latest size changed %d -> %d", info.Name, bl.Len(), el.Len())
		}
		if kind := eh.Latest().Kind.Normalize(); kind != store.KindTLS {
			t.Errorf("%s: base provider kind = %q", info.Name, kind)
		}
	}
	for name, kind := range EcosystemProviders() {
		h := eco.DB.History(name)
		if h == nil || h.Len() == 0 {
			t.Errorf("%s: no snapshots", name)
			continue
		}
		for _, snap := range h.Snapshots() {
			if snap.Kind != kind {
				t.Errorf("%s %s: kind %q, want %q", name, snap.Version, snap.Kind, kind)
			}
		}
	}
}

func TestEcosystemDeterminism(t *testing.T) {
	a, err := GenerateWithEcosystems("det")
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWithEcosystems("det")
	if err != nil {
		t.Fatal(err)
	}
	for name := range EcosystemProviders() {
		ah, bh := a.DB.History(name), b.DB.History(name)
		if ah.Len() != bh.Len() {
			t.Fatalf("%s: snapshot counts differ", name)
		}
		for i, as := range ah.Snapshots() {
			bs := bh.Snapshots()[i]
			if d := setdist.SnapshotJaccard(as, bs, store.ServerAuth); d != 0 {
				t.Errorf("%s snapshot %d: same-seed Jaccard distance %f", name, i, d)
			}
			if !as.Date.Equal(bs.Date) || as.Version != bs.Version {
				t.Errorf("%s snapshot %d: metadata differs", name, i)
			}
		}
	}
}

// TestCTStructure pins the three findings the CT schedules encode: logs
// are supersets of browser stores (accumulation), same-operator logs are
// near-identical, and cross-operator logs diverge.
func TestCTStructure(t *testing.T) {
	eco := ecosystemCorpus(t)
	nss := eco.DB.History(paperdata.NSS).Latest()
	for _, lg := range CTLogs() {
		log := eco.DB.History(lg.Name).Latest()
		if log.Len() <= nss.Len() {
			t.Errorf("%s (%d roots) not larger than NSS (%d): accumulation missing", lg.Name, log.Len(), nss.Len())
		}
		// Jaccard here is the DISTANCE (1 - similarity): CT stores sit far
		// from every browser store.
		if d := setdist.SnapshotJaccard(log, nss, store.ServerAuth); d < 0.3 {
			t.Errorf("%s vs NSS Jaccard distance %.3f: CT store not divergent enough", lg.Name, d)
		}
	}

	latest := func(name string) *store.Snapshot { return eco.DB.History(name).Latest() }
	sameOp := setdist.SnapshotJaccard(latest("CT-Argon"), latest("CT-Xenon"), store.ServerAuth)
	crossOp := setdist.SnapshotJaccard(latest("CT-Argon"), latest("CT-Yeti"), store.ServerAuth)
	if sameOp > 0.01 {
		t.Errorf("same-operator Jaccard distance %.3f, want ~0 (operator correlation)", sameOp)
	}
	if crossOp <= sameOp || crossOp < 0.1 {
		t.Errorf("cross-operator Jaccard distance %.3f vs same-operator %.3f: no operator divergence", crossOp, sameOp)
	}
}

func TestTPMVendorsStructure(t *testing.T) {
	eco := ecosystemCorpus(t)
	h := eco.DB.History(TPMVendorProvider)
	// The cadence target plus any vendor-wave change dates.
	if h.Len() < manifestSnapshotCount {
		t.Errorf("%d manifest snapshots, want >= %d", h.Len(), manifestSnapshotCount)
	}
	last := h.Latest()
	tpmOnly := 0
	for _, e := range last.Entries() {
		ca := eco.Universe.Lookup(e.Label)
		if ca != nil && ca.Category == CatTPMOnly {
			tpmOnly++
		}
	}
	if tpmOnly != 12 {
		t.Errorf("%d tpm-only roots in final manifest, want 12", tpmOnly)
	}
	// The manifest store is mostly exclusive: far from every TLS store
	// (Jaccard distance near 1).
	nss := eco.DB.History(paperdata.NSS).Latest()
	if d := setdist.SnapshotJaccard(last, nss, store.ServerAuth); d < 0.9 {
		t.Errorf("TPM-vs-NSS Jaccard distance %.3f, want near-disjoint", d)
	}
	// Membership grows across manifest revisions (vendor waves).
	if first := h.Snapshots()[0]; first.Len() >= last.Len() {
		t.Errorf("manifest did not grow: first %d, last %d", first.Len(), last.Len())
	}
}
