// Package applestore reads and writes an Apple-style root store: a
// directory of DER certificate files (the certificates/roots layout of
// Apple's open-source Security repository, the paper's data source for
// macOS/iOS) plus an optional TrustSettings.plist expressing per-root usage
// constraints in the kSecTrustSettings vocabulary.
//
// The paper notes (§3) that recent keychain formats *can* express
// per-key-usage restrictions (kSecTrustSettingsKeyUsage) but Apple does not
// ship default policies — so a directory without a trust-settings file
// yields entries trusted for every purpose, reproducing Apple's
// multi-purpose behaviour that §5.2 critiques.
package applestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/certutil"
	"repro/internal/plist"
	"repro/internal/store"
)

// TrustSettingsName is the file name of the optional trust-settings plist
// inside a roots directory.
const TrustSettingsName = "TrustSettings.plist"

// trustSettingsResult values from Security/SecTrustSettings.h.
const (
	resultTrustRoot = int64(1) // kSecTrustSettingsResultTrustRoot
	resultDeny      = int64(3) // kSecTrustSettingsResultDeny
)

// policy OIDs-as-strings used in trust settings documents.
const (
	policySSL   = "sslServer"
	policySMIME = "smime"
	policyCode  = "codeSigning"
)

func policyFor(p store.Purpose) (string, bool) {
	switch p {
	case store.ServerAuth:
		return policySSL, true
	case store.EmailProtection:
		return policySMIME, true
	case store.CodeSigning:
		return policyCode, true
	default:
		return "", false
	}
}

func purposeFor(policy string) (store.Purpose, bool) {
	switch policy {
	case policySSL:
		return store.ServerAuth, true
	case policySMIME:
		return store.EmailProtection, true
	case policyCode:
		return store.CodeSigning, true
	default:
		return 0, false
	}
}

// defaultPurposes is what a root with no trust-settings record is trusted
// for: everything (Apple ships no default per-purpose policy).
var defaultPurposes = []store.Purpose{store.ServerAuth, store.EmailProtection, store.CodeSigning}

// WriteDir writes entries as individual DER files in dir, plus a
// TrustSettings.plist for any entry whose trust differs from
// trust-everything (denied purposes, distrust, or restricted purpose sets).
func WriteDir(dir string, entries []*store.TrustEntry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("applestore: %w", err)
	}
	settings := plist.Dict{}
	seen := map[string]int{}
	for _, e := range entries {
		name := fileNameFor(e, seen)
		if err := os.WriteFile(filepath.Join(dir, name), e.DER, 0o644); err != nil {
			return fmt.Errorf("applestore: %w", err)
		}
		if rec := trustRecord(e); rec != nil {
			settings[certutil.SHA1Hex(e.DER)] = rec
		}
	}
	if len(settings) > 0 {
		doc := plist.Dict{
			"trustList":    settings,
			"trustVersion": int64(1),
		}
		data, err := plist.Marshal(doc)
		if err != nil {
			return fmt.Errorf("applestore: marshal trust settings: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dir, TrustSettingsName), data, 0o644); err != nil {
			return fmt.Errorf("applestore: %w", err)
		}
	}
	return nil
}

func fileNameFor(e *store.TrustEntry, seen map[string]int) string {
	base := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		case r == ' ':
			return '_'
		default:
			return -1
		}
	}, e.Label)
	if base == "" {
		base = e.Fingerprint.Short()
	}
	if n := seen[base]; n > 0 {
		seen[base]++
		return fmt.Sprintf("%s_%d.cer", base, n)
	}
	seen[base] = 1
	return base + ".cer"
}

// trustRecord builds the per-cert trust-settings array, or nil when the
// entry is plainly trusted for every purpose (the default).
func trustRecord(e *store.TrustEntry) plist.Array {
	isDefault := true
	for _, p := range defaultPurposes {
		if e.TrustFor(p) != store.Trusted {
			isDefault = false
			break
		}
	}
	if isDefault && len(e.DistrustAfter) == 0 {
		return nil
	}
	var arr plist.Array
	for _, p := range defaultPurposes {
		pol, _ := policyFor(p)
		rec := plist.Dict{"kSecTrustSettingsPolicy": pol}
		switch e.TrustFor(p) {
		case store.Trusted:
			rec["kSecTrustSettingsResult"] = resultTrustRoot
		case store.Distrusted, store.MustVerify, store.Unspecified:
			rec["kSecTrustSettingsResult"] = resultDeny
		}
		if da, ok := e.DistrustAfterFor(p); ok {
			// Not a real Apple key: Apple has no partial distrust, which is
			// why derivatives of its format cannot express it either. We
			// store it under a clearly non-standard key so round trips
			// within this toolchain are lossless while flagging the
			// extension.
			rec["x-repro-distrust-after"] = da.UTC()
		}
		arr = append(arr, rec)
	}
	return arr
}

// ReadDir reads a roots directory and optional trust-settings file.
func ReadDir(dir string) ([]*store.TrustEntry, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("applestore: %w", err)
	}
	settings, err := readSettings(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if de.IsDir() || de.Name() == TrustSettingsName {
			continue
		}
		names = append(names, de.Name())
	}
	sort.Strings(names)

	var entries []*store.TrustEntry
	for _, name := range names {
		der, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("applestore: %w", err)
		}
		e, err := store.NewEntry(der)
		if err != nil {
			return nil, fmt.Errorf("applestore: %s: %w", name, err)
		}
		e.Label = strings.TrimSuffix(name, filepath.Ext(name))
		if rec, ok := settings[certutil.SHA1Hex(der)]; ok {
			applySettings(e, rec)
		} else {
			for _, p := range defaultPurposes {
				e.SetTrust(p, store.Trusted)
			}
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func readSettings(dir string) (map[string]plist.Array, error) {
	data, err := os.ReadFile(filepath.Join(dir, TrustSettingsName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("applestore: %w", err)
	}
	v, err := plist.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("applestore: trust settings: %w", err)
	}
	doc, ok := v.(plist.Dict)
	if !ok {
		return nil, fmt.Errorf("applestore: trust settings root is %T, want dict", v)
	}
	tl, ok := doc["trustList"].(plist.Dict)
	if !ok {
		return nil, fmt.Errorf("applestore: trust settings missing trustList dict")
	}
	out := make(map[string]plist.Array, len(tl))
	for sha1hex, rec := range tl {
		arr, ok := rec.(plist.Array)
		if !ok {
			return nil, fmt.Errorf("applestore: trustList[%s] is %T, want array", sha1hex, rec)
		}
		out[strings.ToLower(sha1hex)] = arr
	}
	return out, nil
}

func applySettings(e *store.TrustEntry, arr plist.Array) {
	for _, el := range arr {
		rec, ok := el.(plist.Dict)
		if !ok {
			continue
		}
		pol, _ := rec["kSecTrustSettingsPolicy"].(string)
		p, ok := purposeFor(pol)
		if !ok {
			continue
		}
		result, _ := rec["kSecTrustSettingsResult"].(int64)
		switch result {
		case resultTrustRoot:
			e.SetTrust(p, store.Trusted)
		case resultDeny:
			e.SetTrust(p, store.Distrusted)
		}
		if da, ok := rec["x-repro-distrust-after"].(time.Time); ok {
			e.SetDistrustAfter(p, da)
		}
	}
}
