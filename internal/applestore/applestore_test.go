package applestore

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/testcerts"
)

func TestDirRoundTripDefaultTrust(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(3, store.ServerAuth, store.EmailProtection, store.CodeSigning)
	if err := WriteDir(dir, in); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	// Fully-trusted entries need no trust-settings file.
	if _, err := os.Stat(filepath.Join(dir, TrustSettingsName)); !os.IsNotExist(err) {
		t.Error("trust settings should be absent for default trust")
	}
	out, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("entries = %d", len(out))
	}
	for _, e := range out {
		for _, p := range []store.Purpose{store.ServerAuth, store.EmailProtection, store.CodeSigning} {
			if !e.TrustedFor(p) {
				t.Errorf("%s should default-trust %s", e.Label, p)
			}
		}
	}
}

func TestDirRoundTripRestrictedTrust(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(2, store.ServerAuth, store.EmailProtection, store.CodeSigning)
	// Restrict the first entry to email-only (like the six email-only
	// roots Apple trusts for TLS in Table 6).
	in[0].SetTrust(store.ServerAuth, store.Distrusted)
	in[0].SetTrust(store.CodeSigning, store.Distrusted)
	if err := WriteDir(dir, in); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, TrustSettingsName)); err != nil {
		t.Fatalf("trust settings file should exist: %v", err)
	}
	out, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var restricted, def *store.TrustEntry
	for _, e := range out {
		if e.Fingerprint == in[0].Fingerprint {
			restricted = e
		} else {
			def = e
		}
	}
	if restricted == nil || def == nil {
		t.Fatal("entries not found after round trip")
	}
	if restricted.TrustedFor(store.ServerAuth) || restricted.TrustedFor(store.CodeSigning) {
		t.Error("restricted entry regained denied purposes")
	}
	if !restricted.TrustedFor(store.EmailProtection) {
		t.Error("restricted entry lost email trust")
	}
	if !def.TrustedFor(store.ServerAuth) {
		t.Error("default entry lost TLS trust")
	}
}

func TestDistrustAfterExtensionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(1, store.ServerAuth, store.EmailProtection, store.CodeSigning)
	da := time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC)
	in[0].SetDistrustAfter(store.ServerAuth, da)
	if err := WriteDir(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out[0].DistrustAfterFor(store.ServerAuth)
	if !ok || !got.Equal(da) {
		t.Errorf("distrust-after round trip: %v, %v", got, ok)
	}
}

func TestMustVerifyIsLossyToDeny(t *testing.T) {
	// The Apple vocabulary has no MustVerify: it degrades to Deny. This is
	// deliberate fidelity loss mirroring the real format.
	dir := t.TempDir()
	in := testcerts.Entries(1, store.ServerAuth, store.EmailProtection, store.CodeSigning)
	in[0].SetTrust(store.CodeSigning, store.MustVerify)
	if err := WriteDir(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := out[0].TrustFor(store.CodeSigning); got != store.Distrusted {
		t.Errorf("MustVerify should degrade to Distrusted in Apple format, got %v", got)
	}
}

func TestDuplicateLabels(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(2, store.ServerAuth, store.EmailProtection, store.CodeSigning)
	in[0].Label = "Duplicate"
	in[1].Label = "Duplicate"
	if err := WriteDir(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("entries = %d, want 2", len(out))
	}
}

func TestReadDirCorruptCert(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.cer"), []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Error("corrupt certificate should error")
	}
}

func TestReadDirCorruptSettings(t *testing.T) {
	dir := t.TempDir()
	in := testcerts.Entries(1, store.ServerAuth, store.EmailProtection, store.CodeSigning)
	if err := WriteDir(dir, in); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, TrustSettingsName), []byte("not a plist"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir); err == nil {
		t.Error("corrupt trust settings should error")
	}
}

func TestReadDirMissing(t *testing.T) {
	if _, err := ReadDir("/definitely/not/here"); err == nil {
		t.Error("missing dir should error")
	}
}
