package service_test

// Guard tests for the SSE path's writer plumbing under concurrency: the
// statusRecorder wrapper must keep exposing the underlying Flusher via
// Unwrap while many /v1/events/watch streams are live, or every stream
// would stall after headers (http.NewResponseController falls back to a
// no-op flush and the client never sees an event).

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/tracker"
)

// stubFeed is an in-memory EventFeed: tests append events with emit and
// every subscriber receives them live.
type stubFeed struct {
	mu     sync.Mutex
	events []tracker.Event
	subs   map[int]chan tracker.Event
	nextID int
}

func newStubFeed() *stubFeed {
	return &stubFeed{subs: map[int]chan tracker.Event{}}
}

func (f *stubFeed) emit(ev tracker.Event) {
	f.mu.Lock()
	ev.Seq = uint64(len(f.events) + 1)
	if ev.ObservedAt.IsZero() {
		ev.ObservedAt = time.Now()
	}
	f.events = append(f.events, ev)
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, like the tracker's fan-out
		}
	}
	f.mu.Unlock()
}

func (f *stubFeed) Replay(filter tracker.Filter) []tracker.Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []tracker.Event
	for _, ev := range f.events {
		if filter.Match(ev) {
			out = append(out, ev)
		}
	}
	return out
}

func (f *stubFeed) Subscribe(buffer int) (<-chan tracker.Event, func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := f.nextID
	f.nextID++
	ch := make(chan tracker.Event, buffer)
	f.subs[id] = ch
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			f.mu.Lock()
			delete(f.subs, id)
			close(ch)
			f.mu.Unlock()
		})
	}
}

func (f *stubFeed) LastSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return uint64(len(f.events))
}

func TestSSEStatusRecorderUnwrapUnderLoad(t *testing.T) {
	// A private server: AttachEvents on the shared fixture would leak the
	// feed into feed-less tests.
	eco, _ := fixture(t)
	srv := service.New(eco.DB, service.Config{})
	feed := newStubFeed()
	srv.AttachEvents(feed)

	web := httptest.NewServer(srv.Handler())
	defer web.Close()

	// Many concurrent streams, all waiting for a live event that is
	// emitted only after every stream is connected — so delivery proves
	// the flush path works through the statusRecorder on each of them.
	const streams = 16
	var connected, delivered sync.WaitGroup
	connected.Add(streams)
	delivered.Add(streams)
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		go func() {
			resp, err := web.Client().Get(web.URL + "/v1/events/watch")
			if err != nil {
				connected.Done()
				delivered.Done()
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				connected.Done()
				delivered.Done()
				errs <- nil
				return
			}
			connected.Done()
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				if strings.HasPrefix(sc.Text(), "data: ") {
					delivered.Done()
					return
				}
			}
			delivered.Done()
			errs <- sc.Err()
		}()
	}
	connected.Wait()

	// All streams are connected and past WriteHeader; now emit.
	feed.emit(tracker.Event{Type: tracker.RootRemoved, Provider: "NSS", Version: "v2", Date: time.Now()})

	done := make(chan struct{})
	go func() { delivered.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("streams did not all receive the event — SSE flush stalled under load")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("stream error: %v", err)
		}
	}
}

// TestStatusRecorderUnwrapReplayFlush pins the flush-on-replay path: an
// event emitted before the stream opens must arrive on the very first
// flush, through the instrument middleware's statusRecorder. If Unwrap
// were dropped from the wrapper, the replay would sit in the buffer
// until the handler returned and this test would time out.
func TestStatusRecorderUnwrapReplayFlush(t *testing.T) {
	eco, _ := fixture(t)
	srv := service.New(eco.DB, service.Config{})
	feed := newStubFeed()
	feed.emit(tracker.Event{Type: tracker.RootAdded, Provider: "NSS", Version: "v1", Date: time.Now()})
	srv.AttachEvents(feed)

	web := httptest.NewServer(srv.Handler())
	defer web.Close()

	resp, err := web.Client().Get(web.URL + "/v1/events/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status = %d", resp.StatusCode)
	}
	got := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				got <- sc.Text()
				return
			}
		}
	}()
	select {
	case line := <-got:
		if !strings.Contains(line, "root-added") {
			t.Fatalf("replayed line = %q", line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replayed event never flushed through the statusRecorder")
	}
}
