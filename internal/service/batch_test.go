package service_test

// Tests for the /v1/verify/batch NDJSON pipeline: ordering, parity with
// the single-verify endpoint, per-line error isolation, oversized-line
// handling, client-disconnect drain, and generation pinning across a
// mid-batch hot swap.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/certgen"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/testcerts"
)

// batchLineOut is one decoded NDJSON response line.
type batchLineOut struct {
	Seq         int    `json:"seq"`
	ChainSHA256 string `json:"chain_sha256"`
	Purpose     string `json:"purpose"`
	At          string `json:"at"`
	UserAgent   *struct {
		Browser   string `json:"browser"`
		Provider  string `json:"provider"`
		Traceable bool   `json:"traceable"`
	} `json:"user_agent"`
	Verdicts []struct {
		Store             string    `json:"store"`
		Provider          string    `json:"provider"`
		Date              time.Time `json:"date"`
		Outcome           string    `json:"outcome"`
		AnchorFingerprint string    `json:"anchor"`
		AnchorLabel       string    `json:"anchor_label"`
		Error             string    `json:"error"`
		Cached            bool      `json:"cached"`
	} `json:"verdicts"`
	Error string `json:"error"`
}

// postBatch drives the handler with an NDJSON body and decodes every
// response line, failing the test on any line that is not valid JSON.
func postBatch(t *testing.T, srv *service.Server, body string) []batchLineOut {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/verify/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", res.StatusCode, rec.Body.String())
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var out []batchLineOut
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line batchLineOut
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("response line %d is not valid JSON: %v\n%s", len(out), err, sc.Text())
		}
		out = append(out, line)
	}
	return out
}

// derChain converts a PEM chain into the chain_der base64 form.
func derChain(t testing.TB, chainPEM string) []string {
	t.Helper()
	var ders []string
	rest := []byte(chainPEM)
	for {
		var block *pem.Block
		block, rest = pem.Decode(rest)
		if block == nil {
			break
		}
		ders = append(ders, base64.StdEncoding.EncodeToString(block.Bytes))
	}
	if len(ders) == 0 {
		t.Fatal("no PEM blocks in fixture chain")
	}
	return ders
}

func ndline(t *testing.T, v map[string]any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw) + "\n"
}

func TestBatchMatchesSingleVerify(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)

	// The single-verify answer is the oracle.
	status, single := postVerify(t, srv, map[string]any{
		"chain_pem": chain, "stores": []string{"NSS", "Microsoft"}, "at": "2020-11-15",
	})
	if status != http.StatusOK {
		t.Fatalf("single verify status %d", status)
	}
	wantHash := single["chain_sha256"].(string)
	singleVerdicts := single["verdicts"].([]any)

	body := ndline(t, map[string]any{
		"chain_pem": chain, "stores": []string{"NSS", "Microsoft"}, "at": "2020-11-15",
	}) + ndline(t, map[string]any{
		"chain_der": derChain(t, chain), "stores": []string{"NSS", "Microsoft"}, "at": "2020-11-15",
	})
	lines := postBatch(t, srv, body)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for i, line := range lines {
		if line.Seq != i {
			t.Errorf("line %d has seq %d", i, line.Seq)
		}
		if line.Error != "" {
			t.Fatalf("line %d errored: %s", i, line.Error)
		}
		// chain_der and chain_pem must agree on the chain identity: the
		// hash is over the same DER bytes either way.
		if line.ChainSHA256 != wantHash {
			t.Errorf("line %d chain hash %s, want %s", i, line.ChainSHA256, wantHash)
		}
		if line.At == "" {
			t.Errorf("line %d missing at", i)
		}
		if len(line.Verdicts) != len(singleVerdicts) {
			t.Fatalf("line %d has %d verdicts, want %d", i, len(line.Verdicts), len(singleVerdicts))
		}
		for j, v := range line.Verdicts {
			want := singleVerdicts[j].(map[string]any)
			if v.Store != want["store"].(string) {
				t.Errorf("line %d verdict %d store %q, want %q", i, j, v.Store, want["store"])
			}
			if v.Outcome != want["outcome"].(string) {
				t.Errorf("line %d verdict %d outcome %q, want %q", i, j, v.Outcome, want["outcome"])
			}
			if anchor, _ := want["anchor"].(string); v.AnchorFingerprint != anchor {
				t.Errorf("line %d verdict %d anchor %q, want %q", i, j, v.AnchorFingerprint, anchor)
			}
			if !v.Cached {
				// The single verify above already warmed the cache.
				t.Errorf("line %d verdict %d not served from the verdict cache", i, j)
			}
		}
	}
}

func TestBatchUserAgentRouting(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)

	body := ndline(t, map[string]any{
		"chain_pem": chain, "user_agent": uaFirefox, "at": "2020-11-15",
	}) + ndline(t, map[string]any{
		// Untraceable with no fallback stores: a per-line error, with the
		// routing explanation attached.
		"chain_pem": chain, "user_agent": "okhttp/4.9.0",
	})
	lines := postBatch(t, srv, body)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	ff := lines[0]
	if ff.UserAgent == nil || ff.UserAgent.Provider != "NSS" || !ff.UserAgent.Traceable {
		t.Fatalf("firefox line user_agent = %+v, want NSS/traceable", ff.UserAgent)
	}
	if len(ff.Verdicts) != 1 || ff.Verdicts[0].Provider != "NSS" {
		t.Fatalf("firefox line verdicts = %+v, want one NSS verdict", ff.Verdicts)
	}
	bad := lines[1]
	if bad.Error == "" || bad.UserAgent == nil || bad.UserAgent.Traceable {
		t.Fatalf("okhttp line = %+v, want error with untraceable user_agent info", bad)
	}
}

func TestBatchMalformedLineMidStream(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)
	good := ndline(t, map[string]any{"chain_pem": chain, "stores": []string{"NSS"}, "at": "2020-11-15"})

	before := srv.Metrics().BatchRejects()
	body := good + "{this is not json\n" + `{"chain_pem":""}` + "\n" + good
	lines := postBatch(t, srv, body)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (stream must continue past bad lines)", len(lines))
	}
	if lines[0].Error != "" || len(lines[0].Verdicts) == 0 {
		t.Fatalf("line 0 = %+v, want verdicts", lines[0])
	}
	if !strings.Contains(lines[1].Error, "invalid JSON") {
		t.Fatalf("line 1 error = %q, want invalid JSON", lines[1].Error)
	}
	if !strings.Contains(lines[2].Error, "no certificates") {
		t.Fatalf("line 2 error = %q, want empty-chain error", lines[2].Error)
	}
	if lines[3].Error != "" || len(lines[3].Verdicts) == 0 {
		t.Fatalf("line 3 = %+v, want verdicts", lines[3])
	}
	if got := srv.Metrics().BatchRejects() - before; got != 2 {
		t.Errorf("batch rejects grew by %d, want 2", got)
	}
	if depth := srv.Metrics().BatchQueueDepth(); depth != 0 {
		t.Errorf("queue depth %d after batch, want 0", depth)
	}
}

func TestBatchUnknownStoreAndBadAt(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)
	body := ndline(t, map[string]any{"chain_pem": chain, "stores": []string{"NetBSD"}}) +
		ndline(t, map[string]any{"chain_pem": chain, "at": "yesterday"}) +
		ndline(t, map[string]any{"chain_pem": chain, "purpose": "world-domination"})
	lines := postBatch(t, srv, body)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	for i, want := range []string{"unknown provider", "invalid time", "purpose"} {
		if !strings.Contains(lines[i].Error, want) {
			t.Errorf("line %d error = %q, want %q", i, lines[i].Error, want)
		}
	}
}

func TestBatchOversizedLine(t *testing.T) {
	eco, _ := fixture(t)
	// A private server with a tiny per-line cap; the body cap must NOT
	// apply to the stream as a whole.
	inner := service.New(eco.DB, service.Config{MaxBodyBytes: 2048})
	small := ndline(t, map[string]any{"chain_pem": "x", "stores": []string{"NSS"}})
	huge := `{"chain_pem":"` + strings.Repeat("A", 64<<10) + `"}` + "\n"
	lines := postBatch(t, inner, small+huge+small)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[1].Error, "exceeds 2048 bytes") {
		t.Fatalf("oversized line error = %q", lines[1].Error)
	}
	// The stream continued: line 2 got its (chain-parse) answer.
	if lines[2].Seq != 2 {
		t.Fatalf("line after oversized has seq %d, want 2", lines[2].Seq)
	}
	// Total body (>64KiB) exceeded MaxBodyBytes many times over, yet the
	// batch served — while the single endpoint refuses such a body.
	req := httptest.NewRequest(http.MethodPost, "/v1/verify", strings.NewReader(huge))
	rec := httptest.NewRecorder()
	inner.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("single verify with oversized body: status %d, want 413", rec.Code)
	}
}

func TestBatchClientDisconnectDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("drain test skipped in -short mode")
	}
	eco, _ := fixture(t)
	inner := service.New(eco.DB, service.Config{})
	ts := httptest.NewServer(inner.Handler())
	defer ts.Close()
	chain, _ := symantecChain(t, eco)
	line := ndline(t, map[string]any{"chain_pem": chain, "stores": []string{"NSS"}, "at": "2020-11-15"})

	baseline := runtime.NumGoroutine()

	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/verify/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Feed lines until the pipe breaks (request cancelled).
		for {
			if _, err := io.WriteString(pw, line); err != nil {
				return
			}
		}
	}()
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a few verdict lines to prove the stream is live, then vanish.
	br := bufio.NewReader(res.Body)
	for i := 0; i < 3; i++ {
		if _, err := br.ReadString('\n'); err != nil {
			t.Fatalf("reading verdict line %d: %v", i, err)
		}
	}
	cancel()
	res.Body.Close()
	pw.Close()

	// Workers, reader and writer must all exit promptly and account for
	// every queued job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if inner.Metrics().BatchQueueDepth() == 0 && runtime.NumGoroutine() <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("pipeline did not drain: queue=%d goroutines=%d (baseline %d)\n%s",
				inner.Metrics().BatchQueueDepth(), runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestBatchHotSwapSingleGeneration pins the generation contract: a swap
// installed while a batch is streaming must not leak into it — every
// verdict in one batch comes from the generation the batch started on.
func TestBatchHotSwapSingleGeneration(t *testing.T) {
	roots := testcerts.Roots(1)
	snapDate := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	mkdb := func(trust bool) *store.Database {
		db := store.NewDatabase()
		snap := store.NewSnapshot("Solo", snapDate.Format("2006-01-02"), snapDate)
		e, err := store.NewTrustedEntry(roots[0].DER, store.ServerAuth)
		if err != nil {
			t.Fatal(err)
		}
		if !trust {
			e.SetTrust(store.ServerAuth, store.Distrusted)
		}
		snap.Add(e)
		if err := db.AddSnapshot(snap); err != nil {
			t.Fatal(err)
		}
		return db
	}
	leafDER, _, err := roots[0].IssueLeaf(testcerts.Pool(), certgen.LeafSpec{
		CommonName: "swap.example.test",
		DNSNames:   []string{"swap.example.test"},
		NotBefore:  time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:   time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	var pemBuf bytes.Buffer
	if err := pem.Encode(&pemBuf, &pem.Block{Type: "CERTIFICATE", Bytes: leafDER}); err != nil {
		t.Fatal(err)
	}
	line := ndline(t, map[string]any{"chain_pem": pemBuf.String(), "stores": []string{"Solo"}})

	inner := service.New(mkdb(true), service.Config{})
	ts := httptest.NewServer(inner.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify/batch", pr)
	if err != nil {
		t.Fatal(err)
	}
	resCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	const perPhase = 50
	for i := 0; i < perPhase; i++ {
		if _, err := io.WriteString(pw, line); err != nil {
			t.Fatal(err)
		}
	}
	// Give the pipeline a moment to chew the first phase, then swap to a
	// database where the same chain must FAIL, and stream the rest.
	time.Sleep(200 * time.Millisecond)
	inner.Swap(mkdb(false))
	for i := 0; i < perPhase; i++ {
		if _, err := io.WriteString(pw, line); err != nil {
			t.Fatal(err)
		}
	}
	pw.Close()

	var res *http.Response
	select {
	case res = <-resCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(30 * time.Second):
		t.Fatal("batch response never arrived")
	}
	defer res.Body.Close()

	outcomes := map[string]int{}
	sc := bufio.NewScanner(res.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var l batchLineOut
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if l.Error != "" {
			t.Fatalf("line %d errored: %s", n, l.Error)
		}
		for _, v := range l.Verdicts {
			outcomes[v.Outcome]++
		}
		n++
	}
	if n != 2*perPhase {
		t.Fatalf("got %d lines, want %d", n, 2*perPhase)
	}
	if len(outcomes) != 1 || outcomes["ok"] != 2*perPhase {
		t.Fatalf("mixed verdicts across the swap: %v (want all ok from the pinned generation)", outcomes)
	}
	// New requests DO see the new generation.
	rec := httptest.NewRecorder()
	sreq := httptest.NewRequest(http.MethodPost, "/v1/verify",
		strings.NewReader(fmt.Sprintf(`{"chain_pem":%q,"stores":["Solo"]}`, pemBuf.String())))
	inner.Handler().ServeHTTP(rec, sreq)
	var out struct {
		Verdicts []struct {
			Outcome string `json:"outcome"`
		} `json:"verdicts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Verdicts) != 1 || out.Verdicts[0].Outcome == "ok" {
		t.Fatalf("post-swap single verify = %+v, want a non-ok outcome", out.Verdicts)
	}
}
