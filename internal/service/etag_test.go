package service_test

// Conditional-request coverage: the read endpoints advertise an ETag
// derived from the serving database's canonical archive hash, honour
// If-None-Match with 304s, and rotate the tag when the database is
// hot-swapped. Error responses must never short-circuit into a 304.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// condGet issues a GET with an optional If-None-Match header and returns
// the raw response.
func condGet(t *testing.T, srv *service.Server, path, ifNoneMatch string) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec.Result()
}

func TestETagConditionalGet(t *testing.T) {
	db := swapDB(t, "2020-01-01", 0, 1, 2)
	srv := service.New(db, service.Config{})

	res := condGet(t, srv, "/v1/providers", "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/providers: %d", res.StatusCode)
	}
	etag := res.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) || len(etag) != 64+2 {
		t.Fatalf("ETag %q is not a quoted 64-hex tag", etag)
	}

	// Same tag on a conditional request → 304 with an empty body.
	res = condGet(t, srv, "/v1/providers", etag)
	if res.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: %d, want 304", res.StatusCode)
	}
	if res.Header.Get("ETag") != etag {
		t.Fatalf("304 carries ETag %q, want %q", res.Header.Get("ETag"), etag)
	}

	// Weak validators, comma lists and the wildcard all match.
	for _, inm := range []string{
		"W/" + etag,
		`"deadbeef", ` + etag,
		"*",
	} {
		if res := condGet(t, srv, "/v1/providers", inm); res.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: %d, want 304", inm, res.StatusCode)
		}
	}

	// A stale tag still gets a full response.
	if res := condGet(t, srv, "/v1/providers", `"0000"`); res.StatusCode != http.StatusOK {
		t.Fatalf("non-matching If-None-Match: %d, want 200", res.StatusCode)
	}

	// The tag is shared across read endpoints: same generation, same hash.
	fp := fingerprintOf(t, db, 0)
	for _, path := range []string{
		"/v1/roots/" + fp,
		"/v1/diff?a=NSS&b=Debian",
	} {
		res := condGet(t, srv, path, "")
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, res.StatusCode)
		}
		if got := res.Header.Get("ETag"); got != etag {
			t.Errorf("%s ETag %q, want %q", path, got, etag)
		}
		if res := condGet(t, srv, path, etag); res.StatusCode != http.StatusNotModified {
			t.Errorf("conditional GET %s: %d, want 304", path, res.StatusCode)
		}
	}
}

func TestETagRotatesOnSwap(t *testing.T) {
	srv := service.New(swapDB(t, "2020-01-01", 0, 1, 2), service.Config{})
	res := condGet(t, srv, "/v1/providers", "")
	etag := res.Header.Get("ETag")

	srv.Swap(swapDB(t, "2020-01-01", 1, 2, 3))

	// The old tag no longer matches; the response carries a new one.
	res = condGet(t, srv, "/v1/providers", etag)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("conditional GET after swap: %d, want 200", res.StatusCode)
	}
	fresh := res.Header.Get("ETag")
	if fresh == etag || fresh == "" {
		t.Fatalf("ETag did not rotate on swap (old %q, new %q)", etag, fresh)
	}
	if res := condGet(t, srv, "/v1/providers", fresh); res.StatusCode != http.StatusNotModified {
		t.Fatalf("fresh tag conditional GET: %d, want 304", res.StatusCode)
	}
}

func TestETagNeverMasksErrors(t *testing.T) {
	srv := service.New(swapDB(t, "2020-01-01", 0, 1), service.Config{})

	// Unknown-but-well-formed fingerprint: 404, even with a wildcard INM.
	miss := strings.Repeat("ab", 32)
	if res := condGet(t, srv, "/v1/roots/"+miss, "*"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown root with If-None-Match *: %d, want 404", res.StatusCode)
	}
	// Malformed fingerprint: 400.
	if res := condGet(t, srv, "/v1/roots/nothex", "*"); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed fingerprint with If-None-Match *: %d, want 400", res.StatusCode)
	}
	// Unresolvable diff ref: 404 beats 304.
	if res := condGet(t, srv, "/v1/diff?a=NSS&b=NoSuchStore", "*"); res.StatusCode != http.StatusNotFound {
		t.Fatalf("bad diff ref with If-None-Match *: %d, want 404", res.StatusCode)
	}
}
