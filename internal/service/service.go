// Package service is the serving layer over the trust-anchor database: a
// concurrent HTTP API answering the question the offline pipeline only
// answers in batch — which stores trust this root, and does this chain
// verify, as seen by each client's root store (§6–§7 made queryable).
//
// The subsystem is stdlib-only (net/http, log/slog, expvar) like the rest
// of the module. Design notes:
//
//   - The database, its fingerprint → (provider, version) inverted index
//     (RootIndex) and the caches keyed on its snapshots live together in
//     one immutable state struct behind an atomic pointer. Reads need no
//     locks; Swap installs a freshly ingested database without dropping a
//     single in-flight request — the hot-reload path internal/tracker
//     drives.
//   - verify.Verifier construction (cert-pool building) is the expensive
//     step, so verifiers are cached per snapshot in a sharded read-through
//     cache; verdicts are additionally memoized in an LRU keyed on
//     (chain-hash, snapshot, purpose, dns, time). Both caches belong to
//     the state they were built against and are dropped wholesale on swap,
//     so a re-ingested snapshot can never serve stale verdicts.
//   - POST /v1/verify fans out across the requested stores under a bounded
//     worker semaphore and honours per-request context timeouts.
//   - GET /v1/events replays the tracker's change-event log and
//     /v1/events/watch streams it live (SSE) when a tracker is attached.
package service

import (
	"context"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/obs"
	"repro/internal/simulate"
	"repro/internal/store"
)

// defaultWorkers sizes the verify semaphore: chain verification is CPU-bound
// (signature checks), so a small multiple of the core count saturates the
// machine without unbounded goroutine pileup.
func defaultWorkers() int {
	if n := 2 * runtime.NumCPU(); n > 4 {
		return n
	}
	return 4
}

// Config tunes the server. The zero value is usable; see the Default*
// constants.
type Config struct {
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds each request's context (default 10s).
	RequestTimeout time.Duration
	// WatchTimeout bounds an /v1/events/watch stream (default 5m) —
	// watch requests are exempt from RequestTimeout by design.
	WatchTimeout time.Duration
	// VerifyWorkers bounds concurrent per-store verifications across ALL
	// in-flight verify requests (default 2×NumCPU, min 4).
	VerifyWorkers int
	// BatchWorkers sizes the per-batch decode/verify/encode worker set of
	// POST /v1/verify/batch (default VerifyWorkers). Cold verifications
	// inside a batch additionally take a VerifyWorkers slot, so batches
	// share verification capacity with interactive requests rather than
	// multiplying it.
	BatchWorkers int
	// VerdictCacheSize is the LRU capacity (default 4096 verdicts).
	VerdictCacheSize int
	// Logger receives request logs; slog.Default() when nil.
	Logger *slog.Logger
	// Tracer records request traces. A default in-process tracer is built
	// when nil; Config.Tracer lets cmd/trustd share one tracer between the
	// server and the tracker so reload traces and request traces land in
	// the same /debug/traces ring.
	Tracer *obs.Tracer
}

// Defaults for Config zero values.
//
// DefaultMaxBodyBytes is the single authority on request-body size across
// every POST route: withTimeout wraps each non-batch body in an
// http.MaxBytesReader with Config.MaxBodyBytes, and the batch endpoint
// applies the same value to each NDJSON line. New POST routes get the cap
// for free; none may carve out a different limit.
const (
	DefaultMaxBodyBytes     = 1 << 20
	DefaultRequestTimeout   = 10 * time.Second
	DefaultWatchTimeout     = 5 * time.Minute
	DefaultVerdictCacheSize = 4096
)

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.WatchTimeout <= 0 {
		c.WatchTimeout = DefaultWatchTimeout
	}
	if c.VerifyWorkers <= 0 {
		c.VerifyWorkers = defaultWorkers()
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = c.VerifyWorkers
	}
	if c.VerdictCacheSize <= 0 {
		c.VerdictCacheSize = DefaultVerdictCacheSize
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(obs.Options{Logger: c.Logger})
	}
	return c
}

// dbState is one immutable serving generation: a database, the index built
// over it, and the caches keyed on its snapshots. Handlers load it once at
// entry and use that generation for the whole request, so a concurrent
// Swap can never show a request half of one database and half of another.
type dbState struct {
	db        *store.Database
	index     *RootIndex
	verifiers *verifierCache
	verdicts  *lruCache

	// epoch is the generation ordinal: locally installed generations count
	// up from 1; generations installed from a cluster origin (SwapArchive)
	// carry the origin's epoch, so a whole fleet agrees on which
	// generation is newest.
	epoch uint64

	// etagVal is the generation's entity tag — the archive content hash of
	// db — computed lazily by dbState.etag on first conditional use, or
	// pre-seeded by SwapArchive when the generation was decoded from an
	// archive whose hash is already known.
	etagOnce sync.Once
	etagVal  string

	// The what-if engine and its sweep ranking are pure functions of db,
	// so both are built at most once per generation (first simulate
	// request) and die with it on swap — a stale ranking can never
	// outlive its database. See simulate.go.
	simOnce   sync.Once
	simEngine *simulate.Engine
	sweepOnce sync.Once
	sweepRes  *simulate.SweepResult
	sweepDur  time.Duration
}

// Server serves the trust-anchor API over an atomically swappable database.
type Server struct {
	cfg     Config
	state   atomic.Pointer[dbState]
	events  EventFeed
	sem     chan struct{}
	metrics *Metrics
	tracer  *obs.Tracer
	log     *slog.Logger
	mux     *http.ServeMux
	handler http.Handler

	// epochCounter allocates local generation ordinals; SwapArchive fast-
	// forwards it to the origin's epoch so local and remote swaps never
	// hand out the same epoch twice.
	epochCounter atomic.Uint64

	// extraStats are additional metric-family providers (cluster origin or
	// replica) merged into /metrics/prometheus at scrape time.
	extraStats []StatsSource

	// exempt lists mounted path prefixes that RequestTimeout must not
	// apply to (long-polls, archive downloads); they get WatchTimeout.
	exempt []string
}

// New builds a server over the database: indexes every snapshot and wires
// the routes. The database must not be mutated after being handed over;
// replace it wholesale with Swap.
func New(db *store.Database, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		tracer:  cfg.Tracer,
		log:     cfg.Logger,
		sem:     make(chan struct{}, cfg.VerifyWorkers),
		mux:     http.NewServeMux(),
	}
	s.install(db, "", s.epochCounter.Add(1))

	s.route("GET /v1/providers", s.handleProviders)
	s.route("GET /v1/providers/{provider}/snapshots", s.handleSnapshots)
	s.route("GET /v1/roots/{fingerprint}", s.handleRoot)
	s.route("GET /v1/diff", s.handleDiff)
	s.route("POST /v1/verify", s.handleVerify)
	s.route("POST "+batchPath, s.handleVerifyBatch)
	s.route("POST /v1/simulate", s.handleSimulate)
	s.route("GET /v1/simulate/sweep", s.handleSimulateSweep)
	s.route("GET /v1/events", s.handleEvents)
	s.route("GET /v1/events/watch", s.handleEventsWatch)
	s.mux.Handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	s.mux.Handle("GET /metrics", s.metrics.handler())
	s.mux.Handle("GET /metrics/prometheus", http.HandlerFunc(s.handlePrometheus))
	s.mux.Handle("GET /debug/traces", s.tracer.TracesHandler())
	s.handler = s.withTimeout(s.mux)
	return s
}

// install indexes db and publishes it as the current serving state. tag,
// when non-empty, pre-seeds the generation's entity tag (the archive
// content hash the database was decoded from); otherwise the tag is
// computed lazily on first conditional use.
func (s *Server) install(db *store.Database, tag string, epoch uint64) {
	start := time.Now()
	st := &dbState{
		db:        db,
		index:     BuildIndex(db),
		verifiers: newVerifierCache(s.metrics),
		verdicts:  newLRUCache(s.cfg.VerdictCacheSize),
		epoch:     epoch,
	}
	if tag != "" {
		st.etagOnce.Do(func() { st.etagVal = tag })
	}
	s.state.Store(st)
	s.metrics.recordReload(db)
	s.log.Info("index built",
		"roots", st.index.Size(),
		"snapshots", db.TotalSnapshots(),
		"providers", len(db.Providers()),
		"epoch", epoch,
		"elapsed", time.Since(start).Round(time.Millisecond))
}

// Swap atomically replaces the serving database with a freshly ingested
// one. In-flight requests finish against the generation they started on;
// new requests see the new database immediately. This is the tracker's
// OnReload hook — trustd keeps answering mid-reload with no lock on any
// read path.
func (s *Server) Swap(db *store.Database) {
	s.install(db, "", s.epochCounter.Add(1))
	s.metrics.reloads.Add(1)
}

// SwapArchive installs a database decoded from a rootpack archive whose
// content hash and cluster epoch are already known — the replica's swap
// path. The hash becomes the generation's entity tag immediately (no lazy
// re-encode), so the ETag and X-Rootpack-Hash a replica serves are
// byte-identical to the origin's manifest, and the epoch is adopted so
// every node in the fleet reports the same generation ordinal.
func (s *Server) SwapArchive(db *store.Database, contentHash [archive.HashLen]byte, epoch uint64) {
	// Keep the local counter at least at the adopted epoch so a later
	// plain Swap still moves strictly forward.
	for {
		cur := s.epochCounter.Load()
		if cur >= epoch || s.epochCounter.CompareAndSwap(cur, epoch) {
			break
		}
	}
	s.install(db, `"`+hex.EncodeToString(contentHash[:])+`"`, epoch)
	s.metrics.reloads.Add(1)
}

// cur returns the current serving generation.
func (s *Server) cur() *dbState { return s.state.Load() }

// AttachEvents wires a change-event feed (normally *tracker.Tracker) into
// /v1/events and /v1/events/watch. Call before serving; not safe to change
// while requests are in flight.
func (s *Server) AttachEvents(feed EventFeed) { s.events = feed }

// StatsSource is implemented by subsystems that export their own metric
// families into the server's Prometheus exposition (the tracker, a
// cluster origin or replica).
type StatsSource interface {
	StatsFamilies(prefix string) []obs.MetricFamily
}

// AddStatsSource merges an additional family provider into
// /metrics/prometheus. Call before serving; not safe to call while
// requests are in flight.
func (s *Server) AddStatsSource(src StatsSource) {
	s.extraStats = append(s.extraStats, src)
}

// Mount attaches a subsystem handler (e.g. the cluster origin's
// /cluster/v1/* endpoints) under prefix on the server's mux, sharing the
// listener with the API. Mounted prefixes are exempt from RequestTimeout
// — they serve long-polls and multi-megabyte archive downloads — and are
// bounded by WatchTimeout instead. Call before serving.
func (s *Server) Mount(prefix string, h http.Handler) {
	s.exempt = append(s.exempt, prefix)
	s.mux.Handle(prefix, h)
}

// Generation reports the serving generation's identity: the archive
// content hash of the database (bare hex, no quotes) and the epoch. The
// same values ride every /v1 response as X-Rootpack-Hash/-Epoch headers.
func (s *Server) Generation() (hash string, epoch uint64) {
	st := s.cur()
	return st.hashHex(), st.epoch
}

// route registers an instrumented handler under a Go 1.22 mux pattern.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.metrics.registerRoute(pattern)
	s.mux.Handle(pattern, s.instrument(pattern, h))
}

// instrument wraps an API handler with the observability onion: a trace
// span (joined to the caller's via the W3C traceparent header when one is
// sent), the in-flight gauge, and per-route request/status/latency
// counters. The outbound Traceparent and X-Trace-Id headers let callers
// correlate a response with its entry in /debug/traces.
func (s *Server) instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var (
			ctx  context.Context
			span *obs.Span
		)
		if h := r.Header.Get("traceparent"); h != "" {
			if tp, err := obs.ParseTraceparent(h); err == nil {
				ctx, span = s.tracer.StartRemote(r.Context(), route, tp)
			}
		}
		if span == nil {
			ctx, span = s.tracer.Start(r.Context(), route)
		}
		if hdr := span.Traceparent(); hdr != "" {
			// Direct map assignment: the keys are already canonical, and
			// this runs on every traced request.
			h := w.Header()
			h["Traceparent"] = []string{hdr}
			h["X-Trace-Id"] = []string{hdr[3:35]} // the trace-id field
		}

		s.metrics.inFlight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(ctx))
		elapsed := time.Since(start)
		s.metrics.inFlight.Add(-1)
		s.metrics.record(route, rec.code, elapsed, span.TraceID())

		span.SetAttr("status", strconv.Itoa(rec.code))
		span.End()
	})
}

// Handler returns the root handler: the instrumented mux behind the
// request-timeout and body-limit middleware. Suitable for httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the server's counters (cmd/trustd publishes them; tests
// assert on them).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the server's tracer so debug listeners (cmd/trustd's
// -debug-addr mux) can serve the same trace ring the API writes into.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Index exposes the current root index (benchmarks and embedded callers).
func (s *Server) Index() *RootIndex { return s.cur().index }

// watchPath is exempt from the request timeout: it is a deliberate
// long-lived stream bounded by Config.WatchTimeout instead.
const watchPath = "/v1/events/watch"

// withTimeout bounds every request's context and caps its body size.
// Streaming paths (the SSE watch, NDJSON batches, mounted subsystems) get
// WatchTimeout instead of RequestTimeout; the batch path is additionally
// exempt from the whole-body cap — its stream is unbounded by design and
// each line is capped at MaxBodyBytes inside the pipeline instead.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		timeout := s.cfg.RequestTimeout
		batch := r.URL.Path == batchPath
		if batch || r.URL.Path == watchPath || s.isExempt(r.URL.Path) {
			timeout = s.cfg.WatchTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		if r.Body != nil && !batch {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// isExempt reports whether path falls under a Mount-registered prefix.
// The exempt list is tiny (one or two prefixes) and immutable once
// serving starts, so a linear scan beats any map here.
func (s *Server) isExempt(path string) bool {
	for _, p := range s.exempt {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// Run serves on addr until ctx is cancelled, then drains connections for up
// to drain before forcing the listener closed. This is the cmd/trustd
// serving loop; tests use Handler with httptest instead.
func (s *Server) Run(ctx context.Context, addr string, drain time.Duration) error {
	// Note: no BaseContext tied to ctx — in-flight requests must outlive
	// the cancellation so Shutdown can drain them.
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	s.log.Info("listening", "addr", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("shutting down", "drain", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		s.log.Warn("forced close after drain timeout", "err", err)
		return srv.Close()
	}
	return nil
}
