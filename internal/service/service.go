// Package service is the serving layer over the trust-anchor database: a
// concurrent HTTP API answering the question the offline pipeline only
// answers in batch — which stores trust this root, and does this chain
// verify, as seen by each client's root store (§6–§7 made queryable).
//
// The subsystem is stdlib-only (net/http, log/slog, expvar) like the rest
// of the module. Design notes:
//
//   - A global fingerprint → (provider, version) inverted index is built
//     once at startup (RootIndex); reads need no locks.
//   - verify.Verifier construction (cert-pool building) is the expensive
//     step, so verifiers are cached per snapshot in a sharded read-through
//     cache; verdicts are additionally memoized in an LRU keyed on
//     (chain-hash, snapshot, purpose, dns, time).
//   - POST /v1/verify fans out across the requested stores under a bounded
//     worker semaphore and honours per-request context timeouts.
package service

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"repro/internal/store"
)

// defaultWorkers sizes the verify semaphore: chain verification is CPU-bound
// (signature checks), so a small multiple of the core count saturates the
// machine without unbounded goroutine pileup.
func defaultWorkers() int {
	if n := 2 * runtime.NumCPU(); n > 4 {
		return n
	}
	return 4
}

// Config tunes the server. The zero value is usable; see the Default*
// constants.
type Config struct {
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds each request's context (default 10s).
	RequestTimeout time.Duration
	// VerifyWorkers bounds concurrent per-store verifications across ALL
	// in-flight verify requests (default 2×NumCPU, min 4).
	VerifyWorkers int
	// VerdictCacheSize is the LRU capacity (default 4096 verdicts).
	VerdictCacheSize int
	// Logger receives request logs; slog.Default() when nil.
	Logger *slog.Logger
}

// Defaults for Config zero values.
const (
	DefaultMaxBodyBytes     = 1 << 20
	DefaultRequestTimeout   = 10 * time.Second
	DefaultVerdictCacheSize = 4096
)

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = DefaultRequestTimeout
	}
	if c.VerifyWorkers <= 0 {
		c.VerifyWorkers = defaultWorkers()
	}
	if c.VerdictCacheSize <= 0 {
		c.VerdictCacheSize = DefaultVerdictCacheSize
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server serves the trust-anchor API over one immutable database.
type Server struct {
	cfg       Config
	db        *store.Database
	index     *RootIndex
	verifiers *verifierCache
	verdicts  *lruCache
	sem       chan struct{}
	metrics   *Metrics
	log       *slog.Logger
	mux       *http.ServeMux
	handler   http.Handler
}

// New builds a server over the database: indexes every snapshot and wires
// the routes. The database must not be mutated afterwards.
func New(db *store.Database, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		db:      db,
		metrics: newMetrics(),
		log:     cfg.Logger,
		sem:     make(chan struct{}, cfg.VerifyWorkers),
		mux:     http.NewServeMux(),
	}
	s.verifiers = newVerifierCache(s.metrics)
	s.verdicts = newLRUCache(cfg.VerdictCacheSize)

	start := time.Now()
	s.index = BuildIndex(db)
	s.log.Info("index built",
		"roots", s.index.Size(),
		"snapshots", db.TotalSnapshots(),
		"providers", len(db.Providers()),
		"elapsed", time.Since(start).Round(time.Millisecond))

	s.route("GET /v1/providers", s.handleProviders)
	s.route("GET /v1/providers/{provider}/snapshots", s.handleSnapshots)
	s.route("GET /v1/roots/{fingerprint}", s.handleRoot)
	s.route("GET /v1/diff", s.handleDiff)
	s.route("POST /v1/verify", s.handleVerify)
	s.mux.Handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	s.mux.Handle("GET /metrics", s.metrics.handler())
	s.handler = s.withTimeout(s.mux)
	return s
}

// route registers an instrumented handler under a Go 1.22 mux pattern.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.metrics.instrument(pattern, h))
}

// Handler returns the root handler: the instrumented mux behind the
// request-timeout and body-limit middleware. Suitable for httptest.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the server's counters (cmd/trustd publishes them; tests
// assert on them).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Index exposes the root index (benchmarks and embedded callers).
func (s *Server) Index() *RootIndex { return s.index }

// withTimeout bounds every request's context and caps its body size.
func (s *Server) withTimeout(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// Run serves on addr until ctx is cancelled, then drains connections for up
// to drain before forcing the listener closed. This is the cmd/trustd
// serving loop; tests use Handler with httptest instead.
func (s *Server) Run(ctx context.Context, addr string, drain time.Duration) error {
	// Note: no BaseContext tied to ctx — in-flight requests must outlive
	// the cancellation so Shutdown can drain them.
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	s.log.Info("listening", "addr", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.log.Info("shutting down", "drain", drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		s.log.Warn("forced close after drain timeout", "err", err)
		return srv.Close()
	}
	return nil
}
