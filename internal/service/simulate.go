package service

// This file wires the removal-impact what-if engine (internal/simulate)
// into the API:
//
//	POST /v1/simulate        — evaluate one hypothetical distrust event
//	GET  /v1/simulate/sweep  — the full root × store impact ranking
//
// Both endpoints pin the serving generation at entry like every other
// handler, so a hot swap mid-request can never mix two databases in one
// answer. The engine and the sweep ranking are deterministic functions of
// the generation, so both are built once per generation (sync.Once on
// dbState) and shared by every request until the next swap; the sweep
// response is additionally ETag'd on the generation's rootpack hash so
// pollers pay 304s, not recomputation or re-download.

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/certutil"
	"repro/internal/obs"
	"repro/internal/simulate"
	"repro/internal/store"
)

// simulateRequest is the POST /v1/simulate body.
type simulateRequest struct {
	// Kind is "removal", "distrust-after" or "ca-removal".
	Kind string `json:"kind"`
	// Store is the acting provider; NSS when empty.
	Store string `json:"store,omitempty"`
	// Fingerprints name the affected roots (hex SHA-256, optionally
	// colon-separated) for removal / distrust-after events.
	Fingerprints []string `json:"fingerprints,omitempty"`
	// Owner is the CA owner substring for ca-removal events.
	Owner string `json:"owner,omitempty"`
	// Date is when the event takes effect (RFC 3339 or YYYY-MM-DD); the
	// acting store's latest snapshot date when empty.
	Date string `json:"date,omitempty"`
	// Purpose defaults to server-auth.
	Purpose string `json:"purpose,omitempty"`
}

// parseSimulateRequest maps the wire form onto an engine event. It is the
// fuzzed surface of the simulate API: whatever bytes arrive, the only
// acceptable failure mode is an error return.
func parseSimulateRequest(req simulateRequest) (simulate.Event, error) {
	kind, err := simulate.ParseKind(req.Kind)
	if err != nil {
		return simulate.Event{}, err
	}
	ev := simulate.Event{Kind: kind, Provider: req.Store, Owner: req.Owner}
	for _, fp := range req.Fingerprints {
		parsed, err := certutil.ParseFingerprint(fp)
		if err != nil {
			return simulate.Event{}, errors.Join(simulate.ErrBadEvent, err)
		}
		ev.Fingerprints = append(ev.Fingerprints, parsed)
	}
	if req.Date != "" {
		at, err := parseAt(req.Date)
		if err != nil {
			return simulate.Event{}, errors.Join(simulate.ErrBadEvent, err)
		}
		ev.Date = at
	}
	if req.Purpose != "" {
		p, err := store.ParsePurpose(req.Purpose)
		if err != nil {
			return simulate.Event{}, errors.Join(simulate.ErrBadEvent, err)
		}
		ev.Purpose = p
	}
	return ev, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	s.stampGeneration(w, st)

	var req simulateRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}
	ev, err := parseSimulateRequest(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	span := obs.StartLeafSpan(r.Context(), "simulate.event")
	span.SetAttr("kind", string(ev.Kind))
	res, err := st.engine().Simulate(ev)
	span.End()
	if err != nil {
		s.metrics.simEvents.Add("error", 1)
		switch {
		case errors.Is(err, simulate.ErrUnknownProvider), errors.Is(err, simulate.ErrNoAffectedRoots):
			s.writeError(w, http.StatusNotFound, "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.metrics.simEvents.Add(string(ev.Kind), 1)
	s.writeJSON(w, http.StatusOK, res)
}

// defaultSweepTop bounds GET /v1/simulate/sweep responses unless the
// caller asks for more with ?n=.
const defaultSweepTop = 20

// sweepResponse is GET /v1/simulate/sweep: the highest-impact removal
// scenarios of the serving generation.
type sweepResponse struct {
	Purpose string   `json:"purpose"`
	Roots   int      `json:"roots"`
	Stores  []string `json:"stores"`
	// Pairs is the number of (root, store) scenarios evaluated; Top holds
	// the n highest-impact ones of that full ranking.
	Pairs   int                   `json:"pairs"`
	Top     []simulate.SweepEntry `json:"top"`
	BuildMS float64               `json:"build_ms"`
}

func (s *Server) handleSimulateSweep(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	s.stampGeneration(w, st)
	if s.conditionalGet(w, r, st) {
		return
	}
	n := defaultSweepTop
	if q := r.URL.Query().Get("n"); q != "" {
		parsed, err := strconv.Atoi(q)
		if err != nil || parsed < 0 {
			s.writeError(w, http.StatusBadRequest, "invalid ?n=%q: want a non-negative integer", q)
			return
		}
		n = parsed
	}

	res, buildDur := st.sweepRanking(r, s)
	s.metrics.simSweeps.Add(1)
	s.writeJSON(w, http.StatusOK, sweepResponse{
		Purpose: res.Purpose,
		Roots:   res.Roots,
		Stores:  res.Stores,
		Pairs:   res.Pairs,
		Top:     res.Top(n),
		BuildMS: float64(buildDur) / float64(time.Millisecond),
	})
}

// engine returns the generation's what-if engine, building it on first
// use. The engine is immutable and concurrency-safe, so one per
// generation serves every request.
func (st *dbState) engine() *simulate.Engine {
	st.simOnce.Do(func() {
		st.simEngine = simulate.New(st.db, simulate.Options{})
	})
	return st.simEngine
}

// sweepRanking returns the generation's full sweep ranking, computing it
// exactly once per generation (under an obs span and build metrics) and
// serving every later request — including conditional ones — from the
// cached result.
func (st *dbState) sweepRanking(r *http.Request, s *Server) (*simulate.SweepResult, time.Duration) {
	st.sweepOnce.Do(func() {
		span := obs.StartLeafSpan(r.Context(), "simulate.sweep")
		start := time.Now()
		st.sweepRes = st.engine().Sweep(0)
		st.sweepDur = time.Since(start)
		span.SetAttr("pairs", strconv.Itoa(st.sweepRes.Pairs))
		span.End()
		s.metrics.simSweepBuilds.Add(1)
		s.metrics.simSweepPairs.Set(int64(st.sweepRes.Pairs))
		s.metrics.simSweepBuildMs.Set(float64(st.sweepDur) / float64(time.Millisecond))
	})
	return st.sweepRes, st.sweepDur
}
