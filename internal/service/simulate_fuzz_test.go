package service

// White-box tests of the simulate request parser: table-driven unit
// coverage plus a fuzz target over the raw wire bytes — whatever arrives,
// the only acceptable failure mode is an error return.

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/simulate"
	"repro/internal/store"
)

func TestParseSimulateRequest(t *testing.T) {
	fp := strings.Repeat("ab", 32)
	ev, err := parseSimulateRequest(simulateRequest{
		Kind:         "distrust-after",
		Store:        "NSS",
		Fingerprints: []string{fp},
		Date:         "2020-09-01",
		Purpose:      "server-auth",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != simulate.KindDistrustAfter || ev.Provider != "NSS" {
		t.Errorf("event = %+v", ev)
	}
	if len(ev.Fingerprints) != 1 || ev.Fingerprints[0].String() != fp {
		t.Errorf("fingerprints = %v", ev.Fingerprints)
	}
	if !ev.Date.Equal(time.Date(2020, 9, 1, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("date = %v", ev.Date)
	}
	if ev.Purpose != store.ServerAuth {
		t.Errorf("purpose = %v", ev.Purpose)
	}

	bad := []simulateRequest{
		{Kind: "merger"},
		{Kind: "removal", Fingerprints: []string{"not-hex"}},
		{Kind: "removal", Fingerprints: []string{fp}, Date: "yesterday"},
		{Kind: "removal", Fingerprints: []string{fp}, Purpose: "origami"},
	}
	for i, req := range bad {
		if _, err := parseSimulateRequest(req); !errors.Is(err, simulate.ErrBadEvent) {
			t.Errorf("bad[%d]: err = %v, want ErrBadEvent", i, err)
		}
	}

	// Colon-separated fingerprints are accepted like /v1/roots.
	withColons := strings.TrimSuffix(strings.Repeat("ab:", 32), ":")
	if _, err := parseSimulateRequest(simulateRequest{Kind: "removal", Fingerprints: []string{withColons}}); err != nil {
		t.Errorf("colon-separated fingerprint rejected: %v", err)
	}
}

func FuzzSimulateRequest(f *testing.F) {
	f.Add([]byte(`{"kind":"removal","fingerprints":["` + strings.Repeat("ab", 32) + `"]}`))
	f.Add([]byte(`{"kind":"ca-removal","owner":"Symantec","date":"2019-09-01"}`))
	f.Add([]byte(`{"kind":"distrust-after","store":"NSS","purpose":"server-auth"}`))
	f.Add([]byte(`{"kind":"removal","fingerprints":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"kind":"removal","fingerprints":["zz"],"date":"not a date"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req simulateRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		ev, err := parseSimulateRequest(req)
		if err != nil {
			return
		}
		// A parsed event must round-trip its invariants: a valid kind and
		// only well-formed fingerprints.
		if _, kerr := simulate.ParseKind(string(ev.Kind)); kerr != nil {
			t.Fatalf("parser accepted invalid kind %q", ev.Kind)
		}
		if len(ev.Fingerprints) != len(req.Fingerprints) {
			t.Fatalf("parser dropped fingerprints: %d in, %d out", len(req.Fingerprints), len(ev.Fingerprints))
		}
	})
}
