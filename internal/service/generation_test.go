package service_test

// Generation-identity coverage: every /v1 route and /healthz stamp the
// serving generation's archive hash and epoch, SwapArchive adopts an
// origin's hash/epoch verbatim (no re-hash), and the epoch is visible in
// the Prometheus exposition — the straggler-detection surface the cluster
// subsystem's load-balancer story depends on.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/service"
)

func genRequest(t *testing.T, srv *service.Server, method, path string, body io.Reader) *http.Response {
	t.Helper()
	req := httptest.NewRequest(method, path, body)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec.Result()
}

func TestGenerationHeadersOnAllRoutes(t *testing.T) {
	db := swapDB(t, "2020-01-01", 0, 1, 2)
	srv := service.New(db, service.Config{})
	fp := fingerprintOf(t, db, 0)

	wantHash, wantEpoch := srv.Generation()
	if len(wantHash) != 64 || wantEpoch != 1 {
		t.Fatalf("Generation() = (%q, %d), want 64-hex hash and epoch 1", wantHash, wantEpoch)
	}

	paths := []struct {
		method, path string
		body         string
	}{
		{http.MethodGet, "/v1/providers", ""},
		{http.MethodGet, "/v1/providers/NSS/snapshots", ""},
		{http.MethodGet, "/v1/roots/" + fp, ""},
		{http.MethodGet, "/v1/diff?a=NSS&b=Debian", ""},
		{http.MethodPost, "/v1/verify", `{"chain_pem":""}`}, // 400, still stamped
		{http.MethodGet, "/v1/events", ""},                  // 404 (no feed), still stamped
		{http.MethodGet, "/healthz", ""},
	}
	for _, p := range paths {
		var body io.Reader
		if p.body != "" {
			body = strings.NewReader(p.body)
		}
		res := genRequest(t, srv, p.method, p.path, body)
		if got := res.Header.Get("X-Rootpack-Hash"); got != wantHash {
			t.Errorf("%s %s: X-Rootpack-Hash %q, want %q (status %d)", p.method, p.path, got, wantHash, res.StatusCode)
		}
		if got := res.Header.Get("X-Rootpack-Epoch"); got != "1" {
			t.Errorf("%s %s: X-Rootpack-Epoch %q, want 1", p.method, p.path, got)
		}
	}
}

func TestHealthzGeneration(t *testing.T) {
	srv := service.New(swapDB(t, "2020-01-01", 0, 1), service.Config{})
	res := genRequest(t, srv, http.MethodGet, "/healthz", nil)
	var h struct {
		Generation struct {
			Hash  string `json:"hash"`
			Epoch uint64 `json:"epoch"`
		} `json:"generation"`
	}
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hash, epoch := srv.Generation()
	if h.Generation.Hash != hash || h.Generation.Epoch != epoch {
		t.Fatalf("healthz generation %+v, want (%s, %d)", h.Generation, hash, epoch)
	}
}

func TestSwapArchiveAdoptsHashAndEpoch(t *testing.T) {
	srv := service.New(swapDB(t, "2020-01-01", 0, 1), service.Config{})

	// Compile a second database the way an origin would and install it the
	// way a replica would: hash and epoch come from the wire, not from a
	// local re-encode.
	db2 := swapDB(t, "2020-02-02", 1, 2, 3)
	var buf bytes.Buffer
	hash, err := archive.Encode(&buf, db2, [archive.HashLen]byte{9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	srv.SwapArchive(db2, hash, 42)

	gotHash, gotEpoch := srv.Generation()
	if gotHash != hex.EncodeToString(hash[:]) {
		t.Fatalf("Generation hash %s, want the archive content hash %x", gotHash, hash)
	}
	if gotEpoch != 42 {
		t.Fatalf("Generation epoch %d, want 42", gotEpoch)
	}

	// The ETag equals the archive hash even though HashDatabase over db2
	// (zero source hash) would differ — the pre-seeded tag won.
	res := genRequest(t, srv, http.MethodGet, "/v1/providers", nil)
	if got := res.Header.Get("ETag"); got != `"`+gotHash+`"` {
		t.Fatalf("ETag %s, want %q", got, gotHash)
	}
	if localHash, err := archive.HashDatabase(db2); err == nil {
		if hex.EncodeToString(localHash[:]) == gotHash {
			t.Fatal("fixture broken: local hash equals archive hash, pre-seeding untested")
		}
	}

	// A later local Swap still moves the epoch strictly forward.
	srv.Swap(swapDB(t, "2020-03-03", 0, 2))
	if _, epoch := srv.Generation(); epoch != 43 {
		t.Fatalf("post-SwapArchive local swap epoch %d, want 43", epoch)
	}

	// Prometheus exposition carries the epoch gauge.
	res = genRequest(t, srv, http.MethodGet, "/metrics/prometheus", nil)
	text, _ := io.ReadAll(res.Body)
	if !bytes.Contains(text, []byte("trustd_generation_epoch 43")) {
		t.Fatalf("exposition missing trustd_generation_epoch 43:\n%s", text)
	}
}
