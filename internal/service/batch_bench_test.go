package service_test

// Performance guards for the batch pipeline (BENCH_7): BenchmarkVerifyBatch
// measures per-verdict cost and allocations on the warm (verdict-cache-hit)
// path, and TestBatchThroughputSpeedup enforces the headline claim — a 1k-line
// NDJSON batch must beat the same chains looped through /v1/verify by ≥10×.

import (
	"bytes"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	trustroots "repro"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/synth"
)

// benchChains mints n distinct leaf chains (distinct CNs, so distinct chain
// hashes) from a CA trusted in the 2020 NSS snapshot.
func benchChains(tb testing.TB, eco *synth.Ecosystem, n int) []string {
	tb.Helper()
	nssSnap := eco.DB.History(trustroots.NSS).At(ts(2020, 9, 15))
	var ca *synth.CA
	for _, e := range nssSnap.Entries() {
		if c := eco.Universe.Lookup(e.Label); c != nil {
			if _, distrusted := e.DistrustAfterFor(store.ServerAuth); !distrusted {
				ca = c
				break
			}
		}
	}
	if ca == nil {
		tb.Fatal("no usable CA in NSS snapshot")
	}
	chains := make([]string, n)
	for i := range chains {
		der, err := trustroots.IssueLeaf(ca, fmt.Sprintf("host-%03d.bench.test", i),
			ts(2020, 1, 1), ts(2022, 1, 1))
		if err != nil {
			tb.Fatal(err)
		}
		var buf bytes.Buffer
		if err := pem.Encode(&buf, &pem.Block{Type: "CERTIFICATE", Bytes: der}); err != nil {
			tb.Fatal(err)
		}
		chains[i] = buf.String()
	}
	return chains
}

// ndjsonBody builds an NDJSON batch cycling the chains across count lines.
// useDER selects the chain_der input form (base64 DER, the bulk-throughput
// format) over chain_pem.
func ndjsonBody(tb testing.TB, chains []string, stores []string, count int, useDER bool) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for i := 0; i < count; i++ {
		line := map[string]any{
			"at": "2020-11-15",
		}
		if len(stores) > 0 {
			line["stores"] = stores
		}
		chain := chains[i%len(chains)]
		if useDER {
			line["chain_der"] = derChain(tb, chain)
		} else {
			line["chain_pem"] = chain
		}
		raw, err := json.Marshal(line)
		if err != nil {
			tb.Fatal(err)
		}
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// discardWriter is a flushable ResponseWriter that throws the body away, so
// benchmarks measure the pipeline rather than httptest's body accumulation.
type discardWriter struct {
	h     http.Header
	lines int
}

func (d *discardWriter) Header() http.Header { return d.h }
func (d *discardWriter) WriteHeader(int)     {}
func (d *discardWriter) Flush()              {}
func (d *discardWriter) Write(p []byte) (int, error) {
	d.lines += bytes.Count(p, []byte{'\n'})
	return len(p), nil
}

func runBatch(tb testing.TB, srv *service.Server, body []byte) int {
	tb.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/verify/batch", bytes.NewReader(body))
	dw := &discardWriter{h: http.Header{}}
	srv.Handler().ServeHTTP(dw, req)
	return dw.lines
}

// BenchmarkVerifyBatch measures the warm batch path with chain_der input:
// every line hits the verdict cache across all ten stores, so the reported
// allocs/verdict is the pipeline's own overhead (line decode amortized over
// ten verdicts).
func BenchmarkVerifyBatch(b *testing.B) {
	benchVerifyBatch(b, true)
}

// BenchmarkVerifyBatchPEM is the same measurement over chain_pem lines —
// the convenience format pays a JSON unescape plus a PEM decode per line.
func BenchmarkVerifyBatchPEM(b *testing.B) {
	benchVerifyBatch(b, false)
}

func benchVerifyBatch(b *testing.B, useDER bool) {
	eco, srv := fixture(b)
	var all []string
	for _, p := range eco.DB.Providers() {
		all = append(all, p)
	}
	const lines = 256
	body := ndjsonBody(b, benchChains(b, eco, 8), all, lines, useDER)
	if got := runBatch(b, srv, body); got != lines { // warm the verdict cache
		b.Fatalf("warmup produced %d lines, want %d", got, lines)
	}
	verdictsPerLine := len(all)

	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBatch(b, srv, body)
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	verdicts := float64(b.N) * lines * float64(verdictsPerLine)
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/verdicts, "allocs/verdict")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/verdicts, "ns/verdict")
}

// TestBatchThroughputSpeedup is the CI guard for the batch endpoint's reason
// to exist: 1000 chains through one NDJSON batch must run at least 10× faster
// than the same 1000 chains looped through the single-verify endpoint, both
// paths warm.
func TestBatchThroughputSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard skipped under the race detector; CI bench-smoke runs it uninstrumented")
	}
	eco, srv := fixture(t)
	chains := benchChains(t, eco, 8)
	// No stores filter: both paths fan out to every provider, the natural
	// corpus-scan query shape.
	const lines = 1000
	body := ndjsonBody(t, chains, nil, lines, true)

	singleReqs := make([][]byte, len(chains))
	for i, c := range chains {
		raw, err := json.Marshal(map[string]any{"chain_pem": c, "at": "2020-11-15"})
		if err != nil {
			t.Fatal(err)
		}
		singleReqs[i] = raw
	}
	runSingles := func() {
		for i := 0; i < lines; i++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/verify",
				bytes.NewReader(singleReqs[i%len(singleReqs)]))
			dw := &discardWriter{h: http.Header{}}
			srv.Handler().ServeHTTP(dw, req)
		}
	}

	// Warm both paths (verdict cache, route caches, verifier pools).
	runSingles()
	if got := runBatch(t, srv, body); got != lines {
		t.Fatalf("warmup batch produced %d lines, want %d", got, lines)
	}

	// Best-of-rounds on both sides: the guard measures the pipelines, not
	// whatever else the CI runner happened to schedule mid-round.
	const rounds = 3
	var singleNs, batchNs int64
	for r := 0; r < rounds; r++ {
		start := time.Now()
		runSingles()
		if ns := time.Since(start).Nanoseconds(); r == 0 || ns < singleNs {
			singleNs = ns
		}

		start = time.Now()
		if got := runBatch(t, srv, body); got != lines {
			t.Fatalf("round %d batch produced %d lines, want %d", r, got, lines)
		}
		if ns := time.Since(start).Nanoseconds(); r == 0 || ns < batchNs {
			batchNs = ns
		}
	}
	speedup := float64(singleNs) / float64(batchNs)
	t.Logf("single: %.1fms/1k  batch: %.1fms/1k  speedup: %.1fx",
		float64(singleNs)/1e6, float64(batchNs)/1e6, speedup)
	if speedup < 10 {
		t.Fatalf("batch speedup %.1fx over looped single verifies, want >= 10x", speedup)
	}
}
