package service_test

// The non-TLS ecosystem surface of the serving layer: /v1/providers kind
// tags, the provider_kinds gauge, and verification routed against a CT-log
// store like any other provider.

import (
	"encoding/json"
	"encoding/pem"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	trustroots "repro"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/synth"
)

func ecosystemServer(t *testing.T) (*synth.Ecosystem, *service.Server) {
	t.Helper()
	eco, err := synth.CachedWithEcosystems("trustd-eco-test")
	if err != nil {
		t.Fatal(err)
	}
	return eco, service.New(eco.DB, service.Config{})
}

func TestProvidersKindTags(t *testing.T) {
	_, srv := ecosystemServer(t)
	var resp struct {
		Providers []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"providers"`
	}
	res := get(t, srv, "/v1/providers", &resp)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	want := map[string]string{"NSS": "tls", "Debian": "tls"}
	for name, kind := range synth.EcosystemProviders() {
		want[name] = string(kind)
	}
	got := make(map[string]string)
	for _, p := range resp.Providers {
		if p.Kind == "" {
			t.Errorf("%s: empty kind tag", p.Name)
		}
		got[p.Name] = p.Kind
	}
	for name, kind := range want {
		if got[name] != kind {
			t.Errorf("%s: kind %q, want %q", name, got[name], kind)
		}
	}
}

func TestProviderKindsMetrics(t *testing.T) {
	_, srv := ecosystemServer(t)
	m := srv.Metrics()
	if got := m.ProviderKindCount("ct"); got != len(synth.CTLogs()) {
		t.Errorf("ct kind count = %d, want %d", got, len(synth.CTLogs()))
	}
	if got := m.ProviderKindCount("manifest"); got != 1 {
		t.Errorf("manifest kind count = %d, want 1", got)
	}
	if got := m.ProviderKindCount("tls"); got != 10 {
		t.Errorf("tls kind count = %d, want 10", got)
	}

	// The JSON view carries the same map.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var tree struct {
		ProviderKinds map[string]int `json:"provider_kinds"`
	}
	if err := json.NewDecoder(rec.Result().Body).Decode(&tree); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if tree.ProviderKinds["ct"] != len(synth.CTLogs()) || tree.ProviderKinds["manifest"] != 1 {
		t.Errorf("/metrics provider_kinds = %v", tree.ProviderKinds)
	}

	// And the Prometheus exposition renders one labelled gauge per kind.
	req = httptest.NewRequest(http.MethodGet, "/metrics/prometheus", nil)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	for _, line := range []string{
		`trustd_provider_kinds{kind="ct"} 4`,
		`trustd_provider_kinds{kind="manifest"} 1`,
		`trustd_provider_kinds{kind="tls"} 10`,
	} {
		if !strings.Contains(string(body), line) {
			t.Errorf("prometheus exposition missing %q", line)
		}
	}
}

// TestVerifyAgainstCTStore drives /v1/verify with a chain that anchors to
// a root only the CT logs accept (an operator's submission-only cohort):
// every browser store answers no-anchor while the log stores trust it —
// the codec layer is the only place the formats ever differed.
func TestVerifyAgainstCTStore(t *testing.T) {
	eco, srv := ecosystemServer(t)
	log := eco.DB.History("CT-Argon").Latest()
	var ctOnly *store.TrustEntry
	for _, e := range log.Entries() {
		if ca := eco.Universe.Lookup(e.Label); ca != nil && ca.Category == synth.CatCTOnly {
			ctOnly = e
			break
		}
	}
	if ctOnly == nil {
		t.Fatal("no submission-only root in CT-Argon")
	}
	ca := eco.Universe.Lookup(ctOnly.Label)
	if ca == nil {
		t.Fatalf("CA %q not in universe", ctOnly.Label)
	}
	leafDER, err := trustroots.IssueLeaf(ca, "submitter.example.test", ts(2020, 1, 1), ts(2023, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	chain := string(pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: leafDER}))

	status, out := postVerify(t, srv, map[string]any{
		"chain_pem": chain,
		"stores":    []string{"CT-Argon", "CT-Yeti", "NSS"},
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	rows, _ := out["verdicts"].([]any)
	outcomes := make(map[string]string)
	for _, r := range rows {
		row, _ := r.(map[string]any)
		prov, _ := row["provider"].(string)
		outcome, _ := row["outcome"].(string)
		outcomes[prov] = outcome
	}
	if outcomes["CT-Argon"] != "ok" {
		t.Errorf("CT-Argon outcome = %q, want ok (all: %v)", outcomes["CT-Argon"], outcomes)
	}
	if outcomes["NSS"] == "ok" {
		t.Errorf("NSS trusts a submission-only root: %v", outcomes)
	}
}
