package service

import (
	"expvar"
	"fmt"
	"net/http"
	"time"

	"repro/internal/store"
)

// latencyBuckets are the upper bounds (inclusive) of the request-latency
// histogram, in milliseconds. The last bucket is open-ended.
var latencyBuckets = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// Metrics aggregates the server's expvar counters. Each Server owns a
// private expvar.Map rather than publishing process globals, so multiple
// servers (tests, embedded use) never collide on expvar names; cmd/trustd
// publishes the map under "trustd" for the standard /debug/vars view.
type Metrics struct {
	root *expvar.Map

	requests  *expvar.Map // per route: "GET /v1/providers" → count
	status    *expvar.Map // per status class: "2xx" → count
	outcomes  *expvar.Map // per verify outcome: "ok", "no-anchor", ...
	cache     *expvar.Map // verifier/verdict cache hit/miss counters
	latency   *expvar.Map // histogram bucket → count ("le_25ms", "le_inf")
	lag       *expvar.Map // per provider: seconds since its latest snapshot date
	inFlight  *expvar.Int
	verified  *expvar.Int // total per-store verdicts computed (incl. cached)
	rejected  *expvar.Int // requests refused before verification (4xx)
	reloads   *expvar.Int // hot swaps installed after the initial database
	watchers  *expvar.Int // live /v1/events/watch streams
	lastLoad  *expvar.String
	uptime    *expvar.String
	startedAt time.Time
}

func newMetrics() *Metrics {
	m := &Metrics{
		root:      new(expvar.Map).Init(),
		requests:  new(expvar.Map).Init(),
		status:    new(expvar.Map).Init(),
		outcomes:  new(expvar.Map).Init(),
		cache:     new(expvar.Map).Init(),
		latency:   new(expvar.Map).Init(),
		lag:       new(expvar.Map).Init(),
		inFlight:  new(expvar.Int),
		verified:  new(expvar.Int),
		rejected:  new(expvar.Int),
		reloads:   new(expvar.Int),
		watchers:  new(expvar.Int),
		lastLoad:  new(expvar.String),
		uptime:    new(expvar.String),
		startedAt: time.Now(),
	}
	m.root.Set("requests", m.requests)
	m.root.Set("status", m.status)
	m.root.Set("verify_outcomes", m.outcomes)
	m.root.Set("cache", m.cache)
	m.root.Set("latency_ms", m.latency)
	m.root.Set("provider_lag_seconds", m.lag)
	m.root.Set("in_flight", m.inFlight)
	m.root.Set("verdicts_total", m.verified)
	m.root.Set("rejected_total", m.rejected)
	m.root.Set("reloads_total", m.reloads)
	m.root.Set("event_watchers", m.watchers)
	m.root.Set("last_reload", m.lastLoad)
	m.root.Set("uptime", m.uptime)
	return m
}

// recordReload refreshes the per-provider freshness gauges from the
// database being installed: for each provider, the seconds between its
// latest snapshot date and now. A provider whose gauge keeps growing is a
// store we have stopped receiving snapshots for — the live version of the
// paper's update-lag observation.
func (m *Metrics) recordReload(db *store.Database) {
	now := time.Now()
	for _, name := range db.Providers() {
		h := db.History(name)
		if h == nil {
			continue
		}
		snaps := h.Snapshots()
		if len(snaps) == 0 {
			continue
		}
		latest := snaps[len(snaps)-1].Date
		g := new(expvar.Int)
		g.Set(int64(now.Sub(latest) / time.Second))
		m.lag.Set(name, g)
	}
	m.lastLoad.Set(now.UTC().Format(time.RFC3339))
}

// ReloadCount returns the number of hot swaps installed (test hook).
func (m *Metrics) ReloadCount() int64 { return m.reloads.Value() }

// ProviderLagSeconds returns a provider's freshness gauge (test hook);
// -1 when the provider has no gauge yet.
func (m *Metrics) ProviderLagSeconds(provider string) int64 {
	if v, ok := m.lag.Get(provider).(*expvar.Int); ok {
		return v.Value()
	}
	return -1
}

// Map exposes the metric tree, e.g. for expvar.Publish in cmd/trustd.
func (m *Metrics) Map() *expvar.Map { return m.root }

func (m *Metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for _, le := range latencyBuckets {
		if ms <= le {
			m.latency.Add(fmt.Sprintf("le_%gms", le), 1)
			return
		}
	}
	m.latency.Add("le_inf", 1)
}

func (m *Metrics) cacheEvent(name string, hit bool) {
	if hit {
		m.cache.Add(name+"_hits", 1)
	} else {
		m.cache.Add(name+"_misses", 1)
	}
}

// CacheHits returns a cache counter's current value (test hook).
func (m *Metrics) CacheHits(name string) int64 {
	if v, ok := m.cache.Get(name + "_hits").(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// RequestCount returns a route counter's current value (test hook).
func (m *Metrics) RequestCount(route string) int64 {
	if v, ok := m.requests.Get(route).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flusher — the SSE watch endpoint streams through this wrapper.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps a handler with request counting, in-flight tracking and
// the latency histogram. route is the mux pattern ("POST /v1/verify").
func (m *Metrics) instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		m.requests.Add(route, 1)
		m.status.Add(fmt.Sprintf("%dxx", rec.code/100), 1)
		if rec.code >= 400 && rec.code < 500 {
			m.rejected.Add(1)
		}
		m.observeLatency(time.Since(start))
	})
}

// handler serves the metric tree as JSON — the expvar wire format, scoped to
// this server's map.
func (m *Metrics) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.uptime.Set(time.Since(m.startedAt).Round(time.Millisecond).String())
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.root.String())
	})
}
