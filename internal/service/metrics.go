package service

import (
	"expvar"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// statusClasses maps code/100 to its class key without formatting.
var statusClasses = [...]string{"0xx", "1xx", "2xx", "3xx", "4xx", "5xx"}

// Metrics aggregates the server's expvar counters. Each Server owns a
// private expvar.Map rather than publishing process globals, so multiple
// servers (tests, embedded use) never collide on expvar names; cmd/trustd
// publishes the map under "trustd" for the standard /debug/vars view.
//
// Gauges that describe "now" — uptime, per-provider staleness — are
// expvar.Funcs computed at read time from the current serving database,
// so /debug/vars (which bypasses this type's handler entirely) and
// long-lived servers that never reload still report the truth.
type Metrics struct {
	root *expvar.Map

	requests  *expvar.Map // per route: "GET /v1/providers" → count
	status    *expvar.Map // per status class: "2xx" → count
	outcomes  *expvar.Map // per verify outcome: "ok", "no-anchor", ...
	cache     *expvar.Map // verifier/verdict cache hit/miss counters
	inFlight  *expvar.Int
	verified  *expvar.Int // total per-store verdicts computed (incl. cached)
	rejected  *expvar.Int // requests refused before verification (4xx)

	// Batch pipeline counters (POST /v1/verify/batch).
	batchBatches  *expvar.Int // batch requests started
	batchLines    *expvar.Int // NDJSON input lines consumed
	batchVerdicts *expvar.Int // verdict rows streamed out
	batchRejects  *expvar.Int // lines answered with a per-line error
	batchQueue    *expvar.Int // jobs currently queued between reader and writer (gauge)

	// What-if simulation counters (POST /v1/simulate, GET /v1/simulate/sweep).
	simEvents       *expvar.Map   // per event kind: "removal", "distrust-after", "ca-removal", "error"
	simSweeps       *expvar.Int   // sweep responses served (cached or fresh)
	simSweepBuilds  *expvar.Int   // sweep rankings actually computed (≤ one per generation)
	simSweepPairs   *expvar.Int   // (root, store) pairs in the latest ranking (gauge)
	simSweepBuildMs *expvar.Float // wall time of the latest ranking build (gauge)

	errors    *expvar.Int // responses that failed server-side (5xx)
	reloads   *expvar.Int // hot swaps installed after the initial database
	watchers  *expvar.Int // live /v1/events/watch streams
	lastLoad  *expvar.String
	startedAt time.Time

	// Latency is tracked in HDR log-linear histograms over the shared
	// obs.HDRBounds layout — the same bounds cmd/loadgen buckets against
	// on the client side, so the two can be diffed per bucket. routes
	// holds one exemplar-capturing histogram per registered route; all
	// registration happens while the Server is built, before any
	// request, so requests read the map without locking. latencyAll is
	// the cross-route aggregate (and the fallback for unregistered
	// routes).
	routes     map[string]*obs.HDRHistogram
	latencyAll *obs.HDRHistogram

	// slo feeds the scrape-time trustd_slo_* burn-rate families.
	slo *sloRing

	// db is the database the freshness gauges are computed against; it
	// follows the serving generation (recordReload) so scrape-time lag is
	// always measured against what is actually being served.
	db atomic.Pointer[store.Database]
}

func newMetrics() *Metrics {
	m := &Metrics{
		root:      new(expvar.Map).Init(),
		requests:  new(expvar.Map).Init(),
		status:    new(expvar.Map).Init(),
		outcomes:  new(expvar.Map).Init(),
		cache:     new(expvar.Map).Init(),
		inFlight:  new(expvar.Int),
		verified:  new(expvar.Int),
		rejected:  new(expvar.Int),

		batchBatches:  new(expvar.Int),
		batchLines:    new(expvar.Int),
		batchVerdicts: new(expvar.Int),
		batchRejects:  new(expvar.Int),
		batchQueue:    new(expvar.Int),

		simEvents:       new(expvar.Map).Init(),
		simSweeps:       new(expvar.Int),
		simSweepBuilds:  new(expvar.Int),
		simSweepPairs:   new(expvar.Int),
		simSweepBuildMs: new(expvar.Float),

		errors:    new(expvar.Int),
		reloads:   new(expvar.Int),
		watchers:  new(expvar.Int),
		lastLoad:  new(expvar.String),
		startedAt: time.Now(),

		routes:     map[string]*obs.HDRHistogram{},
		latencyAll: obs.NewHDRHistogramExemplars(),
		slo:        newSLORing(),
	}
	m.root.Set("requests", m.requests)
	m.root.Set("status", m.status)
	m.root.Set("verify_outcomes", m.outcomes)
	m.root.Set("cache", m.cache)
	m.root.Set("latency_ms", expvar.Func(m.latencySummary))
	m.root.Set("provider_lag_seconds", expvar.Func(m.providerLag))
	m.root.Set("provider_kinds", expvar.Func(m.providerKinds))
	m.root.Set("in_flight", m.inFlight)
	m.root.Set("batches_total", m.batchBatches)
	m.root.Set("batch_lines_total", m.batchLines)
	m.root.Set("batch_verdicts_total", m.batchVerdicts)
	m.root.Set("batch_rejected_lines_total", m.batchRejects)
	m.root.Set("batch_queue_depth", m.batchQueue)
	m.root.Set("simulate_events", m.simEvents)
	m.root.Set("simulate_sweeps_total", m.simSweeps)
	m.root.Set("simulate_sweep_builds_total", m.simSweepBuilds)
	m.root.Set("simulate_sweep_pairs", m.simSweepPairs)
	m.root.Set("simulate_sweep_build_ms", m.simSweepBuildMs)
	m.root.Set("verdicts_total", m.verified)
	m.root.Set("rejected_total", m.rejected)
	m.root.Set("errors_total", m.errors)
	m.root.Set("reloads_total", m.reloads)
	m.root.Set("event_watchers", m.watchers)
	m.root.Set("last_reload", m.lastLoad)
	m.root.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.startedAt).Seconds()
	}))
	return m
}

// recordReload points the freshness gauges at the database being
// installed. The per-provider lag itself — seconds between a provider's
// latest snapshot date and now — is computed on every read, so a
// provider whose gauge keeps growing is a store we have stopped
// receiving snapshots for (the live version of the paper's update-lag
// observation) even if the server never reloads again.
func (m *Metrics) recordReload(db *store.Database) {
	m.db.Store(db)
	m.lastLoad.Set(time.Now().UTC().Format(time.RFC3339))
}

// providerLag computes the per-provider staleness map at read time.
func (m *Metrics) providerLag() any {
	out := map[string]int64{}
	db := m.db.Load()
	if db == nil {
		return out
	}
	now := time.Now()
	for _, name := range db.Providers() {
		h := db.History(name)
		if h == nil {
			continue
		}
		if latest := h.Latest(); latest != nil {
			out[name] = int64(now.Sub(latest.Date) / time.Second)
		}
	}
	return out
}

// providerKinds counts serving providers by ecosystem kind ("tls", "ct",
// "manifest") at read time, following the serving generation like
// providerLag.
func (m *Metrics) providerKinds() any {
	out := map[string]int{}
	db := m.db.Load()
	if db == nil {
		return out
	}
	for _, name := range db.Providers() {
		h := db.History(name)
		if h == nil {
			continue
		}
		if latest := h.Latest(); latest != nil {
			out[string(latest.Kind.Normalize())]++
		}
	}
	return out
}

// ProviderKindCount returns how many serving providers have the given
// ecosystem kind (test hook).
func (m *Metrics) ProviderKindCount(kind string) int {
	if v, ok := m.providerKinds().(map[string]int)[kind]; ok {
		return v
	}
	return 0
}

// ReloadCount returns the number of hot swaps installed (test hook).
func (m *Metrics) ReloadCount() int64 { return m.reloads.Value() }

// BatchLines returns the NDJSON input-line counter (test hook).
func (m *Metrics) BatchLines() int64 { return m.batchLines.Value() }

// BatchVerdicts returns the streamed-verdict counter (test hook).
func (m *Metrics) BatchVerdicts() int64 { return m.batchVerdicts.Value() }

// BatchRejects returns the per-line error counter (test hook).
func (m *Metrics) BatchRejects() int64 { return m.batchRejects.Value() }

// BatchQueueDepth returns the live reader→writer queue occupancy; 0 when
// no batch is in flight (test hook — a leak here means jobs were dropped).
func (m *Metrics) BatchQueueDepth() int64 { return m.batchQueue.Value() }

// ErrorCount returns the 5xx response counter (test hook).
func (m *Metrics) ErrorCount() int64 { return m.errors.Value() }

// SimulateEvents returns the counter for one simulate event kind (test
// hook).
func (m *Metrics) SimulateEvents(kind string) int64 {
	if v, ok := m.simEvents.Get(kind).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// SimulateSweeps returns the sweep-response counter (test hook).
func (m *Metrics) SimulateSweeps() int64 { return m.simSweeps.Value() }

// SimulateSweepBuilds returns how many sweep rankings were actually
// computed — at most one per generation (test hook).
func (m *Metrics) SimulateSweepBuilds() int64 { return m.simSweepBuilds.Value() }

// ProviderLagSeconds returns a provider's freshness gauge (test hook);
// -1 when the provider is not in the serving database.
func (m *Metrics) ProviderLagSeconds(provider string) int64 {
	if v, ok := m.providerLag().(map[string]int64)[provider]; ok {
		return v
	}
	return -1
}

// Map exposes the metric tree, e.g. for expvar.Publish in cmd/trustd.
func (m *Metrics) Map() *expvar.Map { return m.root }

// registerRoute allocates the route's latency histogram. Called only
// during Server construction (see Metrics.routes).
func (m *Metrics) registerRoute(route string) {
	m.routes[route] = obs.NewHDRHistogramExemplars()
}

// observeLatency records one request into the per-route and aggregate
// HDR histograms (two atomic adds each) and, when the request was
// traced, stamps the trace ID as the bucket's exemplar so the
// exposition links straight to /debug/traces.
func (m *Metrics) observeLatency(route string, d time.Duration, trace obs.TraceID) {
	if h := m.routes[route]; h != nil {
		h.ObserveTrace(d, trace)
	}
	m.latencyAll.ObserveTrace(d, trace)
}

// latencySummary renders the /metrics JSON view of the latency state:
// per-route count, sum and headline quantiles computed at read time from
// the HDR histograms (the raw buckets are served by
// /metrics/prometheus, which machines should scrape instead).
func (m *Metrics) latencySummary() any {
	out := make(map[string]map[string]float64, len(m.routes)+1)
	add := func(name string, h *obs.HDRHistogram) {
		s := h.Snapshot()
		out[name] = map[string]float64{
			"count":   float64(s.Count),
			"sum_ms":  s.SumSeconds * 1000,
			"p50_ms":  s.Quantile(0.50) * 1000,
			"p90_ms":  s.Quantile(0.90) * 1000,
			"p99_ms":  s.Quantile(0.99) * 1000,
			"p999_ms": s.Quantile(0.999) * 1000,
		}
	}
	add("all", m.latencyAll)
	for route, h := range m.routes {
		add(route, h)
	}
	return out
}

// LatencySnapshot returns a route's HDR histogram snapshot, or the
// aggregate when route is "" (test hook).
func (m *Metrics) LatencySnapshot(route string) obs.HDRSnapshot {
	if route == "" {
		return m.latencyAll.Snapshot()
	}
	if h := m.routes[route]; h != nil {
		return h.Snapshot()
	}
	return obs.HDRSnapshot{}
}

// SLOBurnRates returns the availability and latency burn rates over a
// window (test hook; minutes as in the exposed window labels).
func (m *Metrics) SLOBurnRates(minutes int64) (availability, latency float64, requests uint64) {
	return m.slo.burnRates(minutes)
}

// cachePair returns the hit/miss counters for one cache, creating them if
// absent. The batch hot path resolves these once per request so recording a
// cache event is a single atomic add, not an expvar.Map walk plus a key
// concatenation per verdict.
func (m *Metrics) cachePair(name string) (hits, misses *expvar.Int) {
	m.cache.Add(name+"_hits", 0)
	m.cache.Add(name+"_misses", 0)
	hits, _ = m.cache.Get(name + "_hits").(*expvar.Int)
	misses, _ = m.cache.Get(name + "_misses").(*expvar.Int)
	return hits, misses
}

// outcomeCounter returns the counter for one verify outcome, creating it if
// absent (same rationale as cachePair).
func (m *Metrics) outcomeCounter(outcome string) *expvar.Int {
	m.outcomes.Add(outcome, 0)
	ctr, _ := m.outcomes.Get(outcome).(*expvar.Int)
	return ctr
}

func (m *Metrics) cacheEvent(name string, hit bool) {
	if hit {
		m.cache.Add(name+"_hits", 1)
	} else {
		m.cache.Add(name+"_misses", 1)
	}
}

// CacheHits returns a cache counter's current value (test hook).
func (m *Metrics) CacheHits(name string) int64 {
	if v, ok := m.cache.Get(name + "_hits").(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// RequestCount returns a route counter's current value (test hook).
func (m *Metrics) RequestCount(route string) int64 {
	if v, ok := m.requests.Get(route).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// statusRecorder captures the response status for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flusher — the SSE watch endpoint streams through this wrapper.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// record counts one finished request: route, status class, refusal/error
// counters, the latency histograms (with the trace ID as a bucket
// exemplar) and the SLO ring.
func (m *Metrics) record(route string, code int, d time.Duration, trace obs.TraceID) {
	m.requests.Add(route, 1)
	if c := code / 100; c >= 0 && c < len(statusClasses) {
		m.status.Add(statusClasses[c], 1)
	} else {
		m.status.Add(fmt.Sprintf("%dxx", c), 1)
	}
	if code >= 400 && code < 500 {
		m.rejected.Add(1)
	}
	if code >= 500 {
		m.errors.Add(1)
	}
	m.observeLatency(route, d, trace)
	m.slo.observe(code, d)
}

// handler serves the metric tree as JSON — the expvar wire format, scoped to
// this server's map.
func (m *Metrics) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, m.root.String())
	})
}
