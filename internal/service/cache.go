package service

import (
	"container/list"
	"hash/fnv"
	"sync"

	"repro/internal/store"
	"repro/internal/verify"
)

// verifierCacheShards is the shard count of the verifier cache. Snapshot
// keys hash roughly uniformly, so a small power of two keeps lock
// contention negligible under the verify fan-out without oversizing the
// table for a ~619-snapshot corpus.
const verifierCacheShards = 16

type verifierShard struct {
	mu sync.RWMutex
	m  map[string]*verify.Verifier
}

// verifierCache is a sharded read-through cache of per-snapshot verifiers.
// Constructing a verifier's cert pools is the expensive step (hundreds of
// AddCert parses per snapshot), so the service builds each at most once and
// shares it across requests — safe now that verify.Verifier locks its lazy
// pools.
type verifierCache struct {
	shards  [verifierCacheShards]verifierShard
	metrics *Metrics
}

func newVerifierCache(m *Metrics) *verifierCache {
	c := &verifierCache{metrics: m}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*verify.Verifier)
	}
	return c
}

func shardFor(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32() % verifierCacheShards
}

// get returns the verifier for the snapshot, building it on first use.
func (c *verifierCache) get(snap *store.Snapshot) *verify.Verifier {
	key := snap.Key()
	sh := &c.shards[shardFor(key)]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.metrics.cacheEvent("verifier", true)
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.m[key]; ok {
		c.metrics.cacheEvent("verifier", true)
		return v
	}
	c.metrics.cacheEvent("verifier", false)
	v = verify.New(snap)
	sh.m[key] = v
	return v
}

// lruCache is a fixed-capacity LRU for verdicts, keyed on
// (chain-hash, snapshot, purpose, dns-name, time). A plain mutex suffices:
// the guarded section is two map ops and a list splice, orders of magnitude
// cheaper than the chain verification it short-circuits.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key   string
	value storeVerdict
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (storeVerdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return storeVerdict{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// getBytes looks up a key rendered into a reusable byte buffer. The
// map index expression compiles to an allocation-free lookup
// (m[string(b)] does not copy), which is what keeps the warm verdict
// path of the batch pipeline at zero allocations per hit.
func (c *lruCache) getBytes(key []byte) (storeVerdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		return storeVerdict{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

func (c *lruCache) put(key string, v storeVerdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).value = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, value: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
