package service_test

// End-to-end tests driving every endpoint of the serving layer through
// httptest against the deterministic synthetic ecosystem — including the
// paper's headline observable: the same PEM chain returning different
// verdicts depending on which client's User-Agent asks.

import (
	"bytes"
	"encoding/json"
	"encoding/pem"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	trustroots "repro"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/synth"
)

var (
	fixtureOnce sync.Once
	fixtureEco  *synth.Ecosystem
	fixtureSrv  *service.Server
	fixtureErr  error
)

// fixture returns the shared ecosystem and server (built once per process).
func fixture(t testing.TB) (*synth.Ecosystem, *service.Server) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureEco, fixtureErr = synth.Cached("trustd-test")
		if fixtureErr != nil {
			return
		}
		fixtureSrv = service.New(fixtureEco.DB, service.Config{})
	})
	if fixtureErr != nil {
		t.Fatalf("generate ecosystem: %v", fixtureErr)
	}
	return fixtureEco, fixtureSrv
}

func ts(y, m, d int) time.Time { return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC) }

// get performs a GET against the handler and decodes the JSON body into out.
func get(t *testing.T, srv *service.Server, path string, out any) *http.Response {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	if out != nil && res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return res
}

// postVerify posts a verify request body and decodes the response.
func postVerify(t *testing.T, srv *service.Server, body map[string]any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/verify", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var out map[string]any
	data, _ := io.ReadAll(rec.Result().Body)
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("POST /v1/verify: decode %q: %v", data, err)
		}
	}
	return rec.Result().StatusCode, out
}

// symantecChain mints a post-cutoff leaf under an NSS partially distrusted
// root and returns it as PEM — the §6.2 fixture chain.
func symantecChain(t testing.TB, eco *synth.Ecosystem) (chainPEM string, cutoff time.Time) {
	t.Helper()
	nssSnap := eco.DB.History(trustroots.NSS).At(ts(2020, 9, 15))
	var anchor *store.TrustEntry
	for _, e := range nssSnap.Entries() {
		if _, ok := e.DistrustAfterFor(store.ServerAuth); ok {
			anchor = e
			break
		}
	}
	if anchor == nil {
		t.Fatal("no partially distrusted root in NSS snapshot")
	}
	ca := eco.Universe.Lookup(anchor.Label)
	if ca == nil {
		t.Fatalf("CA %q not in universe", anchor.Label)
	}
	cutoff, _ = anchor.DistrustAfterFor(store.ServerAuth)
	leafDER, err := trustroots.IssueLeaf(ca, "shop.example.test", cutoff.AddDate(0, 2, 0), cutoff.AddDate(2, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pem.Encode(&buf, &pem.Block{Type: "CERTIFICATE", Bytes: leafDER}); err != nil {
		t.Fatal(err)
	}
	return buf.String(), cutoff
}

const (
	uaFirefox = "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.15; rv:80.0) Gecko/20100101 Firefox/80.0"
	uaSafari  = "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_6) AppleWebKit/605.1.15 (KHTML, like Gecko) Version/14.0.1 Safari/605.1.15"
	uaEdge    = "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/88.0.4324.50 Safari/537.36 Edg/88.0.705.50"
)

func TestProviders(t *testing.T) {
	_, srv := fixture(t)
	var resp struct {
		Providers []struct {
			Name      string `json:"name"`
			Snapshots int    `json:"snapshots"`
		} `json:"providers"`
		TotalSnapshots int `json:"total_snapshots"`
		IndexedRoots   int `json:"indexed_roots"`
	}
	res := get(t, srv, "/v1/providers", &resp)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if len(resp.Providers) != 10 {
		t.Fatalf("providers = %d, want 10", len(resp.Providers))
	}
	if resp.TotalSnapshots < 619 {
		t.Errorf("total snapshots = %d, want >= 619", resp.TotalSnapshots)
	}
	if resp.IndexedRoots == 0 {
		t.Error("index is empty")
	}
}

func TestProviderSnapshots(t *testing.T) {
	_, srv := fixture(t)
	var resp struct {
		Provider  string `json:"provider"`
		Snapshots []struct {
			Version string    `json:"version"`
			Date    time.Time `json:"date"`
			Roots   int       `json:"roots"`
		} `json:"snapshots"`
	}
	res := get(t, srv, "/v1/providers/NSS/snapshots", &resp)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if len(resp.Snapshots) == 0 {
		t.Fatal("no snapshots")
	}
	for i := 1; i < len(resp.Snapshots); i++ {
		if resp.Snapshots[i].Date.Before(resp.Snapshots[i-1].Date) {
			t.Errorf("snapshots out of order at %d", i)
		}
	}
	if res := get(t, srv, "/v1/providers/NetBSD/snapshots", nil); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown provider status = %d, want 404", res.StatusCode)
	}
}

func TestRootLookup(t *testing.T) {
	eco, srv := fixture(t)
	entry := eco.DB.History(trustroots.NSS).Latest().Entries()[0]
	var info struct {
		Fingerprint string   `json:"fingerprint"`
		Providers   []string `json:"providers"`
		Presences   []struct {
			Provider string            `json:"provider"`
			Trust    map[string]string `json:"trust"`
		} `json:"presences"`
	}
	res := get(t, srv, "/v1/roots/"+entry.Fingerprint.String(), &info)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if info.Fingerprint != entry.Fingerprint.String() {
		t.Errorf("fingerprint = %q", info.Fingerprint)
	}
	if len(info.Presences) == 0 || len(info.Providers) == 0 {
		t.Fatal("no presences for a root in the latest NSS store")
	}

	if res := get(t, srv, "/v1/roots/"+strings.Repeat("0", 64), nil); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown fingerprint status = %d, want 404", res.StatusCode)
	}
	if res := get(t, srv, "/v1/roots/nothex", nil); res.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fingerprint status = %d, want 400", res.StatusCode)
	}
}

func TestDiff(t *testing.T) {
	eco, srv := fixture(t)
	snaps := eco.DB.History(trustroots.NSS).Snapshots()
	first, last := snaps[0], snaps[len(snaps)-1]
	var resp struct {
		A            string `json:"a"`
		B            string `json:"b"`
		Added        []any  `json:"added"`
		Removed      []any  `json:"removed"`
		TrustChanges []any  `json:"trust_changes"`
	}
	path := fmt.Sprintf("/v1/diff?a=NSS@%s&b=NSS@%s", first.Version, last.Version)
	res := get(t, srv, path, &resp)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if len(resp.Added)+len(resp.Removed)+len(resp.TrustChanges) == 0 {
		t.Error("first→last NSS diff is empty; the history should churn")
	}

	if res := get(t, srv, "/v1/diff?a=NSS", nil); res.StatusCode != http.StatusBadRequest {
		t.Errorf("missing b status = %d, want 400", res.StatusCode)
	}
	if res := get(t, srv, "/v1/diff?a=NSS&b=NetBSD", nil); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown provider status = %d, want 404", res.StatusCode)
	}
	if res := get(t, srv, "/v1/diff?a=NSS@nope&b=NSS", nil); res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown version status = %d, want 404", res.StatusCode)
	}
}

// TestVerifyUADivergence is the acceptance scenario: one chain, three
// User-Agents, three different verdicts — because Firefox consults NSS
// (partial distrust), Safari the Apple store, and Edge the Microsoft store
// (which kept Symantec trusted through the study window).
func TestVerifyUADivergence(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)
	at := "2020-11-15"

	verdictFor := func(ua string) (outcome, provider string) {
		t.Helper()
		status, resp := postVerify(t, srv, map[string]any{
			"chain_pem": chain, "user_agent": ua, "at": at,
		})
		if status != http.StatusOK {
			t.Fatalf("UA %q: status = %d (%v)", ua, status, resp)
		}
		verdicts := resp["verdicts"].([]any)
		if len(verdicts) != 1 {
			t.Fatalf("UA %q: %d verdicts, want 1", ua, len(verdicts))
		}
		v := verdicts[0].(map[string]any)
		return v["outcome"].(string), v["provider"].(string)
	}

	ffOutcome, ffProv := verdictFor(uaFirefox)
	safOutcome, safProv := verdictFor(uaSafari)
	edgeOutcome, edgeProv := verdictFor(uaEdge)

	if ffProv != "NSS" || safProv != "Apple" || edgeProv != "Microsoft" {
		t.Fatalf("UA routing wrong: firefox→%s safari→%s edge→%s", ffProv, safProv, edgeProv)
	}
	if ffOutcome != "anchor-partial-distrust" {
		t.Errorf("NSS outcome = %q, want anchor-partial-distrust", ffOutcome)
	}
	if edgeOutcome != "ok" {
		t.Errorf("Microsoft outcome = %q, want ok (Symantec stayed trusted)", edgeOutcome)
	}
	if safOutcome == ffOutcome && safOutcome == edgeOutcome {
		t.Errorf("all verdicts agree (%q); stores should disagree", safOutcome)
	}
	t.Logf("one chain, three clients: Firefox=%s Safari=%s Edge=%s", ffOutcome, safOutcome, edgeOutcome)
}

// TestVerifyFlattenedDerivative checks the §6.2 failure through the API:
// NSS rejects the post-cutoff leaf, Debian's flattened copy accepts it.
func TestVerifyFlattenedDerivative(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)
	status, resp := postVerify(t, srv, map[string]any{
		"chain_pem": chain,
		"stores":    []string{"NSS", "Debian"},
		"at":        "2020-11-15",
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d (%v)", status, resp)
	}
	outcomes := map[string]string{}
	for _, raw := range resp["verdicts"].([]any) {
		v := raw.(map[string]any)
		outcomes[v["provider"].(string)] = v["outcome"].(string)
	}
	if outcomes["NSS"] != "anchor-partial-distrust" {
		t.Errorf("NSS = %q, want anchor-partial-distrust", outcomes["NSS"])
	}
	if outcomes["Debian"] != "ok" {
		t.Errorf("Debian = %q, want ok (the flattened copy's dangerous acceptance)", outcomes["Debian"])
	}
}

func TestVerifyAllStoresAndCaching(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)
	body := map[string]any{"chain_pem": chain, "at": "2020-11-15"}

	status, resp := postVerify(t, srv, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	verdicts := resp["verdicts"].([]any)
	if len(verdicts) != len(eco.DB.Providers()) {
		t.Fatalf("verdicts = %d, want one per provider (%d)", len(verdicts), len(eco.DB.Providers()))
	}

	// Repeat: every verdict must come from the LRU now.
	_, resp = postVerify(t, srv, body)
	for _, raw := range resp["verdicts"].([]any) {
		v := raw.(map[string]any)
		if cached, _ := v["cached"].(bool); !cached {
			t.Errorf("store %v verdict not cached on the second call", v["store"])
		}
	}
	if srv.Metrics().CacheHits("verdict") == 0 {
		t.Error("verdict cache hit counter is zero after a repeat request")
	}
}

func TestVerifyBadInputs(t *testing.T) {
	_, srv := fixture(t)
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"empty chain", map[string]any{"chain_pem": ""}, http.StatusBadRequest},
		{"no certificate blocks", map[string]any{"chain_pem": "-----BEGIN PUBLIC KEY-----\nAAAA\n-----END PUBLIC KEY-----\n"}, http.StatusBadRequest},
		{"garbage PEM body", map[string]any{"chain_pem": "-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n"}, http.StatusBadRequest},
		{"bad purpose", map[string]any{"chain_pem": "x", "purpose": "world-domination"}, http.StatusBadRequest},
		{"bad at", map[string]any{"chain_pem": "x", "at": "yesterday"}, http.StatusBadRequest},
		{"unknown store", map[string]any{"chain_pem": "x", "stores": []string{"NetBSD"}}, http.StatusNotFound},
		{"untraceable UA no stores", map[string]any{"chain_pem": "x", "user_agent": "okhttp/4.9.0"}, http.StatusUnprocessableEntity},
	}
	eco, _ := fixture(t)
	chain, _ := symantecChain(t, eco)
	for _, tc := range cases {
		if tc.body["chain_pem"] == "x" {
			tc.body["chain_pem"] = chain
		}
		status, _ := postVerify(t, srv, tc.body)
		if status != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, status, tc.want)
		}
	}

	// Broken JSON.
	req := httptest.NewRequest(http.MethodPost, "/v1/verify", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("broken JSON status = %d, want 400", rec.Code)
	}
}

func TestVerifyOversizedBody(t *testing.T) {
	eco, _ := fixture(t)
	small := service.New(eco.DB, service.Config{MaxBodyBytes: 256})
	big := map[string]any{"chain_pem": strings.Repeat("A", 4096)}
	raw, _ := json.Marshal(big)
	req := httptest.NewRequest(http.MethodPost, "/v1/verify", bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	small.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	_, srv := fixture(t)
	var h struct {
		Status    string `json:"status"`
		Snapshots int    `json:"snapshots"`
	}
	res := get(t, srv, "/healthz", &h)
	if res.StatusCode != http.StatusOK || h.Status != "ok" || h.Snapshots == 0 {
		t.Fatalf("healthz = %d %+v", res.StatusCode, h)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	eco, _ := fixture(t)
	srv := service.New(eco.DB, service.Config{})
	chain, _ := symantecChain(t, eco)
	body := map[string]any{"chain_pem": chain, "stores": []string{"NSS"}, "at": "2020-11-15"}
	postVerify(t, srv, body)
	postVerify(t, srv, body) // warm: verdict cache hit

	var m struct {
		Requests      map[string]int64 `json:"requests"`
		Cache         map[string]int64 `json:"cache"`
		VerdictsTotal int64            `json:"verdicts_total"`
		Outcomes      map[string]int64 `json:"verify_outcomes"`
	}
	res := get(t, srv, "/metrics", &m)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if m.Requests["POST /v1/verify"] != 2 {
		t.Errorf("request counter = %d, want 2", m.Requests["POST /v1/verify"])
	}
	if m.Cache["verdict_hits"] == 0 {
		t.Error("verdict_hits = 0 after a warm request")
	}
	if m.VerdictsTotal != 2 {
		t.Errorf("verdicts_total = %d, want 2", m.VerdictsTotal)
	}
	if m.Outcomes["anchor-partial-distrust"] == 0 {
		t.Error("outcome counter missing anchor-partial-distrust")
	}
}
