package service

// HTTP revalidation for the read-only database views. Each serving
// generation's ETag is the rootpack content hash of its database
// (archive.HashDatabase) — deterministic, so two trustd replicas serving
// the same tree emit the same tag, and any semantic change to any snapshot
// moves it. The hash walks the whole database, so it is computed lazily on
// the first conditional-capable response of a generation and cached for
// the generation's lifetime; swap-heavy paths that never serve reads pay
// nothing. Generations installed through SwapArchive skip the lazy
// computation entirely: their tag is the downloaded archive's content
// hash, pre-seeded at install.

import (
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/archive"
	"repro/internal/httpcond"
)

// etag returns the generation's strong entity tag, or "" when the database
// cannot be hashed (never expected; callers then skip revalidation).
func (st *dbState) etag() string {
	st.etagOnce.Do(func() {
		if h, err := archive.HashDatabase(st.db); err == nil {
			st.etagVal = `"` + hex.EncodeToString(h[:]) + `"`
		}
	})
	return st.etagVal
}

// hashHex returns the generation's archive content hash as bare hex — the
// X-Rootpack-Hash wire form.
func (st *dbState) hashHex() string {
	return strings.Trim(st.etag(), `"`)
}

// stampGeneration advertises the serving generation on the response:
// X-Rootpack-Hash carries the generation's archive content hash and
// X-Rootpack-Epoch its cluster epoch. Every /v1 route and /healthz stamp
// these, so a load balancer rolling a fleet can detect a replica still
// serving the previous generation and drain it — the straggler check the
// cluster subsystem's convergence story depends on.
func (s *Server) stampGeneration(w http.ResponseWriter, st *dbState) {
	h := w.Header()
	if hash := st.hashHex(); hash != "" {
		h["X-Rootpack-Hash"] = []string{hash}
	}
	h["X-Rootpack-Epoch"] = []string{strconv.FormatUint(st.epoch, 10)}
}

// conditionalGet stamps the generation's ETag on the response and, when the
// request's If-None-Match already names it, writes 304 Not Modified and
// reports true. Handlers call it only once their own resolution succeeded,
// so 400/404 semantics are untouched. If-None-Match is matched per RFC
// 9110 — multi-member lists, weak (W/) forms and the "*" wildcard — via
// internal/httpcond.
func (s *Server) conditionalGet(w http.ResponseWriter, r *http.Request, st *dbState) bool {
	tag := st.etag()
	if tag == "" {
		return false
	}
	w.Header().Set("ETag", tag)
	if httpcond.MatchIfNoneMatch(r.Header.Get("If-None-Match"), tag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}
