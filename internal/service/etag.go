package service

// HTTP revalidation for the read-only database views. Each serving
// generation's ETag is the rootpack content hash of its database
// (archive.HashDatabase) — deterministic, so two trustd replicas serving
// the same tree emit the same tag, and any semantic change to any snapshot
// moves it. The hash walks the whole database, so it is computed lazily on
// the first conditional-capable response of a generation and cached for
// the generation's lifetime; swap-heavy paths that never serve reads pay
// nothing.

import (
	"encoding/hex"
	"net/http"
	"strings"

	"repro/internal/archive"
)

// etag returns the generation's strong entity tag, or "" when the database
// cannot be hashed (never expected; callers then skip revalidation).
func (st *dbState) etag() string {
	st.etagOnce.Do(func() {
		if h, err := archive.HashDatabase(st.db); err == nil {
			st.etagVal = `"` + hex.EncodeToString(h[:]) + `"`
		}
	})
	return st.etagVal
}

// conditionalGet stamps the generation's ETag on the response and, when the
// request's If-None-Match already names it, writes 304 Not Modified and
// reports true. Handlers call it only once their own resolution succeeded,
// so 400/404 semantics are untouched.
func (s *Server) conditionalGet(w http.ResponseWriter, r *http.Request, st *dbState) bool {
	tag := st.etag()
	if tag == "" {
		return false
	}
	w.Header().Set("ETag", tag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, tag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// etagMatch implements If-None-Match list matching: comma-separated
// candidates, weak-validator prefixes compared weakly, and the "*"
// wildcard.
func etagMatch(header, tag string) bool {
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" {
			return true
		}
		if strings.TrimPrefix(c, "W/") == tag {
			return true
		}
	}
	return false
}
