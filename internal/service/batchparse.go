package service

// A hand-rolled parser for the restricted NDJSON line shape the batch
// endpoint accepts: one flat JSON object whose keys are the verify-request
// fields, with string or array-of-string values. encoding/json spends more
// time on a 1.5 KiB chain_pem line than the rest of the warm pipeline put
// together (a validity pre-scan plus a second decoding scan), which caps
// batch throughput on small machines. The fast path makes one pass and
// slices field values straight out of the line buffer.
//
// Correctness never depends on this parser: fastParseLine answers false for
// ANYTHING outside the plain shape — unknown keys, nested values, escape
// sequences in short strings, duplicate-free syntax it does not want to
// reason about — and the caller falls back to encoding/json, which remains
// the arbiter of validity and of error messages.

// lineFields is the decoded form of one batch line. All slices point into
// worker-owned memory (the line buffer or scratch); nothing escapes a line's
// processing except through explicit copies.
type lineFields struct {
	chainPEM []byte   // unescaped PEM text (scratch-backed when escaped)
	chainDER [][]byte // base64 DER segments, sliced from the line
	stores   [][]byte // store refs, sliced from the line
	ua       []byte
	at       []byte
	purpose  []byte
	dnsName  []byte
}

func (f *lineFields) reset() {
	f.chainPEM, f.ua, f.at, f.purpose, f.dnsName = nil, nil, nil, nil, nil
	f.chainDER = f.chainDER[:0]
	f.stores = f.stores[:0]
}

func jsonSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func skipSpace(b []byte, i int) int {
	for i < len(b) && jsonSpace(b[i]) {
		i++
	}
	return i
}

// fastParseLine decodes line into f. A false return means "shape too rich
// for me", not "invalid" — the caller must re-decode with encoding/json.
func fastParseLine(line []byte, f *lineFields, pemBuf *[]byte) bool {
	f.reset()
	i := skipSpace(line, 0)
	if i >= len(line) || line[i] != '{' {
		return false
	}
	i = skipSpace(line, i+1)
	if i < len(line) && line[i] == '}' {
		return skipSpace(line, i+1) == len(line)
	}
	for {
		if i >= len(line) || line[i] != '"' {
			return false
		}
		kStart := i + 1
		j := kStart
		for j < len(line) && line[j] != '"' {
			if line[j] == '\\' {
				return false
			}
			j++
		}
		if j >= len(line) {
			return false
		}
		key := line[kStart:j]
		i = skipSpace(line, j+1)
		if i >= len(line) || line[i] != ':' {
			return false
		}
		i = skipSpace(line, i+1)
		var ok bool
		switch string(key) {
		case "chain_pem":
			f.chainPEM, i, ok = readString(line, i, pemBuf)
		case "chain_der":
			f.chainDER, i, ok = readStringArray(line, i, f.chainDER[:0])
		case "stores":
			f.stores, i, ok = readStringArray(line, i, f.stores[:0])
		case "user_agent":
			f.ua, i, ok = readPlainString(line, i)
		case "at":
			f.at, i, ok = readPlainString(line, i)
		case "purpose":
			f.purpose, i, ok = readPlainString(line, i)
		case "dns_name":
			f.dnsName, i, ok = readPlainString(line, i)
		default:
			return false
		}
		if !ok {
			return false
		}
		i = skipSpace(line, i)
		if i >= len(line) {
			return false
		}
		switch line[i] {
		case ',':
			i = skipSpace(line, i+1)
		case '}':
			return skipSpace(line, i+1) == len(line)
		default:
			return false
		}
	}
}

// readPlainString reads a JSON string that contains no escape sequences,
// returning a view into b. Escapes (or a non-string value) answer !ok.
func readPlainString(b []byte, i int) (s []byte, next int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, false
	}
	start := i + 1
	for j := start; j < len(b); j++ {
		switch b[j] {
		case '"':
			return b[start:j], j + 1, true
		case '\\':
			return nil, i, false
		}
	}
	return nil, i, false
}

// readString reads a JSON string, unescaping into *buf only when the value
// actually contains escapes (chain_pem always does: its newlines arrive as
// \n). Unsupported escapes answer !ok and force the encoding/json fallback.
func readString(b []byte, i int, buf *[]byte) (s []byte, next int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, i, false
	}
	start := i + 1
	j := start
	for j < len(b) && b[j] != '"' && b[j] != '\\' {
		j++
	}
	if j >= len(b) {
		return nil, i, false
	}
	if b[j] == '"' { // no escapes: zero-copy view
		return b[start:j], j + 1, true
	}
	out := (*buf)[:0]
	out = append(out, b[start:j]...)
	for j < len(b) {
		switch b[j] {
		case '"':
			*buf = out
			return out, j + 1, true
		case '\\':
			j++
			if j >= len(b) {
				return nil, i, false
			}
			switch b[j] {
			case 'n':
				out = append(out, '\n')
			case 'r':
				out = append(out, '\r')
			case 't':
				out = append(out, '\t')
			case '"', '\\', '/':
				out = append(out, b[j])
			default:
				// \uXXXX and the rare short escapes: encoding/json's job.
				return nil, i, false
			}
			j++
		default:
			k := j
			for k < len(b) && b[k] != '"' && b[k] != '\\' {
				k++
			}
			out = append(out, b[j:k]...)
			j = k
		}
	}
	return nil, i, false
}

// readStringArray reads an array of escape-free strings as views into b.
func readStringArray(b []byte, i int, dst [][]byte) (elems [][]byte, next int, ok bool) {
	if i >= len(b) || b[i] != '[' {
		return nil, i, false
	}
	i = skipSpace(b, i+1)
	if i < len(b) && b[i] == ']' {
		return dst, i + 1, true
	}
	for {
		var s []byte
		s, i, ok = readPlainString(b, i)
		if !ok {
			return nil, i, false
		}
		dst = append(dst, s)
		i = skipSpace(b, i)
		if i >= len(b) {
			return nil, i, false
		}
		switch b[i] {
		case ',':
			i = skipSpace(b, i+1)
		case ']':
			return dst, i + 1, true
		default:
			return nil, i, false
		}
	}
}
