package service

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/useragent"
	"repro/internal/verify"
)

// apiError is the uniform error envelope.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("encode response", "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// decodeJSONBody decodes a JSON request body into v, answering malformed
// bodies with 400 and over-limit ones with 413. Every JSON POST route
// (/v1/verify, /v1/simulate) decodes through here, so the body-cap
// behaviour cannot drift between endpoints: the cap itself is applied
// uniformly by withTimeout from the single Config.MaxBodyBytes value
// (default DefaultMaxBodyBytes; the batch endpoint enforces the same
// value per NDJSON line inside its pipeline). Returns false when a
// response has already been written.
func (s *Server) decodeJSONBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		s.writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}

// providerSummary is one row of GET /v1/providers.
type providerSummary struct {
	Name string `json:"name"`
	// Kind tags the provider's ecosystem: "tls", "ct" or "manifest".
	Kind          string    `json:"kind"`
	Snapshots     int       `json:"snapshots"`
	First         time.Time `json:"first"`
	Latest        time.Time `json:"latest"`
	LatestVersion string    `json:"latest_version"`
	LatestRoots   int       `json:"latest_roots"`
}

type providersResponse struct {
	Providers      []providerSummary `json:"providers"`
	TotalSnapshots int               `json:"total_snapshots"`
	IndexedRoots   int               `json:"indexed_roots"`
}

func (s *Server) handleProviders(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	s.stampGeneration(w, st)
	if s.conditionalGet(w, r, st) {
		return
	}
	resp := providersResponse{
		TotalSnapshots: st.db.TotalSnapshots(),
		IndexedRoots:   st.index.Size(),
	}
	for _, name := range st.db.Providers() {
		h := st.db.History(name)
		latest := h.Latest()
		resp.Providers = append(resp.Providers, providerSummary{
			Name:          name,
			Kind:          string(latest.Kind.Normalize()),
			Snapshots:     h.Len(),
			First:         h.First().Date,
			Latest:        latest.Date,
			LatestVersion: latest.Version,
			LatestRoots:   latest.Len(),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// snapshotSummary is one row of GET /v1/providers/{p}/snapshots.
type snapshotSummary struct {
	Version    string    `json:"version"`
	Date       time.Time `json:"date"`
	Roots      int       `json:"roots"`
	TrustedTLS int       `json:"trusted_server_auth"`
}

type snapshotsResponse struct {
	Provider  string            `json:"provider"`
	Snapshots []snapshotSummary `json:"snapshots"`
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("provider")
	st := s.cur()
	s.stampGeneration(w, st)
	h := st.db.History(name)
	if h == nil {
		s.writeError(w, http.StatusNotFound, "unknown provider %q", name)
		return
	}
	resp := snapshotsResponse{Provider: name}
	for _, snap := range h.Snapshots() {
		resp.Snapshots = append(resp.Snapshots, snapshotSummary{
			Version:    snap.Version,
			Date:       snap.Date,
			Roots:      snap.Len(),
			TrustedTLS: snap.TrustedCount(store.ServerAuth),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRoot(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	st := s.cur()
	s.stampGeneration(w, st)
	info, ok := st.index.Lookup(fp)
	if !ok {
		// Distinguish malformed hex from a clean miss.
		if !isHexFingerprint(fp) {
			s.writeError(w, http.StatusBadRequest, "malformed fingerprint %q: want 64 hex chars", fp)
			return
		}
		s.writeError(w, http.StatusNotFound, "no store ever contained root %s", fp)
		return
	}
	if s.conditionalGet(w, r, st) {
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

func isHexFingerprint(s string) bool {
	s = strings.ReplaceAll(strings.TrimSpace(s), ":", "")
	if len(s) != 2*sha256.Size {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

// rootRef is a membership row in the diff response.
type rootRef struct {
	Fingerprint string `json:"fingerprint"`
	Label       string `json:"label,omitempty"`
}

type trustChangeRow struct {
	Fingerprint          string     `json:"fingerprint"`
	Label                string     `json:"label,omitempty"`
	Purpose              string     `json:"purpose"`
	Old                  string     `json:"old"`
	New                  string     `json:"new"`
	DistrustAfter        *time.Time `json:"distrust_after,omitempty"`
	DistrustAfterCleared bool       `json:"distrust_after_cleared,omitempty"`
}

type diffResponse struct {
	A            string           `json:"a"`
	B            string           `json:"b"`
	Added        []rootRef        `json:"added"`
	Removed      []rootRef        `json:"removed"`
	TrustChanges []trustChangeRow `json:"trust_changes"`
}

// handleDiff serves GET /v1/diff?a=Provider[@Version]&b=Provider[@Version]:
// membership and trust changes of b relative to a.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	aRef, bRef := r.URL.Query().Get("a"), r.URL.Query().Get("b")
	if aRef == "" || bRef == "" {
		s.writeError(w, http.StatusBadRequest, "diff requires both ?a= and ?b= snapshot refs (Provider or Provider@Version)")
		return
	}
	at, err := parseAt(r.URL.Query().Get("at"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := s.cur()
	s.stampGeneration(w, st)
	a, err := st.resolveSnapshot(aRef, at)
	if err != nil {
		s.writeRefError(w, err)
		return
	}
	b, err := st.resolveSnapshot(bRef, at)
	if err != nil {
		s.writeRefError(w, err)
		return
	}
	if s.conditionalGet(w, r, st) {
		return
	}
	d := store.DiffSnapshots(a, b)
	resp := diffResponse{A: a.Key(), B: b.Key()}
	for _, e := range d.Added {
		resp.Added = append(resp.Added, rootRef{e.Fingerprint.String(), e.Label})
	}
	for _, e := range d.Removed {
		resp.Removed = append(resp.Removed, rootRef{e.Fingerprint.String(), e.Label})
	}
	for _, tc := range d.TrustChanges {
		row := trustChangeRow{
			Fingerprint: tc.Fingerprint.String(),
			Label:       tc.Label,
			Purpose:     tc.Purpose.String(),
			Old:         tc.Old.String(),
			New:         tc.New.String(),
		}
		if tc.DistrustAfterSet {
			t := tc.DistrustAfter
			row.DistrustAfter = &t
		}
		row.DistrustAfterCleared = tc.DistrustAfterCleared
		resp.TrustChanges = append(resp.TrustChanges, row)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// refError distinguishes unknown references (404) from malformed ones (400).
type refError struct {
	notFound bool
	msg      string
}

func (e *refError) Error() string { return e.msg }

func (s *Server) writeRefError(w http.ResponseWriter, err error) {
	var re *refError
	if errors.As(err, &re) && re.notFound {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.writeError(w, http.StatusBadRequest, "%v", err)
}

// resolveSnapshot resolves "Provider" (snapshot in force at `at`, latest
// when at is zero) or "Provider@Version" (exact release) within one
// serving generation.
func (st *dbState) resolveSnapshot(ref string, at time.Time) (*store.Snapshot, error) {
	provider, version, hasVersion := strings.Cut(ref, "@")
	h := st.db.History(provider)
	if h == nil {
		return nil, &refError{notFound: true, msg: fmt.Sprintf("unknown provider %q", provider)}
	}
	if hasVersion {
		for _, snap := range h.Snapshots() {
			if snap.Version == version {
				return snap, nil
			}
		}
		return nil, &refError{notFound: true, msg: fmt.Sprintf("provider %q has no version %q", provider, version)}
	}
	if !at.IsZero() {
		if snap := h.At(at); snap != nil {
			return snap, nil
		}
		return nil, &refError{notFound: true, msg: fmt.Sprintf("provider %q has no snapshot at %s", provider, at.Format("2006-01-02"))}
	}
	return h.Latest(), nil
}

// parseAt accepts RFC 3339 or bare dates.
func parseAt(s string) (time.Time, error) {
	if s == "" {
		return time.Time{}, nil
	}
	for _, layout := range []string{time.RFC3339, "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("invalid time %q: want RFC 3339 or YYYY-MM-DD", s)
}

// verifyRequest is the POST /v1/verify body.
type verifyRequest struct {
	// ChainPEM holds the chain, leaf first, as concatenated PEM blocks.
	ChainPEM string `json:"chain_pem"`
	// Purpose defaults to server-auth.
	Purpose string `json:"purpose,omitempty"`
	DNSName string `json:"dns_name,omitempty"`
	// UserAgent, when set, is routed through the paper's UA → provider
	// mapping and that provider's store joins the fan-out.
	UserAgent string `json:"user_agent,omitempty"`
	// Stores lists snapshot refs ("NSS", "Debian@Debian-007"); empty plus
	// no user_agent means every provider.
	Stores []string `json:"stores,omitempty"`
	// At is the verification instant (RFC 3339 or YYYY-MM-DD); each
	// snapshot's own date when empty.
	At string `json:"at,omitempty"`
}

// uaInfo reports how the User-Agent was routed.
type uaInfo struct {
	Browser   string `json:"browser"`
	OS        string `json:"os"`
	Provider  string `json:"provider,omitempty"`
	Traceable bool   `json:"traceable"`
	Reason    string `json:"reason"`
}

// storeVerdict is one store's view of the chain — the row the whole service
// exists to serve.
type storeVerdict struct {
	Store             string    `json:"store"`
	Provider          string    `json:"provider"`
	Date              time.Time `json:"date"`
	Outcome           string    `json:"outcome"`
	AnchorFingerprint string    `json:"anchor,omitempty"`
	AnchorLabel       string    `json:"anchor_label,omitempty"`
	Error             string    `json:"error,omitempty"`
	Cached            bool      `json:"cached,omitempty"`
}

type verifyResponse struct {
	ChainSHA256 string         `json:"chain_sha256"`
	Purpose     string         `json:"purpose"`
	At          *time.Time     `json:"at,omitempty"`
	UserAgent   *uaInfo        `json:"user_agent,omitempty"`
	Verdicts    []storeVerdict `json:"verdicts"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	// The whole request — routing, fan-out, caching — runs against one
	// generation, and that generation's identity rides the response.
	st := s.cur()
	s.stampGeneration(w, st)

	var req verifyRequest
	if !s.decodeJSONBody(w, r, &req) {
		return
	}

	leaf, intermediates, chainHash, err := parseChainPEM(req.ChainPEM)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	purpose := store.ServerAuth
	if req.Purpose != "" {
		purpose, err = store.ParsePurpose(req.Purpose)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	at, err := parseAt(req.At)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	resp := verifyResponse{ChainSHA256: chainHash, Purpose: purpose.String()}
	if !at.IsZero() {
		resp.At = &at
	}

	refs := append([]string(nil), req.Stores...)
	if req.UserAgent != "" {
		agent := useragent.Parse(req.UserAgent)
		mapped := useragent.MapToProvider(agent)
		resp.UserAgent = &uaInfo{
			Browser:   string(agent.Browser),
			OS:        string(agent.OS),
			Provider:  string(mapped.Provider),
			Traceable: mapped.Traceable,
			Reason:    mapped.Reason,
		}
		if mapped.Traceable {
			refs = append(refs, string(mapped.Provider))
		} else if len(refs) == 0 {
			// The paper could not trace this client to a store and the
			// caller named no fallback: nothing to verify against.
			s.writeJSON(w, http.StatusUnprocessableEntity, resp)
			return
		}
	}
	if len(refs) == 0 {
		refs = st.db.Providers()
	}

	snaps := make([]*store.Snapshot, 0, len(refs))
	seen := map[string]bool{}
	for _, ref := range refs {
		snap, err := st.resolveSnapshot(ref, at)
		if err != nil {
			s.writeRefError(w, err)
			return
		}
		if !seen[snap.Key()] {
			seen[snap.Key()] = true
			snaps = append(snaps, snap)
		}
	}

	resp.Verdicts = s.fanoutVerify(r, st, snaps, verify.Request{
		Leaf:          leaf,
		Intermediates: intermediates,
		// One pool for the whole fan-out: without this every per-store
		// goroutine rebuilds the same intermediates pool.
		InterPool: verify.PoolIntermediates(intermediates),
		Purpose:   purpose,
		DNSName:   req.DNSName,
		At:        at,
	}, chainHash)
	s.writeJSON(w, http.StatusOK, resp)
}

// fanoutVerify verifies the chain against every snapshot concurrently,
// bounded by the worker semaphore and the request context. The whole
// fan-out runs against one serving generation (st), so a hot swap cannot
// mix verdicts from two databases in one response.
//
// A worker slot is acquired BEFORE the goroutine is spawned, so a wide
// `stores` fan-out never bursts goroutines past the semaphore: at most
// VerifyWorkers verification goroutines exist process-wide, shared with
// the batch pipeline.
func (s *Server) fanoutVerify(r *http.Request, st *dbState, snaps []*store.Snapshot, vreq verify.Request, chainHash string) []storeVerdict {
	ctx := r.Context()
	out := make([]storeVerdict, len(snaps))
	// Annotate (bounded, drop-not-grow) rather than SetAttr for the
	// per-verdict tags: a wide fan-out cannot balloon span records.
	chainDepth := strconv.Itoa(1 + len(vreq.Intermediates))
	var wg sync.WaitGroup
	for i, snap := range snaps {
		// One child span per store verdict: the per-store wait + verify
		// time is exactly what the fan-out hides from the aggregate
		// request latency. Started before the semaphore acquire so queue
		// wait is part of the span.
		storeKey := snap.Key()
		span := obs.StartLeafSpan(ctx, "verify.store")
		span.Annotate("store", storeKey)
		span.Annotate("chain_depth", chainDepth)
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			out[i] = storeVerdict{
				Store: storeKey, Provider: snap.Provider, Date: snap.Date,
				Outcome: "timeout", Error: ctx.Err().Error(),
			}
			span.Annotate("outcome", "timeout")
			span.End()
			continue
		}
		wg.Add(1)
		go func(i int, snap *store.Snapshot, span *obs.Span) {
			defer wg.Done()
			defer func() { <-s.sem }()
			defer span.End()
			out[i] = s.verdictFor(st, snap, vreq, chainHash)
			span.Annotate("outcome", out[i].Outcome)
			if out[i].Cached {
				span.Annotate("cached", "true")
			} else {
				span.Annotate("cached", "false")
			}
		}(i, snap, span)
	}
	wg.Wait()
	for i := range out {
		s.metrics.outcomes.Add(out[i].Outcome, 1)
		s.metrics.verified.Add(1)
	}
	return out
}

// keyBufPool recycles verdict-cache key buffers so neither the single
// verify path nor the batch pipeline allocates to build a key. 192 bytes
// covers a 64-hex chain hash plus snapshot key, purpose, dns name and an
// RFC 3339 timestamp without growth in practice.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 192)
	return &b
}}

// appendVerdictKey renders the verdict-cache identity of one (chain, store)
// pair into buf: chainHash|snapKey|purpose|dns|RFC3339(at). Replaces the
// strings.Join + time.Format pair that used to allocate on every verdict.
func appendVerdictKey(buf []byte, chainHash, snapKey string, purpose store.Purpose, dnsName string, at time.Time) []byte {
	buf = append(buf, chainHash...)
	buf = append(buf, '|')
	buf = append(buf, snapKey...)
	buf = append(buf, '|')
	buf = append(buf, purpose.String()...)
	buf = append(buf, '|')
	buf = append(buf, dnsName...)
	buf = append(buf, '|')
	return at.UTC().AppendFormat(buf, time.RFC3339)
}

// verdictFor computes (or recalls) one store's verdict using the
// generation's caches.
func (s *Server) verdictFor(st *dbState, snap *store.Snapshot, vreq verify.Request, chainHash string) storeVerdict {
	at := vreq.At
	if at.IsZero() {
		at = snap.Date
	}
	bp := keyBufPool.Get().(*[]byte)
	key := appendVerdictKey((*bp)[:0], chainHash, snap.Key(), vreq.Purpose, vreq.DNSName, at)
	defer func() {
		*bp = key
		keyBufPool.Put(bp)
	}()
	if v, ok := st.verdicts.getBytes(key); ok {
		s.metrics.cacheEvent("verdict", true)
		v.Cached = true
		return v
	}
	s.metrics.cacheEvent("verdict", false)

	res := st.verifiers.get(snap).Verify(vreq)
	v := storeVerdict{
		Store:    snap.Key(),
		Provider: snap.Provider,
		Date:     snap.Date,
		Outcome:  res.Outcome.String(),
	}
	if res.Anchor != nil {
		v.AnchorFingerprint = res.Anchor.Fingerprint.String()
		v.AnchorLabel = res.Anchor.Label
	}
	if res.Err != nil {
		v.Error = res.Err.Error()
	}
	st.verdicts.put(string(key), v)
	return v
}

// parseChainPEM decodes the chain (leaf first) and hashes the concatenated
// DER — the verdict-cache identity of the chain.
func parseChainPEM(chainPEM string) (leaf *x509.Certificate, intermediates []*x509.Certificate, chainHash string, err error) {
	rest := []byte(chainPEM)
	h := sha256.New()
	var certs []*x509.Certificate
	for {
		var block *pem.Block
		block, rest = pem.Decode(rest)
		if block == nil {
			break
		}
		if block.Type != "CERTIFICATE" {
			continue
		}
		cert, perr := x509.ParseCertificate(block.Bytes)
		if perr != nil {
			return nil, nil, "", fmt.Errorf("certificate %d in chain_pem: %v", len(certs), perr)
		}
		h.Write(cert.Raw)
		certs = append(certs, cert)
	}
	if len(certs) == 0 {
		return nil, nil, "", errors.New("chain_pem contains no CERTIFICATE blocks")
	}
	return certs[0], certs[1:], hex.EncodeToString(h.Sum(nil)), nil
}

// generationInfo identifies the serving generation in /healthz: the
// rootpack content hash of the database and the cluster epoch — the same
// values every /v1 response stamps as X-Rootpack-Hash/-Epoch headers.
type generationInfo struct {
	Hash  string `json:"hash"`
	Epoch uint64 `json:"epoch"`
}

// healthResponse is GET /healthz.
type healthResponse struct {
	Status       string         `json:"status"`
	Providers    int            `json:"providers"`
	Snapshots    int            `json:"snapshots"`
	IndexedRoots int            `json:"indexed_roots"`
	Generation   generationInfo `json:"generation"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.cur()
	s.stampGeneration(w, st)
	s.writeJSON(w, http.StatusOK, healthResponse{
		Status:       "ok",
		Providers:    len(st.db.Providers()),
		Snapshots:    st.db.TotalSnapshots(),
		IndexedRoots: st.index.Size(),
		Generation:   generationInfo{Hash: st.hashHex(), Epoch: st.epoch},
	})
}
