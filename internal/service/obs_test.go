package service_test

// Observability tests: traceparent propagation through the verify fan-out,
// the /debug/traces view of per-store child spans, and the Prometheus
// exposition's wire cleanliness.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/service"
)

const testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// TestVerifyTraceparent drives POST /v1/verify with a W3C traceparent
// header and follows the trace end to end: the response must echo the
// caller's trace ID, and /debug/traces must show the request trace with
// one verify.store child span per store in the fan-out.
func TestVerifyTraceparent(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)

	raw, _ := json.Marshal(map[string]any{
		"chain_pem": chain,
		"stores":    []string{"NSS", "Microsoft"},
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/verify", bytes.NewReader(raw))
	req.Header.Set("traceparent", testTraceparent)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("verify status = %d: %s", res.StatusCode, body)
	}

	const wantTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := res.Header.Get("X-Trace-Id"); got != wantTraceID {
		t.Errorf("X-Trace-Id = %q, want %q", got, wantTraceID)
	}
	hdr := res.Header.Get("Traceparent")
	tp, err := obs.ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("response Traceparent %q unparseable: %v", hdr, err)
	}
	if tp.TraceID.String() != wantTraceID {
		t.Errorf("response trace id = %s, want %s", tp.TraceID, wantTraceID)
	}
	if tp.SpanID.String() == "00f067aa0ba902b7" {
		t.Error("response span id should be the server's root span, not the caller's span")
	}

	// The trace must be queryable with the per-store fan-out spans.
	dreq := httptest.NewRequest(http.MethodGet, "/debug/traces?n=256", nil)
	drec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(drec, dreq)
	var dump struct {
		Recent []struct {
			TraceID      string `json:"trace_id"`
			Name         string `json:"name"`
			RemoteParent string `json:"remote_parent"`
			Spans        []struct {
				Name     string `json:"name"`
				ParentID string `json:"parent_id"`
				Attrs    []struct {
					Key   string `json:"key"`
					Value string `json:"value"`
				} `json:"attrs"`
			} `json:"spans"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(drec.Result().Body).Decode(&dump); err != nil {
		t.Fatalf("decode /debug/traces: %v", err)
	}
	for _, tr := range dump.Recent {
		if tr.TraceID != wantTraceID {
			continue
		}
		if tr.Name != "POST /v1/verify" {
			t.Errorf("trace name = %q", tr.Name)
		}
		if tr.RemoteParent != "00f067aa0ba902b7" {
			t.Errorf("remote parent = %q, want caller span id", tr.RemoteParent)
		}
		stores := map[string]bool{}
		for _, sp := range tr.Spans {
			if sp.Name != "verify.store" {
				continue
			}
			for _, a := range sp.Attrs {
				if a.Key == "store" {
					stores[a.Value] = true
				}
			}
		}
		if len(stores) != 2 {
			t.Errorf("verify.store spans cover stores %v, want 2 distinct stores", stores)
		}
		return
	}
	t.Fatalf("trace %s not found in /debug/traces recent set", wantTraceID)
}

// TestPrometheusEndpoint scrapes /metrics/prometheus after real traffic
// and holds the exposition to the wire linter plus the presence of the
// headline families.
func TestPrometheusEndpoint(t *testing.T) {
	eco, srv := fixture(t)
	chain, _ := symantecChain(t, eco)
	if code, _ := postVerify(t, srv, map[string]any{"chain_pem": chain, "stores": []string{"NSS"}}); code != http.StatusOK {
		t.Fatalf("seed verify failed: %d", code)
	}
	// A guaranteed 4xx so rejected_total and the 4xx class are nonzero.
	if res := get(t, srv, "/v1/roots/nothex", nil); res.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed fingerprint status = %d", res.StatusCode)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics/prometheus", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	res := rec.Result()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	if problems := obs.LintExposition(strings.NewReader(text)); len(problems) != 0 {
		t.Fatalf("exposition lint problems:\n%s", strings.Join(problems, "\n"))
	}
	for _, want := range []string{
		"trustd_requests_total{route=\"POST /v1/verify\"}",
		"trustd_request_duration_seconds_bucket{route=\"POST /v1/verify\",le=\"+Inf\"}",
		"trustd_provider_lag_seconds{provider=\"NSS\"}",
		"trustd_cache_events_total{cache=\"verdict\"",
		"trustd_errors_total",
		"trustd_uptime_seconds",
		"trustd_traces_started_total",
		"trustd_slo_availability_target",
		"trustd_slo_latency_threshold_seconds",
		"trustd_slo_burn_rate{slo=\"availability\",window=\"5m\"}",
		"trustd_slo_burn_rate{slo=\"latency\",window=\"1h\"}",
		"trustd_slo_window_requests{window=\"5m\"}",
		"go_goroutines",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Every request is traced, so the verify route's histogram must carry
	// at least one exemplar, and its trace ID must resolve to the live
	// trace at /debug/traces?trace_id=<id>.
	exIdx := strings.Index(text, `# {trace_id="`)
	if exIdx < 0 {
		t.Fatal("exposition has no bucket exemplars")
	}
	rest := text[exIdx+len(`# {trace_id="`):]
	traceID := rest[:strings.IndexByte(rest, '"')]
	if len(traceID) != 32 {
		t.Fatalf("exemplar trace id %q not 32 hex chars", traceID)
	}
	dreq := httptest.NewRequest(http.MethodGet, "/debug/traces?trace_id="+traceID, nil)
	drec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(drec, dreq)
	var dump struct {
		Recent []struct {
			TraceID  string `json:"trace_id"`
			BucketLE string `json:"bucket_le"`
		} `json:"recent"`
		Slowest []struct {
			TraceID string `json:"trace_id"`
		} `json:"slowest"`
	}
	if err := json.NewDecoder(drec.Result().Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Recent)+len(dump.Slowest) == 0 {
		t.Fatalf("exemplar trace %s not found in /debug/traces", traceID)
	}
	for _, tr := range dump.Recent {
		if tr.TraceID != traceID {
			t.Errorf("filter leaked trace %s", tr.TraceID)
		}
		if tr.BucketLE == "" {
			t.Error("trace record missing bucket_le")
		}
	}
}

// TestPerRouteLatencyAndErrorCounters exercises satellite metrics: the
// per-route HDR histogram fills alongside the aggregate, quantiles come
// out of the /metrics JSON summary, and the SLO ring sees the traffic.
func TestPerRouteLatencyAndErrorCounters(t *testing.T) {
	_, srv := fixture(t)
	get(t, srv, "/v1/providers", nil)

	m := srv.Metrics()
	snap := m.LatencySnapshot("GET /v1/providers")
	if snap.Count == 0 {
		t.Error("per-route latency histogram empty after a request")
	}
	if agg := m.LatencySnapshot(""); agg.Count == 0 {
		t.Error("aggregate latency histogram empty after a request")
	}
	if m.RequestCount("GET /v1/providers") == 0 {
		t.Error("route counter empty")
	}
	if _, _, req := m.SLOBurnRates(5); req == 0 {
		t.Error("SLO 5m window saw no requests")
	}

	var raw map[string]any
	get(t, srv, "/metrics", &raw)
	lat, ok := raw["latency_ms"].(map[string]any)
	if !ok {
		t.Fatalf("latency_ms missing in /metrics: %T", raw["latency_ms"])
	}
	route, ok := lat["GET /v1/providers"].(map[string]any)
	if !ok {
		t.Fatalf("latency_ms has no per-route summary: %v", lat)
	}
	if c, _ := route["count"].(float64); c == 0 {
		t.Errorf("latency summary count = %v", route["count"])
	}
	for _, q := range []string{"p50_ms", "p99_ms", "p999_ms"} {
		if _, ok := route[q].(float64); !ok {
			t.Errorf("latency summary missing %s: %v", q, route)
		}
	}
}

// TestUptimeAndLagComputedAtRead asserts the stale-gauge fix: both gauges
// move (or hold correct values) without any reload happening in between.
func TestUptimeAndLagComputedAtRead(t *testing.T) {
	_, srv := fixture(t)
	m := srv.Metrics()
	if lag := m.ProviderLagSeconds("NSS"); lag <= 0 {
		t.Errorf("NSS lag = %d, want positive (snapshots are historical)", lag)
	}
	if lag := m.ProviderLagSeconds("NoSuchProvider"); lag != -1 {
		t.Errorf("unknown provider lag = %d, want -1", lag)
	}
	var raw map[string]any
	get(t, srv, "/metrics", &raw)
	if _, ok := raw["uptime_seconds"].(float64); !ok {
		t.Errorf("uptime_seconds missing or not numeric in /metrics: %v", raw["uptime_seconds"])
	}
	if _, ok := raw["provider_lag_seconds"].(map[string]any); !ok {
		t.Errorf("provider_lag_seconds missing in /metrics")
	}
}

// TestDebugTracesHandlerBounds sanity-checks the ?n= bound.
func TestDebugTracesHandlerBounds(t *testing.T) {
	_, srv := fixture(t)
	for i := 0; i < 3; i++ {
		get(t, srv, "/v1/providers", nil)
	}
	req := httptest.NewRequest(http.MethodGet, "/debug/traces?n=2", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var dump struct {
		TracesStarted uint64           `json:"traces_started"`
		Recent        []map[string]any `json:"recent"`
	}
	if err := json.NewDecoder(rec.Result().Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Recent) > 2 {
		t.Errorf("recent = %d traces, want ≤ 2", len(dump.Recent))
	}
	if dump.TracesStarted == 0 {
		t.Error("traces_started = 0 after requests")
	}
}

// TestConfigSharedTracer proves Config.Tracer is honoured — cmd/trustd
// relies on this to pool server and tracker traces in one ring.
func TestConfigSharedTracer(t *testing.T) {
	eco, _ := fixture(t)
	tr := obs.NewTracer(obs.Options{SlowThreshold: -1})
	srv := service.New(eco.DB, service.Config{Tracer: tr})
	if srv.Tracer() != tr {
		t.Fatal("server did not adopt the supplied tracer")
	}
	get(t, srv, "/healthz", nil) // healthz is deliberately uninstrumented
	get(t, srv, "/v1/providers", nil)
	if tr.Started() != 1 {
		t.Fatalf("shared tracer started = %d traces, want 1", tr.Started())
	}
}
