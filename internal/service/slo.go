package service

// Scrape-time SLO burn rates. The server keeps a small minute-bucketed
// ring of request/error/slow counters — two atomic adds per request —
// and /metrics/prometheus derives multi-window burn rates from it at
// scrape time (the standard fast-burn/slow-burn alerting pair: a 5m
// window that fires on sharp regressions and a 1h window that catches
// slow bleeds). Nothing is aggregated in the background; an idle server
// spends zero cycles on SLOs.

import (
	"sync/atomic"
	"time"
)

const (
	// sloAvailabilityTarget is the fraction of requests that must not be
	// 5xx (99.9%).
	sloAvailabilityTarget = 0.999
	// sloLatencyThreshold is the latency SLO's cutoff: requests slower
	// than this count against the latency budget.
	sloLatencyThreshold = 100 * time.Millisecond
	// sloLatencyTarget is the fraction of requests that must finish
	// within sloLatencyThreshold (99%).
	sloLatencyTarget = 0.99
	// sloRingMinutes sizes the ring: the longest burn window (1h) plus
	// slack so a scrape near a minute boundary never wraps into slots it
	// still needs.
	sloRingMinutes = 75
)

// sloWindows are the burn-rate windows exposed per SLO.
var sloWindows = []struct {
	label   string
	minutes int64
}{
	{"5m", 5},
	{"1h", 60},
}

// sloMinute is one ring slot: the absolute minute it covers plus that
// minute's counters. A slot is recycled in place when its minute lapses.
type sloMinute struct {
	minute   atomic.Int64 // unix time / 60; 0 = never used
	requests atomic.Uint64
	errors   atomic.Uint64 // 5xx responses
	slow     atomic.Uint64 // slower than sloLatencyThreshold
}

// sloRing is the fixed ring of per-minute counters.
type sloRing struct {
	slots [sloRingMinutes]sloMinute
	// nowFunc is swapped by tests for deterministic windows.
	nowFunc func() time.Time
}

func newSLORing() *sloRing { return &sloRing{nowFunc: time.Now} }

// observe counts one finished request into the current minute's slot.
// Slot recycling races (two goroutines crossing a minute boundary) can
// drop a handful of counts from the outgoing minute — irrelevant at
// burn-rate granularity and worth it to keep this lock-free.
func (r *sloRing) observe(code int, d time.Duration) {
	now := r.nowFunc().Unix() / 60
	slot := &r.slots[now%sloRingMinutes]
	if old := slot.minute.Load(); old != now {
		if slot.minute.CompareAndSwap(old, now) {
			slot.requests.Store(0)
			slot.errors.Store(0)
			slot.slow.Store(0)
		}
	}
	slot.requests.Add(1)
	if code >= 500 {
		slot.errors.Add(1)
	}
	if d > sloLatencyThreshold {
		slot.slow.Add(1)
	}
}

// window sums the last `minutes` complete-or-current minutes.
func (r *sloRing) window(minutes int64) (requests, errors, slow uint64) {
	now := r.nowFunc().Unix() / 60
	for i := range r.slots {
		m := r.slots[i].minute.Load()
		if m == 0 || m > now || now-m >= minutes {
			continue
		}
		requests += r.slots[i].requests.Load()
		errors += r.slots[i].errors.Load()
		slow += r.slots[i].slow.Load()
	}
	return requests, errors, slow
}

// burnRates computes the availability and latency burn rates over one
// window: observed bad-fraction divided by the error budget
// (1 - target). Burn 1.0 = exactly consuming budget at the sustainable
// rate; 14.4 on the 5m window is the classic page-now threshold. Empty
// windows burn 0.
func (r *sloRing) burnRates(minutes int64) (availability, latency float64, requests uint64) {
	req, errs, slow := r.window(minutes)
	if req == 0 {
		return 0, 0, 0
	}
	availability = (float64(errs) / float64(req)) / (1 - sloAvailabilityTarget)
	latency = (float64(slow) / float64(req)) / (1 - sloLatencyTarget)
	return availability, latency, req
}
