package service

// This file holds the global root index: a SHA-256-fingerprint →
// (provider, version) inverted index across every snapshot in the database.
// It answers the paper's central question — "who trusts this root, for what,
// and with what caveats?" — in one map lookup instead of scanning 619
// snapshots' entries per query.

import (
	"time"

	"repro/internal/certutil"
	"repro/internal/store"
)

// Presence records one snapshot's view of one root.
type Presence struct {
	Provider string    `json:"provider"`
	Version  string    `json:"version"`
	Date     time.Time `json:"date"`
	// Trust maps purpose name → trust level name for every purpose the
	// snapshot specifies.
	Trust map[string]string `json:"trust,omitempty"`
	// DistrustAfter maps purpose name → partial-distrust cutoff.
	DistrustAfter map[string]time.Time `json:"distrust_after,omitempty"`
}

// RootInfo is everything the index knows about one fingerprint.
type RootInfo struct {
	Fingerprint string     `json:"fingerprint"`
	Label       string     `json:"label,omitempty"`
	Subject     string     `json:"subject,omitempty"`
	NotBefore   time.Time  `json:"not_before"`
	NotAfter    time.Time  `json:"not_after"`
	Presences   []Presence `json:"presences"`
	// Providers is the deduplicated provider list, a quick "who trusts
	// this" summary.
	Providers []string `json:"providers"`
}

// RootIndex is the inverted index. Fingerprints are resolved through the
// database's interner to dense uint32 IDs — the same ID space the
// analysis bitsets use — so the info table is a flat slice instead of a
// 32-byte-keyed map. It is built once at startup and immutable
// afterwards, so concurrent readers need no locking.
type RootIndex struct {
	interner *store.Interner
	infos    []*RootInfo // indexed by interned ID; nil gaps are legal
	roots    int
}

// BuildIndex walks every snapshot of every provider.
func BuildIndex(db *store.Database) *RootIndex {
	in := db.Interner()
	ix := &RootIndex{interner: in, infos: make([]*RootInfo, in.Len())}
	for _, snap := range db.AllSnapshots() {
		for _, e := range snap.Entries() {
			id := int(in.ID(e.Fingerprint))
			for id >= len(ix.infos) {
				ix.infos = append(ix.infos, nil)
			}
			info := ix.infos[id]
			if info == nil {
				info = &RootInfo{
					Fingerprint: e.Fingerprint.String(),
					Label:       e.Label,
					Subject:     certutil.DisplayName(e.Cert),
					NotBefore:   e.Cert.NotBefore,
					NotAfter:    e.Cert.NotAfter,
				}
				ix.infos[id] = info
				ix.roots++
			}
			info.Presences = append(info.Presences, presenceOf(snap, e))
			if n := len(info.Providers); n == 0 || info.Providers[n-1] != snap.Provider {
				info.Providers = append(info.Providers, snap.Provider)
			}
		}
	}
	return ix
}

func presenceOf(snap *store.Snapshot, e *store.TrustEntry) Presence {
	p := Presence{Provider: snap.Provider, Version: snap.Version, Date: snap.Date}
	for _, purpose := range store.AllPurposes {
		if l := e.TrustFor(purpose); l != store.Unspecified {
			if p.Trust == nil {
				p.Trust = make(map[string]string)
			}
			p.Trust[purpose.String()] = l.String()
		}
		if cutoff, ok := e.DistrustAfterFor(purpose); ok {
			if p.DistrustAfter == nil {
				p.DistrustAfter = make(map[string]time.Time)
			}
			p.DistrustAfter[purpose.String()] = cutoff
		}
	}
	return p
}

// Lookup resolves a hex fingerprint (optionally colon-separated).
func (ix *RootIndex) Lookup(hexFP string) (*RootInfo, bool) {
	fp, err := certutil.ParseFingerprint(hexFP)
	if err != nil {
		return nil, false
	}
	id, ok := ix.interner.LookupID(fp)
	if !ok || int(id) >= len(ix.infos) || ix.infos[id] == nil {
		return nil, false
	}
	return ix.infos[id], true
}

// Size returns the number of distinct roots indexed.
func (ix *RootIndex) Size() int { return ix.roots }
