package service

// POST /v1/verify/batch — the corpus-scale verification hot path. The
// request body is NDJSON: one JSON object per line with the same shape as
// the /v1/verify body, plus `chain_der` (base64 DER certificates, leaf
// first) to skip PEM decoding entirely. The response streams back one
// NDJSON verdict line per input line, in input order, so a million-chain
// batch runs in constant memory on both ends.
//
// The pipeline is: reader → bounded worker set → ordered writer.
//
//   - The reader splits lines and hands each a sequence number. It blocks
//     when the ordered-output queue is full, so a slow client (or a writer
//     that has fallen behind) pauses reads — back-pressure all the way to
//     the peer's TCP window.
//   - Workers decode, route and verify lines concurrently. Everything the
//     per-request path recomputes per call is amortized across the batch:
//     UA→store routing and snapshot resolution are cached per distinct
//     (stores, user_agent, at) tuple, the intermediates pool is built once
//     per chain, verdict-cache keys are rendered into per-worker scratch
//     buffers, and verdict rows are emitted from pre-rendered JSON
//     fragments instead of encoding/json — so the warm (verdict-cache-hit)
//     path allocates close to nothing per verdict.
//   - The writer drains jobs in sequence order and recycles their buffers.
//
// The whole batch runs against ONE serving generation (the same hot-swap
// safety fanoutVerify has): a reload mid-batch cannot mix verdicts from
// two databases in one response. Per-store verification slots are shared
// with the single-verify fan-out through the same semaphore, so a batch
// cannot starve interactive requests of CPU, only queue behind them.

import (
	"bufio"
	"context"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"encoding/pem"
	"errors"
	"expvar"
	"fmt"
	"hash"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/useragent"
	"repro/internal/verify"
)

// batchPath is exempt from the whole-body size cap (the stream is
// unbounded by design; each LINE is capped at MaxBodyBytes instead) and
// from RequestTimeout (it is bounded by WatchTimeout like other streams).
const batchPath = "/v1/verify/batch"

// batchLineReq is one NDJSON input line.
type batchLineReq struct {
	verifyRequest
	// ChainDER is the chain as standard-base64 DER certificates, leaf
	// first. When present it takes precedence over chain_pem.
	ChainDER []string `json:"chain_der,omitempty"`
}

// batchJob carries one line through the pipeline. Jobs are recycled
// through a per-batch free list, so a steady-state batch allocates no new
// jobs after the pipeline fills.
type batchJob struct {
	seq     int
	line    []byte
	buf     []byte        // rendered output line, written by the worker
	tooLong bool          // the line exceeded the per-line byte cap
	done    chan struct{} // cap 1; worker signals the writer
}

// batchRoute is the resolved, pre-rendered form of one distinct
// (stores, user_agent, at) tuple — computed once per batch, shared by
// every line that names the tuple.
type batchRoute struct {
	errMsg string // resolution failed; every line using the tuple errors
	snaps  []batchSnap
	uaJSON []byte // pre-rendered `,"user_agent":{...}` fragment (or nil)
	atJSON []byte // pre-rendered `,"at":"..."` fragment (or nil)
}

// batchSnap pre-renders everything about one snapshot in a route: the
// verdict-key fragments and the static prefix of its verdict JSON row.
type batchSnap struct {
	snap  *store.Snapshot
	key   string // snap.Key()
	atRFC string // resolved verification instant, RFC 3339
	at    time.Time
	pre   []byte // `{"store":"...","provider":"...","date":"..."`
}

// batch is the shared state of one /v1/verify/batch request.
type batch struct {
	s       *Server
	st      *dbState
	ctx     context.Context
	maxLine int

	// hitCtr/missCtr are the verdict-cache counters resolved once per
	// batch, so the per-verdict hot path is one atomic add instead of an
	// expvar.Map walk with a key concatenation.
	hitCtr, missCtr *expvar.Int

	mu     sync.Mutex
	routes map[string]*batchRoute
}

// batchScratch is one worker's reusable decode/verify/encode state.
// Workers own their scratch exclusively, so none of this needs pooling or
// locking.
type batchScratch struct {
	req      batchLineReq // encoding/json fallback target
	f        lineFields   // decoded line, byte views end to end
	pemBuf   []byte       // unescape buffer for chain_pem
	routeKey []byte
	keyBuf   []byte
	derBuf   []byte   // decoded DER bytes for the whole chain
	ders     [][]byte // per-certificate views (into derBuf for chain_der)
	certs    []*x509.Certificate
	hasher   hash.Hash
	sum      []byte
	hexBuf   [2 * sha256.Size]byte

	// outcomeCtr caches per-outcome counters (worker-owned, no locking).
	outcomeCtr map[string]*expvar.Int
}

// countVerdict records one emitted verdict with pre-resolved counters.
func (b *batch) countVerdict(sc *batchScratch, outcome string, hit bool) {
	if hit {
		b.hitCtr.Add(1)
	} else {
		b.missCtr.Add(1)
	}
	ctr, seen := sc.outcomeCtr[outcome]
	if !seen {
		ctr = b.s.metrics.outcomeCounter(outcome)
		sc.outcomeCtr[outcome] = ctr
	}
	if ctr != nil {
		ctr.Add(1)
	}
	b.s.metrics.verified.Add(1)
	b.s.metrics.batchVerdicts.Add(1)
}

func (s *Server) handleVerifyBatch(w http.ResponseWriter, r *http.Request) {
	// One generation for the whole batch; its identity rides the response
	// headers like every other /v1 route.
	st := s.cur()
	s.stampGeneration(w, st)
	ctx := r.Context()
	s.metrics.batchBatches.Add(1)

	b := &batch{
		s:       s,
		st:      st,
		ctx:     ctx,
		maxLine: int(s.cfg.MaxBodyBytes),
		routes:  map[string]*batchRoute{},
	}
	b.hitCtr, b.missCtr = s.metrics.cachePair("verdict")

	workers := s.cfg.BatchWorkers
	work := make(chan *batchJob, workers)
	order := make(chan *batchJob, 2*workers+2)
	free := make(chan *batchJob, cap(order)+workers+1)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			span := obs.StartLeafSpan(ctx, "batch.verify")
			defer span.End()
			sc := &batchScratch{
				hasher:     sha256.New(),
				outcomeCtr: map[string]*expvar.Int{},
			}
			n := 0
			for job := range work {
				b.processLine(sc, job)
				n++
				job.done <- struct{}{}
			}
			span.SetAttr("lines", strconv.Itoa(n))
		}()
	}

	// Reader: split lines, assign sequence numbers, enqueue to the ordered
	// queue first (that is the back-pressure point) and then to the
	// workers.
	go func() {
		defer close(work)
		defer close(order)
		span := obs.StartLeafSpan(ctx, "batch.read")
		defer span.End()
		br := bufio.NewReaderSize(r.Body, 64<<10)
		var spill []byte
		seq := 0
		for {
			if ctx.Err() != nil {
				return
			}
			line, tooLong, err := readBatchLine(br, b.maxLine, &spill)
			if err != nil && err != io.EOF {
				span.SetAttr("read_error", err.Error())
				return
			}
			if len(line) != 0 || tooLong {
				var job *batchJob
				select {
				case job = <-free:
				default:
					job = &batchJob{done: make(chan struct{}, 1)}
				}
				job.seq = seq
				seq++
				job.line = append(job.line[:0], line...)
				job.tooLong = tooLong
				s.metrics.batchQueue.Add(1)
				select {
				case order <- job:
				case <-ctx.Done():
					// The job never reached the writer; undo its depth.
					s.metrics.batchQueue.Add(-1)
					return
				}
				select {
				case work <- job:
				case <-ctx.Done():
					// The writer already owns this job via the ordered
					// queue; resolve it so the drain never blocks.
					job.buf = job.buf[:0]
					job.done <- struct{}{}
					return
				}
			}
			if err == io.EOF {
				span.SetAttr("lines", strconv.Itoa(seq))
				return
			}
		}
	}()

	// Writer: the handler goroutine itself. Streams verdict lines back in
	// input order and recycles jobs.
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	rc := http.NewResponseController(w)
	// HTTP/1.x closes the request body once the response starts unless the
	// handler declares full-duplex intent; without this the reader sees EOF
	// at the first flush and silently truncates the batch. Writers that
	// don't support the control (test recorders) hold the whole body in
	// memory already, so ErrNotSupported is fine.
	if err := rc.EnableFullDuplex(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		s.log.Warn("batch full-duplex unavailable", "err", err)
	}
	lines := 0
	for job := range order {
		<-job.done
		s.metrics.batchQueue.Add(-1)
		if ctx.Err() == nil && len(job.buf) > 0 {
			if _, err := w.Write(job.buf); err == nil {
				lines++
				// Flush whenever the pipeline is drained (interactive
				// clients see verdicts immediately) or every 64 lines
				// (bulk clients are not syscall-bound).
				if len(order) == 0 || lines&63 == 0 {
					rc.Flush()
				}
			}
		}
		select {
		case free <- job:
		default:
		}
	}
	wg.Wait()
	rc.Flush()
}

// readBatchLine returns the next newline-delimited line (without the
// terminator). Lines longer than max are consumed to their newline and
// reported as tooLong with a nil slice, so one oversized line costs its
// own error verdict, not the stream. spill is the reader-owned buffer for
// lines longer than the bufio window.
func readBatchLine(br *bufio.Reader, max int, spill *[]byte) (line []byte, tooLong bool, err error) {
	frag, err := br.ReadSlice('\n')
	if err == nil || err == io.EOF {
		line = trimEOL(frag)
		if len(line) > max {
			return nil, true, err
		}
		return line, false, err
	}
	if err != bufio.ErrBufferFull {
		return nil, false, err
	}
	// Long line: accumulate into spill until newline, EOF, or the cap.
	buf := append((*spill)[:0], frag...)
	for {
		frag, err = br.ReadSlice('\n')
		buf = append(buf, frag...)
		*spill = buf
		if err == nil || err == io.EOF {
			line = trimEOL(buf)
			if len(line) > max {
				return nil, true, err
			}
			return line, false, err
		}
		if err != bufio.ErrBufferFull {
			return nil, false, err
		}
		if len(buf) > max {
			// Over the cap with no newline yet: discard to end of line.
			for {
				_, err = br.ReadSlice('\n')
				if err == nil || err == io.EOF {
					return nil, true, err
				}
				if err != bufio.ErrBufferFull {
					return nil, false, err
				}
			}
		}
	}
}

func trimEOL(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}

// processLine turns one input line into one rendered NDJSON output line in
// job.buf. All scratch state is worker-owned; the only shared mutation is
// the generation's verdict cache and the batch route map.
func (b *batch) processLine(sc *batchScratch, job *batchJob) {
	if b.ctx.Err() != nil {
		// Cancelled batch: resolve the job empty so the writer drains.
		job.buf = job.buf[:0]
		return
	}
	if job.tooLong {
		job.buf = appendBatchError(job.buf[:0], job.seq, nil,
			fmt.Sprintf("line exceeds %d bytes", b.maxLine))
		b.s.metrics.batchRejects.Add(1)
		b.s.metrics.batchLines.Add(1)
		return
	}
	b.s.metrics.batchLines.Add(1)

	f := &sc.f
	if !fastParseLine(job.line, f, &sc.pemBuf) {
		// Shape beyond the fast path — or invalid. encoding/json decides
		// which, and owns the error message either way.
		req := &sc.req
		req.ChainPEM, req.Purpose, req.DNSName, req.UserAgent, req.At = "", "", "", "", ""
		req.Stores = req.Stores[:0]
		req.ChainDER = req.ChainDER[:0]
		if err := json.Unmarshal(job.line, req); err != nil {
			job.buf = appendBatchError(job.buf[:0], job.seq, nil, "invalid JSON: "+err.Error())
			b.s.metrics.batchRejects.Add(1)
			return
		}
		f.reset()
		sc.pemBuf = append(sc.pemBuf[:0], req.ChainPEM...)
		f.chainPEM = sc.pemBuf
		for _, d := range req.ChainDER {
			f.chainDER = append(f.chainDER, []byte(d))
		}
		for _, ref := range req.Stores {
			f.stores = append(f.stores, []byte(ref))
		}
		f.ua, f.at = []byte(req.UserAgent), []byte(req.At)
		f.purpose, f.dnsName = []byte(req.Purpose), []byte(req.DNSName)
	}

	purpose := store.ServerAuth
	if len(f.purpose) != 0 {
		var err error
		if purpose, err = store.ParsePurpose(string(f.purpose)); err != nil {
			job.buf = appendBatchError(job.buf[:0], job.seq, nil, err.Error())
			b.s.metrics.batchRejects.Add(1)
			return
		}
	}

	rt := b.route(sc)
	if rt.errMsg != "" {
		job.buf = appendBatchError(job.buf[:0], job.seq, rt.uaJSON, rt.errMsg)
		b.s.metrics.batchRejects.Add(1)
		return
	}

	// Chain identity without parsing: decode the DER (or PEM) bytes and
	// hash them. x509 parsing is deferred until a verdict-cache miss
	// actually needs to verify — on the warm path it never happens.
	sc.ders = sc.ders[:0]
	sc.certs = sc.certs[:0]
	if len(f.chainDER) > 0 {
		sc.derBuf = sc.derBuf[:0]
		// Decode into one contiguous buffer; record the split offsets
		// first, then re-slice (the buffer may move while growing).
		offs := make([]int, 0, 8)
		for i, b64 := range f.chainDER {
			need := base64.StdEncoding.DecodedLen(len(b64))
			start := len(sc.derBuf)
			sc.derBuf = append(sc.derBuf, make([]byte, need)...)
			n, err := base64.StdEncoding.Decode(sc.derBuf[start:], b64)
			if err != nil {
				job.buf = appendBatchError(job.buf[:0], job.seq, rt.uaJSON,
					fmt.Sprintf("chain_der[%d]: %v", i, err))
				b.s.metrics.batchRejects.Add(1)
				return
			}
			sc.derBuf = sc.derBuf[:start+n]
			offs = append(offs, start)
		}
		for i, start := range offs {
			end := len(sc.derBuf)
			if i+1 < len(offs) {
				end = offs[i+1]
			}
			sc.ders = append(sc.ders, sc.derBuf[start:end])
		}
	} else {
		rest := f.chainPEM
		for {
			var block *pem.Block
			block, rest = pem.Decode(rest)
			if block == nil {
				break
			}
			if block.Type != "CERTIFICATE" {
				continue
			}
			sc.ders = append(sc.ders, block.Bytes)
		}
	}
	if len(sc.ders) == 0 {
		job.buf = appendBatchError(job.buf[:0], job.seq, rt.uaJSON, "chain contains no certificates")
		b.s.metrics.batchRejects.Add(1)
		return
	}
	sc.hasher.Reset()
	for _, der := range sc.ders {
		sc.hasher.Write(der)
	}
	sc.sum = sc.hasher.Sum(sc.sum[:0])
	hex.Encode(sc.hexBuf[:], sc.sum)
	chainHash := sc.hexBuf[:]

	// Render the line prefix.
	out := job.buf[:0]
	out = append(out, `{"seq":`...)
	out = strconv.AppendInt(out, int64(job.seq), 10)
	out = append(out, `,"chain_sha256":"`...)
	out = append(out, chainHash...)
	out = append(out, `","purpose":"`...)
	out = append(out, purpose.String()...)
	out = append(out, '"')
	out = append(out, rt.atJSON...)
	out = append(out, rt.uaJSON...)
	out = append(out, `,"verdicts":[`...)

	var interPool *x509.CertPool
	for vi := range rt.snaps {
		sk := &rt.snaps[vi]
		if vi > 0 {
			out = append(out, ',')
		}

		key := sc.keyBuf[:0]
		key = append(key, chainHash...)
		key = append(key, '|')
		key = append(key, sk.key...)
		key = append(key, '|')
		key = append(key, purpose.String()...)
		key = append(key, '|')
		key = append(key, f.dnsName...)
		key = append(key, '|')
		key = append(key, sk.atRFC...)
		sc.keyBuf = key

		if v, ok := b.st.verdicts.getBytes(key); ok {
			out = appendVerdictJSON(out, sk.pre, &v, true)
			b.countVerdict(sc, v.Outcome, true)
			continue
		}

		// Cold pair: parse the chain once per line, then verify under a
		// shared worker slot.
		if len(sc.certs) == 0 {
			for i, der := range sc.ders {
				cert, err := x509.ParseCertificate(der)
				if err != nil {
					job.buf = appendBatchError(out[:0], job.seq, rt.uaJSON,
						fmt.Sprintf("certificate %d in chain: %v", i, err))
					b.s.metrics.batchRejects.Add(1)
					return
				}
				sc.certs = append(sc.certs, cert)
			}
			interPool = verify.PoolIntermediates(sc.certs[1:])
		} else if interPool == nil {
			interPool = verify.PoolIntermediates(sc.certs[1:])
		}

		v := b.coldVerdict(sk, verify.Request{
			Leaf:          sc.certs[0],
			Intermediates: sc.certs[1:],
			InterPool:     interPool,
			Purpose:       purpose,
			DNSName:       string(f.dnsName),
			At:            sk.at,
		}, key)
		out = appendVerdictJSON(out, sk.pre, &v, false)
		b.countVerdict(sc, v.Outcome, false)
	}
	out = append(out, ']', '}', '\n')
	job.buf = out
}

// coldVerdict verifies one (chain, store) pair under the shared worker
// semaphore and memoizes the verdict for the rest of the batch (and for
// /v1/verify — the caches are one and the same).
func (b *batch) coldVerdict(sk *batchSnap, vreq verify.Request, key []byte) storeVerdict {
	select {
	case b.s.sem <- struct{}{}:
	case <-b.ctx.Done():
		return storeVerdict{
			Store: sk.key, Provider: sk.snap.Provider, Date: sk.snap.Date,
			Outcome: "timeout", Error: b.ctx.Err().Error(),
		}
	}
	res := b.st.verifiers.get(sk.snap).Verify(vreq)
	<-b.s.sem

	v := storeVerdict{
		Store:    sk.key,
		Provider: sk.snap.Provider,
		Date:     sk.snap.Date,
		Outcome:  res.Outcome.String(),
	}
	if res.Anchor != nil {
		v.AnchorFingerprint = res.Anchor.Fingerprint.String()
		v.AnchorLabel = res.Anchor.Label
	}
	if res.Err != nil {
		v.Error = res.Err.Error()
	}
	b.st.verdicts.put(string(key), v)
	return v
}

// route returns the resolved batchRoute for the line's
// (stores, user_agent, at) tuple, resolving and pre-rendering it on first
// sight. The composite lookup key is built in worker scratch, so the hot
// path (tuple already cached) allocates nothing.
func (b *batch) route(sc *batchScratch) *batchRoute {
	f := &sc.f
	key := sc.routeKey[:0]
	key = append(key, f.ua...)
	key = append(key, 0x1f)
	key = append(key, f.at...)
	for _, ref := range f.stores {
		key = append(key, 0x1f)
		key = append(key, ref...)
	}
	sc.routeKey = key

	b.mu.Lock()
	rt := b.routes[string(key)]
	b.mu.Unlock()
	if rt != nil {
		return rt
	}
	stores := make([]string, len(f.stores))
	for i, ref := range f.stores {
		stores[i] = string(ref)
	}
	rt = b.resolveRoute(stores, string(f.ua), string(f.at))
	b.mu.Lock()
	if exist := b.routes[string(key)]; exist != nil {
		rt = exist
	} else {
		b.routes[string(key)] = rt
	}
	b.mu.Unlock()
	return rt
}

// resolveRoute applies the same routing rules as handleVerify — UA→store
// mapping, provider fallback, snapshot resolution at the requested instant
// — and pre-renders every per-snapshot fragment the verdict loop needs.
func (b *batch) resolveRoute(stores []string, userAgent, atStr string) *batchRoute {
	rt := &batchRoute{}
	at, err := parseAt(atStr)
	if err != nil {
		rt.errMsg = err.Error()
		return rt
	}
	if !at.IsZero() {
		rt.atJSON = append(append([]byte(`,"at":"`), at.UTC().AppendFormat(nil, time.RFC3339Nano)...), '"')
	}

	refs := stores
	if userAgent != "" {
		agent := useragent.Parse(userAgent)
		mapped := useragent.MapToProvider(agent)
		ua := []byte(`,"user_agent":{"browser":`)
		ua = appendJSONString(ua, string(agent.Browser))
		ua = append(ua, `,"os":`...)
		ua = appendJSONString(ua, string(agent.OS))
		if mapped.Provider != "" {
			ua = append(ua, `,"provider":`...)
			ua = appendJSONString(ua, string(mapped.Provider))
		}
		ua = append(ua, `,"traceable":`...)
		ua = strconv.AppendBool(ua, mapped.Traceable)
		ua = append(ua, `,"reason":`...)
		ua = appendJSONString(ua, mapped.Reason)
		ua = append(ua, '}')
		rt.uaJSON = ua
		if mapped.Traceable {
			refs = append(refs, string(mapped.Provider))
		} else if len(refs) == 0 {
			rt.errMsg = "user agent is not traceable to a store and no stores were given"
			return rt
		}
	}
	if len(refs) == 0 {
		refs = b.st.db.Providers()
	}

	seen := map[string]bool{}
	for _, ref := range refs {
		snap, err := b.st.resolveSnapshot(ref, at)
		if err != nil {
			rt.errMsg = err.Error()
			return rt
		}
		if seen[snap.Key()] {
			continue
		}
		seen[snap.Key()] = true
		snapAt := at
		if snapAt.IsZero() {
			snapAt = snap.Date
		}
		pre := []byte(`{"store":`)
		pre = appendJSONString(pre, snap.Key())
		pre = append(pre, `,"provider":`...)
		pre = appendJSONString(pre, snap.Provider)
		pre = append(pre, `,"date":"`...)
		pre = snap.Date.UTC().AppendFormat(pre, time.RFC3339Nano)
		pre = append(pre, '"')
		rt.snaps = append(rt.snaps, batchSnap{
			snap:  snap,
			key:   snap.Key(),
			at:    snapAt,
			atRFC: snapAt.UTC().Format(time.RFC3339),
			pre:   pre,
		})
	}
	return rt
}

// appendBatchError renders a per-line error object:
// {"seq":N,"user_agent":{...},"error":"..."}. The stream continues — one
// malformed line costs itself, not the batch.
func appendBatchError(buf []byte, seq int, uaJSON []byte, msg string) []byte {
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendInt(buf, int64(seq), 10)
	buf = append(buf, uaJSON...)
	buf = append(buf, `,"error":`...)
	buf = appendJSONString(buf, msg)
	return append(buf, '}', '\n')
}

// appendVerdictJSON renders one verdict row from its snapshot's
// pre-rendered prefix plus the dynamic fields — field-for-field the same
// JSON a storeVerdict marshals to, without encoding/json.
func appendVerdictJSON(buf, pre []byte, v *storeVerdict, cached bool) []byte {
	buf = append(buf, pre...)
	buf = append(buf, `,"outcome":"`...)
	buf = append(buf, v.Outcome...)
	buf = append(buf, '"')
	if v.AnchorFingerprint != "" {
		buf = append(buf, `,"anchor":"`...)
		buf = append(buf, v.AnchorFingerprint...)
		buf = append(buf, '"')
		if v.AnchorLabel != "" {
			buf = append(buf, `,"anchor_label":`...)
			buf = appendJSONString(buf, v.AnchorLabel)
		}
	}
	if v.Error != "" {
		buf = append(buf, `,"error":`...)
		buf = appendJSONString(buf, v.Error)
	}
	if cached {
		buf = append(buf, `,"cached":true`...)
	}
	return append(buf, '}')
}

// appendJSONString appends s as a quoted, escaped JSON string. Multi-byte
// UTF-8 passes through unescaped (valid JSON); only the structural
// characters and control bytes are escaped.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			const hexDigits = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
