package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/tracker"
)

// EventFeed is what /v1/events and /v1/events/watch serve from. It is the
// read side of internal/tracker's change-event log: *tracker.Tracker
// satisfies it, and tests can substitute a fake.
type EventFeed interface {
	// Replay returns the retained events matching the filter, oldest first.
	Replay(f tracker.Filter) []tracker.Event
	// Subscribe registers a live listener; cancel must be idempotent.
	Subscribe(buffer int) (<-chan tracker.Event, func())
	// LastSeq is the sequence number of the newest event ever appended.
	LastSeq() uint64
}

// eventsResponse is the /v1/events envelope.
type eventsResponse struct {
	Events  []tracker.Event `json:"events"`
	Count   int             `json:"count"`
	LastSeq uint64          `json:"last_seq"`
}

// eventFilter parses the shared query parameters of both event endpoints:
// provider, type, min_severity, since (exclusive seq), fingerprint, limit.
func eventFilter(r *http.Request) (tracker.Filter, error) {
	q := r.URL.Query()
	f := tracker.Filter{
		Provider:    q.Get("provider"),
		Type:        tracker.Type(q.Get("type")),
		Fingerprint: q.Get("fingerprint"),
	}
	if v := q.Get("min_severity"); v != "" {
		sev, err := tracker.ParseSeverity(v)
		if err != nil {
			return f, fmt.Errorf("min_severity: %w", err)
		}
		f.MinSeverity = sev
	}
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return f, fmt.Errorf("since must be a sequence number: %q", v)
		}
		f.SinceSeq = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return f, fmt.Errorf("limit must be a non-negative integer: %q", v)
		}
		f.Limit = n
	}
	return f, nil
}

// handleEvents replays the change-event log. 404s when the server runs
// without a tracker attached (static, non-watching deployment).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.stampGeneration(w, s.cur())
	if s.events == nil {
		s.writeError(w, http.StatusNotFound, "no event feed attached: start with -watch")
		return
	}
	f, err := eventFilter(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	evs := s.events.Replay(f)
	s.writeJSON(w, http.StatusOK, eventsResponse{
		Events:  evs,
		Count:   len(evs),
		LastSeq: s.events.LastSeq(),
	})
}

// watchHeartbeat keeps intermediaries from reaping an idle SSE stream.
const watchHeartbeat = 15 * time.Second

// handleEventsWatch streams change events as Server-Sent Events. The
// subscribe-then-replay order closes the classic gap: we register the live
// subscription first, replay the backlog the filter selects, then forward
// live events, dropping any whose seq we already replayed. Clients resume
// with ?since=<last seen id>.
func (s *Server) handleEventsWatch(w http.ResponseWriter, r *http.Request) {
	s.stampGeneration(w, s.cur())
	if s.events == nil {
		s.writeError(w, http.StatusNotFound, "no event feed attached: start with -watch")
		return
	}
	f, err := eventFilter(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rc := http.NewResponseController(w)

	live, cancel := s.events.Subscribe(64)
	defer cancel()
	s.metrics.watchers.Add(1)
	defer s.metrics.watchers.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// Force the headers onto the wire now: without a flush the client's
	// TTFB would be the first event (or worse, the first heartbeat), and
	// a quiet feed would look like a hung connect to subscribers.
	if err := rc.Flush(); err != nil {
		return
	}

	lastSent := f.SinceSeq
	send := func(ev tracker.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		if err := rc.Flush(); err != nil {
			return false
		}
		if ev.Seq > lastSent {
			lastSent = ev.Seq
		}
		return true
	}
	for _, ev := range s.events.Replay(f) {
		if !send(ev) {
			return
		}
	}

	heartbeat := time.NewTicker(watchHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case ev, open := <-live:
			if !open {
				return
			}
			// The replay above may have covered this event already.
			if ev.Seq <= lastSent || !f.Match(ev) {
				continue
			}
			if !send(ev) {
				return
			}
		}
	}
}
